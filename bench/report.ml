(* The experiment harness: regenerates the E1-E14 tables recorded in
   EXPERIMENTS.md.  The paper itself is a formal-model paper with
   worked examples rather than numbered evaluation figures; these
   experiments measure the system claims it (and the Sedna reports it
   cites) make.  See DESIGN.md §5 for the index. *)

module Store = Xsm_xdm.Store
module Convert = Xsm_xdm.Convert
module Order = Xsm_xdm.Order
module Name = Xsm_xml.Name
module Label = Xsm_numbering.Sedna_label
module B = Xsm_storage.Block_storage
module DS = Xsm_storage.Descriptive_schema

(* Wall-clock timing (Obs.Clock) with repetition.  [Sys.time] is CPU
   time: on fsync-bound work (E13's per-record WAL sync) it reports
   the microseconds spent submitting the write and misses the
   milliseconds the disk spent syncing it.  CPU time stays available
   via {!Xsm_obs.Clock.cpu_ns} where pure-compute attribution is
   wanted. *)
let time_once f = Xsm_obs.Clock.seconds f

let now_s () = Int64.to_float (Xsm_obs.Clock.now_ns ()) /. 1e9

let time ?(min_time = 0.05) f =
  (* repeat until the total exceeds min_time, report seconds/call *)
  let rec go reps =
    let t = time_once (fun () -> for _ = 1 to reps do f () done) in
    if t >= min_time then t /. float_of_int reps else go (reps * 4)
  in
  go 1

let ns t = t *. 1e9
let header title = Printf.printf "\n=== %s ===\n" title
let row fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)

let e1_validation_scaling () =
  header "E1  Validation cost is linear in document size (§6.2)";
  row "%-10s %-10s %-14s %-12s\n" "books" "nodes" "validate(ms)" "ns/node";
  List.iter
    (fun books ->
      let doc = Xsm_schema.Samples.bookstore_document ~books () in
      let nodes = Xsm_xml.Tree.node_count doc.Xsm_xml.Tree.root + 1 in
      let t =
        time (fun () ->
            match Xsm_schema.Validator.validate_document doc Xsm_schema.Samples.example7_schema with
            | Ok _ -> ()
            | Error _ -> failwith "E1: unexpected invalid document")
      in
      row "%-10d %-10d %-14.3f %-12.1f\n" books nodes (t *. 1e3) (ns t /. float_of_int nodes))
    [ 10; 100; 1000; 5000 ]

let e2_automaton_vs_backtracking () =
  header "E2  Glushkov automaton vs naive backtracking (content models)";
  (* adversarial model: (a?){n} a{n} against the word a^n *)
  row "%-6s %-16s %-16s %-12s %-14s\n" "n" "automaton(us)" "backtrack(us)" "speedup" "bt steps";
  List.iter
    (fun n ->
      let optional_a =
        List.init n (fun _ ->
            Xsm_schema.Ast.elem_p
              (Xsm_schema.Ast.element ~repetition:Xsm_schema.Ast.optional "a"
                 (Xsm_schema.Ast.named_type "xs:string")))
      in
      let mandatory_a =
        List.init n (fun _ ->
            Xsm_schema.Ast.elem_p (Xsm_schema.Ast.element "a" (Xsm_schema.Ast.named_type "xs:string")))
      in
      let g = Xsm_schema.Ast.sequence (optional_a @ mandatory_a) in
      let word = List.init n (fun _ -> Name.local "a") in
      let a =
        match Xsm_schema.Content_automaton.make g with
        | Ok a -> a
        | Error e -> failwith e
      in
      assert (Xsm_schema.Content_automaton.matches a word);
      let t_auto = time (fun () -> ignore (Xsm_schema.Content_automaton.matches a word)) in
      let t_bt = time (fun () -> ignore (Xsm_schema.Backtrack.matches g word)) in
      let _, steps = Xsm_schema.Backtrack.matches_counting g word in
      row "%-6d %-16.2f %-16.2f %-12.1f %-14d\n" n (t_auto *. 1e6) (t_bt *. 1e6)
        (t_bt /. t_auto) steps)
    [ 4; 8; 12; 16; 18 ]

let e3_roundtrip_theorem () =
  header "E3  Theorem §8: g(f(X)) =_c X over random schemas";
  row "%-8s %-10s %-10s %-12s %-12s %-10s\n" "schemas" "docs" "holds" "f(ms/doc)" "g(ms/doc)" "eq(ms)";
  let rng = Xsm_schema.Generator.rng 4242 in
  let n_schemas = 20 and docs_per = 10 in
  let holds = ref 0 and total = ref 0 in
  let tf = ref 0.0 and tg = ref 0.0 and te = ref 0.0 in
  for _ = 1 to n_schemas do
    let schema = Xsm_schema.Generator.random_schema rng in
    for _ = 1 to docs_per do
      incr total;
      let doc = Xsm_schema.Generator.instance rng schema in
      let t0 = now_s () in
      match Xsm_schema.Roundtrip.f doc schema with
      | Error _ -> ()
      | Ok (store, dnode) ->
        let t1 = now_s () in
        let back = Xsm_schema.Roundtrip.g store dnode in
        let t2 = now_s () in
        let eq = Xsm_xml.Tree.equal_content back doc in
        let t3 = now_s () in
        tf := !tf +. (t1 -. t0);
        tg := !tg +. (t2 -. t1);
        te := !te +. (t3 -. t2);
        if eq then incr holds
    done
  done;
  let per x = x /. float_of_int !total *. 1e3 in
  row "%-8d %-10d %-12s %-12.3f %-12.3f %-10.3f\n" n_schemas !total
    (Printf.sprintf "%d/%d" !holds !total)
    (per !tf) (per !tg) (per !te)

let load_library books =
  let store = Store.create () in
  let doc = Xsm_schema.Samples.library_document ~books ~papers:(books / 2) () in
  let dnode = Convert.load store doc in
  (store, dnode)

let e4_document_order () =
  header "E4  Document order: accessor paths (§7) vs numbering labels (§9.3)";
  row "%-10s %-18s %-18s %-10s\n" "nodes" "accessors(ns/cmp)" "labels(ns/cmp)" "speedup";
  List.iter
    (fun books ->
      let store, dnode = load_library books in
      let nodes = Array.of_list (Store.descendants_or_self store dnode) in
      let t = Xsm_numbering.Labeler.label_tree store dnode in
      let n = Array.length nodes in
      let rng = Xsm_schema.Generator.rng 7 in
      let pairs =
        Array.init 1024 (fun _ ->
            (nodes.(Xsm_schema.Generator.int rng n), nodes.(Xsm_schema.Generator.int rng n)))
      in
      let t_acc =
        time (fun () ->
            Array.iter (fun (a, b) -> ignore (Order.compare store a b)) pairs)
      in
      let labels = Array.map (fun (a, b) -> (Xsm_numbering.Labeler.label t a, Xsm_numbering.Labeler.label t b)) pairs in
      let t_lbl =
        time (fun () -> Array.iter (fun (la, lb) -> ignore (Label.compare la lb)) labels)
      in
      let per x = ns x /. 1024.0 in
      row "%-10d %-18.1f %-18.1f %-10.1f\n" n (per t_acc) (per t_lbl) (t_acc /. t_lbl))
    [ 50; 500; 2500 ]

let e5_predicates_vs_depth () =
  header "E5  §9.3 predicates cost only label length (depth sweep)";
  row "%-8s %-14s %-16s %-16s %-16s\n" "depth" "label bytes" "order(ns)" "ancestor(ns)" "parent(ns)";
  List.iter
    (fun depth ->
      (* a chain tree of the given depth *)
      let store = Store.create () in
      let dnode = Store.new_document store in
      let rec chain parent k =
        if k > 0 then begin
          let e = Store.new_element store (Name.local (Printf.sprintf "d%d" k)) in
          Store.append_child store parent e;
          chain e (k - 1)
        end
      in
      let root = Store.new_element store (Name.local "root") in
      Store.append_child store dnode root;
      chain root (depth - 1);
      let t = Xsm_numbering.Labeler.label_tree store dnode in
      let deepest =
        List.fold_left
          (fun acc n -> if Store.children store n = [] then n else acc)
          root
          (Store.descendants_or_self store dnode)
      in
      let la = Xsm_numbering.Labeler.label t root in
      let lb = Xsm_numbering.Labeler.label t deepest in
      let t_ord = time (fun () -> ignore (Label.compare la lb)) in
      let t_anc = time (fun () -> ignore (Label.is_ancestor la lb)) in
      let t_par = time (fun () -> ignore (Label.is_parent la lb)) in
      row "%-8d %-14d %-16.1f %-16.1f %-16.1f\n" depth (Label.length lb) (ns t_ord)
        (ns t_anc) (ns t_par))
    [ 4; 16; 64; 256 ]

let e6_update_stability () =
  header "E6  Proposition 1: repeated middle insertion, Sedna vs baselines";
  row "%-8s | %-22s | %-14s | %-16s | %-14s\n" "inserts" "sedna(relbl,maxbytes)" "dewey(relbl)"
    "range(globals)" "prime(SCshift)";
  List.iter
    (fun inserts ->
      let doc = Xsm_schema.Samples.library_document ~books:20 ~papers:10 () in
      (* Sedna *)
      let store1 = Store.create () in
      let d1 = Convert.load store1 doc in
      let t = Xsm_numbering.Labeler.label_tree store1 d1 in
      let lib1 = List.hd (Store.children store1 d1) in
      let anchor1 = List.hd (Store.children store1 lib1) in
      let before = Xsm_numbering.Labeler.max_label_bytes t in
      ignore before;
      for i = 1 to inserts do
        let e = Store.new_element store1 (Name.local (Printf.sprintf "s%d" i)) in
        ignore (Xsm_numbering.Labeler.label_new_child t ~parent:lib1 ~after:(Some anchor1) e)
      done;
      let sedna_max = Xsm_numbering.Labeler.max_label_bytes t in
      (* Dewey *)
      let store2 = Store.create () in
      let d2 = Convert.load store2 doc in
      let fd = Xsm_numbering.Dewey.forest_of_tree store2 d2 in
      let lib2 = List.hd (Store.children store2 d2) in
      let anchor2 = List.hd (Store.children store2 lib2) in
      let dewey_relabels = ref 0 in
      for i = 1 to inserts do
        let e = Store.new_element store2 (Name.local (Printf.sprintf "w%d" i)) in
        let _, changed = Xsm_numbering.Dewey.insert_after fd ~parent:lib2 ~after:(Some anchor2) e in
        dewey_relabels := !dewey_relabels + changed
      done;
      (* Range *)
      let store3 = Store.create () in
      let d3 = Convert.load store3 doc in
      let fr = Xsm_numbering.Range_label.forest_of_tree ~gap:16 store3 d3 in
      let lib3 = List.hd (Store.children store3 d3) in
      let anchor3 = List.hd (Store.children store3 lib3) in
      for i = 1 to inserts do
        let e = Store.new_element store3 (Name.local (Printf.sprintf "r%d" i)) in
        ignore (Xsm_numbering.Range_label.insert_after fr ~parent:lib3 ~after:(Some anchor3) e)
      done;
      (* Prime *)
      let store4 = Store.create () in
      let d4 = Convert.load store4 doc in
      let fp = Xsm_numbering.Prime_label.forest_of_tree store4 d4 in
      let lib4 = List.hd (Store.children store4 d4) in
      let anchor4 = List.hd (Store.children store4 lib4) in
      let prime_shifts = ref 0 in
      for i = 1 to inserts do
        let e = Store.new_element store4 (Name.local (Printf.sprintf "p%d" i)) in
        let _, shifted = Xsm_numbering.Prime_label.insert_after fp ~parent:lib4 ~after:(Some anchor4) e in
        prime_shifts := !prime_shifts + shifted
      done;
      row "%-8d | 0 relabels, %3d B     | %-14d | %-16d | %-14d\n" inserts sedna_max
        !dewey_relabels
        (Xsm_numbering.Range_label.relabel_count fr)
        !prime_shifts)
    [ 10; 50; 200 ]

let e7_descriptive_schema () =
  header "E7  §9.1 descriptive schema is a concise structure summary";
  row "%-10s %-12s %-14s %-12s %-10s\n" "books" "doc nodes" "schema nodes" "ratio" "blocks";
  List.iter
    (fun books ->
      let store, dnode = load_library books in
      let bs = B.of_store ~block_capacity:64 store dnode in
      let ds = B.schema bs in
      let doc_nodes = Store.node_count store in
      let schema_nodes = DS.node_count ds in
      row "%-10d %-12d %-14d %-12.1f %-10d\n" books doc_nodes schema_nodes
        (float_of_int doc_nodes /. float_of_int schema_nodes)
        (B.block_count bs))
    [ 10; 100; 1000; 5000 ]

let e8_schema_driven_queries () =
  header "E8  Navigational evaluation vs schema-driven block scan (§9.2)";
  row "%-10s %-28s %-16s %-16s %-10s\n" "books" "query" "navig(us)" "schema(us)" "speedup";
  List.iter
    (fun books ->
      let store, dnode = load_library books in
      let bs = B.of_store ~block_capacity:64 store dnode in
      let rootd = B.root bs in
      List.iter
        (fun q ->
          let t_nav =
            time (fun () ->
                match Xsm_xpath.Eval.Over_storage.eval_string bs rootd q with
                | Ok _ -> ()
                | Error e -> failwith e)
          in
          let t_sd =
            time (fun () ->
                match Xsm_xpath.Schema_driven.eval_string bs q with
                | Ok _ -> ()
                | Error e -> failwith e)
          in
          row "%-10d %-28s %-16.1f %-16.1f %-10.1f\n" books q (t_nav *. 1e6) (t_sd *. 1e6)
            (t_nav /. t_sd))
        [ "/library/book/title"; "//author"; "//year" ])
    [ 100; 1000 ]

let e9_accessor_reconstruction () =
  header "E9  Accessor reconstruction from node descriptors is exact (§9.2)";
  let store, dnode = load_library 500 in
  let bs = B.of_store store dnode in
  let nodes = Store.descendants_or_self store dnode in
  let mismatches = ref 0 and checked = ref 0 in
  List.iter
    (fun n ->
      match B.descriptor_of_node bs n with
      | None -> incr mismatches
      | Some d ->
        incr checked;
        if
          B.node_kind d <> Store.node_kind store n
          || B.string_value bs d <> Store.string_value store n
          || List.length (B.children bs d) <> List.length (Store.children store n)
          || List.length (B.attributes bs d) <> List.length (Store.attributes store n)
        then incr mismatches)
    nodes;
  row "nodes checked: %d, accessor mismatches: %d\n" !checked !mismatches;
  let sample = List.nth nodes (List.length nodes / 2) in
  let d = Option.get (B.descriptor_of_node bs sample) in
  let t_store = time (fun () -> ignore (Store.string_value store sample)) in
  let t_desc = time (fun () -> ignore (B.string_value bs d)) in
  row "string-value: store %.1f ns, descriptors %.1f ns\n" (ns t_store) (ns t_desc)

let e10_datatype_throughput () =
  header "E10 Simple-type validation throughput (§4)";
  row "%-22s %-14s %-14s\n" "type" "values/batch" "Mvalues/s";
  let module ST = Xsm_datatypes.Simple_type in
  let module BT = Xsm_datatypes.Builtin in
  let cases =
    [
      ("xs:string", ST.string_type, "some ordinary text");
      ("xs:boolean", ST.boolean, "true");
      ("xs:integer", ST.integer, "123456789");
      ("xs:decimal", ST.decimal, "-1234.5678");
      ("xs:dateTime", ST.builtin (BT.Primitive BT.P_date_time), "2004-10-28T09:00:00Z");
      ("xs:duration", ST.builtin (BT.Primitive BT.P_duration), "P1Y2M3DT4H5M6S");
      ("xs:base64Binary", ST.builtin (BT.Primitive BT.P_base64_binary), "aGVsbG8gd29ybGQ=");
      ("xs:NMTOKENS", ST.builtin BT.Nmtokens, "alpha beta gamma");
    ]
  in
  let pattern_type =
    match
      Result.bind (Xsm_datatypes.Facet.pattern "\\d{3}-[A-Z]{2}") (fun p ->
          ST.restrict ST.string_type [ p ])
    with
    | Ok t -> t
    | Error e -> failwith e
  in
  let cases = cases @ [ ("pattern \\d{3}-[A-Z]{2}", pattern_type, "123-AB") ] in
  let batch = 1000 in
  List.iter
    (fun (label, ty, value) ->
      let t =
        time (fun () ->
            for _ = 1 to batch do
              match ST.validate ty value with
              | Ok _ -> ()
              | Error e -> failwith e
            done)
      in
      row "%-22s %-14d %-14.2f\n" label batch (float_of_int batch /. t /. 1e6))
    cases

let e11_index_vs_naive () =
  header "E11 Index subsystem: extent lookups + label joins vs navigation";
  row "%-10s %-30s %-14s %-14s %-10s\n" "books" "query" "naive(us)" "indexed(us)" "speedup";
  let queries =
    [ "//author"; "/library/book/title"; "//book[issue/year<1990]/title"; "//book[issue]/author" ]
  in
  List.iter
    (fun books ->
      let store, dnode = load_library books in
      let module Pl = Xsm_xpath.Planner.Over_store in
      let planner = Pl.create store dnode in
      List.iter
        (fun q ->
          (* warm: the first evaluation builds any value index it needs *)
          (match Pl.eval_string planner q with Ok _ -> () | Error e -> failwith e);
          let t_naive =
            time (fun () ->
                match Xsm_xpath.Eval.Over_store.eval_string store dnode q with
                | Ok _ -> ()
                | Error e -> failwith e)
          in
          let t_idx =
            time (fun () ->
                match Pl.eval_string planner q with
                | Ok _ -> ()
                | Error e -> failwith e)
          in
          row "%-10d %-30s %-14.1f %-14.1f %-10.1f\n" books q (t_naive *. 1e6)
            (t_idx *. 1e6) (t_naive /. t_idx))
        queries;
      let t_build = time (fun () -> ignore (Pl.create store dnode)) in
      let t_vi =
        time ~min_time:0.02 (fun () ->
            let p = Pl.create store dnode in
            match Pl.eval_string p "//book[issue/year<1990]/title" with
            | Ok _ -> ()
            | Error e -> failwith e)
      in
      row "%-10d %-30s build %.2f ms, +value index %.2f ms\n" books "(index construction)"
        (t_build *. 1e3)
        (Float.max 0. (t_vi -. t_build) *. 1e3))
    [ 100; 300; 1000 ]

let e12_incremental_maintenance () =
  header "E12 Differential index maintenance vs rebuild (mixed update/query workload)";
  row "%-8s %-8s %-12s %-14s %-14s %-10s %-16s\n" "books" "rounds" "naive(ms)" "rebuild(ms)"
    "incr(ms)" "speedup" "epochs/applied";
  let module Pl = Xsm_xpath.Planner.Over_store in
  let module U = Xsm_schema.Update in
  let queries =
    [ "//author"; "/library/book/title"; "//book[issue/year<1990]/title" ]
  in
  let new_book i =
    Xsm_xml.Tree.elem "book"
      ~children:
        [
          Xsm_xml.Tree.element
            (Xsm_xml.Tree.elem "title"
               ~children:[ Xsm_xml.Tree.text (Printf.sprintf "T%d" i) ]);
          Xsm_xml.Tree.element
            (Xsm_xml.Tree.elem "author" ~children:[ Xsm_xml.Tree.text "New" ]);
          Xsm_xml.Tree.element
            (Xsm_xml.Tree.elem "issue"
               ~children:
                 [
                   Xsm_xml.Tree.element
                     (Xsm_xml.Tree.elem "year"
                        ~children:[ Xsm_xml.Tree.text (string_of_int (1950 + (i mod 70))) ]);
                 ]);
        ]
  in
  (* the three strategies run the byte-identical op/query sequence: all
     choices are driven by a same-seeded rng over identically evolving
     stores *)
  let run_workload books rounds strategy =
    let store = Store.create () in
    let doc = Xsm_schema.Samples.library_document ~books ~papers:(books / 2) () in
    let dnode = Convert.load store doc in
    let journal = U.Journal.create () in
    let planner =
      match strategy with
      | `Naive -> None
      | `Rebuild -> Some (Pl.create store dnode)
      | `Incremental ->
        let p = Pl.create store dnode in
        Xsm_xpath.Planner.attach_journal p journal;
        Some p
    in
    let journal_opt = match strategy with `Incremental -> Some journal | _ -> None in
    let rng = Xsm_schema.Generator.rng 99 in
    let t0 = now_s () in
    for round = 1 to rounds do
      let libr = List.hd (Store.children store dnode) in
      for u = 1 to 4 do
        let kids = Store.children store libr in
        let op =
          match Xsm_schema.Generator.int rng 3 with
          | 0 ->
            U.Insert_element
              { parent = libr; before = None; tree = new_book ((round * 10) + u) }
          | 1 -> U.Delete (List.nth kids (Xsm_schema.Generator.int rng (List.length kids)))
          | _ -> (
            let texts =
              List.filter
                (fun n -> Store.kind store n = Store.Kind.Text)
                (Store.descendants_or_self store libr)
            in
            match texts with
            | [] -> U.Insert_text { parent = libr; before = None; text = "t" }
            | ts ->
              U.Replace_content
                {
                  node = List.nth ts (Xsm_schema.Generator.int rng (List.length ts));
                  value = string_of_int (1900 + round);
                })
        in
        (match U.apply ?journal:journal_opt store op with Ok _ -> () | Error e -> failwith e);
        match (strategy, planner) with
        | `Rebuild, Some p -> Pl.invalidate p
        | _ -> ()
      done;
      List.iter
        (fun q ->
          match planner with
          | Some p -> (
            match Pl.eval_string p q with Ok _ -> () | Error e -> failwith e)
          | None -> (
            match Xsm_xpath.Eval.Over_store.eval_string store dnode q with
            | Ok _ -> ()
            | Error e -> failwith e))
        queries
    done;
    let t = now_s () -. t0 in
    (t, Option.map Pl.maintenance_stats planner)
  in
  List.iter
    (fun (books, rounds) ->
      let t_naive, _ = run_workload books rounds `Naive in
      let t_rebuild, _ = run_workload books rounds `Rebuild in
      let t_incr, stats = run_workload books rounds `Incremental in
      let stats_str =
        match stats with
        | Some s ->
          Printf.sprintf "%d/%d" s.Xsm_xpath.Planner.epochs s.Xsm_xpath.Planner.applied
        | None -> "-"
      in
      row "%-8d %-8d %-12.1f %-14.1f %-14.1f %-10.1f %-16s\n" books rounds (t_naive *. 1e3)
        (t_rebuild *. 1e3) (t_incr *. 1e3) (t_rebuild /. t_incr) stats_str)
    [ (100, 25); (300, 25); (1000, 15) ]

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let a1_block_capacity () =
  header "A1  Ablation: block capacity (build, splits, scan)";
  row "%-10s %-10s %-12s %-14s %-14s\n" "capacity" "blocks" "build(ms)" "scan //author(us)" "splits@200ins";
  let doc = Xsm_schema.Samples.library_document ~books:500 ~papers:250 () in
  List.iter
    (fun cap ->
      let store = Store.create () in
      let dnode = Convert.load store doc in
      let t_build = time (fun () -> ignore (B.of_store ~block_capacity:cap store dnode)) in
      let bs = B.of_store ~block_capacity:cap store dnode in
      let t_scan =
        time (fun () ->
            match Xsm_xpath.Schema_driven.eval_string bs "//author" with
            | Ok _ -> ()
            | Error e -> failwith e)
      in
      let library = List.hd (B.children bs (B.root bs)) in
      let anchor = List.hd (B.children bs library) in
      for i = 1 to 200 do
        ignore (B.insert_element bs ~parent:library ~after:(Some anchor)
                  (Name.local (Printf.sprintf "x%d" (i mod 3))))
      done;
      row "%-10d %-10d %-12.2f %-14.1f %-14d\n" cap (B.block_count bs) (t_build *. 1e3)
        (t_scan *. 1e6) (B.split_count bs))
    [ 8; 32; 128; 512 ]

let a2_expansion_cost () =
  header "A2  Ablation: bounded-repetition expansion (positions vs maxOccurs)";
  row "%-10s %-12s %-14s %-14s\n" "maxOccurs" "positions" "compile(ms)" "match(us)";
  List.iter
    (fun m ->
      let g =
        Xsm_schema.Ast.sequence
          [
            Xsm_schema.Ast.elem_p
              (Xsm_schema.Ast.element
                 ~repetition:(Xsm_schema.Ast.repeat 0 (Some m))
                 "Book" (Xsm_schema.Ast.named_type "xs:string"));
          ]
      in
      let t_compile =
        time (fun () ->
            match Xsm_schema.Content_automaton.make g with
            | Ok _ -> ()
            | Error e -> failwith e)
      in
      let a =
        match Xsm_schema.Content_automaton.make g with Ok a -> a | Error e -> failwith e
      in
      let word = List.init (m / 2) (fun _ -> Name.local "Book") in
      let t_match = time (fun () -> ignore (Xsm_schema.Content_automaton.matches a word)) in
      row "%-10d %-12d %-14.2f %-14.1f\n" m
        (Xsm_schema.Content_automaton.position_count a)
        (t_compile *. 1e3) (t_match *. 1e6))
    [ 10; 100; 1000; 4000 ]

let a3_label_assignment_policy () =
  header "A3  Ablation: initial label spreading vs sequential allocation";
  row "%-12s %-22s %-22s\n" "siblings" "spread (tot/max B)" "sequential (tot/max B)";
  List.iter
    (fun n ->
      let spread = Label.assign_children Label.root n in
      let tot l = List.fold_left (fun acc x -> acc + Label.length x) 0 l in
      let mx l = List.fold_left (fun acc x -> max acc (Label.length x)) 0 l in
      (* sequential: first_child then repeated after_sibling *)
      let rec seq acc last k =
        if k = 0 then List.rev acc
        else
          let next = Label.after_sibling last in
          seq (next :: acc) next (k - 1)
      in
      let first = Label.first_child Label.root in
      let sequential = first :: seq [] first (n - 1) in
      row "%-12d %6d / %-11d %6d / %-11d\n" n (tot spread) (mx spread) (tot sequential)
        (mx sequential))
    [ 100; 1000; 10000 ]

let a4_buffer_locality () =
  header "A4  Ablation: simulated buffer-pool locality, navigation vs block scan";
  row "%-10s %-10s | %-24s | %-24s\n" "pool" "blocks" "navigation (miss, hit%)" "scan (miss, hit%)";
  let doc = Xsm_schema.Samples.library_document ~books:400 ~papers:200 () in
  let store = Store.create () in
  let dnode = Convert.load store doc in
  let bs = B.of_store ~block_capacity:16 store dnode in
  let module BP = Xsm_storage.Buffer_pool in
  let nav = BP.navigation_trace bs (B.root bs) in
  let rec all_snodes sn = sn :: List.concat_map all_snodes (DS.children (B.schema bs) sn) in
  let scan = List.concat_map (BP.scan_trace bs) (all_snodes (DS.root (B.schema bs))) in
  let total_blocks = B.block_count bs in
  List.iter
    (fun capacity ->
      (* one pool per capacity, wiped between runs: per-run stats
         without cross-run pollution *)
      let pool = BP.create ~capacity in
      let replay trace =
        BP.reset pool;
        List.iter (fun b -> ignore (BP.touch pool b)) trace;
        BP.stats pool
      in
      let ns = replay nav in
      let ss = replay scan in
      let pct s = match BP.hit_ratio s with Some r -> 100.0 *. r | None -> Float.nan in
      row "%-10d %-10d | %6d misses, %5.1f%%   | %6d misses, %5.1f%%\n" capacity total_blocks
        ns.BP.misses (pct ns) ss.BP.misses (pct ss))
    [ 2; 8; 32; 128 ]

let e13_durability () =
  header "E13 Durability: snapshot cost, WAL append overhead, recovery time vs size";
  row "%-8s %-8s %-10s %-10s %-13s %-13s %-12s %-16s\n" "books" "nodes" "snap(ms)" "snap(KB)" "wal us/op" "wal us/op" "recover(ms)" "warm scan";
  row "%-8s %-8s %-10s %-10s %-13s %-13s %-12s %-16s\n" "" "" "" "" "(fsync/rec)" "(fsync/64)" "(200 ops)" "(miss, hit%)";
  (* one pool, wiped between document sizes (Buffer_pool.reset):
     simulated buffer behaviour of scanning the recovered store *)
  let module BP = Xsm_storage.Buffer_pool in
  let pool = BP.create ~capacity:32 in
  let module Snapshot = Xsm_persist.Snapshot in
  let module Wal = Xsm_persist.Wal in
  let book =
    Xsm_xml.Tree.elem "book"
      ~children:
        [ Xsm_xml.Tree.element (Xsm_xml.Tree.elem "author" ~children:[ Xsm_xml.Tree.text "Crash" ]) ]
  in
  List.iter
    (fun books ->
      let doc = Xsm_schema.Samples.library_document ~books ~papers:(books / 2) () in
      let store = Store.create () in
      let dnode = Convert.load store doc in
      let libr = List.hd (Store.children store dnode) in
      let snap = Filename.temp_file "xsm_report" ".snap" in
      let wal = Filename.temp_file "xsm_report" ".wal" in
      let save () =
        match Snapshot.save ~path:snap store dnode with Ok _ -> () | Error e -> failwith e
      in
      let t_snap = time save in
      let snap_kb = float_of_int (Unix.stat snap).Unix.st_size /. 1024.0 in
      (* steady-state insert+delete round, each op logged before applied *)
      let round w =
        let apply op =
          (match Wal.op_of_update store ~root:dnode op with
          | Ok wop -> Wal.Writer.append w wop
          | Error e -> failwith e);
          match Xsm_schema.Update.apply store op with Ok _ -> () | Error e -> failwith e
        in
        apply (Xsm_schema.Update.Insert_element { parent = libr; before = None; tree = book });
        apply (Xsm_schema.Update.Delete (List.hd (List.rev (Store.children store libr))))
      in
      let logged sync_every =
        Sys.remove wal;
        let w =
          match Wal.Writer.create ~sync_every wal with
          | Ok w -> w
          | Error e -> failwith (Wal.error_message e)
        in
        let t = time (fun () -> round w) in
        Wal.Writer.close w;
        t /. 2.0
      in
      let t_rec1 = logged 1 in
      let t_rec64 = logged 64 in
      (* a 200-op log to recover through *)
      save ();
      Sys.remove wal;
      let w =
        match Wal.Writer.create ~sync_every:64 wal with
        | Ok w -> w
        | Error e -> failwith (Wal.error_message e)
      in
      for _ = 1 to 100 do round w done;
      Wal.Writer.close w;
      let t_recover =
        time (fun () ->
            match Xsm_persist.Recovery.recover ~snapshot:snap ~wal () with
            | Ok _ -> ()
            | Error e -> failwith (Xsm_persist.Recovery.error_message e))
      in
      (* buffer behaviour of a block scan over the recovered store *)
      let rstore, rroot, _, _ =
        match Xsm_persist.Recovery.recover ~snapshot:snap ~wal () with
        | Ok r -> r
        | Error e -> failwith (Xsm_persist.Recovery.error_message e)
      in
      let bs = B.of_store ~block_capacity:16 rstore rroot in
      let rec all_snodes sn = sn :: List.concat_map all_snodes (DS.children (B.schema bs) sn) in
      let trace = List.concat_map (BP.scan_trace bs) (all_snodes (DS.root (B.schema bs))) in
      BP.reset pool;
      List.iter (fun b -> ignore (BP.touch pool b)) trace;
      let bstats = BP.stats pool in
      row "%-8d %-8d %-10.2f %-10.1f %-13.1f %-13.1f %-12.2f %5d, %5.1f%%\n" books
        (Store.subtree_size store dnode) (t_snap *. 1e3) snap_kb (t_rec1 *. 1e6)
        (t_rec64 *. 1e6) (t_recover *. 1e3) bstats.BP.misses
        (match BP.hit_ratio bstats with Some r -> 100.0 *. r | None -> Float.nan);
      Sys.remove snap;
      Sys.remove wal)
    [ 50; 200; 800 ]

let e14_static_analysis () =
  header "E14 Static analysis: determinized tables and schema-aware pruning";
  (* (a) wide deterministic choice: per-child follow-list scan is O(k)
     in the alternative count, the compiled table probe is O(1) *)
  row "%-10s %-16s %-14s %-10s\n" "choices" "follow list(us)" "table(us)" "speedup";
  List.iter
    (fun k ->
      let branches =
        List.init k (fun i ->
            Xsm_schema.Ast.elem_p
              (Xsm_schema.Ast.element (Printf.sprintf "n%d" i)
                 (Xsm_schema.Ast.named_type "xs:string")))
      in
      let model = Xsm_schema.Ast.choice ~repetition:Xsm_schema.Ast.many branches in
      let word = List.init 200 (fun i -> Name.local (Printf.sprintf "n%d" (i * 37 mod k))) in
      let a =
        match Xsm_schema.Content_automaton.make model with
        | Ok a -> a
        | Error e -> failwith e
      in
      let table = Option.get (Xsm_schema.Content_automaton.compile a) in
      let t_follow =
        time (fun () -> ignore (Xsm_schema.Content_automaton.matches a word))
      in
      let t_table =
        time (fun () -> ignore (Xsm_schema.Content_automaton.table_matches table word))
      in
      row "%-10d %-16.2f %-14.2f %-10.1f\n" k (t_follow *. 1e6) (t_table *. 1e6)
        (t_follow /. t_table))
    [ 5; 20; 100 ];
  (* (b) validation with the analyzer's precompiled tables.  The
     per-document win is the avoided recompilation, so it shows on
     small documents and amortises away on large ones. *)
  row "\n%-10s %-18s %-18s %-10s\n" "books" "validate(us)" "precompiled(us)" "speedup";
  let report = Xsm_analysis.Analyzer.analyze Xsm_schema.Samples.example7_schema in
  List.iter
    (fun books ->
      let doc = Xsm_schema.Samples.bookstore_document ~books () in
      let validate automata =
        match
          Xsm_schema.Validator.validate_document ?automata doc
            Xsm_schema.Samples.example7_schema
        with
        | Ok _ -> ()
        | Error _ -> failwith "E14: unexpected invalid document"
      in
      let t_plain = time (fun () -> validate None) in
      let t_seeded =
        time (fun () -> validate (Some report.Xsm_analysis.Analyzer.tables))
      in
      row "%-10d %-18.2f %-18.2f %-10.2f\n" books (t_plain *. 1e6) (t_seeded *. 1e6)
        (t_plain /. t_seeded))
    [ 2; 100; 1000 ];
  (* (c) statically-empty query: the pruning planner answers [] without
     consulting indexes or extents; plain planner and naive eval walk *)
  row "\n%-28s %-14s %-14s %-14s %-8s\n" "query (lib 300, dead)" "pruned(us)" "planner(us)"
    "naive(us)" "pruned?";
  let store = Store.create () in
  let doc = Xsm_schema.Samples.library_document ~books:300 ~papers:150 () in
  let dnode = Convert.load store doc in
  let module Pl = Xsm_xpath.Planner.Over_store in
  let plain = Pl.create store dnode in
  let pruned = Pl.create store dnode in
  Pl.set_pruner pruned (Xsm_analysis.Query_static.pruner Xsm_schema.Samples.library_schema);
  List.iter
    (fun q ->
      let eval planner () =
        match Pl.eval_string planner q with Ok _ -> () | Error e -> failwith e
      in
      let before = Pl.pruned_count pruned in
      let t_pruned = time (eval pruned) in
      let t_plain = time (eval plain) in
      let t_naive =
        time (fun () ->
            match Xsm_xpath.Eval.Over_store.eval_string store dnode q with
            | Ok _ -> ()
            | Error e -> failwith e)
      in
      row "%-28s %-14.2f %-14.2f %-14.2f %-8s\n" q (t_pruned *. 1e6) (t_plain *. 1e6)
        (t_naive *. 1e6)
        (if Pl.pruned_count pruned > before then "yes" else "no")
    )
    [ "/library/magazine/title"; "//isbn"; "/library/book/title" ]

let e15_telemetry_overhead () =
  header "E15 Telemetry overhead: spans enabled (no detail, no export) vs disabled";
  (* counters are unconditional, so both columns pay them; the delta
     is the span machinery behind the Obs.enabled ref.  Detail spans
     (one per validated element) are --trace-only and excluded — this
     measures the configuration a deployment would leave on. *)
  row "%-30s %-14s %-14s %-10s\n" "workload" "off(us)" "on(us)" "overhead";
  let doc = Xsm_schema.Samples.bookstore_document ~books:1000 () in
  let e1 () =
    match Xsm_schema.Validator.validate_document doc Xsm_schema.Samples.example7_schema with
    | Ok _ -> ()
    | Error _ -> failwith "E15: unexpected invalid document"
  in
  let store, dnode = load_library 300 in
  let module Pl = Xsm_xpath.Planner.Over_store in
  let planner = Pl.create store dnode in
  let e11 () =
    match Pl.eval_string planner "//author" with Ok _ -> () | Error e -> failwith e
  in
  (* The span cost is nanoseconds per call while scheduler/GC/clock
     drift on the host is percents over seconds, so the two
     configurations are sampled in small strictly-alternating batches
     (~25ms each): both columns see the same drift and it cancels in
     the ratio of the accumulated sums. *)
  let measure f =
    (* warm up in both configurations: the first enabled span
       allocates the retention ring, which must not land in a timed
       batch *)
    Xsm_obs.Obs.enable ();
    f ();
    Xsm_obs.Obs.disable ();
    f ();
    let t1 = time_once f in
    let reps = max 1 (int_of_float (0.025 /. Float.max t1 1e-9)) in
    let batch () = time_once (fun () -> for _ = 1 to reps do f () done) in
    let t_off = ref 0.0 and t_on = ref 0.0 in
    Gc.full_major ();
    for _ = 1 to 40 do
      Xsm_obs.Obs.disable ();
      t_off := !t_off +. batch ();
      Xsm_obs.Obs.enable ();
      t_on := !t_on +. batch ()
    done;
    Xsm_obs.Obs.disable ();
    Xsm_obs.Trace.reset ();
    let per_call total = total /. float_of_int (40 * reps) in
    (per_call !t_off, per_call !t_on)
  in
  List.iter
    (fun (label, f) ->
      let t_off, t_on = measure f in
      row "%-30s %-14.1f %-14.1f %+.2f%%\n" label (t_off *. 1e6) (t_on *. 1e6)
        (100.0 *. (t_on -. t_off) /. t_off))
    [ ("E1 validate (1000 books)", e1); ("E11 indexed query //author", e11) ]

let run () =
  print_endline "xsm experiment report — paper: A Formal Model of XML Schema (ICDE 2005)";
  print_endline "(shape reproduction; absolute numbers depend on this machine)";
  e1_validation_scaling ();
  e2_automaton_vs_backtracking ();
  e3_roundtrip_theorem ();
  e4_document_order ();
  e5_predicates_vs_depth ();
  e6_update_stability ();
  e7_descriptive_schema ();
  e8_schema_driven_queries ();
  e9_accessor_reconstruction ();
  e10_datatype_throughput ();
  e11_index_vs_naive ();
  e12_incremental_maintenance ();
  e13_durability ();
  e14_static_analysis ();
  e15_telemetry_overhead ();
  a1_block_capacity ();
  a2_expansion_cost ();
  a3_label_assignment_policy ();
  a4_buffer_locality ();
  print_endline "\nreport complete."
