(* Bench entry point.

   Default: Bechamel micro-benchmarks, one group per experiment E1-E15
   (ns/op with OLS estimation).  With --report: the full experiment
   harness that regenerates the EXPERIMENTS.md tables.  With --smoke:
   a fast pass over every micro-benchmark (tiny quota), used by CI to
   keep the bench code from rotting. *)

open Bechamel

module Store = Xsm_xdm.Store
module Convert = Xsm_xdm.Convert
module Name = Xsm_xml.Name
module Label = Xsm_numbering.Sedna_label
module B = Xsm_storage.Block_storage

let staged = Staged.stage

(* ---------------- shared fixtures (built once) ---------------- *)

let bookstore_doc = Xsm_schema.Samples.bookstore_document ~books:200 ()

let library_fixture =
  lazy
    (let store = Store.create () in
     let doc = Xsm_schema.Samples.library_document ~books:300 ~papers:150 () in
     let dnode = Convert.load store doc in
     let bs = B.of_store store dnode in
     let labels = Xsm_numbering.Labeler.label_tree store dnode in
     (store, dnode, bs, labels))

let adversarial_model n =
  let optional_a =
    List.init n (fun _ ->
        Xsm_schema.Ast.elem_p
          (Xsm_schema.Ast.element ~repetition:Xsm_schema.Ast.optional "a"
             (Xsm_schema.Ast.named_type "xs:string")))
  in
  let mandatory_a =
    List.init n (fun _ ->
        Xsm_schema.Ast.elem_p (Xsm_schema.Ast.element "a" (Xsm_schema.Ast.named_type "xs:string")))
  in
  (Xsm_schema.Ast.sequence (optional_a @ mandatory_a), List.init n (fun _ -> Name.local "a"))

(* ---------------- the tests ---------------- *)

let tests () =
  let e1 =
    Test.make ~name:"E1 validate bookstore(200 books)"
      (staged (fun () ->
           match
             Xsm_schema.Validator.validate_document bookstore_doc
               Xsm_schema.Samples.example7_schema
           with
           | Ok _ -> ()
           | Error _ -> failwith "invalid"))
  in
  let model, word = adversarial_model 10 in
  let automaton =
    match Xsm_schema.Content_automaton.make model with Ok a -> a | Error e -> failwith e
  in
  let e2a =
    Test.make ~name:"E2 automaton match (a?){10}a{10}"
      (staged (fun () -> ignore (Xsm_schema.Content_automaton.matches automaton word)))
  in
  let e2b =
    Test.make ~name:"E2 backtrack match (a?){10}a{10}"
      (staged (fun () -> ignore (Xsm_schema.Backtrack.matches model word)))
  in
  let e3 =
    Test.make ~name:"E3 roundtrip g(f(X)) bookstore(20)"
      (let doc = Xsm_schema.Samples.bookstore_document ~books:20 () in
       staged (fun () ->
           match Xsm_schema.Roundtrip.holds_for doc Xsm_schema.Samples.example7_schema with
           | Ok true -> ()
           | _ -> failwith "roundtrip failed"))
  in
  let store, dnode, bs, labels = Lazy.force library_fixture in
  let nodes = Array.of_list (Store.descendants_or_self store dnode) in
  let n = Array.length nodes in
  let a_node = nodes.(n / 3) and b_node = nodes.(2 * n / 3) in
  let la = Xsm_numbering.Labeler.label labels a_node in
  let lb = Xsm_numbering.Labeler.label labels b_node in
  let e4a =
    Test.make ~name:"E4 order via accessors"
      (staged (fun () -> ignore (Xsm_xdm.Order.compare store a_node b_node)))
  in
  let e4b =
    Test.make ~name:"E4 order via labels"
      (staged (fun () -> ignore (Label.compare la lb)))
  in
  let e5 =
    Test.make ~name:"E5 ancestor predicate on labels"
      (staged (fun () -> ignore (Label.is_ancestor la lb)))
  in
  let e6 =
    Test.make ~name:"E6 between-label insertion"
      (let kids = Label.assign_children Label.root 2 in
       let l1 = List.nth kids 0 and l2 = List.nth kids 1 in
       staged (fun () -> ignore (Label.between l1 l2)))
  in
  let e7 =
    Test.make ~name:"E7 descriptive schema build (lib 300)"
      (staged (fun () -> ignore (Xsm_storage.Descriptive_schema.of_tree store dnode)))
  in
  let rootd = B.root bs in
  let e8a =
    Test.make ~name:"E8 navigational //author"
      (staged (fun () ->
           match Xsm_xpath.Eval.Over_storage.eval_string bs rootd "//author" with
           | Ok _ -> ()
           | Error e -> failwith e))
  in
  let e8b =
    Test.make ~name:"E8 schema-driven //author"
      (staged (fun () ->
           match Xsm_xpath.Schema_driven.eval_string bs "//author" with
           | Ok _ -> ()
           | Error e -> failwith e))
  in
  let mid = Option.get (B.descriptor_of_node bs nodes.(n / 2)) in
  let e9 =
    Test.make ~name:"E9 string-value from descriptors"
      (staged (fun () -> ignore (B.string_value bs mid)))
  in
  let e10 =
    Test.make ~name:"E10 validate xs:dateTime value"
      (staged (fun () ->
           match
             Xsm_datatypes.Builtin.validate
               (Xsm_datatypes.Builtin.Primitive Xsm_datatypes.Builtin.P_date_time)
               "2004-10-28T09:00:00Z"
           with
           | Ok _ -> ()
           | Error e -> failwith e))
  in
  let module Pl = Xsm_xpath.Planner.Over_store in
  let planner = Pl.create store dnode in
  let indexed name q =
    (* warm the caches so steady-state probes are measured *)
    (match Pl.eval_string planner q with Ok _ -> () | Error e -> failwith e);
    Test.make ~name
      (staged (fun () ->
           match Pl.eval_string planner q with
           | Ok _ -> ()
           | Error e -> failwith e))
  in
  let naive name q =
    Test.make ~name
      (staged (fun () ->
           match Xsm_xpath.Eval.Over_store.eval_string store dnode q with
           | Ok _ -> ()
           | Error e -> failwith e))
  in
  let e11a = naive "E11 naive //author (lib 300)" "//author" in
  let e11b = indexed "E11 indexed //author (lib 300)" "//author" in
  let e11c = naive "E11 naive //book[year<1990]" "//book[issue/year<1990]/title" in
  let e11d = indexed "E11 indexed //book[year<1990]" "//book[issue/year<1990]/title" in
  let e11e =
    Test.make ~name:"E11 path index build (lib 300)"
      (staged (fun () -> ignore (Pl.create store dnode)))
  in
  (* E12: one update + the query that consumes it, maintained
     differentially vs rebuilt from scratch.  Dedicated stores — the
     updates must not disturb the shared fixture.  Each iteration
     inserts a book, queries, deletes it again, so the document returns
     to its starting state and the measurement is steady-state. *)
  let e12_fixture () =
    let store = Store.create () in
    let doc = Xsm_schema.Samples.library_document ~books:300 ~papers:150 () in
    let dnode = Convert.load store doc in
    (store, dnode, List.hd (Store.children store dnode))
  in
  let e12_book =
    Xsm_xml.Tree.elem "book"
      ~children:
        [
          Xsm_xml.Tree.element
            (Xsm_xml.Tree.elem "author" ~children:[ Xsm_xml.Tree.text "Bench" ]);
        ]
  in
  let e12_round store planner libr journal ~notify =
    let apply op =
      match Xsm_schema.Update.apply ?journal store op with
      | Ok a ->
        notify ();
        a
      | Error e -> failwith e
    in
    let query () =
      match Pl.eval_string planner "//author" with
      | Ok _ -> ()
      | Error e -> failwith e
    in
    ignore
      (apply
         (Xsm_schema.Update.Insert_element
            { parent = libr; before = None; tree = e12_book }));
    query ();
    let last = List.rev (Store.children store libr) |> List.hd in
    ignore (apply (Xsm_schema.Update.Delete last));
    query ()
  in
  let e12a =
    Test.make ~name:"E12 update+query, maintained (lib 300)"
      (let store, dnode, libr = e12_fixture () in
       let planner = Pl.create store dnode in
       let journal = Xsm_schema.Update.Journal.create () in
       Xsm_xpath.Planner.attach_journal planner journal;
       staged (fun () ->
           e12_round store planner libr (Some journal) ~notify:(fun () -> ())))
  in
  let e12b =
    Test.make ~name:"E12 update+query, rebuild (lib 300)"
      (let store, dnode, libr = e12_fixture () in
       let planner = Pl.create store dnode in
       staged (fun () ->
           e12_round store planner libr None ~notify:(fun () -> Pl.invalidate planner)))
  in
  (* E13: durability.  WAL append overhead on a steady-state
     insert+delete round (logged vs not), with the fsync either per
     record or batched; snapshot save; full recovery.  Files live
     under the temp dir and are reused across iterations. *)
  let e13_round store dnode libr ~log =
    let apply op =
      log op;
      match Xsm_schema.Update.apply store op with
      | Ok a -> a
      | Error e -> failwith e
    in
    ignore dnode;
    ignore
      (apply
         (Xsm_schema.Update.Insert_element
            { parent = libr; before = None; tree = e12_book }));
    let last = List.rev (Store.children store libr) |> List.hd in
    ignore (apply (Xsm_schema.Update.Delete last))
  in
  let e13_logged sync_every =
    let store, dnode, libr = e12_fixture () in
    let wal_path = Filename.temp_file "xsm_bench" ".wal" in
    Sys.remove wal_path;
    let w =
      match Xsm_persist.Wal.Writer.create ~sync_every wal_path with
      | Ok w -> w
      | Error e -> failwith (Xsm_persist.Wal.error_message e)
    in
    staged (fun () ->
        e13_round store dnode libr ~log:(fun op ->
            match Xsm_persist.Wal.op_of_update store ~root:dnode op with
            | Ok wop -> Xsm_persist.Wal.Writer.append w wop
            | Error e -> failwith e))
  in
  let e13a =
    Test.make ~name:"E13 update round, no WAL (lib 300)"
      (let store, dnode, libr = e12_fixture () in
       staged (fun () -> e13_round store dnode libr ~log:(fun _ -> ())))
  in
  let e13b = Test.make ~name:"E13 update round, WAL fsync/rec (lib 300)" (e13_logged 1) in
  let e13c = Test.make ~name:"E13 update round, WAL fsync/64 (lib 300)" (e13_logged 64) in
  let e13d =
    Test.make ~name:"E13 snapshot save (lib 300)"
      (let store, dnode, _ = e12_fixture () in
       let path = Filename.temp_file "xsm_bench" ".snap" in
       staged (fun () ->
           match Xsm_persist.Snapshot.save ~path store dnode with
           | Ok _ -> ()
           | Error e -> failwith e))
  in
  let e13e =
    Test.make ~name:"E13 recover snapshot+100-op WAL (lib 300)"
      ((* prepare once: a snapshot and a 100-op log *)
       let store, dnode, libr = e12_fixture () in
       let snap = Filename.temp_file "xsm_bench" ".snap" in
       let wal = Filename.temp_file "xsm_bench" ".wal" in
       Sys.remove wal;
       (match Xsm_persist.Snapshot.save ~path:snap store dnode with
       | Ok _ -> ()
       | Error e -> failwith e);
       let w =
         match Xsm_persist.Wal.Writer.create ~sync_every:64 wal with
         | Ok w -> w
         | Error e -> failwith (Xsm_persist.Wal.error_message e)
       in
       for _ = 1 to 50 do
         e13_round store dnode libr ~log:(fun op ->
             match Xsm_persist.Wal.op_of_update store ~root:dnode op with
             | Ok wop -> Xsm_persist.Wal.Writer.append w wop
             | Error e -> failwith e)
       done;
       Xsm_persist.Wal.Writer.close w;
       staged (fun () ->
           match Xsm_persist.Recovery.recover ~snapshot:snap ~wal () with
           | Ok _ -> ()
           | Error e -> failwith (Xsm_persist.Recovery.error_message e)))
  in
  (* E14: static-analysis payoffs.  (a/b) child matching on a wide
     deterministic choice: follow-list automaton vs compiled transition
     table; (c) validation seeded with the analyzer's precompiled
     tables; (d/e/f) a statically-empty query answered by the pruning
     planner without touching extents, vs the plain planner and naive
     evaluation. *)
  let wide_model, wide_word =
    let branches =
      List.init 100 (fun i ->
          Xsm_schema.Ast.elem_p
            (Xsm_schema.Ast.element (Printf.sprintf "n%d" i)
               (Xsm_schema.Ast.named_type "xs:string")))
    in
    ( Xsm_schema.Ast.choice ~repetition:Xsm_schema.Ast.many branches,
      List.init 200 (fun i -> Name.local (Printf.sprintf "n%d" (i * 37 mod 100))) )
  in
  let wide_automaton =
    match Xsm_schema.Content_automaton.make wide_model with
    | Ok a -> a
    | Error e -> failwith e
  in
  let wide_table = Option.get (Xsm_schema.Content_automaton.compile wide_automaton) in
  let e14a =
    Test.make ~name:"E14 wide-choice{100} match, follow list"
      (staged (fun () ->
           ignore (Xsm_schema.Content_automaton.matches wide_automaton wide_word)))
  in
  let e14b =
    Test.make ~name:"E14 wide-choice{100} match, table"
      (staged (fun () ->
           ignore (Xsm_schema.Content_automaton.table_matches wide_table wide_word)))
  in
  let e14c =
    Test.make ~name:"E14 validate bookstore, precompiled"
      (let report = Xsm_analysis.Analyzer.analyze Xsm_schema.Samples.example7_schema in
       staged (fun () ->
           match
             Xsm_schema.Validator.validate_document
               ~automata:report.Xsm_analysis.Analyzer.tables bookstore_doc
               Xsm_schema.Samples.example7_schema
           with
           | Ok _ -> ()
           | Error _ -> failwith "invalid"))
  in
  let dead_query = "/library/magazine/title" in
  let e14d =
    Test.make ~name:"E14 dead query, pruning planner"
      (let pruned = Pl.create store dnode in
       Pl.set_pruner pruned (Xsm_analysis.Query_static.pruner Xsm_schema.Samples.library_schema);
       staged (fun () ->
           match Pl.eval_string pruned dead_query with
           | Ok [] -> ()
           | Ok _ -> failwith "dead query returned nodes"
           | Error e -> failwith e))
  in
  let e14e = indexed "E14 dead query, plain planner" dead_query in
  let e14f = naive "E14 dead query, naive eval" dead_query in
  (* E15: telemetry.  The raw span record (push + two clock reads +
     ring write) and the disabled fast path (one ref read), isolated
     from any workload; the report harness measures the end-to-end
     <2% claim on E1/E11. *)
  let e15a =
    Test.make ~name:"E15 with_span, enabled (record)"
      ((* force the one-time ring allocation out of the measured loop *)
       Xsm_obs.Obs.enable ();
       Xsm_obs.Trace.with_span "warm" ignore;
       Xsm_obs.Obs.disable ();
       staged (fun () ->
           Xsm_obs.Obs.enable ();
           Xsm_obs.Trace.with_span "bench" ignore;
           Xsm_obs.Obs.disable ()))
  in
  let e15b =
    Test.make ~name:"E15 with_span, disabled (ref read)"
      (staged (fun () -> Xsm_obs.Trace.with_span "bench" ignore))
  in
  let e15c =
    Test.make ~name:"E15 counter bump"
      (let c = Xsm_obs.Metrics.Counter.make "bench.e15" in
       staged (fun () -> Xsm_obs.Metrics.Counter.incr c))
  in
  [
    e1; e2a; e2b; e3; e4a; e4b; e5; e6; e7; e8a; e8b; e9; e10; e11a; e11b; e11c; e11d;
    e11e; e12a; e12b; e13a; e13b; e13c; e13d; e13e; e14a; e14b; e14c; e14d; e14e; e14f;
    e15a; e15b; e15c;
  ]

let run_bechamel ?(smoke = false) () =
  let cfg =
    if smoke then Benchmark.cfg ~limit:25 ~quota:(Time.second 0.01) ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  Printf.printf "%-42s %14s %10s\n" "benchmark" "ns/op" "r2";
  Printf.printf "%s\n" (String.make 68 '-');
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg instances elt in
          let result = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          let estimate =
            match Analyze.OLS.estimates result with Some [ e ] -> e | Some _ | None -> nan
          in
          let r2 = Option.value ~default:nan (Analyze.OLS.r_square result) in
          Printf.printf "%-42s %14.1f %10.4f\n" (Test.Elt.name elt) estimate r2)
        (Test.elements test))
    (tests ())

let () =
  let args = Array.to_list Sys.argv in
  match args with
  | _ :: "--e16-child" :: mode :: file :: _ -> E16.child mode file
  | _ when List.mem "--e16" args -> E16.run ~smoke:(List.mem "--smoke" args) ()
  | _ :: "--e18-child" :: mode :: corpus :: pages :: _ -> E18.child mode corpus pages
  | _ when List.mem "--e18" args -> E18.run ~smoke:(List.mem "--smoke" args) ()
  | _ when List.mem "--e19" args -> E19.run ~smoke:(List.mem "--smoke" args) ()
  | _ when List.mem "--e20" args -> E20.run ~smoke:(List.mem "--smoke" args) ()
  | _ ->
    if List.mem "--report" args then Report.run ()
    else begin
      run_bechamel ~smoke:(List.mem "--smoke" args) ();
      print_endline
        "\n(run with --report for the full E1-E15 experiment tables, --e16 for streaming ingest,\n --e18 for paged storage under memory pressure, --e19 for cost-based planning,\n --e20 for observability overhead)"
    end
