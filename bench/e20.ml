(* E20: the price of always-on observability.

   The daemon ships with its observability layer unconditionally on:
   every request leaves a digest in the flight recorder, tracing is
   enabled (bounded ring) so request/phase spans are recorded, GC
   gauges are sampled at batch boundaries.  The claim this experiment
   defends is that the whole layer is cheap enough to never turn off —
   under 5% of loopback serve throughput.

   Method: one in-process server per variant (same document, same
   workload, one closed-loop client over the Unix socket, 90% indexed
   queries / 10% updates), measured as end-to-end requests per second,
   best of [trials] runs per variant:

   - {b obs on}: the shipped default — tracing enabled, flight
     digests, runtime sampling, estimate-vs-actual on every planner
     digest.
   - {b obs off}: tracing disabled after boot.  The flight recorder
     has no off switch by design, so this variant prices the span
     layer on top of the always-on digest floor; the digest floor
     itself is priced separately below as ns/record.

   Also reported: the micro-cost of one flight-recorder record and of
   rendering the full registry as OpenMetrics text (what a scrape
   pays).

   With [--smoke] the run is small and asserts the headline bound
   (used by CI): on-throughput >= 0.95x off-throughput. *)

module Store = Xsm_xdm.Store
module Convert = Xsm_xdm.Convert
module Server = Xsm_server.Server
module Client = Xsm_server.Client
module Clock = Xsm_obs.Clock
module Flight = Xsm_obs.Flight
module Metrics = Xsm_obs.Metrics

let instance = ref 0

let with_server ~obs f =
  let store = Store.create () in
  let doc = Xsm_schema.Samples.library_document ~books:120 ~papers:60 () in
  let dnode = Convert.load store doc in
  incr instance;
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "xsm-e20-%d-%d.sock" (Unix.getpid ()) !instance)
  in
  let config =
    {
      Server.socket_path = sock;
      snapshot_path = None;
      wal_path = None (* no fsync in the loop: it would drown the effect measured *);
      domains = 2;
      group_commit = true;
      use_index = true (* planner path: digests carry routes and estimates *);
      page_file = None;
      pool_capacity = 64;
      flight_capacity = 256;
      slow_log = None;
      slow_threshold_ms = 10.0;
    }
  in
  let srv =
    match Server.create config ~store ~root:dnode () with
    | Ok s -> s
    | Error e -> failwith e
  in
  let ready = Semaphore.Binary.make false in
  let outcome = ref (Ok ()) in
  let t =
    Thread.create
      (fun () ->
        outcome := Server.serve ~on_ready:(fun () -> Semaphore.Binary.release ready) srv)
      ()
  in
  Semaphore.Binary.acquire ready;
  (* [create] enables tracing (the daemon default); the baseline
     variant switches it off for the duration of its load *)
  if obs then Xsm_obs.Obs.enable () else Xsm_obs.Obs.disable ();
  let result = f sock in
  Server.request_stop srv;
  Thread.join t;
  Xsm_obs.Obs.disable ();
  (match !outcome with Ok () -> () | Error e -> failwith e);
  result

(* closed loop: one client, a fixed request script, wall-clock req/s *)
let run_load sock ~requests =
  let c = match Client.connect ~client:"e20" sock with Ok c -> c | Error e -> failwith e in
  let t0 = Clock.now_ns () in
  for j = 0 to requests - 1 do
    if j mod 10 = 9 then (
      match Client.update c (Printf.sprintf "attr /library seq x%d" j) with
      | Ok _ -> ()
      | Error e -> failwith e)
    else
      match Client.query c "//author" with Ok _ -> () | Error e -> failwith e
  done;
  let t1 = Clock.now_ns () in
  Client.close c;
  float_of_int requests /. (Int64.to_float (Int64.sub t1 t0) /. 1e9)

(* one warmup pass then [trials] interleaved off/on pairs, best of
   each: successive server boots run measurably faster as the major
   heap grows, so measuring all-off-then-all-on would credit the
   second variant with the warmup *)
let throughput_pair ~requests ~trials =
  ignore (with_server ~obs:true (fun sock -> run_load sock ~requests));
  let best_off = ref 0.0 and best_on = ref 0.0 in
  for _ = 1 to trials do
    let off = with_server ~obs:false (fun sock -> run_load sock ~requests) in
    let on = with_server ~obs:true (fun sock -> run_load sock ~requests) in
    if off > !best_off then best_off := off;
    if on > !best_on then best_on := on
  done;
  (!best_off, !best_on)

(* the always-on digest floor: ns per Flight.record on a warm ring,
   keep policy included (everything Done, so evictions hit the
   slow-tail insertion path) *)
let flight_record_ns () =
  let f = Flight.create ~capacity:256 () in
  let d : Flight.digest =
    {
      seq = 0;
      at_ns = 0L;
      kind = "query";
      detail = "//author";
      route = "index";
      est_lo = 100;
      est_hi = 200;
      actual_rows = 150;
      pager_hits = 0;
      pager_evictions = 0;
      fsync_ns = 0L;
      latency_ns = 50_000L;
      outcome = Flight.Done;
      session = 0;
      request = 0;
      trace_id = "";
      plan = None;
    }
  in
  let n = 200_000 in
  let t0 = Clock.now_ns () in
  for i = 1 to n do
    Flight.record f { d with latency_ns = Int64.of_int (i land 0xffff) }
  done;
  let t1 = Clock.now_ns () in
  Int64.to_float (Int64.sub t1 t0) /. float_of_int n

(* what one scrape pays: render the full default registry *)
let openmetrics_render_us () =
  Metrics.Runtime.sample ();
  let n = 500 in
  let t0 = Clock.now_ns () in
  for _ = 1 to n do
    ignore (Metrics.to_openmetrics Metrics.default)
  done;
  let t1 = Clock.now_ns () in
  Int64.to_float (Int64.sub t1 t0) /. float_of_int n /. 1e3

let run ?(smoke = false) () =
  let requests = if smoke then 400 else 4000 in
  let trials = 3 in
  Printf.printf "E20 observability overhead (in-process daemon, loopback, %d requests, best of %d)\n"
    requests trials;
  let off, on = throughput_pair ~requests ~trials in
  let overhead = (off -. on) /. off *. 100.0 in
  Printf.printf "  obs off  %10.0f req/s\n" off;
  Printf.printf "  obs on   %10.0f req/s\n" on;
  Printf.printf "  overhead %9.1f%%\n" overhead;
  Printf.printf "  flight record        %8.1f ns/digest (always-on floor)\n"
    (flight_record_ns ());
  Printf.printf "  openmetrics render   %8.1f us/scrape\n" (openmetrics_render_us ());
  if smoke then
    if on >= 0.95 *. off then print_endline "  smoke: OK (full observability within 5%)"
    else begin
      Printf.printf "  smoke: FAIL (observability costs %.1f%% > 5%%)\n" overhead;
      exit 1
    end
