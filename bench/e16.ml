(* E16: streaming ingest vs the tree path — throughput and peak memory.

   The claim under test: the SAX pipeline validates and bulk-loads in
   O(depth) memory at tree-path throughput, so its peak RSS stays flat
   as the document grows while the tree path's peak tracks document
   size.

   Peak RSS (VmHWM in /proc/self/status) is a high-water mark of the
   whole process, so the modes cannot share one process: the parent
   generates a corpus file once, then re-execs itself ([--e16-child
   MODE FILE]) per mode and reads each child's own measurement.  With
   [--smoke] the corpus is small and the run asserts the memory bound
   (used by CI); the full run prints the EXPERIMENTS.md table. *)

module Ast = Xsm_schema.Ast
module Parser = Xsm_xml.Parser
module Validator = Xsm_schema.Validator
module Store = Xsm_xdm.Store
module Convert = Xsm_xdm.Convert
module Bs = Xsm_storage.Block_storage
module Sax = Xsm_stream.Sax
module SV = Xsm_stream.Stream_validator
module BL = Xsm_stream.Bulk_load

let fields = 5

(* doc = rec*;  rec = @id, k0..k4 : xs:string *)
let schema =
  let field i =
    Ast.elem_p (Ast.element (Printf.sprintf "k%d" i) (Ast.named_type "xs:string"))
  in
  let rec_type =
    Ast.complex
      ~attributes:[ Ast.attribute "id" "xs:string" ]
      (Some (Ast.sequence (List.init fields field)))
  in
  Ast.schema
    (Ast.element "doc"
       (Ast.Anonymous
          (Ast.complex
             (Some
                (Ast.sequence
                   [ Ast.elem_p (Ast.element ~repetition:Ast.many "rec" (Ast.Anonymous rec_type)) ])))))

(* Deterministic corpus: records of a few hundred bytes until the
   target size is reached.  A tiny LCG varies the payload so text runs
   are not one repeated page. *)
let generate path target_bytes =
  let oc = open_out_bin path in
  let state = ref 0x2545F491 in
  let word () =
    state := (!state * 1103515245) + 12345;
    Printf.sprintf "w%06x" (!state land 0xFFFFFF)
  in
  output_string oc "<doc>";
  let n = ref 0 in
  while pos_out oc < target_bytes do
    incr n;
    Printf.fprintf oc "<rec id=\"r%d\">" !n;
    for i = 0 to fields - 1 do
      Printf.fprintf oc "<k%d>%s %s %s %s</k%d>" i (word ()) (word ()) (word ()) (word ()) i
    done;
    output_string oc "</rec>"
  done;
  output_string oc "</doc>";
  close_out oc;
  !n

let vmhwm_kb () =
  let ic = open_in "/proc/self/status" in
  let rec scan () =
    match input_line ic with
    | line ->
      if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
        Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d" (fun kb -> kb)
      else scan ()
    | exception End_of_file -> -1
  in
  let kb = scan () in
  close_in ic;
  kb

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let with_channel path f =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)

let modes = [ "tree-validate"; "stream-validate"; "tree-load"; "stream-load" ]

(* One measured run inside a fresh process; prints a machine line the
   parent parses. *)
let child mode file =
  let bytes = (Unix.stat file).Unix.st_size in
  let t0 = Unix.gettimeofday () in
  let ok =
    match mode with
    | "tree-validate" -> (
      match Parser.parse_document (read_file file) with
      | Error _ -> false
      | Ok doc -> (
        match Validator.validate_document doc schema with Ok _ -> true | Error _ -> false))
    | "stream-validate" ->
      with_channel file (fun ic ->
          match SV.run schema (Sax.of_channel ic) with Ok _ -> true | Error _ -> false)
    | "tree-load" -> (
      match Parser.parse_document (read_file file) with
      | Error _ -> false
      | Ok doc ->
        let store = Store.create () in
        let dnode = Convert.load store doc in
        let bs = Bs.of_store store dnode in
        Bs.descriptor_count bs > 0)
    | "stream-load" ->
      with_channel file (fun ic ->
          let bs, _ = BL.load (Sax.of_channel ic) in
          Bs.descriptor_count bs > 0)
    | m -> invalid_arg ("e16 child mode " ^ m)
  in
  let ms = (Unix.gettimeofday () -. t0) *. 1000. in
  Printf.printf "E16CHILD %s %d %.1f %d %b\n" mode bytes ms (vmhwm_kb ()) ok

type sample = { mode : string; bytes : int; ms : float; hwm_kb : int; ok : bool }

let run_child file mode =
  let out = Filename.temp_file "e16" ".out" in
  let cmd =
    Filename.quote_command Sys.executable_name ~stdout:out [ "--e16-child"; mode; file ]
  in
  let status = Sys.command cmd in
  let line = with_channel out input_line in
  Sys.remove out;
  if status <> 0 then failwith (Printf.sprintf "e16 child %s exited %d" mode status);
  Scanf.sscanf line "E16CHILD %s %d %f %d %b" (fun mode bytes ms hwm_kb ok ->
      { mode; bytes; ms; hwm_kb; ok })

let run ~smoke () =
  let target = if smoke then 20_000_000 else 120_000_000 in
  let file = Filename.temp_file "e16-corpus" ".xml" in
  Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
  let records = generate file target in
  let size = (Unix.stat file).Unix.st_size in
  Printf.printf "E16: streaming ingest vs tree path (%.1f MB, %d records)\n\n"
    (float_of_int size /. 1e6) records;
  Printf.printf "%-18s %10s %10s %12s\n" "mode" "ms" "MB/s" "peak RSS";
  Printf.printf "%s\n" (String.make 54 '-');
  let samples = List.map (run_child file) modes in
  List.iter
    (fun s ->
      if not s.ok then failwith ("e16: mode " ^ s.mode ^ " failed its run");
      Printf.printf "%-18s %10.0f %10.1f %9.1f MB\n" s.mode s.ms
        (float_of_int s.bytes /. 1e6 /. (s.ms /. 1000.))
        (float_of_int s.hwm_kb /. 1024.))
    samples;
  let hwm m = (List.find (fun s -> s.mode = m) samples).hwm_kb in
  let ratio_v = float_of_int (hwm "tree-validate") /. float_of_int (hwm "stream-validate") in
  let ratio_l = float_of_int (hwm "tree-load") /. float_of_int (hwm "stream-load") in
  Printf.printf "\npeak-RSS ratio tree/stream: validate %.1fx, load %.1fx\n" ratio_v ratio_l;
  if smoke then begin
    (* the CI bound: the streaming validator must hold its O(depth)
       promise even on the small smoke corpus *)
    if ratio_v < 5. then
      failwith
        (Printf.sprintf "E16 smoke: tree/stream validate RSS ratio %.1f below the 5x bound"
           ratio_v);
    print_endline "E16 smoke: memory bound holds"
  end
