(* E18: disk-paged storage under memory pressure — bounded RSS with a
   working set far larger than the buffer pool.

   Two claims, two corpora:

   {b Pressure.}  A narrow, value-heavy corpus (two ~1.8 KB text
   fields per record) is bulk-loaded with a pager attached and a pool
   an order of magnitude smaller than the block working set.  Paging
   moves descriptor {e values} (the skeleton stays resident), so the
   load must complete with evictions recycling frames and a peak RSS
   below the resident store's — graceful degradation, not OOM.

   {b Cold cache.}  A wide corpus (50 fields, so each record spans
   ~102 schema extents — far more block lists than a small pool
   holds) is checkpointed to a page file, reopened cold, and read two
   ways: E11's extent scan (block-list order, scan-hinted) against
   document-order navigation, which hops between extents on every
   step and faults the same blocks over and over.

   Peak RSS (VmHWM) is a process-wide high-water mark, so each mode
   runs in its own re-exec'd child ([--e18-child MODE CORPUS PAGES]),
   exactly like E16.  With [--smoke] the corpora are small and the run
   asserts the paging invariants (used by CI); the full run prints the
   EXPERIMENTS.md table. *)

module Bs = Xsm_storage.Block_storage
module Schema = Xsm_storage.Descriptive_schema
module Pager = Xsm_pager.Pager
module Page_file = Xsm_pager.Page_file
module Sax = Xsm_stream.Sax
module BL = Xsm_stream.Bulk_load

let pool_capacity = 48
let prep_pool = 256

(* Deterministic corpus: [fields] text children per record, each
   [words] LCG-varied 12-byte words, until the target size is
   reached. *)
let generate path ~fields ~words target_bytes =
  let oc = open_out_bin path in
  let state = ref 0x2545F491 in
  let word () =
    state := (!state * 1103515245) + 12345;
    Printf.sprintf "w%06x" (!state land 0xFFFFFF)
  in
  output_string oc "<doc>";
  let n = ref 0 in
  while pos_out oc < target_bytes do
    incr n;
    Printf.fprintf oc "<rec id=\"r%d\">" !n;
    for i = 0 to fields - 1 do
      Printf.fprintf oc "<k%d>" i;
      for _ = 1 to words do
        output_string oc (word ());
        output_char oc ' '
      done;
      Printf.fprintf oc "</k%d>" i
    done;
    output_string oc "</rec>"
  done;
  output_string oc "</doc>";
  close_out oc;
  !n

let vmhwm_kb () =
  let ic = open_in "/proc/self/status" in
  let rec scan () =
    match input_line ic with
    | line ->
      if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
        Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d" (fun kb -> kb)
      else scan ()
    | exception End_of_file -> -1
  in
  let kb = scan () in
  close_in ic;
  kb

let with_channel path f =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)

let pump ic bl =
  let sax = Sax.of_channel ic in
  let rec go () =
    match Sax.next sax with
    | Some e ->
      BL.feed bl e;
      go ()
    | None -> ()
  in
  go ()

(* Bulk load with a pager attached *before* the load, so eviction
   bounds the high-water mark while blocks are being filled. *)
let paged_load corpus pages ~capacity =
  with_channel corpus (fun ic ->
      let bl = BL.create () in
      let bs = BL.storage bl in
      let pf = Page_file.create pages in
      ignore (Bs.attach_pager bs ~capacity pf);
      pump ic bl;
      let bs, _ = BL.finish bl in
      Bs.checkpoint bs ~lsn:0;
      (bs, pf))

(* Walk the whole document in document order through the accessors —
   the navigation pattern of E11, hopping between per-snode block
   lists on every level change. *)
let navigate bs =
  let total = ref 0 in
  let rec walk d =
    (match Bs.node_kind d with
    | "text" | "attribute" -> total := !total + String.length (Bs.string_value bs d)
    | _ -> ());
    List.iter walk (Bs.attributes bs d);
    List.iter walk (Bs.children bs d)
  in
  walk (Bs.root bs);
  !total

(* Scan every extent (per-snode block list, scan-hinted) and read the
   values — E11's extent-scan access path. *)
let extent_scan bs =
  let schema = Bs.schema bs in
  let total = ref 0 in
  let rec snodes acc s = List.fold_left snodes (s :: acc) (Schema.children schema s) in
  List.iter
    (fun s ->
      List.iter
        (fun d ->
          match Bs.node_kind d with
          | "text" | "attribute" -> total := !total + String.length (Bs.string_value bs d)
          | _ -> ())
        (Bs.descendants_by_snode bs s))
    (List.rev (snodes [] (Schema.root schema)));
  !total

let pager_stats bs =
  match Bs.pager bs with
  | None -> (0, 0)
  | Some p ->
    let s = Pager.stats p in
    (s.Pager.evictions, s.Pager.reads)

(* One measured run inside a fresh process; prints a machine line the
   parent parses. *)
let child mode corpus pages =
  let bytes = if corpus = "-" then 0 else (Unix.stat corpus).Unix.st_size in
  let t0 = Unix.gettimeofday () in
  let blocks, evictions, reads, ok =
    match mode with
    | "resident" ->
      with_channel corpus (fun ic ->
          let bs, _ = BL.load (Sax.of_channel ic) in
          (Bs.block_count bs, 0, 0, Bs.descriptor_count bs > 0))
    | "paged" | "prep" ->
      let capacity = if mode = "paged" then pool_capacity else prep_pool in
      let bs, pf = paged_load corpus pages ~capacity in
      let evictions, reads = pager_stats bs in
      let ok = Bs.descriptor_count bs > 0 in
      Page_file.close pf;
      (Bs.block_count bs, evictions, reads, ok)
    | "cold-scan" | "cold-walk" ->
      let pf = Page_file.open_existing pages in
      let bs = Bs.of_page_file ~capacity:pool_capacity pf in
      let total = if mode = "cold-scan" then extent_scan bs else navigate bs in
      let evictions, reads = pager_stats bs in
      Page_file.close pf;
      (Bs.block_count bs, evictions, reads, total > 0)
    | m -> invalid_arg ("e18 child mode " ^ m)
  in
  let ms = (Unix.gettimeofday () -. t0) *. 1000. in
  Printf.printf "E18CHILD %s %d %.1f %d %d %d %d %b\n" mode bytes ms (vmhwm_kb ()) blocks
    evictions reads ok

type sample = {
  mode : string;
  bytes : int;
  ms : float;
  hwm_kb : int;
  blocks : int;
  evictions : int;
  reads : int;
  ok : bool;
}

let run_child corpus pages mode =
  let out = Filename.temp_file "e18" ".out" in
  let cmd =
    Filename.quote_command Sys.executable_name ~stdout:out [ "--e18-child"; mode; corpus; pages ]
  in
  let status = Sys.command cmd in
  let line = with_channel out input_line in
  Sys.remove out;
  if status <> 0 then failwith (Printf.sprintf "e18 child %s exited %d" mode status);
  Scanf.sscanf line "E18CHILD %s %d %f %d %d %d %d %b"
    (fun mode bytes ms hwm_kb blocks evictions reads ok ->
      { mode; bytes; ms; hwm_kb; blocks; evictions; reads; ok })

let print_sample s =
  if not s.ok then failwith ("e18: mode " ^ s.mode ^ " failed its run");
  Printf.printf "%-12s %10.0f %10.1f %9.1f MB %8d %10d %10d\n" s.mode s.ms
    (if s.bytes = 0 then 0. else float_of_int s.bytes /. 1e6 /. (s.ms /. 1000.))
    (float_of_int s.hwm_kb /. 1024.)
    s.blocks s.evictions s.reads

let header () =
  Printf.printf "%-12s %10s %10s %12s %8s %10s %10s\n" "mode" "ms" "MB/s" "peak RSS" "blocks"
    "evictions" "reads";
  Printf.printf "%s\n" (String.make 78 '-')

let run ~smoke () =
  let narrow_target = if smoke then 20_000_000 else 120_000_000 in
  let wide_target = if smoke then 3_000_000 else 12_000_000 in
  let narrow = Filename.temp_file "e18-narrow" ".xml" in
  let wide = Filename.temp_file "e18-wide" ".xml" in
  let pages = Filename.temp_file "e18" ".pages" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun f -> if Sys.file_exists f then Sys.remove f) [ narrow; wide; pages ])
  @@ fun () ->
  (* -- pressure: value-heavy records, pool 10x+ undersized ---------- *)
  let records = generate narrow ~fields:2 ~words:150 narrow_target in
  Printf.printf "E18: paged storage under memory pressure (%.1f MB, %d records, pool %d blocks)\n\n"
    (float_of_int (Unix.stat narrow).Unix.st_size /. 1e6)
    records pool_capacity;
  header ();
  let resident = run_child narrow pages "resident" in
  let paged = run_child narrow pages "paged" in
  List.iter print_sample [ resident; paged ];
  let pressure = float_of_int paged.blocks /. float_of_int pool_capacity in
  let rss_ratio = float_of_int resident.hwm_kb /. float_of_int paged.hwm_kb in
  Printf.printf "\nworking set %.0fx the pool; peak-RSS ratio resident/paged %.1fx\n\n" pressure
    rss_ratio;
  (* -- cold cache: wide records, extent scan vs navigation --------- *)
  Sys.remove pages;
  let wrecords = generate wide ~fields:50 ~words:25 wide_target in
  Printf.printf "E18 cold cache: extent scan vs navigation (%.1f MB, %d records, ~102 extents)\n\n"
    (float_of_int (Unix.stat wide).Unix.st_size /. 1e6)
    wrecords;
  header ();
  let prep = run_child wide pages "prep" in
  let scan = run_child "-" pages "cold-scan" in
  let walk = run_child "-" pages "cold-walk" in
  List.iter print_sample [ prep; scan; walk ];
  Printf.printf "\ncold cache: extent scan %d faults, navigation %d faults (%.1fx)\n" scan.reads
    walk.reads
    (float_of_int walk.reads /. float_of_int (max 1 scan.reads));
  if smoke then begin
    (* the CI bounds: real pressure, graceful degradation, and the
       access-path gap a cold pool is supposed to show *)
    if pressure < 10. then
      failwith (Printf.sprintf "E18 smoke: working set only %.1fx the pool, need 10x" pressure);
    if paged.evictions = 0 then failwith "E18 smoke: paged load recycled no frames";
    if paged.hwm_kb >= resident.hwm_kb then
      failwith
        (Printf.sprintf "E18 smoke: paged peak RSS %d KB not below resident %d KB" paged.hwm_kb
           resident.hwm_kb);
    if walk.reads <= scan.reads then
      failwith
        (Printf.sprintf "E18 smoke: navigation faulted %d, not above the extent scan's %d"
           walk.reads scan.reads);
    print_endline "E18 smoke: paging bounds hold"
  end
