(* E19: cost-based vs rule-based planning on an adversarial query mix.

   The rule-based policy always routes a value predicate to its value
   index.  That is the right call for a stable document, but a
   predicate whose relative path carries an inner predicate (like
   [key[@lang="en"]]) builds a {e non-structural} index — one the
   differential maintenance cannot repair, so every structural update
   drops it and the next probe rebuilds it from scratch over the whole
   extent.  The cost policy prices that rebuild (with the drop-history
   surcharge) against the residual per-owner filter and walks away.

   Four query classes over a [doc/rec*] corpus, each run once per
   policy on its own freshly-built fixture:

   - {b A churn+filter}: [//rec[@shard="s7"][key[@lang="en"]="v3"]/payload]
     with one insert+delete round between queries.  The [@shard] index
     is structural and maintained; the [key[@lang]] index is dropped
     every round.  Rule rebuilds it every round, cost keeps the probe
     on [@shard] and filters the few surviving owners residually —
     this is the class the cost model must win.
   - {b B repeated point}: [//rec[@shard="s7"]/payload] with no
     updates.  Both policies probe the same cached structural index;
     parity expected.
   - {b C positional}: [/doc/rec[last()-1]/payload].  Positional
     predicates route to the fallback evaluator under either policy;
     parity expected.
   - {b D low selectivity}: [//rec[n>=0]/payload] matches every
     record.  The probe returns the whole extent, yet it is still
     cheaper than navigating from every owner, so the cost policy must
     {e not} flee to the residual route; parity expected.

   With [--smoke] the corpus is small and the run asserts the policy
   bounds (used by CI): cost beats rule >=2x on class A, stays within
   noise of rule on B/C/D, and the churn is absorbed differentially
   (epochs stay at 1) with zero drops under cost. *)

module Store = Xsm_xdm.Store
module Convert = Xsm_xdm.Convert
module Tree = Xsm_xml.Tree
module Update = Xsm_schema.Update
module P = Xsm_xpath.Planner
module Pl = P.Over_store

let shards = 10
let keys = 7 (* coprime with [shards]: class A selects via both moduli *)

let build_doc ~records =
  let recs =
    List.init records (fun i ->
        Tree.element
          (Tree.elem "rec"
             ~attrs:[ Tree.attr "shard" (Printf.sprintf "s%d" (i mod shards)) ]
             ~children:
               [
                 Tree.element
                   (Tree.elem "key"
                      ~attrs:[ Tree.attr "lang" "en" ]
                      ~children:[ Tree.text (Printf.sprintf "v%d" (i mod keys)) ]);
                 Tree.element
                   (Tree.elem "key"
                      ~attrs:[ Tree.attr "lang" "de" ]
                      ~children:[ Tree.text (Printf.sprintf "w%d" (i mod keys)) ]);
                 Tree.element (Tree.elem "n" ~children:[ Tree.text (string_of_int (i mod 10)) ]);
                 Tree.element
                   (Tree.elem "payload" ~children:[ Tree.text (Printf.sprintf "p%d" i) ]);
               ]))
  in
  Tree.document (Tree.elem "doc" ~children:recs)

type fixture = {
  store : Store.t;
  planner : Pl.t;
  journal : Update.Journal.t;
  root : Store.node; (* the [doc] element, parent of every [rec] *)
}

let fixture ~records policy =
  let store = Store.create () in
  let dnode = Convert.load store (build_doc ~records) in
  let planner = Pl.create store dnode in
  let journal = Update.Journal.create () in
  P.attach_journal planner journal;
  Pl.set_policy planner policy;
  { store; planner; journal; root = List.hd (Store.children store dnode) }

(* One structural churn round: link a subtree, then unlink it again,
   querying after each edit so every edit is drained on its own.  The
   document returns to its start state, but both edits flow through the
   journal and hit every cached value index.  (Adjacent insert+delete
   with no query in between would cancel before the next drain: the
   planner would see an insert of an already-unlinked subtree and a
   removal of a never-indexed one, both no-ops.) *)
let churn_rec =
  Tree.elem "rec"
    ~attrs:[ Tree.attr "shard" "zz" ]
    ~children:
      [
        Tree.element
          (Tree.elem "key" ~attrs:[ Tree.attr "lang" "en" ] ~children:[ Tree.text "zz" ]);
        Tree.element (Tree.elem "payload" ~children:[ Tree.text "zz" ]);
      ]

let churn fx between =
  let apply op =
    match Update.apply ~journal:fx.journal fx.store op with
    | Ok a -> a
    | Error e -> failwith e
  in
  ignore (apply (Update.Insert_element { parent = fx.root; before = None; tree = churn_rec }));
  between ();
  let last = List.rev (Store.children fx.store fx.root) |> List.hd in
  ignore (apply (Update.Delete last))

let query fx q ~expect =
  match Pl.eval_string fx.planner q with
  | Ok ns ->
    let n = List.length ns in
    if n <> expect then
      failwith (Printf.sprintf "E19: %s returned %d rows, expected %d" q n expect)
  | Error e -> failwith ("E19: " ^ e)

type sample = { cls : string; policy : string; ms : float; stats : P.maintenance_stats }

let policy_name = function P.Rule -> "rule" | P.Cost -> "cost"

(* Run [rounds] iterations of [step] against a fresh fixture, after one
   unmeasured warm-up query that builds whatever indexes the policy
   wants cached. *)
let measure ~records ~rounds ~cls policy warm step =
  let fx = fixture ~records policy in
  warm fx;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to rounds do
    step fx
  done;
  let ms = (Unix.gettimeofday () -. t0) *. 1000. in
  { cls; policy = policy_name policy; ms; stats = Pl.maintenance_stats fx.planner }

let run_classes ~records ~rounds =
  let count p = List.length (List.filter p (List.init records Fun.id)) in
  let q_a = {|//rec[@shard="s7"][key[@lang="en"]="v3"]/payload|} in
  let e_a = count (fun i -> i mod shards = 7 && i mod keys = 3) in
  let q_b = {|//rec[@shard="s7"]/payload|} in
  let e_b = count (fun i -> i mod shards = 7) in
  let q_c = "/doc/rec[last()-1]/payload" in
  let q_d = "//rec[n>=0]/payload" in
  let both cls warm step =
    List.map (fun policy -> measure ~records ~rounds ~cls policy warm step) [ P.Rule; P.Cost ]
  in
  [
    both "A churn+filter"
      (fun fx -> query fx q_a ~expect:e_a)
      (fun fx ->
        churn fx (fun () -> query fx q_a ~expect:e_a);
        query fx q_a ~expect:e_a);
    both "B point probe" (fun fx -> query fx q_b ~expect:e_b) (fun fx -> query fx q_b ~expect:e_b);
    both "C positional" (fun fx -> query fx q_c ~expect:1) (fun fx -> query fx q_c ~expect:1);
    both "D low select"
      (fun fx -> query fx q_d ~expect:records)
      (fun fx -> query fx q_d ~expect:records);
  ]

let print_pair pair =
  List.iter
    (fun s ->
      Printf.printf "%-16s %-6s %10.2f %8d %8d %9d\n" s.cls s.policy s.ms s.stats.P.epochs
        s.stats.P.applied s.stats.P.vi_drops)
    pair;
  match pair with
  | [ rule; cost ] ->
    Printf.printf "%-16s %-6s %9.2fx\n" "" "ratio" (rule.ms /. Float.max 1e-6 cost.ms)
  | _ -> ()

let run ~smoke () =
  let records = if smoke then 210 else 2100 in
  let rounds = if smoke then 60 else 200 in
  Printf.printf "E19: cost-based vs rule-based planning (%d records, %d rounds per class)\n\n"
    records rounds;
  Printf.printf "%-16s %-6s %10s %8s %8s %9s\n" "class" "policy" "ms" "epochs" "applied"
    "vi_drops";
  Printf.printf "%s\n" (String.make 62 '-');
  let pairs = run_classes ~records ~rounds in
  List.iter print_pair pairs;
  if smoke then begin
    let find cls policy =
      List.concat pairs |> List.find (fun s -> s.cls = cls && s.policy = policy)
    in
    let a_rule = find "A churn+filter" "rule" and a_cost = find "A churn+filter" "cost" in
    (* the headline: on the adversarial class, pricing the rebuild
       against the residual filter must pay off at least 2x *)
    if a_rule.ms < 2. *. a_cost.ms then
      failwith
        (Printf.sprintf "E19 smoke: cost %.2f ms not 2x under rule %.2f ms on the churn class"
           a_cost.ms a_rule.ms);
    (* rule keeps rebuilding the dropped index; cost never builds it *)
    if a_rule.stats.P.vi_drops < rounds / 2 then
      failwith
        (Printf.sprintf "E19 smoke: rule saw only %d drops over %d churn rounds"
           a_rule.stats.P.vi_drops rounds);
    if a_cost.stats.P.vi_drops <> 0 then
      failwith
        (Printf.sprintf "E19 smoke: cost policy dropped %d value indexes, expected 0"
           a_cost.stats.P.vi_drops);
    (* all that churn must be absorbed differentially, never by rebuild *)
    List.iter
      (fun s ->
        if s.stats.P.epochs <> 1 then
          failwith
            (Printf.sprintf "E19 smoke: %s/%s took %d index epochs, expected 1" s.cls s.policy
               s.stats.P.epochs))
      (List.concat pairs);
    (* on the parity classes the cost policy must stay within noise *)
    List.iter
      (fun cls ->
        let rule = find cls "rule" and cost = find cls "cost" in
        if cost.ms > (3. *. rule.ms) +. 2. then
          failwith
            (Printf.sprintf "E19 smoke: cost %.2f ms regressed rule %.2f ms on class %s" cost.ms
               rule.ms cls))
      [ "B point probe"; "C positional"; "D low select" ];
    print_endline "\nE19 smoke: cost policy bounds hold"
  end
