module Name = Xsm_xml.Name
module Ast = Xsm_schema.Ast
module CA = Xsm_schema.Content_automaton
module Schema_check = Xsm_schema.Schema_check
module Simple_type = Xsm_datatypes.Simple_type
module Counter = Xsm_obs.Metrics.Counter
module Gauge = Xsm_obs.Metrics.Gauge
module Trace = Xsm_obs.Trace

let m_events = Counter.make ~help:"SAX events consumed by the streaming validator" "stream.events"
let m_elements = Counter.make ~help:"elements validated in streaming mode" "stream.elements"
let m_errors = Counter.make ~help:"streaming validation errors" "stream.errors"

let m_fallback =
  Counter.make ~help:"child steps through the non-UPA position-set fallback" "stream.fallback_steps"

let g_peak_depth =
  Gauge.make ~help:"peak open-element depth of the last streaming run" "stream.peak_depth"

type error = { path : string; position : Sax.position; message : string }

let pp_error ppf e =
  Format.fprintf ppf "%a: %s: %s" Sax.pp_position e.position e.path e.message

let error_to_string e = Format.asprintf "%a" pp_error e

type stats = { elements : int; max_depth : int; fallback_steps : int }

let xsi_nil = Name.make ~prefix:"xsi" "nil"

let is_whitespace s =
  String.for_all (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') s

(* A compiled content model, or the reason none exists. *)
type compiled =
  | C_table of CA.table
  | C_nfa of CA.t  (* UPA violated: exact position-set fallback *)
  | C_error of string  (* the group itself is malformed *)

type matcher =
  | M_table of CA.table * CA.state ref
  | M_nfa of CA.t * CA.nfa_state ref
  | M_dead  (* content-model error already reported at this frame *)

(* What the element's resolved type says about its content. *)
type ccase =
  | Unchecked  (* type unresolvable, or a structurally skipped subtree *)
  | Simple of Simple_type.t
  | Simple_unchecked  (* simple-content base failed to resolve: attrs only *)
  | Empty of { none : bool }  (* no element children; [none] = content absent *)
  | Model of matcher

type frame = {
  f_path : string;
  (* [false] for frames pushed only to keep the stack balanced under a
     subtree the tree validator would not recurse into: no checks at
     all happen there *)
  f_declared : bool;
  f_attr_decls : Ast.attribute_decl list;
  f_mixed : bool;
  f_nillable : bool;
  mutable f_case : ccase;
  mutable f_attrs_seen : Name.t list;
  mutable f_nilled : bool;
  mutable f_nil_reported : bool;  (* "nilled element must be empty" emitted *)
  mutable f_content_reported : bool;  (* simple/empty child error emitted *)
  mutable f_elem_children : int;
  mutable f_text_nodes : int;  (* logical text nodes (runs across Comment/Pi) *)
  mutable f_in_text : bool;
  f_text : Buffer.t;  (* simple-content value, or the current run in
                         element-only content (checked at run end) *)
}

type t = {
  schema : Ast.schema;
  mutable cache : (Ast.group_def * compiled) list;
  mutable errors : error list;  (* newest first *)
  mutable stack : frame list;
  mutable pos : Sax.position;
  mutable seen_root : bool;
  mutable elements : int;
  mutable max_depth : int;
  mutable fallback_steps : int;
}

let create ?(automata = []) schema =
  {
    schema;
    cache = List.rev_map (fun (g, tbl) -> (g, C_table tbl)) automata;
    errors = [];
    stack = [];
    pos = { Sax.offset = 0; line = 1; column = 1 };
    seen_root = false;
    elements = 0;
    max_depth = 0;
    fallback_steps = 0;
  }

let report t path fmt =
  Printf.ksprintf
    (fun message ->
      Counter.incr m_errors;
      t.errors <- { path; position = t.pos; message } :: t.errors)
    fmt

let compiled_for t path (g : Ast.group_def) =
  let rec find = function
    | [] -> None
    | (g', c) :: rest -> if g' == g then Some c else find rest
  in
  match find t.cache with
  | Some c -> c
  | None ->
    let c =
      match CA.make g with
      | Error e -> C_error e
      | Ok a -> ( match CA.compile a with Some tbl -> C_table tbl | None -> C_nfa a)
    in
    t.cache <- (g, c) :: t.cache;
    (match c with C_error e -> report t path "content model: %s" e | C_table _ | C_nfa _ -> ());
    c

let skip_frame path =
  {
    f_path = path;
    f_declared = false;
    f_attr_decls = [];
    f_mixed = true;
    f_nillable = false;
    f_case = Unchecked;
    f_attrs_seen = [];
    f_nilled = false;
    f_nil_reported = false;
    f_content_reported = false;
    f_elem_children = 0;
    f_text_nodes = 0;
    f_in_text = false;
    f_text = Buffer.create 0;
  }

(* Open a frame for an element attributed to [decl] — the streaming
   counterpart of [Validator.validate_element_inner] up to the point
   where children are consumed. *)
let make_frame t path (decl : Ast.element_decl) =
  t.elements <- t.elements + 1;
  Counter.incr m_elements;
  let base = { (skip_frame path) with f_declared = true; f_nillable = decl.nillable } in
  match Schema_check.resolve t.schema decl.elem_type with
  | Error e ->
    report t path "%s" e;
    (* like the tree validator: report, then check nothing below —
       except xsi:nil, which it polices before resolving the type *)
    base
  | Ok (Schema_check.Resolved_simple st) -> { base with f_case = Simple st; f_mixed = false }
  | Ok (Schema_check.Resolved_complex (Ast.Simple_content { base = b; attributes })) ->
    let case =
      match Schema_check.resolve_simple t.schema b with
      | Ok st -> Simple st
      | Error e ->
        report t path "simple content base: %s" e;
        Simple_unchecked
    in
    { base with f_case = case; f_attr_decls = attributes; f_mixed = false }
  | Ok (Schema_check.Resolved_complex (Ast.Complex_content { mixed; content; attributes })) ->
    let case =
      match content with
      | None -> Empty { none = true }
      | Some g when Ast.group_is_empty g -> Empty { none = false }
      | Some g -> (
        match compiled_for t path g with
        | C_table tbl -> Model (M_table (tbl, ref (CA.start_run tbl)))
        | C_nfa a -> Model (M_nfa (a, ref (CA.nfa_start a)))
        | C_error _ -> Model M_dead (* reported by compiled_for *))
    in
    { base with f_case = case; f_attr_decls = attributes; f_mixed = mixed }

(* End of a logical text run: in element-only content the buffered run
   is one text node and must be whitespace. *)
let flush_text t (f : frame) =
  if f.f_in_text then begin
    f.f_in_text <- false;
    match f.f_case with
    | (Empty _ | Model _) when not f.f_mixed ->
      let s = Buffer.contents f.f_text in
      Buffer.clear f.f_text;
      if not (is_whitespace s) then report t f.f_path "text %S in element-only content" s
    | Unchecked | Simple _ | Simple_unchecked | Empty _ | Model _ -> ()
  end

let nilled_child_error t (f : frame) =
  if not f.f_nil_reported then begin
    f.f_nil_reported <- true;
    report t f.f_path "nilled element must be empty"
  end

let on_start t name =
  match t.stack with
  | [] ->
    if t.seen_root then report t "/" "document node must have exactly one element child"
    else begin
      t.seen_root <- true;
      let decl = t.schema.Ast.root in
      let path = "/" ^ Name.to_string decl.Ast.elem_name in
      if not (Name.equal name decl.Ast.elem_name) then
        report t path "element %s where %s was declared" (Name.to_string name)
          (Name.to_string decl.Ast.elem_name);
      t.stack <- [ make_frame t path decl ];
      if t.max_depth = 0 then t.max_depth <- 1
    end
  | parent :: _ ->
    flush_text t parent;
    parent.f_elem_children <- parent.f_elem_children + 1;
    let child_path =
      Printf.sprintf "%s/%s[%d]" parent.f_path (Name.to_string name) parent.f_elem_children
    in
    let child =
      if parent.f_nilled then begin
        nilled_child_error t parent;
        skip_frame child_path
      end
      else
        match parent.f_case with
        | Unchecked | Simple_unchecked -> skip_frame child_path
        | Simple _ ->
          if not parent.f_content_reported then begin
            parent.f_content_reported <- true;
            report t parent.f_path "element with simple type has element children"
          end;
          skip_frame child_path
        | Empty _ ->
          if not parent.f_content_reported then begin
            parent.f_content_reported <- true;
            report t parent.f_path "element children in empty content"
          end;
          skip_frame child_path
        | Model M_dead -> skip_frame child_path
        | Model (M_table (tbl, st)) -> (
          match CA.step_run tbl !st name with
          | Some (st', decl) ->
            st := st';
            make_frame t child_path decl
          | None ->
            report t parent.f_path "child %s does not match the content model"
              (Name.to_string name);
            parent.f_case <- Model M_dead;
            skip_frame child_path)
        | Model (M_nfa (a, st)) -> (
          t.fallback_steps <- t.fallback_steps + 1;
          Counter.incr m_fallback;
          match CA.nfa_step a !st name with
          | Some (st', decl) ->
            st := st';
            make_frame t child_path decl
          | None ->
            report t parent.f_path "child %s does not match the content model"
              (Name.to_string name);
            parent.f_case <- Model M_dead;
            skip_frame child_path)
    in
    t.stack <- child :: t.stack;
    let d = List.length t.stack in
    if d > t.max_depth then t.max_depth <- d

let on_attr t name value =
  match t.stack with
  | [] -> ()
  | f :: _ when not f.f_declared -> ()
  | f :: _ ->
    if Name.equal name xsi_nil then begin
      if value = "true" || value = "1" then
        if f.f_nillable then f.f_nilled <- true
        else
          report t f.f_path "xsi:nil on an element whose declaration has NillIndicator = false"
    end
    else begin
      f.f_attrs_seen <- name :: f.f_attrs_seen;
      match f.f_case with
      | Unchecked -> ()  (* type unresolved: the tree validator checks no attributes *)
      | Simple _ | Simple_unchecked | Empty _ | Model _ -> (
        match
          List.find_opt
            (fun (d : Ast.attribute_decl) -> Name.equal d.attr_name name)
            f.f_attr_decls
        with
        | None -> report t f.f_path "undeclared attribute %s" (Name.to_string name)
        | Some { Ast.attr_use = Ast.Prohibited; _ } ->
          report t f.f_path "prohibited attribute %s" (Name.to_string name)
        | Some d -> (
          match Schema_check.resolve_simple t.schema d.attr_type with
          | Error e -> report t f.f_path "attribute %s: %s" (Name.to_string name) e
          | Ok st -> (
            match Simple_type.validate st value with
            | Ok _ -> ()
            | Error e -> report t f.f_path "attribute %s: %s" (Name.to_string name) e)))
    end

let on_text t s =
  match t.stack with
  | [] -> ()  (* Sax only yields Text inside the root *)
  | f :: _ ->
    if not f.f_in_text then begin
      f.f_in_text <- true;
      f.f_text_nodes <- f.f_text_nodes + 1
    end;
    if f.f_nilled then nilled_child_error t f
    else begin
      match f.f_case with
      | Simple _ -> Buffer.add_string f.f_text s
      | (Empty _ | Model _) when not f.f_mixed -> Buffer.add_string f.f_text s
      | Unchecked | Simple_unchecked | Empty _ | Model _ -> ()
    end

(* The end-of-element checks the tree validator does eagerly:
   required/default attributes, simple-content typing, content-model
   acceptance, the mixed-empty text budget. *)
let on_end t =
  match t.stack with
  | [] -> ()
  | f :: rest ->
    t.stack <- rest;
    flush_text t f;
    List.iter
      (fun (d : Ast.attribute_decl) ->
        let present = List.exists (Name.equal d.attr_name) f.f_attrs_seen in
        match d.attr_use, d.attr_default, present with
        | Ast.Required, _, false ->
          report t f.f_path "missing declared attribute %s" (Name.to_string d.attr_name)
        | Ast.Optional, Some dv, false -> (
          match Schema_check.resolve_simple t.schema d.attr_type with
          | Error e -> report t f.f_path "attribute %s: %s" (Name.to_string d.attr_name) e
          | Ok st -> (
            match Simple_type.validate st dv with
            | Error e ->
              report t f.f_path "default for attribute %s: %s" (Name.to_string d.attr_name) e
            | Ok _ -> ()))
        | (Ast.Required | Ast.Optional | Ast.Prohibited), _, _ -> ())
      f.f_attr_decls;
    if not f.f_nilled then begin
      match f.f_case with
      | Unchecked | Simple_unchecked -> ()
      | Simple st -> (
        match Simple_type.validate st (Buffer.contents f.f_text) with
        | Ok _ -> ()
        | Error e -> report t f.f_path "%s" e)
      | Empty { none } ->
        if none && f.f_mixed && f.f_elem_children + f.f_text_nodes > 1 then
          report t f.f_path "mixed empty content allows at most one text node"
      | Model M_dead -> ()
      | Model (M_table (tbl, st)) ->
        if not (CA.run_accepting tbl !st) then
          report t f.f_path "children do not match the content model (incomplete)"
      | Model (M_nfa (a, st)) ->
        if not (CA.nfa_accepting a !st) then
          report t f.f_path "children do not match the content model (incomplete)"
    end

let feed t event pos =
  Counter.incr m_events;
  t.pos <- pos;
  match event with
  | Sax.Start_element name -> on_start t name
  | Sax.Attr (name, value) -> on_attr t name value
  | Sax.Text s -> on_text t s
  | Sax.End_element _ -> on_end t
  | Sax.Pi _ | Sax.Comment _ -> ()  (* dropped by §8 conversion, dropped here *)

let finish t =
  (match t.stack with
  | [] -> ()
  | f :: _ -> report t f.f_path "unterminated element");
  if not t.seen_root then report t "/" "document node has no element child";
  Gauge.set g_peak_depth (float_of_int t.max_depth);
  match t.errors with
  | [] ->
    Ok { elements = t.elements; max_depth = t.max_depth; fallback_steps = t.fallback_steps }
  | es -> Error (List.rev es)

let run ?automata schema sax =
  Trace.with_span "stream.validate" (fun () ->
      let t = create ?automata schema in
      let rec drain () =
        match Sax.next sax with
        | None -> ()
        | Some ev ->
          feed t ev (Sax.event_position sax);
          drain ()
      in
      drain ();
      finish t)
