(** Bulk load: sink a {!Sax} event stream straight into
    {!Xsm_storage.Block_storage} descriptors, never materializing the
    syntactic tree or an {!Xsm_xdm.Store} document.

    Because the events arrive in document order, every placement is the
    O(1) tail-block append ({!Xsm_storage.Block_storage.append_element}
    and friends) and every nid is the counter-encoded
    {!Xsm_numbering.Sedna_label.append_child} label — the same labels
    {!Xsm_numbering.Labeler.append_in_document_order} assigns to a
    finished tree, so lexicographic nid order is document order by
    construction.  Peak memory is the open-element frame stack:
    O(depth) when no WAL is attached.

    Text runs are coalesced exactly as {!Xsm_xdm.Convert} normalizes a
    parsed tree (§8): adjacent runs merge across comments and
    processing instructions, which are dropped — so a bulk-loaded store
    is content-identical to [of_store (Convert.load (parse doc))].

    {b Durability.}  With a [wal], the load is logged as one
    {!Xsm_persist.Wal.op} per {e completed} top-level subtree (a
    depth-1 child of the root), addressed by child position under the
    root.  [on_root] fires once, when the root start tag is complete,
    with the bare root element (attributes, no children) — the caller
    snapshots it as the recovery base.  Crashing after [n] records and
    recovering yields the root plus exactly the first [n] fully-loaded
    top-level subtrees; the accumulation cost is O(largest top-level
    subtree), the price of record-granular recovery. *)

type stats = {
  events : int;
  elements : int;
  attributes : int;
  texts : int;  (** logical (coalesced) text nodes *)
  max_depth : int;
  wal_records : int;  (** 0 when no WAL is attached *)
}

type t

val create :
  ?block_capacity:int ->
  ?wal:Xsm_persist.Wal.Writer.t ->
  ?on_root:(Xsm_xml.Tree.element -> unit) ->
  unit ->
  t

val feed : t -> Sax.event -> unit
(** Consume one event.  Raises {!Xsm_persist.Wal.Crashed} at an
    injected crash point of the attached WAL writer. *)

val drain_completed : t -> Xsm_storage.Block_storage.desc list
(** Descriptors of top-level (depth-1) children completed since the
    last drain, in document order — the differential feed for index
    maintenance during a load. *)

val storage : t -> Xsm_storage.Block_storage.t

val finish : t -> Xsm_storage.Block_storage.t * stats
(** Syncs the WAL (when attached) and returns the loaded storage. *)

val load :
  ?block_capacity:int ->
  ?wal:Xsm_persist.Wal.Writer.t ->
  ?on_root:(Xsm_xml.Tree.element -> unit) ->
  Sax.t ->
  Xsm_storage.Block_storage.t * stats
(** Pull driver: drain the lexer through {!feed}.  Lexing errors
    ({!Xsm_xml.Parser.Syntax}) propagate. *)
