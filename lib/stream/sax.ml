module Name = Xsm_xml.Name
module P = Xsm_xml.Parser

type position = { offset : int; line : int; column : int }

let pp_position ppf p = Format.fprintf ppf "line %d, column %d" p.line p.column

type event =
  | Start_element of Name.t
  | Attr of Name.t * string
  | Text of string
  | End_element of Name.t
  | Pi of string * string
  | Comment of string

type phase = Prolog | Content | Epilog | Done

type t = {
  refill : bytes -> int -> int -> int;
  buf : Bytes.t;
  mutable len : int;  (* valid bytes in buf *)
  mutable pos : int;  (* cursor within buf *)
  mutable base : int;  (* global offset of buf.[0] *)
  mutable at_eof : bool;  (* refill returned 0 *)
  mutable line : int;
  mutable col : int;
  scratch : Buffer.t;  (* reused token accumulator *)
  ebuf : Buffer.t;  (* reused entity-body accumulator *)
  names : (string, Name.t) Hashtbl.t;  (* intern cache *)
  mutable stack : Name.t list;  (* open elements, innermost first *)
  mutable tag_attrs : Name.t list;  (* attr names of the current start tag *)
  mutable in_tag : bool;
  mutable phase : phase;
  mutable ev_offset : int;
  mutable ev_line : int;
  mutable ev_col : int;
}

(* enough lookahead for the longest fixed token ("<![CDATA[", "<!DOCTYPE") *)
let min_chunk = 16

let of_function ?(chunk_size = 65536) refill =
  (* XML 1.0 §2.11 end-of-line normalization, applied to the raw byte
     stream before the lexer sees a single character, so character
     data, attribute values and line counting all work on the one
     canonical form ("\r\n" and lone "\r" become "\n").  The
     [pending_cr] carry handles a "\r\n" pair split across two refill
     chunks.  Rewriting is in place: normalization never lengthens the
     chunk.  Positions then refer to the normalized stream, where
     every line break is exactly one byte. *)
  let pending_cr = ref false in
  let rec norm_refill b off len =
    let raw = refill b off len in
    if raw = 0 then 0
    else begin
      let stop = off + raw in
      let w = ref off in
      let i = ref off in
      if !pending_cr then begin
        (* the carried '\r' already went out as '\n'; swallow its '\n' *)
        pending_cr := false;
        if Bytes.get b off = '\n' then incr i
      end;
      while !i < stop do
        (match Bytes.get b !i with
        | '\r' ->
          Bytes.set b !w '\n';
          incr w;
          if !i + 1 < stop then begin
            if Bytes.get b (!i + 1) = '\n' then incr i
          end
          else pending_cr := true
        | c ->
          Bytes.set b !w c;
          incr w);
        incr i
      done;
      (* a chunk can normalize away entirely (a lone '\n' after a
         carried '\r'); 0 would mean end of input, so read again *)
      if !w = off then norm_refill b off len else !w - off
    end
  in
  {
    refill = norm_refill;
    buf = Bytes.create (max min_chunk chunk_size);
    len = 0;
    pos = 0;
    base = 0;
    at_eof = false;
    line = 1;
    col = 1;
    scratch = Buffer.create 256;
    ebuf = Buffer.create 16;
    names = Hashtbl.create 64;
    stack = [];
    tag_attrs = [];
    in_tag = false;
    phase = Prolog;
    ev_offset = 0;
    ev_line = 1;
    ev_col = 1;
  }

let of_channel ?chunk_size ic = of_function ?chunk_size (input ic)

let of_string s =
  let sent = ref 0 in
  of_function (fun b off len ->
      let n = min len (String.length s - !sent) in
      Bytes.blit_string s !sent b off n;
      sent := !sent + n;
      n)

let cur_offset t = t.base + t.pos
let position t = { offset = cur_offset t; line = t.line; column = t.col }
let event_position t = { offset = t.ev_offset; line = t.ev_line; column = t.ev_col }
let depth t = List.length t.stack

let fail t fmt =
  Printf.ksprintf
    (fun message ->
      raise (P.Syntax { P.line = t.line; column = t.col; offset = cur_offset t; message }))
    fmt

(* Make at least [n] bytes available past the cursor (or hit end of
   input), compacting the unread tail to the buffer start first. *)
let ensure t n =
  if t.pos + n > t.len && not t.at_eof then begin
    let rem = t.len - t.pos in
    Bytes.blit t.buf t.pos t.buf 0 rem;
    t.base <- t.base + t.pos;
    t.pos <- 0;
    t.len <- rem;
    while t.len < n && not t.at_eof do
      let r = t.refill t.buf t.len (Bytes.length t.buf - t.len) in
      if r = 0 then t.at_eof <- true else t.len <- t.len + r
    done
  end

let at_end t =
  ensure t 1;
  t.pos >= t.len

let peek t = if at_end t then '\255' else Bytes.get t.buf t.pos

let advance t =
  let c = Bytes.get t.buf t.pos in
  t.pos <- t.pos + 1;
  if c = '\n' then begin
    t.line <- t.line + 1;
    t.col <- 1
  end
  else t.col <- t.col + 1

let looking_at t s =
  let n = String.length s in
  ensure t n;
  t.pos + n <= t.len
  &&
  let rec eq i = i = n || (Bytes.get t.buf (t.pos + i) = s.[i] && eq (i + 1)) in
  eq 0

let skip_known t n =
  for _ = 1 to n do
    advance t
  done

let expect t c =
  if peek t = c then advance t else fail t "expected %C, found %C" c (peek t)

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_space t =
  while (not (at_end t)) && is_space (peek t) do
    advance t
  done

let mark_event t =
  t.ev_offset <- cur_offset t;
  t.ev_line <- t.line;
  t.ev_col <- t.col

let name_stop c =
  is_space c || c = '>' || c = '/' || c = '=' || c = '?' || c = '\255'

let lex_name t =
  Buffer.clear t.scratch;
  while (not (at_end t)) && not (name_stop (peek t)) do
    Buffer.add_char t.scratch (peek t);
    advance t
  done;
  let raw = Buffer.contents t.scratch in
  match Hashtbl.find_opt t.names raw with
  | Some n -> n
  | None -> (
    match Name.of_string raw with
    | Ok n ->
      Hashtbl.replace t.names raw n;
      n
    | Error e -> fail t "%s" e)

(* decode one &...; reference into [into] (cursor on '&') *)
let lex_reference t into =
  advance t;
  Buffer.clear t.ebuf;
  let fin = ref false in
  while not !fin do
    match peek t with
    | ';' ->
      advance t;
      fin := true
    | '<' | '&' | '\255' -> fail t "unterminated entity reference"
    | c ->
      if Buffer.length t.ebuf > 64 then fail t "unterminated entity reference";
      Buffer.add_char t.ebuf c;
      advance t
  done;
  match P.decode_entity (Buffer.contents t.ebuf) with
  | Ok s -> Buffer.add_string into s
  | Error e -> fail t "%s" e

let lex_attr_value t =
  let quote = peek t in
  if quote <> '"' && quote <> '\'' then fail t "expected quoted attribute value";
  advance t;
  Buffer.clear t.scratch;
  let fin = ref false in
  while not !fin do
    match peek t with
    | c when c = quote ->
      advance t;
      fin := true
    | '\255' when at_end t -> fail t "unterminated attribute value"
    | '<' -> fail t "'<' not allowed in attribute value"
    | '&' -> lex_reference t t.scratch
    | c ->
      Buffer.add_char t.scratch c;
      advance t
  done;
  Buffer.contents t.scratch

(* accumulate into scratch until the terminator string [stop] *)
let lex_until t stop what =
  Buffer.clear t.scratch;
  let fin = ref false in
  while not !fin do
    if looking_at t stop then begin
      skip_known t (String.length stop);
      fin := true
    end
    else if at_end t then fail t "unterminated %s" what
    else begin
      Buffer.add_char t.scratch (peek t);
      advance t
    end
  done;
  Buffer.contents t.scratch

let lex_pi t =
  skip_known t 2;
  let target = lex_name t in
  skip_space t;
  let data = lex_until t "?>" "processing instruction" in
  Pi (Name.to_string target, data)

let skip_xml_decl t =
  if looking_at t "<?xml" then begin
    ensure t 6;
    if t.pos + 5 < t.len && is_space (Bytes.get t.buf (t.pos + 5)) then begin
      skip_known t 5;
      ignore (lex_until t "?>" "XML declaration")
    end
  end

let skip_doctype t =
  skip_known t 9;
  let depth = ref 0 and fin = ref false in
  while not !fin do
    if at_end t then fail t "unterminated DOCTYPE"
    else begin
      (match peek t with
      | '[' -> incr depth
      | ']' -> decr depth
      | '>' when !depth = 0 -> fin := true
      | _ -> ());
      advance t
    end
  done

let start_tag t =
  mark_event t;
  advance t;
  let name = lex_name t in
  t.stack <- name :: t.stack;
  t.tag_attrs <- [];
  t.in_tag <- true;
  Some (Start_element name)

let close_element t =
  match t.stack with
  | [] -> fail t "no open element"
  | name :: rest ->
    t.stack <- rest;
    if rest = [] then t.phase <- Epilog;
    Some (End_element name)

let end_tag t =
  mark_event t;
  skip_known t 2;
  let close = lex_name t in
  skip_space t;
  expect t '>';
  match t.stack with
  | open_name :: _ when Name.equal close open_name -> close_element t
  | open_name :: _ ->
    fail t "mismatched end tag: expected </%s>, found </%s>" (Name.to_string open_name)
      (Name.to_string close)
  | [] -> fail t "stray end tag </%s>" (Name.to_string close)

let rec next t =
  match t.phase with
  | Done -> None
  | Prolog -> prolog t
  | Epilog -> epilog t
  | Content -> if t.in_tag then tag_step t else content_step t

and prolog t =
  if cur_offset t = 0 then skip_xml_decl t;
  skip_space t;
  if looking_at t "<!--" then begin
    skip_known t 4;
    ignore (lex_until t "-->" "comment");
    prolog t
  end
  else if looking_at t "<!DOCTYPE" then begin
    skip_doctype t;
    prolog t
  end
  else if looking_at t "<?" then begin
    ignore (lex_pi t);
    prolog t
  end
  else if peek t = '<' && not (at_end t) then begin
    t.phase <- Content;
    start_tag t
  end
  else fail t "expected root element"

and epilog t =
  skip_space t;
  if at_end t then begin
    t.phase <- Done;
    None
  end
  else if looking_at t "<!--" then begin
    skip_known t 4;
    ignore (lex_until t "-->" "comment");
    epilog t
  end
  else if looking_at t "<?" then begin
    ignore (lex_pi t);
    epilog t
  end
  else fail t "trailing content after root element"

and tag_step t =
  skip_space t;
  match peek t with
  | '/' ->
    mark_event t;
    advance t;
    expect t '>';
    t.in_tag <- false;
    close_element t
  | '>' ->
    advance t;
    t.in_tag <- false;
    next t
  | '\255' when at_end t -> fail t "unterminated start tag"
  | _ ->
    mark_event t;
    let name = lex_name t in
    skip_space t;
    expect t '=';
    skip_space t;
    let value = lex_attr_value t in
    if List.exists (Name.equal name) t.tag_attrs then
      fail t "duplicate attribute %s" (Name.to_string name);
    t.tag_attrs <- name :: t.tag_attrs;
    Some (Attr (name, value))

and content_step t =
  mark_event t;
  if looking_at t "</" then end_tag t
  else if looking_at t "<!--" then begin
    skip_known t 4;
    Some (Comment (lex_until t "-->" "comment"))
  end
  else if looking_at t "<![CDATA[" then begin
    skip_known t 9;
    match lex_until t "]]>" "CDATA section" with
    | "" -> next t
    | s -> Some (Text s)
  end
  else if looking_at t "<?" then Some (lex_pi t)
  else if peek t = '<' && not (at_end t) then start_tag t
  else if at_end t then
    fail t "unterminated element %s"
      (match t.stack with n :: _ -> Name.to_string n | [] -> "?")
  else begin
    (* a run of character data up to the next markup *)
    Buffer.clear t.scratch;
    let fin = ref false in
    while not !fin do
      match peek t with
      | '<' -> fin := true
      | '\255' when at_end t ->
        fail t "unterminated element %s"
          (match t.stack with n :: _ -> Name.to_string n | [] -> "?")
      | '&' -> lex_reference t t.scratch
      | c ->
        Buffer.add_char t.scratch c;
        advance t
    done;
    match Buffer.contents t.scratch with "" -> next t | s -> Some (Text s)
  end
