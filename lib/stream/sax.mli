(** A streaming (SAX-style) XML lexer.

    The pull counterpart of {!Xsm_xml.Parser}: the same grammar —
    elements, attributes, character data, CDATA, comments, processing
    instructions, the XML declaration, a skipped DOCTYPE, the five
    predefined entities and character references (decoded through the
    shared {!Xsm_xml.Parser.decode_entity}) — but delivered as a
    sequence of events over an [in_channel], a string, or arbitrary
    byte chunks, never materializing the tree.  End-of-line
    normalization (XML 1.0 §2.11: ["\r\n"] and lone ["\r"] become
    ["\n"]) is applied to the byte stream before lexing — including a
    ["\r\n"] pair split across two refill chunks — so events and
    positions agree with the tree parser whatever the input's
    line-ending convention.  Peak memory is the
    read-ahead chunk plus a reused scratch buffer plus the open-element
    stack: O(depth) in the document.

    Well-formedness is enforced as the events are produced: matching
    end tags, a single root element, unique attribute names per
    element, no stray markup.  Errors are raised as
    {!Xsm_xml.Parser.Syntax} with exact byte offset, line and column
    (tracked incrementally — no rescan of the input).

    Event discipline: a [Start_element] is followed by the element's
    [Attr] events, then its content.  Character data is delivered as
    one [Text] event per contiguous syntactic run (a CDATA section is
    its own run); consecutive runs separated only by comments or
    processing instructions denote a {e single} logical text node —
    consumers accumulate until the next element boundary, mirroring
    the §8 normalization of {!Xsm_xdm.Convert}.  Comments and PIs
    outside the root element are skipped, as the tree parser does.

    The hot path reuses one scratch buffer for every token and interns
    element/attribute names, so steady-state lexing allocates only the
    event payloads themselves. *)

type position = {
  offset : int;  (** 0-based byte offset *)
  line : int;  (** 1-based *)
  column : int;  (** 1-based, in bytes *)
}

val pp_position : Format.formatter -> position -> unit

type event =
  | Start_element of Xsm_xml.Name.t
  | Attr of Xsm_xml.Name.t * string  (** attributes of the innermost open element *)
  | Text of string  (** one syntactic run of character data, never empty *)
  | End_element of Xsm_xml.Name.t
  | Pi of string * string  (** target, data *)
  | Comment of string

type t

val of_string : string -> t
val of_channel : ?chunk_size:int -> in_channel -> t
(** Lex from a channel, reading [chunk_size] bytes at a time
    (default 64 KiB). *)

val of_function : ?chunk_size:int -> (bytes -> int -> int -> int) -> t
(** Lex from an arbitrary chunk source: [refill buf off len] must
    write at most [len] bytes at [off] and return how many, 0 for end
    of input. *)

val next : t -> event option
(** The next event, [None] after the root element closes and the
    epilog is consumed.  Raises {!Xsm_xml.Parser.Syntax} on malformed
    input; after an error or [None] the lexer must not be reused. *)

val event_position : t -> position
(** Position of the first byte of the last event returned by {!next}
    (the ["<"] of a tag, the first byte of a text run). *)

val position : t -> position
(** Current cursor position. *)

val depth : t -> int
(** Number of currently open elements. *)
