module Name = Xsm_xml.Name
module Tree = Xsm_xml.Tree
module Label = Xsm_numbering.Sedna_label
module Bs = Xsm_storage.Block_storage
module Wal = Xsm_persist.Wal
module Counter = Xsm_obs.Metrics.Counter
module Trace = Xsm_obs.Trace

let m_events = Counter.make ~help:"SAX events consumed by bulk load" "stream.load.events"
let m_nodes = Counter.make ~help:"descriptors appended by bulk load" "stream.load.nodes"

type stats = {
  events : int;
  elements : int;
  attributes : int;
  texts : int;
  max_depth : int;
  wal_records : int;
}

(* A subtree being re-built syntactically, in reverse, for its WAL
   record — only kept while a WAL writer is attached. *)
type frag = {
  fg_name : Name.t;
  mutable fg_attrs : Tree.attribute list;  (* reversed *)
  mutable fg_children : Tree.node list;  (* reversed *)
}

type frame = {
  b_depth : int;  (* 0 = document frame, 1 = root element *)
  b_desc : Bs.desc;
  b_nid : Label.t;
  mutable b_child_idx : int;  (* attrs + texts + elements, the append_child counter *)
  mutable b_last : Bs.desc option;  (* last appended child, the [after] anchor *)
  b_text : Buffer.t;  (* pending logical text run *)
  b_frag : frag option;
}

type t = {
  st : Bs.t;
  wal : Wal.Writer.t option;
  on_root : (Tree.element -> unit) option;
  mutable stack : frame list;  (* innermost first; document frame at the bottom *)
  mutable root_name : Name.t option;
  mutable root_attrs : Tree.attribute list;  (* reversed *)
  mutable root_done : bool;  (* on_root fired *)
  mutable root_wal_index : int;  (* child position of the next top-level record *)
  mutable completed : Bs.desc list;  (* drain queue, reversed *)
  mutable events : int;
  mutable elements : int;
  mutable attributes : int;
  mutable texts : int;
  mutable max_depth : int;
}

let create ?block_capacity ?wal ?on_root () =
  let st = Bs.create_empty ?block_capacity () in
  let doc =
    {
      b_depth = 0;
      b_desc = Bs.root st;
      b_nid = Label.root;
      b_child_idx = 0;
      b_last = None;
      b_text = Buffer.create 0;
      b_frag = None;
    }
  in
  {
    st;
    wal;
    on_root;
    stack = [ doc ];
    root_name = None;
    root_attrs = [];
    root_done = false;
    root_wal_index = 0;
    completed = [];
    events = 0;
    elements = 0;
    attributes = 0;
    texts = 0;
    max_depth = 0;
  }

let storage t = t.st

(* The root start tag is complete once the first non-attribute event
   under the root arrives: hand the bare root to the snapshot callback
   before any subtree record can be logged. *)
let fire_root t =
  if not t.root_done then begin
    t.root_done <- true;
    match t.on_root, t.root_name with
    | Some f, Some name ->
      f { Tree.name; attributes = List.rev t.root_attrs; children = [] }
    | _ -> ()
  end

let wal_append t op = match t.wal with None -> () | Some w -> Wal.Writer.append w op

(* Materialize the pending text run as one text-node descriptor. *)
let flush_text t (f : frame) =
  if Buffer.length f.b_text > 0 then begin
    let s = Buffer.contents f.b_text in
    Buffer.clear f.b_text;
    let nid = Label.append_child f.b_nid f.b_child_idx in
    f.b_child_idx <- f.b_child_idx + 1;
    let d = Bs.append_text t.st ~parent:f.b_desc ~after:f.b_last s nid in
    f.b_last <- Some d;
    t.texts <- t.texts + 1;
    Counter.incr m_nodes;
    (match f.b_frag with Some fg -> fg.fg_children <- Tree.Text s :: fg.fg_children | None -> ());
    if f.b_depth = 1 then begin
      (* WAL paths are relative to the snapshotted document node, so
         the root element is [0] *)
      wal_append t (Wal.Insert_text { parent = [ 0 ]; index = t.root_wal_index; text = s });
      t.root_wal_index <- t.root_wal_index + 1;
      t.completed <- d :: t.completed
    end
  end

let on_start t name =
  match t.stack with
  | [] -> invalid_arg "Bulk_load.feed: event after finish"
  | parent :: _ ->
    if parent.b_depth = 1 then fire_root t;
    flush_text t parent;
    let nid = Label.append_child parent.b_nid parent.b_child_idx in
    parent.b_child_idx <- parent.b_child_idx + 1;
    let d = Bs.append_element t.st ~parent:parent.b_desc ~after:parent.b_last name nid in
    parent.b_last <- Some d;
    t.elements <- t.elements + 1;
    Counter.incr m_nodes;
    if parent.b_depth = 0 then t.root_name <- Some name;
    let frag =
      (* subtrees below the root re-build their syntax for the WAL
         record; the root's own tag goes through [on_root] instead *)
      if Option.is_some t.wal && parent.b_depth >= 1 then
        Some { fg_name = name; fg_attrs = []; fg_children = [] }
      else None
    in
    let f =
      {
        b_depth = parent.b_depth + 1;
        b_desc = d;
        b_nid = nid;
        b_child_idx = 0;
        b_last = None;
        b_text = Buffer.create 16;
        b_frag = frag;
      }
    in
    t.stack <- f :: t.stack;
    if f.b_depth > t.max_depth then t.max_depth <- f.b_depth

let on_attr t name value =
  match t.stack with
  | [] -> invalid_arg "Bulk_load.feed: event after finish"
  | f :: _ ->
    let nid = Label.append_child f.b_nid f.b_child_idx in
    f.b_child_idx <- f.b_child_idx + 1;
    let d = Bs.append_attribute t.st ~parent:f.b_desc ~after:f.b_last name value nid in
    f.b_last <- Some d;
    t.attributes <- t.attributes + 1;
    Counter.incr m_nodes;
    (match f.b_frag with
    | Some fg -> fg.fg_attrs <- { Tree.name; value } :: fg.fg_attrs
    | None -> ());
    if f.b_depth = 1 then t.root_attrs <- { Tree.name; value } :: t.root_attrs

let on_text t s =
  match t.stack with
  | [] -> invalid_arg "Bulk_load.feed: event after finish"
  | f :: _ ->
    if f.b_depth = 1 then fire_root t;
    Buffer.add_string f.b_text s

let on_end t =
  match t.stack with
  | [] | [ _ ] -> invalid_arg "Bulk_load.feed: unbalanced End_element"
  | f :: (parent :: _ as rest) ->
    if f.b_depth = 1 then fire_root t;
    flush_text t f;
    t.stack <- rest;
    (match f.b_frag with
    | Some fg ->
      let el =
        {
          Tree.name = fg.fg_name;
          attributes = List.rev fg.fg_attrs;
          children = List.rev fg.fg_children;
        }
      in
      if f.b_depth = 2 then begin
        (* a completed top-level subtree: one WAL record *)
        wal_append t
          (Wal.Insert_element { parent = [ 0 ]; index = t.root_wal_index; fragment = el });
        t.root_wal_index <- t.root_wal_index + 1
      end
      else begin
        match parent.b_frag with
        | Some pfg -> pfg.fg_children <- Tree.Element el :: pfg.fg_children
        | None -> ()
      end
    | None -> ());
    if f.b_depth = 2 then t.completed <- f.b_desc :: t.completed

let feed t event =
  t.events <- t.events + 1;
  Counter.incr m_events;
  match event with
  | Sax.Start_element name -> on_start t name
  | Sax.Attr (name, value) -> on_attr t name value
  | Sax.Text s -> on_text t s
  | Sax.End_element _ -> on_end t
  | Sax.Pi _ | Sax.Comment _ -> ()  (* dropped, without breaking a text run *)

let drain_completed t =
  let ds = List.rev t.completed in
  t.completed <- [];
  ds

let finish t =
  (match t.stack with
  | [ _ ] -> ()
  | _ -> invalid_arg "Bulk_load.finish: document incomplete");
  fire_root t (* no-op unless the stream was empty of content *);
  (match t.wal with Some w -> Wal.Writer.sync w | None -> ());
  let wal_records = match t.wal with Some w -> Wal.Writer.records_written w | None -> 0 in
  ( t.st,
    {
      events = t.events;
      elements = t.elements;
      attributes = t.attributes;
      texts = t.texts;
      max_depth = t.max_depth;
      wal_records;
    } )

let load ?block_capacity ?wal ?on_root sax =
  Trace.with_span "stream.load" (fun () ->
      let t = create ?block_capacity ?wal ?on_root () in
      let rec drain () =
        match Sax.next sax with
        | None -> ()
        | Some ev ->
          feed t ev;
          drain ()
      in
      drain ();
      finish t)
