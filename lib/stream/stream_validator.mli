(** Streaming validation: the §6.1 transition relation driven over a
    {!Sax} event stream.

    The whole point of deterministic (UPA-checked) content models is
    that validity is decidable in one left-to-right pass: each open
    element holds one compiled-table state
    ({!Xsm_schema.Content_automaton.step_run}), each child step is one
    hash probe, and acceptance is checked when the element closes.
    The validator therefore keeps a stack of
    (element, automaton state, simple-type accumulator) frames — peak
    memory is O(depth), never O(document).

    Semantics mirror the tree {!Xsm_schema.Validator} item for item:
    attribute declaredness/type/required/default checks, xsi:nil
    handling, simple-content typing, text discipline in element-only
    and mixed content, and the same error paths ([/library/book[2]]
    style), so the differential property suite can assert
    stream ≡ tree on verdict and first-error path.  Two deliberate
    divergences: (1) a content model that violates UPA is driven by
    the position-set fallback ({!Xsm_schema.Content_automaton.nfa_step}
    — exact verdict, leftmost attribution) instead of being rejected,
    counted in [fallback_steps]; (2) when a child fails the content
    model the error is reported at the parent once and the remaining
    children are skipped structurally, which is also what the tree
    validator reports (one parent-path error, no recursion).

    Diagnostics carry the event positions the lexer tracked. *)

type error = { path : string; position : Sax.position; message : string }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type stats = {
  elements : int;  (** element frames opened *)
  max_depth : int;  (** peak frame-stack depth *)
  fallback_steps : int;  (** child steps through the non-UPA fallback *)
}

type t

val create :
  ?automata:(Xsm_schema.Ast.group_def * Xsm_schema.Content_automaton.table) list ->
  Xsm_schema.Ast.schema ->
  t
(** A validator for one document.  [automata] seeds the compiled-table
    cache — pass {!Xsm_analysis.Analyzer} report tables so validation
    compiles nothing. *)

val feed : t -> Sax.event -> Sax.position -> unit
(** Consume one event (push interface).  Pass
    {!Sax.event_position} — errors triggered by the event carry it. *)

val finish : t -> (stats, error list) result
(** Call after the last event: errors in document order, or the run
    statistics. *)

val run :
  ?automata:(Xsm_schema.Ast.group_def * Xsm_schema.Content_automaton.table) list ->
  Xsm_schema.Ast.schema ->
  Sax.t ->
  (stats, error list) result
(** Pull driver: drain the lexer through {!feed}.  Lexing errors
    ({!Xsm_xml.Parser.Syntax}) propagate to the caller. *)
