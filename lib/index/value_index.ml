module Decimal = Xsm_datatypes.Decimal
module Value = Xsm_datatypes.Value

module Key = struct
  type t = Number of Decimal.t | Text of string

  let of_string s =
    match Decimal.of_string (String.trim s) with
    | Ok d -> Number d
    | Error _ -> Text s

  let of_value = function
    | Value.Decimal d -> Number d
    | v -> of_string (Value.canonical_string v)

  let compare a b =
    match a, b with
    | Number a, Number b -> Decimal.compare a b
    | Number _, Text _ -> -1
    | Text _, Number _ -> 1
    | Text a, Text b -> String.compare a b

  let pp ppf = function
    | Number d -> Decimal.pp ppf d
    | Text s -> Format.fprintf ppf "%S" s
end

type op = Lt | Le | Gt | Ge

let same_family (a : Key.t) (b : Key.t) =
  match a, b with
  | Key.Number _, Key.Number _ | Key.Text _, Key.Text _ -> true
  | Key.Number _, Key.Text _ | Key.Text _, Key.Number _ -> false

let op_matches op a b =
  same_family a b
  &&
  let c = Key.compare a b in
  match op with Lt -> c < 0 | Le -> c <= 0 | Gt -> c > 0 | Ge -> c >= 0

type t = {
  sorted : (Key.t * int) array;  (* by key, then owner position *)
  by_string : (string, int list) Hashtbl.t;  (* exact value -> rev positions *)
  first_text : int;  (* index of the first Text key in [sorted] *)
}

let build triples =
  let sorted =
    Array.of_list (List.map (fun (k, _, pos) -> (k, pos)) triples)
  in
  Array.sort
    (fun (ka, pa) (kb, pb) ->
      let c = Key.compare ka kb in
      if c <> 0 then c else Stdlib.compare pa pb)
    sorted;
  let by_string = Hashtbl.create (max 16 (List.length triples)) in
  List.iter
    (fun (_, s, pos) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_string s) in
      Hashtbl.replace by_string s (pos :: prev))
    triples;
  (* first index holding a Text key: numbers sort before texts *)
  let n = Array.length sorted in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    match fst sorted.(mid) with
    | Key.Number _ -> lo := mid + 1
    | Key.Text _ -> hi := mid
  done;
  { sorted; by_string; first_text = !lo }

let size t = Array.length t.sorted

let eq t s =
  match Hashtbl.find_opt t.by_string s with
  | None -> []
  | Some positions -> List.sort_uniq Stdlib.compare positions

(* first index in [lo, hi) whose key compares >= (strict = false) or
   > (strict = true) the probe *)
let bound t ~strict ~lo ~hi probe =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let c = Key.compare (fst t.sorted.(mid)) probe in
    if c < 0 || (strict && c = 0) then lo := mid + 1 else hi := mid
  done;
  !lo

let range t op probe =
  let n = Array.length t.sorted in
  (* the probe's own family only *)
  let family_lo, family_hi =
    match probe with Key.Number _ -> (0, t.first_text) | Key.Text _ -> (t.first_text, n)
  in
  let from_, to_ =
    match op with
    | Lt -> (family_lo, bound t ~strict:false ~lo:family_lo ~hi:family_hi probe)
    | Le -> (family_lo, bound t ~strict:true ~lo:family_lo ~hi:family_hi probe)
    | Gt -> (bound t ~strict:true ~lo:family_lo ~hi:family_hi probe, family_hi)
    | Ge -> (bound t ~strict:false ~lo:family_lo ~hi:family_hi probe, family_hi)
  in
  let out = ref [] in
  for i = from_ to to_ - 1 do
    out := snd t.sorted.(i) :: !out
  done;
  List.sort_uniq Stdlib.compare !out
