module Decimal = Xsm_datatypes.Decimal
module Value = Xsm_datatypes.Value
module Label = Xsm_numbering.Sedna_label

module Key = struct
  type t = Number of Decimal.t | Text of string

  let of_string s =
    match Decimal.of_string (String.trim s) with
    | Ok d -> Number d
    | Error _ -> Text s

  let of_value = function
    | Value.Decimal d -> Number d
    | v -> of_string (Value.canonical_string v)

  let compare a b =
    match a, b with
    | Number a, Number b -> Decimal.compare a b
    | Number _, Text _ -> -1
    | Text _, Number _ -> 1
    | Text a, Text b -> String.compare a b

  let pp ppf = function
    | Number d -> Decimal.pp ppf d
    | Text s -> Format.fprintf ppf "%S" s
end

type op = Lt | Le | Gt | Ge

let same_family (a : Key.t) (b : Key.t) =
  match a, b with
  | Key.Number _, Key.Number _ | Key.Text _, Key.Text _ -> true
  | Key.Number _, Key.Text _ | Key.Text _, Key.Number _ -> false

let op_matches op a b =
  same_family a b
  &&
  let c = Key.compare a b in
  match op with Lt -> c < 0 | Le -> c <= 0 | Gt -> c > 0 | Ge -> c >= 0

(* One entry: a (key, exact string) value contributed by one target
   node, attributed to the owner extent entry the probe answers with.
   The ground truth is keyed by the target's numbering label, so
   journal maintenance can replace exactly the entries a mutated
   target contributed; the probe structures (the sorted key array and
   the exact-string table) are caches over it, invalidated on every
   maintenance step and rebuilt on the next probe — a sort of what is
   already in memory, never a walk of the document. *)
type centry = { key : Key.t; sval : string; owner : Label.t }

type t = {
  by_target : (string, centry list) Hashtbl.t;  (* raw target label -> entries *)
  mutable entry_count : int;
  mutable probe : (Key.t * Label.t) array option;  (* by key, then owner *)
  mutable by_string : (string, Label.t list) Hashtbl.t option;
  mutable first_text : int;  (* index of the first Text key in [probe] *)
  key_counts : (string, Key.t * int) Hashtbl.t;  (* canonical key -> count *)
  mutable number_count : int;  (* entries in the Number family *)
}

let create () =
  { by_target = Hashtbl.create 64;
    entry_count = 0;
    probe = None;
    by_string = None;
    first_text = 0;
    key_counts = Hashtbl.create 64;
    number_count = 0 }

let size t = t.entry_count
let target_count t = Hashtbl.length t.by_target

let invalidate_caches t =
  t.probe <- None;
  t.by_string <- None

(* hashtable-safe canonical spelling of a key; the N:/T: prefixes keep
   the families apart even when a text value spells a number *)
let canon = function
  | Key.Number d -> "N:" ^ Decimal.to_string d
  | Key.Text s -> "T:" ^ s

let count_key counts number_count key delta =
  let ck = canon key in
  (match Hashtbl.find_opt counts ck with
  | None -> if delta > 0 then Hashtbl.replace counts ck (key, delta)
  | Some (_, n) ->
    let n = n + delta in
    if n <= 0 then Hashtbl.remove counts ck else Hashtbl.replace counts ck (key, n));
  match key with Key.Number _ -> number_count + delta | Key.Text _ -> number_count

let remove_target t target =
  let k = Label.to_raw target in
  match Hashtbl.find_opt t.by_target k with
  | None -> ()
  | Some old ->
    Hashtbl.remove t.by_target k;
    t.entry_count <- t.entry_count - List.length old;
    List.iter
      (fun e -> t.number_count <- count_key t.key_counts t.number_count e.key (-1))
      old;
    invalidate_caches t

let set_target t ~target ~owner kvs =
  remove_target t target;
  match kvs with
  | [] -> ()
  | kvs ->
    Hashtbl.replace t.by_target (Label.to_raw target)
      (List.map (fun (key, sval) -> { key; sval; owner }) kvs);
    t.entry_count <- t.entry_count + List.length kvs;
    List.iter
      (fun (key, _) -> t.number_count <- count_key t.key_counts t.number_count key 1)
      kvs;
    invalidate_caches t

let ensure_caches t =
  match t.probe with
  | Some a -> a
  | None ->
    let items = Hashtbl.fold (fun _ es acc -> List.rev_append es acc) t.by_target [] in
    let a = Array.of_list (List.map (fun e -> (e.key, e.owner)) items) in
    Array.sort
      (fun (ka, oa) (kb, ob) ->
        let c = Key.compare ka kb in
        if c <> 0 then c else Label.compare oa ob)
      a;
    (* first index holding a Text key: numbers sort before texts *)
    let n = Array.length a in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      match fst a.(mid) with
      | Key.Number _ -> lo := mid + 1
      | Key.Text _ -> hi := mid
    done;
    t.first_text <- !lo;
    let bs = Hashtbl.create (max 16 n) in
    List.iter
      (fun e ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt bs e.sval) in
        Hashtbl.replace bs e.sval (e.owner :: prev))
      items;
    t.probe <- Some a;
    t.by_string <- Some bs;
    a

let owners ls = List.sort_uniq Label.compare ls

let eq t s =
  ignore (ensure_caches t);
  match t.by_string with
  | None -> []
  | Some bs -> (
    match Hashtbl.find_opt bs s with None -> [] | Some ls -> owners ls)

(* first index in [lo, hi) whose key compares >= (strict = false) or
   > (strict = true) the probe *)
let bound a ~strict ~lo ~hi probe =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let c = Key.compare (fst a.(mid)) probe in
    if c < 0 || (strict && c = 0) then lo := mid + 1 else hi := mid
  done;
  !lo

(* ------------------------------------------------------------------ *)
(* Statistics summaries                                                *)

type summary = {
  s_rows : int;
  s_targets : int;
  s_distinct : int;
  s_numbers : int;
  s_buckets : (Key.t * int) list;
}

(* equi-depth histogram over (key, count) pairs sorted by key: each
   bucket is (inclusive upper-bound key, entries in the bucket) *)
let build_buckets ~buckets ~rows pairs =
  if rows = 0 then []
  else begin
    let depth = max 1 (rows / max 1 buckets) in
    let out = ref [] and acc = ref 0 in
    List.iter
      (fun (key, n) ->
        acc := !acc + n;
        if !acc >= depth then begin
          out := (key, !acc) :: !out;
          acc := 0
        end)
      pairs;
    (if !acc > 0 then
       match List.rev pairs with
       | (last_key, _) :: _ -> out := (last_key, !acc) :: !out
       | [] -> ());
    List.rev !out
  end

let summary_of_counts ~buckets ~rows ~targets ~numbers counts =
  let pairs =
    Hashtbl.fold (fun _ kc acc -> kc :: acc) counts []
    |> List.sort (fun (a, _) (b, _) -> Key.compare a b)
  in
  { s_rows = rows;
    s_targets = targets;
    s_distinct = List.length pairs;
    s_numbers = numbers;
    s_buckets = build_buckets ~buckets ~rows pairs }

let summary ?(buckets = 8) t =
  summary_of_counts ~buckets ~rows:t.entry_count ~targets:(target_count t)
    ~numbers:t.number_count t.key_counts

let rebuilt_summary ?(buckets = 8) t =
  (* recompute the key statistics from the by-target ground truth —
     the reference the differentially maintained counts must match *)
  let counts = Hashtbl.create 64 in
  let numbers = ref 0 in
  Hashtbl.iter
    (fun _ es ->
      List.iter (fun e -> numbers := count_key counts !numbers e.key 1) es)
    t.by_target;
  summary_of_counts ~buckets ~rows:t.entry_count ~targets:(target_count t)
    ~numbers:!numbers counts

let count_eq t lit =
  match Hashtbl.find_opt t.key_counts (canon (Key.of_string lit)) with
  | None -> 0
  | Some (_, n) -> n

let est_eq s _lit =
  if s.s_distinct = 0 then 0.
  else float_of_int s.s_rows /. float_of_int s.s_distinct

let est_range s op probe =
  let family_total =
    match probe with
    | Key.Number _ -> s.s_numbers
    | Key.Text _ -> s.s_rows - s.s_numbers
  in
  if family_total = 0 then 0.
  else begin
    (* entries of the probe's family strictly below its bucket, plus
       half of the straddling bucket *)
    let in_family k = same_family k probe in
    let below = ref 0. and closed = ref false in
    List.iter
      (fun (ub, n) ->
        if in_family ub && not !closed then
          if Key.compare ub probe < 0 then below := !below +. float_of_int n
          else begin
            below := !below +. (float_of_int n /. 2.);
            closed := true
          end)
      s.s_buckets;
    let below = Float.min !below (float_of_int family_total) in
    match op with
    | Lt | Le -> below
    | Gt | Ge -> float_of_int family_total -. below
  end

let range t op probe =
  let a = ensure_caches t in
  let n = Array.length a in
  (* the probe's own family only *)
  let family_lo, family_hi =
    match probe with Key.Number _ -> (0, t.first_text) | Key.Text _ -> (t.first_text, n)
  in
  let from_, to_ =
    match op with
    | Lt -> (family_lo, bound a ~strict:false ~lo:family_lo ~hi:family_hi probe)
    | Le -> (family_lo, bound a ~strict:true ~lo:family_lo ~hi:family_hi probe)
    | Gt -> (bound a ~strict:true ~lo:family_lo ~hi:family_hi probe, family_hi)
    | Ge -> (bound a ~strict:false ~lo:family_lo ~hi:family_hi probe, family_hi)
  in
  let out = ref [] in
  for i = from_ to to_ - 1 do
    out := snd a.(i) :: !out
  done;
  owners !out
