module Label = Xsm_numbering.Sedna_label
module Name = Xsm_xml.Name

module type NAV = sig
  type t
  type node

  val kind : t -> node -> [ `Document | `Element | `Attribute | `Text ]
  val name : t -> node -> Xsm_xml.Name.t option
  val children : t -> node -> node list
  val attributes : t -> node -> node list
  val string_value : t -> node -> string
  val typed_value : t -> node -> Xsm_datatypes.Value.t list
end

module Make (N : NAV) = struct
  type pnode = {
    pid : int;
    p_kind : [ `Document | `Element | `Attribute | `Text ];
    p_name : Name.t option;
    mutable child_ids : int list;  (* in first-encounter order *)
    mutable rev_entries : N.node Extent.entry list;  (* reverse doc order *)
    mutable frozen : N.node Extent.t;
  }

  type t = { mutable pnodes : pnode array; mutable size : int }

  let get t i = t.pnodes.(i)

  let add t p_kind p_name =
    let pn =
      { pid = t.size; p_kind; p_name; child_ids = []; rev_entries = []; frozen = Extent.empty }
    in
    if t.size = Array.length t.pnodes then begin
      let bigger = Array.make (max 16 (t.size * 2)) pn in
      Array.blit t.pnodes 0 bigger 0 t.size;
      t.pnodes <- bigger
    end;
    t.pnodes.(t.size) <- pn;
    t.size <- t.size + 1;
    pn

  let find_or_add t parent kind name =
    let matches cid =
      let c = get t cid in
      if c.p_kind = kind && Option.equal Name.equal c.p_name name then Some c else None
    in
    match List.find_map matches parent.child_ids with
    | Some c -> c
    | None ->
      let c = add t kind name in
      parent.child_ids <- parent.child_ids @ [ c.pid ];
      c

  let build backend rootn =
    let t = { pnodes = [||]; size = 0 } in
    let root_pn = add t (N.kind backend rootn) (N.name backend rootn) in
    let rec go node pn label =
      pn.rev_entries <- { Extent.label; node } :: pn.rev_entries;
      let ordered = N.attributes backend node @ N.children backend node in
      let child_labels = Label.assign_children label (List.length ordered) in
      List.iter2
        (fun c cl ->
          let cpn = find_or_add t pn (N.kind backend c) (N.name backend c) in
          go c cpn cl)
        ordered child_labels
    in
    go rootn root_pn Label.root;
    for i = 0 to t.size - 1 do
      let pn = get t i in
      pn.frozen <- Extent.of_rev_list pn.rev_entries;
      pn.rev_entries <- []
    done;
    t

  let root t = get t 0
  let kind pn = pn.p_kind
  let name pn = pn.p_name
  let id pn = pn.pid
  let children t pn = List.map (get t) pn.child_ids
  let extent pn = pn.frozen

  let pnode_count t = t.size

  let entry_count t =
    let total = ref 0 in
    for i = 0 to t.size - 1 do
      total := !total + Extent.length (get t i).frozen
    done;
    !total

  let pp_stats ppf t =
    Format.fprintf ppf "%d paths over %d nodes" (pnode_count t) (entry_count t)
end
