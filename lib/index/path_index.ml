module Label = Xsm_numbering.Sedna_label
module Name = Xsm_xml.Name

module type NAV = sig
  type t
  type node

  val kind : t -> node -> [ `Document | `Element | `Attribute | `Text ]
  val name : t -> node -> Xsm_xml.Name.t option
  val parent : t -> node -> node option
  val children : t -> node -> node list
  val attributes : t -> node -> node list
  val string_value : t -> node -> string
  val typed_value : t -> node -> Xsm_datatypes.Value.t list
  val id : t -> node -> int
end

exception Maintenance_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Maintenance_error s)) fmt

module Make (N : NAV) = struct
  type pnode = {
    pid : int;
    p_kind : [ `Document | `Element | `Attribute | `Text ];
    p_name : Name.t option;
    mutable child_ids : int list;  (* in first-encounter order *)
    mutable rev_entries : N.node Extent.entry list;  (* reverse doc order *)
    mutable frozen : N.node Extent.t;
  }

  type t = {
    mutable pnodes : pnode array;
    mutable size : int;
    by_id : (int, int * Label.t) Hashtbl.t;  (* instance id -> (pid, label) *)
  }

  let get t i = t.pnodes.(i)

  let add t p_kind p_name =
    let pn =
      { pid = t.size; p_kind; p_name; child_ids = []; rev_entries = []; frozen = Extent.empty }
    in
    if t.size = Array.length t.pnodes then begin
      let bigger = Array.make (max 16 (t.size * 2)) pn in
      Array.blit t.pnodes 0 bigger 0 t.size;
      t.pnodes <- bigger
    end;
    t.pnodes.(t.size) <- pn;
    t.size <- t.size + 1;
    pn

  let find_or_add t parent kind name =
    let matches cid =
      let c = get t cid in
      if c.p_kind = kind && Option.equal Name.equal c.p_name name then Some c else None
    in
    match List.find_map matches parent.child_ids with
    | Some c -> c
    | None ->
      let c = add t kind name in
      parent.child_ids <- parent.child_ids @ [ c.pid ];
      c

  let build backend rootn =
    let t = { pnodes = [||]; size = 0; by_id = Hashtbl.create 1024 } in
    let root_pn = add t (N.kind backend rootn) (N.name backend rootn) in
    let rec go node pn label =
      pn.rev_entries <- { Extent.label; node } :: pn.rev_entries;
      Hashtbl.replace t.by_id (N.id backend node) (pn.pid, label);
      let ordered = N.attributes backend node @ N.children backend node in
      let child_labels = Label.assign_children label (List.length ordered) in
      List.iter2
        (fun c cl ->
          let cpn = find_or_add t pn (N.kind backend c) (N.name backend c) in
          go c cpn cl)
        ordered child_labels
    in
    go rootn root_pn Label.root;
    for i = 0 to t.size - 1 do
      let pn = get t i in
      pn.frozen <- Extent.of_rev_list pn.rev_entries;
      pn.rev_entries <- []
    done;
    t

  let root t = get t 0
  let kind pn = pn.p_kind
  let name pn = pn.p_name
  let id pn = pn.pid
  let children t pn = List.map (get t) pn.child_ids
  let pnode t pid = get t pid
  let extent pn = pn.frozen

  let pnode_count t = t.size

  let entry_count t =
    let total = ref 0 in
    for i = 0 to t.size - 1 do
      total := !total + Extent.length (get t i).frozen
    done;
    !total

  (* ---- incremental maintenance ---- *)

  let locate t backend node =
    match Hashtbl.find_opt t.by_id (N.id backend node) with
    | None -> None
    | Some (pid, label) -> Some (get t pid, label)

  let insert_subtree t backend node =
    if Hashtbl.mem t.by_id (N.id backend node) then []  (* replayed entry *)
    else begin
      match N.parent backend node with
      | None -> []  (* detached again before the journal drained *)
      | Some parent ->
        let ppn, plabel =
          match locate t backend parent with
          | Some loc -> loc
          | None -> fail "insert: parent is not indexed"
        in
        let siblings = N.attributes backend parent @ N.children backend parent in
        let nid = N.id backend node in
        let rec split before = function
          | [] -> None
          | s :: rest ->
            if N.id backend s = nid then Some (before, rest) else split (s :: before) rest
        in
        (match split [] siblings with
        | None -> []  (* no longer under its parent: superseded by later entries *)
        | Some (before_rev, after) ->
          (* nearest siblings that already carry a label; anything
             between them is as yet unindexed, hence unconstrained *)
          let label_of s = Option.map snd (locate t backend s) in
          let prev = List.find_map label_of before_rev in
          let next = List.find_map label_of after in
          let label =
            try
              match prev, next with
              | Some a, Some b -> Label.between a b
              | Some a, None -> Label.after_sibling a
              | None, Some b -> Label.before_sibling b
              | None, None -> Label.first_child plabel
            with Invalid_argument m -> fail "insert: %s" m
          in
          let added = ref [] in
          let rec go node pn label =
            pn.frozen <- Extent.insert pn.frozen { Extent.label; node };
            Hashtbl.replace t.by_id (N.id backend node) (pn.pid, label);
            added := (pn.pid, label, node) :: !added;
            let ordered = N.attributes backend node @ N.children backend node in
            let child_labels = Label.assign_children label (List.length ordered) in
            List.iter2
              (fun c cl ->
                let cpn = find_or_add t pn (N.kind backend c) (N.name backend c) in
                go c cpn cl)
              ordered child_labels
          in
          go node (find_or_add t ppn (N.kind backend node) (N.name backend node)) label;
          List.rev !added)
    end

  let remove_subtree t backend node =
    match Hashtbl.find_opt t.by_id (N.id backend node) with
    | None -> []  (* never indexed, or already removed *)
    | Some (pid, label) ->
      (* sweep the pnode subtree: every indexed node of the deleted
         instance subtree lies in the extent of a pnode reachable from
         the deleted node's pnode, at a label descending from (or
         equal to) the deleted label.  One label-range split per
         extent — the detached instance subtree is never walked, so
         later mutations of it cannot confuse the sweep. *)
      let removed = ref [] in
      let rec walk pid_ =
        let pn = get t pid_ in
        let kept, gone = Extent.split_off_descendants ~or_self:true pn.frozen label in
        pn.frozen <- kept;
        List.iter
          (fun (e : N.node Extent.entry) ->
            Hashtbl.remove t.by_id (N.id backend e.node);
            removed := (pid_, e.label) :: !removed)
          gone;
        List.iter walk pn.child_ids
      in
      walk pid;
      List.rev !removed

  let pp_stats ppf t =
    Format.fprintf ppf "%d paths over %d nodes" (pnode_count t) (entry_count t)
end
