(** The path index: a DataGuide over the instance (§9.1's descriptive
    schema) where every schema node additionally carries the {e extent}
    of instance nodes it describes, in document order.

    One build traversal walks the document through the backend's §5
    accessors, mirrors the descriptive-schema construction (one index
    node per distinct rooted path), assigns every instance node a
    fresh §9.3 Sedna numbering label, and appends a [(label, node)]
    entry to its path node's extent.  Because the traversal is
    pre-order, extents come out sorted by label — no sort pass.

    Any `/a/b//c`-shaped path then resolves to a set of index nodes by
    walking this little tree, and to its answer by merging their
    extents — no instance-node traversal at all.  The labels double as
    the join key for the structural joins of {!Extent} when predicates
    restrict an extent mid-path.

    {b Maintenance.}  The index also supports differential upkeep:
    {!Make.insert_subtree} labels a freshly linked subtree (Proposition
    1: no existing node is ever relabeled) and splices its entries into
    the extents; {!Make.remove_subtree} sweeps a deleted subtree out by
    one label-range split per affected extent.  Both report exactly the
    entries they touched, so callers can maintain value indexes and
    decide when a rebuild would be cheaper.  Entries are idempotent
    under replay — inserting an already-indexed node or removing an
    unindexed one is a no-op — which makes draining a batched update
    journal in order correct even when later operations supersede
    earlier ones.

    The functor is parameterized over the same accessor signature the
    XPath navigators provide, so one implementation serves both the
    XDM store and the Sedna block storage. *)

module type NAV = sig
  type t
  type node

  val kind : t -> node -> [ `Document | `Element | `Attribute | `Text ]
  val name : t -> node -> Xsm_xml.Name.t option
  val parent : t -> node -> node option
  val children : t -> node -> node list
  val attributes : t -> node -> node list
  val string_value : t -> node -> string
  val typed_value : t -> node -> Xsm_datatypes.Value.t list

  val id : t -> node -> int
  (** A stable integer identity for hashing — node identifiers, not
      document positions. *)
end

exception Maintenance_error of string
(** Raised when differential maintenance meets a state it cannot
    repair (e.g. an insertion under an unindexed parent); the caller
    falls back to a full rebuild. *)

module Make (N : NAV) : sig
  type t

  type pnode
  (** A path-index node: one distinct rooted path of the document. *)

  val build : N.t -> N.node -> t
  (** Index the tree under the given root (one full traversal). *)

  val root : t -> pnode
  val kind : pnode -> [ `Document | `Element | `Attribute | `Text ]
  val name : pnode -> Xsm_xml.Name.t option
  val id : pnode -> int
  val children : t -> pnode -> pnode list
  val pnode : t -> int -> pnode
  (** The path node with the given {!id}. *)

  val extent : pnode -> N.node Extent.t

  val pnode_count : t -> int
  val entry_count : t -> int
  (** Total extent entries = indexed instance nodes. *)

  (** {1 Differential maintenance} *)

  val locate : t -> N.t -> N.node -> (pnode * Xsm_numbering.Sedna_label.t) option
  (** The path node and numbering label of an indexed instance node. *)

  val insert_subtree :
    t -> N.t -> N.node -> (int * Xsm_numbering.Sedna_label.t * N.node) list
  (** Index a newly linked subtree: a fresh label for its root strictly
      between its nearest indexed siblings (never relabeling them),
      fresh path nodes for unseen paths, one sorted extent insertion
      per subtree node.  Returns the [(pnode id, label, node)] entries
      added, root first; [[]] when the node is already indexed or no
      longer reachable.  Raises {!Maintenance_error} when the parent is
      not indexed. *)

  val remove_subtree :
    t -> N.t -> N.node -> (int * Xsm_numbering.Sedna_label.t) list
  (** Un-index a deleted subtree by label-range splits over the pnode
      subtree's extents (the detached instance subtree itself is not
      walked).  Returns the [(pnode id, label)] entries removed, root
      first; [[]] when the node was not indexed. *)

  val pp_stats : Format.formatter -> t -> unit
end
