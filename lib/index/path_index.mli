(** The path index: a DataGuide over the instance (§9.1's descriptive
    schema) where every schema node additionally carries the {e extent}
    of instance nodes it describes, in document order.

    One build traversal walks the document through the backend's §5
    accessors, mirrors the descriptive-schema construction (one index
    node per distinct rooted path), assigns every instance node a
    fresh §9.3 Sedna numbering label, and appends a [(label, node)]
    entry to its path node's extent.  Because the traversal is
    pre-order, extents come out sorted by label — no sort pass.

    Any `/a/b//c`-shaped path then resolves to a set of index nodes by
    walking this little tree, and to its answer by merging their
    extents — no instance-node traversal at all.  The labels double as
    the join key for the structural joins of {!Extent} when predicates
    restrict an extent mid-path.

    The functor is parameterized over the same accessor signature the
    XPath navigators provide, so one implementation serves both the
    XDM store and the Sedna block storage. *)

module type NAV = sig
  type t
  type node

  val kind : t -> node -> [ `Document | `Element | `Attribute | `Text ]
  val name : t -> node -> Xsm_xml.Name.t option
  val children : t -> node -> node list
  val attributes : t -> node -> node list
  val string_value : t -> node -> string
  val typed_value : t -> node -> Xsm_datatypes.Value.t list
end

module Make (N : NAV) : sig
  type t

  type pnode
  (** A path-index node: one distinct rooted path of the document. *)

  val build : N.t -> N.node -> t
  (** Index the tree under the given root (one full traversal). *)

  val root : t -> pnode
  val kind : pnode -> [ `Document | `Element | `Attribute | `Text ]
  val name : pnode -> Xsm_xml.Name.t option
  val id : pnode -> int
  val children : t -> pnode -> pnode list
  val extent : pnode -> N.node Extent.t

  val pnode_count : t -> int
  val entry_count : t -> int
  (** Total extent entries = indexed instance nodes. *)

  val pp_stats : Format.formatter -> t -> unit
end
