(** Node extents: the leaves of the path index.

    An extent is the set of instance nodes materializing one path-index
    node (one DataGuide path), kept sorted by their §9.3 numbering
    label — i.e. in document order.  Because every node of an extent
    lies at the {e same depth} (all have the same rooted path), an
    extent is an antichain of the ancestor relation: no entry is an
    ancestor of another.  The structural joins below exploit this: the
    only possible ancestor of a label [l] inside an antichain is the
    greatest entry [<= l], so each probe is one binary search plus one
    §9.3 label predicate, never a tree traversal. *)

type 'n entry = { label : Xsm_numbering.Sedna_label.t; node : 'n }

type 'n t
(** Entries sorted by label (document order), distinct labels. *)

val empty : 'n t
val of_rev_list : 'n entry list -> 'n t
(** Build from entries listed in {e reverse} document order — the
    order an index-construction traversal naturally accumulates. *)

val length : 'n t -> int
val is_empty : 'n t -> bool
val get : 'n t -> int -> 'n entry
val entries : 'n t -> 'n entry list
val nodes : 'n t -> 'n list
(** The nodes in document order. *)

val select : 'n t -> int list -> 'n t
(** Sub-extent from sorted, duplicate-free positions. *)

val select_by_labels : 'n t -> Xsm_numbering.Sedna_label.t list -> 'n t
(** Sub-extent of the entries carrying the given labels (sorted,
    duplicate-free); labels without an entry are skipped.  One merge
    scan — labels are the stable addressing of extent entries under
    maintenance, where positions shift. *)

(** {1 Point and range maintenance}

    Extents are immutable arrays; each operation returns a fresh
    extent in O(extent) time worst case.  That is still far below a
    full index rebuild, which visits every node of the document. *)

val position : 'n t -> Xsm_numbering.Sedna_label.t -> int option
(** Exact binary search. *)

val mem : 'n t -> Xsm_numbering.Sedna_label.t -> bool

val insert : 'n t -> 'n entry -> 'n t
(** Insert at the label's sorted position; an entry already carrying
    the label is replaced. *)

val remove : 'n t -> Xsm_numbering.Sedna_label.t -> 'n t
(** Remove the entry with the label; no-op when absent. *)

val split_off_descendants :
  ?or_self:bool -> 'n t -> Xsm_numbering.Sedna_label.t -> 'n t * 'n entry list
(** Remove every entry whose label is a descendant of the given label
    (or the label itself, when [or_self]) and return it: the removed
    run is contiguous because the level separator is the smallest
    alphabet symbol, so this is one binary search plus the run scan —
    no tree walk over the (possibly already mutated) instance. *)

val inter : 'n t -> 'n t -> 'n t
(** Intersection by label (merge scan). *)

val merge : 'n t list -> 'n t
(** Document-order union of extents; entries with equal labels are
    kept once. *)

(** {1 Structural joins on numbering labels} *)

val find_ancestor_pos :
  ?or_self:bool -> among:'n t -> Xsm_numbering.Sedna_label.t -> int option
(** Position of the entry of [among] that is an ancestor of the label
    (or the label itself when [or_self]).  [among] must be an
    antichain; the result is then unique. *)

val restrict_by_ancestor : ?or_self:bool -> among:'n t -> 'n t -> 'n t
(** Entries whose label has an ancestor (or themselves, when
    [or_self]) in the antichain [among] — the descendant-axis
    containment join. *)

val restrict_by_parent : among:'n t -> 'n t -> 'n t
(** Entries whose label's parent lies in the antichain [among] — the
    child-axis join. *)

val semijoin_containing : targets:'n t list -> 'n t -> 'n t
(** Entries of the antichain argument that contain at least one entry
    of some target extent in their subtree (the entry itself counts) —
    the existence-predicate semi-join. *)
