(** Typed value indexes: equality and range probes over the
    typed-values of one indexed path.

    An index entry associates a comparison key (and the exact string
    value) with two §9.3 numbering labels: the {e target} node the
    value was read from, and the {e owner} entry of the indexed path's
    extent the probe answers with.  Probes return sorted owner labels,
    which {!Extent.select_by_labels} turns back into a
    document-ordered sub-extent — labels, unlike extent positions, are
    stable under updates (Proposition 1), so a maintained index keeps
    answering without renumbering anything.

    Keys live in a two-family order — numbers (exact [xs:decimal]
    values) before text — so a range probe only ever matches values of
    the probe's own family, mirroring the evaluator's comparison
    semantics.

    Maintenance is keyed by target: {!set_target} replaces everything
    one target node contributes (its string value may concatenate many
    descendants, so a deep edit re-reads just that target), and
    {!remove_target} drops it.  Both are O(1) on the ground truth; the
    probe structures are rebuilt lazily from memory on the next probe,
    never from the document. *)

module Key : sig
  type t = Number of Xsm_datatypes.Decimal.t | Text of string

  val of_string : string -> t
  (** Numeric when the (trimmed) string is in the [xs:decimal] lexical
      space, text otherwise. *)

  val of_value : Xsm_datatypes.Value.t -> t
  (** Decimals keep their exact value; every other atomic goes through
      its canonical string and {!of_string}. *)

  val compare : t -> t -> int
  (** Total order: numbers by value, then texts by code point. *)

  val pp : Format.formatter -> t -> unit
end

type op = Lt | Le | Gt | Ge

val op_matches : op -> Key.t -> Key.t -> bool
(** [op_matches op a b]: does [a op b] hold?  False when the keys
    belong to different families. *)

type t

val create : unit -> t
(** An empty index; populate with {!set_target}. *)

val set_target :
  t ->
  target:Xsm_numbering.Sedna_label.t ->
  owner:Xsm_numbering.Sedna_label.t ->
  (Key.t * string) list ->
  unit
(** Replace every entry contributed by the target node with the given
    (key, exact string) values, attributed to the owner label.  An
    empty list removes the target. *)

val remove_target : t -> Xsm_numbering.Sedna_label.t -> unit
(** Drop everything the target node contributed; no-op when the
    target is not indexed. *)

val size : t -> int
(** Total number of (key, value) entries. *)

val target_count : t -> int

val eq : t -> string -> Xsm_numbering.Sedna_label.t list
(** Owner labels with a target whose exact string value equals the
    literal; sorted, duplicate-free. *)

val range : t -> op -> Key.t -> Xsm_numbering.Sedna_label.t list
(** Owner labels with a target value [v] such that [v op probe] holds;
    sorted, duplicate-free. *)
