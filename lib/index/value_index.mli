(** Typed value indexes: equality and range probes over the
    typed-values of one indexed path.

    An index entry associates a comparison key (and the exact string
    value) with the {e position} of the owner node inside its path
    extent; probes answer with sorted owner positions, which
    {!Extent.select} turns back into a document-ordered sub-extent.
    Keys live in a two-family order — numbers (exact [xs:decimal]
    values) before text — so a range probe only ever matches values of
    the probe's own family, mirroring the evaluator's comparison
    semantics. *)

module Key : sig
  type t = Number of Xsm_datatypes.Decimal.t | Text of string

  val of_string : string -> t
  (** Numeric when the (trimmed) string is in the [xs:decimal] lexical
      space, text otherwise. *)

  val of_value : Xsm_datatypes.Value.t -> t
  (** Decimals keep their exact value; every other atomic goes through
      its canonical string and {!of_string}. *)

  val compare : t -> t -> int
  (** Total order: numbers by value, then texts by code point. *)

  val pp : Format.formatter -> t -> unit
end

type op = Lt | Le | Gt | Ge

val op_matches : op -> Key.t -> Key.t -> bool
(** [op_matches op a b]: does [a op b] hold?  False when the keys
    belong to different families. *)

type t

val build : (Key.t * string * int) list -> t
(** [(key, string value, owner position)] triples, any order. *)

val size : t -> int

val eq : t -> string -> int list
(** Owner positions whose exact string value equals the literal;
    sorted, duplicate-free. *)

val range : t -> op -> Key.t -> int list
(** Owner positions with a value [v] such that [v op probe] holds;
    sorted, duplicate-free. *)
