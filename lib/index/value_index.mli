(** Typed value indexes: equality and range probes over the
    typed-values of one indexed path.

    An index entry associates a comparison key (and the exact string
    value) with two §9.3 numbering labels: the {e target} node the
    value was read from, and the {e owner} entry of the indexed path's
    extent the probe answers with.  Probes return sorted owner labels,
    which {!Extent.select_by_labels} turns back into a
    document-ordered sub-extent — labels, unlike extent positions, are
    stable under updates (Proposition 1), so a maintained index keeps
    answering without renumbering anything.

    Keys live in a two-family order — numbers (exact [xs:decimal]
    values) before text — so a range probe only ever matches values of
    the probe's own family, mirroring the evaluator's comparison
    semantics.

    Maintenance is keyed by target: {!set_target} replaces everything
    one target node contributes (its string value may concatenate many
    descendants, so a deep edit re-reads just that target), and
    {!remove_target} drops it.  Both are O(1) on the ground truth; the
    probe structures are rebuilt lazily from memory on the next probe,
    never from the document. *)

module Key : sig
  type t = Number of Xsm_datatypes.Decimal.t | Text of string

  val of_string : string -> t
  (** Numeric when the (trimmed) string is in the [xs:decimal] lexical
      space, text otherwise. *)

  val of_value : Xsm_datatypes.Value.t -> t
  (** Decimals keep their exact value; every other atomic goes through
      its canonical string and {!of_string}. *)

  val compare : t -> t -> int
  (** Total order: numbers by value, then texts by code point. *)

  val pp : Format.formatter -> t -> unit
end

type op = Lt | Le | Gt | Ge

val op_matches : op -> Key.t -> Key.t -> bool
(** [op_matches op a b]: does [a op b] hold?  False when the keys
    belong to different families. *)

type t

val create : unit -> t
(** An empty index; populate with {!set_target}. *)

val set_target :
  t ->
  target:Xsm_numbering.Sedna_label.t ->
  owner:Xsm_numbering.Sedna_label.t ->
  (Key.t * string) list ->
  unit
(** Replace every entry contributed by the target node with the given
    (key, exact string) values, attributed to the owner label.  An
    empty list removes the target. *)

val remove_target : t -> Xsm_numbering.Sedna_label.t -> unit
(** Drop everything the target node contributed; no-op when the
    target is not indexed. *)

val size : t -> int
(** Total number of (key, value) entries. *)

val target_count : t -> int

(** {2 Statistics}

    Per-key counts are maintained differentially inside {!set_target}
    and {!remove_target} — the same calls the planner issues as it
    drains the update journal — so a {!summary} is O(distinct keys) to
    assemble and never re-reads the document.  {!rebuilt_summary}
    recomputes the same statistics from the by-target ground truth;
    the two must agree after any maintenance history (a property the
    test suite checks on random update batches). *)

type summary = {
  s_rows : int;  (** total (key, value) entries *)
  s_targets : int;  (** contributing target nodes *)
  s_distinct : int;  (** distinct comparison keys *)
  s_numbers : int;  (** entries in the Number family *)
  s_buckets : (Key.t * int) list;
      (** equi-depth histogram: (inclusive upper-bound key, entries),
          in key order, numbers before texts *)
}

val summary : ?buckets:int -> t -> summary
(** Assemble a summary from the differentially maintained counts.
    [buckets] (default 8) caps the histogram width. *)

val rebuilt_summary : ?buckets:int -> t -> summary
(** The same summary recomputed from scratch — the reference for the
    maintained statistics. *)

val count_eq : t -> string -> int
(** Maintained count of entries whose comparison key equals
    [Key.of_string lit] — an O(1) cardinality estimate for an equality
    probe (key-level, so lexical variants of one value pool). *)

val est_eq : summary -> string -> float
(** Expected rows for an equality probe under a uniform-keys
    assumption: rows / distinct. *)

val est_range : summary -> op -> Key.t -> float
(** Expected rows for a range probe, from the histogram: full buckets
    on the matching side plus half of the straddling bucket, family
    respected. *)

val eq : t -> string -> Xsm_numbering.Sedna_label.t list
(** Owner labels with a target whose exact string value equals the
    literal; sorted, duplicate-free. *)

val range : t -> op -> Key.t -> Xsm_numbering.Sedna_label.t list
(** Owner labels with a target value [v] such that [v op probe] holds;
    sorted, duplicate-free. *)
