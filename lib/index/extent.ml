module Label = Xsm_numbering.Sedna_label

type 'n entry = { label : Label.t; node : 'n }
type 'n t = 'n entry array

let empty = [||]

let of_rev_list rev =
  let a = Array.of_list rev in
  let n = Array.length a in
  (* reverse in place: the builder appends in document order *)
  for i = 0 to (n / 2) - 1 do
    let tmp = a.(i) in
    a.(i) <- a.(n - 1 - i);
    a.(n - 1 - i) <- tmp
  done;
  a

let length = Array.length
let is_empty t = Array.length t = 0
let get t i = t.(i)
let entries t = Array.to_list t
let nodes t = Array.to_list (Array.map (fun e -> e.node) t)
let select t positions = Array.of_list (List.map (fun i -> t.(i)) positions)

let select_by_labels t labels =
  (* both sides sorted by label: one merge scan *)
  let out = ref [] in
  let i = ref 0 in
  let n = Array.length t in
  List.iter
    (fun l ->
      while !i < n && Label.compare t.(!i).label l < 0 do
        incr i
      done;
      if !i < n && Label.equal t.(!i).label l then out := t.(!i) :: !out)
    labels;
  of_rev_list !out

let inter a b =
  let out = ref [] in
  let i = ref 0 and j = ref 0 in
  while !i < Array.length a && !j < Array.length b do
    let c = Label.compare a.(!i).label b.(!j).label in
    if c = 0 then begin
      out := a.(!i) :: !out;
      incr i;
      incr j
    end
    else if c < 0 then incr i
    else incr j
  done;
  of_rev_list !out

let merge ts =
  match List.filter (fun t -> not (is_empty t)) ts with
  | [] -> empty
  | [ single ] -> single
  | ts ->
    let all = Array.concat ts in
    Array.sort (fun a b -> Label.compare a.label b.label) all;
    let out = ref [] in
    Array.iter
      (fun e ->
        match !out with
        | prev :: _ when Label.equal prev.label e.label -> ()
        | _ -> out := e :: !out)
      all;
    of_rev_list !out

(* greatest index with label <= l, or -1.  In an antichain this is the
   only entry that can be an ancestor of l: any later entry exceeds l,
   and an earlier entry o < candidate <= l with o ancestor of l would
   make o comparable to the candidate, contradicting the antichain. *)
let find_le t l =
  let lo = ref 0 and hi = ref (Array.length t - 1) and best = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if Label.compare t.(mid).label l <= 0 then begin
      best := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  !best

let position t l =
  match find_le t l with
  | -1 -> None
  | i -> if Label.equal t.(i).label l then Some i else None

let mem t l = position t l <> None

let insert t e =
  match find_le t e.label with
  | i when i >= 0 && Label.equal t.(i).label e.label ->
    let out = Array.copy t in
    out.(i) <- e;
    out
  | i ->
    (* i = greatest index with label < e.label, or -1: insert after it *)
    let n = Array.length t in
    let out = Array.make (n + 1) e in
    Array.blit t 0 out 0 (i + 1);
    Array.blit t (i + 1) out (i + 2) (n - i - 1);
    out

let remove t l =
  match position t l with
  | None -> t
  | Some i ->
    let n = Array.length t in
    if n = 1 then empty
    else begin
      let out = Array.make (n - 1) t.(0) in
      Array.blit t 0 out 0 i;
      Array.blit t (i + 1) out i (n - 1 - i);
      out
    end

let split_off_descendants ?(or_self = false) t l =
  (* descendants of l sit in one contiguous run right after l: they are
     exactly the labels extending l with a separator, and the separator
     is the smallest alphabet symbol *)
  let n = Array.length t in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Label.compare t.(mid).label l < 0 then lo := mid + 1 else hi := mid
  done;
  let start = !lo in
  let stop = ref start in
  while
    !stop < n
    &&
    let cl = t.(!stop).label in
    Label.is_ancestor l cl || (or_self && Label.equal cl l)
  do
    incr stop
  done;
  if !stop = start then (t, [])
  else begin
    let removed = Array.to_list (Array.sub t start (!stop - start)) in
    let out = Array.make (n - (!stop - start)) t.(0) in
    Array.blit t 0 out 0 start;
    Array.blit t !stop out start (n - !stop);
    (out, removed)
  end

let find_ancestor_pos ?(or_self = false) ~among l =
  match find_le among l with
  | -1 -> None
  | i ->
    let cand = among.(i).label in
    if (or_self && Label.equal cand l) || Label.is_ancestor cand l then Some i
    else None

let restrict_by_ancestor ?(or_self = false) ~among t =
  let out = ref [] in
  Array.iter
    (fun e ->
      match find_ancestor_pos ~or_self ~among e.label with
      | Some _ -> out := e :: !out
      | None -> ())
    t;
  of_rev_list !out

let restrict_by_parent ~among t =
  let out = ref [] in
  Array.iter
    (fun e ->
      match find_le among e.label with
      | -1 -> ()
      | i -> if Label.is_parent among.(i).label e.label then out := e :: !out)
    t;
  of_rev_list !out

let semijoin_containing ~targets owners =
  let marked = Array.make (Array.length owners) false in
  List.iter
    (fun target ->
      Array.iter
        (fun e ->
          match find_ancestor_pos ~or_self:true ~among:owners e.label with
          | Some i -> marked.(i) <- true
          | None -> ())
        target)
    targets;
  let out = ref [] in
  Array.iteri (fun i e -> if marked.(i) then out := e :: !out) owners;
  of_rev_list !out
