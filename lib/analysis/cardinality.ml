module Ast = Xsm_schema.Ast
module Name = Xsm_xml.Name

type interval = { lo : int; hi : int option }

let exactly n = { lo = n; hi = Some n }
let zero = exactly 0

let pp ppf { lo; hi } =
  match hi with
  | Some h -> Format.fprintf ppf "[%d,%d]" lo h
  | None -> Format.fprintf ppf "[%d,*]" lo

let to_string iv = Format.asprintf "%a" pp iv

let add_hi a b = match a, b with Some x, Some y -> Some (x + y) | _ -> None

let add a b = { lo = a.lo + b.lo; hi = add_hi a.hi b.hi }

let envelope a b =
  {
    lo = min a.lo b.lo;
    hi = (match a.hi, b.hi with Some x, Some y -> Some (max x y) | _ -> None);
  }

(* k * hi with 0 absorbing the unbounded case: zero repetitions of an
   unbounded group still contribute nothing *)
let mul_hi k hi =
  match k, hi with
  | Some 0, _ | _, Some 0 -> Some 0
  | Some k, Some h -> Some (k * h)
  | None, _ | _, None -> None

let scale iv (r : Ast.repetition) =
  { lo = iv.lo * r.min_occurs; hi = mul_hi r.max_occurs iv.hi }

let of_repetition (r : Ast.repetition) = { lo = r.min_occurs; hi = r.max_occurs }

(* name-keyed interval maps as association lists in first-occurrence
   order; content models are small *)
let lookup map n = Option.value ~default:zero (List.assoc_opt n map)

let keys_of maps =
  List.fold_left
    (fun acc m ->
      List.fold_left (fun acc (k, _) -> if List.mem k acc then acc else acc @ [ k ]) acc m)
    [] maps

let rec of_group_map (g : Ast.group_def) =
  let per_particle =
    List.map
      (function
        | Ast.Element_particle e ->
          [ (Name.to_string e.elem_name, of_repetition e.repetition) ]
        | Ast.Group_particle inner -> of_group_map inner)
      g.particles
  in
  let keys = keys_of per_particle in
  let body_of k =
    let ivs = List.map (fun m -> lookup m k) per_particle in
    match g.combination with
    | Ast.Sequence | Ast.All -> List.fold_left add zero ivs
    | Ast.Choice -> (
      (* a branch where the name is absent contributes the zero
         interval, which [lookup] already supplies *)
      match ivs with [] -> zero | iv :: rest -> List.fold_left envelope iv rest)
  in
  List.map (fun k -> (k, scale (body_of k) g.group_repetition)) keys

let of_group g =
  let names = ref [] in
  let rec collect (g : Ast.group_def) =
    List.iter
      (function
        | Ast.Element_particle e ->
          if not (List.exists (Name.equal e.elem_name) !names) then
            names := !names @ [ e.elem_name ]
        | Ast.Group_particle inner -> collect inner)
      g.particles
  in
  collect g;
  let map = of_group_map g in
  List.map (fun n -> (n, lookup map (Name.to_string n))) !names
