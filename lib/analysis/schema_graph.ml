module Ast = Xsm_schema.Ast
module Schema_check = Xsm_schema.Schema_check
module Name = Xsm_xml.Name
module Simple_type = Xsm_datatypes.Simple_type

type kind =
  | Doc
  | Elem of Name.t
  | Attr of Name.t
  | Text

type node = {
  id : int;
  kind : kind;
  mutable simple : Simple_type.t option;
  mutable synthetic : bool;
  mutable elem_children : (int * Cardinality.interval) list;
  mutable attr_children : int list;
  mutable text_child : int option;
  mutable parents : int list;
}

type t = { nodes : node array }

let root _ = 0
let node t id = t.nodes.(id)
let size t = Array.length t.nodes

let xsi_nil = Xsm_schema.Validator.xsi_nil

type builder = { mutable acc : node list; mutable count : int }

let fresh b kind =
  let n =
    {
      id = b.count;
      kind;
      simple = None;
      synthetic = false;
      elem_children = [];
      attr_children = [];
      text_child = None;
      parents = [];
    }
  in
  b.count <- b.count + 1;
  b.acc <- n :: b.acc;
  n

let link_parent child parent =
  if not (List.mem parent.id child.parents) then
    child.parents <- parent.id :: child.parents

(* the element declarations of a group, recursively, in order *)
let rec group_decls (g : Ast.group_def) =
  List.concat_map
    (function
      | Ast.Element_particle e -> [ e ]
      | Ast.Group_particle inner -> group_decls inner)
    g.particles

let build (s : Ast.schema) =
  let b = { acc = []; count = 0 } in
  (* one graph node per element-name × named-type pair keeps recursive
     types finite; anonymous types cannot recurse, so they get a fresh
     node per occurrence *)
  let memo : (string * string, node) Hashtbl.t = Hashtbl.create 16 in
  let add_attr parent (d : Ast.attribute_decl) =
    if d.attr_use <> Ast.Prohibited then begin
      let a = fresh b (Attr d.attr_name) in
      a.simple <- Result.to_option (Schema_check.resolve_simple s d.attr_type);
      link_parent a parent;
      parent.attr_children <- parent.attr_children @ [ a.id ]
    end
  in
  let add_nil_attr parent =
    (* no [simple]: the validator ignores (rather than validates) the
       value of xsi:nil when it is not "true"/"1", so any string can
       appear there on a valid document *)
    let a = fresh b (Attr xsi_nil) in
    a.synthetic <- true;
    link_parent a parent;
    parent.attr_children <- parent.attr_children @ [ a.id ]
  in
  let add_text parent ?simple ~synthetic () =
    let tx = fresh b Text in
    tx.simple <- simple;
    tx.synthetic <- synthetic;
    link_parent tx parent;
    parent.text_child <- Some tx.id
  in
  let rec elem_node (d : Ast.element_decl) =
    match d.elem_type with
    | Ast.Type_name tn -> (
      let key = (Name.to_string d.elem_name, Name.to_string tn) in
      match Hashtbl.find_opt memo key with
      | Some n -> n
      | None ->
        let n = fresh b (Elem d.elem_name) in
        Hashtbl.add memo key n;
        fill n d;
        n)
    | Ast.Anonymous _ | Ast.Anonymous_simple _ ->
      let n = fresh b (Elem d.elem_name) in
      fill n d;
      n
  and fill n (d : Ast.element_decl) =
    add_nil_attr n;
    match Schema_check.resolve s d.elem_type with
    | Error _ -> () (* Schema_check reports it; leave the node childless *)
    | Ok (Schema_check.Resolved_simple st) ->
      n.simple <- Some st;
      add_text n ~simple:st ~synthetic:false ()
    | Ok (Schema_check.Resolved_complex (Ast.Simple_content { base; attributes })) ->
      let st = Result.to_option (Schema_check.resolve_simple s base) in
      n.simple <- st;
      List.iter (add_attr n) attributes;
      add_text n ?simple:st ~synthetic:false ()
    | Ok
        (Schema_check.Resolved_complex
           (Ast.Complex_content { mixed; content; attributes })) ->
      List.iter (add_attr n) attributes;
      (* mixed content has real text; element-only content still
         tolerates (and stores) whitespace-only text nodes *)
      add_text n ~synthetic:(not mixed) ();
      (match content with
      | Some g when not (Ast.group_is_empty g) ->
        let intervals = Cardinality.of_group g in
        List.iter
          (fun (child : Ast.element_decl) ->
            let iv =
              match
                List.find_opt (fun (nm, _) -> Name.equal nm child.elem_name) intervals
              with
              | Some (_, iv) -> iv
              | None -> Cardinality.zero
            in
            let c = elem_node child in
            link_parent c n;
            n.elem_children <- n.elem_children @ [ (c.id, iv) ])
          (group_decls g)
      | Some _ | None -> ())
  in
  let doc = fresh b Doc in
  let rootn = elem_node s.root in
  link_parent rootn doc;
  doc.elem_children <- [ (rootn.id, Cardinality.exactly 1) ];
  let nodes = Array.make b.count doc in
  List.iter (fun n -> nodes.(n.id) <- n) b.acc;
  { nodes }

let element_paths t =
  let out = ref [] in
  let rec walk on_path path id iv =
    let n = node t id in
    match n.kind with
    | Elem nm ->
      let path = path ^ "/" ^ Name.to_string nm in
      let recursive = List.mem id on_path in
      out := (path, iv, recursive) :: !out;
      if not recursive then
        List.iter (fun (c, civ) -> walk (id :: on_path) path c civ) n.elem_children
    | Doc | Attr _ | Text -> ()
  in
  List.iter
    (fun (c, civ) -> walk [] "" c civ)
    (node t (root t)).elem_children;
  List.rev !out
