(** Static cardinality estimation from the schema alone.

    The second {!Xsm_xpath.Plan.pview} provider: where the planner
    prices queries against its live path index, this one prices them
    against nothing but the schema — occurrence intervals
    ({!Cardinality}) composed along the {!Schema_graph} DataGuide.
    [rows] of a rooted path is the product of the per-parent intervals
    of its steps, so the interval part of every estimate bounds the
    result cardinality on {e every} schema-valid document; the point
    expectation takes interval midpoints (lower bound plus one when
    unbounded).

    Collected statistics can be fused in through [?summaries]: when a
    caller has {!Xsm_index.Value_index} summaries for some rooted
    paths (e.g. saved from a previous run of the data), predicate
    selectivities sharpen from the defaults to histogram estimates
    while the structural intervals stay schema-derived. *)

module Ast = Xsm_schema.Ast
module Path_ast = Xsm_xpath.Path_ast
module Plan = Xsm_xpath.Plan

type summaries = path:string -> rel:string -> Xsm_index.Value_index.summary option
(** [path] is the rooted path of the predicate's context step, printed
    as [/a/b] (attributes as [@n] steps, text slots as [text()]);
    [rel] is the printed relative path of the predicate. *)

val provider : ?summaries:summaries -> Schema_graph.t -> Plan.pview
(** The document-node view.  Lazy, so recursive schemas (infinite
    trees of rooted paths) are fine; cycle identities are graph node
    ids, which is what cuts descendant expansion at a recursive
    tie-back. *)

val estimate :
  ?summaries:summaries -> Schema_graph.t -> Path_ast.path -> Plan.estimate

val cost : ?summaries:summaries -> Schema_graph.t -> Path_ast.path -> float
(** {!Plan.Cost.eval_cost} over {!provider}: the navigational price of
    the query, in the planner's cost units, on a hypothetical document
    of the expected shape. *)

val report :
  ?summaries:summaries -> Schema_graph.t -> Path_ast.path -> Xsm_obs.Json.t
(** [{"query", "supported", "rows", "eval_cost", "estimate"}] — the
    [xsm analyze --cost] payload. *)
