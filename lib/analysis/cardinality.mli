(** Occurrence-interval arithmetic over content models.

    For a group definition [g] and an element name [n], the interval
    computed here bounds how many [n]-children any word of [L(g)] can
    contain: sequences add, choices take the envelope (with [0] for
    the branches that omit the name), interleaves add, and repetition
    factors scale.  The bounds are exact for the paper's §2 grammar —
    every value inside the interval is realised by some word — except
    that for choices the interval is the convex hull of the per-branch
    intervals. *)

module Ast = Xsm_schema.Ast

type interval = { lo : int; hi : int option  (** [None] = unbounded *) }

val exactly : int -> interval
val zero : interval

val pp : Format.formatter -> interval -> unit
(** Renders as [[lo,hi]] with [*] for unbounded. *)

val to_string : interval -> string

val add : interval -> interval -> interval
(** Sequential composition: both sides occur. *)

val envelope : interval -> interval -> interval
(** Choice: either side occurs — the convex hull. *)

val scale : interval -> Ast.repetition -> interval
(** The interval for [g{min,max}] given the interval for one run of
    [g]. *)

val of_repetition : Ast.repetition -> interval

val of_group : Ast.group_def -> (Ast.Name.t * interval) list
(** Per element name, the occurrence interval over words of the
    group's language, in first-occurrence order. *)
