(** Schema hygiene: reachability of named type definitions and
    satisfiability of content models.

    An element declaration is {e unsatisfiable} when no finite tree
    validates against it — the minimum node count of its content,
    computed as the least fixpoint over the named-type graph (choices
    minimise, sequences add, repetitions multiply, with [0 × ∞ = 0]),
    is infinite.  Required recursion is the only source of infinity in
    the paper's §2 grammar, so the diagnostic pinpoints
    cycle-induced infinite minimum content. *)

module Ast = Xsm_schema.Ast
module Schema_check = Xsm_schema.Schema_check

val unreachable_types : Ast.schema -> Ast.Name.t list
(** Named complex and simple type definitions never referenced on any
    path from the root element declaration, in declaration order. *)

val min_content : Ast.schema -> Ast.element_decl -> int option
(** Minimum number of element nodes in a tree valid against the
    declaration (the element itself included); [None] when the
    declaration is unsatisfiable. *)

val unsatisfiable_elements :
  Ast.schema -> (Schema_check.location * Ast.element_decl) list
(** Every element declaration (root first, then the named types, each
    visited once) whose minimum content is infinite. *)
