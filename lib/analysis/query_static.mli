(** Static analysis of XPath queries against a schema.

    A query plan is evaluated symbolically over the
    {!Schema_graph} — sets of graph nodes instead of sets of instance
    nodes.  Because the graph over-approximates every schema-valid
    document, an empty symbolic result proves the query returns
    nothing on any valid instance; that verdict is what the planner's
    pruning hook consumes.  Everything outside the analysable fragment
    (sibling-order axes, positional predicates beyond [[0]], paths the
    graph cannot follow) degrades to [Maybe] — the analysis never
    claims emptiness it cannot prove.

    Value predicates are checked against the §4 value spaces: an
    equality whose literal is not in the lexical space of any
    possible target type can never hold on a valid document (the
    validator accepted the raw string value, so the two strings cannot
    be equal), and an order comparison whose literal sits in the
    opposite {!Xsm_index.Value_index.Key} family (number vs. text) from
    every possible target can never hold either.  The family
    classification is conservative enough to be sound for both typed
    stores (canonical forms) and untyped backends (raw lexical
    forms). *)

module Ast = Xsm_schema.Ast
module Path_ast = Xsm_xpath.Path_ast

type verdict =
  | Empty of string  (** provably empty on every schema-valid document *)
  | Maybe

type result = { verdict : verdict; warnings : string list }
(** [warnings] flags never-satisfiable value comparisons found along
    the way, whether or not they empty the whole query. *)

val analyze : Schema_graph.t -> Path_ast.path -> result

val analyze_schema : Ast.schema -> Path_ast.path -> result
(** Builds the graph first; [Maybe] without warnings when the schema
    fails [Schema_check]. *)

val pruner : Ast.schema -> Path_ast.path -> string option
(** The planner hook: [Some reason] exactly when the verdict is
    {!Empty}.  The graph is built once, lazily, per schema; a schema
    that fails [Schema_check] never prunes.  Soundness assumes the
    queried instance is valid against the schema. *)

val fold : Schema_graph.t -> Path_ast.path -> Path_ast.path
(** Drop predicates provably true on every schema-valid document, so
    the planner never prices or executes them: order comparisons
    forced by the operand type's numeric interval (built-in integer
    bounds tightened by min/max facets, or an enumeration whose values
    all satisfy the comparison) on a target a chain of
    minOccurs ≥ 1 child steps guarantees to exist, existence
    predicates over such chains, and trivially-true positional tests
    ([position()>=1]).  Relative paths (context unknown) and paths
    using axes outside the analysable fragment are returned
    unchanged. *)

val rewriter : Ast.schema -> Path_ast.path -> Path_ast.path
(** {!fold} as a planner rewriting hook, with the same lazily built
    per-schema graph as {!pruner}; the identity when the schema fails
    [Schema_check].  Soundness assumes the queried instance is
    valid. *)
