module Ast = Xsm_schema.Ast
module Schema_check = Xsm_schema.Schema_check
module Name = Xsm_xml.Name

(* ------------------------------------------------------------------ *)
(* Reachability                                                        *)

let unreachable_types (s : Ast.schema) =
  let used : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let mark n = Hashtbl.replace used (Name.to_string n) () in
  let seen n = Hashtbl.mem used (Name.to_string n) in
  let rec visit_type_name n =
    if not (seen n) then begin
      mark n;
      match List.find_opt (fun (m, _) -> Name.equal m n) s.complex_types with
      | Some (_, ct) -> visit_complex ct
      | None -> () (* a simple type or builtin: no outgoing references *)
    end
  and visit_element (e : Ast.element_decl) =
    match e.elem_type with
    | Ast.Type_name n -> visit_type_name n
    | Ast.Anonymous ct -> visit_complex ct
    | Ast.Anonymous_simple _ -> ()
  and visit_complex = function
    | Ast.Simple_content { base; attributes } ->
      visit_type_name base;
      List.iter (fun (a : Ast.attribute_decl) -> visit_type_name a.attr_type) attributes
    | Ast.Complex_content { content; attributes; mixed = _ } ->
      List.iter (fun (a : Ast.attribute_decl) -> visit_type_name a.attr_type) attributes;
      Option.iter visit_group content
  and visit_group (g : Ast.group_def) =
    List.iter
      (function
        | Ast.Element_particle e -> visit_element e
        | Ast.Group_particle inner -> visit_group inner)
      g.particles
  in
  visit_element s.root;
  List.filter_map (fun (n, _) -> if seen n then None else Some n) s.complex_types
  @ List.filter_map (fun (n, _) -> if seen n then None else Some n) s.simple_types

(* ------------------------------------------------------------------ *)
(* Satisfiability: minimum element-node count, ∞ as None               *)

let ( +? ) a b = match a, b with Some x, Some y -> Some (x + y) | _ -> None

let min_opt a b =
  match a, b with
  | Some x, Some y -> Some (min x y)
  | Some x, None | None, Some x -> Some x
  | None, None -> None

let mul k v = if k = 0 then Some 0 else Option.map (fun x -> k * x) v

(* minimum node counts for the named complex types, by Kleene
   iteration from ∞; a minimal derivation never repeats a type along a
   path, so |types| + 1 rounds reach the fixpoint *)
let type_table (s : Ast.schema) =
  let tbl : (string, int option) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (n, _) -> Hashtbl.replace tbl (Name.to_string n) None) s.complex_types;
  let rec type_min (ty : Ast.type_ref) =
    match ty with
    | Ast.Anonymous ct -> complex_min ct
    | Ast.Anonymous_simple _ -> Some 0
    | Ast.Type_name n -> (
      match Hashtbl.find_opt tbl (Name.to_string n) with
      | Some v -> v (* named complex type: current estimate *)
      | None -> Some 0 (* simple, builtin, or unknown (reported elsewhere) *))
  and complex_min = function
    | Ast.Simple_content _ -> Some 0
    | Ast.Complex_content { content = None; _ } -> Some 0
    | Ast.Complex_content { content = Some g; _ } -> group_min g
  and group_min (g : Ast.group_def) =
    let body =
      match g.combination with
      | Ast.Sequence | Ast.All ->
        List.fold_left (fun acc p -> acc +? particle_min p) (Some 0) g.particles
      | Ast.Choice ->
        List.fold_left (fun acc p -> min_opt acc (particle_min p)) None g.particles
        |> fun v -> if g.particles = [] then Some 0 else v
    in
    mul g.group_repetition.min_occurs body
  and particle_min = function
    | Ast.Element_particle e -> elem_min e
    | Ast.Group_particle inner -> group_min inner
  and elem_min (e : Ast.element_decl) =
    mul e.repetition.min_occurs (Some 1 +? type_min e.elem_type)
  in
  for _round = 0 to List.length s.complex_types do
    List.iter
      (fun (n, ct) -> Hashtbl.replace tbl (Name.to_string n) (complex_min ct))
      s.complex_types
  done;
  (tbl, fun (e : Ast.element_decl) -> Some 1 +? type_min e.elem_type)

let min_content s e =
  let _, elem_total = type_table s in
  elem_total e

let unsatisfiable_elements (s : Ast.schema) =
  let _, elem_total = type_table s in
  let out = ref [] in
  let report loc e = out := (loc, e) :: !out in
  let rec walk_element loc (e : Ast.element_decl) =
    if elem_total e = None then report loc e;
    match e.elem_type with
    | Ast.Anonymous ct -> walk_complex loc ct
    | Ast.Type_name _ | Ast.Anonymous_simple _ -> ()
  and walk_complex loc = function
    | Ast.Simple_content _ -> ()
    | Ast.Complex_content { content; _ } -> Option.iter (walk_group loc) content
  and walk_group loc (g : Ast.group_def) =
    List.iter
      (function
        | Ast.Element_particle e ->
          walk_element (loc @ [ Schema_check.In_element e.elem_name ]) e
        | Ast.Group_particle inner ->
          walk_group (loc @ [ Schema_check.In_group ]) inner)
      g.particles
  in
  walk_element [ Schema_check.In_element s.root.elem_name ] s.root;
  List.iter
    (fun (n, ct) -> walk_complex [ Schema_check.In_type n ] ct)
    s.complex_types;
  List.rev !out
