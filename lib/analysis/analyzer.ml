module Ast = Xsm_schema.Ast
module Schema_check = Xsm_schema.Schema_check
module Content_automaton = Xsm_schema.Content_automaton
module Name = Xsm_xml.Name

type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

type finding = {
  severity : severity;
  pass : string;
  loc : Schema_check.location;
  message : string;
}

let pp_finding ppf f =
  Format.fprintf ppf "%s [%s] %a: %s" (severity_to_string f.severity) f.pass
    Schema_check.pp_location f.loc f.message

type report = {
  findings : finding list;
  tables : (Ast.group_def * Content_automaton.table) list;
  cardinalities : (string * Cardinality.interval * bool) list;
  graph : Schema_graph.t option;
}

let of_schema_errors errors =
  List.map
    (fun (e : Schema_check.error) ->
      { severity = Error; pass = "schema-check"; loc = e.loc; message = e.message })
    errors

let significant r =
  List.filter (fun f -> f.severity = Error || f.severity = Warning) r.findings

(* ------------------------------------------------------------------ *)
(* UPA with witnesses, and determinization                             *)

let type_of_decl (d : Ast.element_decl) =
  match d.elem_type with
  | Ast.Type_name n -> Name.to_string n
  | Ast.Anonymous _ -> "(anonymous complex type)"
  | Ast.Anonymous_simple _ -> "(anonymous simple type)"

let upa_finding loc (c : Content_automaton.conflict) =
  let witness = String.concat " " (List.map Name.to_string c.witness) in
  {
    severity = Error;
    pass = "upa";
    loc;
    message =
      Printf.sprintf
        "Unique Particle Attribution violated: after the children \"%s\" the last \
         <%s> matches two particles (declared with type %s and with type %s)"
        witness
        (Name.to_string c.conflict_name)
        (type_of_decl c.first_decl) (type_of_decl c.second_decl);
  }

(* visit every content-model group the validator would compile, with
   its location *)
let content_groups (s : Ast.schema) =
  let out = ref [] in
  let rec visit_element loc (e : Ast.element_decl) =
    match e.elem_type with
    | Ast.Anonymous ct -> visit_complex loc ct
    | Ast.Type_name _ | Ast.Anonymous_simple _ -> ()
  and visit_complex loc = function
    | Ast.Simple_content _ -> ()
    | Ast.Complex_content { content = Some g; _ } when not (Ast.group_is_empty g) ->
      out := (loc, g) :: !out;
      visit_group loc g
    | Ast.Complex_content _ -> ()
  and visit_group loc (g : Ast.group_def) =
    (* recurse for the anonymous types of nested element particles *)
    List.iter
      (function
        | Ast.Element_particle e ->
          visit_element (loc @ [ Schema_check.In_element e.elem_name ]) e
        | Ast.Group_particle inner -> visit_group loc inner)
      g.particles
  in
  List.iter
    (fun (n, ct) -> visit_complex [ Schema_check.In_type n ] ct)
    s.complex_types;
  visit_element [ Schema_check.In_element s.root.elem_name ] s.root;
  List.rev !out

let upa_pass s =
  let findings = ref [] and tables = ref [] in
  List.iter
    (fun (loc, g) ->
      match Content_automaton.make g with
      | Error _ -> () (* schema-check already reported the group as uncompilable *)
      | Ok a -> (
        match Content_automaton.upa_conflict a with
        | Some c -> findings := upa_finding loc c :: !findings
        | None -> (
          match Content_automaton.compile a with
          | Some table -> tables := (g, table) :: !tables
          | None -> ())))
    (content_groups s);
  (List.rev !findings, List.rev !tables)

(* ------------------------------------------------------------------ *)

let hygiene_pass s =
  let unreachable =
    List.map
      (fun n ->
        {
          severity = Warning;
          pass = "reachability";
          loc = [ Schema_check.In_type n ];
          message =
            "type definition is unreachable from the root element declaration";
        })
      (Hygiene.unreachable_types s)
  in
  let unsat =
    List.map
      (fun (loc, (e : Ast.element_decl)) ->
        let is_root = e == s.Ast.root in
        {
          severity = (if is_root then Error else Warning);
          pass = "satisfiability";
          loc;
          message =
            (if is_root then
               "the schema is unsatisfiable: every document would need infinitely \
                many nodes (required content recurses)"
             else
               "element declaration is unsatisfiable: no finite subtree validates \
                against it (required content recurses)");
        })
      (Hygiene.unsatisfiable_elements s)
  in
  unreachable @ unsat

let query_pass graph q =
  match graph with
  | None -> []
  | Some g ->
    let r = Query_static.analyze g q in
    let warnings =
      List.map
        (fun m -> { severity = Warning; pass = "query"; loc = []; message = m })
        r.Query_static.warnings
    in
    let verdict =
      match r.Query_static.verdict with
      | Query_static.Empty reason ->
        [
          {
            severity = Warning;
            pass = "query";
            loc = [];
            message = Printf.sprintf "statically empty: %s" reason;
          };
        ]
      | Query_static.Maybe -> []
    in
    verdict @ warnings

let analyze ?query (s : Ast.schema) =
  let check_findings, check_ok =
    match Schema_check.check s with
    | Ok () -> ([], true)
    | Error es ->
      (* drop the bare UPA lines: the upa pass re-reports them with a
         concrete witness *)
      let bare_upa (e : Schema_check.error) =
        e.message = "content model violates Unique Particle Attribution"
      in
      (of_schema_errors (List.filter (fun e -> not (bare_upa e)) es), false)
  in
  let upa_findings, tables = upa_pass s in
  let hygiene = hygiene_pass s in
  let graph = if check_ok then Some (Schema_graph.build s) else None in
  let cardinalities =
    match graph with Some g -> Schema_graph.element_paths g | None -> []
  in
  let query_findings =
    match query with Some q -> query_pass graph q | None -> []
  in
  {
    findings = check_findings @ upa_findings @ hygiene @ query_findings;
    tables;
    cardinalities;
    graph;
  }
