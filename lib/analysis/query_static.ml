module Ast = Xsm_schema.Ast
module Schema_check = Xsm_schema.Schema_check
module Path_ast = Xsm_xpath.Path_ast
module Name = Xsm_xml.Name
module Simple_type = Xsm_datatypes.Simple_type
module Builtin = Xsm_datatypes.Builtin
module VI = Xsm_index.Value_index
module G = Schema_graph

type verdict =
  | Empty of string
  | Maybe

type result = { verdict : verdict; warnings : string list }

exception Unsupported

module IntSet = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Value-space families                                                *)

(* Which Value_index.Key family can a value of this simple type probe
   as?  Sound for raw lexical forms as well as canonical ones: a type
   is classified Number/Text only when every string in its lexical
   space (and every canonical form) lands in that family.  Decimal
   lexical forms are exactly what [Decimal.of_string] accepts, hence
   Number; the date/time/duration lexical spaces always contain a
   non-leading '-', ':' or 'P', hence Text.  Booleans ("1"), gYear
   ("1980"), floats ("12" is a float lexical form), the binary types
   and URIs can spell plain digit strings, so they stay Unknown. *)
type family = F_number | F_text | F_unknown

let family_join a b = if a = b then a else F_unknown

let primitive_family : Builtin.primitive -> family = function
  | Builtin.P_decimal -> F_number
  | Builtin.P_date_time | Builtin.P_time | Builtin.P_date | Builtin.P_duration
  | Builtin.P_g_year_month | Builtin.P_g_month_day | Builtin.P_g_day
  | Builtin.P_g_month ->
    F_text
  | Builtin.P_string | Builtin.P_boolean | Builtin.P_float | Builtin.P_double
  | Builtin.P_g_year | Builtin.P_hex_binary | Builtin.P_base64_binary
  | Builtin.P_any_uri | Builtin.P_qname | Builtin.P_notation ->
    F_unknown

let rec st_family (st : Simple_type.t) =
  match st with
  | Simple_type.Builtin b -> (
    match Builtin.primitive_base b with
    | Some p -> primitive_family p
    | None -> F_unknown)
  | Simple_type.Restriction { base; _ } -> st_family base
  | Simple_type.List _ ->
    (* the raw string value of a list is space-joined items — its key
       family need not match the items' *)
    F_unknown
  | Simple_type.Union { members; _ } -> (
    match List.map st_family members with
    | [] -> F_unknown
    | f :: fs -> List.fold_left family_join f fs)

let key_family lit =
  match VI.Key.of_string lit with VI.Key.Number _ -> F_number | VI.Key.Text _ -> F_text

(* ------------------------------------------------------------------ *)
(* Numeric value intervals                                             *)

module Decimal = Xsm_datatypes.Decimal
module Facet = Xsm_datatypes.Facet
module Value = Xsm_datatypes.Value

(* A bound on a numeric value space: the decimal and whether it is
   attained (inclusive). *)
type nbound = Decimal.t * bool

type nrange = { nlo : nbound option; nhi : nbound option }

let tighten_lo cur cand =
  match cur, cand with
  | None, c -> c
  | c, None -> c
  | Some (a, ai), Some (b, bi) ->
    let c = Decimal.compare a b in
    if c > 0 then Some (a, ai)
    else if c < 0 then Some (b, bi)
    else Some (a, ai && bi)

let tighten_hi cur cand =
  match cur, cand with
  | None, c -> c
  | c, None -> c
  | Some (a, ai), Some (b, bi) ->
    let c = Decimal.compare a b in
    if c < 0 then Some (a, ai)
    else if c > 0 then Some (b, bi)
    else Some (a, ai && bi)

(* convex hull for unions: the weaker bound on each side *)
let hull a b =
  let weaker_lo x y =
    match x, y with
    | None, _ | _, None -> None
    | Some (a, ai), Some (b, bi) ->
      let c = Decimal.compare a b in
      if c < 0 then Some (a, ai) else if c > 0 then Some (b, bi) else Some (a, ai || bi)
  and weaker_hi x y =
    match x, y with
    | None, _ | _, None -> None
    | Some (a, ai), Some (b, bi) ->
      let c = Decimal.compare a b in
      if c > 0 then Some (a, ai) else if c < 0 then Some (b, bi) else Some (a, ai || bi)
  in
  { nlo = weaker_lo a.nlo b.nlo; nhi = weaker_hi a.nhi b.nhi }

let builtin_range (b : Builtin.t) : nrange option =
  let d s = Some (Decimal.of_string_exn s, true) in
  let r nlo nhi = Some { nlo; nhi } in
  match b with
  | Builtin.Primitive Builtin.P_decimal | Builtin.Integer -> r None None
  | Builtin.Non_positive_integer -> r None (d "0")
  | Builtin.Negative_integer -> r None (d "-1")
  | Builtin.Long -> r (d "-9223372036854775808") (d "9223372036854775807")
  | Builtin.Int -> r (d "-2147483648") (d "2147483647")
  | Builtin.Short -> r (d "-32768") (d "32767")
  | Builtin.Byte -> r (d "-128") (d "127")
  | Builtin.Non_negative_integer -> r (d "0") None
  | Builtin.Unsigned_long -> r (d "0") (d "18446744073709551615")
  | Builtin.Unsigned_int -> r (d "0") (d "4294967295")
  | Builtin.Unsigned_short -> r (d "0") (d "65535")
  | Builtin.Unsigned_byte -> r (d "0") (d "255")
  | Builtin.Positive_integer -> r (d "1") None
  | _ -> None

(* The interval every value of [st] lies in, when the type is provably
   numeric (primitive base xs:decimal — so every typed value keys as
   [Key.Number] and every raw lexical form trims to a decimal). *)
let rec numeric_range (st : Simple_type.t) : nrange option =
  match st with
  | Simple_type.Builtin b ->
    if Builtin.primitive_base b = Some Builtin.P_decimal then builtin_range b else None
  | Simple_type.Restriction { base; facets; _ } ->
    Option.map
      (fun r ->
        List.fold_left
          (fun r (f : Facet.t) ->
            match f with
            | Facet.Min_inclusive (Value.Decimal d) ->
              { r with nlo = tighten_lo r.nlo (Some (d, true)) }
            | Facet.Min_exclusive (Value.Decimal d) ->
              { r with nlo = tighten_lo r.nlo (Some (d, false)) }
            | Facet.Max_inclusive (Value.Decimal d) ->
              { r with nhi = tighten_hi r.nhi (Some (d, true)) }
            | Facet.Max_exclusive (Value.Decimal d) ->
              { r with nhi = tighten_hi r.nhi (Some (d, false)) }
            | _ -> r)
          r facets)
      (numeric_range base)
  | Simple_type.List _ -> None
  | Simple_type.Union { members; _ } -> (
    match List.map numeric_range members with
    | [] -> None
    | r :: rs ->
      List.fold_left
        (fun a b -> match a, b with Some a, Some b -> Some (hull a b) | _ -> None)
        r rs)

(* Enumeration facets along the derivation chain.  A valid value
   satisfies every one of them, so if any single facet's value list
   all satisfies a comparison, every valid value does. *)
let rec enumerations (st : Simple_type.t) : Value.t list list =
  match st with
  | Simple_type.Builtin _ | Simple_type.List _ | Simple_type.Union _ -> []
  | Simple_type.Restriction { base; facets; _ } ->
    List.filter_map (function Facet.Enumeration vs -> Some vs | _ -> None) facets
    @ enumerations base

(* Does every value of [st] satisfy [v op lit]?  Sound for the §5
   typed-value comparison: a numeric type's values key as [Number]
   inside {!numeric_range}, so the interval test decides the
   comparison for all of them at once. *)
let type_forces_cmp st (op : Path_ast.cmp) lit_d =
  let sat d =
    let c = Decimal.compare d lit_d in
    match op with
    | Path_ast.Lt -> c < 0
    | Path_ast.Le -> c <= 0
    | Path_ast.Gt -> c > 0
    | Path_ast.Ge -> c >= 0
  in
  List.exists
    (fun vs ->
      vs <> [] && List.for_all (function Value.Decimal d -> sat d | _ -> false) vs)
    (enumerations st)
  ||
  match numeric_range st with
  | None -> false
  | Some { nlo; nhi } -> (
    match op with
    | Path_ast.Lt -> (
      match nhi with
      | None -> false
      | Some (h, incl) ->
        let c = Decimal.compare h lit_d in
        if incl then c < 0 else c <= 0)
    | Path_ast.Le -> (
      match nhi with None -> false | Some (h, _) -> Decimal.compare h lit_d <= 0)
    | Path_ast.Gt -> (
      match nlo with
      | None -> false
      | Some (l, incl) ->
        let c = Decimal.compare l lit_d in
        if incl then c > 0 else c >= 0)
    | Path_ast.Ge -> (
      match nlo with None -> false | Some (l, _) -> Decimal.compare l lit_d >= 0))

(* The simple type constraining a node's raw string value, when the
   analysis knows one: attributes and simple-typed elements.  Text
   nodes are opaque — a simple value can be split across several text
   nodes, and fragments of a valid lexical form prove nothing. *)
let value_type g id =
  let n = G.node g id in
  match n.G.kind with
  | G.Attr _ -> n.G.simple
  | G.Elem _ -> n.G.simple
  | G.Doc | G.Text -> None

(* ------------------------------------------------------------------ *)
(* Symbolic sets of graph nodes                                        *)

let children_of g id =
  let n = G.node g id in
  List.map fst n.G.elem_children
  @ (match n.G.text_child with Some t -> [ t ] | None -> [])

let descendants_or_self g set =
  let rec grow frontier acc =
    match frontier with
    | [] -> acc
    | id :: rest ->
      let fresh = List.filter (fun c -> not (IntSet.mem c acc)) (children_of g id) in
      grow (fresh @ rest) (List.fold_left (fun a c -> IntSet.add c a) acc fresh)
  in
  grow (IntSet.elements set) set

let ancestors g set ~or_self =
  let rec grow frontier acc =
    match frontier with
    | [] -> acc
    | id :: rest ->
      let parents = (G.node g id).G.parents in
      let fresh = List.filter (fun p -> not (IntSet.mem p acc)) parents in
      grow (fresh @ rest) (List.fold_left (fun a p -> IntSet.add p a) acc fresh)
  in
  let anc = grow (IntSet.elements set) IntSet.empty in
  if or_self then IntSet.union anc set else anc

let parents_of g set =
  IntSet.fold
    (fun id acc ->
      List.fold_left (fun a p -> IntSet.add p a) acc (G.node g id).G.parents)
    set IntSet.empty

(* over-approximate siblings: every child of every parent *)
let siblings_of g set =
  IntSet.fold
    (fun id acc ->
      List.fold_left
        (fun a p ->
          List.fold_left (fun a c -> IntSet.add c a) a (children_of g p))
        acc (G.node g id).G.parents)
    set IntSet.empty

let child_set g set =
  IntSet.fold
    (fun id acc -> List.fold_left (fun a c -> IntSet.add c a) acc (children_of g id))
    set IntSet.empty

let axis_nodes g (axis : Xsm_xdm.Axis.t) set =
  match axis with
  | Xsm_xdm.Axis.Self -> set
  | Xsm_xdm.Axis.Child -> child_set g set
  | Xsm_xdm.Axis.Attribute ->
    IntSet.fold
      (fun id acc ->
        List.fold_left (fun a c -> IntSet.add c a) acc (G.node g id).G.attr_children)
      set IntSet.empty
  | Xsm_xdm.Axis.Descendant -> descendants_or_self g (child_set g set)
  | Xsm_xdm.Axis.Descendant_or_self -> descendants_or_self g set
  | Xsm_xdm.Axis.Parent -> parents_of g set
  | Xsm_xdm.Axis.Ancestor -> ancestors g set ~or_self:false
  | Xsm_xdm.Axis.Ancestor_or_self -> ancestors g set ~or_self:true
  | Xsm_xdm.Axis.Following_sibling | Xsm_xdm.Axis.Preceding_sibling ->
    siblings_of g set
  | Xsm_xdm.Axis.Following | Xsm_xdm.Axis.Preceding -> raise Unsupported

let test_matches g (test : Path_ast.node_test) id =
  match test, (G.node g id).G.kind with
  | Path_ast.Name_test nm, (G.Elem n | G.Attr n) -> Name.equal nm n
  | Path_ast.Name_test _, (G.Doc | G.Text) -> false
  | Path_ast.Wildcard, (G.Elem _ | G.Attr _) -> true
  | Path_ast.Wildcard, (G.Doc | G.Text) -> false
  | Path_ast.Text_test, G.Text -> true
  | Path_ast.Text_test, (G.Doc | G.Elem _ | G.Attr _) -> false
  | Path_ast.Node_test, _ -> true

(* ------------------------------------------------------------------ *)
(* Path evaluation                                                     *)

let analyze g (p : Path_ast.path) =
  let warnings = ref [] in
  let warn fmt =
    Printf.ksprintf
      (fun m -> if not (List.mem m !warnings) then warnings := m :: !warnings)
      fmt
  in
  let rec eval_path start (p : Path_ast.path) =
    let s0 = if p.Path_ast.absolute then IntSet.singleton (G.root g) else start in
    List.fold_left eval_step s0 p.Path_ast.steps
  and eval_step set ((step : Path_ast.step), desc_flag) =
    let bases = if desc_flag then descendants_or_self g set else set in
    let on_axis = axis_nodes g step.Path_ast.axis bases in
    let matching = IntSet.filter (test_matches g step.Path_ast.test) on_axis in
    IntSet.filter (fun id -> keeps_predicates id step.Path_ast.predicates) matching
  and keeps_predicates id preds =
    List.for_all (fun p -> may_hold id p) preds
  and may_hold id (pred : Path_ast.expr) =
    match pred with
    | Path_ast.Position k -> k >= 1
    | Path_ast.Position_cmp (op, k) -> (
      (* may some 1-based position satisfy the comparison? *)
      match op with
      | Path_ast.Lt -> k > 1
      | Path_ast.Le -> k >= 1
      | Path_ast.Gt | Path_ast.Ge -> true)
    | Path_ast.Last _ -> true
    | Path_ast.Exists rel -> (
      match targets_of id rel with
      | None -> true
      | Some ts -> not (IntSet.is_empty ts))
    | Path_ast.Equals (rel, lit) -> (
      match targets_of id rel with
      | None -> true
      | Some ts when IntSet.is_empty ts -> false
      | Some ts ->
        let never =
          IntSet.for_all
            (fun t ->
              match value_type g t with
              | Some st -> not (Simple_type.is_valid st lit)
              | None -> false)
            ts
        in
        if never then
          warn
            "comparison with %S can never hold: the literal is outside the lexical \
             space of every type the operand can have"
            lit;
        not never)
    | Path_ast.Cmp (op, rel, lit) -> (
      match targets_of id rel with
      | None -> true
      | Some ts when IntSet.is_empty ts -> false
      | Some ts ->
        let lf = key_family lit in
        let never =
          IntSet.for_all
            (fun t ->
              match Option.map st_family (value_type g t) with
              | Some (F_number | F_text as f) -> f <> lf && lf <> F_unknown
              | Some F_unknown | None -> false)
            ts
        in
        if never then
          warn
            "comparison '%s %s %S' can never hold: the operand's value space and \
             the literal are in different order families (number vs. text)"
            (Path_ast.to_string rel)
            (Path_ast.cmp_to_string op) lit;
        not never)
  and targets_of id rel =
    (* None = the sub-path left the analysable fragment *)
    match eval_path (IntSet.singleton id) rel with
    | s -> Some s
    | exception Unsupported -> None
  in
  match eval_path IntSet.empty p with
  | exception Unsupported -> { verdict = Maybe; warnings = List.rev !warnings }
  | _ when not p.Path_ast.absolute ->
    (* a relative top-level path depends on an unknown context node *)
    { verdict = Maybe; warnings = List.rev !warnings }
  | result ->
    let verdict =
      if IntSet.is_empty result then
        Empty "no schema-valid document has nodes on this path"
      else Maybe
    in
    { verdict; warnings = List.rev !warnings }

let analyze_schema s p =
  match Schema_check.check s with
  | Error _ -> { verdict = Maybe; warnings = [] }
  | Ok () -> analyze (G.build s) p

let pruner s =
  let graph =
    lazy (match Schema_check.check s with Error _ -> None | Ok () -> Some (G.build s))
  in
  fun p ->
    match Lazy.force graph with
    | None -> None
    | Some g -> (
      match (analyze g p).verdict with
      | Empty reason -> Some reason
      | Maybe -> None)

(* ------------------------------------------------------------------ *)
(* Always-true predicates and constant folding                         *)

(* Is a predicate provably true at every instance node mapping to any
   id in [set]?  (Vacuously true on the empty set — the step selects
   nothing then, so dropping its predicates changes nothing.) *)
let rec always_holds g set (pred : Path_ast.expr) =
  match pred with
  | Path_ast.Position_cmp (Path_ast.Ge, k) -> k <= 1
  | Path_ast.Position_cmp (Path_ast.Gt, k) -> k <= 0
  | Path_ast.Position _ | Path_ast.Position_cmp _ | Path_ast.Last _ -> false
  | Path_ast.Exists rel ->
    IntSet.for_all (fun id -> not (IntSet.is_empty (guaranteed_targets g id rel))) set
  | Path_ast.Equals _ ->
    (* equality is on raw string values: even a singleton value space
       admits many lexical forms, so nothing forces it *)
    false
  | Path_ast.Cmp (op, rel, lit) -> (
    match Decimal.of_string (String.trim lit) with
    | Error _ -> false
    | Ok l ->
      IntSet.for_all
        (fun id ->
          IntSet.exists
            (fun t ->
              match value_type g t with
              | Some st -> type_forces_cmp st op l
              | None -> false)
            (guaranteed_targets g id rel))
        set)

(* Schema nodes a chain of mandatory steps of [rel] ends at: every
   valid instance of [id] has at least one instance node on each
   returned id.  Child steps qualify when the occurrence interval's
   lower bound is positive; attribute steps never do (the graph does
   not record requiredness), nor does [//] (the mandatory child could
   sit at any depth). *)
and guaranteed_targets g id (rel : Path_ast.path) =
  if rel.Path_ast.absolute then IntSet.empty
  else
    List.fold_left
      (fun set ((step : Path_ast.step), desc_flag) ->
        if desc_flag then IntSet.empty
        else
          match step.Path_ast.axis with
          | Xsm_xdm.Axis.Self ->
            IntSet.filter
              (fun c ->
                test_matches g step.Path_ast.test c
                && List.for_all (keeps_some g c) step.Path_ast.predicates)
              set
          | Xsm_xdm.Axis.Child ->
            IntSet.fold
              (fun i acc ->
                List.fold_left
                  (fun acc (c, (iv : Cardinality.interval)) ->
                    if
                      iv.Cardinality.lo >= 1
                      && test_matches g step.Path_ast.test c
                      && List.for_all (keeps_some g c) step.Path_ast.predicates
                    then IntSet.add c acc
                    else acc)
                  acc
                  (G.node g i).G.elem_children)
              set IntSet.empty
          | _ -> IntSet.empty)
      (IntSet.singleton id) rel.Path_ast.steps

(* Does the predicate keep at least one node of any non-empty
   candidate list?  Positional picks of a guaranteed-present first
   node qualify alongside always-true predicates. *)
and keeps_some g c (pred : Path_ast.expr) =
  match pred with
  | Path_ast.Position 1 | Path_ast.Last 0 -> true
  | Path_ast.Position_cmp (Path_ast.Le, k) -> k >= 1
  | Path_ast.Position_cmp (Path_ast.Lt, k) -> k >= 2
  | _ -> always_holds g (IntSet.singleton c) pred

let fold g (p : Path_ast.path) =
  if not p.Path_ast.absolute then p
  else
    match
      let _, rev_steps =
        List.fold_left
          (fun (set, acc) ((step : Path_ast.step), desc_flag) ->
            let bases = if desc_flag then descendants_or_self g set else set in
            let on_axis = axis_nodes g step.Path_ast.axis bases in
            let matching = IntSet.filter (test_matches g step.Path_ast.test) on_axis in
            let keep =
              List.filter
                (fun pr -> not (always_holds g matching pr))
                step.Path_ast.predicates
            in
            (* [matching] over-approximates the nodes reaching the next
               step (predicates only shrink it), which keeps the
               for-all checks there sound *)
            (matching, ({ step with Path_ast.predicates = keep }, desc_flag) :: acc))
          (IntSet.singleton (G.root g), [])
          p.Path_ast.steps
      in
      { p with Path_ast.steps = List.rev rev_steps }
    with
    | folded -> folded
    | exception Unsupported -> p

let rewriter s =
  let graph =
    lazy (match Schema_check.check s with Error _ -> None | Ok () -> Some (G.build s))
  in
  fun p -> match Lazy.force graph with None -> p | Some g -> fold g p
