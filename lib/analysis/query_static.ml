module Ast = Xsm_schema.Ast
module Schema_check = Xsm_schema.Schema_check
module Path_ast = Xsm_xpath.Path_ast
module Name = Xsm_xml.Name
module Simple_type = Xsm_datatypes.Simple_type
module Builtin = Xsm_datatypes.Builtin
module VI = Xsm_index.Value_index
module G = Schema_graph

type verdict =
  | Empty of string
  | Maybe

type result = { verdict : verdict; warnings : string list }

exception Unsupported

module IntSet = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Value-space families                                                *)

(* Which Value_index.Key family can a value of this simple type probe
   as?  Sound for raw lexical forms as well as canonical ones: a type
   is classified Number/Text only when every string in its lexical
   space (and every canonical form) lands in that family.  Decimal
   lexical forms are exactly what [Decimal.of_string] accepts, hence
   Number; the date/time/duration lexical spaces always contain a
   non-leading '-', ':' or 'P', hence Text.  Booleans ("1"), gYear
   ("1980"), floats ("12" is a float lexical form), the binary types
   and URIs can spell plain digit strings, so they stay Unknown. *)
type family = F_number | F_text | F_unknown

let family_join a b = if a = b then a else F_unknown

let primitive_family : Builtin.primitive -> family = function
  | Builtin.P_decimal -> F_number
  | Builtin.P_date_time | Builtin.P_time | Builtin.P_date | Builtin.P_duration
  | Builtin.P_g_year_month | Builtin.P_g_month_day | Builtin.P_g_day
  | Builtin.P_g_month ->
    F_text
  | Builtin.P_string | Builtin.P_boolean | Builtin.P_float | Builtin.P_double
  | Builtin.P_g_year | Builtin.P_hex_binary | Builtin.P_base64_binary
  | Builtin.P_any_uri | Builtin.P_qname | Builtin.P_notation ->
    F_unknown

let rec st_family (st : Simple_type.t) =
  match st with
  | Simple_type.Builtin b -> (
    match Builtin.primitive_base b with
    | Some p -> primitive_family p
    | None -> F_unknown)
  | Simple_type.Restriction { base; _ } -> st_family base
  | Simple_type.List _ ->
    (* the raw string value of a list is space-joined items — its key
       family need not match the items' *)
    F_unknown
  | Simple_type.Union { members; _ } -> (
    match List.map st_family members with
    | [] -> F_unknown
    | f :: fs -> List.fold_left family_join f fs)

let key_family lit =
  match VI.Key.of_string lit with VI.Key.Number _ -> F_number | VI.Key.Text _ -> F_text

(* The simple type constraining a node's raw string value, when the
   analysis knows one: attributes and simple-typed elements.  Text
   nodes are opaque — a simple value can be split across several text
   nodes, and fragments of a valid lexical form prove nothing. *)
let value_type g id =
  let n = G.node g id in
  match n.G.kind with
  | G.Attr _ -> n.G.simple
  | G.Elem _ -> n.G.simple
  | G.Doc | G.Text -> None

(* ------------------------------------------------------------------ *)
(* Symbolic sets of graph nodes                                        *)

let children_of g id =
  let n = G.node g id in
  List.map fst n.G.elem_children
  @ (match n.G.text_child with Some t -> [ t ] | None -> [])

let descendants_or_self g set =
  let rec grow frontier acc =
    match frontier with
    | [] -> acc
    | id :: rest ->
      let fresh = List.filter (fun c -> not (IntSet.mem c acc)) (children_of g id) in
      grow (fresh @ rest) (List.fold_left (fun a c -> IntSet.add c a) acc fresh)
  in
  grow (IntSet.elements set) set

let ancestors g set ~or_self =
  let rec grow frontier acc =
    match frontier with
    | [] -> acc
    | id :: rest ->
      let parents = (G.node g id).G.parents in
      let fresh = List.filter (fun p -> not (IntSet.mem p acc)) parents in
      grow (fresh @ rest) (List.fold_left (fun a p -> IntSet.add p a) acc fresh)
  in
  let anc = grow (IntSet.elements set) IntSet.empty in
  if or_self then IntSet.union anc set else anc

let parents_of g set =
  IntSet.fold
    (fun id acc ->
      List.fold_left (fun a p -> IntSet.add p a) acc (G.node g id).G.parents)
    set IntSet.empty

(* over-approximate siblings: every child of every parent *)
let siblings_of g set =
  IntSet.fold
    (fun id acc ->
      List.fold_left
        (fun a p ->
          List.fold_left (fun a c -> IntSet.add c a) a (children_of g p))
        acc (G.node g id).G.parents)
    set IntSet.empty

let child_set g set =
  IntSet.fold
    (fun id acc -> List.fold_left (fun a c -> IntSet.add c a) acc (children_of g id))
    set IntSet.empty

let axis_nodes g (axis : Xsm_xdm.Axis.t) set =
  match axis with
  | Xsm_xdm.Axis.Self -> set
  | Xsm_xdm.Axis.Child -> child_set g set
  | Xsm_xdm.Axis.Attribute ->
    IntSet.fold
      (fun id acc ->
        List.fold_left (fun a c -> IntSet.add c a) acc (G.node g id).G.attr_children)
      set IntSet.empty
  | Xsm_xdm.Axis.Descendant -> descendants_or_self g (child_set g set)
  | Xsm_xdm.Axis.Descendant_or_self -> descendants_or_self g set
  | Xsm_xdm.Axis.Parent -> parents_of g set
  | Xsm_xdm.Axis.Ancestor -> ancestors g set ~or_self:false
  | Xsm_xdm.Axis.Ancestor_or_self -> ancestors g set ~or_self:true
  | Xsm_xdm.Axis.Following_sibling | Xsm_xdm.Axis.Preceding_sibling ->
    siblings_of g set
  | Xsm_xdm.Axis.Following | Xsm_xdm.Axis.Preceding -> raise Unsupported

let test_matches g (test : Path_ast.node_test) id =
  match test, (G.node g id).G.kind with
  | Path_ast.Name_test nm, (G.Elem n | G.Attr n) -> Name.equal nm n
  | Path_ast.Name_test _, (G.Doc | G.Text) -> false
  | Path_ast.Wildcard, (G.Elem _ | G.Attr _) -> true
  | Path_ast.Wildcard, (G.Doc | G.Text) -> false
  | Path_ast.Text_test, G.Text -> true
  | Path_ast.Text_test, (G.Doc | G.Elem _ | G.Attr _) -> false
  | Path_ast.Node_test, _ -> true

(* ------------------------------------------------------------------ *)
(* Path evaluation                                                     *)

let analyze g (p : Path_ast.path) =
  let warnings = ref [] in
  let warn fmt =
    Printf.ksprintf
      (fun m -> if not (List.mem m !warnings) then warnings := m :: !warnings)
      fmt
  in
  let rec eval_path start (p : Path_ast.path) =
    let s0 = if p.Path_ast.absolute then IntSet.singleton (G.root g) else start in
    List.fold_left eval_step s0 p.Path_ast.steps
  and eval_step set ((step : Path_ast.step), desc_flag) =
    let bases = if desc_flag then descendants_or_self g set else set in
    let on_axis = axis_nodes g step.Path_ast.axis bases in
    let matching = IntSet.filter (test_matches g step.Path_ast.test) on_axis in
    IntSet.filter (fun id -> keeps_predicates id step.Path_ast.predicates) matching
  and keeps_predicates id preds =
    List.for_all (fun p -> may_hold id p) preds
  and may_hold id (pred : Path_ast.expr) =
    match pred with
    | Path_ast.Position k -> k >= 1
    | Path_ast.Last -> true
    | Path_ast.Exists rel -> (
      match targets_of id rel with
      | None -> true
      | Some ts -> not (IntSet.is_empty ts))
    | Path_ast.Equals (rel, lit) -> (
      match targets_of id rel with
      | None -> true
      | Some ts when IntSet.is_empty ts -> false
      | Some ts ->
        let never =
          IntSet.for_all
            (fun t ->
              match value_type g t with
              | Some st -> not (Simple_type.is_valid st lit)
              | None -> false)
            ts
        in
        if never then
          warn
            "comparison with %S can never hold: the literal is outside the lexical \
             space of every type the operand can have"
            lit;
        not never)
    | Path_ast.Cmp (op, rel, lit) -> (
      match targets_of id rel with
      | None -> true
      | Some ts when IntSet.is_empty ts -> false
      | Some ts ->
        let lf = key_family lit in
        let never =
          IntSet.for_all
            (fun t ->
              match Option.map st_family (value_type g t) with
              | Some (F_number | F_text as f) -> f <> lf && lf <> F_unknown
              | Some F_unknown | None -> false)
            ts
        in
        if never then
          warn
            "comparison '%s %s %S' can never hold: the operand's value space and \
             the literal are in different order families (number vs. text)"
            (Path_ast.to_string rel)
            (Path_ast.cmp_to_string op) lit;
        not never)
  and targets_of id rel =
    (* None = the sub-path left the analysable fragment *)
    match eval_path (IntSet.singleton id) rel with
    | s -> Some s
    | exception Unsupported -> None
  in
  match eval_path IntSet.empty p with
  | exception Unsupported -> { verdict = Maybe; warnings = List.rev !warnings }
  | _ when not p.Path_ast.absolute ->
    (* a relative top-level path depends on an unknown context node *)
    { verdict = Maybe; warnings = List.rev !warnings }
  | result ->
    let verdict =
      if IntSet.is_empty result then
        Empty "no schema-valid document has nodes on this path"
      else Maybe
    in
    { verdict; warnings = List.rev !warnings }

let analyze_schema s p =
  match Schema_check.check s with
  | Error _ -> { verdict = Maybe; warnings = [] }
  | Ok () -> analyze (G.build s) p

let pruner s =
  let graph =
    lazy (match Schema_check.check s with Error _ -> None | Ok () -> Some (G.build s))
  in
  fun p ->
    match Lazy.force graph with
    | None -> None
    | Some g -> (
      match (analyze g p).verdict with
      | Empty reason -> Some reason
      | Maybe -> None)
