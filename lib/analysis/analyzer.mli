(** The static-analysis driver behind [xsm analyze].

    Runs, in order: the structural well-formedness check
    ([Schema_check]), Unique-Particle-Attribution analysis with
    shortest witness words ({!Xsm_schema.Content_automaton.upa_conflict}),
    reachability of named type definitions, satisfiability of content
    models ({!Hygiene}), per-path cardinality intervals
    ({!Cardinality} over the {!Schema_graph}), and — when a query is
    supplied — static query analysis ({!Query_static}).

    Deterministic content models are compiled once here and handed
    back in {!report.tables}; feeding them to
    [Validator.validate ~automata] — or to the streaming
    [Xsm_stream.Stream_validator.run ~automata], which drives the same
    tables one event at a time — validates instances of an analyzed
    schema without recompiling anything. *)

module Ast = Xsm_schema.Ast
module Schema_check = Xsm_schema.Schema_check
module Content_automaton = Xsm_schema.Content_automaton

type severity = Error | Warning | Info

val severity_to_string : severity -> string

type finding = {
  severity : severity;
  pass : string;  (** [schema-check], [upa], [reachability], [satisfiability], [query] *)
  loc : Schema_check.location;
  message : string;
}

val pp_finding : Format.formatter -> finding -> unit
(** [severity [pass] location: message] — the uniform diagnostic line
    shared by [xsm analyze] and [xsm validate]. *)

type report = {
  findings : finding list;
  tables : (Ast.group_def * Content_automaton.table) list;
      (** determinized content models, for [Validator.validate ?automata] *)
  cardinalities : (string * Cardinality.interval * bool) list;
      (** element path, occurrences per parent instance, recursion cut *)
  graph : Schema_graph.t option;  (** absent when [Schema_check] failed *)
}

val analyze : ?query:Xsm_xpath.Path_ast.path -> Ast.schema -> report

val significant : report -> finding list
(** Errors and warnings — the findings that make [xsm analyze] exit
    non-zero. *)

val of_schema_errors : Schema_check.error list -> finding list
(** Adapt raw [Schema_check] diagnostics to findings, for printing
    them in the uniform format. *)
