module Ast = Xsm_schema.Ast
module Path_ast = Xsm_xpath.Path_ast
module Plan = Xsm_xpath.Plan
module G = Schema_graph
module Name = Xsm_xml.Name
module J = Xsm_obs.Json
module Simple_type = Xsm_datatypes.Simple_type

type summaries = path:string -> rel:string -> Xsm_index.Value_index.summary option

let iv_est (iv : Cardinality.interval) : Plan.est =
  let expect =
    match iv.Cardinality.hi with
    | Some h -> float_of_int (iv.Cardinality.lo + h) /. 2.
    | None -> float_of_int iv.Cardinality.lo +. 1.
  in
  { Plan.lo = iv.Cardinality.lo; hi = iv.Cardinality.hi; expect }

let zero_or_one expect = { Plan.lo = 0; hi = Some 1; expect }

let rec view ?summaries g ~path id ~rows ~per_parent =
  let n = G.node g id in
  let kind, name =
    match n.G.kind with
    | G.Doc -> (`Document, None)
    | G.Elem nm -> (`Element, Some nm)
    | G.Attr nm -> (`Attribute, Some nm)
    | G.Text -> (`Text, None)
  in
  let simple = match n.G.kind with G.Doc | G.Text -> None | _ -> n.G.simple in
  let child cid ~step pp =
    view ?summaries g ~path:(path ^ "/" ^ step) cid ~rows:(Plan.mul rows pp)
      ~per_parent:pp
  in
  let children =
    lazy
      (List.map
         (fun (c, iv) ->
           let step =
             match (G.node g c).G.kind with
             | G.Elem nm -> Name.to_string nm
             | _ -> "*"
           in
           child c ~step (iv_est iv))
         n.G.elem_children
      @
      match n.G.text_child with
      | Some t ->
        (* always [0,1]: element-only content tolerates a whitespace
           slot ([synthetic]) and even simple content can be empty *)
        let expect = if (G.node g t).G.synthetic then 0.1 else 0.9 in
        [ child t ~step:"text()" (zero_or_one expect) ]
      | None -> [])
  in
  let attrs =
    lazy
      (List.map
         (fun a ->
           let an = G.node g a in
           let step =
             match an.G.kind with
             | G.Attr nm -> "@" ^ Name.to_string nm
             | _ -> "@*"
           in
           (* the graph does not record requiredness, so the interval
              stays [0,1]; the expectation leans present for declared
              attributes and absent for the implicit xsi:nil *)
           let expect = if an.G.synthetic then 0.01 else 0.9 in
           child a ~step (zero_or_one expect))
         n.G.attr_children)
  in
  let summary rel =
    match summaries with Some f -> f ~path ~rel | None -> None
  in
  let literal_ok lit = Option.map (fun st -> Simple_type.is_valid st lit) simple in
  Plan.leaf_view ~cycle:id ~kind ?name ~rows ~per_parent ~children ~attrs ~summary
    ~literal_ok ()

let provider ?summaries g =
  view ?summaries g ~path:"" (G.root g) ~rows:(Plan.exactly 1)
    ~per_parent:(Plan.exactly 1)

let estimate ?summaries g p = Plan.estimate ~root:(provider ?summaries g) p
let cost ?summaries g p = Plan.Cost.eval_cost ~root:(provider ?summaries g) p

let report ?summaries g p =
  let e = estimate ?summaries g p in
  J.Obj
    [
      ("query", J.Str (Path_ast.to_string p));
      ("supported", J.Bool e.Plan.e_supported);
      ("rows", Plan.est_to_json e.Plan.e_rows);
      ("eval_cost", J.Num (cost ?summaries g p));
      ("estimate", Plan.estimate_to_json e);
    ]
