(** The schema-derived DataGuide.

    §9.1 extracts a descriptive schema — a DataGuide — from an
    {e instance}; this module derives the analogous graph from the
    {e prescriptive} schema itself: one node per document root, per
    element-declaration context, per allowed attribute, plus text
    slots.  Every node of every schema-valid document maps to a graph
    node along its root path, so the graph {b over-approximates} valid
    instances and any path that selects nothing in the graph selects
    nothing in any valid document — the soundness fact
    {!Query_static} builds on.

    Over-approximation is taken seriously where the validator is
    lenient: every element node gets a text child (element-only
    content tolerates whitespace-only text nodes, which survive in the
    store), and every element gets a synthetic [xsi:nil] attribute
    child ([xsi:nil="false"] is legal on any element).  Recursive
    named types are tied back into the graph (one node per
    element-name × type-name pair), so the graph is finite even when
    the valid-document set is not. *)

module Ast = Xsm_schema.Ast

type kind =
  | Doc
  | Elem of Ast.Name.t
  | Attr of Ast.Name.t
  | Text

type node = {
  id : int;
  kind : kind;
  mutable simple : Xsm_datatypes.Simple_type.t option;
      (** for [Attr]: the attribute's type; for [Elem]: the type whose
          lexical forms the element's string value ranges over (simple
          types and simple content only) *)
  mutable synthetic : bool;
      (** the whitespace-only text slot of element-only content, and
          the implicit [xsi:nil] attribute *)
  mutable elem_children : (int * Cardinality.interval) list;
  mutable attr_children : int list;
  mutable text_child : int option;
  mutable parents : int list;
}

type t

val build : Ast.schema -> t
(** The schema should pass [Schema_check.check]; unresolvable type
    references yield childless nodes. *)

val root : t -> int
(** The document node; always id [0]. *)

val node : t -> int -> node
val size : t -> int

val element_paths : t -> (string * Cardinality.interval * bool) list
(** Every root-to-element path, with the occurrence interval of the
    last step {e per instance of its parent}, depth-first.  The flag
    marks paths cut at a recursive type (the subtree repeats). *)
