type error = { line : int; column : int; offset : int; message : string }

let pp_error ppf e =
  Format.fprintf ppf "line %d, column %d: %s" e.line e.column e.message

let error_to_string e = Format.asprintf "%a" pp_error e

exception Syntax of error

exception Parse_error of int * string
(* position, message; converted to {!error} at the API boundary *)

type state = { input : string; mutable pos : int }

let fail st msg = raise (Parse_error (st.pos, msg))
let eof st = st.pos >= String.length st.input
let peek st = if eof st then '\255' else st.input.[st.pos]

let advance st = st.pos <- st.pos + 1

let expect st c =
  if peek st = c then advance st
  else fail st (Printf.sprintf "expected %C, found %C" c (peek st))

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.input && String.sub st.input st.pos n = s

let expect_string st s =
  if looking_at st s then st.pos <- st.pos + String.length s
  else fail st (Printf.sprintf "expected %S" s)

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_space st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

(* Scan until [stop] returns true; return the scanned substring. *)
let take_until st stop =
  let start = st.pos in
  while (not (eof st)) && not (stop (peek st)) do
    advance st
  done;
  String.sub st.input start (st.pos - start)

let parse_name st =
  let s = take_until st (fun c -> is_space c || c = '>' || c = '/' || c = '=' || c = '?' || c = '\255') in
  match Name.of_string s with
  | Ok n -> n
  | Error e -> fail st e

(* Entity and character references — the decoder proper is shared
   with the streaming Sax lexer, which sees the same reference bodies
   but manages its own input buffer. *)
let decode_entity body =
  match body with
  | "lt" -> Ok "<"
  | "gt" -> Ok ">"
  | "amp" -> Ok "&"
  | "apos" -> Ok "'"
  | "quot" -> Ok "\""
  | _ ->
    if String.length body > 1 && body.[0] = '#' then begin
      match
        if String.length body > 2 && (body.[1] = 'x' || body.[1] = 'X') then
          int_of_string_opt ("0x" ^ String.sub body 2 (String.length body - 2))
        else int_of_string_opt (String.sub body 1 (String.length body - 1))
      with
      | None -> Error (Printf.sprintf "bad character reference &%s;" body)
      | Some code ->
        if code < 0 || code > 0x10FFFF || not (Uchar.is_valid code) then
          Error "character reference out of range"
        else begin
          let b = Buffer.create 4 in
          Buffer.add_utf_8_uchar b (Uchar.of_int code);
          Ok (Buffer.contents b)
        end
    end
    else Error (Printf.sprintf "unknown entity &%s;" body)

let parse_reference st =
  expect st '&';
  let body = take_until st (fun c -> c = ';' || c = '<' || c = '&') in
  if peek st <> ';' then fail st "unterminated entity reference";
  advance st;
  match decode_entity body with Ok s -> s | Error e -> fail st e

let parse_attribute_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected quoted attribute value";
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | c when c = quote -> advance st
    | '\255' -> fail st "unterminated attribute value"
    | '<' -> fail st "'<' not allowed in attribute value"
    | '&' -> Buffer.add_string buf (parse_reference st); go ()
    | c -> Buffer.add_char buf c; advance st; go ()
  in
  go ();
  Buffer.contents buf

let parse_attributes st =
  let rec go acc =
    skip_space st;
    match peek st with
    | '>' | '/' | '?' | '\255' -> List.rev acc
    | _ ->
      let name = parse_name st in
      skip_space st;
      expect st '=';
      skip_space st;
      let value = parse_attribute_value st in
      if List.exists (fun (a : Tree.attribute) -> Name.equal a.name name) acc then
        fail st (Printf.sprintf "duplicate attribute %s" (Name.to_string name));
      go ({ Tree.name; value } :: acc)
  in
  go []

let parse_comment st =
  expect_string st "<!--";
  let buf = Buffer.create 16 in
  let rec go () =
    if looking_at st "-->" then st.pos <- st.pos + 3
    else if eof st then fail st "unterminated comment"
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go ()
    end
  in
  go ();
  Buffer.contents buf

let parse_cdata st =
  expect_string st "<![CDATA[";
  let buf = Buffer.create 16 in
  let rec go () =
    if looking_at st "]]>" then st.pos <- st.pos + 3
    else if eof st then fail st "unterminated CDATA section"
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go ()
    end
  in
  go ();
  Buffer.contents buf

let parse_pi st =
  expect_string st "<?";
  let target = take_until st (fun c -> is_space c || c = '?') in
  if target = "" then fail st "empty processing-instruction target";
  skip_space st;
  let buf = Buffer.create 16 in
  let rec go () =
    if looking_at st "?>" then st.pos <- st.pos + 2
    else if eof st then fail st "unterminated processing instruction"
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go ()
    end
  in
  go ();
  (target, Buffer.contents buf)

let rec parse_element_body st : Tree.element =
  expect st '<';
  let name = parse_name st in
  let attributes = parse_attributes st in
  match peek st with
  | '/' ->
    advance st;
    expect st '>';
    { Tree.name; attributes; children = [] }
  | '>' ->
    advance st;
    let children = parse_content st name in
    { Tree.name; attributes; children }
  | _ -> fail st "malformed start tag"

and parse_content st open_name =
  let buf = Buffer.create 32 in
  let flush acc =
    if Buffer.length buf = 0 then acc
    else begin
      let s = Buffer.contents buf in
      Buffer.clear buf;
      Tree.Text s :: acc
    end
  in
  let rec go acc =
    if eof st then fail st (Printf.sprintf "unterminated element %s" (Name.to_string open_name))
    else if looking_at st "</" then begin
      let acc = flush acc in
      st.pos <- st.pos + 2;
      let close = parse_name st in
      skip_space st;
      expect st '>';
      if not (Name.equal close open_name) then
        fail st
          (Printf.sprintf "mismatched end tag: expected </%s>, found </%s>"
             (Name.to_string open_name) (Name.to_string close));
      List.rev acc
    end
    else if looking_at st "<!--" then begin
      let acc = flush acc in
      let c = parse_comment st in
      go (Tree.Comment c :: acc)
    end
    else if looking_at st "<![CDATA[" then begin
      let acc = flush acc in
      let c = parse_cdata st in
      go (Tree.Cdata c :: acc)
    end
    else if looking_at st "<?" then begin
      let acc = flush acc in
      let target, data = parse_pi st in
      go (Tree.Pi { target; data } :: acc)
    end
    else if peek st = '<' then begin
      let acc = flush acc in
      let e = parse_element_body st in
      go (Tree.Element e :: acc)
    end
    else if peek st = '&' then begin
      Buffer.add_string buf (parse_reference st);
      go acc
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go acc
    end
  in
  go []

let parse_xml_decl st =
  if looking_at st "<?xml" && is_space st.input.[st.pos + 5] then begin
    st.pos <- st.pos + 5;
    let attrs = parse_attributes st in
    expect_string st "?>";
    let find k =
      List.find_map
        (fun (a : Tree.attribute) ->
          if String.equal a.name.Name.local k && a.name.Name.prefix = None then Some a.value else None)
        attrs
    in
    let version = Option.value ~default:"1.0" (find "version") in
    let encoding = find "encoding" in
    let standalone =
      match find "standalone" with
      | Some "yes" -> Some true
      | Some "no" -> Some false
      | Some other -> fail st (Printf.sprintf "bad standalone value %S" other)
      | None -> None
    in
    (version, encoding, standalone)
  end
  else ("1.0", None, None)

(* Skip a DOCTYPE declaration, including a bracketed internal subset. *)
let skip_doctype st =
  if looking_at st "<!DOCTYPE" then begin
    st.pos <- st.pos + 9;
    let rec go depth =
      if eof st then fail st "unterminated DOCTYPE"
      else
        match peek st with
        | '[' -> advance st; go (depth + 1)
        | ']' -> advance st; go (depth - 1)
        | '>' when depth = 0 -> advance st
        | _ -> advance st; go depth
    in
    go 0
  end

let skip_misc st =
  let rec go () =
    skip_space st;
    if looking_at st "<!--" then begin
      ignore (parse_comment st);
      go ()
    end
    else if looking_at st "<?" && not (looking_at st "<?xml") then begin
      ignore (parse_pi st);
      go ()
    end
  in
  go ()

let position_of_offset input pos =
  let line = ref 1 and col = ref 1 in
  let limit = min pos (String.length input - 1) in
  for i = 0 to limit - 1 do
    if input.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

(* XML 1.0 §2.11: translate "\r\n" and lone "\r" to a single "\n"
   before any other processing, so line breaks reach character data,
   attribute values and the store in one canonical form.  Ordered
   before reference expansion — a literal "&#13;" still yields a real
   carriage return.  Error positions refer to the normalized text,
   where every line break is exactly one character, so line numbers
   agree with the source whatever its line-ending convention. *)
let normalize_eol input =
  if not (String.contains input '\r') then input
  else begin
    let n = String.length input in
    let buf = Buffer.create n in
    let i = ref 0 in
    while !i < n do
      (match input.[!i] with
      | '\r' ->
        Buffer.add_char buf '\n';
        if !i + 1 < n && input.[!i + 1] = '\n' then incr i
      | c -> Buffer.add_char buf c);
      incr i
    done;
    Buffer.contents buf
  end

let run input f =
  let input = normalize_eol input in
  let st = { input; pos = 0 } in
  match f st with
  | v -> Ok v
  | exception Parse_error (pos, message) ->
    let line, column = position_of_offset input pos in
    Error { line; column; offset = pos; message }
  | exception Syntax e -> Error e

let parse_document ?base_uri input =
  run input (fun st ->
      let version, encoding, standalone = parse_xml_decl st in
      skip_misc st;
      skip_doctype st;
      skip_misc st;
      if peek st <> '<' then fail st "expected root element";
      let root = parse_element_body st in
      skip_misc st;
      if not (eof st) then fail st "trailing content after root element";
      { Tree.version; encoding; standalone; base_uri; root })

let parse_element input =
  run input (fun st ->
      skip_space st;
      let e = parse_element_body st in
      skip_space st;
      if not (eof st) then fail st "trailing content after element";
      e)
