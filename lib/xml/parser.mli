(** A self-contained XML 1.0 parser.

    Supports elements, attributes (single- or double-quoted), character
    data, CDATA sections, comments, processing instructions, the XML
    declaration, a DOCTYPE declaration (skipped), the five predefined
    entities and decimal/hexadecimal character references.

    The parser enforces well-formedness: matching end tags, a single
    root element, unique attribute names per element, and no stray
    markup.  DTD-defined entities are not supported. *)

type error = {
  line : int;  (** 1-based line of the offending position *)
  column : int;  (** 1-based column (in bytes) *)
  offset : int;  (** 0-based byte offset into the input *)
  message : string;
}

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

exception Syntax of error
(** The shared syntax-error exception: raised by the streaming
    {!Xsm_stream.Sax} lexer (which tracks line/column incrementally)
    and understood by {!parse_document}/{!parse_element}, which
    convert it to a [result] at the API boundary. *)

val normalize_eol : string -> string
(** XML 1.0 §2.11 end-of-line normalization: every ["\r\n"] pair and
    every lone ["\r"] becomes a single ["\n"].  Applied to the whole
    input before parsing (so a character reference ["&#13;"] still
    yields a literal carriage return), and exposed for the streaming
    lexer's tests.  Returns the input unchanged (same physical string)
    when it contains no carriage return. *)

val decode_entity : string -> (string, string) result
(** Decode the body of an entity or character reference (the text
    between ["&"] and [";"]): the five predefined entities and
    decimal/hexadecimal character references, UTF-8 encoded.  Shared
    between the tree parser and the streaming lexer. *)

val parse_document : ?base_uri:string -> string -> (Tree.t, error) result
(** Parse a complete document, prolog included. *)

val parse_element : string -> (Tree.element, error) result
(** Parse a string that consists of exactly one element (no prolog). *)
