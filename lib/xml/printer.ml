let add_escaped buf ~attribute s =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when attribute -> Buffer.add_string buf "&quot;"
      | '\n' when attribute -> Buffer.add_string buf "&#10;"
      | '\t' when attribute -> Buffer.add_string buf "&#9;"
      (* a literal CR (it survived parsing via "&#13;") must leave as a
         reference too, or §2.11 normalization would eat it on reparse *)
      | '\r' -> Buffer.add_string buf "&#13;"
      | c -> Buffer.add_char buf c)
    s

let escape_text s =
  let buf = Buffer.create (String.length s + 8) in
  add_escaped buf ~attribute:false s;
  Buffer.contents buf

let escape_attribute s =
  let buf = Buffer.create (String.length s + 8) in
  add_escaped buf ~attribute:true s;
  Buffer.contents buf

let add_attributes buf attrs =
  List.iter
    (fun (a : Tree.attribute) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (Name.to_string a.name);
      Buffer.add_string buf "=\"";
      add_escaped buf ~attribute:true a.value;
      Buffer.add_char buf '"')
    attrs

let rec add_element buf (e : Tree.element) =
  Buffer.add_char buf '<';
  Buffer.add_string buf (Name.to_string e.name);
  add_attributes buf e.attributes;
  match e.children with
  | [] -> Buffer.add_string buf "/>"
  | children ->
    Buffer.add_char buf '>';
    List.iter (add_node buf) children;
    Buffer.add_string buf "</";
    Buffer.add_string buf (Name.to_string e.name);
    Buffer.add_char buf '>'

and add_node buf = function
  | Tree.Element e -> add_element buf e
  | Tree.Text s -> add_escaped buf ~attribute:false s
  | Tree.Cdata s ->
    Buffer.add_string buf "<![CDATA[";
    Buffer.add_string buf s;
    Buffer.add_string buf "]]>"
  | Tree.Comment s ->
    Buffer.add_string buf "<!--";
    Buffer.add_string buf s;
    Buffer.add_string buf "-->"
  | Tree.Pi { target; data } ->
    Buffer.add_string buf "<?";
    Buffer.add_string buf target;
    if data <> "" then begin
      Buffer.add_char buf ' ';
      Buffer.add_string buf data
    end;
    Buffer.add_string buf "?>"

let element_to_string e =
  let buf = Buffer.create 256 in
  add_element buf e;
  Buffer.contents buf

let add_decl buf (d : Tree.t) =
  Buffer.add_string buf "<?xml version=\"";
  Buffer.add_string buf d.version;
  Buffer.add_char buf '"';
  Option.iter
    (fun e ->
      Buffer.add_string buf " encoding=\"";
      Buffer.add_string buf e;
      Buffer.add_char buf '"')
    d.encoding;
  Option.iter
    (fun s ->
      Buffer.add_string buf (if s then " standalone=\"yes\"" else " standalone=\"no\""))
    d.standalone;
  Buffer.add_string buf "?>\n"

let to_string d =
  let buf = Buffer.create 256 in
  add_decl buf d;
  add_element buf d.Tree.root;
  Buffer.contents buf

(* Pretty printing: an element is "simple" when its children are only
   text (printed inline) and "complex" when element-only (printed with
   one child per line).  True mixed content is printed inline to keep
   the text intact. *)
let has_text_child (e : Tree.element) =
  List.exists (function Tree.Text _ | Tree.Cdata _ -> true | _ -> false) e.children

let rec add_pretty buf ~indent ~level (e : Tree.element) =
  let pad = String.make (indent * level) ' ' in
  Buffer.add_string buf pad;
  if e.children = [] || has_text_child e then begin
    add_element buf e;
    Buffer.add_char buf '\n'
  end
  else begin
    Buffer.add_char buf '<';
    Buffer.add_string buf (Name.to_string e.name);
    add_attributes buf e.attributes;
    Buffer.add_string buf ">\n";
    List.iter
      (function
        | Tree.Element c -> add_pretty buf ~indent ~level:(level + 1) c
        | other ->
          Buffer.add_string buf (String.make (indent * (level + 1)) ' ');
          add_node buf other;
          Buffer.add_char buf '\n')
      e.children;
    Buffer.add_string buf pad;
    Buffer.add_string buf "</";
    Buffer.add_string buf (Name.to_string e.name);
    Buffer.add_string buf ">\n"
  end

let element_to_pretty_string ?(indent = 2) e =
  let buf = Buffer.create 256 in
  add_pretty buf ~indent ~level:0 e;
  Buffer.contents buf

let to_pretty_string ?indent d =
  let buf = Buffer.create 256 in
  add_decl buf d;
  Buffer.add_string buf (element_to_pretty_string ?indent d.Tree.root);
  Buffer.contents buf
