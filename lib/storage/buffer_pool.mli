(** A buffer-pool simulation.

    Sedna is a disk-resident system: §9.2's blocks exist because node
    descriptors live on pages that are faulted into a buffer pool.
    Our storage is in-memory (the substitution recorded in DESIGN.md),
    so the I/O behaviour is *simulated*: a traversal is replayed as
    its sequence of block identifiers against an LRU pool of bounded
    capacity, yielding hit/miss counts.  This quantifies the locality
    argument behind schema-driven evaluation — a block scan touches
    each page once, while tree navigation hops between the pages of
    different schema nodes (ablation A4). *)

type t

val create : capacity:int -> t
(** An empty LRU pool holding at most [capacity] blocks;
    [Invalid_argument] when capacity < 1. *)

val touch : t -> int -> [ `Hit | `Miss ]
(** Access one block: [`Hit] when resident, [`Miss] when it had to be
    faulted in (evicting the least recently used block if full). *)

val reset : t -> unit
(** Evict everything and zero the counters: the pool is as freshly
    created, capacity unchanged.  Lets a benchmark reuse one pool
    across runs without cross-run pollution. *)

val reset_stats : t -> unit
(** Zero the counters but keep the resident blocks — for measuring a
    warm pool: prime it, [reset_stats], then replay the trace that
    should be counted. *)

type stats = {
  accesses : int;
  hits : int;
  misses : int;  (** = faults = simulated I/Os *)
  distinct : int;  (** distinct blocks in the trace *)
}

val stats : t -> stats
(** Per-pool counters.  The record is a view over this pool's private
    cells in the [Xsm_obs] metrics registry ([storage.pool.accesses] /
    [.hits] / [.misses] / [.evictions]); the registry reports the
    totals across every pool in the process. *)

val hit_ratio : stats -> float option
(** [hits / accesses], or [None] for a pool that was never touched —
    an untouched pool has {e no} hit ratio, not a perfect one.
    Consumers surface the [None] case distinctly (the metrics gauge
    reads NaN, the JSON report [null]) instead of reporting 1.0. *)

val run_trace : capacity:int -> int list -> stats
(** Replay a whole trace through a fresh pool. *)

(** {1 Trace extraction} *)

val scan_trace : Block_storage.t -> Descriptive_schema.snode -> int list
(** Page accesses of a schema-driven block scan: the block list of the
    schema node, in order (one access per descriptor, consecutive). *)

val navigation_trace : Block_storage.t -> Block_storage.desc -> int list
(** Page accesses of a navigational depth-first traversal from a
    descriptor: every descriptor visit touches its home block. *)
