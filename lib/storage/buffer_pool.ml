(* LRU as a hashtable over an intrusive doubly-linked recency list:
   head = most recent, tail = next eviction victim.  Every touch is
   O(1) — hit, promotion and eviction alike — so replaying a trace is
   linear in its length, not quadratic. *)
type lru_node = {
  block : int;
  mutable prev : lru_node option;  (* towards the head (more recent) *)
  mutable next : lru_node option;  (* towards the tail (less recent) *)
}

type t = {
  capacity : int;
  resident : (int, lru_node) Hashtbl.t;
  mutable head : lru_node option;
  mutable tail : lru_node option;
  mutable size : int;
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  seen : (int, unit) Hashtbl.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity must be positive";
  {
    capacity;
    resident = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    size = 0;
    accesses = 0;
    hits = 0;
    misses = 0;
    seen = Hashtbl.create 64;
  }

let unlink pool node =
  (match node.prev with Some p -> p.next <- node.next | None -> pool.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> pool.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front pool node =
  node.next <- pool.head;
  (match pool.head with Some h -> h.prev <- Some node | None -> pool.tail <- Some node);
  pool.head <- Some node

let touch pool block =
  pool.accesses <- pool.accesses + 1;
  if not (Hashtbl.mem pool.seen block) then Hashtbl.add pool.seen block ();
  match Hashtbl.find_opt pool.resident block with
  | Some node ->
    pool.hits <- pool.hits + 1;
    (match pool.head with
    | Some h when h == node -> ()
    | _ ->
      unlink pool node;
      push_front pool node);
    `Hit
  | None ->
    pool.misses <- pool.misses + 1;
    if pool.size >= pool.capacity then (
      match pool.tail with
      | Some victim ->
        unlink pool victim;
        Hashtbl.remove pool.resident victim.block;
        pool.size <- pool.size - 1
      | None -> ());
    let node = { block; prev = None; next = None } in
    push_front pool node;
    Hashtbl.add pool.resident block node;
    pool.size <- pool.size + 1;
    `Miss

let reset_stats pool =
  pool.accesses <- 0;
  pool.hits <- 0;
  pool.misses <- 0;
  Hashtbl.reset pool.seen

let reset pool =
  Hashtbl.reset pool.resident;
  pool.head <- None;
  pool.tail <- None;
  pool.size <- 0;
  reset_stats pool

type stats = { accesses : int; hits : int; misses : int; distinct : int }

let stats (pool : t) =
  {
    accesses = pool.accesses;
    hits = pool.hits;
    misses = pool.misses;
    distinct = Hashtbl.length pool.seen;
  }

let hit_ratio s = if s.accesses = 0 then 1.0 else float_of_int s.hits /. float_of_int s.accesses

let run_trace ~capacity trace =
  let pool = create ~capacity in
  List.iter (fun b -> ignore (touch pool b)) trace;
  stats pool

let scan_trace bs snode =
  List.filter_map Block_storage.home_block_id (Block_storage.descendants_by_snode bs snode)

let navigation_trace bs d =
  let rec go acc d =
    let acc =
      match Block_storage.home_block_id d with Some b -> b :: acc | None -> acc
    in
    let acc = List.fold_left go acc (Block_storage.attributes bs d) in
    List.fold_left go acc (Block_storage.children bs d)
  in
  List.rev (go [] d)
