(* LRU as a hashtable over an intrusive doubly-linked recency list:
   head = most recent, tail = next eviction victim.  Every touch is
   O(1) — hit, promotion and eviction alike — so replaying a trace is
   linear in its length, not quadratic. *)
type lru_node = {
  block : int;
  mutable prev : lru_node option;  (* towards the head (more recent) *)
  mutable next : lru_node option;  (* towards the tail (less recent) *)
}

(* The registry totals across every pool in the process; each pool
   holds private cells so its own [stats] stays per-instance. *)
module Counter = Xsm_obs.Metrics.Counter

let m_accesses = Counter.make ~help:"block touches across all pools" "storage.pool.accesses"
let m_hits = Counter.make ~help:"touches finding the block resident" "storage.pool.hits"
let m_misses = Counter.make ~help:"touches faulting the block in" "storage.pool.misses"
let m_evictions = Counter.make ~help:"blocks evicted to make room" "storage.pool.evictions"

type t = {
  capacity : int;
  resident : (int, lru_node) Hashtbl.t;
  mutable head : lru_node option;
  mutable tail : lru_node option;
  mutable size : int;
  accesses : Counter.cell;
  hits : Counter.cell;
  misses : Counter.cell;
  evictions : Counter.cell;
  seen : (int, unit) Hashtbl.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity must be positive";
  {
    capacity;
    resident = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    size = 0;
    accesses = Counter.cell m_accesses;
    hits = Counter.cell m_hits;
    misses = Counter.cell m_misses;
    evictions = Counter.cell m_evictions;
    seen = Hashtbl.create 64;
  }

let unlink pool node =
  (match node.prev with Some p -> p.next <- node.next | None -> pool.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> pool.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front pool node =
  node.next <- pool.head;
  (match pool.head with Some h -> h.prev <- Some node | None -> pool.tail <- Some node);
  pool.head <- Some node

let touch pool block =
  Counter.cell_incr pool.accesses;
  if not (Hashtbl.mem pool.seen block) then Hashtbl.add pool.seen block ();
  match Hashtbl.find_opt pool.resident block with
  | Some node ->
    Counter.cell_incr pool.hits;
    (match pool.head with
    | Some h when h == node -> ()
    | _ ->
      unlink pool node;
      push_front pool node);
    `Hit
  | None ->
    Counter.cell_incr pool.misses;
    if pool.size >= pool.capacity then (
      match pool.tail with
      | Some victim ->
        unlink pool victim;
        Hashtbl.remove pool.resident victim.block;
        pool.size <- pool.size - 1;
        Counter.cell_incr pool.evictions
      | None -> ());
    let node = { block; prev = None; next = None } in
    push_front pool node;
    Hashtbl.add pool.resident block node;
    pool.size <- pool.size + 1;
    `Miss

let reset_stats pool =
  Counter.cell_reset pool.accesses;
  Counter.cell_reset pool.hits;
  Counter.cell_reset pool.misses;
  Counter.cell_reset pool.evictions;
  Hashtbl.reset pool.seen

let reset pool =
  Hashtbl.reset pool.resident;
  pool.head <- None;
  pool.tail <- None;
  pool.size <- 0;
  reset_stats pool

type stats = { accesses : int; hits : int; misses : int; distinct : int }

(* a view over this pool's registry cells *)
let stats (pool : t) =
  {
    accesses = Counter.cell_value pool.accesses;
    hits = Counter.cell_value pool.hits;
    misses = Counter.cell_value pool.misses;
    distinct = Hashtbl.length pool.seen;
  }

(* an untouched pool has no hit ratio, not a perfect one *)
let hit_ratio s =
  if s.accesses = 0 then None else Some (float_of_int s.hits /. float_of_int s.accesses)

let run_trace ~capacity trace =
  let pool = create ~capacity in
  List.iter (fun b -> ignore (touch pool b)) trace;
  stats pool

let scan_trace bs snode =
  List.filter_map Block_storage.home_block_id (Block_storage.descendants_by_snode bs snode)

let navigation_trace bs d =
  let rec go acc d =
    let acc =
      match Block_storage.home_block_id d with Some b -> b :: acc | None -> acc
    in
    let acc = List.fold_left go acc (Block_storage.attributes bs d) in
    List.fold_left go acc (Block_storage.children bs d)
  in
  List.rev (go [] d)
