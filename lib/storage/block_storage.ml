module Store = Xsm_xdm.Store
module Name = Xsm_xml.Name
module Schema = Descriptive_schema
module Label = Xsm_numbering.Sedna_label

type desc = {
  id : int;
  d_snode : Schema.snode;
  mutable parent : desc option;
  mutable left : desc option;
  mutable right : desc option;
  mutable next_in_block : desc option;
  mutable prev_in_block : desc option;
  mutable nid : Label.t;
  mutable first_children : (int * desc) list;  (* child snode id -> first desc *)
  mutable value : string;
  mutable home : block option;
}

and block = {
  block_id : int;
  b_snode : Schema.snode;
  capacity : int;
  mutable count : int;
  mutable first : desc option;
  mutable last : desc option;
  mutable next_block : block option;
  mutable prev_block : block option;
}

type t = {
  dschema : Schema.t;
  block_capacity : int;
  mutable next_desc_id : int;
  mutable next_block_id : int;
  mutable splits : int;
  mutable descriptors : int;
  (* head/tail block per schema node id *)
  heads : (int, block) Hashtbl.t;
  tails : (int, block) Hashtbl.t;
  by_node : (int, desc) Hashtbl.t;  (* store node id -> descriptor *)
  mutable root_desc : desc option;
}

let schema t = t.dschema

let root t =
  match t.root_desc with Some d -> d | None -> invalid_arg "Block_storage.root: empty"

let descriptor_of_node t n = Hashtbl.find_opt t.by_node (Store.node_id n)

(* ------------------------------------------------------------------ *)
(* Block management                                                    *)

let new_block t snode =
  let b =
    {
      block_id = t.next_block_id;
      b_snode = snode;
      capacity = t.block_capacity;
      count = 0;
      first = None;
      last = None;
      next_block = None;
      prev_block = None;
    }
  in
  t.next_block_id <- t.next_block_id + 1;
  b

(* append a block at the tail of its snode's list *)
let append_block t b =
  let sid = Schema.snode_id b.b_snode in
  (match Hashtbl.find_opt t.tails sid with
  | None ->
    Hashtbl.replace t.heads sid b;
    Hashtbl.replace t.tails sid b
  | Some tail ->
    tail.next_block <- Some b;
    b.prev_block <- Some tail;
    Hashtbl.replace t.tails sid b)

(* insert block nb right after block b in the list *)
let link_block_after t b nb =
  nb.prev_block <- Some b;
  nb.next_block <- b.next_block;
  (match b.next_block with
  | Some n -> n.prev_block <- Some nb
  | None -> Hashtbl.replace t.tails (Schema.snode_id b.b_snode) nb);
  b.next_block <- Some nb

(* append descriptor at the tail of block b's chain *)
let append_to_block b d =
  d.home <- Some b;
  d.prev_in_block <- b.last;
  d.next_in_block <- None;
  (match b.last with Some l -> l.next_in_block <- Some d | None -> b.first <- Some d);
  b.last <- Some d;
  b.count <- b.count + 1

(* insert descriptor nd into block b right after descriptor d (None =
   at the head) *)
let insert_in_block b ~after nd =
  nd.home <- Some b;
  (match after with
  | None ->
    nd.prev_in_block <- None;
    nd.next_in_block <- b.first;
    (match b.first with Some f -> f.prev_in_block <- Some nd | None -> b.last <- Some nd);
    b.first <- Some nd
  | Some d ->
    nd.prev_in_block <- Some d;
    nd.next_in_block <- d.next_in_block;
    (match d.next_in_block with
    | Some n -> n.prev_in_block <- Some nd
    | None -> b.last <- Some nd);
    d.next_in_block <- Some nd);
  b.count <- b.count + 1

let remove_from_block d =
  match d.home with
  | None -> ()
  | Some b ->
    (match d.prev_in_block with
    | Some p -> p.next_in_block <- d.next_in_block
    | None -> b.first <- d.next_in_block);
    (match d.next_in_block with
    | Some n -> n.prev_in_block <- d.prev_in_block
    | None -> b.last <- d.prev_in_block);
    b.count <- b.count - 1;
    d.home <- None;
    d.prev_in_block <- None;
    d.next_in_block <- None

(* split a full block: move the upper half of the chain into a fresh
   block linked right after; returns how many descriptors moved *)
let split_block t b =
  let keep = b.count / 2 in
  (* find the descriptor at position keep-1 *)
  let rec nth d i = if i = 0 then d else nth (Option.get d.next_in_block) (i - 1) in
  let boundary = nth (Option.get b.first) (keep - 1) in
  let moved_head = boundary.next_in_block in
  boundary.next_in_block <- None;
  let old_last = b.last in
  b.last <- Some boundary;
  let nb = new_block t b.b_snode in
  link_block_after t b nb;
  nb.first <- moved_head;
  nb.last <- old_last;
  (match moved_head with Some m -> m.prev_in_block <- None | None -> ());
  let moved = ref 0 in
  let rec adopt = function
    | None -> ()
    | Some d ->
      d.home <- Some nb;
      incr moved;
      adopt d.next_in_block
  in
  adopt moved_head;
  nb.count <- !moved;
  b.count <- b.count - !moved;
  t.splits <- t.splits + 1;
  !moved

(* ------------------------------------------------------------------ *)
(* Descriptor construction                                             *)

let new_desc t snode nid =
  let d =
    {
      id = t.next_desc_id;
      d_snode = snode;
      parent = None;
      left = None;
      right = None;
      next_in_block = None;
      prev_in_block = None;
      nid;
      first_children = [];
      value = "";
      home = None;
    }
  in
  t.next_desc_id <- t.next_desc_id + 1;
  t.descriptors <- t.descriptors + 1;
  d

(* during initial (document-ordered) build: place at tail block *)
let place_at_tail t d =
  let sid = Schema.snode_id d.d_snode in
  let target =
    match Hashtbl.find_opt t.tails sid with
    | Some b when b.count < b.capacity -> b
    | Some _ | None ->
      let b = new_block t d.d_snode in
      append_block t b;
      b
  in
  append_to_block target d

let of_store ?(block_capacity = 64) store docnode =
  let t =
    {
      dschema = Schema.create ();
      block_capacity;
      next_desc_id = 0;
      next_block_id = 0;
      splits = 0;
      descriptors = 0;
      heads = Hashtbl.create 64;
      tails = Hashtbl.create 64;
      by_node = Hashtbl.create 256;
      root_desc = None;
    }
  in
  let rec build node sn nid =
    let d = new_desc t sn nid in
    Hashtbl.replace t.by_node (Store.node_id node) d;
    (match Store.kind store node with
    | Store.Kind.Text | Store.Kind.Attribute -> d.value <- Store.string_value store node
    | Store.Kind.Document | Store.Kind.Element -> ());
    place_at_tail t d;
    let ordered = Store.attributes store node @ Store.children store node in
    let child_labels = Label.assign_children nid (List.length ordered) in
    let prev = ref None in
    List.iter2
      (fun c cl ->
        let csn =
          Schema.find_or_add t.dschema sn
            ~name:(Store.node_name store c)
            (Schema.kind_of_store (Store.kind store c))
        in
        let cd = build c csn cl in
        cd.parent <- Some d;
        (match !prev with
        | Some p ->
          p.right <- Some cd;
          cd.left <- Some p
        | None -> ());
        prev := Some cd;
        if not (List.mem_assoc (Schema.snode_id csn) d.first_children) then
          d.first_children <- d.first_children @ [ (Schema.snode_id csn, cd) ])
      ordered child_labels;
    d
  in
  let rootd =
    match Store.kind store docnode with
    | Store.Kind.Document -> build docnode (Schema.root t.dschema) Label.root
    | Store.Kind.Element ->
      let sn =
        Schema.find_or_add t.dschema (Schema.root t.dschema)
          ~name:(Store.node_name store docnode)
          Schema.Element
      in
      build docnode sn Label.root
    | Store.Kind.Attribute | Store.Kind.Text ->
      invalid_arg "Block_storage.of_store: not a tree root"
  in
  t.root_desc <- Some rootd;
  t

(* ------------------------------------------------------------------ *)
(* Streaming (document-order) build                                    *)

let create_empty ?(block_capacity = 64) () =
  let t =
    {
      dschema = Schema.create ();
      block_capacity;
      next_desc_id = 0;
      next_block_id = 0;
      splits = 0;
      descriptors = 0;
      heads = Hashtbl.create 64;
      tails = Hashtbl.create 64;
      by_node = Hashtbl.create 16;
      root_desc = None;
    }
  in
  let d = new_desc t (Schema.root t.dschema) Label.root in
  place_at_tail t d;
  t.root_desc <- Some d;
  t

let snode d = d.d_snode
let node_kind d = Schema.kind_to_string (Schema.kind d.d_snode)
let node_name d = Schema.name d.d_snode
let parent d = d.parent
let nid d = d.nid
let desc_id d = d.id
let left_sibling d = d.left
let right_sibling d = d.right

let home_block_id d = Option.map (fun b -> b.block_id) d.home

let first_child_by_schema d sn = List.assoc_opt (Schema.snode_id sn) d.first_children

let all_children_unordered d =
  (* leftmost first child, then the right-sibling chain *)
  match d.first_children with
  | [] -> []
  | firsts ->
    let leftmost =
      List.fold_left
        (fun best (_, c) ->
          match best with
          | None -> Some c
          | Some b -> if Label.compare c.nid b.nid < 0 then Some c else best)
        None firsts
    in
    let rec walk acc = function
      | None -> List.rev acc
      | Some c -> walk (c :: acc) c.right
    in
    walk [] leftmost

let children _t d =
  List.filter
    (fun c -> match Schema.kind c.d_snode with
      | Schema.Element | Schema.Text -> true
      | Schema.Attribute | Schema.Document -> false)
    (all_children_unordered d)

let attributes _t d =
  List.filter (fun c -> Schema.kind c.d_snode = Schema.Attribute) (all_children_unordered d)

let rec string_value t d =
  match Schema.kind d.d_snode with
  | Schema.Text | Schema.Attribute -> d.value
  | Schema.Document | Schema.Element ->
    String.concat "" (List.map (string_value t) (children t d))

let typed_value t d = [ Xsm_datatypes.Value.Untyped_atomic (string_value t d) ]

let descendants_by_snode t sn =
  match Hashtbl.find_opt t.heads (Schema.snode_id sn) with
  | None -> []
  | Some head ->
    let rec blocks acc = function
      | None -> List.rev acc
      | Some b -> blocks (b :: acc) b.next_block
    in
    let in_block b =
      let rec go acc = function
        | None -> List.rev acc
        | Some d -> go (d :: acc) d.next_in_block
      in
      go [] b.first
    in
    List.concat_map in_block (blocks [] (Some head))

let rec to_element t d =
  match Schema.kind d.d_snode with
  | Schema.Element ->
    let name =
      match Schema.name d.d_snode with
      | Some n -> n
      | None -> invalid_arg "to_element: unnamed element descriptor"
    in
    let attributes =
      List.map
        (fun a ->
          match Schema.name a.d_snode with
          | Some n -> { Xsm_xml.Tree.name = n; value = a.value }
          | None -> invalid_arg "to_element: unnamed attribute descriptor")
        (attributes t d)
    in
    let children =
      List.map
        (fun c ->
          match Schema.kind c.d_snode with
          | Schema.Text -> Xsm_xml.Tree.Text c.value
          | Schema.Element -> Xsm_xml.Tree.Element (to_element t c)
          | Schema.Document | Schema.Attribute ->
            invalid_arg "to_element: impossible child kind")
        (children t d)
    in
    { Xsm_xml.Tree.name; attributes; children }
  | Schema.Document | Schema.Attribute | Schema.Text ->
    invalid_arg "to_element: not an element descriptor"

let to_document t =
  let r = root t in
  match Schema.kind r.d_snode with
  | Schema.Document -> (
    match children t r with
    | [ e ] -> Xsm_xml.Tree.document (to_element t e)
    | _ -> invalid_arg "to_document: document descriptor must have one element child")
  | Schema.Element -> Xsm_xml.Tree.document (to_element t r)
  | Schema.Attribute | Schema.Text -> invalid_arg "to_document: bad root descriptor"

(* ------------------------------------------------------------------ *)
(* Updates                                                             *)

(* document-order placement: the new descriptor must sit after every
   same-snode descriptor with a smaller nid and before every one with
   a larger nid.  We scan the block list to find the neighbour. *)
let place_ordered t d =
  let sid = Schema.snode_id d.d_snode in
  match Hashtbl.find_opt t.heads sid with
  | None ->
    let b = new_block t d.d_snode in
    append_block t b;
    append_to_block b d;
    0
  | Some head ->
    (* find the last descriptor with nid < d.nid *)
    let rec find_block b =
      match b.next_block with
      | Some nb -> (
        match nb.first with
        | Some f when Label.compare f.nid d.nid < 0 -> find_block nb
        | Some _ | None -> b)
      | None -> b
    in
    let b = find_block head in
    let rec find_pred cur pred =
      match cur with
      | None -> pred
      | Some c -> if Label.compare c.nid d.nid < 0 then find_pred c.next_in_block (Some c) else pred
    in
    let pred = find_pred b.first None in
    if b.count < b.capacity then begin
      insert_in_block b ~after:pred d;
      0
    end
    else begin
      (* split, then retry placement in the correct half *)
      let moved = split_block t b in
      let target =
        match b.last with
        | Some l when Label.compare d.nid l.nid > 0 -> Option.get b.next_block
        | Some _ -> b
        | None -> b
      in
      let pred = find_pred target.first None in
      insert_in_block target ~after:pred d;
      moved
    end

let sibling_label ~parent_d ~after =
  match after with
  | None -> (
    (* before the current first child, or the very first child *)
    match
      List.fold_left
        (fun best (_, c) ->
          match best with
          | None -> Some c
          | Some b -> if Label.compare c.nid b.nid < 0 then Some c else best)
        None parent_d.first_children
    with
    | None -> Label.first_child parent_d.nid
    | Some first -> Label.before_sibling first.nid)
  | Some a -> (
    match a.right with
    | None -> Label.after_sibling a.nid
    | Some next -> Label.between a.nid next.nid)

let link_sibling ~parent_d ~after nd =
  nd.parent <- Some parent_d;
  (match after with
  | None ->
    (* becomes leftmost: fix old leftmost's left pointer *)
    let old_first =
      List.fold_left
        (fun best (_, c) ->
          match best with
          | None -> Some c
          | Some b -> if Label.compare c.nid b.nid < 0 then Some c else best)
        None parent_d.first_children
    in
    (match old_first with
    | Some f ->
      nd.right <- Some f;
      f.left <- Some nd
    | None -> ())
  | Some a ->
    nd.left <- Some a;
    nd.right <- a.right;
    (match a.right with Some r -> r.left <- Some nd | None -> ());
    a.right <- Some nd);
  (* maintain the first-child-by-schema vector *)
  let sid = Schema.snode_id nd.d_snode in
  match List.assoc_opt sid parent_d.first_children with
  | None -> parent_d.first_children <- parent_d.first_children @ [ (sid, nd) ]
  | Some current ->
    if Label.compare nd.nid current.nid < 0 then
      parent_d.first_children <-
        List.map (fun (k, v) -> if k = sid then (k, nd) else (k, v)) parent_d.first_children

(* streaming append: the caller supplies the nid (a document-order
   append label) and guarantees [after] is the current last child, so
   the tail block of the snode's list is always the right placement —
   no scan, no split *)
let append_generic t ~parent:parent_d ~after kind name value nid =
  let sn = Schema.find_or_add t.dschema parent_d.d_snode ~name kind in
  let d = new_desc t sn nid in
  d.value <- value;
  link_sibling ~parent_d ~after d;
  place_at_tail t d;
  d

let append_element t ~parent ~after name nid =
  append_generic t ~parent ~after Schema.Element (Some name) "" nid

let append_text t ~parent ~after value nid =
  append_generic t ~parent ~after Schema.Text None value nid

let append_attribute t ~parent ~after name value nid =
  append_generic t ~parent ~after Schema.Attribute (Some name) value nid

let insert_generic t ~parent:parent_d ~after kind name value =
  let sn =
    Schema.find_or_add t.dschema parent_d.d_snode ~name kind
  in
  let nid = sibling_label ~parent_d ~after in
  let d = new_desc t sn nid in
  d.value <- value;
  link_sibling ~parent_d ~after d;
  let moved = place_ordered t d in
  (d, moved)

let insert_element t ~parent ~after name =
  insert_generic t ~parent ~after Schema.Element (Some name) ""

let insert_text t ~parent ~after value =
  insert_generic t ~parent ~after Schema.Text None value

let insert_attribute t ~parent name value =
  (* attributes precede element children in the §7 order; we place the
     new attribute after the last existing attribute *)
  let attrs = attributes t parent in
  let after = match List.rev attrs with [] -> None | last :: _ -> Some last in
  insert_generic t ~parent ~after Schema.Attribute (Some name) value

let delete t d =
  if d.first_children <> [] then invalid_arg "Block_storage.delete: not a leaf";
  (match d.left with Some l -> l.right <- d.right | None -> ());
  (match d.right with Some r -> r.left <- d.left | None -> ());
  (match d.parent with
  | Some p ->
    let sid = Schema.snode_id d.d_snode in
    (match List.assoc_opt sid p.first_children with
    | Some cur when cur == d ->
      (* next same-snode sibling, if any, becomes the first child *)
      let rec next_same = function
        | None -> None
        | Some r -> if Schema.snode_id r.d_snode = sid then Some r else next_same r.right
      in
      (match next_same d.right with
      | Some r ->
        p.first_children <-
          List.map (fun (k, v) -> if k = sid then (k, r) else (k, v)) p.first_children
      | None -> p.first_children <- List.remove_assoc sid p.first_children)
    | _ -> ())
  | None -> ());
  remove_from_block d;
  t.descriptors <- t.descriptors - 1

(* ------------------------------------------------------------------ *)
(* Statistics and integrity                                            *)

let block_count t =
  Hashtbl.fold
    (fun _ head acc ->
      let rec count b acc = match b.next_block with None -> acc | Some nb -> count nb (acc + 1) in
      count head (acc + 1))
    t.heads 0

let split_count t = t.splits
let descriptor_count t = t.descriptors

let blocks_of_snode t sn =
  match Hashtbl.find_opt t.heads (Schema.snode_id sn) with
  | None -> 0
  | Some head ->
    let rec count b acc = match b.next_block with None -> acc | Some nb -> count nb (acc + 1) in
    count head 1

let check_integrity t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_snode_list _sid head =
    (* nids strictly increasing across the whole block list *)
    let rec walk_blocks prev_nid b =
      let rec walk_chain prev_nid = function
        | None -> Ok prev_nid
        | Some d -> (
          (match d.home with
          | Some hb when hb == b -> ()
          | _ -> failwith "descriptor home pointer wrong");
          match prev_nid with
          | Some p when Label.compare p d.nid >= 0 -> failwith "nid order violated"
          | _ -> walk_chain (Some d.nid) d.next_in_block)
      in
      match walk_chain prev_nid b.first with
      | Ok last -> (
        match b.next_block with
        | None -> Ok ()
        | Some nb -> (
          match nb.prev_block with
          | Some pb when pb == b -> walk_blocks last nb
          | Some _ | None -> failwith "block back-pointer wrong"))
      | Error _ as e -> e
    in
    walk_blocks None head
  in
  try
    Hashtbl.iter
      (fun sid head ->
        match check_snode_list sid head with
        | Ok () -> ()
        | Error e -> failwith e)
      t.heads;
    (* sibling chains and first-child pointers *)
    let rec check_desc d =
      List.iter
        (fun (sid, first) ->
          if Schema.snode_id first.d_snode <> sid then failwith "first-child snode mismatch";
          match first.parent with
          | Some p when p == d -> ()
          | Some _ | None -> failwith "first-child parent mismatch")
        d.first_children;
      let kids = all_children_unordered d in
      List.iter
        (fun c ->
          match c.parent with
          | Some p when p == d -> ()
          | Some _ | None -> failwith "child parent pointer wrong")
        kids;
      let rec ordered = function
        | a :: (b :: _ as rest) ->
          if Label.compare a.nid b.nid >= 0 then failwith "sibling order violated";
          ordered rest
        | [ _ ] | [] -> ()
      in
      ordered kids;
      List.iter check_desc kids
    in
    (match t.root_desc with Some r -> check_desc r | None -> ());
    Ok ()
  with Failure m -> err "%s" m
