module Store = Xsm_xdm.Store
module Name = Xsm_xml.Name
module Schema = Descriptive_schema
module Label = Xsm_numbering.Sedna_label
module Pager = Xsm_pager.Pager
module Page_file = Xsm_pager.Page_file
module Codec = Xsm_pager.Codec

type desc = {
  id : int;
  d_snode : Schema.snode;
  mutable parent : desc option;
  mutable left : desc option;
  mutable right : desc option;
  mutable next_in_block : desc option;
  mutable prev_in_block : desc option;
  mutable nid : Label.t;
  mutable first_children : (int * desc) list;  (* child snode id -> first desc *)
  mutable value : string;
  mutable home : block option;
}

and block = {
  block_id : int;
  b_snode : Schema.snode;
  capacity : int;
  owner : t;
  mutable count : int;
  mutable first : desc option;
  mutable last : desc option;
  mutable next_block : block option;
  mutable prev_block : block option;
}

and t = {
  dschema : Schema.t;
  block_capacity : int;
  mutable next_desc_id : int;
  mutable next_block_id : int;
  mutable splits : int;
  mutable descriptors : int;
  (* head/tail block per schema node id *)
  heads : (int, block) Hashtbl.t;
  tails : (int, block) Hashtbl.t;
  by_node : (int, desc) Hashtbl.t;  (* store node id -> descriptor *)
  mutable root_desc : desc option;
  blocks_by_id : (int, block) Hashtbl.t;
  mutable pager : Pager.t option;
  mutable lsn_now : unit -> int;  (* WAL position covering the current change *)
}

let schema t = t.dschema

(* ------------------------------------------------------------------ *)
(* Paging discipline                                                   *)

(* Values are the paged payload: evicting a block drops every
   descriptor's value string (the skeleton — pointers, nids, chains —
   stays resident), and faulting the block back restores the values
   positionally from the blob.  That positional match is why every
   structural chain mutation must {e touch first}: mutate a cold
   block's chain and a later fault would hand old values to the new
   chain. *)
let evicted_value = "\000<paged-out>"

let touch_block ?pin ?scan t b =
  match t.pager with
  | None -> ()
  | Some p -> ignore (Pager.touch ?pin ?scan p b.block_id)

let unpin_block t b =
  match t.pager with None -> () | Some p -> Pager.unpin p b.block_id

(* callers guarantee the block was just touched (resident) *)
let dirty_block t b =
  match t.pager with
  | None -> ()
  | Some p -> Pager.mark_dirty p b.block_id ~lsn:(t.lsn_now ())

let touch_home ?pin ?scan d =
  match d.home with None -> () | Some b -> touch_block ?pin ?scan b.owner b

(* pointer-only mutations (parent/left/right/first-children) are safe
   to dirty after the fact: a fault never restores pointers, so the
   touch only needs to precede the write-back, not the mutation *)
let dirty_desc d =
  match d.home with
  | None -> ()
  | Some b ->
    touch_block b.owner b;
    dirty_block b.owner b

(* bracketed value read: pinned so a concurrent reader's fault cannot
   evict the block between our fault and the field read *)
let read_value d =
  match d.home with
  | None -> d.value
  | Some b ->
    (match b.owner.pager with
    | None -> d.value
    | Some p ->
      ignore (Pager.touch ~pin:true p b.block_id);
      let v = d.value in
      Pager.unpin p b.block_id;
      v)

let root t =
  match t.root_desc with
  | Some d ->
    touch_home d;
    d
  | None -> invalid_arg "Block_storage.root: empty"

let descriptor_of_node t n = Hashtbl.find_opt t.by_node (Store.node_id n)
let bind_node t n d = Hashtbl.replace t.by_node (Store.node_id n) d

(* ------------------------------------------------------------------ *)
(* Block management                                                    *)

let new_block t snode =
  let b =
    {
      block_id = t.next_block_id;
      b_snode = snode;
      capacity = t.block_capacity;
      owner = t;
      count = 0;
      first = None;
      last = None;
      next_block = None;
      prev_block = None;
    }
  in
  t.next_block_id <- t.next_block_id + 1;
  Hashtbl.replace t.blocks_by_id b.block_id b;
  (match t.pager with
  | None -> ()
  | Some p ->
    (* dirty from birth: a clean frame with no disk image would be
       evicted without write-back and its descriptors' values lost *)
    Pager.register_new p b.block_id;
    Pager.mark_dirty p b.block_id ~lsn:(t.lsn_now ()));
  b

(* append a block at the tail of its snode's list *)
let append_block t b =
  let sid = Schema.snode_id b.b_snode in
  (match Hashtbl.find_opt t.tails sid with
  | None ->
    Hashtbl.replace t.heads sid b;
    Hashtbl.replace t.tails sid b
  | Some tail ->
    tail.next_block <- Some b;
    b.prev_block <- Some tail;
    Hashtbl.replace t.tails sid b)

(* insert block nb right after block b in the list *)
let link_block_after t b nb =
  nb.prev_block <- Some b;
  nb.next_block <- b.next_block;
  (match b.next_block with
  | Some n -> n.prev_block <- Some nb
  | None -> Hashtbl.replace t.tails (Schema.snode_id b.b_snode) nb);
  b.next_block <- Some nb

(* append descriptor at the tail of block b's chain *)
let append_to_block b d =
  touch_block b.owner b;
  d.home <- Some b;
  d.prev_in_block <- b.last;
  d.next_in_block <- None;
  (match b.last with Some l -> l.next_in_block <- Some d | None -> b.first <- Some d);
  b.last <- Some d;
  b.count <- b.count + 1;
  dirty_block b.owner b

(* insert descriptor nd into block b right after descriptor d (None =
   at the head) *)
let insert_in_block b ~after nd =
  touch_block b.owner b;
  nd.home <- Some b;
  (match after with
  | None ->
    nd.prev_in_block <- None;
    nd.next_in_block <- b.first;
    (match b.first with Some f -> f.prev_in_block <- Some nd | None -> b.last <- Some nd);
    b.first <- Some nd
  | Some d ->
    nd.prev_in_block <- Some d;
    nd.next_in_block <- d.next_in_block;
    (match d.next_in_block with
    | Some n -> n.prev_in_block <- Some nd
    | None -> b.last <- Some nd);
    d.next_in_block <- Some nd);
  b.count <- b.count + 1;
  dirty_block b.owner b

let remove_from_block d =
  match d.home with
  | None -> ()
  | Some b ->
    touch_block b.owner b;
    (match d.prev_in_block with
    | Some p -> p.next_in_block <- d.next_in_block
    | None -> b.first <- d.next_in_block);
    (match d.next_in_block with
    | Some n -> n.prev_in_block <- d.prev_in_block
    | None -> b.last <- d.prev_in_block);
    b.count <- b.count - 1;
    d.home <- None;
    d.prev_in_block <- None;
    d.next_in_block <- None;
    dirty_block b.owner b

(* split a full block: move the upper half of the chain into a fresh
   block linked right after; returns how many descriptors moved.  The
   source block stays pinned across the fresh block's registration:
   admitting the new frame can evict, and the source is mid-surgery. *)
let split_block t b =
  touch_block ~pin:true t b;
  let keep = b.count / 2 in
  (* find the descriptor at position keep-1 *)
  let rec nth d i = if i = 0 then d else nth (Option.get d.next_in_block) (i - 1) in
  let boundary = nth (Option.get b.first) (keep - 1) in
  let moved_head = boundary.next_in_block in
  boundary.next_in_block <- None;
  let old_last = b.last in
  b.last <- Some boundary;
  let nb = new_block t b.b_snode in
  link_block_after t b nb;
  nb.first <- moved_head;
  nb.last <- old_last;
  (match moved_head with Some m -> m.prev_in_block <- None | None -> ());
  let moved = ref 0 in
  let rec adopt = function
    | None -> ()
    | Some d ->
      d.home <- Some nb;
      incr moved;
      adopt d.next_in_block
  in
  adopt moved_head;
  nb.count <- !moved;
  b.count <- b.count - !moved;
  t.splits <- t.splits + 1;
  dirty_block t b;
  dirty_block t nb;
  unpin_block t b;
  !moved

(* ------------------------------------------------------------------ *)
(* Descriptor construction                                             *)

let new_desc t snode nid =
  let d =
    {
      id = t.next_desc_id;
      d_snode = snode;
      parent = None;
      left = None;
      right = None;
      next_in_block = None;
      prev_in_block = None;
      nid;
      first_children = [];
      value = "";
      home = None;
    }
  in
  t.next_desc_id <- t.next_desc_id + 1;
  t.descriptors <- t.descriptors + 1;
  d

(* during initial (document-ordered) build: place at tail block *)
let place_at_tail t d =
  let sid = Schema.snode_id d.d_snode in
  let target =
    match Hashtbl.find_opt t.tails sid with
    | Some b when b.count < b.capacity -> b
    | Some _ | None ->
      let b = new_block t d.d_snode in
      append_block t b;
      b
  in
  append_to_block target d

let make_empty ~block_capacity =
  {
    dschema = Schema.create ();
    block_capacity;
    next_desc_id = 0;
    next_block_id = 0;
    splits = 0;
    descriptors = 0;
    heads = Hashtbl.create 64;
    tails = Hashtbl.create 64;
    by_node = Hashtbl.create 256;
    root_desc = None;
    blocks_by_id = Hashtbl.create 64;
    pager = None;
    lsn_now = (fun () -> 0);
  }

let of_store ?(block_capacity = 64) store docnode =
  let t = make_empty ~block_capacity in
  let rec build node sn nid =
    let d = new_desc t sn nid in
    Hashtbl.replace t.by_node (Store.node_id node) d;
    (match Store.kind store node with
    | Store.Kind.Text | Store.Kind.Attribute -> d.value <- Store.string_value store node
    | Store.Kind.Document | Store.Kind.Element -> ());
    place_at_tail t d;
    let ordered = Store.attributes store node @ Store.children store node in
    let child_labels = Label.assign_children nid (List.length ordered) in
    let prev = ref None in
    List.iter2
      (fun c cl ->
        let csn =
          Schema.find_or_add t.dschema sn
            ~name:(Store.node_name store c)
            (Schema.kind_of_store (Store.kind store c))
        in
        let cd = build c csn cl in
        cd.parent <- Some d;
        (match !prev with
        | Some p ->
          p.right <- Some cd;
          cd.left <- Some p
        | None -> ());
        prev := Some cd;
        if not (List.mem_assoc (Schema.snode_id csn) d.first_children) then
          d.first_children <- d.first_children @ [ (Schema.snode_id csn, cd) ])
      ordered child_labels;
    d
  in
  let rootd =
    match Store.kind store docnode with
    | Store.Kind.Document -> build docnode (Schema.root t.dschema) Label.root
    | Store.Kind.Element ->
      let sn =
        Schema.find_or_add t.dschema (Schema.root t.dschema)
          ~name:(Store.node_name store docnode)
          Schema.Element
      in
      build docnode sn Label.root
    | Store.Kind.Attribute | Store.Kind.Text ->
      invalid_arg "Block_storage.of_store: not a tree root"
  in
  t.root_desc <- Some rootd;
  t

(* ------------------------------------------------------------------ *)
(* Streaming (document-order) build                                    *)

let create_empty ?(block_capacity = 64) () =
  let t = make_empty ~block_capacity in
  let d = new_desc t (Schema.root t.dschema) Label.root in
  place_at_tail t d;
  t.root_desc <- Some d;
  t

let snode d = d.d_snode
let node_kind d = Schema.kind_to_string (Schema.kind d.d_snode)
let node_name d = Schema.name d.d_snode

let parent d =
  (match d.parent with Some p -> touch_home p | None -> ());
  d.parent

let nid d = d.nid
let desc_id d = d.id

let left_sibling d =
  (match d.left with Some l -> touch_home l | None -> ());
  d.left

let right_sibling d =
  (match d.right with Some r -> touch_home r | None -> ());
  d.right

let home_block_id d = Option.map (fun b -> b.block_id) d.home

let first_child_by_schema d sn =
  let c = List.assoc_opt (Schema.snode_id sn) d.first_children in
  (match c with Some c -> touch_home c | None -> ());
  c

let all_children_unordered d =
  (* leftmost first child, then the right-sibling chain *)
  match d.first_children with
  | [] -> []
  | firsts ->
    let leftmost =
      List.fold_left
        (fun best (_, c) ->
          match best with
          | None -> Some c
          | Some b -> if Label.compare c.nid b.nid < 0 then Some c else best)
        None firsts
    in
    let rec walk acc = function
      | None -> List.rev acc
      | Some c ->
        touch_home c;
        walk (c :: acc) c.right
    in
    walk [] leftmost

let children _t d =
  List.filter
    (fun c -> match Schema.kind c.d_snode with
      | Schema.Element | Schema.Text -> true
      | Schema.Attribute | Schema.Document -> false)
    (all_children_unordered d)

let attributes _t d =
  List.filter (fun c -> Schema.kind c.d_snode = Schema.Attribute) (all_children_unordered d)

let rec string_value t d =
  match Schema.kind d.d_snode with
  | Schema.Text | Schema.Attribute -> read_value d
  | Schema.Document | Schema.Element ->
    String.concat "" (List.map (string_value t) (children t d))

let typed_value t d = [ Xsm_datatypes.Value.Untyped_atomic (string_value t d) ]

let descendants_by_snode t sn =
  match Hashtbl.find_opt t.heads (Schema.snode_id sn) with
  | None -> []
  | Some head ->
    let rec blocks acc = function
      | None -> List.rev acc
      | Some b -> blocks (b :: acc) b.next_block
    in
    let in_block b =
      (* an extent scan streams through the pool's FIFO: the scan hint
         keeps even re-referenced blocks out of the LRU working set *)
      touch_block ~scan:true t b;
      let rec go acc = function
        | None -> List.rev acc
        | Some d -> go (d :: acc) d.next_in_block
      in
      go [] b.first
    in
    List.concat_map in_block (blocks [] (Some head))

let rec to_element t d =
  match Schema.kind d.d_snode with
  | Schema.Element ->
    let name =
      match Schema.name d.d_snode with
      | Some n -> n
      | None -> invalid_arg "to_element: unnamed element descriptor"
    in
    let attributes =
      List.map
        (fun a ->
          match Schema.name a.d_snode with
          | Some n -> { Xsm_xml.Tree.name = n; value = read_value a }
          | None -> invalid_arg "to_element: unnamed attribute descriptor")
        (attributes t d)
    in
    let children =
      List.map
        (fun c ->
          match Schema.kind c.d_snode with
          | Schema.Text -> Xsm_xml.Tree.Text (read_value c)
          | Schema.Element -> Xsm_xml.Tree.Element (to_element t c)
          | Schema.Document | Schema.Attribute ->
            invalid_arg "to_element: impossible child kind")
        (children t d)
    in
    { Xsm_xml.Tree.name; attributes; children }
  | Schema.Document | Schema.Attribute | Schema.Text ->
    invalid_arg "to_element: not an element descriptor"

let to_document t =
  let r = root t in
  match Schema.kind r.d_snode with
  | Schema.Document -> (
    match children t r with
    | [ e ] -> Xsm_xml.Tree.document (to_element t e)
    | _ -> invalid_arg "to_document: document descriptor must have one element child")
  | Schema.Element -> Xsm_xml.Tree.document (to_element t r)
  | Schema.Attribute | Schema.Text -> invalid_arg "to_document: bad root descriptor"

(* ------------------------------------------------------------------ *)
(* Updates                                                             *)

(* document-order placement: the new descriptor must sit after every
   same-snode descriptor with a smaller nid and before every one with
   a larger nid.  We scan the block list to find the neighbour. *)
let place_ordered t d =
  let sid = Schema.snode_id d.d_snode in
  match Hashtbl.find_opt t.heads sid with
  | None ->
    let b = new_block t d.d_snode in
    append_block t b;
    append_to_block b d;
    0
  | Some head ->
    (* find the last descriptor with nid < d.nid *)
    let rec find_block b =
      match b.next_block with
      | Some nb -> (
        match nb.first with
        | Some f when Label.compare f.nid d.nid < 0 -> find_block nb
        | Some _ | None -> b)
      | None -> b
    in
    let b = find_block head in
    let rec find_pred cur pred =
      match cur with
      | None -> pred
      | Some c -> if Label.compare c.nid d.nid < 0 then find_pred c.next_in_block (Some c) else pred
    in
    let pred = find_pred b.first None in
    if b.count < b.capacity then begin
      insert_in_block b ~after:pred d;
      0
    end
    else begin
      (* split, then retry placement in the correct half *)
      let moved = split_block t b in
      let target =
        match b.last with
        | Some l when Label.compare d.nid l.nid > 0 -> Option.get b.next_block
        | Some _ -> b
        | None -> b
      in
      let pred = find_pred target.first None in
      insert_in_block target ~after:pred d;
      moved
    end

let sibling_label ~parent_d ~after =
  match after with
  | None -> (
    (* before the current first child, or the very first child *)
    match
      List.fold_left
        (fun best (_, c) ->
          match best with
          | None -> Some c
          | Some b -> if Label.compare c.nid b.nid < 0 then Some c else best)
        None parent_d.first_children
    with
    | None -> Label.first_child parent_d.nid
    | Some first -> Label.before_sibling first.nid)
  | Some a -> (
    match a.right with
    | None -> Label.after_sibling a.nid
    | Some next -> Label.between a.nid next.nid)

let link_sibling ~parent_d ~after nd =
  nd.parent <- Some parent_d;
  (match after with
  | None ->
    (* becomes leftmost: fix old leftmost's left pointer *)
    let old_first =
      List.fold_left
        (fun best (_, c) ->
          match best with
          | None -> Some c
          | Some b -> if Label.compare c.nid b.nid < 0 then Some c else best)
        None parent_d.first_children
    in
    (match old_first with
    | Some f ->
      nd.right <- Some f;
      f.left <- Some nd;
      dirty_desc f
    | None -> ())
  | Some a ->
    nd.left <- Some a;
    nd.right <- a.right;
    (match a.right with
    | Some r ->
      r.left <- Some nd;
      dirty_desc r
    | None -> ());
    a.right <- Some nd;
    dirty_desc a);
  (* maintain the first-child-by-schema vector *)
  let sid = Schema.snode_id nd.d_snode in
  (match List.assoc_opt sid parent_d.first_children with
  | None -> parent_d.first_children <- parent_d.first_children @ [ (sid, nd) ]
  | Some current ->
    if Label.compare nd.nid current.nid < 0 then
      parent_d.first_children <-
        List.map (fun (k, v) -> if k = sid then (k, nd) else (k, v)) parent_d.first_children);
  dirty_desc parent_d

(* streaming append: the caller supplies the nid (a document-order
   append label) and guarantees [after] is the current last child, so
   the tail block of the snode's list is always the right placement —
   no scan, no split *)
let append_generic t ~parent:parent_d ~after kind name value nid =
  let sn = Schema.find_or_add t.dschema parent_d.d_snode ~name kind in
  let d = new_desc t sn nid in
  d.value <- value;
  link_sibling ~parent_d ~after d;
  place_at_tail t d;
  d

let append_element t ~parent ~after name nid =
  append_generic t ~parent ~after Schema.Element (Some name) "" nid

let append_text t ~parent ~after value nid =
  append_generic t ~parent ~after Schema.Text None value nid

let append_attribute t ~parent ~after name value nid =
  append_generic t ~parent ~after Schema.Attribute (Some name) value nid

let insert_generic t ~parent:parent_d ~after kind name value =
  let sn =
    Schema.find_or_add t.dschema parent_d.d_snode ~name kind
  in
  let nid = sibling_label ~parent_d ~after in
  let d = new_desc t sn nid in
  d.value <- value;
  link_sibling ~parent_d ~after d;
  let moved = place_ordered t d in
  (d, moved)

let insert_element t ~parent ~after name =
  insert_generic t ~parent ~after Schema.Element (Some name) ""

let insert_text t ~parent ~after value =
  insert_generic t ~parent ~after Schema.Text None value

let insert_attribute t ~parent name value =
  (* attributes precede element children in the §7 order; we place the
     new attribute after the last existing attribute *)
  let attrs = attributes t parent in
  let after = match List.rev attrs with [] -> None | last :: _ -> Some last in
  insert_generic t ~parent ~after Schema.Attribute (Some name) value

let set_content t d v =
  touch_home ~pin:true d;
  d.value <- v;
  (match d.home with
  | Some b ->
    dirty_block t b;
    unpin_block t b
  | None -> ())

let delete t d =
  if d.first_children <> [] then invalid_arg "Block_storage.delete: not a leaf";
  (match d.left with
  | Some l ->
    l.right <- d.right;
    dirty_desc l
  | None -> ());
  (match d.right with
  | Some r ->
    r.left <- d.left;
    dirty_desc r
  | None -> ());
  (match d.parent with
  | Some p ->
    let sid = Schema.snode_id d.d_snode in
    (match List.assoc_opt sid p.first_children with
    | Some cur when cur == d ->
      (* next same-snode sibling, if any, becomes the first child *)
      let rec next_same = function
        | None -> None
        | Some r -> if Schema.snode_id r.d_snode = sid then Some r else next_same r.right
      in
      (match next_same d.right with
      | Some r ->
        p.first_children <-
          List.map (fun (k, v) -> if k = sid then (k, r) else (k, v)) p.first_children
      | None -> p.first_children <- List.remove_assoc sid p.first_children)
    | _ -> ());
    dirty_desc p
  | None -> ());
  remove_from_block d;
  t.descriptors <- t.descriptors - 1

(* ------------------------------------------------------------------ *)
(* Block blobs and checkpoint metadata                                 *)

(* blob layout, per descriptor in chain order:
   id ‖ snode id ‖ nid ‖ value ‖ parent+1 ‖ left+1 ‖ right+1
   ‖ #first-children ‖ (snode id ‖ desc id)*
   prefixed by the block's snode id and count.  The full structure is
   written (the reopen path rebuilds skeletons from it) but a live
   fault restores only the values — the skeleton never leaves
   memory. *)
let serialize_block b =
  let w = Codec.W.create ~initial:1024 () in
  Codec.W.varint w (Schema.snode_id b.b_snode);
  Codec.W.varint w b.count;
  let opt_id = function None -> Codec.W.varint w 0 | Some d -> Codec.W.varint w (d.id + 1) in
  let rec go = function
    | None -> ()
    | Some d ->
      Codec.W.varint w d.id;
      Codec.W.varint w (Schema.snode_id d.d_snode);
      Codec.W.string w (Label.to_raw d.nid);
      Codec.W.string w d.value;
      opt_id d.parent;
      opt_id d.left;
      opt_id d.right;
      Codec.W.varint w (List.length d.first_children);
      List.iter
        (fun (sid, c) ->
          Codec.W.varint w sid;
          Codec.W.varint w c.id)
        d.first_children;
      go d.next_in_block
  in
  go b.first;
  Codec.W.contents w

(* restore a faulted block: values only, matched positionally against
   the resident chain (which cannot have changed while cold — every
   structural mutation faults first) *)
let deserialize_block b payload =
  let r = Codec.R.of_string payload in
  let sid = Codec.R.varint r in
  if sid <> Schema.snode_id b.b_snode then
    raise (Codec.Corrupt (Printf.sprintf "block %d blob: snode %d, expected %d" b.block_id sid
                            (Schema.snode_id b.b_snode)));
  let n = Codec.R.varint r in
  if n <> b.count then
    raise (Codec.Corrupt (Printf.sprintf "block %d blob: %d descriptors, chain has %d"
                            b.block_id n b.count));
  let rec go = function
    | None -> ()
    | Some d ->
      let id = Codec.R.varint r in
      if id <> d.id then
        raise (Codec.Corrupt (Printf.sprintf "block %d blob: descriptor %d, chain has %d"
                                b.block_id id d.id));
      let _snode = Codec.R.varint r in
      let _nid = Codec.R.string r in
      d.value <- Codec.R.string r;
      let _parent = Codec.R.varint r in
      let _left = Codec.R.varint r in
      let _right = Codec.R.varint r in
      let fc = Codec.R.varint r in
      for _ = 1 to fc do
        let _sid = Codec.R.varint r in
        let _cid = Codec.R.varint r in
        ()
      done;
      go d.next_in_block
  in
  go b.first

let evict_block b =
  let rec go = function
    | None -> ()
    | Some d ->
      d.value <- evicted_value;
      go d.next_in_block
  in
  go b.first

let handlers t =
  {
    Pager.serialize = (fun id -> serialize_block (Hashtbl.find t.blocks_by_id id));
    deserialize = (fun id payload -> deserialize_block (Hashtbl.find t.blocks_by_id id) payload);
    on_evict = (fun id -> evict_block (Hashtbl.find t.blocks_by_id id));
  }

let set_lsn_source t f = t.lsn_now <- f
let pager t = t.pager

let attach_pager ?wal t ~capacity file =
  if t.pager <> None then invalid_arg "Block_storage.attach_pager: already paged";
  let p = Pager.create ~capacity ~handlers:(handlers t) ?wal file in
  t.pager <- Some p;
  (* every existing block becomes resident and dirty: the first
     eviction or checkpoint writes its image *)
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) t.blocks_by_id [] in
  List.iter
    (fun id ->
      Pager.register_new p id;
      Pager.mark_dirty p id ~lsn:(t.lsn_now ()))
    (List.sort compare ids);
  p

(* checkpoint metadata: everything the blobs do not carry — counters,
   the descriptive schema (replayable in id order), the per-snode
   block-list orders, and the root descriptor *)
let kind_byte = function
  | Schema.Document -> 0
  | Schema.Element -> 1
  | Schema.Attribute -> 2
  | Schema.Text -> 3

let kind_of_byte = function
  | 0 -> Schema.Document
  | 1 -> Schema.Element
  | 2 -> Schema.Attribute
  | 3 -> Schema.Text
  | b -> raise (Codec.Corrupt (Printf.sprintf "bad schema-node kind %d" b))

let encode_meta t =
  let w = Codec.W.create ~initial:1024 () in
  Codec.W.varint w t.block_capacity;
  Codec.W.varint w t.next_desc_id;
  Codec.W.varint w t.next_block_id;
  Codec.W.varint w t.splits;
  Codec.W.varint w t.descriptors;
  (match t.root_desc with
  | None -> Codec.W.varint w 0
  | Some d -> Codec.W.varint w (d.id + 1));
  let n = Schema.node_count t.dschema in
  Codec.W.varint w n;
  for i = 1 to n - 1 do
    let sn = Schema.by_id t.dschema i in
    let p = match Schema.parent t.dschema sn with Some p -> Schema.snode_id p | None -> 0 in
    Codec.W.varint w p;
    Codec.W.byte w (kind_byte (Schema.kind sn));
    Codec.W.opt_string w (Option.map Name.to_string (Schema.name sn))
  done;
  let lists =
    Hashtbl.fold
      (fun sid head acc ->
        let rec ids b acc = match b with None -> List.rev acc | Some b -> ids b.next_block (b.block_id :: acc) in
        (sid, ids (Some head) []) :: acc)
      t.heads []
  in
  let lists = List.sort (fun (a, _) (b, _) -> compare a b) lists in
  Codec.W.varint w (List.length lists);
  List.iter
    (fun (sid, ids) ->
      Codec.W.varint w sid;
      Codec.W.varint w (List.length ids);
      List.iter (Codec.W.varint w) ids)
    lists;
  Codec.W.contents w

let checkpoint t ~lsn =
  match t.pager with
  | None -> invalid_arg "Block_storage.checkpoint: no pager attached"
  | Some p -> Pager.checkpoint p ~lsn ~meta:(encode_meta t)

let of_page_file ?wal ~capacity file =
  (match Pager.read_meta file with
  | Some _ when Page_file.clean file -> ()
  | Some _ -> raise (Codec.Corrupt (Page_file.path file ^ ": not cleanly checkpointed"))
  | None -> raise (Codec.Corrupt (Page_file.path file ^ ": no checkpoint metadata")));
  let dir, meta = Option.get (Pager.read_meta file) in
  let heads_of_block = Hashtbl.create 64 in
  List.iter (fun (id, head) -> Hashtbl.replace heads_of_block id head) dir;
  let r = Codec.R.of_string meta in
  let block_capacity = Codec.R.varint r in
  let t = make_empty ~block_capacity in
  t.next_desc_id <- Codec.R.varint r;
  t.next_block_id <- Codec.R.varint r;
  t.splits <- Codec.R.varint r;
  t.descriptors <- Codec.R.varint r;
  let root_id = Codec.R.varint r - 1 in
  (* replay the descriptive schema in id order: find_or_add is
     deterministic, so every schema node lands on its original id *)
  let n = Codec.R.varint r in
  for i = 1 to n - 1 do
    let pid = Codec.R.varint r in
    let kind = kind_of_byte (Codec.R.byte r) in
    let name =
      match Codec.R.opt_string r with
      | None -> None
      | Some s -> Some (Name.of_string_exn s)
    in
    let sn = Schema.find_or_add t.dschema (Schema.by_id t.dschema pid) ~name kind in
    if Schema.snode_id sn <> i then
      raise (Codec.Corrupt (Printf.sprintf "schema replay: node %d resolved to %d" i
                              (Schema.snode_id sn)))
  done;
  (* pass 1: rebuild every block skeleton from its blob — chains,
     nids, homes — leaving values evicted (frames start cold) *)
  let descs : (int, desc) Hashtbl.t = Hashtbl.create 256 in
  let links : (desc * int * int * int * (int * int) list) list ref = ref [] in
  let load_block b =
    match Hashtbl.find_opt heads_of_block b.block_id with
    | None -> ()
    | Some head ->
      let payload, _lsn = Page_file.read_blob file head in
      let r = Codec.R.of_string payload in
      let sid = Codec.R.varint r in
      if sid <> Schema.snode_id b.b_snode then
        raise (Codec.Corrupt (Printf.sprintf "block %d blob: snode %d, expected %d" b.block_id
                                sid (Schema.snode_id b.b_snode)));
      let n = Codec.R.varint r in
      let prev = ref None in
      for _ = 1 to n do
        let id = Codec.R.varint r in
        let dsid = Codec.R.varint r in
        let nid =
          match Label.of_raw (Codec.R.string r) with
          | Ok l -> l
          | Error e -> raise (Codec.Corrupt ("bad numbering label: " ^ e))
        in
        let _value = Codec.R.string r in
        let p = Codec.R.varint r - 1 in
        let l = Codec.R.varint r - 1 in
        let rt = Codec.R.varint r - 1 in
        let fc = Codec.R.varint r in
        let firsts =
          List.init fc (fun _ ->
              let sid = Codec.R.varint r in
              let cid = Codec.R.varint r in
              (sid, cid))
        in
        let d =
          {
            id;
            d_snode = Schema.by_id t.dschema dsid;
            parent = None;
            left = None;
            right = None;
            next_in_block = None;
            prev_in_block = !prev;
            nid;
            first_children = [];
            value = evicted_value;
            home = Some b;
          }
        in
        (match !prev with Some pd -> pd.next_in_block <- Some d | None -> b.first <- Some d);
        prev := Some d;
        Hashtbl.replace descs id d;
        links := (d, p, l, rt, firsts) :: !links
      done;
      b.last <- !prev;
      b.count <- n
  in
  let nl = Codec.R.varint r in
  for _ = 1 to nl do
    let sid = Codec.R.varint r in
    let cnt = Codec.R.varint r in
    let ids = List.init cnt (fun _ -> Codec.R.varint r) in
    let sn = Schema.by_id t.dschema sid in
    List.iter
      (fun bid ->
        let b =
          {
            block_id = bid;
            b_snode = sn;
            capacity = block_capacity;
            owner = t;
            count = 0;
            first = None;
            last = None;
            next_block = None;
            prev_block = None;
          }
        in
        Hashtbl.replace t.blocks_by_id bid b;
        append_block t b;
        load_block b)
      ids
  done;
  if not (Codec.R.at_end r) then raise (Codec.Corrupt "trailing bytes in storage metadata");
  (* pass 2: resolve cross-block descriptor pointers by id *)
  let resolve id =
    match Hashtbl.find_opt descs id with
    | Some d -> d
    | None -> raise (Codec.Corrupt (Printf.sprintf "dangling descriptor id %d" id))
  in
  List.iter
    (fun (d, p, l, rt, firsts) ->
      if p >= 0 then d.parent <- Some (resolve p);
      if l >= 0 then d.left <- Some (resolve l);
      if rt >= 0 then d.right <- Some (resolve rt);
      d.first_children <- List.map (fun (sid, cid) -> (sid, resolve cid)) firsts)
    !links;
  if root_id >= 0 then t.root_desc <- Some (resolve root_id);
  (* the pager seeds cold frames from the checkpoint directory: the
     first touch of any block faults its values back in *)
  t.pager <- Some (Pager.create ~capacity ~handlers:(handlers t) ?wal file);
  t

(* ------------------------------------------------------------------ *)
(* Statistics and integrity                                            *)

let block_count t =
  Hashtbl.fold
    (fun _ head acc ->
      let rec count b acc = match b.next_block with None -> acc | Some nb -> count nb (acc + 1) in
      count head (acc + 1))
    t.heads 0

let split_count t = t.splits
let descriptor_count t = t.descriptors

let blocks_of_snode t sn =
  match Hashtbl.find_opt t.heads (Schema.snode_id sn) with
  | None -> 0
  | Some head ->
    let rec count b acc = match b.next_block with None -> acc | Some nb -> count nb (acc + 1) in
    count head 1

let check_integrity t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_snode_list _sid head =
    (* nids strictly increasing across the whole block list *)
    let rec walk_blocks prev_nid b =
      let rec walk_chain prev_nid = function
        | None -> Ok prev_nid
        | Some d -> (
          (match d.home with
          | Some hb when hb == b -> ()
          | _ -> failwith "descriptor home pointer wrong");
          match prev_nid with
          | Some p when Label.compare p d.nid >= 0 -> failwith "nid order violated"
          | _ -> walk_chain (Some d.nid) d.next_in_block)
      in
      match walk_chain prev_nid b.first with
      | Ok last -> (
        match b.next_block with
        | None -> Ok ()
        | Some nb -> (
          match nb.prev_block with
          | Some pb when pb == b -> walk_blocks last nb
          | Some _ | None -> failwith "block back-pointer wrong"))
      | Error _ as e -> e
    in
    walk_blocks None head
  in
  try
    Hashtbl.iter
      (fun sid head ->
        match check_snode_list sid head with
        | Ok () -> ()
        | Error e -> failwith e)
      t.heads;
    (* sibling chains and first-child pointers *)
    let rec check_desc d =
      List.iter
        (fun (sid, first) ->
          if Schema.snode_id first.d_snode <> sid then failwith "first-child snode mismatch";
          match first.parent with
          | Some p when p == d -> ()
          | Some _ | None -> failwith "first-child parent mismatch")
        d.first_children;
      let kids = all_children_unordered d in
      List.iter
        (fun c ->
          match c.parent with
          | Some p when p == d -> ()
          | Some _ | None -> failwith "child parent pointer wrong")
        kids;
      let rec ordered = function
        | a :: (b :: _ as rest) ->
          if Label.compare a.nid b.nid >= 0 then failwith "sibling order violated";
          ordered rest
        | [ _ ] | [] -> ()
      in
      ordered kids;
      List.iter check_desc kids
    in
    (match t.root_desc with Some r -> check_desc r | None -> ());
    Ok ()
  with Failure m -> err "%s" m
