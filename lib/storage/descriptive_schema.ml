module Store = Xsm_xdm.Store
module Name = Xsm_xml.Name

type kind = Document | Element | Attribute | Text

let kind_of_store = function
  | Store.Kind.Document -> Document
  | Store.Kind.Element -> Element
  | Store.Kind.Attribute -> Attribute
  | Store.Kind.Text -> Text

let kind_to_string = function
  | Document -> "document"
  | Element -> "element"
  | Attribute -> "attribute"
  | Text -> "text"

type snode = {
  id : int;
  s_name : Name.t option;
  s_kind : kind;
  parent_id : int;  (* -1 for the root *)
  mutable child_ids : int list;  (* in creation order *)
}

type t = { mutable nodes : snode array; mutable size : int }

let get t i = t.nodes.(i)

let add t node =
  if t.size = Array.length t.nodes then begin
    let bigger = Array.make (max 16 (t.size * 2)) node in
    Array.blit t.nodes 0 bigger 0 t.size;
    t.nodes <- bigger
  end;
  t.nodes.(t.size) <- node;
  t.size <- t.size + 1;
  node

let create () =
  let t = { nodes = [||]; size = 0 } in
  ignore (add t { id = 0; s_name = None; s_kind = Document; parent_id = -1; child_ids = [] });
  t

let root t = get t 0

let matches sn ~name kind =
  sn.s_kind = kind && Option.equal Name.equal sn.s_name name

let find t parent ~name kind =
  List.find_map
    (fun cid ->
      let c = get t cid in
      if matches c ~name kind then Some c else None)
    parent.child_ids

let find_or_add t parent ~name kind =
  match find t parent ~name kind with
  | Some c -> c
  | None ->
    let node =
      add t { id = t.size; s_name = name; s_kind = kind; parent_id = parent.id; child_ids = [] }
    in
    parent.child_ids <- parent.child_ids @ [ node.id ];
    node

let of_tree store docnode =
  let t = create () in
  let mapping = Hashtbl.create 256 in
  let rec go node sn =
    Hashtbl.replace mapping (Store.node_id node) sn.id;
    List.iter
      (fun c ->
        let csn =
          find_or_add t sn
            ~name:(Store.node_name store c)
            (kind_of_store (Store.kind store c))
        in
        go c csn)
      (Store.attributes store node @ Store.children store node)
  in
  (match Store.kind store docnode with
  | Store.Kind.Document -> go docnode (root t)
  | Store.Kind.Element ->
    (* allow labelling a bare element tree: hang it under the document
       schema node *)
    let sn =
      find_or_add t (root t) ~name:(Store.node_name store docnode) Element
    in
    go docnode sn
  | Store.Kind.Attribute | Store.Kind.Text ->
    invalid_arg "Descriptive_schema.of_tree: not a tree root");
  (t, fun id -> get t (Hashtbl.find mapping id))

let name sn = sn.s_name
let kind sn = sn.s_kind
let parent t sn = if sn.parent_id < 0 then None else Some (get t sn.parent_id)

let by_id t i =
  if i < 0 || i >= t.size then invalid_arg (Printf.sprintf "Descriptive_schema.by_id: %d" i);
  get t i
let children t sn = List.map (get t) sn.child_ids
let snode_id sn = sn.id
let equal_snode a b = a.id = b.id
let node_count t = t.size

let label sn =
  match sn.s_kind, sn.s_name with
  | Document, _ -> "/"
  | Text, _ -> "#text"
  | Attribute, Some n -> "@" ^ Name.to_string n
  | Element, Some n -> Name.to_string n
  | (Attribute | Element), None -> "?"

let paths t =
  let rec path_of sn =
    match parent t sn with
    | None -> ""
    | Some p -> path_of p ^ "/" ^ label sn
  in
  let rec collect sn acc =
    let acc = if sn.parent_id < 0 then acc else path_of sn :: acc in
    List.fold_left (fun acc c -> collect c acc) acc (children t sn)
  in
  List.rev (collect (root t) [])

let pp ppf t =
  let rec go indent sn =
    Format.fprintf ppf "%s%s@." indent (label sn);
    List.iter (go (indent ^ "  ")) (children t sn)
  in
  go "" (root t)
