(** Data blocks and node descriptors (§9.2).

    Every schema node owns a bidirectional list of blocks; blocks hold
    node descriptors (the physical representation of nodes).  The
    ordering discipline is the paper's: descriptors in block [i]
    precede descriptors in block [j > i] in document order, while
    inside one block order is reconstructed through the short
    next-in-block / previous-in-block pointers.

    A descriptor carries the §9.2 fields: parent, left- and
    right-sibling pointers, the in-block chain, the [nid] numbering
    label of §9.3, and — for nodes that can have children — a pointer
    to the {e first child per child schema node} rather than to every
    child (the decision Example 8 illustrates with [library] holding
    two child pointers: first [book], first [paper]).

    "It is easy to show that the data stored in the node descriptor
    together with the data stored in the corresponding schema node are
    sufficient to produce the result of any accessor" — the accessor
    functions here are that demonstration, and test E9 checks them
    against the reference [Xsm_xdm] accessors. *)

type t
type desc

val of_store :
  ?block_capacity:int -> Xsm_xdm.Store.t -> Xsm_xdm.Store.node -> t
(** Build the physical representation of a loaded document tree
    (default block capacity: 64 descriptors). *)

val create_empty : ?block_capacity:int -> unit -> t
(** An empty storage holding just the document-root descriptor
    (labelled {!Xsm_numbering.Sedna_label.root}) — the starting point
    of a streaming build via the [append_*] functions below. *)

(** {1 Streaming document-order appends}

    The bulk-load fast path: the caller walks the document in order,
    supplies each node's append label
    ({!Xsm_numbering.Sedna_label.append_child}) as [nid] and the
    current last child as [after] ([None] for a first child).  Every
    placement lands in the tail block of its schema node's list — no
    scan, no split, O(1) per node. *)

val append_element :
  t -> parent:desc -> after:desc option -> Xsm_xml.Name.t -> Xsm_numbering.Sedna_label.t -> desc

val append_text :
  t -> parent:desc -> after:desc option -> string -> Xsm_numbering.Sedna_label.t -> desc

val append_attribute :
  t ->
  parent:desc ->
  after:desc option ->
  Xsm_xml.Name.t ->
  string ->
  Xsm_numbering.Sedna_label.t ->
  desc

val schema : t -> Descriptive_schema.t
val root : t -> desc
val descriptor_of_node : t -> Xsm_xdm.Store.node -> desc option
(** The descriptor a store node was materialized as ([of_store] input
    nodes only). *)

(** {1 Accessors reconstructed from descriptors} *)

val snode : desc -> Descriptive_schema.snode
val node_kind : desc -> string
val node_name : desc -> Xsm_xml.Name.t option
val parent : desc -> desc option
val children : t -> desc -> desc list
(** Child elements and texts, in document order, reconstructed from
    the first-child-by-schema pointers and the sibling chains. *)

val attributes : t -> desc -> desc list
val string_value : t -> desc -> string

val typed_value : t -> desc -> Xsm_datatypes.Value.t list
(** Descriptors store lexical values only, so the typed value is
    always [xdt:untypedAtomic] of the string value. *)

val nid : desc -> Xsm_numbering.Sedna_label.t

val desc_id : desc -> int
(** The descriptor's allocation-ordered identifier — stable identity
    for hashing, unrelated to document order. *)

val home_block_id : desc -> int option
(** Identifier of the block the descriptor lives in ([None] only for a
    detached descriptor).  Block ids are allocation-ordered and unique
    across the storage; used by {!Buffer_pool} to replay the page
    accesses of a traversal. *)

val left_sibling : desc -> desc option
val right_sibling : desc -> desc option

val first_child_by_schema : desc -> Descriptive_schema.snode -> desc option
(** Direct use of the per-schema first-child pointer — the fast path
    bench E8 measures for child-axis steps. *)

val descendants_by_snode : t -> Descriptive_schema.snode -> desc list
(** Every descriptor of one schema node, in document order, by
    scanning its block list — the access path XPath evaluation over
    the descriptive schema uses. *)

val to_element : t -> desc -> Xsm_xml.Tree.element
(** Serialize the subtree under an element descriptor back to
    syntactic XML — [g] of the §8 theorem, but computed from the
    physical representation.  Together with {!of_store} this shows the
    descriptor fields are lossless. *)

val to_document : t -> Xsm_xml.Tree.t
(** Serialize from the root descriptor. *)

(** {1 Updates} *)

val insert_element :
  t -> parent:desc -> after:desc option -> Xsm_xml.Name.t -> desc * int
(** Insert a new empty element under [parent], after sibling [after]
    (or first).  Returns the new descriptor and the number of
    descriptors moved by a block split (0 when the block had room). *)

val insert_text : t -> parent:desc -> after:desc option -> string -> desc * int
val insert_attribute : t -> parent:desc -> Xsm_xml.Name.t -> string -> desc * int
val delete : t -> desc -> unit
(** Unlink a leaf descriptor.  [Invalid_argument] if it has children. *)

val set_content : t -> desc -> string -> unit
(** Replace a text or attribute descriptor's lexical value. *)

val bind_node : t -> Xsm_xdm.Store.node -> desc -> unit
(** Record that a store node is materialized as the given descriptor
    (extends the mapping {!descriptor_of_node} consults) — used when
    mirroring store-level updates into the physical representation. *)

(** {1 Disk paging}

    With a pager attached, blocks live in a bounded buffer pool over a
    {!Xsm_pager.Page_file}: descriptor {e values} page in and out
    (the pointer skeleton stays resident), every accessor above counts
    as a block access, and structural updates mark blocks dirty for
    WAL-ordered write-back.  Without one, everything above behaves
    exactly as before — paging is strictly opt-in. *)

val attach_pager :
  ?wal:Xsm_pager.Pager.wal_hook ->
  t ->
  capacity:int ->
  Xsm_pager.Page_file.t ->
  Xsm_pager.Pager.t
(** Page this storage through a pool of [capacity] blocks over a fresh
    page file.  Existing blocks enter the pool resident and dirty.
    [Invalid_argument] if a pager is already attached. *)

val pager : t -> Xsm_pager.Pager.t option

val set_lsn_source : t -> (unit -> int) -> unit
(** The WAL position stamped on dirty blocks.  Bulk load passes
    [records + 1] (the subtree record that will cover the appends —
    making its blocks unstealable until it lands); the update path
    passes the current record count. *)

val checkpoint : t -> lsn:int -> unit
(** Flush every dirty block and persist the storage metadata (schema,
    block-list orders, counters): after this the page file alone
    reconstructs the store.  [Invalid_argument] without a pager. *)

val of_page_file :
  ?wal:Xsm_pager.Pager.wal_hook -> capacity:int -> Xsm_pager.Page_file.t -> t
(** Reopen a cleanly checkpointed page file: rebuild the descriptor
    skeleton from the block blobs (two passes — chains, then
    cross-block pointers), replay the descriptive schema, and start
    every block cold in a fresh pool.  Raises [Xsm_pager.Codec.Corrupt]
    when the file was not checkpointed or does not decode.  The
    node→descriptor mapping of {!descriptor_of_node} starts empty. *)

(** {1 Statistics and invariants} *)

val block_count : t -> int
val split_count : t -> int
val descriptor_count : t -> int
val blocks_of_snode : t -> Descriptive_schema.snode -> int

val check_integrity : t -> (unit, string) result
(** Verify the §9.2 invariants: per-snode block lists ordered by
    document order between blocks, in-block chains ordered, sibling
    chains consistent with parent pointers, first-child pointers
    pointing at the nid-least child of their schema node. *)
