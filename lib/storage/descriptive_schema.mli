(** The descriptive schema of §9.1 (a DataGuide, [13]).

    A tree over pairs [E = (name, node-type)] such that every path of
    the document has exactly one path in the descriptive schema and
    vice versa.  Built incrementally: loading a node finds or creates
    the schema node for its [(name, kind)] under its parent's schema
    node, which makes the node→schema-node mapping [f] of §9.1
    surjective by construction. *)

type t
(** A descriptive schema for one document tree. *)

type snode
(** A schema node. *)

type kind = Document | Element | Attribute | Text

val kind_of_store : Xsm_xdm.Store.Kind.t -> kind
val kind_to_string : kind -> string

val create : unit -> t
(** An empty descriptive schema with just a document schema node. *)

val root : t -> snode

val find_or_add : t -> snode -> name:Xsm_xml.Name.t option -> kind -> snode
(** The child schema node for [(name, kind)] under the given parent,
    created on first use. *)

val find : t -> snode -> name:Xsm_xml.Name.t option -> kind -> snode option

val of_tree : Xsm_xdm.Store.t -> Xsm_xdm.Store.node -> t * (int -> snode)
(** Build the descriptive schema of a loaded document and the mapping
    from node ids to schema nodes. *)

val name : snode -> Xsm_xml.Name.t option
val kind : snode -> kind
val parent : t -> snode -> snode option
val children : t -> snode -> snode list
val snode_id : snode -> int
val equal_snode : snode -> snode -> bool

val by_id : t -> int -> snode
(** The schema node with a given id ([Invalid_argument] out of
    range).  Ids are dense and creation-ordered, which is what lets a
    page-file reopen replay {!find_or_add} in id order and land every
    node on its original id. *)

val node_count : t -> int
(** Number of schema nodes — compared against document node count in
    bench E7. *)

val paths : t -> string list
(** Every root-to-node path, rendered like ["/library/book/title"]
    (attributes as ["@name"], text as ["#text"]). *)

val pp : Format.formatter -> t -> unit
(** The tree rendering used for Example 8. *)
