module Name = Xsm_xml.Name
module Store = Xsm_xdm.Store
module Simple_type = Xsm_datatypes.Simple_type
module Counter = Xsm_obs.Metrics.Counter
module Trace = Xsm_obs.Trace

let m_elements = Counter.make ~help:"element nodes validated" "validate.elements"
let m_errors = Counter.make ~help:"validation errors reported" "validate.errors"

let m_automaton_hits =
  Counter.make ~help:"content models served from the automata cache" "validate.automaton_cache_hits"

let m_automaton_compiles =
  Counter.make ~help:"content models determinized during validation" "validate.automaton_compiles"

type error = { path : string; message : string }

let pp_error ppf e = Format.fprintf ppf "%s: %s" e.path e.message
let error_to_string e = Format.asprintf "%a" pp_error e

let xsi_nil = Name.make ~prefix:"xsi" "nil"
let untyped_atomic_name = Name.make ~prefix:"xdt" "untypedAtomic"
let any_type_name = Name.make ~prefix:"xs" "anyType"

type ctx = {
  store : Store.t;
  schema : Ast.schema;
  mutable errors : error list;
  (* determinized content models are cached per group (physical
     identity); a static analyzer can seed the cache so validation
     never recompiles (the ?automata parameter of the entry points) *)
  automata : (Ast.group_def * Content_automaton.table) list ref;
}

let report ctx path fmt =
  Printf.ksprintf
    (fun message ->
      Counter.incr m_errors;
      ctx.errors <- { path; message } :: ctx.errors)
    fmt

let automaton_for ctx path (g : Ast.group_def) =
  let rec find = function
    | [] -> None
    | (g', a) :: rest -> if g' == g then Some a else find rest
  in
  match find !(ctx.automata) with
  | Some a ->
    Counter.incr m_automaton_hits;
    Some a
  | None -> (
    Counter.incr m_automaton_compiles;
    match Content_automaton.make g with
    | Ok a -> (
      match Content_automaton.compile a with
      | None ->
        report ctx path "content model violates Unique Particle Attribution";
        None
      | Some table ->
        ctx.automata := (g, table) :: !(ctx.automata);
        Some table)
    | Error e ->
      report ctx path "content model: %s" e;
      None)

let is_whitespace s =
  String.for_all (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') s

(* The type QName recorded by item 4. *)
let annotation_name (ty : Ast.type_ref) =
  match ty with
  | Ast.Type_name n -> n
  | Ast.Anonymous _ | Ast.Anonymous_simple _ -> any_type_name

(* ------------------------------------------------------------------ *)
(* Attributes (§6.2 item 5.3.1)                                        *)

let validate_attributes ctx path node (decls : Ast.attribute_decl list) =
  let attrs = Store.attributes ctx.store node in
  let named =
    List.filter_map
      (fun a ->
        match Store.node_name ctx.store a with
        | Some n when Name.equal n xsi_nil -> None (* instance mechanics, not data *)
        | Some n -> Some (n, a)
        | None -> None)
      attrs
  in
  (* every attribute present must be declared and allowed; required
     attributes must be present (the automorphism σ of item 5.3.1);
     absent attributes with a default value are materialized *)
  List.iter
    (fun (n, anode) ->
      match List.find_opt (fun (d : Ast.attribute_decl) -> Name.equal d.attr_name n) decls with
      | None -> report ctx path "undeclared attribute %s" (Name.to_string n)
      | Some { Ast.attr_use = Ast.Prohibited; _ } ->
        report ctx path "prohibited attribute %s" (Name.to_string n)
      | Some d -> (
        match Schema_check.resolve_simple ctx.schema d.attr_type with
        | Error e -> report ctx path "attribute %s: %s" (Name.to_string n) e
        | Ok st -> (
          let value = Store.string_value ctx.store anode in
          match Simple_type.validate st value with
          | Ok typed ->
            Store.set_type_name ctx.store anode (Some d.attr_type);
            Store.set_typed_value ctx.store anode typed
          | Error e -> report ctx path "attribute %s: %s" (Name.to_string n) e)))
    named;
  List.iter
    (fun (d : Ast.attribute_decl) ->
      let present = List.exists (fun (n, _) -> Name.equal n d.attr_name) named in
      match d.attr_use, d.attr_default, present with
      | Ast.Required, _, false ->
        report ctx path "missing declared attribute %s" (Name.to_string d.attr_name)
      | (Ast.Optional | Ast.Prohibited), Some dv, false when d.attr_use = Ast.Optional -> (
        (* materialize the default, typed *)
        match Schema_check.resolve_simple ctx.schema d.attr_type with
        | Error e -> report ctx path "attribute %s: %s" (Name.to_string d.attr_name) e
        | Ok st -> (
          match Simple_type.validate st dv with
          | Error e ->
            report ctx path "default for attribute %s: %s" (Name.to_string d.attr_name) e
          | Ok typed ->
            let anode =
              Store.new_attribute ctx.store ~type_name:d.attr_type ~typed_value:typed
                d.attr_name dv
            in
            Store.attach_attribute ctx.store node anode))
      | (Ast.Required | Ast.Optional | Ast.Prohibited), _, _ -> ())
    decls

(* ------------------------------------------------------------------ *)
(* Simple content (items 5.1.1 / 5.2)                                  *)

let validate_simple_text ctx path node (st : Simple_type.t) =
  let children = Store.children ctx.store node in
  let text_nodes, others =
    List.partition (fun c -> Store.kind ctx.store c = Store.Kind.Text) children
  in
  if others <> [] then
    report ctx path "element with simple type has element children";
  let value = Store.string_value ctx.store node in
  match Simple_type.validate st value with
  | Ok typed ->
    Store.set_typed_value ctx.store node typed;
    List.iter
      (fun t -> Store.set_type_name ctx.store t (Some untyped_atomic_name))
      text_nodes
  | Error e -> report ctx path "%s" e

(* ------------------------------------------------------------------ *)
(* Elements                                                            *)

let rec validate_element ctx path node (decl : Ast.element_decl) =
  Counter.incr m_elements;
  if !Trace.enabled && !Trace.detail then
    Trace.with_span
      ~attrs:[ ("decl", Name.to_string decl.elem_name) ]
      "validate.element"
      (fun () -> validate_element_inner ctx path node decl)
  else validate_element_inner ctx path node decl

and validate_element_inner ctx path node (decl : Ast.element_decl) =
  let name = Store.node_name ctx.store node in
  (match name with
  | Some n when Name.equal n decl.elem_name -> ()
  | Some n ->
    report ctx path "element %s where %s was declared" (Name.to_string n)
      (Name.to_string decl.elem_name)
  | None -> report ctx path "unnamed element node");
  Store.set_type_name ctx.store node (Some (annotation_name decl.elem_type));
  (* nil handling: item 6 *)
  let nil_requested =
    List.exists
      (fun a ->
        match Store.node_name ctx.store a with
        | Some n ->
          Name.equal n xsi_nil
          && (let v = Store.string_value ctx.store a in
              v = "true" || v = "1")
        | None -> false)
      (Store.attributes ctx.store node)
  in
  if nil_requested && not decl.nillable then
    report ctx path "xsi:nil on an element whose declaration has NillIndicator = false";
  let nilled = nil_requested && decl.nillable in
  Store.set_nilled ctx.store node nilled;
  if nilled then begin
    (* children(end) = (); attributes still validate per item 6.2/6.3 *)
    if Store.children ctx.store node <> [] then
      report ctx path "nilled element must be empty";
    match Schema_check.resolve ctx.schema decl.elem_type with
    | Ok (Schema_check.Resolved_complex (Ast.Simple_content { attributes; _ }))
    | Ok (Schema_check.Resolved_complex (Ast.Complex_content { attributes; _ })) ->
      validate_attributes ctx path node attributes
    | Ok (Schema_check.Resolved_simple _) -> validate_attributes ctx path node []
    | Error e -> report ctx path "%s" e
  end
  else begin
    match Schema_check.resolve ctx.schema decl.elem_type with
    | Error e -> report ctx path "%s" e
    | Ok (Schema_check.Resolved_simple st) ->
      validate_attributes ctx path node [];
      validate_simple_text ctx path node st
    | Ok (Schema_check.Resolved_complex (Ast.Simple_content { base; attributes })) -> (
      validate_attributes ctx path node attributes;
      match Schema_check.resolve_simple ctx.schema base with
      | Ok st -> validate_simple_text ctx path node st
      | Error e -> report ctx path "simple content base: %s" e)
    | Ok (Schema_check.Resolved_complex (Ast.Complex_content { mixed; content; attributes }))
      ->
      validate_attributes ctx path node attributes;
      validate_complex_children ctx path node ~mixed content
  end

and validate_complex_children ctx path node ~mixed content =
  let children = Store.children ctx.store node in
  (* partition, checking text discipline on the way *)
  let element_children =
    List.filter
      (fun c ->
        match Store.kind ctx.store c with
        | Store.Kind.Element -> true
        | Store.Kind.Text ->
          let s = Store.string_value ctx.store c in
          if mixed then
            Store.set_type_name ctx.store c (Some untyped_atomic_name)
          else if not (is_whitespace s) then
            report ctx path "text %S in element-only content" s;
          false
        | Store.Kind.Document | Store.Kind.Attribute ->
          report ctx path "impossible child node kind";
          false)
      children
  in
  (* no adjacent text nodes (item 5.4.2.2) *)
  let rec adjacent = function
    | a :: b :: rest ->
      (Store.kind ctx.store a = Store.Kind.Text && Store.kind ctx.store b = Store.Kind.Text)
      || adjacent (b :: rest)
    | [ _ ] | [] -> false
  in
  if mixed && adjacent children then report ctx path "adjacent text nodes";
  let names =
    List.map
      (fun c -> Option.value ~default:(Name.local "?") (Store.node_name ctx.store c))
      element_children
  in
  match content with
  | None ->
    (* empty content, items 5.4.1.1 / 5.4.1.2 *)
    if element_children <> [] then report ctx path "element children in empty content";
    if mixed && List.length children > 1 then
      report ctx path "mixed empty content allows at most one text node"
  | Some g when Ast.group_is_empty g ->
    if element_children <> [] then report ctx path "element children in empty content"
  | Some g -> (
    match automaton_for ctx path g with
    | None -> () (* error already reported *)
    | Some a -> (
      match Content_automaton.table_run a names with
      | None ->
        report ctx path "children (%s) do not match the content model"
          (String.concat ", " (List.map Name.to_string names))
      | Some decls ->
        List.iteri
          (fun i (child, d) ->
            let child_name =
              match Store.node_name ctx.store child with
              | Some n -> Name.to_string n
              | None -> "?"
            in
            let child_path = Printf.sprintf "%s/%s[%d]" path child_name (i + 1) in
            validate_element ctx child_path child d)
          (List.combine element_children decls)))

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let finish ctx = match ctx.errors with [] -> Ok () | es -> Error (List.rev es)

let make_ctx ?(automata = []) store schema =
  { store; schema; errors = []; automata = ref (List.rev automata) }

let validate_inner ?automata store node schema =
  let ctx = make_ctx ?automata store schema in
  (match Store.kind store node with
  | Store.Kind.Document -> (
    (* requirement 1–3: one element child carrying the root declaration *)
    match Store.children store node with
    | [ root ] when Store.kind store root = Store.Kind.Element ->
      validate_element ctx ("/" ^ Name.to_string schema.Ast.root.Ast.elem_name) root
        schema.Ast.root
    | [] -> report ctx "/" "document node has no element child"
    | _ -> report ctx "/" "document node must have exactly one element child")
  | Store.Kind.Element | Store.Kind.Attribute | Store.Kind.Text ->
    report ctx "/" "validation must start at a document node");
  finish ctx

let validate ?automata store node schema =
  Trace.with_span "validate.document" (fun () -> validate_inner ?automata store node schema)

let validate_element_node ?automata store node schema =
  let ctx = make_ctx ?automata store schema in
  (match Store.kind store node with
  | Store.Kind.Element ->
    validate_element ctx ("/" ^ Name.to_string schema.Ast.root.Ast.elem_name) node
      schema.Ast.root
  | Store.Kind.Document | Store.Kind.Attribute | Store.Kind.Text ->
    report ctx "/" "not an element node");
  finish ctx

let validate_document ?store ?automata doc schema =
  let store = match store with Some s -> s | None -> Store.create () in
  let dnode = Xsm_xdm.Convert.load store doc in
  match validate ?automata store dnode schema with
  | Ok () -> Ok (store, dnode)
  | Error es -> Error es

let is_valid doc schema = Result.is_ok (validate_document doc schema)
