module Name = Xsm_xml.Name
module Counter = Xsm_obs.Metrics.Counter

let m_runs = Counter.make ~help:"content models matched by backtracking" "validate.backtrack_runs"

let m_steps =
  Counter.make ~help:"backtracking steps taken (match attempts)" "validate.backtrack_steps"

(* Continuation-passing backtracking: [match_particle p word k] calls
   [k rest] for every prefix of [word] the particle can consume.  The
   continuation returns true to accept, false to ask for the next
   split. *)

let steps = ref 0

let rec match_group (g : Ast.group_def) word k =
  incr steps;
  let body w kk =
    match g.combination with
    | Ast.Sequence -> match_all g.particles w kk
    | Ast.Choice -> match_any g.particles w kk
    | Ast.All -> match_interleave g.particles w kk
  in
  match_repeated body g.group_repetition word k

and match_all particles word k =
  match particles with
  | [] -> k word
  | p :: rest -> match_particle p word (fun w -> match_all rest w k)

and match_any particles word k =
  List.exists (fun p -> match_particle p word k) particles

(* interleave: pick any remaining particle to consume a prefix, or
   finish when every remaining particle can match the empty word *)
and match_interleave particles word k =
  incr steps;
  let consumed =
    List.exists
      (fun p ->
        let others = List.filter (fun q -> q != p) particles in
        match_particle p word (fun rest -> rest != word && match_interleave others rest k))
      particles
  in
  consumed
  || (List.for_all (fun p -> match_particle p word (fun rest -> rest == word)) particles
     && k word)

and match_particle p word k =
  incr steps;
  match p with
  | Ast.Element_particle e ->
    let consume_one w kk =
      match w with
      | n :: rest when Name.equal n e.Ast.elem_name -> kk rest
      | _ -> false
    in
    match_repeated consume_one e.repetition word k
  | Ast.Group_particle g -> match_group g word k

(* Try between min and max copies of [one] (greedy first, then fewer —
   the exists over both orders is what makes this a backtracker). *)
and match_repeated one (r : Ast.repetition) word k =
  let rec from_count i word k =
    incr steps;
    let can_stop = i >= r.Ast.min_occurs in
    let may_continue =
      match r.Ast.max_occurs with None -> true | Some m -> i < m
    in
    (* [rest == word] means the body consumed nothing: iterating again
       cannot make progress and would loop on nullable bodies.  A
       nullable body also satisfies any remaining mandatory copies. *)
    let body_matches_empty () = one word (fun rest -> rest == word) in
    (may_continue && one word (fun rest -> rest != word && from_count (i + 1) rest k))
    || ((can_stop || (may_continue && body_matches_empty ())) && k word)
  in
  from_count 0 word k

let matches g word =
  Counter.incr m_runs;
  steps := 0;
  let ok = match_group g word (fun rest -> rest = []) in
  Counter.add m_steps !steps;
  ok

let matches_counting g word =
  Counter.incr m_runs;
  steps := 0;
  let ok = match_group g word (fun rest -> rest = []) in
  Counter.add m_steps !steps;
  (ok, !steps)
