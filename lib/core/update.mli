(** A small data-manipulation layer — the direction §11 announces
    ("the presented semantics may help in defining a simple semantics
    of a data manipulation language").

    Operations address nodes directly (obtain them with the query
    engine or the accessors) and mutate the state algebra — each
    successful application is a database state transition in the §6.1
    sense.  [apply_validated] makes the transition schema-safe: the
    operation is applied, the document is re-validated against the
    schema, and on failure the inverse operation restores the previous
    state, so an invalid transition is never observable. *)

type op =
  | Insert_element of {
      parent : Xsm_xdm.Store.node;
      before : Xsm_xdm.Store.node option;  (** [None] = append last *)
      tree : Xsm_xml.Tree.element;  (** the subtree to insert *)
    }
  | Insert_text of {
      parent : Xsm_xdm.Store.node;
      before : Xsm_xdm.Store.node option;
      text : string;
    }
  | Delete of Xsm_xdm.Store.node  (** element or text child *)
  | Replace_content of { node : Xsm_xdm.Store.node; value : string }
      (** new content for a text or attribute node *)
  | Set_attribute of {
      element : Xsm_xdm.Store.node;
      name : Xsm_xml.Name.t;
      value : string;  (** replaces, or attaches when absent *)
    }

(** A structured record of applied state transitions, for consumers
    that maintain derived structures (the index planner) differentially
    instead of rebuilding them.  Entries are appended in application
    order; replaying a drained batch in order against the final store
    state reconstructs exactly what changed — an insertion names the
    subtree root (its content is read from the store at replay time),
    a deletion names the unlinked root, a content change names the
    text or attribute node whose own value was replaced.  Undo records
    its mirror entry, so a validated-and-rolled-back operation leaves
    a journal that still replays to the truth. *)
module Journal : sig
  type entry =
    | Inserted of Xsm_xdm.Store.node  (** a freshly linked subtree root *)
    | Deleted of Xsm_xdm.Store.node  (** a just-unlinked subtree root *)
    | Content of Xsm_xdm.Store.node  (** own content replaced *)

  type t

  type cursor
  (** One consumer's read position.  Several consumers — the index
      planner, the WAL writer, recovery's label maintainer — can
      subscribe to the same journal and each sees every entry, in
      order, at its own pace; nobody steals anybody's entries.
      Entries that every active cursor has passed are compacted
      away. *)

  val create : unit -> t

  val total : t -> int
  (** Entries recorded over the journal's lifetime. *)

  val subscribe : t -> cursor
  (** A new cursor positioned at the oldest retained entry (for a
      fresh journal: the beginning). *)

  val unsubscribe : t -> cursor -> unit
  (** Deactivate a cursor so it no longer pins entries; reading from
      it afterwards yields nothing. *)

  val pending : t -> cursor -> int
  val peek : t -> cursor -> entry list
  (** The entries after the cursor, in application order, without
      advancing it. *)

  val read : t -> cursor -> entry list
  (** Like {!peek}, but advances the cursor past what it returned. *)

  val iter : t -> cursor -> (entry -> unit) -> unit
  (** [read] delivered entry-by-entry. *)

  (** {2 Legacy single-consumer view}

      [length]/[drain] operate a default cursor created on their first
      use — existing callers that treated the journal as a queue keep
      working unchanged, and coexist with subscribers. *)

  val length : t -> int
  (** Entries recorded and not yet drained. *)

  val drain : t -> entry list
  (** The pending entries in application order; empties the journal. *)
end

type applied
(** Evidence of an applied operation, holding what is needed to undo
    it. *)

val apply : ?journal:Journal.t -> Xsm_xdm.Store.t -> op -> (applied, string) result
(** Apply one operation (no validation).  Structural errors (wrong
    node kinds, foreign anchors) are reported, not raised.  A
    successful application is recorded in the journal when one is
    given. *)

val undo : ?journal:Journal.t -> Xsm_xdm.Store.t -> applied -> unit
(** Revert an applied operation.  Must be called on the most recent
    application first (stack discipline). *)

val apply_validated :
  ?journal:Journal.t ->
  Xsm_xdm.Store.t ->
  Xsm_xdm.Store.node ->
  Ast.schema ->
  op ->
  (unit, string list) result
(** Apply, re-validate the document rooted at the given document node,
    and roll back if the new state is not an S-tree. *)
