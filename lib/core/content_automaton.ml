module Name = Xsm_xml.Name

let m_table_runs =
  Xsm_obs.Metrics.Counter.make ~help:"content models matched via the determinized table"
    "validate.table_runs"

(* Regular expression over positions.  Each position carries the
   element declaration of the occurrence. *)
type re =
  | Eps
  | Pos of int
  | Cat of re * re
  | Alt of re * re
  | Star of re
  | Opt of re

exception Too_large of int

type glushkov = {
  decls : Ast.element_decl array;  (* position -> declaration *)
  names : Name.t array;  (* position -> element name (cache) *)
  nullable : bool;
  first : int list;
  follow : int list array;  (* position -> positions that may follow *)
  last : bool array;  (* position -> may end the word *)
  deterministic : bool;
}

(* the footnote-2 interleave ("all") groups: element particles only,
   each at most once, in any order — a bitmask matcher instead of a
   position automaton (whose expansion would be factorial) *)
type interleave = {
  i_decls : Ast.element_decl array;
  i_names : Name.t array;
  i_required : bool array;  (* min_occurs = 1 *)
  i_group_optional : bool;  (* the whole group may be absent *)
  i_deterministic : bool;  (* element names pairwise distinct *)
}

type t = Glushkov of glushkov | Interleave of interleave

(* Build the position regex for a group.  [fresh d] allocates a
   position for declaration [d].  Bounded repetitions are expanded and
   every expanded copy rebuilds its body with fresh positions, so the
   result really is a position regex (every [Pos] occurs once). *)
let rec re_of_group ~fresh (g : Ast.group_def) =
  let copy () =
    let combine =
      match g.combination with
      | Ast.Sequence -> fun a b -> Cat (a, b)
      | Ast.Choice -> fun a b -> Alt (a, b)
      | Ast.All -> invalid_arg "an all group may not be nested inside another group"
    in
    match g.particles with
    | [] -> Eps
    | p :: rest ->
      List.fold_left
        (fun acc q -> combine acc (re_of_particle ~fresh q))
        (re_of_particle ~fresh p) rest
  in
  repeat_with ~copy g.group_repetition

and re_of_particle ~fresh = function
  | Ast.Element_particle e ->
    repeat_with ~copy:(fun () -> Pos (fresh e)) e.repetition
  | Ast.Group_particle g -> re_of_group ~fresh g

and repeat_with ~copy (r : Ast.repetition) =
  if not (Ast.repetition_valid r) then invalid_arg "invalid repetition factor";
  match r.min_occurs, r.max_occurs with
  | 0, Some 0 -> Eps
  | 1, Some 1 -> copy ()
  | 0, None -> Star (copy ())
  | min, max ->
    let mandatory = List.init min (fun _ -> copy ()) in
    let head =
      match mandatory with
      | [] -> Eps
      | x :: rest -> List.fold_left (fun acc y -> Cat (acc, y)) x rest
    in
    (match max with
    | None -> Cat (head, Star (copy ()))
    | Some m ->
      (* (x (x (x)?)?)? nested optionals for the m - min optional copies *)
      let rec optional k = if k = 0 then Eps else Opt (Cat (copy (), optional (k - 1))) in
      let tail = optional (m - min) in
      if head = Eps then tail else if tail = Eps then head else Cat (head, tail))

(* Glushkov sets *)
let rec nullable = function
  | Eps -> true
  | Pos _ -> false
  | Cat (a, b) -> nullable a && nullable b
  | Alt (a, b) -> nullable a || nullable b
  | Star _ | Opt _ -> true

let rec first = function
  | Eps -> []
  | Pos p -> [ p ]
  | Cat (a, b) -> if nullable a then first a @ first b else first a
  | Alt (a, b) -> first a @ first b
  | Star a | Opt a -> first a

let rec last = function
  | Eps -> []
  | Pos p -> [ p ]
  | Cat (a, b) -> if nullable b then last a @ last b else last b
  | Alt (a, b) -> last a @ last b
  | Star a | Opt a -> last a

let rec fill_follow follow = function
  | Eps | Pos _ -> ()
  | Cat (a, b) ->
    fill_follow follow a;
    fill_follow follow b;
    let fb = first b in
    List.iter (fun p -> follow.(p) <- fb @ follow.(p)) (last a)
  | Alt (a, b) ->
    fill_follow follow a;
    fill_follow follow b
  | Star a ->
    fill_follow follow a;
    let fa = first a in
    List.iter (fun p -> follow.(p) <- fa @ follow.(p)) (last a)
  | Opt a -> fill_follow follow a

let dedup_sorted l = List.sort_uniq compare l

let deterministic_set names positions =
  (* no two distinct positions carry the same name *)
  let uniq = dedup_sorted positions in
  let sorted = List.sort (fun a b -> Name.compare names.(a) names.(b)) uniq in
  let rec ok = function
    | a :: (b :: _ as rest) ->
      if Name.equal names.(a) names.(b) then false else ok rest
    | [ _ ] | [] -> true
  in
  ok sorted

let make_interleave (g : Ast.group_def) =
  let decls =
    List.map
      (function
        | Ast.Element_particle e -> e
        | Ast.Group_particle _ ->
          invalid_arg "an all group contains element declarations only")
      g.Ast.particles
  in
  List.iter
    (fun (e : Ast.element_decl) ->
      if not (Ast.repetition_valid e.repetition) then invalid_arg "invalid repetition factor";
      match e.repetition.Ast.max_occurs with
      | Some m when m <= 1 -> ()
      | Some _ | None ->
        invalid_arg "elements of an all group may occur at most once")
    decls;
  (match g.Ast.group_repetition with
  | { Ast.min_occurs = 0 | 1; max_occurs = Some 1 } -> ()
  | _ -> invalid_arg "an all group itself occurs at most once");
  let arr = Array.of_list decls in
  let names = Array.map (fun (d : Ast.element_decl) -> d.Ast.elem_name) arr in
  let sorted = List.sort Name.compare (Array.to_list names) in
  let rec distinct = function
    | a :: (b :: _ as rest) -> (not (Name.equal a b)) && distinct rest
    | [ _ ] | [] -> true
  in
  {
    i_decls = arr;
    i_names = names;
    i_required = Array.map (fun (d : Ast.element_decl) -> d.Ast.repetition.Ast.min_occurs >= 1) arr;
    i_group_optional = g.Ast.group_repetition.Ast.min_occurs = 0;
    i_deterministic = distinct sorted;
  }

let make ?(max_positions = 20_000) (g : Ast.group_def) =
  if g.Ast.combination = Ast.All then
    match make_interleave g with
    | m -> Ok (Interleave m)
    | exception Invalid_argument e -> Error e
  else begin
  let decls = ref [] and count = ref 0 in
  let fresh d =
    if !count >= max_positions then raise (Too_large !count);
    decls := d :: !decls;
    incr count;
    !count - 1
  in
  match re_of_group ~fresh g with
  | exception Too_large n -> Error (Printf.sprintf "content model too large (%d positions)" n)
  | exception Invalid_argument m -> Error m
  | re ->
    let n = !count in
    let decls = Array.of_list (List.rev !decls) in
    let names = Array.map (fun (d : Ast.element_decl) -> d.Ast.elem_name) decls in
    let follow = Array.make n [] in
    fill_follow follow re;
    let follow = Array.map dedup_sorted follow in
    let first_set = dedup_sorted (first re) in
    let last_arr = Array.make n false in
    List.iter (fun p -> last_arr.(p) <- true) (last re);
    let deterministic =
      deterministic_set names first_set
      && Array.for_all (fun f -> deterministic_set names f) follow
    in
    Ok
      (Glushkov
         {
           decls;
           names;
           nullable = nullable re;
           first = first_set;
           follow;
           last = last_arr;
           deterministic;
         })
  end

let position_count = function
  | Glushkov a -> Array.length a.decls
  | Interleave m -> Array.length m.i_decls

let is_deterministic = function
  | Glushkov a -> a.deterministic
  | Interleave m -> m.i_deterministic

let accepts_empty = function
  | Glushkov a -> a.nullable
  | Interleave m ->
    m.i_group_optional || Array.for_all not m.i_required

let step a current name =
  let targets = match current with None -> a.first | Some p -> a.follow.(p) in
  List.filter (fun p -> Name.equal a.names.(p) name) targets

(* interleave run: attribute each name to its (single) slot *)
let interleave_run m word =
  let n = Array.length m.i_decls in
  let used = Array.make n false in
  let rec go acc = function
    | [] ->
      let complete =
        Array.for_all Fun.id
          (Array.init n (fun i -> used.(i) || not m.i_required.(i)))
      in
      let empty_ok = acc = [] && m.i_group_optional in
      if complete || empty_ok then Some (List.rev acc) else None
    | name :: rest -> (
      let slot = ref (-1) in
      Array.iteri (fun i nm -> if !slot < 0 && Name.equal nm name && not used.(i) then slot := i) m.i_names;
      match !slot with
      | -1 -> None
      | i ->
        used.(i) <- true;
        go (m.i_decls.(i) :: acc) rest)
  in
  go [] word

let matches_glushkov a word =
  (* set simulation: states are Some position / None (initial) *)
  let rec go states word =
    match word with
    | [] -> (
      match states with
      | `Initial -> a.nullable
      | `Set ps -> List.exists (fun p -> a.last.(p)) ps)
    | name :: rest ->
      let nexts =
        match states with
        | `Initial -> step a None name
        | `Set ps -> dedup_sorted (List.concat_map (fun p -> step a (Some p) name) ps)
      in
      if nexts = [] then false else go (`Set nexts) rest
  in
  go `Initial word

let matches t word =
  match t with
  | Glushkov a -> matches_glushkov a word
  | Interleave m -> interleave_run m word <> None

let run_glushkov a word =
  if not a.deterministic then invalid_arg "Content_automaton.run: automaton is not deterministic";
  let rec go current acc = function
    | [] ->
      let accepted = match current with None -> a.nullable | Some p -> a.last.(p) in
      if accepted then Some (List.rev acc) else None
    | name :: rest -> (
      match step a current name with
      | [ p ] -> go (Some p) (a.decls.(p) :: acc) rest
      | [] -> None
      | _ :: _ :: _ -> assert false (* determinism *))
  in
  go None [] word

let run t word =
  match t with
  | Glushkov a -> run_glushkov a word
  | Interleave m ->
    if not m.i_deterministic then
      invalid_arg "Content_automaton.run: automaton is not deterministic";
    interleave_run m word

(* ------------------------------------------------------------------ *)
(* UPA conflict witnesses                                              *)

type conflict = {
  conflict_name : Name.t;
  first_decl : Ast.element_decl;
  second_decl : Ast.element_decl;
  witness : Name.t list;
}

(* two distinct positions in [targets] carrying the same name *)
let clash_in names targets =
  let sorted =
    List.sort (fun a b -> Name.compare names.(a) names.(b)) (dedup_sorted targets)
  in
  let rec scan = function
    | a :: (b :: _ as rest) ->
      if Name.equal names.(a) names.(b) then Some (a, b) else scan rest
    | [ _ ] | [] -> None
  in
  scan sorted

let glushkov_conflict a =
  if a.deterministic then None
  else begin
    (* BFS over single positions (plus the initial state), tracking the
       reversed word that reaches each state; a conflict found at the
       earliest BFS layer yields a shortest witness.  Single-position
       exploration suffices: the clash is defined on first/follow sets,
       which are per-position. *)
    let n = Array.length a.decls in
    let visited = Array.make n false in
    let queue = Queue.create () in
    let found = ref None in
    let try_state targets word_rev =
      match !found with
      | Some _ -> ()
      | None -> (
        match clash_in a.names targets with
        | Some (p, q) ->
          found :=
            Some
              {
                conflict_name = a.names.(p);
                first_decl = a.decls.(p);
                second_decl = a.decls.(q);
                witness = List.rev (a.names.(p) :: word_rev);
              }
        | None ->
          List.iter
            (fun p ->
              if not visited.(p) then begin
                visited.(p) <- true;
                Queue.add (p, a.names.(p) :: word_rev) queue
              end)
            targets)
    in
    try_state a.first [];
    while !found = None && not (Queue.is_empty queue) do
      let p, word_rev = Queue.pop queue in
      try_state a.follow.(p) word_rev
    done;
    !found
  end

let interleave_conflict m =
  if m.i_deterministic then None
  else begin
    let indexed = Array.to_list (Array.mapi (fun i n -> (i, n)) m.i_names) in
    let sorted = List.sort (fun (_, a) (_, b) -> Name.compare a b) indexed in
    let rec scan = function
      | (i, a) :: ((j, b) :: _ as rest) ->
        if Name.equal a b then Some (i, j) else scan rest
      | [ _ ] | [] -> None
    in
    match scan sorted with
    | None -> None
    | Some (i, j) ->
      Some
        {
          conflict_name = m.i_names.(i);
          first_decl = m.i_decls.(i);
          second_decl = m.i_decls.(j);
          witness = [ m.i_names.(i) ];
        }
  end

let upa_conflict = function
  | Glushkov a -> glushkov_conflict a
  | Interleave m -> interleave_conflict m

(* ------------------------------------------------------------------ *)
(* Determinization: compiled transition tables                         *)

(* For a deterministic automaton every first/follow set has pairwise
   distinct names, so each state's outgoing transitions collapse to a
   hash table keyed by name — one probe per child instead of a scan of
   the follow list. *)
type table =
  | T_glushkov of {
      t_decls : Ast.element_decl array;
      t_nullable : bool;
      t_last : bool array;
      t_initial : (Name.t, int) Hashtbl.t;
      t_next : (Name.t, int) Hashtbl.t array;  (* per position *)
    }
  | T_interleave of {
      t_slots : (Name.t, int) Hashtbl.t;  (* name -> slot index *)
      t_idecls : Ast.element_decl array;
      t_required : bool array;
      t_group_optional : bool;
    }

let table_of_targets names targets =
  let h = Hashtbl.create (max 4 (List.length targets)) in
  List.iter (fun p -> Hashtbl.replace h names.(p) p) targets;
  h

let compile t =
  if not (is_deterministic t) then None
  else
    match t with
    | Glushkov a ->
      Some
        (T_glushkov
           {
             t_decls = a.decls;
             t_nullable = a.nullable;
             t_last = a.last;
             t_initial = table_of_targets a.names a.first;
             t_next = Array.map (table_of_targets a.names) a.follow;
           })
    | Interleave m ->
      let slots = Hashtbl.create (max 4 (Array.length m.i_names)) in
      Array.iteri (fun i n -> Hashtbl.replace slots n i) m.i_names;
      Some
        (T_interleave
           {
             t_slots = slots;
             t_idecls = m.i_decls;
             t_required = m.i_required;
             t_group_optional = m.i_group_optional;
           })

let table_run table word =
  Xsm_obs.Metrics.Counter.incr m_table_runs;
  match table with
  | T_glushkov t ->
    let rec go current acc = function
      | [] ->
        let accepted =
          match current with None -> t.t_nullable | Some p -> t.t_last.(p)
        in
        if accepted then Some (List.rev acc) else None
      | name :: rest -> (
        let next =
          match current with
          | None -> Hashtbl.find_opt t.t_initial name
          | Some p -> Hashtbl.find_opt t.t_next.(p) name
        in
        match next with
        | None -> None
        | Some p -> go (Some p) (t.t_decls.(p) :: acc) rest)
    in
    go None [] word
  | T_interleave t ->
    let n = Array.length t.t_idecls in
    let used = Array.make n false in
    let rec go acc = function
      | [] ->
        let complete =
          Array.for_all Fun.id
            (Array.init n (fun i -> used.(i) || not t.t_required.(i)))
        in
        let empty_ok = acc = [] && t.t_group_optional in
        if complete || empty_ok then Some (List.rev acc) else None
      | name :: rest -> (
        match Hashtbl.find_opt t.t_slots name with
        | Some i when not used.(i) ->
          used.(i) <- true;
          go (t.t_idecls.(i) :: acc) rest
        | Some _ | None -> None)
    in
    go [] word

let table_matches table word = table_run table word <> None

(* ------------------------------------------------------------------ *)
(* Incremental runners: one child step at a time, for the streaming
   validator's frame stack.  A glushkov state is the current position;
   an interleave state is the used-slot set, updated in place (each
   frame owns its state exclusively). *)

type state = S_glushkov of int option | S_interleave of bool array * bool ref

let start_run = function
  | T_glushkov _ -> S_glushkov None
  | T_interleave t -> S_interleave (Array.make (Array.length t.t_idecls) false, ref false)

let step_run table state name =
  match table, state with
  | T_glushkov t, S_glushkov current -> (
    let next =
      match current with
      | None -> Hashtbl.find_opt t.t_initial name
      | Some p -> Hashtbl.find_opt t.t_next.(p) name
    in
    match next with
    | None -> None
    | Some p -> Some (S_glushkov (Some p), t.t_decls.(p)))
  | T_interleave t, S_interleave (used, any) -> (
    match Hashtbl.find_opt t.t_slots name with
    | Some i when not used.(i) ->
      used.(i) <- true;
      any := true;
      Some (state, t.t_idecls.(i))
    | Some _ | None -> None)
  | T_glushkov _, S_interleave _ | T_interleave _, S_glushkov _ ->
    invalid_arg "Content_automaton.step_run: state from a different table"

let run_accepting table state =
  match table, state with
  | T_glushkov t, S_glushkov current -> (
    match current with None -> t.t_nullable | Some p -> t.t_last.(p))
  | T_interleave t, S_interleave (used, any) ->
    let n = Array.length t.t_idecls in
    let complete =
      Array.for_all Fun.id (Array.init n (fun i -> used.(i) || not t.t_required.(i)))
    in
    complete || ((not !any) && t.t_group_optional)
  | T_glushkov _, S_interleave _ | T_interleave _, S_glushkov _ ->
    invalid_arg "Content_automaton.run_accepting: state from a different table"

(* The non-deterministic stepper: position-set simulation over the raw
   automaton, for content models that violate UPA.  The verdict is
   exact (language-equivalent to the backtracking matcher); the
   declaration attributed to each child is the leftmost matching
   position's — the backtracking matcher's first choice. *)
type nfa_state = N_initial | N_set of int list | N_interleave of bool array * bool ref

let nfa_start = function
  | Glushkov _ -> N_initial
  | Interleave m -> N_interleave (Array.make (Array.length m.i_decls) false, ref false)

let nfa_step t state name =
  match t, state with
  | Glushkov a, (N_initial | N_set _) -> (
    let nexts =
      match state with
      | N_initial -> step a None name
      | N_set ps -> dedup_sorted (List.concat_map (fun p -> step a (Some p) name) ps)
      | N_interleave _ -> assert false
    in
    match nexts with
    | [] -> None
    | leftmost :: _ -> Some (N_set nexts, a.decls.(leftmost)))
  | Interleave m, N_interleave (used, any) -> (
    let slot = ref (-1) in
    Array.iteri
      (fun i nm -> if !slot < 0 && Name.equal nm name && not used.(i) then slot := i)
      m.i_names;
    match !slot with
    | -1 -> None
    | i ->
      used.(i) <- true;
      any := true;
      Some (state, m.i_decls.(i)))
  | Glushkov _, N_interleave _ | Interleave _, (N_initial | N_set _) ->
    invalid_arg "Content_automaton.nfa_step: state from a different automaton"

let nfa_accepting t state =
  match t, state with
  | Glushkov a, N_initial -> a.nullable
  | Glushkov a, N_set ps -> List.exists (fun p -> a.last.(p)) ps
  | Interleave m, N_interleave (used, any) ->
    let n = Array.length m.i_decls in
    let complete =
      Array.for_all Fun.id (Array.init n (fun i -> used.(i) || not m.i_required.(i)))
    in
    complete || ((not !any) && m.i_group_optional)
  | Glushkov _, N_interleave _ | Interleave _, (N_initial | N_set _) ->
    invalid_arg "Content_automaton.nfa_accepting: state from a different automaton"

(* ------------------------------------------------------------------ *)
(* Language equivalence                                                *)

(* a uniform DFA view: states are canonical keys, transitions computed
   on the fly *)
type dfa_view = {
  v_start : string;
  v_step : string -> Name.t -> string option;  (* None = dead *)
  v_accept : string -> bool;
  v_alphabet : Name.t list;
}

let glushkov_view a =
  (* state key: sorted position list rendered as a string; "I" = initial *)
  let key = function
    | `Initial -> "I"
    | `Set ps -> String.concat "," (List.map string_of_int ps)
  in
  let parse k =
    if k = "I" then `Initial
    else `Set (List.map int_of_string (String.split_on_char ',' k))
  in
  let step_key k name =
    let nexts =
      match parse k with
      | `Initial -> step a None name
      | `Set ps -> dedup_sorted (List.concat_map (fun p -> step a (Some p) name) ps)
    in
    match nexts with [] -> None | ps -> Some (key (`Set ps))
  in
  let accept k =
    match parse k with
    | `Initial -> a.nullable
    | `Set ps -> List.exists (fun p -> a.last.(p)) ps
  in
  {
    v_start = "I";
    v_step = step_key;
    v_accept = accept;
    v_alphabet = List.sort_uniq Name.compare (Array.to_list a.names);
  }

let interleave_view m =
  (* state key: sorted list of used slot indices *)
  let key used = String.concat "," (List.map string_of_int used) in
  let parse k = if k = "" then [] else List.map int_of_string (String.split_on_char ',' k) in
  let step_key k name =
    let used = parse k in
    let slot = ref (-1) in
    Array.iteri
      (fun i nm -> if !slot < 0 && Name.equal nm name && not (List.mem i used) then slot := i)
      m.i_names;
    if !slot < 0 then None else Some (key (List.sort compare (!slot :: used)))
  in
  let accept k =
    let used = parse k in
    let complete =
      Array.for_all Fun.id
        (Array.init (Array.length m.i_decls) (fun i ->
             List.mem i used || not m.i_required.(i)))
    in
    complete || (used = [] && m.i_group_optional)
  in
  {
    v_start = "";
    v_step = step_key;
    v_accept = accept;
    v_alphabet = List.sort_uniq Name.compare (Array.to_list m.i_names);
  }

let view = function Glushkov a -> glushkov_view a | Interleave m -> interleave_view m

let equivalent t1 t2 =
  let v1 = view t1 and v2 = view t2 in
  let alphabet = List.sort_uniq Name.compare (v1.v_alphabet @ v2.v_alphabet) in
  (* BFS over pairs; "dead" is represented by None and is non-accepting *)
  let visited = Hashtbl.create 64 in
  let queue = Queue.create () in
  Queue.add (Some v1.v_start, Some v2.v_start) queue;
  let ok = ref true in
  while !ok && not (Queue.is_empty queue) do
    let s1, s2 = Queue.pop queue in
    let id =
      (match s1 with None -> "#" | Some k -> k)
      ^ "|"
      ^ match s2 with None -> "#" | Some k -> k
    in
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.add visited id ();
      let a1 = match s1 with None -> false | Some k -> v1.v_accept k in
      let a2 = match s2 with None -> false | Some k -> v2.v_accept k in
      if a1 <> a2 then ok := false
      else
        List.iter
          (fun name ->
            let n1 = Option.bind s1 (fun k -> v1.v_step k name) in
            let n2 = Option.bind s2 (fun k -> v2.v_step k name) in
            if n1 <> None || n2 <> None then Queue.add (n1, n2) queue)
          alphabet
    end
  done;
  !ok
