module Store = Xsm_xdm.Store
module Name = Xsm_xml.Name

type op =
  | Insert_element of {
      parent : Store.node;
      before : Store.node option;
      tree : Xsm_xml.Tree.element;
    }
  | Insert_text of { parent : Store.node; before : Store.node option; text : string }
  | Delete of Store.node
  | Replace_content of { node : Store.node; value : string }
  | Set_attribute of { element : Store.node; name : Name.t; value : string }

module Journal = struct
  type entry =
    | Inserted of Store.node  (* a freshly linked subtree root *)
    | Deleted of Store.node  (* a just-unlinked subtree root *)
    | Content of Store.node  (* own content of a text/attribute replaced *)

  (* A multi-subscriber log: entries live in a growable ring kept from
     [base] (the oldest entry any cursor still wants) to [base + len].
     Each consumer — the index planner, the WAL writer, the recovery
     label maintainer — owns a cursor and reads at its own pace;
     entries every cursor has passed are compacted away.  [drain] and
     [length] are the legacy single-consumer view: a default cursor
     created on first use. *)
  type cursor = { mutable pos : int; mutable active : bool }

  type t = {
    mutable buf : entry array;
    mutable base : int;  (* global index of buf.(0) *)
    mutable len : int;  (* entries currently buffered *)
    mutable cursors : cursor list;
    mutable default : cursor option;
  }

  let create () = { buf = [||]; base = 0; len = 0; cursors = []; default = None }
  let total t = t.base + t.len

  let record t e =
    if t.len = Array.length t.buf then begin
      let cap = max 16 (t.len * 2) in
      let bigger = Array.make cap e in
      Array.blit t.buf 0 bigger 0 t.len;
      t.buf <- bigger
    end;
    t.buf.(t.len) <- e;
    t.len <- t.len + 1

  let compact t =
    match List.filter (fun c -> c.active) t.cursors with
    | [] -> ()
    | live ->
      let m = List.fold_left (fun acc c -> min acc c.pos) max_int live in
      if m > t.base then begin
        let drop = m - t.base in
        t.len <- t.len - drop;
        if t.len > 0 then Array.blit t.buf drop t.buf 0 t.len;
        t.base <- m
      end

  let subscribe t =
    let c = { pos = t.base; active = true } in
    t.cursors <- c :: t.cursors;
    c

  let unsubscribe t c =
    c.active <- false;
    t.cursors <- List.filter (fun c' -> c' != c) t.cursors;
    compact t

  let pending t c = if c.active then total t - c.pos else 0

  let slice t ~from =
    List.init (total t - from) (fun i -> t.buf.(from - t.base + i))

  let peek t c = if c.active then slice t ~from:c.pos else []

  let read t c =
    if not c.active then []
    else begin
      let entries = slice t ~from:c.pos in
      c.pos <- total t;
      compact t;
      entries
    end

  let iter t c f = List.iter f (read t c)

  (* legacy single-consumer view *)
  let default_cursor t =
    match t.default with
    | Some c -> c
    | None ->
      let c = subscribe t in
      t.default <- Some c;
      c

  let length t = pending t (default_cursor t)
  let drain t = read t (default_cursor t)
end

type applied =
  | Inserted of { parent : Store.node; node : Store.node }
  | Deleted of {
      parent : Store.node;
      node : Store.node;
      next_sibling : Store.node option;  (* where to re-insert *)
    }
  | Content_replaced of { node : Store.node; old_value : string }
  | Attribute_set of {
      element : Store.node;
      attribute : Store.node;
      old_value : string option;  (* None = attribute was created *)
    }

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let guarded f = match f () with v -> Ok v | exception Invalid_argument m -> Error m

let insert_node store ~parent ~before node =
  match before with
  | None -> Store.append_child store parent node
  | Some anchor -> Store.insert_child_before store parent ~before:anchor node

let journal_of_applied = function
  | Inserted { node; _ } -> Journal.Inserted node
  | Deleted { node; _ } -> Journal.Deleted node
  | Content_replaced { node; _ } -> Journal.Content node
  | Attribute_set { attribute; old_value = None; _ } -> Journal.Inserted attribute
  | Attribute_set { attribute; old_value = Some _; _ } -> Journal.Content attribute

let apply_op store = function
  | Insert_element { parent; before; tree } ->
    guarded (fun () ->
        let node = Xsm_xdm.Convert.load_element store tree in
        insert_node store ~parent ~before node;
        Inserted { parent; node })
  | Insert_text { parent; before; text } ->
    guarded (fun () ->
        let node = Store.new_text store text in
        insert_node store ~parent ~before node;
        Inserted { parent; node })
  | Delete node -> (
    match Store.parent store node with
    | None -> err "delete: node has no parent"
    | Some parent ->
      guarded (fun () ->
          let siblings = Store.children store parent in
          let rec next = function
            | a :: b :: _ when Store.equal_node a node -> Some b
            | _ :: rest -> next rest
            | [] -> None
          in
          let next_sibling = next siblings in
          Store.remove_child store parent node;
          Deleted { parent; node; next_sibling }))
  | Replace_content { node; value } ->
    guarded (fun () ->
        let old_value = Store.string_value store node in
        Store.set_content store node value;
        Content_replaced { node; old_value })
  | Set_attribute { element; name; value } -> (
    match Store.kind store element with
    | Store.Kind.Element -> (
      let existing =
        List.find_opt
          (fun a ->
            match Store.node_name store a with
            | Some n -> Name.equal n name
            | None -> false)
          (Store.attributes store element)
      in
      match existing with
      | Some attribute ->
        guarded (fun () ->
            let old_value = Some (Store.string_value store attribute) in
            Store.set_content store attribute value;
            Attribute_set { element; attribute; old_value })
      | None ->
        guarded (fun () ->
            let attribute = Store.new_attribute store name value in
            Store.attach_attribute store element attribute;
            Attribute_set { element; attribute; old_value = None }))
    | Store.Kind.Document | Store.Kind.Attribute | Store.Kind.Text ->
      err "set_attribute: target is not an element")

let apply ?journal store op =
  match apply_op store op with
  | Error _ as e -> e
  | Ok evidence ->
    (match journal with
    | None -> ()
    | Some j -> Journal.record j (journal_of_applied evidence));
    Ok evidence

let undo ?journal store applied =
  (match applied with
  | Inserted { parent; node } -> Store.remove_child store parent node
  | Deleted { parent; node; next_sibling } -> (
    match next_sibling with
    | Some anchor -> Store.insert_child_before store parent ~before:anchor node
    | None -> Store.append_child store parent node)
  | Content_replaced { node; old_value } -> Store.set_content store node old_value
  | Attribute_set { element; attribute; old_value } -> (
    match old_value with
    | Some v -> Store.set_content store attribute v
    | None -> Store.detach_attribute store element attribute));
  match journal with
  | None -> ()
  | Some j ->
    Journal.record j
      (match applied with
      | Inserted { node; _ } -> Journal.Deleted node
      | Deleted { node; _ } -> Journal.Inserted node
      | Content_replaced { node; _ } -> Journal.Content node
      | Attribute_set { attribute; old_value = None; _ } -> Journal.Deleted attribute
      | Attribute_set { attribute; old_value = Some _; _ } -> Journal.Content attribute)

let apply_validated ?journal store dnode schema op =
  match apply ?journal store op with
  | Error e -> Error [ e ]
  | Ok evidence -> (
    match Validator.validate store dnode schema with
    | Ok () -> Ok ()
    | Error es ->
      undo ?journal store evidence;
      Error (List.map Validator.error_to_string es))
