(** Schema well-formedness and type resolution (§3).

    The §3 requirement on type usage: every type [T] used in the
    schema satisfies [T ∈ dom(ctd)] or [T] is a (built-in or declared)
    simple type name or [T] is an anonymous definition.  Additional
    checks: repetition factors are sane, element names within one
    group are distinct (§2), simple-content bases are simple types,
    and every content model satisfies the Unique Particle Attribution
    constraint (checked via determinism of its Glushkov automaton).

    Diagnostics carry a {e structured} location — the path of QNames
    from a named type or the root element declaration down to the
    offending construct — so every front end ([xsm check], [xsm
    validate], [xsm analyze]) prints them uniformly. *)

(** One step of a location path, outermost first. *)
type segment =
  | In_type of Ast.Name.t  (** inside the named type definition *)
  | In_element of Ast.Name.t  (** inside the element declaration *)
  | In_attribute of Ast.Name.t  (** at the attribute declaration *)
  | In_group  (** inside an anonymous nested group *)

type location = segment list

val pp_location : Format.formatter -> location -> unit
(** Compact rendering: segments joined with [/], attributes prefixed
    with [@], nested groups as [(group)]; the empty path prints as
    [(schema)]. *)

val location_to_string : location -> string

type error = { loc : location; message : string }

val pp_error : Format.formatter -> error -> unit

type resolved =
  | Resolved_simple of Xsm_datatypes.Simple_type.t
  | Resolved_complex of Ast.complex_type

val resolve : Ast.schema -> Ast.type_ref -> (resolved, string) result
(** Resolve a type reference: named complex types first, then declared
    simple types, then built-ins. *)

val resolve_simple : Ast.schema -> Ast.Name.t -> (Xsm_datatypes.Simple_type.t, string) result
(** Resolve a name that must denote a simple type (attribute types,
    simple-content bases). *)

val check : Ast.schema -> (unit, error list) result
(** All well-formedness checks; returns every violation found. *)
