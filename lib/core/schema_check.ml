module Name = Xsm_xml.Name
module Simple_type = Xsm_datatypes.Simple_type
module Builtin = Xsm_datatypes.Builtin

type segment =
  | In_type of Name.t
  | In_element of Name.t
  | In_attribute of Name.t
  | In_group

type location = segment list

let pp_segment ppf = function
  | In_type n -> Name.pp ppf n
  | In_element n -> Name.pp ppf n
  | In_attribute n -> Format.fprintf ppf "@@%a" Name.pp n
  | In_group -> Format.pp_print_string ppf "(group)"

let pp_location ppf = function
  | [] -> Format.pp_print_string ppf "(schema)"
  | segs ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_char ppf '/')
      pp_segment ppf segs

let location_to_string loc = Format.asprintf "%a" pp_location loc

type error = { loc : location; message : string }

let pp_error ppf e = Format.fprintf ppf "%a: %s" pp_location e.loc e.message

type resolved =
  | Resolved_simple of Simple_type.t
  | Resolved_complex of Ast.complex_type

let find_named assoc name = List.find_map (fun (n, v) -> if Name.equal n name then Some v else None) assoc

let builtin_simple name =
  (* accept both prefixed (xs:string) and plain (string) forms *)
  match Builtin.of_name (Name.to_string name) with
  | Some b when Builtin.is_simple b -> Some (Simple_type.builtin b)
  | Some _ | None -> None

let resolve_simple (s : Ast.schema) name =
  match find_named s.simple_types name with
  | Some st -> Ok st
  | None -> (
    match builtin_simple name with
    | Some st -> Ok st
    | None -> (
      match find_named s.complex_types name with
      | Some _ -> Error (Printf.sprintf "type %s is complex, a simple type is required" (Name.to_string name))
      | None -> Error (Printf.sprintf "unknown simple type %s" (Name.to_string name))))

let resolve (s : Ast.schema) = function
  | Ast.Anonymous ct -> Ok (Resolved_complex ct)
  | Ast.Anonymous_simple st -> Ok (Resolved_simple st)
  | Ast.Type_name name -> (
    match find_named s.complex_types name with
    | Some ct -> Ok (Resolved_complex ct)
    | None -> (
      match find_named s.simple_types name with
      | Some st -> Ok (Resolved_simple st)
      | None -> (
        match builtin_simple name with
        | Some st -> Ok (Resolved_simple st)
        | None ->
          Error
            (Printf.sprintf
               "type %s is neither in dom(ctd) nor a simple type name (requirement on type usage)"
               (Name.to_string name)))))

(* ------------------------------------------------------------------ *)

let check (s : Ast.schema) =
  let errors = ref [] in
  let report loc fmt =
    Printf.ksprintf (fun message -> errors := { loc; message } :: !errors) fmt
  in
  let check_repetition loc (r : Ast.repetition) =
    if not (Ast.repetition_valid r) then
      report loc "invalid repetition factor (min > max or negative)"
  in
  let check_attributes loc attrs =
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (a : Ast.attribute_decl) ->
        let aloc = loc @ [ In_attribute a.attr_name ] in
        let key = Name.to_string a.attr_name in
        if Hashtbl.mem seen key then report aloc "duplicate attribute name"
        else Hashtbl.add seen key ();
        match resolve_simple s a.attr_type with
        | Ok _ -> ()
        | Error e -> report aloc "%s" e)
      attrs
  in
  let rec check_group loc (g : Ast.group_def) =
    check_repetition loc g.group_repetition;
    (* §2: element names among the local declarations must differ *)
    let names = ref [] in
    List.iter
      (function
        | Ast.Element_particle e ->
          let key = Name.to_string e.elem_name in
          if List.mem key !names then
            report loc "element name %s repeated within one group" key
          else names := key :: !names;
          check_element (loc @ [ In_element e.elem_name ]) e
        | Ast.Group_particle inner -> check_group (loc @ [ In_group ]) inner)
      g.particles;
    (* UPA via Glushkov determinism *)
    if not (Ast.group_is_empty g) then begin
      match Content_automaton.make g with
      | Error e -> report loc "content model: %s" e
      | Ok a ->
        if not (Content_automaton.is_deterministic a) then
          report loc "content model violates Unique Particle Attribution"
    end
  and check_element loc (e : Ast.element_decl) =
    check_repetition loc e.repetition;
    (* named types are checked once in the ctd list — do not recurse
       through the name, or recursive types would not terminate *)
    match e.elem_type with
    | Ast.Type_name _ -> (
      match resolve s e.elem_type with
      | Error msg -> report loc "%s" msg
      | Ok (Resolved_simple _ | Resolved_complex _) -> ())
    | Ast.Anonymous ct -> check_complex loc ct
    | Ast.Anonymous_simple _ -> ()
  and check_complex loc = function
    | Ast.Simple_content { base; attributes } ->
      (match resolve_simple s base with
      | Ok _ -> ()
      | Error e -> report loc "simple content base: %s" e);
      check_attributes loc attributes
    | Ast.Complex_content { content; attributes; mixed = _ } ->
      check_attributes loc attributes;
      Option.iter (check_group loc) content
  in
  (* named complex types *)
  List.iter (fun (name, ct) -> check_complex [ In_type name ] ct) s.complex_types;
  check_element [ In_element s.root.elem_name ] s.root;
  match !errors with [] -> Ok () | es -> Error (List.rev es)
