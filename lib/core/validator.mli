(** The §6.2 judgment: is a tree of nodes an S-tree?

    [validate] checks requirements 1–7 of §6.2 against a tree living
    in an XDM store and, on success, performs the type annotation the
    state algebra prescribes (item 4: [type(end) = T] for named types
    and [xs:anyType] for anonymous definitions; item 5.1.1: text nodes
    typed [xdt:untypedAtomic]; typed values for simple-typed elements
    and attributes).

    [validate_document] is the function [f] of the §8 theorem: it
    takes a syntactic S-document, builds the node tree and validates
    it, returning the document node.

    Deviations from the letter of the paper, recorded in DESIGN.md:
    whitespace-only text nodes are tolerated (and not represented) in
    element-only content, because real documents are indented; the
    [xsi:nil] attribute is how an instance marks a nil element. *)

type error = { path : string; message : string }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val validate :
  ?automata:(Ast.group_def * Content_automaton.table) list ->
  Xsm_xdm.Store.t -> Xsm_xdm.Store.node -> Ast.schema -> (unit, error list) result
(** Validate (and annotate) the tree rooted at a document node.
    The schema must pass {!Schema_check.check} first; content models
    that fail to compile are reported as errors.

    [automata] seeds the per-group cache of determinized content
    models (keyed by physical identity of the group), so a schema that
    already went through the static analyzer validates without
    recompiling any automaton. *)

val validate_element_node :
  ?automata:(Ast.group_def * Content_automaton.table) list ->
  Xsm_xdm.Store.t -> Xsm_xdm.Store.node -> Ast.schema -> (unit, error list) result
(** Validate an element node directly against the schema's root
    declaration (no document node on top). *)

val validate_document :
  ?store:Xsm_xdm.Store.t ->
  ?automata:(Ast.group_def * Content_automaton.table) list ->
  Xsm_xml.Tree.t ->
  Ast.schema ->
  (Xsm_xdm.Store.t * Xsm_xdm.Store.node, error list) result
(** [f]: load a syntactic document into a store and validate it. *)

val is_valid : Xsm_xml.Tree.t -> Ast.schema -> bool

val xsi_nil : Xsm_xml.Name.t
(** The [xsi:nil] attribute name. *)
