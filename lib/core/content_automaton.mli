(** Content-model automata.

    A group definition (§2) denotes a regular language over element
    names.  This module compiles a group into a Glushkov position
    automaton: one state per element-declaration occurrence plus an
    initial state, transitions labelled by element names.  XML
    Schema's Unique Particle Attribution constraint is exactly
    determinism of this automaton, which also makes validation a
    single linear pass that attributes each child to the element
    declaration it matched — the attribution the §6.2 requirements
    (items 5.4.2.3) need in order to recurse with the right type. *)

type t

val make : ?max_positions:int -> Ast.group_def -> (t, string) result
(** Compile a group.  Bounded repetitions are expanded; compilation
    fails when the expansion exceeds [max_positions] (default
    [20_000]) or a repetition factor is invalid. *)

val position_count : t -> int
(** Number of positions (states minus the initial one). *)

val is_deterministic : t -> bool
(** Unique Particle Attribution holds. *)

val matches : t -> Ast.Name.t list -> bool
(** NFA simulation: does the children name sequence belong to the
    content model's language?  Linear in [positions * length]. *)

val run : t -> Ast.Name.t list -> Ast.element_decl list option
(** Deterministic run.  Returns the element declaration attributed to
    each name, or [None] when the word is not accepted.  Requires
    {!is_deterministic}; [Invalid_argument] otherwise. *)

val accepts_empty : t -> bool

(** {1 Static analysis} *)

(** A Unique-Particle-Attribution violation, concretely: after reading
    [witness] (whose last symbol is [conflict_name]), that last child
    could be attributed to either of two distinct element-declaration
    occurrences. *)
type conflict = {
  conflict_name : Ast.Name.t;
  first_decl : Ast.element_decl;
  second_decl : Ast.element_decl;
  witness : Ast.Name.t list;  (** a shortest such word *)
}

val upa_conflict : t -> conflict option
(** [None] exactly when {!is_deterministic}.  The witness is found by
    breadth-first search over the position automaton, so its length is
    minimal. *)

type table
(** A determinized content model: per-state transition tables keyed by
    element name, so a validation step is one hash probe instead of a
    scan of the follow set. *)

val compile : t -> table option
(** [None] when the automaton is not deterministic (UPA fails). *)

val table_run : table -> Ast.Name.t list -> Ast.element_decl list option
(** Like {!run}, on the compiled table. *)

val table_matches : table -> Ast.Name.t list -> bool

(** {1 Incremental runners}

    One child step at a time — what the streaming validator's frame
    stack drives.  The state returned by {!step_run} supersedes the
    argument; interleave ("all" group) states are updated in place, so
    a state must not be shared between frames. *)

type state

val start_run : table -> state
(** The initial state (no children consumed yet). *)

val step_run : table -> state -> Ast.Name.t -> (state * Ast.element_decl) option
(** Consume one child name: the successor state and the declaration
    attributed to the child, or [None] when the name has no transition
    (the content model is violated — the state is dead). *)

val run_accepting : table -> state -> bool
(** Whether the word consumed so far is a complete match. *)

type nfa_state

val nfa_start : t -> nfa_state
val nfa_step : t -> nfa_state -> Ast.Name.t -> (nfa_state * Ast.element_decl) option
(** Position-set simulation over the raw automaton — the streaming
    fallback for content models that violate UPA, where no table
    exists.  The verdict agrees with {!matches} (and hence with the
    backtracking baseline); the attributed declaration is the leftmost
    matching position's, the backtracking matcher's first choice. *)

val nfa_accepting : t -> nfa_state -> bool

val equivalent : t -> t -> bool
(** Language equivalence, by breadth-first product of the on-the-fly
    determinizations.  Used to verify that canonicalization
    ({!Canonical}) preserves the content model's language. *)
