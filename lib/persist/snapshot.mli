(** Versioned binary snapshots of a database state.

    A snapshot serializes the tree rooted at a document (or element)
    node of an {!Xsm_xdm.Store.t} — kinds, names, type annotations,
    nil flags, own content, base URIs — together with an optional
    schema reference and the §9.3 numbering labels, and reloads it
    into a fresh store.  The disk round-trip obeys the §8 theorem's
    discipline: [decode (encode X)] is content-equal ([=_c]) to [X],
    which the property-test suite checks over generated corpora.

    Typed values are {e not} persisted: they are re-derivable — the
    XDM fallback wraps the string value as [xdt:untypedAtomic], and a
    caller holding the schema named by [schema_ref] re-validates to
    recover the full annotations (the well-definedness discipline of
    Van den Bussche et al.: the schema, not the wire format, is the
    source of value-level typing).

    Layout: an 8-byte magic ["XSMSNAP\x01"], a body (version, schema
    reference, label flag, then the pre-order node records), and a
    trailing CRC-32 of the body — a torn or bit-rotted snapshot is
    rejected as a whole, never half-loaded. *)

type meta = {
  version : int;
  schema_ref : string option;
      (** an uninterpreted reference — typically the schema file path *)
  node_count : int;
  labelled : bool;  (** numbering labels travel with the tree *)
}

val format_version : int

val encode :
  ?schema_ref:string ->
  ?labels:Xsm_numbering.Labeler.t ->
  Xsm_xdm.Store.t ->
  Xsm_xdm.Store.node ->
  (string, string) result
(** Serialize the tree rooted at a document or element node.  With
    [labels], every node of the tree must be labelled. *)

val decode :
  string ->
  (Xsm_xdm.Store.t * Xsm_xdm.Store.node * Xsm_numbering.Labeler.t option * meta, string)
  result
(** Rebuild a fresh store from snapshot bytes.  Rejects bad magic,
    unknown versions and CRC mismatches. *)

val save :
  ?schema_ref:string ->
  ?labels:Xsm_numbering.Labeler.t ->
  path:string ->
  Xsm_xdm.Store.t ->
  Xsm_xdm.Store.node ->
  (meta, string) result
(** [encode] to [path] atomically: the bytes are written to a
    temporary sibling, fsynced, then renamed over the target — a crash
    mid-save leaves the previous snapshot intact. *)

val load :
  path:string ->
  (Xsm_xdm.Store.t * Xsm_xdm.Store.node * Xsm_numbering.Labeler.t option * meta, string)
  result
