module Store = Xsm_xdm.Store
module Update = Xsm_schema.Update
module Labeler = Xsm_numbering.Labeler
module Counter = Xsm_obs.Metrics.Counter
module Gauge = Xsm_obs.Metrics.Gauge
module Trace = Xsm_obs.Trace

let m_wal_records = Counter.make ~help:"WAL records seen during recovery" "recover.wal_records"
let m_replayed = Counter.make ~help:"WAL operations replayed" "recover.replayed"
let m_torn_bytes = Counter.make ~help:"bytes in torn WAL tails" "recover.torn_bytes"
let g_snapshot_nodes = Gauge.make ~help:"nodes in the last loaded snapshot" "recover.snapshot_nodes"

(* Corrupt input (a WAL that is not a WAL) kept apart from every other
   failure: the CLI exits 3 on the former, 2 on the latter. *)
type error = Corrupt_wal of string | Failed of string

let error_message = function
  | Corrupt_wal path -> Wal.error_message (Wal.Not_a_wal path)
  | Failed message -> message

let of_wal_error = function
  | Wal.Not_a_wal path -> Corrupt_wal path
  | Wal.Io message -> Failed message

type stats = {
  snapshot_nodes : int;
  wal_records : int;
  replayed : int;
  synced_prefix : int;
  torn_bytes : int;
  truncated : bool;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "snapshot %d nodes; wal %d records, %d replayed (%d under sync points)%s" s.snapshot_nodes
    s.wal_records s.replayed s.synced_prefix
    (if s.torn_bytes > 0 then
       Printf.sprintf "; torn tail of %d bytes %s" s.torn_bytes
         (if s.truncated then "truncated" else "ignored")
     else "")

(* Maintain the §9.3 labels through one journal entry: an inserted
   subtree is labelled relative to its neighbours in the attributes @
   children order (attributes precede children in document order), a
   deleted one drops its labels.  Existing labels never move —
   Proposition 1. *)
let maintain_labels store labels entry =
  match entry with
  | Update.Journal.Content _ -> ()
  | Update.Journal.Deleted n -> Labeler.remove_subtree labels store n
  | Update.Journal.Inserted n -> (
    match Store.parent store n with
    | None -> ()
    | Some parent ->
      let ordered = Store.attributes store parent @ Store.children store parent in
      let rec previous prev = function
        | [] -> None
        | x :: rest ->
          if Store.equal_node x n then prev else previous (Some x) rest
      in
      let after = previous None ordered in
      Labeler.label_inserted_subtree labels store ~parent ~after n)

let empty_stats snapshot_nodes =
  {
    snapshot_nodes;
    wal_records = 0;
    replayed = 0;
    synced_prefix = 0;
    torn_bytes = 0;
    truncated = false;
  }

(* the returned record and the registry report the same recovery: the
   record is per-call, the registry accumulates across recoveries *)
let publish stats =
  Counter.add m_wal_records stats.wal_records;
  Counter.add m_replayed stats.replayed;
  Counter.add m_torn_bytes stats.torn_bytes;
  Gauge.set g_snapshot_nodes (float_of_int stats.snapshot_nodes);
  stats

let replay_wal_inner ?journal ?labels ?(truncate = true) store ~root wal_path =
  let ( let* ) = Result.bind in
  let snapshot_nodes = Store.subtree_size store root in
  if not (Sys.file_exists wal_path) then Ok (empty_stats snapshot_nodes)
  else
    let* result = Result.map_error of_wal_error (Wal.read wal_path) in
    let* torn_bytes, truncated =
      match result.Wal.torn_at with
      | None -> Ok (0, false)
      | Some _ when truncate -> (
        match Wal.truncate_torn wal_path with
        | Ok dropped -> Ok (dropped, true)
        | Error e -> Error (of_wal_error e))
      | Some _ -> (
        (* report how much would go without touching the file *)
        try Ok ((Unix.stat wal_path).Unix.st_size - result.Wal.valid_bytes, false)
        with Unix.Unix_error _ -> Ok (0, false))
    in
    (* the journal carries the replay to subscribers (index planner);
       our own cursor feeds label maintenance *)
    let journal = match journal with Some j -> j | None -> Update.Journal.create () in
    let label_cursor =
      match labels with
      | Some _ ->
        let c = Update.Journal.subscribe journal in
        ignore (Update.Journal.read journal c);
        (* skip anything recorded before recovery began *)
        Some c
      | None -> None
    in
    let rec replay idx = function
      | [] -> Ok idx
      | Wal.Sync_point :: rest -> replay idx rest
      | Wal.Op op :: rest -> (
        match Wal.replay_op ~journal store ~root op with
        | Ok _ ->
          (match labels, label_cursor with
          | Some t, Some c ->
            Update.Journal.iter journal c (maintain_labels store t)
          | _ -> ());
          replay (idx + 1) rest
        | Error e ->
          Error
            (Failed (Format.asprintf "recovery: record %d (%a): %s" (idx + 1) Wal.pp_op op e)))
    in
    let* replayed = replay 0 result.Wal.records in
    (match label_cursor with
    | Some c -> Update.Journal.unsubscribe journal c
    | None -> ());
    Ok
      {
        snapshot_nodes;
        wal_records = List.length result.Wal.records;
        replayed;
        synced_prefix = result.Wal.synced_prefix;
        torn_bytes;
        truncated;
      }

let replay_wal ?journal ?labels ?truncate store ~root wal_path =
  Trace.with_span "recover.replay"
    ~attrs:[ ("wal", wal_path) ]
    (fun () ->
      Result.map publish (replay_wal_inner ?journal ?labels ?truncate store ~root wal_path))

let recover ?journal ?truncate ~snapshot ?wal () =
  let ( let* ) = Result.bind in
  let* store, root, labels, _meta =
    Trace.with_span "recover.snapshot" ~attrs:[ ("path", snapshot) ] (fun () ->
        Result.map_error (fun m -> Failed m) (Snapshot.load ~path:snapshot))
  in
  let* stats =
    match wal with
    | None -> Ok (publish (empty_stats (Store.subtree_size store root)))
    | Some wal_path -> replay_wal ?journal ?labels ?truncate store ~root wal_path
  in
  Ok (store, root, labels, stats)
