(** Low-level binary encoding shared by the snapshot and WAL formats.

    Integers are LEB128 varints (non-negative only — every quantity we
    persist is a count, a position or a length); strings are
    varint-length-prefixed bytes; QNames are their written form.  The
    reader signals malformed input through {!R.Corrupt} rather than an
    exception soup, so callers turn any decoding failure into one
    recovery decision (reject the snapshot, truncate the WAL tail).

    {!Crc32} is the standard reflected CRC-32 (polynomial 0xEDB88320,
    the zlib/PNG one) — every WAL record and the snapshot body carry
    one, which is how torn writes are detected. *)

module Crc32 : sig
  val string : ?pos:int -> ?len:int -> string -> int32
  (** CRC-32 of a substring (default: the whole string). *)
end

(** Append-only encoder over a growing buffer. *)
module W : sig
  type t

  val create : ?initial:int -> unit -> t
  val byte : t -> int -> unit
  (** One byte; [Invalid_argument] outside [0, 255]. *)

  val varint : t -> int -> unit
  (** LEB128; [Invalid_argument] on negative input. *)

  val fixed32 : t -> int32 -> unit
  (** Little-endian 4-byte word (record framing and checksums). *)

  val string : t -> string -> unit
  val opt_string : t -> string option -> unit
  val name : t -> Xsm_xml.Name.t -> unit
  val opt_name : t -> Xsm_xml.Name.t option -> unit
  val bool : t -> bool -> unit
  val length : t -> int
  val contents : t -> string
end

(** Sequential decoder over a string. *)
module R : sig
  type t

  exception Corrupt of string
  (** Raised by every reading function on truncated or malformed
      input.  [read_all]-style drivers catch it once. *)

  val of_string : ?pos:int -> string -> t
  val pos : t -> int
  val remaining : t -> int
  val at_end : t -> bool
  val byte : t -> int
  val varint : t -> int
  val fixed32 : t -> int32
  val string : t -> string
  val opt_string : t -> string option
  val name : t -> Xsm_xml.Name.t
  val opt_name : t -> Xsm_xml.Name.t option
  val bool : t -> bool
end
