module Store = Xsm_xdm.Store
module Update = Xsm_schema.Update
module Name = Xsm_xml.Name
module Counter = Xsm_obs.Metrics.Counter
module Histogram = Xsm_obs.Metrics.Histogram

let m_records = Counter.make ~help:"records appended to the log" "wal.records"
let m_syncs = Counter.make ~help:"fsync calls issued" "wal.syncs"
let h_append = Histogram.make ~help:"record append latency (ns, excluding fsync)" "wal.append_ns"
let h_fsync = Histogram.make ~help:"fsync latency (ns)" "wal.fsync_ns"

type addr = Node of int list | Attribute of int list * Name.t

type op =
  | Insert_element of { parent : int list; index : int; fragment : Xsm_xml.Tree.element }
  | Insert_text of { parent : int list; index : int; text : string }
  | Delete of addr
  | Replace_content of addr * string
  | Set_attribute of { element : int list; name : Name.t; value : string }

let pp_path ppf p =
  Format.fprintf ppf "/%s" (String.concat "/" (List.map string_of_int p))

let pp_addr ppf = function
  | Node p -> pp_path ppf p
  | Attribute (p, n) -> Format.fprintf ppf "%a/@%a" pp_path p Name.pp n

let pp_op ppf = function
  | Insert_element { parent; index; fragment } ->
    Format.fprintf ppf "insert-element %a #%d <%a>" pp_path parent index Name.pp
      fragment.Xsm_xml.Tree.name
  | Insert_text { parent; index; text } ->
    Format.fprintf ppf "insert-text %a #%d %S" pp_path parent index text
  | Delete a -> Format.fprintf ppf "delete %a" pp_addr a
  | Replace_content (a, v) -> Format.fprintf ppf "content %a %S" pp_addr a v
  | Set_attribute { element; name; value } ->
    Format.fprintf ppf "attr %a %a=%S" pp_path element Name.pp name value

(* ------------------------------------------------------------------ *)
(* Addressing                                                          *)

let index_of equal x xs =
  let rec go i = function
    | [] -> None
    | y :: rest -> if equal x y then Some i else go (i + 1) rest
  in
  go 0 xs

let path_of_node store ~root node =
  let rec go acc node =
    if Store.equal_node node root then Ok acc
    else
      match Store.parent store node with
      | None -> Error "wal: node is not in the tree rooted at the snapshot root"
      | Some p -> (
        match index_of Store.equal_node node (Store.children store p) with
        | Some i -> go (i :: acc) p
        | None -> Error "wal: node is not among its parent's children")
  in
  go [] node

let addr_of_node store ~root node =
  match Store.kind store node with
  | Store.Kind.Attribute -> (
    match Store.parent store node, Store.node_name store node with
    | Some owner, Some name -> (
      match path_of_node store ~root owner with
      | Ok p -> Ok (Attribute (p, name))
      | Error _ as e -> e)
    | _ -> Error "wal: detached or unnamed attribute")
  | _ -> (
    match path_of_node store ~root node with
    | Ok p -> Ok (Node p)
    | Error _ as e -> e)

let op_of_update store ~root (u : Update.op) =
  let ( let* ) = Result.bind in
  match u with
  | Update.Insert_element { parent; before; tree } ->
    let* p = path_of_node store ~root parent in
    let children = Store.children store parent in
    let index =
      match before with
      | None -> List.length children
      | Some b -> (
        match index_of Store.equal_node b children with
        | Some i -> i
        | None -> List.length children)
    in
    Ok (Insert_element { parent = p; index; fragment = tree })
  | Update.Insert_text { parent; before; text } ->
    let* p = path_of_node store ~root parent in
    let children = Store.children store parent in
    let index =
      match before with
      | None -> List.length children
      | Some b -> (
        match index_of Store.equal_node b children with
        | Some i -> i
        | None -> List.length children)
    in
    Ok (Insert_text { parent = p; index; text })
  | Update.Delete node ->
    let* a = addr_of_node store ~root node in
    Ok (Delete a)
  | Update.Replace_content { node; value } ->
    let* a = addr_of_node store ~root node in
    Ok (Replace_content (a, value))
  | Update.Set_attribute { element; name; value } ->
    let* p = path_of_node store ~root element in
    Ok (Set_attribute { element = p; name; value })

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)

let resolve_path store ~root path =
  let rec go node = function
    | [] -> Ok node
    | i :: rest -> (
      match List.nth_opt (Store.children store node) i with
      | Some child -> go child rest
      | None ->
        Error
          (Format.asprintf "wal: no child #%d under %a" i (Store.pp_node store) node))
  in
  go root path

let resolve store ~root = function
  | Node p -> resolve_path store ~root p
  | Attribute (p, name) -> (
    match resolve_path store ~root p with
    | Error _ as e -> e
    | Ok owner -> (
      let attr =
        List.find_opt
          (fun a ->
            match Store.node_name store a with
            | Some n -> Name.equal n name
            | None -> false)
          (Store.attributes store owner)
      in
      match attr with
      | Some a -> Ok a
      | None -> Error (Format.asprintf "wal: no attribute %a at %a" Name.pp name pp_path p)))

let replay_op ?journal store ~root op =
  let ( let* ) = Result.bind in
  let anchor parent index =
    let children = Store.children store parent in
    if index >= List.length children then None else List.nth_opt children index
  in
  let* update =
    match op with
    | Insert_element { parent; index; fragment } ->
      let* p = resolve_path store ~root parent in
      Ok (Update.Insert_element { parent = p; before = anchor p index; tree = fragment })
    | Insert_text { parent; index; text } ->
      let* p = resolve_path store ~root parent in
      Ok (Update.Insert_text { parent = p; before = anchor p index; text })
    | Delete a ->
      let* n = resolve store ~root a in
      Ok (Update.Delete n)
    | Replace_content (a, value) ->
      let* n = resolve store ~root a in
      Ok (Update.Replace_content { node = n; value })
    | Set_attribute { element; name; value } ->
      let* e = resolve_path store ~root element in
      Ok (Update.Set_attribute { element = e; name; value })
  in
  Update.apply ?journal store update

(* ------------------------------------------------------------------ *)
(* Record encoding                                                     *)

type record = Op of op | Sync_point

let magic = "XSMWAL\x01\x00"

let encode_path w p =
  Wire.W.varint w (List.length p);
  List.iter (Wire.W.varint w) p

let decode_path r =
  let n = Wire.R.varint r in
  List.init n (fun _ -> Wire.R.varint r)

let encode_addr w = function
  | Node p ->
    Wire.W.byte w 0;
    encode_path w p
  | Attribute (p, n) ->
    Wire.W.byte w 1;
    encode_path w p;
    Wire.W.name w n

let decode_addr r =
  match Wire.R.byte r with
  | 0 -> Node (decode_path r)
  | 1 ->
    let p = decode_path r in
    Attribute (p, Wire.R.name r)
  | t -> raise (Wire.R.Corrupt (Printf.sprintf "bad addr tag %d" t))

let encode_payload record =
  let w = Wire.W.create () in
  (match record with
  | Sync_point -> Wire.W.byte w 0
  | Op (Insert_element { parent; index; fragment }) ->
    Wire.W.byte w 1;
    encode_path w parent;
    Wire.W.varint w index;
    Wire.W.string w (Xsm_xml.Printer.element_to_string fragment)
  | Op (Insert_text { parent; index; text }) ->
    Wire.W.byte w 2;
    encode_path w parent;
    Wire.W.varint w index;
    Wire.W.string w text
  | Op (Delete a) ->
    Wire.W.byte w 3;
    encode_addr w a
  | Op (Replace_content (a, v)) ->
    Wire.W.byte w 4;
    encode_addr w a;
    Wire.W.string w v
  | Op (Set_attribute { element; name; value }) ->
    Wire.W.byte w 5;
    encode_path w element;
    Wire.W.name w name;
    Wire.W.string w value);
  Wire.W.contents w

let decode_payload payload =
  let r = Wire.R.of_string payload in
  let record =
    match Wire.R.byte r with
    | 0 -> Sync_point
    | 1 ->
      let parent = decode_path r in
      let index = Wire.R.varint r in
      let xml = Wire.R.string r in
      (match Xsm_xml.Parser.parse_element xml with
      | Ok fragment -> Op (Insert_element { parent; index; fragment })
      | Error e ->
        raise (Wire.R.Corrupt ("bad fragment: " ^ Xsm_xml.Parser.error_to_string e)))
    | 2 ->
      let parent = decode_path r in
      let index = Wire.R.varint r in
      Op (Insert_text { parent; index; text = Wire.R.string r })
    | 3 -> Op (Delete (decode_addr r))
    | 4 ->
      let a = decode_addr r in
      Op (Replace_content (a, Wire.R.string r))
    | 5 ->
      let element = decode_path r in
      let name = Wire.R.name r in
      Op (Set_attribute { element; name; value = Wire.R.string r })
    | t -> raise (Wire.R.Corrupt (Printf.sprintf "bad record tag %d" t))
  in
  if not (Wire.R.at_end r) then raise (Wire.R.Corrupt "trailing bytes in record payload");
  record

let encode_record record =
  let payload = encode_payload record in
  let w = Wire.W.create ~initial:(String.length payload + 8) () in
  Wire.W.fixed32 w (Int32.of_int (String.length payload));
  Wire.W.fixed32 w (Wire.Crc32.string payload);
  let b = Buffer.create (String.length payload + 8) in
  Buffer.add_string b (Wire.W.contents w);
  Buffer.add_string b payload;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)

(* Structured errors, so callers can tell corrupt input (a file that
   is not a WAL) from environmental I/O failure: the CLI maps the
   former to its corrupt-input exit code, the latter to unusable-file.
   No [failwith]-as-control-flow — a bare [Failure] caught broadly
   can swallow genuine bugs. *)
type error =
  | Not_a_wal of string  (* the path: file exists but lacks the WAL magic *)
  | Io of string

type crash = { after_records : int; partial_bytes : int }

exception Crashed

module Writer = struct
  type t = {
    oc : out_channel;
    crash : crash option;
    sync_every : int;
    mutable records : int;
    mutable ops : int;  (* Op records only — the LSN scale *)
    mutable marked : int;  (* ops covered by the last Sync_point marker *)
    mutable unsynced : int;
    mutable crashed : bool;
  }

  let fsync t =
    let start = Xsm_obs.Clock.now_ns () in
    flush t.oc;
    Unix.fsync (Unix.descr_of_out_channel t.oc);
    t.unsynced <- 0;
    Counter.incr m_syncs;
    Histogram.observe h_fsync
      (Int64.to_float (Int64.sub (Xsm_obs.Clock.now_ns ()) start))

  let create ?crash ?(sync_every = 1) path =
    if sync_every < 1 then Error (Io "wal: sync_every must be >= 1")
    else
      try
        let fresh = (not (Sys.file_exists path)) || (Unix.stat path).Unix.st_size = 0 in
        let magic_ok =
          fresh
          ||
          (* appending: verify the magic before trusting the file *)
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              in_channel_length ic >= String.length magic
              && really_input_string ic (String.length magic) = magic)
        in
        if not magic_ok then Error (Not_a_wal path)
        else begin
          let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
          if fresh then output_string oc magic;
          let t =
            { oc; crash; sync_every; records = 0; ops = 0; marked = 0; unsynced = 0;
              crashed = false }
          in
          fsync t;
          (* a freshly created log needs its directory entry synced
             too, or a crash can lose the whole file *)
          if fresh then Fsutil.fsync_parent path;
          Ok t
        end
      with
      | Sys_error e -> Error (Io ("wal: " ^ e))
      | Unix.Unix_error (err, fn, _) ->
        Error (Io (Printf.sprintf "wal: %s: %s" fn (Unix.error_message err)))

  let emit t record =
    if t.crashed then raise Crashed;
    let bytes = encode_record record in
    (match t.crash with
    | Some { after_records; partial_bytes } when t.records >= after_records ->
      (* the injected crash: leave a prefix of this record on disk,
         flush it (the OS got the bytes), and die *)
      let keep = min (max 0 partial_bytes) (String.length bytes - 1) in
      output_string t.oc (String.sub bytes 0 keep);
      flush t.oc;
      Unix.fsync (Unix.descr_of_out_channel t.oc);
      t.crashed <- true;
      raise Crashed
    | _ -> ());
    let start = Xsm_obs.Clock.now_ns () in
    output_string t.oc bytes;
    t.records <- t.records + 1;
    (match record with Op _ -> t.ops <- t.ops + 1 | Sync_point -> ());
    t.unsynced <- t.unsynced + 1;
    Counter.incr m_records;
    Histogram.observe h_append
      (Int64.to_float (Int64.sub (Xsm_obs.Clock.now_ns ()) start));
    if t.unsynced >= t.sync_every then fsync t

  let append t op = emit t (Op op)

  let sync t =
    emit t Sync_point;
    fsync t;
    t.marked <- t.ops

  let records_written t = t.records
  let lsn t = t.ops
  let synced_lsn t = t.marked

  (* the pager's WAL ordering hook: LSNs are op counts, durability is
     a Sync_point marker (so the *reader*-visible synced prefix covers
     every page image on disk, which is what the crash sweep audits).
     A [force] that trips an injected crash raises {!Crashed} before
     the page write — the invariant survives the crash too. *)
  let pager_hook t =
    {
      Xsm_pager.Pager.current_lsn = (fun () -> t.ops);
      synced_lsn = (fun () -> t.marked);
      force = (fun lsn -> if t.marked < lsn then sync t);
    }

  let close t =
    if not t.crashed then fsync t;
    close_out_noerr t.oc
end

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)

type torn = Torn_header of int | Torn_payload of int | Torn_crc of int

let error_message = function
  | Not_a_wal path -> Printf.sprintf "wal: %s is not a WAL file (bad magic)" path
  | Io message -> message

type read_result = {
  records : record list;
  valid_bytes : int;
  torn_at : torn option;
  synced_prefix : int;
}

let read path =
  try
    let ic = open_in_bin path in
    let bytes =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let len = String.length bytes in
    let mlen = String.length magic in
    if len < mlen || String.sub bytes 0 mlen <> magic then Error (Not_a_wal path)
    else begin
      let records = ref [] in
      let ops_seen = ref 0 in
      let synced = ref 0 in
      let pos = ref mlen in
      let torn = ref None in
      (try
         while !pos < len && !torn = None do
           if len - !pos < 8 then torn := Some (Torn_header !pos)
           else begin
             let hdr = Wire.R.of_string ~pos:!pos bytes in
             let plen = Int32.to_int (Wire.R.fixed32 hdr) in
             let crc = Wire.R.fixed32 hdr in
             if plen < 1 || plen > len - !pos - 8 then torn := Some (Torn_payload !pos)
             else if
               not (Int32.equal crc (Wire.Crc32.string ~pos:(!pos + 8) ~len:plen bytes))
             then torn := Some (Torn_crc !pos)
             else begin
               let payload = String.sub bytes (!pos + 8) plen in
               let record = decode_payload payload in
               records := record :: !records;
               (match record with
               | Op _ -> incr ops_seen
               | Sync_point -> synced := !ops_seen);
               pos := !pos + 8 + plen
             end
           end
         done
       with Wire.R.Corrupt _ -> torn := Some (Torn_crc !pos));
      let synced_prefix = match !torn with None -> !ops_seen | Some _ -> !synced in
      Ok
        {
          records = List.rev !records;
          valid_bytes = !pos;
          torn_at = !torn;
          synced_prefix;
        }
    end
  with Sys_error e -> Error (Io ("wal: " ^ e))

let truncate_torn path =
  match read path with
  | Error _ as e -> e
  | Ok { torn_at = None; _ } -> Ok 0
  | Ok { valid_bytes; _ } -> (
    try
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      let size = (Unix.fstat fd).Unix.st_size in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.ftruncate fd valid_bytes;
          Unix.fsync fd);
      Ok (size - valid_bytes)
    with Unix.Unix_error (err, fn, _) ->
      Error (Io (Printf.sprintf "wal: %s: %s" fn (Unix.error_message err))))
