(** Directory-entry durability.

    [fsync] on a file makes its {e contents} durable; the directory
    entry naming it (created by [rename] or [open O_CREAT]) lives in
    the directory's own data and needs its own fsync.  Without it, a
    crash right after a snapshot's tmp-write-rename can lose the
    rename — leaving the old snapshot, or none at all — even though
    the new file's bytes were synced. *)

val fsync_dir : string -> unit
(** Fsync a directory.  Errors (platforms or filesystems that refuse
    opening/fsyncing directories) are swallowed: this is a
    best-effort hardening, never a new failure mode. *)

val fsync_parent : string -> unit
(** [fsync_parent path] fsyncs the directory containing [path]. *)
