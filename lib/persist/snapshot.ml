module Store = Xsm_xdm.Store
module Labeler = Xsm_numbering.Labeler
module Label = Xsm_numbering.Sedna_label

type meta = {
  version : int;
  schema_ref : string option;
  node_count : int;
  labelled : bool;
}

let format_version = 1
let magic = "XSMSNAP\x01"

let kind_byte = function
  | Store.Kind.Document -> 0
  | Store.Kind.Element -> 1
  | Store.Kind.Attribute -> 2
  | Store.Kind.Text -> 3

exception Encode_error of string

let rec encode_node w store labels node =
  let kind = Store.kind store node in
  Wire.W.byte w (kind_byte kind);
  Wire.W.opt_name w (Store.node_name store node);
  Wire.W.opt_string w (Store.base_uri store node);
  Wire.W.opt_name w (Store.type_name store node);
  Wire.W.byte w
    (match Store.nilled store node with None -> 0 | Some false -> 1 | Some true -> 2);
  Wire.W.string w
    (match kind with
    | Store.Kind.Text | Store.Kind.Attribute -> Store.string_value store node
    | Store.Kind.Document | Store.Kind.Element -> "");
  (match labels with
  | None -> ()
  | Some t -> (
    match Labeler.label_opt t node with
    | Some l -> Wire.W.string w (Label.to_raw l)
    | None ->
      raise
        (Encode_error
           (Format.asprintf "snapshot: unlabelled node %a" (Store.pp_node store) node))));
  let attrs = Store.attributes store node in
  Wire.W.varint w (List.length attrs);
  List.iter (encode_node w store labels) attrs;
  let children = Store.children store node in
  Wire.W.varint w (List.length children);
  List.iter (encode_node w store labels) children

let encode ?schema_ref ?labels store root =
  match Store.kind store root with
  | Store.Kind.Attribute | Store.Kind.Text ->
    Error "snapshot: root must be a document or element node"
  | Store.Kind.Document | Store.Kind.Element -> (
    try
      let body = Wire.W.create ~initial:4096 () in
      Wire.W.varint body format_version;
      Wire.W.opt_string body schema_ref;
      Wire.W.bool body (labels <> None);
      Wire.W.varint body (Store.subtree_size store root);
      encode_node body store labels root;
      let body = Wire.W.contents body in
      let b = Buffer.create (String.length body + 16) in
      Buffer.add_string b magic;
      Buffer.add_string b body;
      let crc = Wire.Crc32.string body in
      let tail = Wire.W.create () in
      Wire.W.fixed32 tail crc;
      Buffer.add_string b (Wire.W.contents tail);
      Ok (Buffer.contents b)
    with Encode_error e -> Error e)

let rec decode_node r store labelled acc_labels =
  let kind = Wire.R.byte r in
  let name = Wire.R.opt_name r in
  let base_uri = Wire.R.opt_string r in
  let type_name = Wire.R.opt_name r in
  let nilled = Wire.R.byte r in
  let content = Wire.R.string r in
  let label =
    if labelled then (
      let raw = Wire.R.string r in
      match Label.of_raw raw with
      | Ok l -> Some l
      | Error e -> raise (Wire.R.Corrupt ("bad numbering label: " ^ e)))
    else None
  in
  let node =
    match kind with
    | 0 -> Store.new_document ?base_uri store
    | 1 -> (
      match name with
      | Some n ->
        let node = Store.new_element ?base_uri store n in
        Store.set_type_name store node type_name;
        (match nilled with
        | 0 | 1 -> ()
        | 2 -> Store.set_nilled store node true
        | _ -> raise (Wire.R.Corrupt "bad nilled flag"));
        node
      | None -> raise (Wire.R.Corrupt "element without a name"))
    | 2 -> (
      match name with
      | Some n ->
        let node = Store.new_attribute store n content in
        Store.set_type_name store node type_name;
        node
      | None -> raise (Wire.R.Corrupt "attribute without a name"))
    | 3 ->
      let node = Store.new_text store content in
      Store.set_type_name store node type_name;
      node
    | k -> raise (Wire.R.Corrupt (Printf.sprintf "bad node kind %d" k))
  in
  (match label with Some l -> acc_labels := (node, l) :: !acc_labels | None -> ());
  let nattrs = Wire.R.varint r in
  for _ = 1 to nattrs do
    let attr = decode_node r store labelled acc_labels in
    Store.attach_attribute store node attr
  done;
  let nchildren = Wire.R.varint r in
  let children = List.init nchildren (fun _ -> decode_node r store labelled acc_labels) in
  Store.append_children store node children;
  node

let decode bytes =
  let len = String.length bytes in
  let mlen = String.length magic in
  if len < mlen + 4 then Error "snapshot: truncated"
  else if String.sub bytes 0 mlen <> magic then Error "snapshot: bad magic"
  else begin
    let body_len = len - mlen - 4 in
    let stored_crc = Wire.R.fixed32 (Wire.R.of_string ~pos:(len - 4) bytes) in
    let crc = Wire.Crc32.string ~pos:mlen ~len:body_len bytes in
    if not (Int32.equal crc stored_crc) then
      Error "snapshot: CRC mismatch (torn or corrupted file)"
    else
      try
        let r = Wire.R.of_string ~pos:mlen bytes in
        let version = Wire.R.varint r in
        if version <> format_version then
          Error (Printf.sprintf "snapshot: unsupported version %d" version)
        else begin
          let schema_ref = Wire.R.opt_string r in
          let labelled = Wire.R.bool r in
          let node_count = Wire.R.varint r in
          let store = Store.create () in
          let acc_labels = ref [] in
          let root = decode_node r store labelled acc_labels in
          if Wire.R.pos r <> len - 4 then Error "snapshot: trailing garbage in body"
          else begin
            let labels =
              if labelled then Some (Labeler.restore (List.rev !acc_labels)) else None
            in
            Ok (store, root, labels, { version; schema_ref; node_count; labelled })
          end
        end
      with Wire.R.Corrupt e -> Error ("snapshot: " ^ e)
  end

let save ?schema_ref ?labels ~path store root =
  match encode ?schema_ref ?labels store root with
  | Error _ as e -> e
  | Ok bytes -> (
    let tmp = path ^ ".tmp" in
    try
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc bytes;
          flush oc;
          Unix.fsync (Unix.descr_of_out_channel oc));
      Sys.rename tmp path;
      (* the rename itself is durable only once the directory entry
         is — without this a crash can roll the snapshot back *)
      Fsutil.fsync_parent path;
      Ok
        {
          version = format_version;
          schema_ref;
          node_count = Store.subtree_size store root;
          labelled = labels <> None;
        }
    with Sys_error e | Unix.Unix_error (_, _, e) -> Error ("snapshot: " ^ e))

let load ~path =
  try
    let ic = open_in_bin path in
    let bytes =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    decode bytes
  with Sys_error e -> Error ("snapshot: " ^ e)
