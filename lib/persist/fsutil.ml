(* A rename or file creation is durable only once the *directory*
   entry is: POSIX makes the data fsync and the metadata fsync
   separate operations, and a crash between them can leave a
   fully-synced file that simply is not there after reboot.  Every
   tmp-write-rename and every fresh log file must therefore fsync its
   parent directory. *)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()  (* e.g. a platform refusing O_RDONLY on dirs *)
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let fsync_parent path =
  let dir = Filename.dirname path in
  fsync_dir (if dir = "" then Filename.current_dir_name else dir)
