module Crc32 = struct
  (* reflected CRC-32, polynomial 0xEDB88320 (zlib/PNG) *)
  let table =
    lazy
      (Array.init 256 (fun n ->
           let c = ref (Int32.of_int n) in
           for _ = 0 to 7 do
             if Int32.logand !c 1l <> 0l then
               c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else c := Int32.shift_right_logical !c 1
           done;
           !c))

  let string ?(pos = 0) ?len s =
    let len = match len with Some l -> l | None -> String.length s - pos in
    if pos < 0 || len < 0 || pos + len > String.length s then
      invalid_arg "Crc32.string: substring out of bounds";
    let table = Lazy.force table in
    let c = ref 0xFFFFFFFFl in
    for i = pos to pos + len - 1 do
      let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xFFl) in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
    done;
    Int32.logxor !c 0xFFFFFFFFl
end

module W = struct
  type t = Buffer.t

  let create ?(initial = 256) () = Buffer.create initial

  let byte b n =
    if n < 0 || n > 255 then invalid_arg "Wire.W.byte: out of range";
    Buffer.add_char b (Char.chr n)

  let rec varint b n =
    if n < 0 then invalid_arg "Wire.W.varint: negative"
    else if n < 0x80 then Buffer.add_char b (Char.chr n)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (n land 0x7F)));
      varint b (n lsr 7)
    end

  let fixed32 b (w : int32) =
    for i = 0 to 3 do
      Buffer.add_char b
        (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical w (8 * i)) 0xFFl)))
    done

  let string b s =
    varint b (String.length s);
    Buffer.add_string b s

  let opt_string b = function
    | None -> byte b 0
    | Some s ->
      byte b 1;
      string b s

  let name b n = string b (Xsm_xml.Name.to_string n)

  let opt_name b = function
    | None -> byte b 0
    | Some n ->
      byte b 1;
      name b n

  let bool b v = byte b (if v then 1 else 0)
  let length = Buffer.length
  let contents = Buffer.contents
end

module R = struct
  type t = { src : string; mutable pos : int }

  exception Corrupt of string

  let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt
  let of_string ?(pos = 0) src = { src; pos }
  let pos r = r.pos
  let remaining r = String.length r.src - r.pos
  let at_end r = remaining r <= 0

  let byte r =
    if at_end r then corrupt "unexpected end of input at %d" r.pos;
    let c = Char.code r.src.[r.pos] in
    r.pos <- r.pos + 1;
    c

  let varint r =
    let rec go shift acc =
      if shift > 62 then corrupt "varint overflow at %d" r.pos;
      let b = byte r in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let fixed32 r =
    let w = ref 0l in
    for i = 0 to 3 do
      w := Int32.logor !w (Int32.shift_left (Int32.of_int (byte r)) (8 * i))
    done;
    !w

  let string r =
    let len = varint r in
    if len > remaining r then corrupt "string of %d bytes exceeds input at %d" len r.pos;
    let s = String.sub r.src r.pos len in
    r.pos <- r.pos + len;
    s

  let opt_string r =
    match byte r with
    | 0 -> None
    | 1 -> Some (string r)
    | n -> corrupt "bad option tag %d at %d" n (r.pos - 1)

  let name r =
    let s = string r in
    match Xsm_xml.Name.of_string s with
    | Ok n -> n
    | Error e -> corrupt "bad QName %S: %s" s e

  let opt_name r =
    match byte r with
    | 0 -> None
    | 1 -> Some (name r)
    | n -> corrupt "bad option tag %d at %d" n (r.pos - 1)

  let bool r =
    match byte r with
    | 0 -> false
    | 1 -> true
    | n -> corrupt "bad bool %d at %d" n (r.pos - 1)
end
