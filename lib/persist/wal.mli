(** The write-ahead log: §6.1 state transitions made durable.

    Every update is logged {e before} it is applied, as a record that
    can be replayed against a recovered snapshot {e without} the live
    store: nodes are addressed by their Dewey child-position path from
    the root (positions among [children]; attributes by owner path +
    name), inserted subtrees travel as canonical serialized fragments,
    content changes carry the new value.  Replaying the log over the
    snapshot therefore re-runs the exact transition sequence — the
    mirror, on disk, of what {!Xsm_schema.Update.Journal} gives the
    index planner in memory.

    {b Framing.} The file starts with an 8-byte magic; each record is
    [length (4 bytes LE) ‖ CRC-32 of payload (4 bytes LE) ‖ payload].
    A record is {e torn} when its header or payload is cut short or
    its CRC disagrees; the reader reports the torn tail and the
    recovery engine truncates it — a torn record is never replayed.
    {!Writer.sync} appends a sync-point marker record and fsyncs;
    {!Writer.append} fsyncs by default ([~sync_every:1]).

    {b Fault injection.} A {!crash} point makes the writer stop at a
    chosen record boundary — optionally leaving a prefix of the next
    record's bytes on disk, exactly what an OS crash mid-write leaves —
    and raise {!Crashed}.  The fault-injection tests drive one crash
    point per boundary and assert recovery restores the longest
    fully-written prefix. *)

type addr =
  | Node of int list
      (** child-position path from the root: [[]] is the root, [[0; 2]]
          the third child of its first child *)
  | Attribute of int list * Xsm_xml.Name.t
      (** an attribute of the element at the path, by name *)

type op =
  | Insert_element of {
      parent : int list;
      index : int;  (** position among the parent's children *)
      fragment : Xsm_xml.Tree.element;
    }
  | Insert_text of { parent : int list; index : int; text : string }
  | Delete of addr
  | Replace_content of addr * string
  | Set_attribute of { element : int list; name : Xsm_xml.Name.t; value : string }

val pp_op : Format.formatter -> op -> unit

(** {1 Capturing ops from a live store}

    [op_of_update] translates an {!Xsm_schema.Update.op} into its
    store-independent WAL form.  Call it {e before} applying the update
    — the addresses describe the pre-state. *)

val path_of_node :
  Xsm_xdm.Store.t -> root:Xsm_xdm.Store.node -> Xsm_xdm.Store.node -> (int list, string) result

val addr_of_node :
  Xsm_xdm.Store.t -> root:Xsm_xdm.Store.node -> Xsm_xdm.Store.node -> (addr, string) result

val op_of_update :
  Xsm_xdm.Store.t -> root:Xsm_xdm.Store.node -> Xsm_schema.Update.op -> (op, string) result

(** {1 Replay} *)

val resolve :
  Xsm_xdm.Store.t -> root:Xsm_xdm.Store.node -> addr -> (Xsm_xdm.Store.node, string) result

val replay_op :
  ?journal:Xsm_schema.Update.Journal.t ->
  Xsm_xdm.Store.t ->
  root:Xsm_xdm.Store.node ->
  op ->
  (Xsm_schema.Update.applied, string) result
(** Resolve the addresses against the current state and apply through
    {!Xsm_schema.Update.apply}, journalling when asked — so an index
    planner subscribed to the journal absorbs the replay
    differentially. *)

(** {1 Records} *)

type record = Op of op | Sync_point
(** What one WAL record carries.  [Sync_point] marks an fsync
    boundary: everything before it is durable. *)

val encode_record : record -> string
(** The framed bytes: length, CRC, payload. *)

(** {1 Errors} *)

type error =
  | Not_a_wal of string
      (** the path: the file exists but does not start with the WAL
          magic — corrupt or foreign input, not an I/O failure.  The
          CLI maps this to its corrupt-input exit code (3). *)
  | Io of string  (** an environmental failure (open, stat, fsync …) *)

val error_message : error -> string
(** Render an {!error} for diagnostics. *)

(** {1 Writing} *)

type crash = {
  after_records : int;  (** crash once this many records are fully on disk *)
  partial_bytes : int;
      (** bytes of the next record to leave behind: 0 = clean boundary
          cut, [n > 0] = a torn record of [min n (size-1)] bytes *)
}

exception Crashed
(** Raised by {!Writer.append}/{!Writer.sync} at the injected crash
    point, after the partial bytes are flushed. *)

module Writer : sig
  type t

  val create : ?crash:crash -> ?sync_every:int -> string -> (t, error) result
  (** Open (or create) a WAL for appending.  [sync_every] (default 1)
      fsyncs after every n-th record; {!sync} forces one anytime.
      Appending to an existing non-empty file first verifies the
      magic; a file that is not a WAL is [Error (Not_a_wal _)]. *)

  val append : t -> op -> unit

  val sync : t -> unit
  (** Append a [Sync_point] marker and fsync: everything before it is
      durable {e and provably so to a reader} (the marker is what
      advances {!read}'s [synced_prefix]). *)

  val records_written : t -> int

  val lsn : t -> int
  (** Ops appended so far — the log-sequence number the pager stamps
      on dirty pages. *)

  val synced_lsn : t -> int
  (** Ops covered by the last [Sync_point] marker. *)

  val pager_hook : t -> Xsm_pager.Pager.wal_hook
  (** The write-back ordering hook for {!Xsm_pager.Pager.create}: a
      dirty page flushes only after a {!sync} covers its LSN. *)

  val close : t -> unit
end

(** {1 Reading} *)

type torn =
  | Torn_header of int  (** byte offset of a cut-short header *)
  | Torn_payload of int  (** offset of a record whose payload is cut short *)
  | Torn_crc of int  (** offset of a record whose CRC disagrees *)

type read_result = {
  records : record list;  (** the valid prefix, in order *)
  valid_bytes : int;  (** file offset just past the last valid record *)
  torn_at : torn option;  (** why reading stopped early, if it did *)
  synced_prefix : int;
      (** number of [Op] records at or before the last [Sync_point]
          (= all valid ops when the log ends cleanly) *)
}

val read : string -> (read_result, error) result
(** Scan the log; never fails on torn tails — only on unreadable files
    ([Io]) or bad magic ([Not_a_wal]). *)

val truncate_torn : string -> (int, error) result
(** Cut the file back to its valid prefix; returns the bytes dropped
    (0 when the log is clean). *)
