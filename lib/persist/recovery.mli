(** Crash recovery: snapshot + WAL tail → the pre-crash state.

    [recover] loads the latest snapshot, scans the WAL, truncates the
    torn trailing record if the crash left one (detected by CRC —
    never replayed), and replays the remaining ops in order.  The
    result is content-equal to the longest fully-written prefix of the
    pre-crash update sequence — the crash-recovery mirror of the §8
    round-trip theorem, asserted per crash point by the
    fault-injection tests.

    When the snapshot carries §9.3 numbering labels, replay maintains
    them (inserted subtrees get fresh labels via the Proposition 1
    discipline, deleted ones are dropped), so a recovered store hands
    the planner a live labelled tree.  Passing [journal] lets an index
    planner built over the snapshot state absorb the replay
    differentially — indexes {e resume} rather than rebuild. *)

type error =
  | Corrupt_wal of string
      (** the WAL path: the file is not a WAL (bad magic) — corrupt
          input, mapped by the CLI to exit code 3 *)
  | Failed of string  (** any other recovery failure *)

val error_message : error -> string

type stats = {
  snapshot_nodes : int;  (** nodes restored from the snapshot *)
  wal_records : int;  (** valid WAL records scanned (ops + sync points) *)
  replayed : int;  (** ops applied on top of the snapshot *)
  synced_prefix : int;  (** ops covered by an explicit sync point *)
  torn_bytes : int;  (** bytes of torn trailing record dropped *)
  truncated : bool;  (** the WAL file was cut back to its valid prefix *)
}

val pp_stats : Format.formatter -> stats -> unit

val replay_wal :
  ?journal:Xsm_schema.Update.Journal.t ->
  ?labels:Xsm_numbering.Labeler.t ->
  ?truncate:bool ->
  Xsm_xdm.Store.t ->
  root:Xsm_xdm.Store.node ->
  string ->
  (stats, error) result
(** The replay half of {!recover}, for callers that loaded the
    snapshot themselves — typically to build an index planner over the
    snapshot state and subscribe it to [journal] {e before} replay, so
    the indexes absorb the WAL differentially instead of rebuilding.
    A missing WAL file is an empty log. *)

val recover :
  ?journal:Xsm_schema.Update.Journal.t ->
  ?truncate:bool ->
  snapshot:string ->
  ?wal:string ->
  unit ->
  ( Xsm_xdm.Store.t
    * Xsm_xdm.Store.node
    * Xsm_numbering.Labeler.t option
    * stats,
    error )
  result
(** [recover ~snapshot ?wal ()] rebuilds the database state.  A
    missing WAL file is an empty log (first boot after a snapshot);
    [truncate] (default [true]) also repairs the WAL on disk so the
    next writer appends after the valid prefix.  Replay failure of a
    {e valid} record — a snapshot/log mismatch — is an error, not a
    skip: the pair is inconsistent and silently dropping transitions
    would fabricate a state that never existed. *)
