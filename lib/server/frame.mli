(** Length-prefixed JSON frames over a file descriptor — the wire
    format of the [xsm serve] protocol.

    One frame is [length (4 bytes, big endian) ‖ payload], the payload
    being one compact JSON text ({!Xsm_obs.Json}).  The length prefix
    makes the stream self-delimiting, so a session can pipeline many
    requests without waiting for responses, and the reader never needs
    to scan for a terminator inside the JSON.

    Frames are capped at {!max_frame} bytes: a corrupt or hostile
    length prefix fails the read instead of provoking a gigabyte
    allocation. *)

val max_frame : int
(** Upper bound on a payload (16 MiB). *)

val send : Unix.file_descr -> Xsm_obs.Json.t -> (unit, string) result
(** Serialize and write one frame, retrying short writes and [EINTR]. *)

val recv : Unix.file_descr -> (Xsm_obs.Json.t option, string) result
(** Read one frame.  [Ok None] is a clean end of stream (the peer
    closed between frames); EOF inside a frame, an oversized length or
    unparseable payload is an [Error]. *)
