type 'res cell = { mutable outcome : [ `Pending | `Done of 'res | `Failed of exn ] }

type ('req, 'res) t = {
  m : Mutex.t;
  done_c : Condition.t;  (* followers wait for their batch to commit *)
  q : ('req * 'res cell) Queue.t;
  mutable leader : bool;
  run : 'req list -> 'res list;
  limit : int;  (* max submissions per batch; 1 = commit-per-request *)
  mutable submissions : int;
  mutable batches : int;
  mutable max_batch : int;
}

type stats = { submissions : int; batches : int; max_batch : int }

let create ?(limit = max_int) ~run () =
  if limit < 1 then invalid_arg "Commit.create: limit must be >= 1";
  {
    m = Mutex.create ();
    done_c = Condition.create ();
    q = Queue.create ();
    leader = false;
    run;
    limit;
    submissions = 0;
    batches = 0;
    max_batch = 0;
  }

let drain q limit =
  let rec go acc n =
    if n = 0 || Queue.is_empty q then List.rev acc else go (Queue.pop q :: acc) (n - 1)
  in
  go [] limit

let submit t req =
  let cell = { outcome = `Pending } in
  Mutex.lock t.m;
  Queue.push (req, cell) t.q;
  t.submissions <- t.submissions + 1;
  if t.leader then
    (* a leader is active: it will take this submission in its next
       batch — wait as a follower *)
    while cell.outcome = `Pending do
      Condition.wait t.done_c t.m
    done
  else begin
    t.leader <- true;
    (* keep leading until the queue is momentarily empty: submissions
       that arrived during a batch form the next one *)
    while not (Queue.is_empty t.q) do
      let batch = drain t.q t.limit in
      Mutex.unlock t.m;
      let outcome =
        match t.run (List.map fst batch) with
        | results when List.length results = List.length batch -> `Results results
        | _ -> `Fail (Invalid_argument "Commit.run: result count mismatch")
        | exception e -> `Fail e
      in
      Mutex.lock t.m;
      (match outcome with
      | `Results results -> List.iter2 (fun (_, c) r -> c.outcome <- `Done r) batch results
      | `Fail e -> List.iter (fun (_, c) -> c.outcome <- `Failed e) batch);
      t.batches <- t.batches + 1;
      t.max_batch <- max t.max_batch (List.length batch);
      Condition.broadcast t.done_c
    done;
    t.leader <- false
  end;
  let r = cell.outcome in
  Mutex.unlock t.m;
  match r with `Done v -> v | `Failed e -> raise e | `Pending -> assert false

let stats t =
  Mutex.lock t.m;
  let s = { submissions = t.submissions; batches = t.batches; max_batch = t.max_batch } in
  Mutex.unlock t.m;
  s
