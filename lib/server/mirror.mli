(** A physical (block-storage) replica of the served store, maintained
    differentially from the update journal.

    The daemon's source of truth is the XDM store; the mirror keeps
    the §9.2 descriptor representation in lockstep by absorbing
    journal entries after each committed batch — inserted subtrees are
    re-inserted descriptor by descriptor, deletions unlink bottom-up,
    content changes rewrite one value.  With a pager attached to the
    mirror's storage, this is what puts the daemon's data under the
    buffer pool: queries route through the storage navigator and fault
    blocks in and out on demand.

    Absorption runs under the exclusive epoch latch (it mutates the
    replica); queries over the replica run under the shared latch.
    An {!Out_of_sync} escape means the replica can no longer be
    trusted — the server detaches and drops it, falling back to
    store-backed evaluation. *)

exception Out_of_sync of string

type t

val create :
  ?block_capacity:int ->
  Xsm_schema.Update.Journal.t ->
  Xsm_xdm.Store.t ->
  Xsm_xdm.Store.node ->
  t
(** Build the replica of the tree under [root] and subscribe a journal
    cursor (create the mirror before any entries are recorded so it
    sees them all). *)

val storage : t -> Xsm_storage.Block_storage.t

val absorb : t -> Xsm_xdm.Store.t -> unit
(** Apply every journal entry the cursor has not seen yet.  Call with
    the writer latch held.  Raises {!Out_of_sync} (or a storage
    exception) if the replica diverged — drop the mirror then. *)

val detach : t -> unit
(** Unsubscribe the cursor so it stops pinning journal entries. *)
