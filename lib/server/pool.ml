type t = {
  m : Mutex.t;
  c : Condition.t;  (* workers sleep here; also signalled on stop *)
  q : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  size : int;
}

let worker t () =
  let running = ref true in
  while !running do
    Mutex.lock t.m;
    while Queue.is_empty t.q && not t.stop do
      Condition.wait t.c t.m
    done;
    if Queue.is_empty t.q then begin
      (* stop requested and the queue is drained *)
      Mutex.unlock t.m;
      running := false
    end
    else begin
      let task = Queue.pop t.q in
      Mutex.unlock t.m;
      (* the task is a [run] wrapper that never raises *)
      task ()
    end
  done

let create n =
  if n < 1 then invalid_arg "Pool.create: need at least one domain";
  let t =
    { m = Mutex.create (); c = Condition.create (); q = Queue.create (); stop = false;
      domains = []; size = n }
  in
  t.domains <- List.init n (fun _ -> Domain.spawn (worker t));
  t

let size t = t.size

(* one-shot mailbox a submitter blocks on *)
type 'a cell = {
  cm : Mutex.t;
  cc : Condition.t;
  mutable state : [ `Pending | `Done of 'a | `Raised of exn ];
}

let run t f =
  let cell = { cm = Mutex.create (); cc = Condition.create (); state = `Pending } in
  let task () =
    let outcome = try `Done (f ()) with e -> `Raised e in
    Mutex.lock cell.cm;
    cell.state <- outcome;
    Condition.signal cell.cc;
    Mutex.unlock cell.cm
  in
  Mutex.lock t.m;
  if t.stop then begin
    Mutex.unlock t.m;
    invalid_arg "Pool.run: pool is shut down"
  end;
  Queue.push task t.q;
  Condition.signal t.c;
  Mutex.unlock t.m;
  Mutex.lock cell.cm;
  while cell.state = `Pending do
    Condition.wait cell.cc cell.cm
  done;
  let r = cell.state in
  Mutex.unlock cell.cm;
  match r with `Done v -> v | `Raised e -> raise e | `Pending -> assert false

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.c;
  Mutex.unlock t.m;
  List.iter Domain.join t.domains;
  t.domains <- []
