(** The [xsm serve] session protocol: typed requests and responses
    with symmetric JSON codecs over {!Frame}.

    A session opens with a [Hello] handshake (the server answers
    [Welcome] with the session id and protocol version) and then
    pipelines requests freely: each carries a client-chosen [id], and
    every response echoes the id of the request it answers.  The
    server processes one session's requests in order, so responses
    arrive in request order — the id is for the client's bookkeeping,
    not reordering.

    Request kinds mirror the CLI verbs: [Query] (a read-only XPath
    evaluation, answered with the string values of the result nodes
    and the epoch of the snapshot it saw), [Update] (one update-script
    command — the same grammar as [xsm update] scripts), [Validate]
    (an XML document text checked against the server's schema),
    [Stats] (the metrics registry plus server counters), [Shutdown]
    (graceful stop: snapshot, then exit), and [Bye] (end this session
    only). *)

type request =
  | Hello of { client : string }
  | Query of { id : int; path : string }
  | Update of { id : int; command : string }
      (** one update-script line: [insert PATH XML], [insert-text PATH
          TEXT], [delete PATH], [content PATH VALUE], [attr PATH NAME
          VALUE] *)
  | Validate of { id : int; doc : string }
  | Stats of { id : int }
  | Shutdown of { id : int }
  | Bye

type response =
  | Welcome of { session : int; version : int }
  | Nodes of { id : int; epoch : int; values : string list }
      (** query result: string values, and the epoch of the snapshot
          the evaluation ran against *)
  | Applied of { id : int; epoch : int }
      (** update durably committed; [epoch] is the batch's post-epoch *)
  | Validity of { id : int; valid : bool; errors : string list }
  | Stats_reply of { id : int; body : Xsm_obs.Json.t }
  | Stopping of { id : int }  (** shutdown acknowledged *)
  | Failed of { id : int; message : string }
      (** the request with [id] failed; the session stays usable *)

val version : int

val request_to_json : request -> Xsm_obs.Json.t
val request_of_json : Xsm_obs.Json.t -> (request, string) result
val response_to_json : response -> Xsm_obs.Json.t
val response_of_json : Xsm_obs.Json.t -> (response, string) result

val request_id : request -> int option
(** The [id] field, when the request kind carries one. *)
