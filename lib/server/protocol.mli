(** The [xsm serve] session protocol: typed requests and responses
    with symmetric JSON codecs over {!Frame}.

    A session opens with a [Hello] handshake (the server answers
    [Welcome] with the session id and protocol version) and then
    pipelines requests freely: each carries a client-chosen [id], and
    every response echoes the id of the request it answers.  The
    server processes one session's requests in order, so responses
    arrive in request order — the id is for the client's bookkeeping,
    not reordering.

    Request kinds mirror the CLI verbs: [Query] (a read-only XPath
    evaluation, answered with the string values of the result nodes
    and the epoch of the snapshot it saw), [Update] (one update-script
    command — the same grammar as [xsm update] scripts), [Validate]
    (an XML document text checked against the server's schema),
    [Stats] (the metrics registry plus server counters — or the
    OpenMetrics text exposition), [Introspect] (the flight recorder's
    digests, or the server-side spans of one propagated trace),
    [Shutdown] (graceful stop: snapshot, then exit), and [Bye] (end
    this session only).

    {b Trace propagation}: [Query]/[Update]/[Validate] optionally
    carry a traceparent-style {!trace_ctx} — the client's trace id and
    the id of its open span.  The server records its request span (and
    the phase spans under it) with the wire parent attached, so the
    client can later fetch them with [Introspect (Trace_events id)]
    and merge both processes into one Chrome trace. *)

type trace_ctx = {
  trace_id : string;  (** client-generated, opaque hex *)
  parent_span : int;  (** the client-side span awaiting this request *)
}

type introspect_what =
  | Flight  (** the flight recorder's digest rings *)
  | Trace_events of string
      (** server-side spans recorded under this propagated trace id *)

type request =
  | Hello of { client : string }
  | Query of { id : int; path : string; trace : trace_ctx option }
  | Update of { id : int; command : string; trace : trace_ctx option }
      (** one update-script line: [insert PATH XML], [insert-text PATH
          TEXT], [delete PATH], [content PATH VALUE], [attr PATH NAME
          VALUE] *)
  | Validate of { id : int; doc : string; trace : trace_ctx option }
  | Stats of { id : int; openmetrics : bool }
      (** [openmetrics] asks for the text exposition instead of the
          JSON report *)
  | Introspect of { id : int; what : introspect_what }
  | Shutdown of { id : int }
  | Bye

type response =
  | Welcome of { session : int; version : int }
  | Nodes of { id : int; epoch : int; values : string list }
      (** query result: string values, and the epoch of the snapshot
          the evaluation ran against *)
  | Applied of { id : int; epoch : int }
      (** update durably committed; [epoch] is the batch's post-epoch *)
  | Validity of { id : int; valid : bool; errors : string list }
  | Stats_reply of { id : int; body : Xsm_obs.Json.t }
      (** JSON report, or [{"openmetrics": "<text>"}] when asked *)
  | Introspect_reply of { id : int; body : Xsm_obs.Json.t }
      (** [Flight]: the recorder's {!Xsm_obs.Flight.to_json};
          [Trace_events]: [{"events": [...]}] of
          {!Xsm_obs.Trace.event_to_json} objects *)
  | Stopping of { id : int }  (** shutdown acknowledged *)
  | Failed of { id : int; message : string }
      (** the request with [id] failed; the session stays usable *)

val version : int

val request_to_json : request -> Xsm_obs.Json.t
val request_of_json : Xsm_obs.Json.t -> (request, string) result
val response_to_json : response -> Xsm_obs.Json.t
val response_of_json : Xsm_obs.Json.t -> (response, string) result

val request_id : request -> int option
(** The [id] field, when the request kind carries one. *)

val request_trace : request -> trace_ctx option
(** The propagated trace context, when the request kind carries one. *)
