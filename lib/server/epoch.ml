(* Mutex + condition, usable from both systhreads (sessions) and
   domains (the read pool) — OCaml 5 Mutex/Condition span both. *)

type t = {
  m : Mutex.t;
  c : Condition.t;
  mutable readers : int;  (* active read sections *)
  mutable writer : bool;  (* a writer holds, or is draining readers *)
  mutable epoch : int;  (* completed write batches *)
}

let create () = { m = Mutex.create (); c = Condition.create (); readers = 0; writer = false; epoch = 0 }

(* int loads don't tear in OCaml; this is a monotonic hint, the
   authoritative value is the one [read] passes its callback *)
let current t = t.epoch

let read t f =
  Mutex.lock t.m;
  (* [writer] is set the moment a writer arrives, so readers queue
     behind it — writer preference *)
  while t.writer do
    Condition.wait t.c t.m
  done;
  t.readers <- t.readers + 1;
  let epoch = t.epoch in
  Mutex.unlock t.m;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.m;
      t.readers <- t.readers - 1;
      if t.readers = 0 then Condition.broadcast t.c;
      Mutex.unlock t.m)
    (fun () -> f epoch)

let write t f =
  Mutex.lock t.m;
  while t.writer do
    Condition.wait t.c t.m
  done;
  t.writer <- true;
  while t.readers > 0 do
    Condition.wait t.c t.m
  done;
  Mutex.unlock t.m;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.m;
      t.writer <- false;
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.c;
      Mutex.unlock t.m)
    f
