(** A blocking client for one [xsm serve] session: connect, handshake,
    then synchronous request/response calls.  Used by [xsm client] and
    the [bench-serve] load generator; requests are sent one at a time
    (the protocol allows pipelining, but the callers here don't need
    it). *)

type t

val connect : ?client:string -> string -> (t, string) result
(** [connect path] opens the Unix domain socket at [path] and performs
    the [Hello]/[Welcome] handshake; [client] names this peer in the
    handshake (default ["xsm"]).  Fails on connection refusal, framing
    errors or a protocol-version mismatch. *)

val session : t -> int
(** The session id the server assigned in [Welcome]. *)

val query :
  ?trace:Protocol.trace_ctx -> t -> string -> (int * string list, string) result
(** Evaluate an XPath; returns the snapshot epoch and the result
    nodes' string values.  [trace] propagates the caller's trace
    context so the server parents its spans under it. *)

val update : ?trace:Protocol.trace_ctx -> t -> string -> (int, string) result
(** Apply one update-script command; returns the post-batch epoch once
    the write is durably committed. *)

val validate :
  ?trace:Protocol.trace_ctx -> t -> string -> (bool * string list, string) result
(** Validate a document text against the server's schema. *)

val stats : ?openmetrics:bool -> t -> (Xsm_obs.Json.t, string) result
(** The server's stats body; with [openmetrics] the reply is
    [{"openmetrics": "<text exposition>"}] instead of the JSON report. *)

val introspect : t -> Protocol.introspect_what -> (Xsm_obs.Json.t, string) result
(** Fetch the flight recorder's digests, or the server-side spans of
    one propagated trace. *)

val shutdown : t -> (unit, string) result
(** Ask the server to stop gracefully (snapshot + exit). *)

val close : t -> unit
(** Send [Bye] (best-effort) and close the socket. *)
