(** A fixed pool of domains executing submitted closures — the
    parallel read path of [xsm serve].

    Session threads are systhreads (cheap, mostly blocked on socket
    I/O) and share one domain's runtime lock; genuinely parallel
    evaluation needs domains.  The pool spawns [size] domains at
    creation, each looping over a shared task queue.  A session
    submits a closure with {!run} and blocks until its result is
    ready; with [size] > 1, closures from different sessions execute
    simultaneously.

    The closures must be safe to run concurrently — in the server they
    are read-only store traversals under the {!Epoch} shared latch. *)

type t

val create : int -> t
(** [create n] spawns [n] worker domains ([n >= 1];
    [Invalid_argument] otherwise). *)

val size : t -> int

val run : t -> (unit -> 'a) -> 'a
(** Execute the closure on a pool domain and wait for it; an exception
    it raises is re-raised in the caller. *)

val shutdown : t -> unit
(** Finish queued tasks, stop the workers and join their domains.
    {!run} after shutdown raises [Invalid_argument]. *)
