(** The epoch latch: many parallel readers over an immutable view, one
    exclusive writer per batch, and a published epoch that tells a
    reader {e which} view it saw.

    This is how [xsm serve] gets snapshot-consistent parallel reads
    without copying the store.  The store is only ever mutated inside
    {!write}; {!read} sections overlap freely with each other (they
    run on the domain pool, truly in parallel) but never with a
    writer.  The epoch counter increments once per completed write
    batch, so the value handed to a reader identifies the batch
    boundary its view corresponds to: a reader observes the store
    either wholly before or wholly after any batch — never mid-batch.

    Writer preference: once a writer is waiting, new readers block
    until it finishes, so a steady read load cannot starve updates.
    Fairness between writers is the mutex's. *)

type t

val create : unit -> t
(** A fresh latch at epoch 0. *)

val current : t -> int
(** The epoch of the last completed write batch (0 initially).  Reads
    the counter without taking the latch — callers that need the value
    to correspond to a stable view should use the one {!read} hands
    them instead. *)

val read : t -> (int -> 'a) -> 'a
(** [read t f] runs [f epoch] under the shared latch: concurrent with
    other readers, excluded from writers.  [epoch] is the view's epoch.
    The latch is released when [f] returns or raises. *)

val write : t -> (unit -> 'a) -> 'a
(** [write t f] runs [f] exclusively: no reader or other writer
    overlaps it.  The epoch increments {e after} [f] completes
    (normally or by exception — the store may have been partially
    mutated, and readers must still see a post-batch epoch). *)
