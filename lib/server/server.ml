module Store = Xsm_xdm.Store
module Update = Xsm_schema.Update
module Journal = Xsm_schema.Update.Journal
module Labeler = Xsm_numbering.Labeler
module Wal = Xsm_persist.Wal
module Snapshot = Xsm_persist.Snapshot
module Eval = Xsm_xpath.Eval.Over_store
module Seval = Xsm_xpath.Eval.Over_storage
module Bs = Xsm_storage.Block_storage
module Pager = Xsm_pager.Pager
module Page_file = Xsm_pager.Page_file
module Pl = Xsm_xpath.Planner.Over_store
module Planner = Xsm_xpath.Planner
module Plan = Xsm_xpath.Plan
module Json = Xsm_obs.Json
module Metrics = Xsm_obs.Metrics
module Counter = Metrics.Counter
module Gauge = Metrics.Gauge
module Histogram = Metrics.Histogram
module Trace = Xsm_obs.Trace
module Clock = Xsm_obs.Clock
module Flight = Xsm_obs.Flight
module Qlog = Xsm_obs.Qlog
module P = Protocol

let m_sessions = Counter.make ~help:"sessions accepted" "server.sessions"
let m_requests = Counter.make ~help:"requests served" "server.requests"
let m_queries = Counter.make ~help:"query requests" "server.queries"
let m_updates = Counter.make ~help:"update requests" "server.updates"
let m_failures = Counter.make ~help:"requests answered with an error" "server.failures"
let h_query_ns = Histogram.make ~help:"query latency (ns, server side)" "server.query_ns"
let h_update_ns = Histogram.make ~help:"update latency (ns, server side)" "server.update_ns"

let g_inflight =
  Gauge.make ~help:"query/update/validate requests currently executing" "server.inflight"

(* the pager registers these on module load (xsm_pager initializes
   before this library); get-or-create returns the same handles, so a
   request can snapshot process-wide pager activity around itself *)
let m_pager_hits = Counter.make "pager.hits"
let m_pager_evictions = Counter.make "pager.evictions"

let pager_counts () = (Counter.value m_pager_hits, Counter.value m_pager_evictions)

type config = {
  socket_path : string;
  snapshot_path : string option;
  wal_path : string option;
  domains : int;
  group_commit : bool;
  use_index : bool;
  page_file : string option;
  pool_capacity : int;
  flight_capacity : int;
  slow_log : string option;
  slow_threshold_ms : float;
}

type t = {
  config : config;
  store : Store.t;
  root : Store.node;
  labels : Labeler.t option;
  schema : Xsm_schema.Ast.schema option;
  journal : Journal.t;
  label_cursor : Journal.cursor option;
  planner : Pl.t option;  (* built only under [use_index]: an attached
                             planner's journal cursor pins entries *)
  epoch : Epoch.t;
  pool : Pool.t;
  wal : Wal.Writer.t option;
  (* the disk-paged replica: one buffer pool shared by every session,
     faulted under the shared latch, mutated under the exclusive one *)
  mutable mirror : Mirror.t option;
  page_file : Page_file.t option;
  commit : (string, (unit, string) result) Commit.t;
  (* observability: the always-on digest ring, the slow-query log, the
     last planner digest (written by eval under [m], consumed by the
     same request before releasing it), the latest batch-fsync
     interval (written by the commit leader, read by acked updates) *)
  flight : Flight.t;
  qlog : Qlog.t option;
  slow_ns : int64;
  last_digest : Planner.digest option ref;
  mutable last_fsync : int64 * int64;
  mutable inflight : int;
  (* the server mutex: metrics registry and trace ring (not
     thread-safe), planner evaluation, flight recorder, session
     registry *)
  m : Mutex.t;
  mutable next_session : int;
  mutable session_fds : (int * Unix.file_descr) list;
  mutable stopping : bool;
  stop_rd : Unix.file_descr;  (* self-pipe: request_stop writes, serve selects *)
  stop_wr : Unix.file_descr;
}

(* ------------------------------------------------------------------ *)
(* Update commands: the update-script grammar of `xsm update`, one
   line per request, applied by the group-commit leader under the
   exclusive epoch latch. *)

let split1 s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.trim (String.sub s (i + 1) (String.length s - i - 1)))

let ( let* ) = Result.bind

let target srv path =
  if path = "" then Error "missing target path"
  else
    match Eval.eval_string srv.store srv.root path with
    | Ok (n :: _) -> Ok n
    | Ok [] -> Error (path ^ ": no matching node")
    | Error e -> Error (path ^ ": " ^ e)

let parse_op srv line =
  let cmd, rest = split1 (String.trim line) in
  match cmd with
  | "insert" ->
    let path, xml = split1 rest in
    let* parent = target srv path in
    let* tree =
      Result.map_error
        (fun e -> "fragment: " ^ Xsm_xml.Parser.error_to_string e)
        (Xsm_xml.Parser.parse_element xml)
    in
    Ok (Update.Insert_element { parent; before = None; tree })
  | "insert-text" ->
    let path, text = split1 rest in
    let* parent = target srv path in
    Ok (Update.Insert_text { parent; before = None; text })
  | "delete" ->
    let* node = target srv rest in
    Ok (Update.Delete node)
  | "content" ->
    let path, value = split1 rest in
    let* node = target srv path in
    Ok (Update.Replace_content { node; value })
  | "attr" ->
    let path, rest = split1 rest in
    let name, value = split1 rest in
    let* element = target srv path in
    let* name = Result.map_error (fun e -> "attribute name: " ^ e) (Xsm_xml.Name.of_string name) in
    Ok (Update.Set_attribute { element; name; value })
  | other -> Error (Printf.sprintf "unknown update command %S" other)

(* §9.3 label maintenance through one journal entry — the same
   discipline as Recovery: inserted subtrees are labelled relative to
   their neighbours, deleted ones drop their labels, existing labels
   never move (Proposition 1). *)
let maintain_labels store labels entry =
  match entry with
  | Journal.Content _ -> ()
  | Journal.Deleted n -> Labeler.remove_subtree labels store n
  | Journal.Inserted n -> (
    match Store.parent store n with
    | None -> ()
    | Some parent ->
      let ordered = Store.attributes store parent @ Store.children store parent in
      let rec previous prev = function
        | [] -> None
        | x :: rest -> if Store.equal_node x n then prev else previous (Some x) rest
      in
      let after = previous None ordered in
      Labeler.label_inserted_subtree labels store ~parent ~after n)

(* Apply one command.  Runs inside the leader's exclusive latch
   section.  The WAL record is captured before the update (addresses
   describe the pre-state) but appended only after a successful apply,
   so a rejected command leaves no orphan record that would poison
   replay — the client is only acknowledged after the batch fsync
   either way. *)
let apply_command srv line =
  let* op = parse_op srv line in
  let* wop =
    match srv.wal with
    | None -> Ok None
    | Some _ -> Result.map Option.some (Wal.op_of_update srv.store ~root:srv.root op)
  in
  let* _applied = Update.apply ~journal:srv.journal srv.store op in
  (match srv.wal, wop with
  | Some w, Some wop -> Wal.Writer.append w wop
  | _ -> ());
  (match srv.labels, srv.label_cursor with
  | Some t, Some c -> Journal.iter srv.journal c (maintain_labels srv.store t)
  | _ -> ());
  Ok ()

let run_batch srv lines =
  let results =
    Epoch.write srv.epoch (fun () ->
        let rs = List.map (apply_command srv) lines in
        (* keep the paged replica in lockstep while the latch is still
           exclusive; a diverged replica is dropped, never served *)
        (match srv.mirror with
        | Some m -> (
          try Mirror.absorb m srv.store
          with e ->
            Mirror.detach m;
            srv.mirror <- None;
            Printf.eprintf "xsm serve: storage mirror dropped: %s\n%!" (Printexc.to_string e))
        | None -> ());
        rs)
  in
  (* the group fsync happens outside the latch: readers proceed while
     the batch hits the disk, followers are only released after it.
     The interval is kept so acked updates can attribute their fsync
     wait (flight digests, propagated trace spans). *)
  (match srv.wal with
  | Some w ->
    let s0 = Clock.now_ns () in
    Wal.Writer.sync w;
    srv.last_fsync <- (s0, Clock.now_ns ())
  | None -> ());
  (* GC/runtime gauges ride the batch boundary, off the request path *)
  Metrics.Runtime.sample ();
  results

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)

let locked srv f =
  Mutex.lock srv.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock srv.m) f

(* Entry bookkeeping for digest-carrying requests: the inflight gauge
   plus the process-wide pager counters this request will diff
   against.  Exact on the serialized planner path, best-effort under
   concurrent pool readers. *)
let begin_request srv =
  locked srv (fun () ->
      srv.inflight <- srv.inflight + 1;
      Gauge.set g_inflight (float_of_int srv.inflight));
  (Clock.now_ns (), pager_counts ())

let truncate_detail s =
  if String.length s <= 160 then s else String.sub s 0 157 ^ "..."

(* One exit point for query/update/validate requests — success,
   failure and exception alike: metrics, the request's span tree
   (root + phases, carrying the propagated trace context), the flight
   digest, and the slow-query log. *)
let finish_request srv ~session ~id ~kind ~detail ~counter ~hist ~trace ~phases ~rows
    ~fsync_ns ~outcome ~pager0 t0 =
  let stop_ns = Clock.now_ns () in
  let latency_ns =
    let d = Int64.sub stop_ns t0 in
    if Int64.compare d 0L < 0 then 0L else d
  in
  let hits1, ev1 = pager_counts () in
  locked srv (fun () ->
      Counter.incr m_requests;
      if counter != m_requests then Counter.incr counter;
      (match hist with
      | Some h -> Histogram.observe h (Int64.to_float latency_ns)
      | None -> ());
      srv.inflight <- srv.inflight - 1;
      Gauge.set g_inflight (float_of_int srv.inflight);
      (* span tree: the request root adopts the wire trace context as
         attributes; phases hang off the root.  [Introspect
         (Trace_events id)] filters the ring on the "trace" attr. *)
      let trace_attrs =
        match trace with
        | None -> []
        | Some { P.trace_id; parent_span } ->
          [ ("trace", trace_id); ("wire_parent", string_of_int parent_span) ]
      in
      let root =
        Trace.record_linked ("serve." ^ kind) ~parent:0 ~start_ns:t0 ~stop_ns
          ~attrs:
            ([ ("session", string_of_int session); ("id", string_of_int id) ]
            @ trace_attrs)
      in
      if root <> 0 then
        List.iter
          (fun (pname, p0, p1) ->
            ignore
              (Trace.record_linked pname ~parent:root ~depth:1 ~start_ns:p0 ~stop_ns:p1
                 ~attrs:trace_attrs))
          phases;
      (* flight digest: planner evaluations left their digest in
         [last_digest] (same request, same mutex); estimates are
         interval arithmetic, never a re-evaluation *)
      let dg = !(srv.last_digest) in
      srv.last_digest := None;
      let route, est_lo, est_hi, plan_thunk =
        match dg with
        | None -> ("", -1, -1, fun () -> None)
        | Some d ->
          let lo, hi =
            match d.Planner.dg_estimate () with
            | Some e -> (
              ( e.Plan.e_rows.Plan.lo,
                match e.Plan.e_rows.Plan.hi with Some h -> h | None -> -1 ))
            | None -> (-1, -1)
          in
          (d.Planner.dg_route, lo, hi, fun () -> Some (Planner.digest_json d))
      in
      let slow = Int64.compare latency_ns srv.slow_ns >= 0 in
      let failed = match outcome with Flight.Failed _ -> true | Flight.Done -> false in
      let digest : Flight.digest =
        {
          seq = 0;
          at_ns = t0;
          kind;
          detail = truncate_detail detail;
          route;
          est_lo;
          est_hi;
          actual_rows = rows;
          pager_hits = max 0 (hits1 - fst pager0);
          pager_evictions = max 0 (ev1 - snd pager0);
          fsync_ns;
          latency_ns;
          outcome;
          session;
          request = id;
          trace_id = (match trace with Some t -> t.P.trace_id | None -> "");
          (* the plan is only materialized for the digests someone
             will read: slow requests and failures *)
          plan = (if slow || failed then plan_thunk () else None);
        }
      in
      Flight.record srv.flight digest;
      match srv.qlog with
      | Some q when slow -> Qlog.log q (Flight.digest_to_json digest)
      | _ -> ())

(* Stats/Introspect bookkeeping: counted, no digest — introspection
   watching itself would drown the signal it reports. *)
let record_request srv ~session ~id ~name t0 =
  let stop_ns = Clock.now_ns () in
  locked srv (fun () ->
      Counter.incr m_requests;
      Trace.record_span name ~start_ns:t0 ~stop_ns
        ~attrs:[ ("session", string_of_int session); ("id", string_of_int id) ])

let run_query srv path =
  let phases = ref [] in
  let phase name p0 p1 = phases := (name, p0, p1) :: !phases in
  let result =
    match srv.planner with
    | Some planner ->
      (* planner indexes are mutable (journal drain, memoized results):
         serialized under the server mutex, still snapshot-consistent
         under the shared latch *)
      let t_lock = Clock.now_ns () in
      locked srv (fun () ->
          let t_latch = Clock.now_ns () in
          phase "serve.lock" t_lock t_latch;
          Epoch.read srv.epoch (fun epoch ->
              let t_plan = Clock.now_ns () in
              phase "serve.latch" t_latch t_plan;
              let r =
                match Pl.eval_string planner path with
                | Ok nodes -> Ok (epoch, List.map (Store.string_value srv.store) nodes)
                | Error e -> Error e
              in
              phase "serve.plan" t_plan (Clock.now_ns ());
              r))
    | None ->
      (* the parallel path: evaluation on a pool domain under the shared
         latch — an immutable snapshot view.  With a paged mirror the
         query navigates the descriptor representation, faulting blocks
         through the shared buffer pool; otherwise it runs on the XDM
         store directly *)
      let t_pool = Clock.now_ns () in
      Pool.run srv.pool (fun () ->
          let t_latch = Clock.now_ns () in
          phase "serve.pool" t_pool t_latch;
          Epoch.read srv.epoch (fun epoch ->
              let t_eval = Clock.now_ns () in
              phase "serve.latch" t_latch t_eval;
              let r =
                match srv.mirror with
                | Some m -> (
                  let bs = Mirror.storage m in
                  match Seval.eval_string bs (Bs.root bs) path with
                  | Ok descs -> Ok (epoch, List.map (Bs.string_value bs) descs)
                  | Error e -> Error e)
                | None -> (
                  match Eval.eval_string srv.store srv.root path with
                  | Ok nodes -> Ok (epoch, List.map (Store.string_value srv.store) nodes)
                  | Error e -> Error e)
              in
              phase "serve.eval" t_eval (Clock.now_ns ());
              r))
  in
  (result, List.rev !phases)

let run_validate srv doc_text =
  match Xsm_xml.Parser.parse_document doc_text with
  | Error e -> (false, [ Xsm_xml.Parser.error_to_string e ])
  | Ok doc -> (
    match srv.schema with
    | None -> (true, [])  (* no schema loaded: well-formedness only *)
    | Some schema -> (
      (* the validator memoizes compiled automata per group; serialize
         against other validators via the server mutex *)
      match
        locked srv (fun () -> Xsm_schema.Validator.validate_document doc schema)
      with
      | Ok _ -> (true, [])
      | Error errors -> (false, List.map Xsm_schema.Validator.error_to_string errors)))

let stats_body srv ~openmetrics =
  locked srv (fun () ->
      Metrics.Runtime.sample ();
      if openmetrics then
        Json.Obj [ ("openmetrics", Json.Str (Metrics.to_openmetrics Metrics.default)) ]
      else
        let c = Commit.stats srv.commit in
        let pager_field =
          match srv.mirror with
          | Some m -> (
            match Bs.pager (Mirror.storage m) with
            | Some p -> [ ("pager", Pager.stats_json (Pager.stats p)) ]
            | None -> [])
          | None -> []
        in
        Json.Obj
          ([
            ( "server",
              Json.Obj
                [
                  ("epoch", Json.int (Epoch.current srv.epoch));
                  ("domains", Json.int (Pool.size srv.pool));
                  ("sessions", Json.int (List.length srv.session_fds));
                  ("group_commit", Json.Bool srv.config.group_commit);
                  ( "commit",
                    Json.Obj
                      [
                        ("submissions", Json.int c.Commit.submissions);
                        ("batches", Json.int c.Commit.batches);
                        ("max_batch", Json.int c.Commit.max_batch);
                      ] );
                ] );
            ("metrics", Metrics.to_json Metrics.default);
          ]
          @ pager_field))

let introspect_body srv what =
  locked srv (fun () ->
      match what with
      | P.Flight -> Flight.to_json srv.flight
      | P.Trace_events trace_id ->
        let events =
          List.filter
            (fun (e : Trace.event) ->
              List.assoc_opt "trace" e.attrs = Some trace_id)
            (Trace.events ())
        in
        Json.Obj
          [
            ("trace_id", Json.Str trace_id);
            (* event timestamps count from this process's clock epoch;
               the client needs it to rebase them onto its own *)
            ("clock_epoch_s", Json.Num (Clock.epoch_wall ()));
            ("events", Json.Arr (List.map Trace.event_to_json events));
          ])

let fail srv ~id message =
  locked srv (fun () -> Counter.incr m_failures);
  P.Failed { id; message }

(* [handle] returns the response and what the session does after
   sending it: [`Continue] serving, [`Close] this session, or [`Stop]
   the whole server.  Stopping is deferred until after the response is
   on the wire — firing the stop pipe first would let the teardown's
   [Unix.shutdown] race the [Stopping] ack out of existence. *)
let handle srv ~session req =
  match req with
  | P.Hello _ -> (Some (P.Welcome { session; version = P.version }), `Continue)
  | P.Bye -> (None, `Close)
  | P.Query { id; path; trace } -> (
    let t0, pager0 = begin_request srv in
    let finish = finish_request srv ~session ~id ~kind:"query" ~detail:path
        ~counter:m_queries ~hist:(Some h_query_ns) ~trace ~fsync_ns:0L ~pager0 t0
    in
    match run_query srv path with
    | Ok (epoch, values), phases ->
      finish ~phases ~rows:(List.length values) ~outcome:Flight.Done;
      (Some (P.Nodes { id; epoch; values }), `Continue)
    | Error e, phases ->
      finish ~phases ~rows:0 ~outcome:(Flight.Failed e);
      (Some (fail srv ~id e), `Continue)
    | exception e ->
      let msg = Printexc.to_string e in
      finish ~phases:[] ~rows:0 ~outcome:(Flight.Failed msg);
      (Some (fail srv ~id msg), `Continue))
  | P.Update { id; command; trace } -> (
    let t0, pager0 = begin_request srv in
    let finish = finish_request srv ~session ~id ~kind:"update" ~detail:command
        ~counter:m_updates ~hist:(Some h_update_ns) ~trace ~pager0 t0
    in
    match Commit.submit srv.commit command with
    | Ok () ->
      let t1 = Clock.now_ns () in
      let f0, f1 = srv.last_fsync in
      (* the leader set [last_fsync] before releasing this follower;
         an interval predating the request belongs to an earlier
         batch (no WAL, or a raced overwrite) and is not ours *)
      let phases, fsync_ns =
        if Option.is_some srv.wal && Int64.compare f0 t0 >= 0 then
          ( [ ("serve.commit", t0, t1); ("serve.wal.fsync", f0, f1) ],
            Int64.sub f1 f0 )
        else ([ ("serve.commit", t0, t1) ], 0L)
      in
      finish ~fsync_ns ~phases ~rows:0 ~outcome:Flight.Done;
      (Some (P.Applied { id; epoch = Epoch.current srv.epoch }), `Continue)
    | Error e ->
      finish ~fsync_ns:0L ~phases:[] ~rows:0 ~outcome:(Flight.Failed e);
      (Some (fail srv ~id e), `Continue)
    | exception e ->
      let msg = Printexc.to_string e in
      finish ~fsync_ns:0L ~phases:[] ~rows:0 ~outcome:(Flight.Failed msg);
      (Some (fail srv ~id msg), `Continue))
  | P.Validate { id; doc; trace } ->
    let t0, pager0 = begin_request srv in
    let valid, errors = run_validate srv doc in
    finish_request srv ~session ~id ~kind:"validate" ~detail:doc ~counter:m_requests
      ~hist:None ~trace ~phases:[] ~rows:(List.length errors) ~fsync_ns:0L
      ~outcome:(if valid then Flight.Done else Flight.Failed "invalid") ~pager0 t0;
    (Some (P.Validity { id; valid; errors }), `Continue)
  | P.Stats { id; openmetrics } ->
    let t0 = Clock.now_ns () in
    let body = stats_body srv ~openmetrics in
    record_request srv ~session ~id ~name:"serve.stats" t0;
    (Some (P.Stats_reply { id; body }), `Continue)
  | P.Introspect { id; what } ->
    let t0 = Clock.now_ns () in
    let body = introspect_body srv what in
    record_request srv ~session ~id ~name:"serve.introspect" t0;
    (Some (P.Introspect_reply { id; body }), `Continue)
  | P.Shutdown { id } -> (Some (P.Stopping { id }), `Stop)

let trigger_stop srv =
  srv.stopping <- true;
  try ignore (Unix.write srv.stop_wr (Bytes.make 1 's') 0 1) with Unix.Unix_error _ -> ()

let session_loop srv session fd =
  let send resp =
    match Frame.send fd (P.response_to_json resp) with Ok () -> true | Error _ -> false
  in
  let rec loop () =
    match Frame.recv fd with
    | Ok None | Error _ -> ()  (* peer gone; errors end the session *)
    | Ok (Some j) -> (
      match P.request_of_json j with
      | Error e -> if send (fail srv ~id:(-1) e) then loop ()
      | Ok req -> (
        let resp, action = handle srv ~session req in
        let sent = match resp with None -> true | Some r -> send r in
        match action with
        | `Continue -> if sent then loop ()
        | `Close -> ()
        | `Stop -> trigger_stop srv))
  in
  loop ();
  (* deregister before closing, so shutdown never touches a reused fd *)
  locked srv (fun () ->
      srv.session_fds <- List.filter (fun (s, _) -> s <> session) srv.session_fds);
  (try Unix.close fd with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let create config ~store ~root ?labels ?schema () =
  if config.domains < 1 then Error "server: need at least one domain"
  else
    let* wal =
      match config.wal_path with
      | None -> Ok None
      | Some path ->
        (* group commit leaves fsync to the batch boundary; the
           baseline pays one per record *)
        let sync_every = if config.group_commit then max_int else 1 in
        Result.map Option.some
          (Result.map_error Wal.error_message (Wal.Writer.create ~sync_every path))
    in
    let* qlog =
      match config.slow_log with
      | None -> Ok None
      | Some path ->
        Result.map Option.some
          (Qlog.create
             ~threshold_ns:(Int64.of_float (config.slow_threshold_ms *. 1e6))
             path)
    in
    let journal = Journal.create () in
    let last_digest = ref None in
    let planner =
      if config.use_index then begin
        let p = Pl.create store root in
        Xsm_xpath.Planner.attach_journal p journal;
        (* every evaluation leaves its digest for the request that ran
           it — same thread, same server mutex *)
        Pl.set_digest_sink p (Some (fun d -> last_digest := Some d));
        Some p
      end
      else None
    in
    let label_cursor =
      match labels with Some _ -> Some (Journal.subscribe journal) | None -> None
    in
    let* mirror, page_file =
      match config.page_file with
      | None -> Ok (None, None)
      | Some path ->
        if config.pool_capacity < 2 then Error "server: pool capacity must be >= 2"
        else (
          try
            let pf = Page_file.create path in
            let m = Mirror.create journal store root in
            let bs = Mirror.storage m in
            (match wal with
            | Some w -> Bs.set_lsn_source bs (fun () -> Wal.Writer.lsn w)
            | None -> ());
            ignore
              (Bs.attach_pager
                 ?wal:(Option.map Wal.Writer.pager_hook wal)
                 bs ~capacity:config.pool_capacity pf);
            Ok (Some m, Some pf)
          with e -> Error ("server: page file: " ^ Printexc.to_string e))
    in
    let stop_rd, stop_wr = Unix.pipe () in
    (* the commit queue's batch runner needs the server it belongs to;
       tie the knot through a ref rather than a recursive value *)
    let srv_cell = ref None in
    let run lines =
      match !srv_cell with Some srv -> run_batch srv lines | None -> assert false
    in
    (* the daemon's trace ring is always live: bounded memory, <2%
       enabled-span overhead (E15), and [Introspect (Trace_events _)]
       must be able to answer for any propagated request *)
    Xsm_obs.Obs.enable ();
    let srv =
      {
        config;
        store;
        root;
        labels;
        schema;
        journal;
        label_cursor;
        planner;
        epoch = Epoch.create ();
        pool = Pool.create config.domains;
        wal;
        mirror;
        page_file;
        (* without group commit each request commits alone: its own
           latch acquisition, its own fsync — the E17 baseline *)
        commit = Commit.create ~limit:(if config.group_commit then max_int else 1) ~run ();
        flight = Flight.create ~capacity:config.flight_capacity ();
        qlog;
        slow_ns = Int64.of_float (config.slow_threshold_ms *. 1e6);
        last_digest;
        last_fsync = (0L, 0L);
        inflight = 0;
        m = Mutex.create ();
        next_session = 0;
        session_fds = [];
        stopping = false;
        stop_rd;
        stop_wr;
      }
    in
    srv_cell := Some srv;
    Ok srv

let request_stop = trigger_stop

let sessions_served srv = locked srv (fun () -> srv.next_session)

let flight srv = srv.flight

let serve ?(on_ready = fun () -> ()) srv =
  (* a peer that vanishes mid-reply must surface as an EPIPE on that
     session's write, never kill the daemon *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    (try
       if Sys.file_exists srv.config.socket_path then Sys.remove srv.config.socket_path;
       Unix.bind sock (Unix.ADDR_UNIX srv.config.socket_path);
       Unix.listen sock 64;
       Ok ()
     with
    | Unix.Unix_error (err, fn, _) ->
      Error (Printf.sprintf "server: %s: %s" fn (Unix.error_message err))
    | Sys_error e -> Error ("server: " ^ e))
  with
  | Error _ as e ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    e
  | Ok () ->
    on_ready ();
    let threads = ref [] in
    (* accept until the stop pipe fires: select keeps the loop
       responsive to request_stop even with no connection pending *)
    let rec accept_loop () =
      if not srv.stopping then begin
        match Unix.select [ sock; srv.stop_rd ] [] [] (-1.0) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
        | readable, _, _ ->
          if List.mem srv.stop_rd readable then ()
          else if List.mem sock readable then begin
            match Unix.accept sock with
            | exception Unix.Unix_error _ -> accept_loop ()
            | fd, _ ->
              let session =
                locked srv (fun () ->
                    let s = srv.next_session in
                    srv.next_session <- s + 1;
                    srv.session_fds <- (s, fd) :: srv.session_fds;
                    Counter.incr m_sessions;
                    s)
              in
              threads := Thread.create (fun () -> session_loop srv session fd) () :: !threads;
              accept_loop ()
          end
          else accept_loop ()
      end
    in
    accept_loop ();
    (try Unix.close sock with Unix.Unix_error _ -> ());
    (* unblock sessions parked in recv, then wait for them *)
    locked srv (fun () ->
        List.iter
          (fun (_, fd) -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
          srv.session_fds);
    List.iter Thread.join !threads;
    Pool.shutdown srv.pool;
    (* checkpoint the paged replica while the WAL writer is still
       open: flushing dirty pages may force a final sync *)
    (match srv.mirror with
    | Some m -> (
      let lsn = match srv.wal with Some w -> Wal.Writer.lsn w | None -> 0 in
      try Bs.checkpoint (Mirror.storage m) ~lsn
      with e ->
        Printf.eprintf "xsm serve: page-file checkpoint failed: %s\n%!" (Printexc.to_string e))
    | None -> ());
    (match srv.page_file with
    | Some pf -> ( try Page_file.close pf with _ -> ())
    | None -> ());
    (match srv.wal with Some w -> Wal.Writer.close w | None -> ());
    (match srv.qlog with Some q -> Qlog.close q | None -> ());
    let snap_result =
      match srv.config.snapshot_path with
      | None -> Ok ()
      | Some path -> (
        match Snapshot.save ?labels:srv.labels ~path srv.store srv.root with
        | Ok _ ->
          (* checkpoint: the snapshot subsumes the log, so the WAL is
             dropped — recover from the snapshot alone round-trips *)
          (match srv.config.wal_path with
          | Some wp when Sys.file_exists wp -> Sys.remove wp
          | _ -> ());
          Ok ()
        | Error e -> Error ("server: shutdown snapshot: " ^ e))
    in
    (try Unix.close srv.stop_rd with Unix.Unix_error _ -> ());
    (try Unix.close srv.stop_wr with Unix.Unix_error _ -> ());
    if Sys.file_exists srv.config.socket_path then Sys.remove srv.config.socket_path;
    snap_result
