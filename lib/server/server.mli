(** The [xsm serve] daemon: one process owning one store, its labels,
    planner indexes and WAL, serving concurrent sessions over a Unix
    domain socket.

    {b Concurrency model.}  Each accepted connection runs on a
    systhread (cheap, mostly blocked on socket I/O).  Read-only
    queries are executed on a pool of {!Pool.size} {e domains} under
    the shared {!Epoch} latch, so they run truly in parallel against
    an immutable view of the store.  Updates from all sessions funnel
    through a {!Commit} group-commit queue: the leader applies the
    whole batch under the exclusive latch — readers observe the store
    only before or after a batch, never mid-batch — and pays a single
    WAL fsync for all of it.  With [group_commit = false] every record
    fsyncs individually (the E17 baseline).

    {b Lifecycle.}  The caller boots the state (fresh document,
    snapshot load, or crash recovery) and hands it to {!create};
    {!serve} binds the socket and blocks until a [Shutdown] request or
    {!request_stop} (the CLI wires SIGTERM/SIGINT to it).  Graceful
    shutdown drains sessions, snapshots the store to [snapshot_path]
    and removes the WAL it subsumes — a checkpoint — so
    [xsm recover SNAPSHOT] round-trips the final state.

    {b Telemetry.}  Tracing is always on in the daemon (bounded ring).
    Every request records an {!Xsm_obs.Trace} span ([serve.query],
    [serve.update], …) tagged with session and request ids — plus the
    propagated trace id when the client sent a
    {!Protocol.trace_ctx} — with phase children underneath (lock wait,
    latch wait, plan/eval, commit, WAL fsync).  Every
    query/update/validate also leaves a digest in the always-on
    {!Xsm_obs.Flight} recorder (route, estimated vs actual rows, pager
    hit/eviction deltas, fsync and total latency, outcome); requests
    over [slow_threshold_ms] — and failures — keep their plan attached
    and, when [slow_log] is set, append a JSON line to the slow-query
    log.  [Stats] requests report the registry plus live server state,
    or the OpenMetrics text exposition; [Introspect] serves the flight
    recorder and per-trace server spans.  GC/runtime gauges are
    sampled at every commit-batch boundary. *)

type config = {
  socket_path : string;  (** Unix domain socket to bind *)
  snapshot_path : string option;  (** written at graceful shutdown *)
  wal_path : string option;  (** WAL appended to while serving *)
  domains : int;  (** read-pool size, >= 1 *)
  group_commit : bool;  (** [false]: fsync every WAL record (baseline) *)
  use_index : bool;  (** route queries through the planner (serialized)
                         instead of the parallel pure evaluator *)
  page_file : string option;
      (** when set, maintain a disk-paged {!Xsm_storage.Block_storage}
          replica of the store (a {!Mirror}) under a buffer pool backed
          by this file; non-indexed queries evaluate over it, faulting
          blocks through the pool from all read domains.  Checkpointed
          at graceful shutdown. *)
  pool_capacity : int;  (** buffer-pool capacity in blocks, >= 2 *)
  flight_capacity : int;  (** flight-recorder ring size (digests) *)
  slow_log : string option;  (** append slow-request JSON lines here *)
  slow_threshold_ms : float;
      (** a request at least this slow keeps its plan in the flight
          digest and goes to [slow_log] *)
}

type t

val create :
  config ->
  store:Xsm_xdm.Store.t ->
  root:Xsm_xdm.Store.node ->
  ?labels:Xsm_numbering.Labeler.t ->
  ?schema:Xsm_schema.Ast.schema ->
  unit ->
  (t, string) result
(** Assemble a server over booted state.  Opens the WAL writer (the
    file must be a WAL or fresh — {!Xsm_persist.Wal.Writer.create}
    semantics), spawns the domain pool, builds the planner and
    subscribes label maintenance to the update journal. *)

val serve : ?on_ready:(unit -> unit) -> t -> (unit, string) result
(** Bind, listen and run until stopped; [on_ready] fires once the
    socket accepts connections (test/bench synchronization).  Returns
    after graceful teardown: sessions joined, snapshot written, WAL
    checkpointed, pool shut down. *)

val request_stop : t -> unit
(** Initiate graceful shutdown from outside a session — signal
    handlers, tests.  Async-signal-safe: writes one byte to the
    stop pipe. *)

val sessions_served : t -> int
(** Sessions accepted so far (for tests). *)

val flight : t -> Xsm_obs.Flight.t
(** The server's flight recorder (for tests and in-process embedding;
    sessions reach it through [Introspect]). *)
