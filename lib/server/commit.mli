(** Group commit: concurrent submitters, one leader, one fsync per
    batch.

    Durability demands that an update is acknowledged only after its
    WAL record reached disk, and an fsync costs milliseconds — orders
    of magnitude more than applying the update.  Paying one fsync
    {e per request} caps write throughput at [1/t_fsync] regardless of
    concurrency.  Group commit amortizes it: the first submitter to
    arrive becomes the {e leader}, drains every queued submission,
    runs them as one batch (apply + WAL append each, then a single
    fsync), and wakes the {e followers}, whose requests rode along.
    Submissions arriving while a batch runs form the next batch, so
    under load the batch size adapts to the fsync latency — the
    classic leader/follower commit protocol.

    The module is policy-free: [run] is injected, so tests drive it
    with plain list appends and a counted "fsync", and the server
    wires it to the epoch latch and the real WAL. *)

type ('req, 'res) t

val create : ?limit:int -> run:('req list -> 'res list) -> unit -> ('req, 'res) t
(** [run batch] executes one batch — in the server: apply every
    request under the exclusive {!Epoch.write} latch, then one WAL
    fsync — and returns one result per request, in order.  It is only
    ever called by one leader at a time.  If it raises (or returns a
    list of the wrong length), every submission of that batch fails
    with that exception.

    [limit] caps the batch size (default: unlimited).  [limit:1] turns
    the queue into a strict commit-per-request serializer — the E17
    baseline, where every request pays its own latch acquisition and
    its own fsync. *)

val submit : ('req, 'res) t -> 'req -> 'res
(** Hand in a request and block until the batch containing it has
    fully committed (its [run] returned).  Re-raises the batch's
    exception on failure.  Thread-safe. *)

type stats = {
  submissions : int;  (** requests submitted *)
  batches : int;  (** [run] invocations — fsyncs, in the server *)
  max_batch : int;  (** largest batch so far *)
}

val stats : ('req, 'res) t -> stats
