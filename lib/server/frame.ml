module Json = Xsm_obs.Json

let max_frame = 16 * 1024 * 1024

let rec really_write fd b off len =
  if len > 0 then begin
    let n = try Unix.write fd b off len with Unix.Unix_error (Unix.EINTR, _, _) -> 0 in
    really_write fd b (off + n) (len - n)
  end

(* [`Eof n] = the stream ended after [n] of the requested bytes *)
let really_read fd b off len =
  let got = ref 0 in
  let eof = ref false in
  while !got < len && not !eof do
    match Unix.read fd b (off + !got) (len - !got) with
    | 0 -> eof := true
    | n -> got := !got + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  if !eof then `Eof !got else `All

let send fd json =
  try
    let payload = Bytes.unsafe_of_string (Json.to_string json) in
    let len = Bytes.length payload in
    if len > max_frame then Error (Printf.sprintf "frame: payload of %d bytes too large" len)
    else begin
      let hdr = Bytes.create 4 in
      Bytes.set_int32_be hdr 0 (Int32.of_int len);
      really_write fd hdr 0 4;
      really_write fd payload 0 len;
      Ok ()
    end
  with
  | Unix.Unix_error (err, fn, _) ->
    Error (Printf.sprintf "frame: %s: %s" fn (Unix.error_message err))
  | Sys_error e -> Error ("frame: " ^ e)

let recv fd =
  try
    let hdr = Bytes.create 4 in
    match really_read fd hdr 0 4 with
    | `Eof 0 -> Ok None
    | `Eof _ -> Error "frame: EOF inside frame header"
    | `All ->
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len < 0 || len > max_frame then
        Error (Printf.sprintf "frame: bad length %d" len)
      else begin
        let payload = Bytes.create len in
        match really_read fd payload 0 len with
        | `Eof _ -> Error "frame: EOF inside frame payload"
        | `All -> (
          match Json.parse (Bytes.unsafe_to_string payload) with
          | Ok j -> Ok (Some j)
          | Error e -> Error ("frame: " ^ e))
      end
  with
  | Unix.Unix_error (err, fn, _) ->
    Error (Printf.sprintf "frame: %s: %s" fn (Unix.error_message err))
  | Sys_error e -> Error ("frame: " ^ e)
