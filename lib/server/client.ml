module P = Protocol

type t = { fd : Unix.file_descr; session : int; mutable next_id : int }

let ( let* ) = Result.bind

let session t = t.session

let roundtrip fd req =
  let* () = Frame.send fd (P.request_to_json req) in
  match Frame.recv fd with
  | Ok (Some j) -> P.response_of_json j
  | Ok None -> Error "client: server closed the connection"
  | Error e -> Error e

let connect ?(client = "xsm") path =
  (* a server that closed first (e.g. right after acking Shutdown)
     must fail the send, not SIGPIPE the process *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "client: %s: %s" path (Unix.error_message err))
  | () -> (
    match roundtrip fd (P.Hello { client }) with
    | Ok (P.Welcome { session; version }) when version = P.version ->
      Ok { fd; session; next_id = 0 }
    | Ok (P.Welcome { version; _ }) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "client: protocol version mismatch (server %d, client %d)" version
           P.version)
    | Ok _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error "client: expected a welcome"
    | Error e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error e)

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

(* calls are strictly synchronous, so the next response answers the
   request just sent; ids matter only for pipelining clients *)
let call t make decode =
  let id = fresh_id t in
  let* resp = roundtrip t.fd (make id) in
  match resp with
  | P.Failed { id = rid; message } when rid = id -> Error message
  | resp -> (
    match decode resp with
    | Some result -> result
    | None -> Error "client: unexpected response kind")

let query ?trace t path =
  call t
    (fun id -> P.Query { id; path; trace })
    (function P.Nodes { epoch; values; _ } -> Some (Ok (epoch, values)) | _ -> None)

let update ?trace t command =
  call t
    (fun id -> P.Update { id; command; trace })
    (function P.Applied { epoch; _ } -> Some (Ok epoch) | _ -> None)

let validate ?trace t doc =
  call t
    (fun id -> P.Validate { id; doc; trace })
    (function P.Validity { valid; errors; _ } -> Some (Ok (valid, errors)) | _ -> None)

let stats ?(openmetrics = false) t =
  call t
    (fun id -> P.Stats { id; openmetrics })
    (function P.Stats_reply { body; _ } -> Some (Ok body) | _ -> None)

let introspect t what =
  call t
    (fun id -> P.Introspect { id; what })
    (function P.Introspect_reply { body; _ } -> Some (Ok body) | _ -> None)

let shutdown t =
  call t
    (fun id -> P.Shutdown { id })
    (function P.Stopping _ -> Some (Ok ()) | _ -> None)

let close t =
  (match Frame.send t.fd (P.request_to_json P.Bye) with Ok () | Error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()
