module Store = Xsm_xdm.Store
module Journal = Xsm_schema.Update.Journal
module Bs = Xsm_storage.Block_storage

exception Out_of_sync of string

type t = { bs : Bs.t; journal : Journal.t; cursor : Journal.cursor }

let storage m = m.bs

let create ?block_capacity journal store root =
  let bs = Bs.of_store ?block_capacity store root in
  { bs; journal; cursor = Journal.subscribe journal }

let detach m = Journal.unsubscribe m.journal m.cursor

let desc_exn m n =
  match Bs.descriptor_of_node m.bs n with
  | Some d -> d
  | None -> raise (Out_of_sync "store node has no descriptor")

(* the sibling just before [n] in the §7 order (attributes precede
   children) — the [after] anchor of the descriptor insertion *)
let prev_sibling store n =
  match Store.parent store n with
  | None -> None
  | Some p ->
    let ordered = Store.attributes store p @ Store.children store p in
    let rec go prev = function
      | [] -> raise (Out_of_sync "inserted node not among its parent's children")
      | x :: rest -> if Store.equal_node x n then prev else go (Some x) rest
    in
    go None ordered

let rec insert_subtree m store ~parent_d ~after_d n =
  match Store.kind store n with
  | Store.Kind.Text ->
    let d, _ = Bs.insert_text m.bs ~parent:parent_d ~after:after_d (Store.string_value store n) in
    Bs.bind_node m.bs n d;
    d
  | Store.Kind.Attribute ->
    let name =
      match Store.node_name store n with
      | Some nm -> nm
      | None -> raise (Out_of_sync "unnamed attribute")
    in
    let d, _ = Bs.insert_attribute m.bs ~parent:parent_d name (Store.string_value store n) in
    Bs.bind_node m.bs n d;
    d
  | Store.Kind.Element ->
    let name =
      match Store.node_name store n with
      | Some nm -> nm
      | None -> raise (Out_of_sync "unnamed element")
    in
    let d, _ = Bs.insert_element m.bs ~parent:parent_d ~after:after_d name in
    Bs.bind_node m.bs n d;
    let last_attr =
      List.fold_left
        (fun _ a -> Some (insert_subtree m store ~parent_d:d ~after_d:None a))
        None (Store.attributes store n)
    in
    ignore
      (List.fold_left
         (fun after c -> Some (insert_subtree m store ~parent_d:d ~after_d:after c))
         last_attr (Store.children store n));
    d
  | Store.Kind.Document -> raise (Out_of_sync "cannot insert a document node")

(* bottom-up: the storage deletes leaves only *)
let rec delete_subtree m d =
  List.iter (delete_subtree m) (Bs.attributes m.bs d);
  List.iter (delete_subtree m) (Bs.children m.bs d);
  Bs.delete m.bs d

let apply_entry m store = function
  | Journal.Content n -> Bs.set_content m.bs (desc_exn m n) (Store.string_value store n)
  | Journal.Deleted n -> delete_subtree m (desc_exn m n)
  | Journal.Inserted n ->
    let p =
      match Store.parent store n with
      | Some p -> p
      | None -> raise (Out_of_sync "inserted node has no parent")
    in
    let parent_d = desc_exn m p in
    let after_d = Option.map (desc_exn m) (prev_sibling store n) in
    ignore (insert_subtree m store ~parent_d ~after_d n)

let absorb m store = Journal.iter m.journal m.cursor (apply_entry m store)
