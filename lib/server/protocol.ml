module Json = Xsm_obs.Json

let version = 1

type request =
  | Hello of { client : string }
  | Query of { id : int; path : string }
  | Update of { id : int; command : string }
  | Validate of { id : int; doc : string }
  | Stats of { id : int }
  | Shutdown of { id : int }
  | Bye

type response =
  | Welcome of { session : int; version : int }
  | Nodes of { id : int; epoch : int; values : string list }
  | Applied of { id : int; epoch : int }
  | Validity of { id : int; valid : bool; errors : string list }
  | Stats_reply of { id : int; body : Xsm_obs.Json.t }
  | Stopping of { id : int }
  | Failed of { id : int; message : string }

let request_id = function
  | Hello _ | Bye -> None
  | Query { id; _ } | Update { id; _ } | Validate { id; _ } | Stats { id } | Shutdown { id } ->
    Some id

(* ------------------------------------------------------------------ *)
(* Decoding helpers: missing/mistyped fields are protocol errors with
   the field name in the message, never exceptions. *)

let str_field name j =
  match Json.member name j with
  | Some (Json.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "protocol: field %S must be a string" name)
  | None -> Error (Printf.sprintf "protocol: missing field %S" name)

let int_field name j =
  match Json.member name j with
  | Some (Json.Num f) when Float.is_integer f -> Ok (int_of_float f)
  | Some _ -> Error (Printf.sprintf "protocol: field %S must be an integer" name)
  | None -> Error (Printf.sprintf "protocol: missing field %S" name)

let bool_field name j =
  match Json.member name j with
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "protocol: field %S must be a boolean" name)
  | None -> Error (Printf.sprintf "protocol: missing field %S" name)

let str_list_field name j =
  match Json.member name j with
  | Some (Json.Arr items) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | Json.Str s :: rest -> go (s :: acc) rest
      | _ -> Error (Printf.sprintf "protocol: field %S must hold strings" name)
    in
    go [] items
  | Some _ -> Error (Printf.sprintf "protocol: field %S must be an array" name)
  | None -> Error (Printf.sprintf "protocol: missing field %S" name)

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

let request_to_json = function
  | Hello { client } -> Json.Obj [ ("op", Json.Str "hello"); ("client", Json.Str client) ]
  | Query { id; path } ->
    Json.Obj [ ("op", Json.Str "query"); ("id", Json.int id); ("path", Json.Str path) ]
  | Update { id; command } ->
    Json.Obj [ ("op", Json.Str "update"); ("id", Json.int id); ("command", Json.Str command) ]
  | Validate { id; doc } ->
    Json.Obj [ ("op", Json.Str "validate"); ("id", Json.int id); ("doc", Json.Str doc) ]
  | Stats { id } -> Json.Obj [ ("op", Json.Str "stats"); ("id", Json.int id) ]
  | Shutdown { id } -> Json.Obj [ ("op", Json.Str "shutdown"); ("id", Json.int id) ]
  | Bye -> Json.Obj [ ("op", Json.Str "bye") ]

let request_of_json j =
  let* op = str_field "op" j in
  match op with
  | "hello" ->
    let* client = str_field "client" j in
    Ok (Hello { client })
  | "query" ->
    let* id = int_field "id" j in
    let* path = str_field "path" j in
    Ok (Query { id; path })
  | "update" ->
    let* id = int_field "id" j in
    let* command = str_field "command" j in
    Ok (Update { id; command })
  | "validate" ->
    let* id = int_field "id" j in
    let* doc = str_field "doc" j in
    Ok (Validate { id; doc })
  | "stats" ->
    let* id = int_field "id" j in
    Ok (Stats { id })
  | "shutdown" ->
    let* id = int_field "id" j in
    Ok (Shutdown { id })
  | "bye" -> Ok Bye
  | other -> Error (Printf.sprintf "protocol: unknown request op %S" other)

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

let response_to_json = function
  | Welcome { session; version } ->
    Json.Obj
      [ ("re", Json.Str "welcome"); ("session", Json.int session); ("version", Json.int version) ]
  | Nodes { id; epoch; values } ->
    Json.Obj
      [
        ("re", Json.Str "nodes");
        ("id", Json.int id);
        ("epoch", Json.int epoch);
        ("values", Json.Arr (List.map (fun v -> Json.Str v) values));
      ]
  | Applied { id; epoch } ->
    Json.Obj [ ("re", Json.Str "applied"); ("id", Json.int id); ("epoch", Json.int epoch) ]
  | Validity { id; valid; errors } ->
    Json.Obj
      [
        ("re", Json.Str "validity");
        ("id", Json.int id);
        ("valid", Json.Bool valid);
        ("errors", Json.Arr (List.map (fun e -> Json.Str e) errors));
      ]
  | Stats_reply { id; body } ->
    Json.Obj [ ("re", Json.Str "stats"); ("id", Json.int id); ("body", body) ]
  | Stopping { id } -> Json.Obj [ ("re", Json.Str "stopping"); ("id", Json.int id) ]
  | Failed { id; message } ->
    Json.Obj [ ("re", Json.Str "failed"); ("id", Json.int id); ("message", Json.Str message) ]

let response_of_json j =
  let* re = str_field "re" j in
  match re with
  | "welcome" ->
    let* session = int_field "session" j in
    let* version = int_field "version" j in
    Ok (Welcome { session; version })
  | "nodes" ->
    let* id = int_field "id" j in
    let* epoch = int_field "epoch" j in
    let* values = str_list_field "values" j in
    Ok (Nodes { id; epoch; values })
  | "applied" ->
    let* id = int_field "id" j in
    let* epoch = int_field "epoch" j in
    Ok (Applied { id; epoch })
  | "validity" ->
    let* id = int_field "id" j in
    let* valid = bool_field "valid" j in
    let* errors = str_list_field "errors" j in
    Ok (Validity { id; valid; errors })
  | "stats" ->
    let* id = int_field "id" j in
    let body = Option.value ~default:Json.Null (Json.member "body" j) in
    Ok (Stats_reply { id; body })
  | "stopping" ->
    let* id = int_field "id" j in
    Ok (Stopping { id })
  | "failed" ->
    let* id = int_field "id" j in
    let* message = str_field "message" j in
    Ok (Failed { id; message })
  | other -> Error (Printf.sprintf "protocol: unknown response kind %S" other)
