module Json = Xsm_obs.Json

(* v2 added trace-context propagation, [Introspect] and the
   OpenMetrics stats flag; the handshake rejects mismatched peers, so
   client and server upgrade together *)
let version = 2

type trace_ctx = { trace_id : string; parent_span : int }

type introspect_what = Flight | Trace_events of string

type request =
  | Hello of { client : string }
  | Query of { id : int; path : string; trace : trace_ctx option }
  | Update of { id : int; command : string; trace : trace_ctx option }
  | Validate of { id : int; doc : string; trace : trace_ctx option }
  | Stats of { id : int; openmetrics : bool }
  | Introspect of { id : int; what : introspect_what }
  | Shutdown of { id : int }
  | Bye

type response =
  | Welcome of { session : int; version : int }
  | Nodes of { id : int; epoch : int; values : string list }
  | Applied of { id : int; epoch : int }
  | Validity of { id : int; valid : bool; errors : string list }
  | Stats_reply of { id : int; body : Xsm_obs.Json.t }
  | Introspect_reply of { id : int; body : Xsm_obs.Json.t }
  | Stopping of { id : int }
  | Failed of { id : int; message : string }

let request_id = function
  | Hello _ | Bye -> None
  | Query { id; _ }
  | Update { id; _ }
  | Validate { id; _ }
  | Stats { id; _ }
  | Introspect { id; _ }
  | Shutdown { id } ->
    Some id

let request_trace = function
  | Query { trace; _ } | Update { trace; _ } | Validate { trace; _ } -> trace
  | Hello _ | Stats _ | Introspect _ | Shutdown _ | Bye -> None

(* ------------------------------------------------------------------ *)
(* Decoding helpers: missing/mistyped fields are protocol errors with
   the field name in the message, never exceptions. *)

let str_field name j =
  match Json.member name j with
  | Some (Json.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "protocol: field %S must be a string" name)
  | None -> Error (Printf.sprintf "protocol: missing field %S" name)

let int_field name j =
  match Json.member name j with
  | Some (Json.Num f) when Float.is_integer f -> Ok (int_of_float f)
  | Some _ -> Error (Printf.sprintf "protocol: field %S must be an integer" name)
  | None -> Error (Printf.sprintf "protocol: missing field %S" name)

let bool_field name j =
  match Json.member name j with
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "protocol: field %S must be a boolean" name)
  | None -> Error (Printf.sprintf "protocol: missing field %S" name)

let str_list_field name j =
  match Json.member name j with
  | Some (Json.Arr items) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | Json.Str s :: rest -> go (s :: acc) rest
      | _ -> Error (Printf.sprintf "protocol: field %S must hold strings" name)
    in
    go [] items
  | Some _ -> Error (Printf.sprintf "protocol: field %S must be an array" name)
  | None -> Error (Printf.sprintf "protocol: missing field %S" name)

let ( let* ) = Result.bind

(* The traceparent-style context rides as an optional sub-object so
   untraced requests pay no extra bytes. *)
let trace_fields = function
  | None -> []
  | Some { trace_id; parent_span } ->
    [
      ( "trace",
        Json.Obj [ ("id", Json.Str trace_id); ("parent", Json.int parent_span) ] );
    ]

let trace_of_json j =
  match Json.member "trace" j with
  | None | Some Json.Null -> Ok None
  | Some t ->
    let* trace_id = str_field "id" t in
    let* parent_span = int_field "parent" t in
    Ok (Some { trace_id; parent_span })

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

let request_to_json = function
  | Hello { client } -> Json.Obj [ ("op", Json.Str "hello"); ("client", Json.Str client) ]
  | Query { id; path; trace } ->
    Json.Obj
      ([ ("op", Json.Str "query"); ("id", Json.int id); ("path", Json.Str path) ]
      @ trace_fields trace)
  | Update { id; command; trace } ->
    Json.Obj
      ([ ("op", Json.Str "update"); ("id", Json.int id); ("command", Json.Str command) ]
      @ trace_fields trace)
  | Validate { id; doc; trace } ->
    Json.Obj
      ([ ("op", Json.Str "validate"); ("id", Json.int id); ("doc", Json.Str doc) ]
      @ trace_fields trace)
  | Stats { id; openmetrics } ->
    Json.Obj
      ([ ("op", Json.Str "stats"); ("id", Json.int id) ]
      @ if openmetrics then [ ("openmetrics", Json.Bool true) ] else [])
  | Introspect { id; what } ->
    Json.Obj
      ([ ("op", Json.Str "introspect"); ("id", Json.int id) ]
      @
      match what with
      | Flight -> [ ("what", Json.Str "flight") ]
      | Trace_events trace_id ->
        [ ("what", Json.Str "trace"); ("trace_id", Json.Str trace_id) ])
  | Shutdown { id } -> Json.Obj [ ("op", Json.Str "shutdown"); ("id", Json.int id) ]
  | Bye -> Json.Obj [ ("op", Json.Str "bye") ]

let request_of_json j =
  let* op = str_field "op" j in
  match op with
  | "hello" ->
    let* client = str_field "client" j in
    Ok (Hello { client })
  | "query" ->
    let* id = int_field "id" j in
    let* path = str_field "path" j in
    let* trace = trace_of_json j in
    Ok (Query { id; path; trace })
  | "update" ->
    let* id = int_field "id" j in
    let* command = str_field "command" j in
    let* trace = trace_of_json j in
    Ok (Update { id; command; trace })
  | "validate" ->
    let* id = int_field "id" j in
    let* doc = str_field "doc" j in
    let* trace = trace_of_json j in
    Ok (Validate { id; doc; trace })
  | "stats" ->
    let* id = int_field "id" j in
    let* openmetrics =
      match Json.member "openmetrics" j with
      | None -> Ok false
      | Some _ -> bool_field "openmetrics" j
    in
    Ok (Stats { id; openmetrics })
  | "introspect" ->
    let* id = int_field "id" j in
    let* what = str_field "what" j in
    let* what =
      match what with
      | "flight" -> Ok Flight
      | "trace" ->
        let* trace_id = str_field "trace_id" j in
        Ok (Trace_events trace_id)
      | other -> Error (Printf.sprintf "protocol: unknown introspect target %S" other)
    in
    Ok (Introspect { id; what })
  | "shutdown" ->
    let* id = int_field "id" j in
    Ok (Shutdown { id })
  | "bye" -> Ok Bye
  | other -> Error (Printf.sprintf "protocol: unknown request op %S" other)

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

let response_to_json = function
  | Welcome { session; version } ->
    Json.Obj
      [ ("re", Json.Str "welcome"); ("session", Json.int session); ("version", Json.int version) ]
  | Nodes { id; epoch; values } ->
    Json.Obj
      [
        ("re", Json.Str "nodes");
        ("id", Json.int id);
        ("epoch", Json.int epoch);
        ("values", Json.Arr (List.map (fun v -> Json.Str v) values));
      ]
  | Applied { id; epoch } ->
    Json.Obj [ ("re", Json.Str "applied"); ("id", Json.int id); ("epoch", Json.int epoch) ]
  | Validity { id; valid; errors } ->
    Json.Obj
      [
        ("re", Json.Str "validity");
        ("id", Json.int id);
        ("valid", Json.Bool valid);
        ("errors", Json.Arr (List.map (fun e -> Json.Str e) errors));
      ]
  | Stats_reply { id; body } ->
    Json.Obj [ ("re", Json.Str "stats"); ("id", Json.int id); ("body", body) ]
  | Introspect_reply { id; body } ->
    Json.Obj [ ("re", Json.Str "introspect"); ("id", Json.int id); ("body", body) ]
  | Stopping { id } -> Json.Obj [ ("re", Json.Str "stopping"); ("id", Json.int id) ]
  | Failed { id; message } ->
    Json.Obj [ ("re", Json.Str "failed"); ("id", Json.int id); ("message", Json.Str message) ]

let response_of_json j =
  let* re = str_field "re" j in
  match re with
  | "welcome" ->
    let* session = int_field "session" j in
    let* version = int_field "version" j in
    Ok (Welcome { session; version })
  | "nodes" ->
    let* id = int_field "id" j in
    let* epoch = int_field "epoch" j in
    let* values = str_list_field "values" j in
    Ok (Nodes { id; epoch; values })
  | "applied" ->
    let* id = int_field "id" j in
    let* epoch = int_field "epoch" j in
    Ok (Applied { id; epoch })
  | "validity" ->
    let* id = int_field "id" j in
    let* valid = bool_field "valid" j in
    let* errors = str_list_field "errors" j in
    Ok (Validity { id; valid; errors })
  | "stats" ->
    let* id = int_field "id" j in
    let body = Option.value ~default:Json.Null (Json.member "body" j) in
    Ok (Stats_reply { id; body })
  | "introspect" ->
    let* id = int_field "id" j in
    let body = Option.value ~default:Json.Null (Json.member "body" j) in
    Ok (Introspect_reply { id; body })
  | "stopping" ->
    let* id = int_field "id" j in
    Ok (Stopping { id })
  | "failed" ->
    let* id = int_field "id" j in
    let* message = str_field "message" j in
    Ok (Failed { id; message })
  | other -> Error (Printf.sprintf "protocol: unknown response kind %S" other)
