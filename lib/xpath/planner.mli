(** The index-aware query planner.

    A path like [/library/book[issue/year<1980]//title] is rewritten
    into operations on the {!Xsm_index} subsystem instead of a
    node-by-node walk:

    - pure location steps (child, attribute, descendant axes, [//])
      become moves over the path-index DataGuide, so the candidate set
      is a handful of {e extents} resolved without touching instance
      nodes;
    - value predicates ([=], [<], [<=], [>], [>=]) become probes of a
      typed value index built (once, then cached) over the extent of
      the predicate's path;
    - existence predicates become containment semi-joins on the §9.3
      numbering labels;
    - whenever a predicate has restricted an extent, subsequent steps
      re-attach to the full extents of deeper paths through
      parent/ancestor joins on the labels.

    Anything outside this fragment — relative paths, reverse or
    sibling axes, positional predicates — falls back to the plain
    {!Eval.Make} evaluator, so every query still answers and the two
    engines agree wherever both apply (the property the test suite
    checks).

    {b Maintenance}: indexes are kept current {e differentially}.  A
    planner can subscribe to a structured update journal
    ({!set_source}, or {!attach_journal} for [Xsm_schema.Update] over
    the XDM store); before every evaluation the pending changes are
    drained and applied in order — label-sorted splices into the path
    extents, keyed add/remove in the value indexes — instead of
    rebuilding from scratch.  Proposition 1 makes this sound: existing
    labels never change under updates, so everything already indexed
    stays put.  A size-ratio heuristic bounds the worst case: when a
    batch touches more than a quarter of the indexed entries (or
    maintenance meets a state it cannot repair), the planner falls
    back to one full rebuild.  {!invalidate} still forces a rebuild
    for callers without a journal. *)

type maintenance_stats = {
  epochs : int;  (** full index builds so far (1 = the initial build) *)
  applied : int;  (** journal changes absorbed without a rebuild *)
  vi_drops : int;  (** value indexes dropped for lazy rebuild *)
}

type digest = {
  dg_query : string;  (** the query as given (before static rewrite) *)
  dg_route : string;  (** ["pruned"], ["index"] or ["fallback"] *)
  dg_reason : string;  (** prune/fallback reason; [""] for index *)
  dg_actual : int;  (** result cardinality *)
  dg_estimate : unit -> Plan.estimate option;
      (** lazy interval estimate over the provider; forcing it does
          {e not} re-evaluate the query (unlike [explain_json]), so a
          digest consumer can attach estimate-vs-actual to kept
          digests only.  [None] when the path is outside the
          estimator's fragment. *)
}
(** What one evaluation looked like — pushed to the digest sink as
    {!Make.eval} returns, so a daemon can feed its flight recorder and
    slow-query log without a second evaluation. *)

val digest_json : digest -> Xsm_obs.Json.t
(** Compact plan JSON for a kept digest: query, route, reason, actual
    rows, and (when the estimator supports the path) the estimated
    interval with containment flag and absolute error. *)

type policy =
  | Rule  (** always probe a value index, always semi-join *)
  | Cost
      (** price each candidate route — probe (plus an amortized build
          when the index is not cached), residual per-owner filter,
          semi-join, whole-query navigation — and pick the cheapest;
          the default *)

module Make (N : Navigator.S) : sig
  module PI : module type of Xsm_index.Path_index.Make (N)

  type t

  val create : N.t -> N.node -> t
  (** Build the path index for the tree rooted at the given node
      (value indexes are created lazily per indexed path). *)

  val invalidate : t -> unit
  (** Mark the indexes stale after an unjournaled update; the next
      evaluation rebuilds them. *)

  val refresh : t -> unit
  (** Rebuild now (discards any pending journal changes — the rebuild
      subsumes them). *)

  val stale : t -> bool
  val index : t -> PI.t
  val value_index_count : t -> int

  (** {1 Differential maintenance} *)

  type change =
    | Node_added of N.node  (** a freshly linked subtree root *)
    | Node_removed of N.node  (** a just-unlinked subtree root *)
    | Node_content of N.node  (** own content of a text/attribute replaced *)

  val apply_changes : t -> change list -> unit
  (** Absorb a batch of changes, in order, into the path index and the
      cached value indexes.  Falls back to a full rebuild when the
      batch touches too large a fraction of the index or cannot be
      repaired differentially. *)

  val set_source : t -> (unit -> change list) -> unit
  (** Subscribe to an update journal: the function is called before
      every evaluation (and on {!refresh}) and must return — and
      forget — the changes since the last call. *)

  val maintenance_stats : t -> maintenance_stats

  (** {1 Schema-aware pruning} *)

  val set_pruner : t -> (Path_ast.path -> string option) -> unit
  (** Install a static emptiness oracle — typically
      [Xsm_analysis.Query_static.pruner schema] (kept abstract here as
      a closure so the analysis library can depend on this one).  When
      the oracle answers [Some reason], {!eval} returns [[]]
      immediately, without draining the journal or touching any
      extent, and {!explain} reports ["pruned(reason)"].  The oracle
      is only consulted for evaluations anchored at the indexed root
      (absolute paths, or no [?context] given); soundness is the
      oracle's contract — for the static analyzer, that the instance
      is valid against the analyzed schema. *)

  val pruned_count : t -> int
  (** Evaluations answered by the pruning oracle so far. *)

  val set_rewriter : t -> (Path_ast.path -> Path_ast.path) -> unit
  (** Install a static simplifier — typically
      [Xsm_analysis.Query_static.fold schema] — applied before pruning
      and planning, under the same root-anchoring guard as the pruner.
      Soundness is the simplifier's contract: the rewritten path must
      select the same nodes on every instance the oracle's schema
      validates. *)

  (** {1 Cost-based planning} *)

  val set_policy : t -> policy -> unit
  val policy : t -> policy

  val provider : t -> Plan.pview
  (** The instance-backed cardinality view: exact extent sizes from
      the path index, value statistics from the cached value indexes.
      Row intervals propagated over it contain the actual result
      cardinality of any query the estimator supports. *)

  val estimate : t -> Path_ast.path -> Plan.estimate
  (** [Plan.estimate] over {!provider}. *)

  val set_digest_sink : t -> (digest -> unit) option -> unit
  (** Install (or clear) the per-evaluation digest consumer.  The sink
      runs synchronously at the end of every {!eval} — pruned,
      indexed, or fallback — on the evaluating thread; it must be
      cheap and must not call back into the planner (force
      [dg_estimate] instead). *)

  val explain_json : t -> Path_ast.path -> Xsm_obs.Json.t
  (** Structured explain: route ([index] / [fallback] / [pruned]),
      estimated and actual rows with the interval-containment flag and
      absolute error, per-step annotations, the plan's strategy
      decisions with both prices, and maintenance statistics. *)

  val eval : t -> ?context:N.node -> Path_ast.path -> N.node list
  (** Evaluate through the indexes when the path is in the supported
      fragment, through {!Eval.Make} otherwise.  [context] (default:
      the indexed root) only matters for fallback evaluation of
      relative paths. *)

  val eval_string :
    t -> ?context:N.node -> string -> (N.node list, string) result

  val explain : t -> Path_ast.path -> string
  (** ["index(...)"] with plan statistics, or ["fallback(reason)"]. *)

  val uses_index : t -> Path_ast.path -> bool
end

module Over_store : module type of Make (Navigator.Xdm)
module Over_storage : module type of Make (Navigator.Storage)

val attach_journal : Over_store.t -> Xsm_schema.Update.Journal.t -> unit
(** Wire a planner over the XDM store to an [Xsm_schema.Update]
    journal: every pending entry is drained and applied before each
    evaluation, so indexes stay live across updates without explicit
    {!Make.invalidate} calls. *)
