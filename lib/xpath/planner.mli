(** The index-aware query planner.

    A path like [/library/book[issue/year<1980]//title] is rewritten
    into operations on the {!Xsm_index} subsystem instead of a
    node-by-node walk:

    - pure location steps (child, attribute, descendant axes, [//])
      become moves over the path-index DataGuide, so the candidate set
      is a handful of {e extents} resolved without touching instance
      nodes;
    - value predicates ([=], [<], [<=], [>], [>=]) become probes of a
      typed value index built (once, then cached) over the extent of
      the predicate's path;
    - existence predicates become containment semi-joins on the §9.3
      numbering labels;
    - whenever a predicate has restricted an extent, subsequent steps
      re-attach to the full extents of deeper paths through
      parent/ancestor joins on the labels.

    Anything outside this fragment — relative paths, reverse or
    sibling axes, positional predicates — falls back to the plain
    {!Eval.Make} evaluator, so every query still answers and the two
    engines agree wherever both apply (the property the test suite
    checks).

    {b Maintenance}: indexes follow the invalidation-and-rebuild
    discipline.  After any mutation of the underlying tree
    (e.g. through [Xsm_schema.Update]), call {!invalidate}; the next
    evaluation rebuilds the path index and drops cached value indexes.
    There is no incremental upkeep — rebuilding is one linear
    traversal, and stale reads are prevented rather than repaired. *)

module Make (N : Navigator.S) : sig
  module PI : module type of Xsm_index.Path_index.Make (N)

  type t

  val create : N.t -> N.node -> t
  (** Build the path index for the tree rooted at the given node
      (value indexes are created lazily per indexed path). *)

  val invalidate : t -> unit
  (** Mark the indexes stale after an update; the next evaluation
      rebuilds them. *)

  val refresh : t -> unit
  (** Rebuild now. *)

  val stale : t -> bool
  val index : t -> PI.t
  val value_index_count : t -> int

  val eval : t -> ?context:N.node -> Path_ast.path -> N.node list
  (** Evaluate through the indexes when the path is in the supported
      fragment, through {!Eval.Make} otherwise.  [context] (default:
      the indexed root) only matters for fallback evaluation of
      relative paths. *)

  val eval_string :
    t -> ?context:N.node -> string -> (N.node list, string) result

  val explain : t -> Path_ast.path -> string
  (** ["index(...)"] with plan statistics, or ["fallback(reason)"]. *)

  val uses_index : t -> Path_ast.path -> bool
end

module Over_store : module type of Make (Navigator.Xdm)
module Over_storage : module type of Make (Navigator.Storage)
