open Path_ast
module Extent = Xsm_index.Extent
module VI = Xsm_index.Value_index

module Make (N : Navigator.S) = struct
  module PI = Xsm_index.Path_index.Make (N)
  module E = Eval.Make (N)

  exception Fallback of string

  type t = {
    backend : N.t;
    root : N.node;
    mutable pindex : PI.t;
    mutable is_stale : bool;
    values : (int * string, VI.t) Hashtbl.t;
        (* (pnode id, printed relative path) -> its typed value index *)
  }

  let create backend root =
    {
      backend;
      root;
      pindex = PI.build backend root;
      is_stale = false;
      values = Hashtbl.create 16;
    }

  let refresh t =
    t.pindex <- PI.build t.backend t.root;
    Hashtbl.reset t.values;
    t.is_stale <- false

  let invalidate t = t.is_stale <- true
  let stale t = t.is_stale
  let index t = t.pindex
  let value_index_count t = Hashtbl.length t.values
  let ensure_fresh t = if t.is_stale then refresh t

  (* ---- node tests on path-index nodes (mirrors Eval.test_matches) ---- *)

  let test_matches test pn =
    match test, PI.kind pn with
    | Name_test n, (`Element | `Attribute) -> (
      match PI.name pn with Some m -> Xsm_xml.Name.equal m n | None -> false)
    | Name_test _, (`Document | `Text) -> false
    | Wildcard, `Element -> true
    | Wildcard, `Attribute -> true
    | Wildcard, (`Document | `Text) -> false
    | Text_test, `Text -> true
    | Text_test, (`Document | `Element | `Attribute) -> false
    | Node_test, _ -> true

  (* A candidate: one path-index node, optionally with its extent
     restricted by predicates seen so far.  [None] means the full
     extent — the common pure-path case, where no label join runs. *)
  type cand = { pn : PI.pnode; restr : N.node Extent.t option }

  let cand_extent c = match c.restr with Some e -> e | None -> PI.extent c.pn

  let narrow join base_restr pn =
    match base_restr with
    | None -> None
    | Some restr -> Some (join ~among:restr (PI.extent pn))

  let merge_cands cands =
    (* group by pnode; an unrestricted candidate absorbs restricted ones *)
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun c ->
        let pid = PI.id c.pn in
        match Hashtbl.find_opt tbl pid with
        | None ->
          Hashtbl.add tbl pid c;
          order := pid :: !order
        | Some prev ->
          let merged =
            match prev.restr, c.restr with
            | None, _ | _, None -> { prev with restr = None }
            | Some a, Some b -> { prev with restr = Some (Extent.merge [ a; b ]) }
          in
          Hashtbl.replace tbl pid merged)
      cands;
    List.rev_map (fun pid -> Hashtbl.find tbl pid) !order

  (* descendant-or-self path-index nodes, never descending through
     attributes (the descendant axes are defined over children only) *)
  let rec desc_or_self_pnodes t pn acc =
    List.fold_left
      (fun acc c ->
        match PI.kind c with
        | `Attribute -> acc
        | `Document | `Element | `Text -> desc_or_self_pnodes t c acc)
      (pn :: acc) (PI.children t pn)

  let expand_desc_or_self t c =
    List.map
      (fun pn ->
        if PI.id pn = PI.id c.pn then c
        else { pn; restr = narrow (Extent.restrict_by_ancestor ~or_self:false) c.restr pn })
      (desc_or_self_pnodes t.pindex c.pn [])

  let child_cands t c test ~attribute =
    PI.children t.pindex c.pn
    |> List.filter (fun pn ->
           (if attribute then PI.kind pn = `Attribute else PI.kind pn <> `Attribute)
           && test_matches test pn)
    |> List.map (fun pn -> { pn; restr = narrow Extent.restrict_by_parent c.restr pn })

  let descendant_cands t c test ~or_self =
    desc_or_self_pnodes t.pindex c.pn []
    |> List.filter_map (fun pn ->
           let self = PI.id pn = PI.id c.pn in
           if (self && not or_self) || not (test_matches test pn) then None
           else if self then Some c
           else Some { pn; restr = narrow (Extent.restrict_by_ancestor ~or_self:false) c.restr pn })

  let rec do_step t cands ((step : step), desc_flag) =
    let bases =
      if desc_flag then merge_cands (List.concat_map (expand_desc_or_self t) cands)
      else cands
    in
    let targets =
      List.concat_map
        (fun c ->
          match step.axis with
          | Xsm_xdm.Axis.Child -> child_cands t c step.test ~attribute:false
          | Xsm_xdm.Axis.Attribute -> child_cands t c step.test ~attribute:true
          | Xsm_xdm.Axis.Self -> if test_matches step.test c.pn then [ c ] else []
          | Xsm_xdm.Axis.Descendant -> descendant_cands t c step.test ~or_self:false
          | Xsm_xdm.Axis.Descendant_or_self ->
            descendant_cands t c step.test ~or_self:true
          | (Xsm_xdm.Axis.Parent | Xsm_xdm.Axis.Ancestor | Xsm_xdm.Axis.Ancestor_or_self
            | Xsm_xdm.Axis.Following_sibling | Xsm_xdm.Axis.Preceding_sibling
            | Xsm_xdm.Axis.Following | Xsm_xdm.Axis.Preceding) as axis ->
            raise (Fallback (Xsm_xdm.Axis.to_string axis ^ " axis")))
        bases
    in
    let targets = merge_cands targets in
    List.fold_left
      (fun cs pred -> List.map (fun c -> apply_pred t c pred) cs)
      targets step.predicates

  and apply_pred t c pred =
    match pred with
    | Position _ | Last -> raise (Fallback "positional predicate")
    | Exists rel ->
      let targets = run_rel t c.pn rel in
      let restr' =
        Extent.semijoin_containing
          ~targets:(List.map cand_extent targets)
          (cand_extent c)
      in
      { c with restr = Some restr' }
    | Equals (rel, lit) -> restrict_probe c (VI.eq (value_index t c.pn rel) lit)
    | Cmp (op, rel, lit) ->
      let op =
        match op with
        | Path_ast.Lt -> VI.Lt
        | Path_ast.Le -> VI.Le
        | Path_ast.Gt -> VI.Gt
        | Path_ast.Ge -> VI.Ge
      in
      restrict_probe c (VI.range (value_index t c.pn rel) op (VI.Key.of_string lit))

  and restrict_probe c positions =
    let sub = Extent.select (PI.extent c.pn) positions in
    { c with restr = Some (match c.restr with None -> sub | Some r -> Extent.inter r sub) }

  and run_rel t pn (rel : path) =
    if rel.absolute then raise (Fallback "absolute predicate path");
    List.fold_left (do_step t) [ { pn; restr = None } ] rel.steps

  (* The typed value index over (owner path, relative value path),
     built on first use from the owner and target extents — each
     target node attaches to its unique owner ancestor by one binary
     search on the labels — then cached until the next refresh. *)
  and value_index t pn (rel : path) =
    let key = (PI.id pn, Path_ast.to_string rel) in
    match Hashtbl.find_opt t.values key with
    | Some vi -> vi
    | None ->
      let owners = PI.extent pn in
      let targets = run_rel t pn rel in
      let triples =
        List.concat_map
          (fun tc ->
            List.concat_map
              (fun (e : N.node Extent.entry) ->
                match Extent.find_ancestor_pos ~or_self:true ~among:owners e.label with
                | None -> []
                | Some pos ->
                  let sval = N.string_value t.backend e.node in
                  List.map
                    (fun v -> (VI.Key.of_value v, sval, pos))
                    (N.typed_value t.backend e.node))
              (Extent.entries (cand_extent tc)))
          targets
      in
      let vi = VI.build triples in
      Hashtbl.add t.values key vi;
      vi

  let eval_indexed t (p : path) =
    ensure_fresh t;
    if not p.absolute then raise (Fallback "relative path");
    let final =
      List.fold_left (do_step t) [ { pn = PI.root t.pindex; restr = None } ] p.steps
    in
    Extent.nodes (Extent.merge (List.map cand_extent final))

  let try_indexed t p =
    match eval_indexed t p with
    | nodes -> Ok nodes
    | exception Fallback reason -> Error reason

  let eval t ?context p =
    match try_indexed t p with
    | Ok nodes -> nodes
    | Error _ -> E.eval t.backend (Option.value context ~default:t.root) p

  let eval_string t ?context text =
    match Path_parser.parse text with
    | Ok p -> Ok (eval t ?context p)
    | Error e -> Error e

  let uses_index t p = Result.is_ok (try_indexed t p)

  let explain t p =
    match try_indexed t p with
    | Ok nodes ->
      Format.asprintf "index(%d nodes; %a; %d value indexes)" (List.length nodes)
        PI.pp_stats t.pindex (value_index_count t)
    | Error reason -> Printf.sprintf "fallback(%s)" reason
end

module Over_store = Make (Navigator.Xdm)
module Over_storage = Make (Navigator.Storage)
