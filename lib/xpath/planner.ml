open Path_ast
module Extent = Xsm_index.Extent
module VI = Xsm_index.Value_index
module Counter = Xsm_obs.Metrics.Counter
module Histogram = Xsm_obs.Metrics.Histogram
module Trace = Xsm_obs.Trace

(* Registry totals across every planner in the process; each planner
   holds private cells so [maintenance_stats] stays per-instance. *)
let m_epochs = Counter.make ~help:"full path-index builds" "planner.epochs"
let m_applied = Counter.make ~help:"journal changes absorbed without a rebuild" "planner.applied"
let m_vi_drops = Counter.make ~help:"value indexes dropped for lazy rebuild" "planner.vi_drops"
let m_pruned = Counter.make ~help:"queries answered empty by the static oracle" "planner.pruned"
let m_index_hits = Counter.make ~help:"queries answered from the path index" "planner.index_hits"
let m_fallbacks = Counter.make ~help:"queries handed to the navigational evaluator" "planner.fallbacks"
let h_drain = Histogram.make ~help:"journal drain-and-apply latency (ns)" "planner.drain_ns"

type maintenance_stats = {
  epochs : int;  (* full index builds so far (1 = the initial build) *)
  applied : int;  (* journal changes absorbed without a rebuild *)
  vi_drops : int;  (* value indexes dropped for lazy rebuild *)
}

(* How predicate strategies are chosen: [Rule] always probes a value
   index and always semi-joins (the historical behavior); [Cost]
   prices each candidate route and picks the cheapest. *)
type policy = Rule | Cost

(* One priced strategy choice, kept for [explain]: predicate, the
   chosen strategy, the indexed route's price, the residual price. *)
type decision = { d_pred : string; d_chosen : string; d_indexed : float; d_residual : float }

(* What one evaluation looked like, pushed to the digest sink (the
   daemon's flight recorder) as [eval] returns.  The estimate is a
   thunk: interval arithmetic over the provider is cheap but not free,
   and most digests are never inspected — only a consumer that keeps
   the digest (slow/error tail, explicit introspection) forces it.
   Unlike [explain_json], forcing it never re-evaluates the query. *)
type digest = {
  dg_query : string;
  dg_route : string;  (* "pruned" | "index" | "fallback" *)
  dg_reason : string;  (* prune or fallback reason; "" for index *)
  dg_actual : int;
  dg_estimate : unit -> Plan.estimate option;
}

let digest_json d =
  let module J = Xsm_obs.Json in
  let est =
    match d.dg_estimate () with
    | None -> []
    | Some e ->
      [
        ("est", Plan.est_to_json e.Plan.e_rows);
        ("est_rows", J.Num e.Plan.e_rows.Plan.expect);
        ("in_interval", J.Bool (Plan.contains e.Plan.e_rows d.dg_actual));
        ( "abs_error",
          J.Num (Float.abs (e.Plan.e_rows.Plan.expect -. float_of_int d.dg_actual)) );
      ]
  in
  J.Obj
    ([ ("query", J.Str d.dg_query); ("route", J.Str d.dg_route) ]
    @ (if d.dg_reason = "" then [] else [ ("reason", J.Str d.dg_reason) ])
    @ [ ("actual_rows", J.int d.dg_actual) ]
    @ est)

module Make (N : Navigator.S) = struct
  module PI = Xsm_index.Path_index.Make (N)
  module E = Eval.Make (N)

  exception Fallback of string

  type change =
    | Node_added of N.node
    | Node_removed of N.node
    | Node_content of N.node

  (* A cached value index plus what maintenance needs to know about
     it: the relative path it was built from, the pnode ids its
     targets came from, and whether that target set was computed
     purely structurally (no predicates) — only then can we maintain
     it differentially; otherwise any change drops it for lazy
     rebuild. *)
  type vindex = {
    vi : VI.t;
    v_rel : path;
    v_targets : (int, unit) Hashtbl.t;
    v_structural : bool;
  }

  type t = {
    backend : N.t;
    root : N.node;
    mutable pindex : PI.t;
    mutable is_stale : bool;
    values : (int * string, vindex) Hashtbl.t;
        (* (pnode id, printed relative path) -> its typed value index *)
    mutable source : (unit -> change list) option;
        (* pull-subscription to an update journal, drained before use *)
    epoch : Counter.cell;
    applied : Counter.cell;
    vi_drops : Counter.cell;
    mutable pruner : (path -> string option) option;
        (* static emptiness oracle (Xsm_analysis.Query_static.pruner):
           Some reason proves the path selects nothing on any
           schema-valid instance *)
    pruned : Counter.cell;
    mutable policy : policy;
    vi_drop_hist : (int * string, int) Hashtbl.t;
        (* per value-index key: how often maintenance dropped it —
           evidence against amortizing a rebuild over future reuses *)
    mutable decisions : decision list;  (* strategy picks of the last plan *)
    mutable rewriter : (path -> path) option;
        (* static simplifier (Query_static.fold): drops predicates
           proven to hold on every schema-valid instance *)
    mutable digest_sink : (digest -> unit) option;
        (* per-evaluation digest consumer (the daemon's flight
           recorder); None keeps eval free of digest work *)
  }

  let create backend root =
    let epoch = Counter.cell m_epochs in
    Counter.cell_incr epoch;  (* the initial build counts as epoch 1 *)
    {
      backend;
      root;
      pindex = PI.build backend root;
      is_stale = false;
      values = Hashtbl.create 16;
      source = None;
      epoch;
      applied = Counter.cell m_applied;
      vi_drops = Counter.cell m_vi_drops;
      pruner = None;
      pruned = Counter.cell m_pruned;
      policy = Cost;
      vi_drop_hist = Hashtbl.create 16;
      decisions = [];
      rewriter = None;
      digest_sink = None;
    }

  let set_pruner t f = t.pruner <- Some f
  let pruned_count t = Counter.cell_value t.pruned
  let set_policy t p = t.policy <- p
  let policy t = t.policy
  let set_rewriter t f = t.rewriter <- Some f

  (* Apply the static simplifier under the same soundness guard as the
     pruner: only for evaluations anchored at the indexed root. *)
  let rewrite t ?context (p : path) =
    match t.rewriter with
    | Some f when p.absolute || Option.is_none context -> f p
    | _ -> p

  (* Consult the static oracle.  Only when the evaluation would start
     at the indexed root: a caller-supplied context node can make a
     relative path reach nodes the root-anchored analysis never saw. *)
  let prune_reason t ?context (p : path) =
    match t.pruner with
    | None -> None
    | Some f -> if p.absolute || Option.is_none context then f p else None

  let drain t = match t.source with Some f -> f () | None -> []

  let refresh t =
    ignore (drain t);  (* a rebuild subsumes whatever is pending *)
    t.pindex <- PI.build t.backend t.root;
    Hashtbl.reset t.values;
    t.is_stale <- false;
    Counter.cell_incr t.epoch

  let invalidate t = t.is_stale <- true
  let stale t = t.is_stale
  let index t = t.pindex
  let value_index_count t = Hashtbl.length t.values
  let set_source t f = t.source <- Some f

  (* a view over this planner's registry cells *)
  let maintenance_stats t =
    {
      epochs = Counter.cell_value t.epoch;
      applied = Counter.cell_value t.applied;
      vi_drops = Counter.cell_value t.vi_drops;
    }

  (* ---- node tests on path-index nodes (mirrors Eval.test_matches) ---- *)

  let test_matches test pn =
    match test, PI.kind pn with
    | Name_test n, (`Element | `Attribute) -> (
      match PI.name pn with Some m -> Xsm_xml.Name.equal m n | None -> false)
    | Name_test _, (`Document | `Text) -> false
    | Wildcard, `Element -> true
    | Wildcard, `Attribute -> true
    | Wildcard, (`Document | `Text) -> false
    | Text_test, `Text -> true
    | Text_test, (`Document | `Element | `Attribute) -> false
    | Node_test, _ -> true

  (* A candidate: one path-index node, optionally with its extent
     restricted by predicates seen so far.  [None] means the full
     extent — the common pure-path case, where no label join runs. *)
  type cand = { pn : PI.pnode; restr : N.node Extent.t option }

  let cand_extent c = match c.restr with Some e -> e | None -> PI.extent c.pn

  let narrow join base_restr pn =
    match base_restr with
    | None -> None
    | Some restr -> Some (join ~among:restr (PI.extent pn))

  let merge_cands cands =
    (* group by pnode; an unrestricted candidate absorbs restricted ones *)
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun c ->
        let pid = PI.id c.pn in
        match Hashtbl.find_opt tbl pid with
        | None ->
          Hashtbl.add tbl pid c;
          order := pid :: !order
        | Some prev ->
          let merged =
            match prev.restr, c.restr with
            | None, _ | _, None -> { prev with restr = None }
            | Some a, Some b -> { prev with restr = Some (Extent.merge [ a; b ]) }
          in
          Hashtbl.replace tbl pid merged)
      cands;
    List.rev_map (fun pid -> Hashtbl.find tbl pid) !order

  (* descendant-or-self path-index nodes, never descending through
     attributes (the descendant axes are defined over children only) *)
  let rec desc_or_self_pnodes t pn acc =
    List.fold_left
      (fun acc c ->
        match PI.kind c with
        | `Attribute -> acc
        | `Document | `Element | `Text -> desc_or_self_pnodes t c acc)
      (pn :: acc) (PI.children t pn)

  let expand_desc_or_self t c =
    List.map
      (fun pn ->
        if PI.id pn = PI.id c.pn then c
        else { pn; restr = narrow (Extent.restrict_by_ancestor ~or_self:false) c.restr pn })
      (desc_or_self_pnodes t.pindex c.pn [])

  let child_cands t c test ~attribute =
    PI.children t.pindex c.pn
    |> List.filter (fun pn ->
           (if attribute then PI.kind pn = `Attribute else PI.kind pn <> `Attribute)
           && test_matches test pn)
    |> List.map (fun pn -> { pn; restr = narrow Extent.restrict_by_parent c.restr pn })

  let descendant_cands t c test ~or_self =
    desc_or_self_pnodes t.pindex c.pn []
    |> List.filter_map (fun pn ->
           let self = PI.id pn = PI.id c.pn in
           if (self && not or_self) || not (test_matches test pn) then None
           else if self then Some c
           else Some { pn; restr = narrow (Extent.restrict_by_ancestor ~or_self:false) c.restr pn })

  (* ---- route pricing (Cost policy) ----

     Strategy choices are made at execution time, when the candidate's
     extent is already restricted by everything to its left — so the
     owner count is exact, not estimated.  What is estimated: the
     target count a value-index build would walk (a structural pnode
     walk of the relative path, ignoring its predicates — an upper
     bound), and the matches a probe would return (from the maintained
     statistics). *)

  exception Unpriceable

  (* one structural step over path-index nodes, ignoring predicates;
     raises [Unpriceable] outside the indexable fragment *)
  let pnodes_step t pns ((step : step), desc_flag) =
    let dedup pns = List.sort_uniq (fun a b -> compare (PI.id a) (PI.id b)) pns in
    let bases =
      if desc_flag then
        dedup (List.concat_map (fun p -> desc_or_self_pnodes t.pindex p []) pns)
      else pns
    in
    dedup
      (List.concat_map
         (fun p ->
           match step.axis with
           | Xsm_xdm.Axis.Child ->
             List.filter
               (fun c -> PI.kind c <> `Attribute && test_matches step.test c)
               (PI.children t.pindex p)
           | Xsm_xdm.Axis.Attribute ->
             List.filter
               (fun c -> PI.kind c = `Attribute && test_matches step.test c)
               (PI.children t.pindex p)
           | Xsm_xdm.Axis.Self -> if test_matches step.test p then [ p ] else []
           | Xsm_xdm.Axis.Descendant | Xsm_xdm.Axis.Descendant_or_self ->
             let or_self = step.axis = Xsm_xdm.Axis.Descendant_or_self in
             List.filter
               (fun c -> (or_self || PI.id c <> PI.id p) && test_matches step.test c)
               (desc_or_self_pnodes t.pindex p [])
           | _ -> raise Unpriceable)
         bases)

  (* the pnodes a relative path can reach, ignoring predicates *)
  let rel_target_pnodes t pn (rel : path) =
    if rel.absolute then None
    else
      match List.fold_left (pnodes_step t) [ pn ] rel.steps with
      | pns -> Some pns
      | exception Unpriceable -> None

  let extent_sum pns =
    List.fold_left (fun n p -> n + Extent.length (PI.extent p)) 0 pns

  let structural_rel (rel : path) =
    List.for_all (fun ((s : step), _) -> s.predicates = []) rel.steps

  let drops_of t key = Option.value ~default:0 (Hashtbl.find_opt t.vi_drop_hist key)

  (* residual route: test each remaining owner by navigating the
     relative path from it *)
  let residual_price owners (rel : path) =
    float_of_int owners
    *. (float_of_int (List.length rel.steps) +. 1.)
    *. Plan.Cost.residual

  (* expected matching entries of a value probe, from the maintained
     statistics of a cached index; 0 when nothing is known *)
  let matches_estimator pred (vi : VI.t option) =
    match vi, pred with
    | None, _ -> 0.
    | Some vi, Equals (_, lit) -> float_of_int (VI.count_eq vi lit)
    | Some vi, Cmp (op, _, lit) ->
      let vop =
        match op with
        | Path_ast.Lt -> VI.Lt
        | Path_ast.Le -> VI.Le
        | Path_ast.Gt -> VI.Gt
        | Path_ast.Ge -> VI.Ge
      in
      VI.est_range (VI.summary vi) vop (VI.Key.of_string lit)
    | Some _, _ -> 0.

  (* indexed route of a value predicate: probe the cached index, or
     build it first — amortized over future reuses when its history
     gives no reason to expect another drop, surcharged otherwise *)
  let probe_price t pn (rel : path) ~matches =
    let key = (PI.id pn, Path_ast.to_string rel) in
    match Hashtbl.find_opt t.values key with
    | Some v -> Plan.Cost.probe +. (matches (Some v.vi) *. Plan.Cost.entry)
    | None -> (
      match rel_target_pnodes t pn rel with
      | None -> Float.infinity
      | Some pns ->
        let build = float_of_int (extent_sum pns) *. Plan.Cost.build in
        let drops = drops_of t key in
        let build =
          if drops = 0 then build /. Plan.Cost.amortize
          else build *. float_of_int (1 + drops)
        in
        build +. Plan.Cost.probe)

  (* indexed route of an existence predicate: structural semi-join on
     the labels; a relative path with inner predicates additionally
     pays the value-index work its recursive planning will do *)
  let semijoin_price t pn (rel : path) ~owners =
    match rel_target_pnodes t pn rel with
    | None -> Float.infinity
    | Some pns ->
      let targets = float_of_int (extent_sum pns) in
      let base = (targets +. float_of_int owners) *. Plan.Cost.entry in
      if structural_rel rel then base
      else base +. (targets *. Plan.Cost.build /. Plan.Cost.amortize)

  (* pick the indexed route on a tie only while nothing was ever
     dropped: a dropped index is evidence the next drop is coming *)
  let prefer_indexed t key ~indexed ~residual =
    if drops_of t key = 0 then indexed <= residual else indexed < residual

  let record t pred chosen ~indexed ~residual =
    t.decisions <-
      {
        d_pred = Format.asprintf "%a" Path_ast.pp_expr pred;
        d_chosen = chosen;
        d_indexed = indexed;
        d_residual = residual;
      }
      :: t.decisions

  let rec do_step t cands ((step : step), desc_flag) =
    let bases =
      if desc_flag then merge_cands (List.concat_map (expand_desc_or_self t) cands)
      else cands
    in
    let targets =
      List.concat_map
        (fun c ->
          match step.axis with
          | Xsm_xdm.Axis.Child -> child_cands t c step.test ~attribute:false
          | Xsm_xdm.Axis.Attribute -> child_cands t c step.test ~attribute:true
          | Xsm_xdm.Axis.Self -> if test_matches step.test c.pn then [ c ] else []
          | Xsm_xdm.Axis.Descendant -> descendant_cands t c step.test ~or_self:false
          | Xsm_xdm.Axis.Descendant_or_self ->
            descendant_cands t c step.test ~or_self:true
          | (Xsm_xdm.Axis.Parent | Xsm_xdm.Axis.Ancestor | Xsm_xdm.Axis.Ancestor_or_self
            | Xsm_xdm.Axis.Following_sibling | Xsm_xdm.Axis.Preceding_sibling
            | Xsm_xdm.Axis.Following | Xsm_xdm.Axis.Preceding) as axis ->
            raise (Fallback (Xsm_xdm.Axis.to_string axis ^ " axis")))
        bases
    in
    let targets = merge_cands targets in
    List.fold_left
      (fun cs pred -> List.map (fun c -> apply_pred t c pred) cs)
      targets step.predicates

  and apply_pred t c pred =
    match pred with
    | Position _ | Position_cmp _ | Last _ -> raise (Fallback "positional predicate")
    | Exists rel ->
      let owners = Extent.length (cand_extent c) in
      let indexed = if t.policy = Rule then 0. else semijoin_price t c.pn rel ~owners in
      let residual = residual_price owners rel in
      if
        t.policy = Rule
        || prefer_indexed t (PI.id c.pn, Path_ast.to_string rel) ~indexed ~residual
      then begin
        if t.policy = Cost then record t pred "semijoin" ~indexed ~residual;
        let targets = run_rel t c.pn rel in
        let restr' =
          Extent.semijoin_containing
            ~targets:(List.map cand_extent targets)
            (cand_extent c)
        in
        { c with restr = Some restr' }
      end
      else begin
        record t pred "residual" ~indexed ~residual;
        residual_filter t c pred
      end
    | Equals (rel, lit) ->
      decide_value t c pred rel (fun () ->
          restrict_probe c (VI.eq (value_index t c.pn rel) lit))
    | Cmp (op, rel, lit) ->
      let vop =
        match op with
        | Path_ast.Lt -> VI.Lt
        | Path_ast.Le -> VI.Le
        | Path_ast.Gt -> VI.Gt
        | Path_ast.Ge -> VI.Ge
      in
      decide_value t c pred rel (fun () ->
          restrict_probe c (VI.range (value_index t c.pn rel) vop (VI.Key.of_string lit)))

  and decide_value t c pred rel probe_route =
    if t.policy = Rule then probe_route ()
    else begin
      let owners = Extent.length (cand_extent c) in
      let indexed = probe_price t c.pn rel ~matches:(matches_estimator pred) in
      let residual = residual_price owners rel in
      if prefer_indexed t (PI.id c.pn, Path_ast.to_string rel) ~indexed ~residual
      then begin
        record t pred "probe" ~indexed ~residual;
        probe_route ()
      end
      else begin
        record t pred "residual" ~indexed ~residual;
        residual_filter t c pred
      end
    end

  (* the residual route: keep exactly the owners the navigational
     evaluator's predicate semantics would keep, by running the
     relative path from each remaining owner *)
  and residual_filter t c pred =
    let keep =
      match pred with
      | Exists rel -> fun (e : N.node Extent.entry) -> E.eval t.backend e.node rel <> []
      | Equals (rel, lit) ->
        fun e ->
          List.exists
            (fun m -> String.equal (N.string_value t.backend m) lit)
            (E.eval t.backend e.node rel)
      | Cmp (op, rel, lit) ->
        let vop =
          match op with
          | Path_ast.Lt -> VI.Lt
          | Path_ast.Le -> VI.Le
          | Path_ast.Gt -> VI.Gt
          | Path_ast.Ge -> VI.Ge
        in
        let probe = VI.Key.of_string lit in
        fun e ->
          List.exists
            (fun m ->
              List.exists
                (fun v -> VI.op_matches vop (VI.Key.of_value v) probe)
                (N.typed_value t.backend m))
            (E.eval t.backend e.node rel)
      | Position _ | Position_cmp _ | Last _ -> assert false
    in
    let ext = cand_extent c in
    let positions = ref [] and i = ref 0 in
    List.iter
      (fun e ->
        if keep e then positions := !i :: !positions;
        incr i)
      (Extent.entries ext);
    { c with restr = Some (Extent.select ext (List.rev !positions)) }

  and restrict_probe c owner_labels =
    let sub = Extent.select_by_labels (PI.extent c.pn) owner_labels in
    { c with restr = Some (match c.restr with None -> sub | Some r -> Extent.inter r sub) }

  and run_rel t pn (rel : path) =
    if rel.absolute then raise (Fallback "absolute predicate path");
    List.fold_left (do_step t) [ { pn; restr = None } ] rel.steps

  (* The typed value index over (owner path, relative value path),
     built on first use from the owner and target extents — each
     target node attaches to its unique owner ancestor by one binary
     search on the labels — then kept current by journal maintenance
     (or dropped for lazy rebuild when it cannot be). *)
  and value_index t pn (rel : path) =
    let key = (PI.id pn, Path_ast.to_string rel) in
    match Hashtbl.find_opt t.values key with
    | Some v -> v.vi
    | None ->
      let owners = PI.extent pn in
      let targets = run_rel t pn rel in
      let vi = VI.create () in
      List.iter
        (fun tc ->
          List.iter
            (fun (e : N.node Extent.entry) ->
              match Extent.find_ancestor_pos ~or_self:true ~among:owners e.label with
              | None -> ()
              | Some pos ->
                let owner = (Extent.get owners pos).Extent.label in
                let sval = N.string_value t.backend e.node in
                VI.set_target vi ~target:e.label ~owner
                  (List.map
                     (fun v -> (VI.Key.of_value v, sval))
                     (N.typed_value t.backend e.node)))
            (Extent.entries (cand_extent tc)))
        targets;
      let v_structural =
        List.for_all (fun ((s : step), _) -> s.predicates = []) rel.steps
      in
      let v_targets = Hashtbl.create 8 in
      List.iter (fun c -> Hashtbl.replace v_targets (PI.id c.pn) ()) targets;
      Hashtbl.add t.values key { vi; v_rel = rel; v_targets; v_structural };
      vi

  (* ---- differential maintenance ---- *)

  let vi_iter t f =
    (* snapshot first: [f] may drop entries *)
    List.iter
      (fun (key, v) -> f key v)
      (Hashtbl.fold (fun key v acc -> (key, v) :: acc) t.values [])

  let drop_vi t key =
    if Hashtbl.mem t.values key then begin
      Hashtbl.remove t.values key;
      Counter.cell_incr t.vi_drops;
      let n = Option.value ~default:0 (Hashtbl.find_opt t.vi_drop_hist key) in
      Hashtbl.replace t.vi_drop_hist key (n + 1)
    end

  (* re-read the value entries one target node contributes: its owner
     is its unique ancestor-or-self in the owner extent (gone owner =
     gone entries), its values come from the current store state *)
  let recompute_target t owner_pid v (e : N.node Extent.entry) =
    let owners = PI.extent (PI.pnode t.pindex owner_pid) in
    match Extent.find_ancestor_pos ~or_self:true ~among:owners e.label with
    | None -> VI.remove_target v.vi e.label
    | Some i ->
      let owner = (Extent.get owners i).Extent.label in
      let sval = N.string_value t.backend e.node in
      VI.set_target v.vi ~target:e.label ~owner
        (List.map (fun value -> (VI.Key.of_value value, sval)) (N.typed_value t.backend e.node))

  (* a structural edit at [label] also stales any target that is a
     strict ancestor of it: element string values concatenate
     descendant text.  Each target extent is an antichain, so at most
     one entry per extent qualifies — one binary search each. *)
  let refresh_ancestor_targets t owner_pid v label =
    Hashtbl.iter
      (fun tp () ->
        let text = PI.extent (PI.pnode t.pindex tp) in
        match Extent.find_ancestor_pos ~or_self:false ~among:text label with
        | None -> ()
        | Some i -> recompute_target t owner_pid v (Extent.get text i))
      v.v_targets

  let vi_on_added t root_label added =
    vi_iter t (fun ((owner_pid, _) as key) v ->
        if not v.v_structural then drop_vi t key
        else begin
          List.iter
            (fun (pid, label, node) ->
              if Hashtbl.mem v.v_targets pid then
                recompute_target t owner_pid v { Extent.label; node })
            added;
          refresh_ancestor_targets t owner_pid v root_label
        end)

  let vi_on_removed t root_label removed =
    vi_iter t (fun ((owner_pid, _) as key) v ->
        if not v.v_structural then drop_vi t key
        else begin
          List.iter
            (fun (pid, label) ->
              if Hashtbl.mem v.v_targets pid then VI.remove_target v.vi label)
            removed;
          refresh_ancestor_targets t owner_pid v root_label
        end)

  let vi_on_content t label =
    vi_iter t (fun ((owner_pid, _) as key) v ->
        if not v.v_structural then drop_vi t key
        else
          Hashtbl.iter
            (fun tp () ->
              let text = PI.extent (PI.pnode t.pindex tp) in
              match Extent.find_ancestor_pos ~or_self:true ~among:text label with
              | None -> ()
              | Some i -> recompute_target t owner_pid v (Extent.get text i))
            v.v_targets)

  (* new pnodes may widen the target pid set a value index was built
     over; recompute it structurally (cheap: the pnode tree alone) and
     drop indexes whose set changed — their entries are incomplete *)
  let revalidate_value_targets t =
    vi_iter t (fun ((owner_pid, _) as key) v ->
        if not v.v_structural then drop_vi t key
        else begin
          let fresh =
            List.map
              (fun c -> PI.id c.pn)
              (run_rel t (PI.pnode t.pindex owner_pid) v.v_rel)
          in
          let same =
            List.length fresh = Hashtbl.length v.v_targets
            && List.for_all (fun pid -> Hashtbl.mem v.v_targets pid) fresh
          in
          if not same then drop_vi t key
        end)

  exception Too_much

  let apply_one t touched budget = function
    | Node_added node -> (
      let added = PI.insert_subtree t.pindex t.backend node in
      touched := !touched + List.length added;
      if !touched > budget then raise Too_much;
      match added with
      | [] -> ()
      | (_, root_label, _) :: _ -> vi_on_added t root_label added)
    | Node_removed node -> (
      let removed = PI.remove_subtree t.pindex t.backend node in
      touched := !touched + List.length removed;
      if !touched > budget then raise Too_much;
      match removed with
      | [] -> ()
      | (_, root_label) :: _ -> vi_on_removed t root_label removed)
    | Node_content node -> (
      match PI.locate t.pindex t.backend node with
      | None -> ()  (* content of a node outside the indexed tree *)
      | Some (_, label) ->
        incr touched;
        vi_on_content t label)

  let apply_changes t changes =
    if t.is_stale then refresh t
    else
      match changes with
      | [] -> ()
      | changes -> (
        let before_pnodes = PI.pnode_count t.pindex in
        (* the size-ratio heuristic: when a batch touches more than a
           quarter of the indexed entries, differential upkeep costs
           more than the single linear pass of a rebuild — stop and
           rebuild.  Partial application up to that point is harmless:
           the rebuild subsumes it. *)
        let budget = max 8 (PI.entry_count t.pindex / 4) in
        let touched = ref 0 in
        match
          List.iter (fun c -> apply_one t touched budget c) changes;
          if PI.pnode_count t.pindex > before_pnodes then revalidate_value_targets t
        with
        | () -> Counter.cell_add t.applied (List.length changes)
        | exception (Too_much | Xsm_index.Path_index.Maintenance_error _) -> refresh t)

  let ensure_fresh t =
    let start = Xsm_obs.Clock.now_ns () in
    Trace.with_span "plan.maintain" (fun () ->
        let pending = drain t in
        if t.is_stale then refresh t else apply_changes t pending);
    Histogram.observe h_drain
      (Int64.to_float (Int64.sub (Xsm_obs.Clock.now_ns ()) start))

  let eval_indexed t (p : path) =
    ensure_fresh t;
    if not p.absolute then raise (Fallback "relative path");
    t.decisions <- [];
    let final =
      List.fold_left (do_step t) [ { pn = PI.root t.pindex; restr = None } ] p.steps
    in
    Extent.nodes (Extent.merge (List.map cand_extent final))

  let try_indexed t p =
    match eval_indexed t p with
    | nodes -> Ok nodes
    | exception Fallback reason -> Error reason

  (* ---- the instance-backed cardinality view ----

     Exact extent sizes from the path index, value statistics from the
     cached value indexes: the provider the generic estimator runs
     over when live data is available. *)

  let provider t =
    let rec view parent_rows pn =
      let total = Extent.length (PI.extent pn) in
      let children_of keep =
        lazy
          (PI.children t.pindex pn |> List.filter keep
          |> List.map (view (float_of_int total)))
      in
      let find_vi rel = Hashtbl.find_opt t.values (PI.id pn, rel) in
      {
        Plan.pv_cycle = PI.id pn;
        pv_kind = PI.kind pn;
        pv_name = PI.name pn;
        pv_rows = Plan.exactly total;
        pv_per_parent =
          {
            Plan.lo = 0;
            hi = Some total;
            expect = float_of_int total /. Float.max 1. parent_rows;
          };
        pv_children = children_of (fun c -> PI.kind c <> `Attribute);
        pv_attrs = children_of (fun c -> PI.kind c = `Attribute);
        pv_summary = (fun rel -> Option.map (fun v -> VI.summary v.vi) (find_vi rel));
        pv_count_eq =
          (fun rel lit -> Option.map (fun v -> VI.count_eq v.vi lit) (find_vi rel));
        pv_literal_ok = (fun _ -> None);
      }
    in
    view 1. (PI.root t.pindex)

  let estimate t p = Plan.estimate ~root:(provider t) p

  (* skeleton price of the indexed route: the extents the structural
     moves touch, plus each predicate at its cheaper strategy over
     unrestricted owners — an optimistic bound, matched against the
     navigational price for the whole-query route choice *)
  let indexed_price t (p : path) =
    if not p.absolute then None
    else
      let price_pred pn pred =
        let owners = Extent.length (PI.extent pn) in
        match pred with
        | Position _ | Position_cmp _ | Last _ -> raise Unpriceable
        | Exists rel ->
          Float.min (semijoin_price t pn rel ~owners) (residual_price owners rel)
        | Equals _ | Cmp _ ->
          let rel =
            match pred with Equals (r, _) | Cmp (_, r, _) -> r | _ -> assert false
          in
          Float.min
            (probe_price t pn rel ~matches:(matches_estimator pred))
            (residual_price owners rel)
      in
      match
        List.fold_left
          (fun (pns, cost) ((step : step), _ as s) ->
            let next = pnodes_step t pns s in
            let cost = cost +. (float_of_int (extent_sum next) *. Plan.Cost.entry) in
            let cost =
              List.fold_left
                (fun cost pred ->
                  List.fold_left (fun c pn -> c +. price_pred pn pred) cost next)
                cost step.predicates
            in
            (next, cost))
          ([ PI.root t.pindex ], 0.)
          p.steps
      with
      | _, cost -> Some cost
      | exception Unpriceable -> None

  (* Whole-query route choice under the cost policy: price the indexed
     skeleton against the navigational evaluation and keep the
     cheaper.  Returns the prices for [explain]. *)
  let choose_route t (p : path) =
    if t.policy = Cost && p.absolute then begin
      ensure_fresh t;
      match indexed_price t p with
      | Some ip ->
        let ep = Plan.Cost.eval_cost ~root:(provider t) p in
        if ep < ip then
          `Eval (Printf.sprintf "cost: navigation %.0f < indexed %.0f" ep ip, Some (ip, ep))
        else `Indexed (Some (ip, ep))
      | None -> `Indexed None
    end
    else `Indexed None

  let set_digest_sink t sink = t.digest_sink <- sink

  let emit_digest t ~route ~reason ~query p' nodes =
    match t.digest_sink with
    | None -> ()
    | Some sink ->
      sink
        {
          dg_query = Lazy.force query;
          dg_route = route;
          dg_reason = reason;
          dg_actual = List.length nodes;
          dg_estimate =
            (fun () ->
              match estimate t p' with e -> Some e | exception _ -> None);
        }

  let eval t ?context p =
    let query = lazy (Path_ast.to_string p) in
    let p = rewrite t ?context p in
    match prune_reason t ?context p with
    | Some reason ->
      (* provably empty: answer without touching indexes or extents *)
      Counter.cell_incr t.pruned;
      emit_digest t ~route:"pruned" ~reason ~query p [];
      []
    | None -> (
      let fallback reason =
        Counter.incr m_fallbacks;
        let nodes =
          Trace.with_span ~attrs:[ ("reason", reason) ] "plan.fallback" (fun () ->
              E.eval t.backend (Option.value context ~default:t.root) p)
        in
        emit_digest t ~route:"fallback" ~reason ~query p nodes;
        nodes
      in
      match choose_route t p with
      | `Eval (reason, _) -> fallback reason
      | `Indexed _ -> (
        match Trace.with_span "plan.index" (fun () -> try_indexed t p) with
        | Ok nodes ->
          Counter.incr m_index_hits;
          emit_digest t ~route:"index" ~reason:"" ~query p nodes;
          nodes
        | Error reason -> fallback reason))

  let eval_string t ?context text =
    match Path_parser.parse text with
    | Ok p -> Ok (eval t ?context p)
    | Error e -> Error e

  let uses_index t p = Result.is_ok (try_indexed t p)

  let explain t p =
    let p = rewrite t p in
    match prune_reason t p with
    | Some reason -> Printf.sprintf "pruned(%s)" reason
    | None -> (
      match choose_route t p with
      | `Eval (reason, _) -> Printf.sprintf "fallback(%s)" reason
      | `Indexed _ -> (
        match try_indexed t p with
        | Ok nodes ->
          let e = estimate t p in
          Format.asprintf
            "index(%d nodes; est %s; %a; %d value indexes; epoch %d)"
            (List.length nodes)
            (Plan.to_string e.Plan.e_rows)
            PI.pp_stats t.pindex (value_index_count t)
            (Counter.cell_value t.epoch)
        | Error reason -> Printf.sprintf "fallback(%s)" reason))

  let decision_to_json (d : decision) =
    Xsm_obs.Json.Obj
      [
        ("pred", Xsm_obs.Json.Str d.d_pred);
        ("chosen", Xsm_obs.Json.Str d.d_chosen);
        ("indexed_cost", Xsm_obs.Json.Num d.d_indexed);
        ("residual_cost", Xsm_obs.Json.Num d.d_residual);
      ]

  (* Structured explain: the chosen route, the estimate with per-step
     annotations, the actual row count, the estimate error, and the
     strategy decisions the plan made. *)
  let explain_json t p =
    let module J = Xsm_obs.Json in
    let p' = rewrite t p in
    let ms = maintenance_stats t in
    let maintenance =
      J.Obj
        [
          ("epochs", J.int ms.epochs);
          ("applied", J.int ms.applied);
          ("vi_drops", J.int ms.vi_drops);
        ]
    in
    let route_costs = function
      | None -> []
      | Some (ip, ep) ->
        [ ("indexed_cost", J.Num ip); ("eval_cost", J.Num ep) ]
    in
    let est_fields (e : Plan.estimate) actual =
      [
        ("actual_rows", J.int actual);
        ("est", Plan.est_to_json e.Plan.e_rows);
        ("est_rows", J.Num e.Plan.e_rows.Plan.expect);
        ("in_interval", J.Bool (Plan.contains e.Plan.e_rows actual));
        ("abs_error",
         J.Num (Float.abs (e.Plan.e_rows.Plan.expect -. float_of_int actual)));
        ("estimate", Plan.estimate_to_json e);
      ]
    in
    let base route reason fields =
      J.Obj
        ([ ("query", J.Str (Path_ast.to_string p)); ("route", J.Str route) ]
        @ (if Path_ast.to_string p' <> Path_ast.to_string p then
             [ ("rewritten", J.Str (Path_ast.to_string p')) ]
           else [])
        @ (match reason with None -> [] | Some r -> [ ("reason", J.Str r) ])
        @ fields
        @ [ ("maintenance", maintenance) ])
    in
    match prune_reason t p' with
    | Some reason -> base "pruned" (Some reason) [ ("actual_rows", J.int 0) ]
    | None -> (
      match choose_route t p' with
      | `Eval (reason, costs) ->
        let actual = List.length (E.eval t.backend t.root p') in
        let e = estimate t p' in
        base "fallback" (Some reason) (est_fields e actual @ route_costs costs)
      | `Indexed costs -> (
        match try_indexed t p' with
        | Ok nodes ->
          let e = estimate t p' in
          base "index" None
            (est_fields e (List.length nodes)
            @ route_costs costs
            @ [
                ("value_indexes", J.int (value_index_count t));
                ("decisions", J.Arr (List.rev_map decision_to_json t.decisions));
              ])
        | Error reason ->
          let actual = List.length (E.eval t.backend t.root p') in
          let e = estimate t p' in
          base "fallback" (Some reason) (est_fields e actual @ route_costs costs)))
end

module Over_store = Make (Navigator.Xdm)
module Over_storage = Make (Navigator.Storage)

let attach_journal (t : Over_store.t) (j : Xsm_schema.Update.Journal.t) =
  (* a private cursor: the planner reads at its own pace and other
     subscribers (a WAL writer, recovery) see the same entries *)
  let cursor = Xsm_schema.Update.Journal.subscribe j in
  Over_store.set_source t (fun () ->
      List.map
        (function
          | Xsm_schema.Update.Journal.Inserted n -> Over_store.Node_added n
          | Xsm_schema.Update.Journal.Deleted n -> Over_store.Node_removed n
          | Xsm_schema.Update.Journal.Content n -> Over_store.Node_content n)
        (Xsm_schema.Update.Journal.read j cursor))
