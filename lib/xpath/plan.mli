(** Static cardinality estimation and the planner's cost model.

    An {!est} is a row {e interval} [[lo, hi]] ([hi = None] =
    unbounded) together with a point {e expectation}.  The interval is
    the sound part — for a correct provider it contains the actual
    result cardinality — while the expectation is the planner's best
    guess, used to price candidate routes.

    Estimates are propagated over a {!pview} tree: a lazily expanded
    cardinality view of the document shaped like the DataGuide.  Two
    providers exist: the planner builds one from its path index (exact
    extent sizes, value-index statistics), and [Xsm_analysis.Estimator]
    builds one from the schema alone (occurrence intervals composed
    along the schema DataGuide) — so the same propagation engine prices
    a query against live data or against nothing but the schema. *)

type est = { lo : int; hi : int option; expect : float }

val exactly : int -> est
val zero : est
val unknown : est
(** [[0, ∞)] with expectation 0 — the estimate of last resort. *)

val add : est -> est -> est
val mul : est -> est -> est
val cap : est -> est -> est
(** [cap e bound] tightens [e] to the instances that exist at all:
    upper bounds and expectation are clamped by [bound]. *)

val contains : est -> int -> bool
(** Is the actual count inside the interval? *)

val to_string : est -> string
(** [[lo,hi]~expect] with [*] for unbounded. *)

val est_to_json : est -> Xsm_obs.Json.t
(** [{"lo": _, "hi": _ | null, "expect": _}]. *)

(** {1 Cardinality views} *)

type pview = {
  pv_cycle : int;
      (** provider-stable identity used to cut cycles when expanding
          descendant axes (recursive schema types); unique per rooted
          path for acyclic providers *)
  pv_kind : [ `Document | `Element | `Attribute | `Text ];
  pv_name : Xsm_xml.Name.t option;
  pv_rows : est;  (** total instances on this rooted path *)
  pv_per_parent : est;  (** occurrences per instance of the parent *)
  pv_children : pview list Lazy.t;  (** element and text children *)
  pv_attrs : pview list Lazy.t;
  pv_summary : string -> Xsm_index.Value_index.summary option;
      (** maintained value statistics for a printed relative path
          anchored at this view, when the provider has collected any *)
  pv_count_eq : string -> string -> int option;
      (** [rel lit]: exact maintained count of value entries under
          [rel] whose key equals the literal's *)
  pv_literal_ok : string -> bool option;
      (** is the literal inside this view's value space?  [Some false]
          proves an equality against it can never hold *)
}

val leaf_view :
  cycle:int ->
  kind:[ `Document | `Element | `Attribute | `Text ] ->
  ?name:Xsm_xml.Name.t ->
  rows:est ->
  per_parent:est ->
  ?children:pview list Lazy.t ->
  ?attrs:pview list Lazy.t ->
  ?summary:(string -> Xsm_index.Value_index.summary option) ->
  ?count_eq:(string -> string -> int option) ->
  ?literal_ok:(string -> bool option) ->
  unit ->
  pview
(** Constructor with inert defaults for the optional oracles. *)

(** {1 Estimation} *)

type pred_note = {
  dn_pred : string;
  dn_sel : float;  (** expected selectivity in [0, 1] *)
  dn_always : bool;  (** provably keeps every candidate *)
  dn_never : bool;  (** provably keeps none *)
  dn_work : float;  (** expected nodes visited evaluating it navigationally *)
}

type step_note = {
  sn_step : string;
  sn_arrived : est;  (** rows reaching the step, before its predicates *)
  sn_rows : est;  (** rows surviving the predicates *)
  sn_preds : pred_note list;
}

type estimate = {
  e_rows : est;
  e_steps : step_note list;
  e_supported : bool;
      (** false when the path left the estimable fragment (reverse or
          sibling axes, relative paths); the interval degrades to
          {!unknown} but stays sound *)
}

val estimate : root:pview -> Path_ast.path -> estimate
(** Propagate row intervals along the path, step by step, annotating
    every step and predicate.  Never raises: unsupported shapes
    degrade to {!unknown}. *)

val estimate_to_json : estimate -> Xsm_obs.Json.t

(** {1 Cost model}

    Unit costs are in abstract "node touches"; only their ratios
    matter.  The planner prices each candidate route — extent scan
    and structural joins, value-index probe (plus an amortized build
    when the index is not cached), residual per-owner filtering,
    navigational evaluation — and picks the cheapest. *)

module Cost : sig
  val entry : float  (** touching one extent entry in a merge or join *)

  val visit : float  (** visiting one node navigationally *)

  val build : float  (** indexing one target of a value-index build *)

  val probe : float  (** one value-index probe *)

  val residual : float
  (** testing one owner in a residual filter, per relative-path step *)

  val amortize : float
  (** expected reuses of a freshly built value index with no drop
      history: its build cost is divided by this *)

  val eval_cost : root:pview -> Path_ast.path -> float
  (** Price of answering the path with the navigational evaluator,
      from the estimate's visit counts. *)
end
