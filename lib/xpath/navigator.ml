(** The navigation interface the evaluator needs — exactly the §5
    accessors (plus an ordering, which §7 derives from them).  Any
    backend providing these can run queries: the XDM store and the
    Sedna block storage both do. *)

module type S = sig
  type t
  (** The backend (a store, a block storage, ...). *)

  type node

  val kind : t -> node -> [ `Document | `Element | `Attribute | `Text ]
  val name : t -> node -> Xsm_xml.Name.t option
  val parent : t -> node -> node option
  val children : t -> node -> node list
  val attributes : t -> node -> node list
  val string_value : t -> node -> string

  val typed_value : t -> node -> Xsm_datatypes.Value.t list
  (** The §5 typed-value accessor; untyped backends answer with
      [xdt:untypedAtomic] of the string value. *)

  val equal : t -> node -> node -> bool

  val order : t -> node -> node -> int
  (** Document order (§7). *)

  val id : t -> node -> int
  (** A stable integer identity — node identifiers, not positions, so
      it never changes under updates.  Used for hashing by the index
      maintenance machinery. *)
end

module Xdm : S with type t = Xsm_xdm.Store.t and type node = Xsm_xdm.Store.node = struct
  module Store = Xsm_xdm.Store

  type t = Store.t
  type node = Store.node

  let kind store n =
    match Store.kind store n with
    | Store.Kind.Document -> `Document
    | Store.Kind.Element -> `Element
    | Store.Kind.Attribute -> `Attribute
    | Store.Kind.Text -> `Text

  let name = Store.node_name
  let parent = Store.parent
  let children = Store.children
  let attributes = Store.attributes
  let string_value = Store.string_value
  let typed_value = Store.typed_value
  let equal _ a b = Store.equal_node a b
  let order = Xsm_xdm.Order.compare
  let id _ n = Store.node_id n
end

module Storage :
  S with type t = Xsm_storage.Block_storage.t and type node = Xsm_storage.Block_storage.desc =
struct
  module B = Xsm_storage.Block_storage
  module Schema = Xsm_storage.Descriptive_schema

  type t = B.t
  type node = B.desc

  let kind _ d =
    match Xsm_storage.Descriptive_schema.kind (B.snode d) with
    | Schema.Document -> `Document
    | Schema.Element -> `Element
    | Schema.Attribute -> `Attribute
    | Schema.Text -> `Text

  let name _ d = B.node_name d
  let parent _ d = B.parent d
  let children = B.children
  let attributes = B.attributes
  let string_value = B.string_value
  let typed_value = B.typed_value
  let equal _ a b = Xsm_numbering.Sedna_label.equal (B.nid a) (B.nid b)
  let order _ a b = Xsm_numbering.Sedna_label.compare (B.nid a) (B.nid b)
  let id _ d = B.desc_id d
end
