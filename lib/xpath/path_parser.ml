module Axis = Xsm_xdm.Axis
module Name = Xsm_xml.Name
open Path_ast

exception Err of string

let fail fmt = Printf.ksprintf (fun s -> raise (Err s)) fmt

type scan = { s : string; mutable i : int }

let peek sc = if sc.i < String.length sc.s then Some sc.s.[sc.i] else None
let looking_at sc str =
  let n = String.length str in
  sc.i + n <= String.length sc.s && String.sub sc.s sc.i n = str

let eat sc str =
  if looking_at sc str then begin
    sc.i <- sc.i + String.length str;
    true
  end
  else false

let expect sc str = if not (eat sc str) then fail "expected %S at offset %d" str sc.i

let is_ncname_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.'

let scan_ncname sc =
  let start = sc.i in
  while (match peek sc with Some c -> is_ncname_char c | None -> false) do
    sc.i <- sc.i + 1
  done;
  if sc.i = start then fail "expected a name at offset %d" start;
  String.sub sc.s start (sc.i - start)

(* a QName: ncname, optionally :ncname — but never the :: of an axis *)
let scan_name sc =
  let first = scan_ncname sc in
  if peek sc = Some ':' && not (looking_at sc "::") then begin
    sc.i <- sc.i + 1;
    first ^ ":" ^ scan_ncname sc
  end
  else first

let scan_int sc =
  let start = sc.i in
  while (match peek sc with Some c -> c >= '0' && c <= '9' | None -> false) do
    sc.i <- sc.i + 1
  done;
  if sc.i = start then fail "expected a number at offset %d" start;
  int_of_string (String.sub sc.s start (sc.i - start))

let scan_literal sc =
  match peek sc with
  | Some (('"' | '\'') as q) ->
    sc.i <- sc.i + 1;
    let start = sc.i in
    while (match peek sc with Some c -> c <> q | None -> false) do
      sc.i <- sc.i + 1
    done;
    (match peek sc with
    | Some _ ->
      let v = String.sub sc.s start (sc.i - start) in
      sc.i <- sc.i + 1;
      v
    | None -> fail "unterminated string literal")
  | _ -> fail "expected a string literal at offset %d" sc.i

let skip_spaces sc =
  while peek sc = Some ' ' do
    sc.i <- sc.i + 1
  done

(* a comparison right-hand side: a quoted literal or a bare number *)
let scan_comparand sc =
  match peek sc with
  | Some ('"' | '\'') -> scan_literal sc
  | _ ->
    let start = sc.i in
    if peek sc = Some '-' then sc.i <- sc.i + 1;
    while
      match peek sc with Some c -> (c >= '0' && c <= '9') || c = '.' | None -> false
    do
      sc.i <- sc.i + 1
    done;
    if sc.i = start || (sc.i = start + 1 && sc.s.[start] = '-') then
      fail "expected a literal or number at offset %d" start;
    String.sub sc.s start (sc.i - start)

let qname s =
  match Name.of_string s with Ok n -> n | Error e -> fail "%s" e

let rec parse_path sc ~absolute_allowed =
  let absolute, first_desc =
    if eat sc "//" then (true, true)
    else if eat sc "/" then (true, false)
    else (false, false)
  in
  if absolute && not absolute_allowed then fail "absolute path not allowed here";
  let steps = ref [] in
  let rec more desc =
    let step = parse_step sc in
    steps := (step, desc) :: !steps;
    if eat sc "//" then more true else if eat sc "/" then more false
  in
  more first_desc;
  { absolute; steps = List.rev !steps }

and parse_step sc =
  if eat sc ".." then { axis = Axis.Parent; test = Node_test; predicates = [] }
  else if eat sc "." && not (looking_at sc ".") then
    { axis = Axis.Self; test = Node_test; predicates = [] }
  else begin
    let axis, test =
      if eat sc "@" then (Axis.Attribute, parse_test sc)
      else begin
        (* try axis:: prefix *)
        let save = sc.i in
        match
          let name = scan_ncname sc in
          if looking_at sc "::" then Some name else None
        with
        | Some axis_name -> (
          expect sc "::";
          match Axis.of_string axis_name with
          | Some a -> (a, parse_test sc)
          | None -> fail "unknown axis %s" axis_name)
        | None ->
          sc.i <- save;
          (Axis.Child, parse_test sc)
        | exception Err _ ->
          sc.i <- save;
          (Axis.Child, parse_test sc)
      end
    in
    let predicates = parse_predicates sc in
    { axis; test; predicates }
  end

and parse_test sc =
  if eat sc "*" then Wildcard
  else if looking_at sc "text()" then begin
    sc.i <- sc.i + 6;
    Text_test
  end
  else if looking_at sc "node()" then begin
    sc.i <- sc.i + 6;
    Node_test
  end
  else Name_test (qname (scan_name sc))

and parse_predicates sc =
  if eat sc "[" then begin
    let e = parse_expr sc in
    expect sc "]";
    e :: parse_predicates sc
  end
  else []

and parse_expr sc =
  match peek sc with
  | Some c when c >= '0' && c <= '9' -> Position (scan_int sc)
  | _ ->
    if looking_at sc "last()" then begin
      sc.i <- sc.i + 6;
      skip_spaces sc;
      if eat sc "-" then begin
        skip_spaces sc;
        Last (scan_int sc)
      end
      else Last 0
    end
    else if looking_at sc "position()" then begin
      sc.i <- sc.i + 10;
      skip_spaces sc;
      if eat sc "=" then begin
        skip_spaces sc;
        Position (scan_int sc)
      end
      else begin
        let op =
          if eat sc "<=" then Le
          else if eat sc "<" then Lt
          else if eat sc ">=" then Ge
          else if eat sc ">" then Gt
          else fail "expected a comparison after position() at offset %d" sc.i
        in
        skip_spaces sc;
        Position_cmp (op, scan_int sc)
      end
    end
    else begin
      let p = parse_path sc ~absolute_allowed:false in
      skip_spaces sc;
      if eat sc "=" then begin
        skip_spaces sc;
        Equals (p, scan_literal sc)
      end
      else if eat sc "<=" then cmp_rhs sc Le p
      else if eat sc "<" then cmp_rhs sc Lt p
      else if eat sc ">=" then cmp_rhs sc Ge p
      else if eat sc ">" then cmp_rhs sc Gt p
      else Exists p
    end

and cmp_rhs sc op p =
  skip_spaces sc;
  Cmp (op, p, scan_comparand sc)

let parse input =
  let sc = { s = input; i = 0 } in
  match parse_path sc ~absolute_allowed:true with
  | p ->
    if sc.i <> String.length input then
      Error (Printf.sprintf "trailing characters at offset %d" sc.i)
    else Ok p
  | exception Err m -> Error m

let parse_exn input =
  match parse input with Ok p -> p | Error e -> invalid_arg e
