(** Abstract syntax of the XPath subset.

    The engine exists to demonstrate the paper's claim that the node
    accessors "provide primitive facilities for a query language"
    (§1): every construct below evaluates using only the ten §5
    accessors. *)

type axis = Xsm_xdm.Axis.t

type node_test =
  | Name_test of Xsm_xml.Name.t
  | Wildcard  (** [*] — any element *)
  | Text_test  (** [text()] *)
  | Node_test  (** [node()] *)

type cmp = Lt | Le | Gt | Ge

type expr =
  | Position of int  (** [[2]] or [[position()=2]] *)
  | Position_cmp of cmp * int
      (** [[position()<=3]] — a comparison on the 1-based context
          position *)
  | Last of int  (** [[last()]] is [Last 0], [[last()-1]] is [Last 1] *)
  | Exists of path  (** [[author]] — a relative path matches *)
  | Equals of path * string  (** [[author="Codd"]] *)
  | Cmp of cmp * path * string
      (** [[price < 30]] — an order comparison on typed values: some
          node selected by the relative path has a typed value in the
          same family (number or text) as the literal satisfying the
          comparison *)

and step = { axis : axis; test : node_test; predicates : expr list }

and path = {
  absolute : bool;  (** leading [/] — start from the document node *)
  steps : (step * bool) list;
      (** the flag is [true] when the step was preceded by [//]
          (descendant-or-self shortcut) *)
}

val cmp_to_string : cmp -> string

val pp_expr : Format.formatter -> expr -> unit
val pp_step : Format.formatter -> step -> unit
val pp_path : Format.formatter -> path -> unit
val to_string : path -> string
