module J = Xsm_obs.Json
module VI = Xsm_index.Value_index

(* ------------------------------------------------------------------ *)
(* Row estimates                                                       *)

type est = { lo : int; hi : int option; expect : float }

let exactly n = { lo = n; hi = Some n; expect = float_of_int n }
let zero = exactly 0
let unknown = { lo = 0; hi = None; expect = 0. }

let add a b =
  {
    lo = a.lo + b.lo;
    hi = (match a.hi, b.hi with Some x, Some y -> Some (x + y) | _ -> None);
    expect = a.expect +. b.expect;
  }

let mul a b =
  let hi =
    match a.hi, b.hi with
    | Some 0, _ | _, Some 0 -> Some 0
    | Some x, Some y -> Some (x * y)
    | _ -> None
  in
  { lo = a.lo * b.lo; hi; expect = a.expect *. b.expect }

let cap e bound =
  let hi =
    match e.hi, bound.hi with
    | Some x, Some y -> Some (min x y)
    | (Some _ as h), None | None, h -> h
  in
  let lo = match hi with Some h -> min e.lo h | None -> e.lo in
  { lo; hi; expect = Float.min e.expect bound.expect }

let contains e n = n >= e.lo && (match e.hi with None -> true | Some h -> n <= h)

let to_string e =
  Printf.sprintf "[%d,%s]~%.1f" e.lo
    (match e.hi with Some h -> string_of_int h | None -> "*")
    e.expect

let est_to_json e =
  J.Obj
    [
      ("lo", J.int e.lo);
      ("hi", (match e.hi with Some h -> J.int h | None -> J.Null));
      ("expect", J.Num e.expect);
    ]

(* ------------------------------------------------------------------ *)
(* Cardinality views                                                   *)

type pview = {
  pv_cycle : int;
  pv_kind : [ `Document | `Element | `Attribute | `Text ];
  pv_name : Xsm_xml.Name.t option;
  pv_rows : est;
  pv_per_parent : est;
  pv_children : pview list Lazy.t;
  pv_attrs : pview list Lazy.t;
  pv_summary : string -> VI.summary option;
  pv_count_eq : string -> string -> int option;
  pv_literal_ok : string -> bool option;
}

let leaf_view ~cycle ~kind ?name ~rows ~per_parent ?(children = lazy [])
    ?(attrs = lazy []) ?(summary = fun _ -> None) ?(count_eq = fun _ _ -> None)
    ?(literal_ok = fun _ -> None) () =
  {
    pv_cycle = cycle;
    pv_kind = kind;
    pv_name = name;
    pv_rows = rows;
    pv_per_parent = per_parent;
    pv_children = children;
    pv_attrs = attrs;
    pv_summary = summary;
    pv_count_eq = count_eq;
    pv_literal_ok = literal_ok;
  }

(* ------------------------------------------------------------------ *)
(* Propagation                                                         *)

type pred_note = {
  dn_pred : string;
  dn_sel : float;
  dn_always : bool;
  dn_never : bool;
  dn_work : float;
}

type step_note = {
  sn_step : string;
  sn_arrived : est;
  sn_rows : est;
  sn_preds : pred_note list;
}

type estimate = { e_rows : est; e_steps : step_note list; e_supported : bool }

exception Unknown_shape

module IntSet = Set.Make (Int)

(* One in-flight group: the rows of a query prefix landing on one
   view.  [full] marks "every instance of this view is here" — then
   the rows are the view's own (exact for an instance-backed provider),
   not a product of per-parent factors. *)
type item = { iv : pview; rows : est; full : bool }

let add_item acc it =
  let rec go = function
    | [] -> [ it ]
    | it' :: rest when it'.iv == it.iv ->
      let merged =
        if it.full then it
        else if it'.full then it'
        else { it with rows = cap (add it.rows it'.rows) it.iv.pv_rows; full = false }
      in
      merged :: rest
    | it' :: rest -> it' :: go rest
  in
  go acc

let est_of_items items =
  List.fold_left (fun acc it -> add acc it.rows) zero items

let test_matches (test : Path_ast.node_test) v =
  match test, v.pv_kind with
  | Path_ast.Name_test n, (`Element | `Attribute) -> (
    match v.pv_name with Some m -> Xsm_xml.Name.equal m n | None -> false)
  | Path_ast.Name_test _, (`Document | `Text) -> false
  | Path_ast.Wildcard, (`Element | `Attribute) -> true
  | Path_ast.Wildcard, (`Document | `Text) -> false
  | Path_ast.Text_test, `Text -> true
  | Path_ast.Text_test, (`Document | `Element | `Attribute) -> false
  | Path_ast.Node_test, _ -> true

let child_item it c =
  let rows = if it.full then c.pv_rows else cap (mul it.rows c.pv_per_parent) c.pv_rows in
  { iv = c; rows; full = it.full }

(* descendant closure over element/text children; a view already on
   the expansion path is a recursive tie-back — its rows become
   unbounded above and the recursion stops there *)
let expand_descendants ~or_self it acc =
  let rec go seen it acc =
    List.fold_left
      (fun acc c ->
        let cit = child_item it c in
        if IntSet.mem c.pv_cycle seen then
          let hi = if cit.rows.hi = Some 0 then Some 0 else None in
          add_item acc { cit with rows = { cit.rows with hi }; full = false }
        else go (IntSet.add c.pv_cycle seen) cit (add_item acc cit))
      acc
      (Lazy.force it.iv.pv_children)
  in
  let acc = if or_self then add_item acc it else acc in
  go (IntSet.singleton it.iv.pv_cycle) it acc

(* [run_path]: propagate items through the steps; also returns the
   expected node visits a navigational evaluation would spend, and
   (when [notes]) the per-step annotations. *)
let rec run_path ~notes items (steps : (Path_ast.step * bool) list) =
  let visits = ref 0. in
  let step_notes = ref [] in
  let final =
    List.fold_left
      (fun items ((step : Path_ast.step), desc_flag) ->
        let bases =
          if desc_flag then
            List.fold_left (fun acc it -> expand_descendants ~or_self:true it acc) [] items
          else items
        in
        visits := !visits +. (est_of_items bases).expect;
        let targets =
          match step.Path_ast.axis with
          | Xsm_xdm.Axis.Child ->
            List.concat_map
              (fun it ->
                Lazy.force it.iv.pv_children
                |> List.filter (test_matches step.Path_ast.test)
                |> List.map (child_item it))
              bases
          | Xsm_xdm.Axis.Attribute ->
            List.concat_map
              (fun it ->
                Lazy.force it.iv.pv_attrs
                |> List.filter (test_matches step.Path_ast.test)
                |> List.map (child_item it))
              bases
          | Xsm_xdm.Axis.Self ->
            List.filter (fun it -> test_matches step.Path_ast.test it.iv) bases
          | Xsm_xdm.Axis.Descendant | Xsm_xdm.Axis.Descendant_or_self ->
            let or_self = step.Path_ast.axis = Xsm_xdm.Axis.Descendant_or_self in
            List.fold_left
              (fun acc it -> expand_descendants ~or_self it acc)
              [] bases
            |> List.filter (fun it -> test_matches step.Path_ast.test it.iv)
          | Xsm_xdm.Axis.Parent | Xsm_xdm.Axis.Ancestor
          | Xsm_xdm.Axis.Ancestor_or_self | Xsm_xdm.Axis.Following_sibling
          | Xsm_xdm.Axis.Preceding_sibling | Xsm_xdm.Axis.Following
          | Xsm_xdm.Axis.Preceding ->
            raise Unknown_shape
        in
        let targets = List.fold_left add_item [] targets in
        let arrived = est_of_items targets in
        visits := !visits +. arrived.expect;
        let parents_total = est_of_items bases in
        let targets, pred_notes =
          List.fold_left
            (fun (items, ns) pred ->
              let items, n = apply_pred ~parents_total items pred in
              visits := !visits +. n.dn_work;
              (items, n :: ns))
            (targets, []) step.Path_ast.predicates
        in
        if notes then
          step_notes :=
            {
              sn_step =
                (if desc_flag then "//" else "/")
                ^ Format.asprintf "%a" Path_ast.pp_step step;
              sn_arrived = arrived;
              sn_rows = est_of_items targets;
              sn_preds = List.rev pred_notes;
            }
            :: !step_notes;
        targets)
      items steps
  in
  (final, !visits, List.rev !step_notes)

(* expected targets (and their views) for a relative predicate path
   anchored at one instance of the owner view *)
and rel_estimate v (rel : Path_ast.path) =
  if rel.Path_ast.absolute then raise Unknown_shape;
  let items, visits, _ =
    run_path ~notes:false [ { iv = v; rows = exactly 1; full = false } ]
      rel.Path_ast.steps
  in
  (items, est_of_items items, visits)

and apply_pred ~parents_total items (pred : Path_ast.expr) =
  let before = est_of_items items in
  let note sel always never work =
    {
      dn_pred = Format.asprintf "%a" Path_ast.pp_expr pred;
      dn_sel = sel;
      dn_always = always;
      dn_never = never;
      dn_work = work;
    }
  in
  let positional per_parent_hi expect' =
    (* each parent contributes at most [per_parent_hi] survivors *)
    let bound = mul parents_total (exactly per_parent_hi) in
    let items' =
      List.map
        (fun it ->
          let rows = cap { it.rows with lo = 0 } bound in
          { it with rows = { rows with expect = Float.min rows.expect expect' }; full = false })
        items
    in
    let after = est_of_items items' in
    let sel = if before.expect > 0. then after.expect /. before.expect else 1. in
    (items', note sel false false 0.)
  in
  match pred with
  | Path_ast.Position k ->
    positional 1 (Float.min parents_total.expect (before.expect /. float_of_int (max 1 k)))
  | Path_ast.Last _ -> positional 1 (Float.min parents_total.expect before.expect)
  | Path_ast.Position_cmp ((Path_ast.Le | Path_ast.Lt) as op, k) ->
    let m = max 0 (if op = Path_ast.Le then k else k - 1) in
    positional m (Float.min before.expect (parents_total.expect *. float_of_int m))
  | Path_ast.Position_cmp ((Path_ast.Gt | Path_ast.Ge), _) ->
    let items' =
      List.map (fun it -> { it with rows = { it.rows with lo = 0 }; full = false }) items
    in
    (items', note 0.5 false false 0.)
  | Path_ast.Exists rel -> (
    match List.map (fun it -> (it, rel_estimate it.iv rel)) items with
    | exception Unknown_shape ->
      let items' =
        List.map (fun it -> { it with rows = { it.rows with lo = 0 }; full = false }) items
      in
      (items', note 1.0 false false 0.)
    | per_item ->
      let work = ref 0. in
      let items' =
        List.map
          (fun (it, (_, rel_rows, visits)) ->
            work := !work +. (it.rows.expect *. visits);
            let always = rel_rows.lo >= 1 in
            let never = rel_rows.hi = Some 0 in
            let sel = Float.min 1.0 rel_rows.expect in
            {
              it with
              rows =
                {
                  lo = (if always then it.rows.lo else 0);
                  hi = (if never then Some 0 else it.rows.hi);
                  expect = it.rows.expect *. (if never then 0. else sel);
                };
              full = it.full && always;
            })
          per_item
      in
      let after = est_of_items items' in
      let sel = if before.expect > 0. then after.expect /. before.expect else 1. in
      let all p = per_item <> [] && List.for_all p per_item in
      ( items',
        note sel
          (all (fun (_, (_, r, _)) -> r.lo >= 1))
          (all (fun (_, (_, r, _)) -> r.hi = Some 0))
          !work ))
  | Path_ast.Equals (rel, lit) | Path_ast.Cmp (_, rel, lit) -> (
    let rel_str = Path_ast.to_string rel in
    match List.map (fun it -> (it, rel_estimate it.iv rel)) items with
    | exception Unknown_shape ->
      let items' =
        List.map (fun it -> { it with rows = { it.rows with lo = 0 }; full = false }) items
      in
      (items', note 0.5 false false 0.)
    | per_item ->
      let work = ref 0. in
      let items' =
        List.map
          (fun (it, (targets, rel_rows, visits)) ->
            work := !work +. (it.rows.expect *. visits);
            (* the literal can never match when every target view
               rejects it from its value space *)
            let never_lit =
              match pred with
              | Path_ast.Equals _ ->
                targets <> []
                && List.for_all
                     (fun t -> t.iv.pv_literal_ok lit = Some false)
                     targets
              | _ -> false
            in
            let never = never_lit || rel_rows.hi = Some 0 in
            (* expected matching entries, from maintained statistics
               when the provider has them *)
            let matches =
              match pred with
              | Path_ast.Equals _ -> (
                match it.iv.pv_count_eq rel_str lit with
                | Some n -> Some (float_of_int n)
                | None ->
                  Option.map (fun s -> VI.est_eq s lit) (it.iv.pv_summary rel_str))
              | Path_ast.Cmp (op, _, _) ->
                let op =
                  match op with
                  | Path_ast.Lt -> VI.Lt
                  | Path_ast.Le -> VI.Le
                  | Path_ast.Gt -> VI.Gt
                  | Path_ast.Ge -> VI.Ge
                in
                Option.map
                  (fun s -> VI.est_range s op (VI.Key.of_string lit))
                  (it.iv.pv_summary rel_str)
              | _ -> None
            in
            let expect' =
              if never then 0.
              else
                match matches with
                | Some m -> Float.min it.rows.expect m
                | None ->
                  let default =
                    match pred with Path_ast.Equals _ -> 0.1 | _ -> 0.3
                  in
                  it.rows.expect *. default *. Float.min 1.0 rel_rows.expect
            in
            {
              it with
              rows =
                { lo = 0; hi = (if never then Some 0 else it.rows.hi); expect = expect' };
              full = false;
            })
          per_item
      in
      let after = est_of_items items' in
      let sel = if before.expect > 0. then after.expect /. before.expect else 1. in
      let never = items' <> [] && List.for_all (fun it -> it.rows.hi = Some 0) items' in
      (items', note sel false never !work))

let estimate ~root (p : Path_ast.path) =
  if not p.Path_ast.absolute then
    (* the context node is unknown — nothing to anchor the rows to *)
    { e_rows = unknown; e_steps = []; e_supported = false }
  else
    let start = { iv = root; rows = root.pv_rows; full = true } in
    match run_path ~notes:true [ start ] p.Path_ast.steps with
    | items, _, notes ->
      { e_rows = est_of_items items; e_steps = notes; e_supported = true }
    | exception Unknown_shape -> { e_rows = unknown; e_steps = []; e_supported = false }

let pred_note_to_json n =
  J.Obj
    [
      ("pred", J.Str n.dn_pred);
      ("sel", J.Num n.dn_sel);
      ("always", J.Bool n.dn_always);
      ("never", J.Bool n.dn_never);
    ]

let step_note_to_json n =
  J.Obj
    [
      ("step", J.Str n.sn_step);
      ("arrived", est_to_json n.sn_arrived);
      ("rows", est_to_json n.sn_rows);
      ("preds", J.Arr (List.map pred_note_to_json n.sn_preds));
    ]

let estimate_to_json e =
  J.Obj
    [
      ("rows", est_to_json e.e_rows);
      ("supported", J.Bool e.e_supported);
      ("steps", J.Arr (List.map step_note_to_json e.e_steps));
    ]

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)

module Cost = struct
  let entry = 1.
  let visit = 3.
  let build = 8.
  let probe = 12.
  let residual = 4.
  let amortize = 4.

  let eval_cost ~root (p : Path_ast.path) =
    let start = { iv = root; rows = root.pv_rows; full = true } in
    match run_path ~notes:false [ start ] p.Path_ast.steps with
    | _, visits, _ -> visit *. visits
    | exception Unknown_shape ->
      (* outside the estimable fragment: price one full walk *)
      visit *. Float.max 1. root.pv_rows.expect
end
