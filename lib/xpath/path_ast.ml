type axis = Xsm_xdm.Axis.t

type node_test =
  | Name_test of Xsm_xml.Name.t
  | Wildcard
  | Text_test
  | Node_test

type cmp = Lt | Le | Gt | Ge

type expr =
  | Position of int
  | Position_cmp of cmp * int
  | Last of int
  | Exists of path
  | Equals of path * string
  | Cmp of cmp * path * string

and step = { axis : axis; test : node_test; predicates : expr list }

and path = { absolute : bool; steps : (step * bool) list }

let pp_test ppf = function
  | Name_test n -> Xsm_xml.Name.pp ppf n
  | Wildcard -> Format.pp_print_string ppf "*"
  | Text_test -> Format.pp_print_string ppf "text()"
  | Node_test -> Format.pp_print_string ppf "node()"

let cmp_to_string = function Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let is_bare_number v =
  v <> ""
  && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-') v

let pp_literal ppf v =
  (* numbers read back without quotes; everything else is quoted *)
  if is_bare_number v then Format.pp_print_string ppf v
  else Format.fprintf ppf "%S" v

let rec pp_expr ppf = function
  | Position n -> Format.pp_print_int ppf n
  | Position_cmp (op, n) -> Format.fprintf ppf "position()%s%d" (cmp_to_string op) n
  | Last 0 -> Format.pp_print_string ppf "last()"
  | Last k -> Format.fprintf ppf "last()-%d" k
  | Exists p -> pp_path ppf p
  | Equals (p, v) -> Format.fprintf ppf "%a=%S" pp_path p v
  | Cmp (op, p, v) ->
    Format.fprintf ppf "%a%s%a" pp_path p (cmp_to_string op) pp_literal v

and pp_step ppf (s : step) =
  (match s.axis with
  | Xsm_xdm.Axis.Child -> ()
  | Xsm_xdm.Axis.Attribute -> Format.pp_print_char ppf '@'
  | other -> Format.fprintf ppf "%s::" (Xsm_xdm.Axis.to_string other));
  pp_test ppf s.test;
  List.iter (fun e -> Format.fprintf ppf "[%a]" pp_expr e) s.predicates

and pp_path ppf (p : path) =
  List.iteri
    (fun i (s, desc) ->
      let sep = if desc then "//" else "/" in
      if i > 0 || p.absolute then Format.pp_print_string ppf sep;
      pp_step ppf s)
    p.steps

let to_string p = Format.asprintf "%a" pp_path p
