open Path_ast

module Make (N : Navigator.S) = struct
  let dedup_in_order backend nodes =
    let sorted = List.stable_sort (N.order backend) nodes in
    let rec uniq = function
      | a :: (b :: _ as rest) ->
        if N.equal backend a b then uniq rest else a :: uniq rest
      | short -> short
    in
    uniq sorted

  let rec descendants_or_self backend n =
    n :: List.concat_map (descendants_or_self backend) (N.children backend n)

  let axis_nodes backend axis n =
    match (axis : Xsm_xdm.Axis.t) with
    | Xsm_xdm.Axis.Self -> [ n ]
    | Xsm_xdm.Axis.Child -> N.children backend n
    | Xsm_xdm.Axis.Attribute -> N.attributes backend n
    | Xsm_xdm.Axis.Parent -> Option.to_list (N.parent backend n)
    | Xsm_xdm.Axis.Descendant ->
      List.concat_map (descendants_or_self backend) (N.children backend n)
    | Xsm_xdm.Axis.Descendant_or_self -> descendants_or_self backend n
    | Xsm_xdm.Axis.Ancestor ->
      (* nearest ancestor first (reverse document order, per XPath) *)
      let rec up acc m =
        match N.parent backend m with None -> acc | Some p -> up (p :: acc) p
      in
      List.rev (up [] n)
    | Xsm_xdm.Axis.Ancestor_or_self ->
      let rec up acc m =
        match N.parent backend m with None -> acc | Some p -> up (p :: acc) p
      in
      n :: List.rev (up [] n)
    | Xsm_xdm.Axis.Following_sibling -> (
      match N.parent backend n with
      | None -> []
      | Some p ->
        let rec after = function
          | [] -> []
          | c :: rest -> if N.equal backend c n then rest else after rest
        in
        after (N.children backend p))
    | Xsm_xdm.Axis.Preceding_sibling -> (
      match N.parent backend n with
      | None -> []
      | Some p ->
        let rec before acc = function
          | [] -> []
          | c :: rest -> if N.equal backend c n then acc else before (c :: acc) rest
        in
        before [] (N.children backend p))
    | Xsm_xdm.Axis.Following | Xsm_xdm.Axis.Preceding ->
      (* via the root: everything strictly after/before this subtree *)
      let rec root m = match N.parent backend m with None -> m | Some p -> root p in
      let all = descendants_or_self backend (root n) in
      let in_subtree = descendants_or_self backend n in
      let member x = List.exists (N.equal backend x) in
      let rec ancestors m =
        match N.parent backend m with None -> [] | Some p -> p :: ancestors p
      in
      let anc = ancestors n in
      let cmp = N.order backend n in
      (match (axis : Xsm_xdm.Axis.t) with
      | Xsm_xdm.Axis.Following ->
        List.filter (fun x -> cmp x < 0 && not (member x in_subtree)) all
      | _ ->
        List.rev
          (List.filter
             (fun x -> cmp x > 0 && (not (member x in_subtree)) && not (member x anc))
             all))

  let test_matches backend test n =
    match test, N.kind backend n with
    | Name_test name, (`Element | `Attribute) -> (
      match N.name backend n with
      | Some m -> Xsm_xml.Name.equal m name
      | None -> false)
    | Name_test _, (`Document | `Text) -> false
    | Wildcard, `Element -> true
    | Wildcard, `Attribute -> true (* on the attribute axis, @* means any attribute *)
    | Wildcard, (`Document | `Text) -> false
    | Text_test, `Text -> true
    | Text_test, (`Document | `Element | `Attribute) -> false
    | Node_test, _ -> true

  let rec apply_predicates backend candidates predicates =
    match predicates with
    | [] -> candidates
    | p :: rest ->
      let total = List.length candidates in
      let kept =
        List.filteri
          (fun i n ->
            match p with
            | Position k -> i + 1 = k
            | Position_cmp (op, k) ->
              let p = i + 1 in
              (match op with
              | Path_ast.Lt -> p < k
              | Path_ast.Le -> p <= k
              | Path_ast.Gt -> p > k
              | Path_ast.Ge -> p >= k)
            | Last k -> i + 1 = total - k
            | Exists rel -> eval_path backend n rel <> []
            | Equals (rel, lit) ->
              List.exists
                (fun m -> String.equal (N.string_value backend m) lit)
                (eval_path backend n rel)
            | Cmp (op, rel, lit) ->
              let module VI = Xsm_index.Value_index in
              let op =
                match op with
                | Path_ast.Lt -> VI.Lt
                | Path_ast.Le -> VI.Le
                | Path_ast.Gt -> VI.Gt
                | Path_ast.Ge -> VI.Ge
              in
              let probe = VI.Key.of_string lit in
              List.exists
                (fun m ->
                  List.exists
                    (fun v -> VI.op_matches op (VI.Key.of_value v) probe)
                    (N.typed_value backend m))
                (eval_path backend n rel))
          candidates
      in
      apply_predicates backend kept rest

  and eval_step backend nodes (step, desc_flag) =
    (* // expands to descendant-or-self::node()/ *)
    let bases =
      if desc_flag then
        dedup_in_order backend (List.concat_map (descendants_or_self backend) nodes)
      else nodes
    in
    let per_node n =
      let on_axis = axis_nodes backend step.axis n in
      let matching = List.filter (test_matches backend step.test) on_axis in
      apply_predicates backend matching step.predicates
    in
    dedup_in_order backend (List.concat_map per_node bases)

  and eval_path backend n (p : path) =
    let start =
      if p.absolute then
        let rec root m = match N.parent backend m with None -> m | Some q -> root q in
        [ root n ]
      else [ n ]
    in
    List.fold_left (eval_step backend) start p.steps

  let eval backend n p = eval_path backend n p

  let eval_string backend n text =
    match Path_parser.parse text with
    | Ok p -> Ok (eval backend n p)
    | Error e -> Error e

  let strings backend nodes = List.map (N.string_value backend) nodes

  let count backend n text =
    match eval_string backend n text with
    | Ok nodes -> Ok (List.length nodes)
    | Error e -> Error e
end

module Over_store = Make (Navigator.Xdm)
module Over_storage = Make (Navigator.Storage)
