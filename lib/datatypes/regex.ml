(* Byte-oriented implementation: multi-byte UTF-8 sequences are treated
   as their constituent bytes, which is exact for the ASCII subset the
   schema patterns in this repository use. *)

type cset = bool array (* 256 entries *)

type ast =
  | Empty
  | Chars of cset
  | Seq of ast * ast
  | Alt of ast * ast
  | Star of ast
  | Repeat of ast * int * int option

exception Syntax of string

let fail fmt = Printf.ksprintf (fun s -> raise (Syntax s)) fmt

let cset_none () = Array.make 256 false
let cset_all ?(except = []) () =
  let a = Array.make 256 true in
  List.iter (fun c -> a.(Char.code c) <- false) except;
  a

let cset_of_ranges ranges =
  let a = cset_none () in
  List.iter
    (fun (lo, hi) ->
      for i = Char.code lo to Char.code hi do
        a.(i) <- true
      done)
    ranges;
  a

let cset_union a b = Array.init 256 (fun i -> a.(i) || b.(i))
let cset_negate a = Array.map not a
let cset_subtract a b = Array.init 256 (fun i -> a.(i) && not b.(i))

let digit = cset_of_ranges [ ('0', '9') ]
let space = cset_of_ranges [ (' ', ' '); ('\t', '\t'); ('\n', '\n'); ('\r', '\r') ]

let word =
  (* \w = [#x0000-#x10FFFF]-[\p{P}\p{Z}\p{C}]; approximate with
     alphanumerics, underscore and high bytes *)
  cset_union
    (cset_of_ranges [ ('a', 'z'); ('A', 'Z'); ('0', '9'); ('_', '_') ])
    (cset_of_ranges [ ('\x80', '\xFF') ])

let name_start =
  cset_union
    (cset_of_ranges [ ('a', 'z'); ('A', 'Z'); ('_', '_'); (':', ':') ])
    (cset_of_ranges [ ('\x80', '\xFF') ])

let name_char =
  cset_union name_start (cset_of_ranges [ ('0', '9'); ('-', '-'); ('.', '.') ])

(* Unicode category escapes \p{...}, byte-approximated (ASCII exact,
   non-ASCII bytes treated as letters, which matches UTF-8 text for
   the Latin scripts the test corpus uses) *)
let category_set = function
  | "L" | "Lt" | "Lm" | "Lo" ->
    cset_of_ranges [ ('A', 'Z'); ('a', 'z'); ('\x80', '\xFF') ]
  | "Lu" -> cset_of_ranges [ ('A', 'Z') ]
  | "Ll" -> cset_of_ranges [ ('a', 'z') ]
  | "N" | "Nd" -> cset_of_ranges [ ('0', '9') ]
  | "P" ->
    cset_of_ranges
      [ ('!', '#'); ('%', '*'); (',', '/'); (':', ';'); ('?', '@'); ('[', ']');
        ('_', '_'); ('{', '}') ]
  | "S" -> cset_of_ranges [ ('$', '$'); ('+', '+'); ('<', '>'); ('^', '^'); ('`', '`'); ('|', '|'); ('~', '~') ]
  | "Z" | "Zs" -> cset_of_ranges [ (' ', ' ') ]
  | "C" | "Cc" -> cset_of_ranges [ ('\x00', '\x1F'); ('\x7F', '\x7F') ]
  | other -> fail "unsupported category \\p{%s}" other

type scan = { s : string; mutable i : int }

let peek sc = if sc.i < String.length sc.s then Some sc.s.[sc.i] else None
let advance sc = sc.i <- sc.i + 1

(* [None] = not a multi-character class escape; the caller then reads
   it as a single-character escape.  An option rather than an exception:
   raising [Not_found] as control flow would silently misparse if any
   callee of the surrounding [try] ever raised it too. *)
let escape_set = function
  | 'd' -> Some digit
  | 'D' -> Some (cset_negate digit)
  | 's' -> Some space
  | 'S' -> Some (cset_negate space)
  | 'w' -> Some word
  | 'W' -> Some (cset_negate word)
  | 'i' -> Some name_start
  | 'I' -> Some (cset_negate name_start)
  | 'c' -> Some name_char
  | 'C' -> Some (cset_negate name_char)
  | _ -> None

let single_escape = function
  | 'n' -> '\n'
  | 'r' -> '\r'
  | 't' -> '\t'
  | ('\\' | '|' | '.' | '?' | '*' | '+' | '(' | ')' | '{' | '}' | '[' | ']' | '^' | '$' | '-') as c ->
    c
  | c -> fail "unknown escape \\%c" c

let scan_category sc =
  (match peek sc with
  | Some '{' -> advance sc
  | _ -> fail "expected { after \\p");
  let buf = Buffer.create 4 in
  let rec go () =
    match peek sc with
    | Some '}' -> advance sc
    | Some c ->
      Buffer.add_char buf c;
      advance sc;
      go ()
    | None -> fail "unterminated category escape"
  in
  go ();
  category_set (Buffer.contents buf)

let scan_escape sc =
  match peek sc with
  | None -> fail "dangling backslash"
  | Some 'p' ->
    advance sc;
    `Set (scan_category sc)
  | Some 'P' ->
    advance sc;
    `Set (cset_negate (scan_category sc))
  | Some c -> (
    advance sc;
    match escape_set c with
    | Some set -> `Set set
    | None ->
      let ch = single_escape c in
      `Set (cset_of_ranges [ (ch, ch) ]))

(* character class: [ ... ] with ranges, escapes, negation, and
   subtraction [a-z-[aeiou]] *)
let rec scan_class sc =
  (* '[' already consumed *)
  let neg =
    match peek sc with
    | Some '^' ->
      advance sc;
      true
    | _ -> false
  in
  let acc = ref (cset_none ()) in
  let subtracted = ref None in
  let add_set s = acc := cset_union !acc s in
  let rec item () =
    match peek sc with
    | None -> fail "unterminated character class"
    | Some ']' -> advance sc
    | Some '-' -> (
      advance sc;
      match peek sc with
      | Some '[' ->
        (* class subtraction *)
        advance sc;
        let sub = scan_class sc in
        subtracted := Some sub;
        (match peek sc with
        | Some ']' -> advance sc
        | _ -> fail "expected ] after class subtraction")
      | Some ']' ->
        add_set (cset_of_ranges [ ('-', '-') ]);
        advance sc
      | _ ->
        add_set (cset_of_ranges [ ('-', '-') ]);
        item ())
    | Some '\\' -> (
      advance sc;
      match scan_escape sc with
      | `Set s ->
        (* range like \t-\n is unusual; treat escapes as atoms *)
        add_set s;
        item ())
    | Some c -> (
      advance sc;
      (* possible range c-d *)
      match peek sc with
      | Some '-' -> (
        let save = sc.i in
        advance sc;
        match peek sc with
        | Some ']' | Some '[' | None ->
          (* '-' is literal (or starts subtraction) — rewind *)
          sc.i <- save;
          add_set (cset_of_ranges [ (c, c) ]);
          item ()
        | Some '\\' ->
          advance sc;
          (match scan_escape sc with
          | `Set _ -> fail "range endpoint cannot be a class escape");
        | Some d ->
          advance sc;
          if Char.code d < Char.code c then fail "reversed range %c-%c" c d;
          add_set (cset_of_ranges [ (c, d) ]);
          item ())
      | _ ->
        add_set (cset_of_ranges [ (c, c) ]);
        item ())
  in
  item ();
  let base = if neg then cset_negate !acc else !acc in
  match !subtracted with None -> base | Some sub -> cset_subtract base sub

let scan_int sc =
  let start = sc.i in
  while (match peek sc with Some c when c >= '0' && c <= '9' -> true | _ -> false) do
    advance sc
  done;
  if sc.i = start then fail "expected number in quantifier";
  int_of_string (String.sub sc.s start (sc.i - start))

let max_expansion = 1000

let rec parse_alt sc =
  let left = parse_seq sc in
  match peek sc with
  | Some '|' ->
    advance sc;
    Alt (left, parse_alt sc)
  | _ -> left

and parse_seq sc =
  let rec go acc =
    match peek sc with
    | None | Some '|' | Some ')' -> acc
    | _ ->
      let piece = parse_piece sc in
      go (if acc = Empty then piece else Seq (acc, piece))
  in
  go Empty

and parse_piece sc =
  let atom = parse_atom sc in
  match peek sc with
  | Some '?' ->
    advance sc;
    Repeat (atom, 0, Some 1)
  | Some '*' ->
    advance sc;
    Star atom
  | Some '+' ->
    advance sc;
    Seq (atom, Star atom)
  | Some '{' ->
    advance sc;
    let n = scan_int sc in
    let bound =
      match peek sc with
      | Some '}' -> Some n
      | Some ',' -> (
        advance sc;
        match peek sc with
        | Some '}' -> None
        | _ ->
          let m = scan_int sc in
          if m < n then fail "quantifier {%d,%d} has max < min" n m;
          Some m)
      | _ -> fail "malformed quantifier"
    in
    (match peek sc with
    | Some '}' -> advance sc
    | _ -> fail "unterminated quantifier");
    if n > max_expansion || (match bound with Some m -> m > max_expansion | None -> false)
    then fail "quantifier bound exceeds %d" max_expansion;
    Repeat (atom, n, bound)
  | _ -> atom

and parse_atom sc =
  match peek sc with
  | None -> fail "expected atom"
  | Some '(' ->
    advance sc;
    let inner = parse_alt sc in
    (match peek sc with
    | Some ')' -> advance sc
    | _ -> fail "unterminated group");
    inner
  | Some '.' ->
    advance sc;
    Chars (cset_all ~except:[ '\n'; '\r' ] ())
  | Some '[' ->
    advance sc;
    Chars (scan_class sc)
  | Some '\\' -> (
    advance sc;
    match scan_escape sc with `Set s -> Chars s)
  | Some (('?' | '*' | '+' | '{' | '}' | ']' | ')') as c) -> fail "unexpected %c" c
  | Some c ->
    advance sc;
    Chars (cset_of_ranges [ (c, c) ])

(* ------------------------------------------------------------------ *)
(* Thompson NFA                                                        *)

type nfa = {
  (* state -> transitions; a state has either epsilon edges or one
     labelled edge *)
  eps : int list array;
  label : (cset * int) option array;
  start : int;
  accept : int;
}

let build ast =
  let eps = ref [] and label = ref [] and count = ref 0 in
  let new_state () =
    let id = !count in
    incr count;
    eps := [] :: !eps;
    label := None :: !label;
    id
  in
  (* we accumulate into arrays at the end; during construction use
     growable assoc via mutable lists indexed later *)
  let eps_edges = Hashtbl.create 64 in
  let label_edges = Hashtbl.create 64 in
  let add_eps a b = Hashtbl.replace eps_edges a (b :: Option.value ~default:[] (Hashtbl.find_opt eps_edges a)) in
  let add_label a set b = Hashtbl.replace label_edges a (set, b) in
  let rec go ast =
    (* returns (entry, exit) *)
    match ast with
    | Empty ->
      let s = new_state () in
      (s, s)
    | Chars set ->
      let a = new_state () and b = new_state () in
      add_label a set b;
      (a, b)
    | Seq (x, y) ->
      let ax, bx = go x in
      let ay, by = go y in
      add_eps bx ay;
      (ax, by)
    | Alt (x, y) ->
      let a = new_state () and b = new_state () in
      let ax, bx = go x in
      let ay, by = go y in
      add_eps a ax;
      add_eps a ay;
      add_eps bx b;
      add_eps by b;
      (a, b)
    | Star x ->
      let a = new_state () and b = new_state () in
      let ax, bx = go x in
      add_eps a ax;
      add_eps a b;
      add_eps bx ax;
      add_eps bx b;
      (a, b)
    | Repeat (x, n, bound) ->
      (* expand: n mandatory copies, then (m-n) optional or a star *)
      let chain_start = new_state () in
      let tail = ref chain_start in
      for _ = 1 to n do
        let ax, bx = go x in
        add_eps !tail ax;
        tail := bx
      done;
      (match bound with
      | None ->
        let ax, bx = go (Star x) in
        add_eps !tail ax;
        tail := bx
      | Some m ->
        let final = new_state () in
        for _ = n + 1 to m do
          let ax, bx = go x in
          add_eps !tail final;
          add_eps !tail ax;
          tail := bx
        done;
        add_eps !tail final;
        tail := final);
      (chain_start, !tail)
  in
  let start, accept = go ast in
  ignore !eps;
  ignore !label;
  let n = !count in
  let eps = Array.make n [] in
  let label = Array.make n None in
  Hashtbl.iter (fun a bs -> eps.(a) <- bs) eps_edges;
  Hashtbl.iter (fun a e -> label.(a) <- Some e) label_edges;
  { eps; label; start; accept }

type t = { nfa : nfa; source : string }

let compile src =
  match
    let sc = { s = src; i = 0 } in
    let ast = parse_alt sc in
    if sc.i <> String.length src then fail "unexpected %c" src.[sc.i];
    build ast
  with
  | nfa -> Ok { nfa; source = src }
  | exception Syntax msg -> Error msg

let source t = t.source

let matches t input =
  let { eps; label; start; accept } = t.nfa in
  let n = Array.length eps in
  let current = Array.make n false in
  let next = Array.make n false in
  let rec add_closure set s =
    if not set.(s) then begin
      set.(s) <- true;
      List.iter (add_closure set) eps.(s)
    end
  in
  add_closure current start;
  String.iter
    (fun c ->
      Array.fill next 0 n false;
      let code = Char.code c in
      Array.iteri
        (fun s active ->
          if active then
            match label.(s) with
            | Some (set, dst) when set.(code) -> add_closure next dst
            | _ -> ())
        current;
      Array.blit next 0 current 0 n)
    input;
  current.(accept)
