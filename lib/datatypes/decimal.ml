(* value = (if neg then -1 else 1) * digits * 10^(-scale)
   invariants: digits has no leading '0' unless it is exactly "0";
   scale >= 0; if scale > 0 the last digit is not '0'; "0" is never
   negative and has scale 0. *)
type t = { neg : bool; digits : string; scale : int }

let strip_leading_zeros s =
  let n = String.length s in
  let i = ref 0 in
  while !i < n - 1 && s.[!i] = '0' do
    incr i
  done;
  String.sub s !i (n - !i)

let normalize ~neg ~digits ~scale =
  (* remove trailing zeros in the fractional part *)
  let digits = ref digits and scale = ref scale in
  while !scale > 0 && String.length !digits > 1 && !digits.[String.length !digits - 1] = '0' do
    digits := String.sub !digits 0 (String.length !digits - 1);
    decr scale
  done;
  if !scale > 0 && !digits = "0" then scale := 0;
  let digits = strip_leading_zeros !digits in
  if digits = "0" then { neg = false; digits = "0"; scale = 0 }
  else { neg; digits; scale = !scale }

let zero = { neg = false; digits = "0"; scale = 0 }
let one = { neg = false; digits = "1"; scale = 0 }

let of_int i =
  if i = 0 then zero
  else { neg = i < 0; digits = Printf.sprintf "%u" (abs i); scale = 0 }

let is_digit c = c >= '0' && c <= '9'

let of_string s =
  let err () = Error (Printf.sprintf "invalid decimal %S" s) in
  let n = String.length s in
  if n = 0 then err ()
  else begin
    let neg, start =
      match s.[0] with '-' -> (true, 1) | '+' -> (false, 1) | _ -> (false, 0)
    in
    if start >= n then err ()
    else begin
      match String.index_from_opt s start '.' with
      | None ->
        let body = String.sub s start (n - start) in
        if body <> "" && String.for_all is_digit body then
          Ok (normalize ~neg ~digits:body ~scale:0)
        else err ()
      | Some dot ->
        let int_part = String.sub s start (dot - start) in
        let frac_part = String.sub s (dot + 1) (n - dot - 1) in
        if int_part = "" && frac_part = "" then err ()
        else if String.for_all is_digit int_part && String.for_all is_digit frac_part then
          let digits = (if int_part = "" then "0" else int_part) ^ frac_part in
          Ok (normalize ~neg ~digits ~scale:(String.length frac_part))
        else err ()
    end
  end

let of_string_exn s =
  match of_string s with Ok d -> d | Error e -> invalid_arg e

let to_string { neg; digits; scale } =
  let body =
    if scale = 0 then digits
    else begin
      let n = String.length digits in
      if n > scale then
        String.sub digits 0 (n - scale) ^ "." ^ String.sub digits (n - scale) scale
      else "0." ^ String.make (scale - n) '0' ^ digits
    end
  in
  if neg then "-" ^ body else body

(* Compare two digit strings of equal length. *)
let compare_digit_strings a b =
  let la = String.length a and lb = String.length b in
  if la <> lb then compare la lb else String.compare a b

(* Scale a magnitude up by appending zeros. *)
let pad_right s k = if k = 0 then s else s ^ String.make k '0'

let compare_magnitude a b =
  (* compare |a| and |b|; re-strip leading zeros because padding a
     zero ("0" -> "00") would otherwise defeat the length-first rule *)
  let target = max a.scale b.scale in
  let da = strip_leading_zeros (pad_right a.digits (target - a.scale)) in
  let db = strip_leading_zeros (pad_right b.digits (target - b.scale)) in
  compare_digit_strings da db

let compare a b =
  match a.neg, b.neg with
  | false, true -> 1
  | true, false -> -1
  | false, false -> compare_magnitude a b
  | true, true -> compare_magnitude b a

let equal a b = compare a b = 0
let negate d = if d.digits = "0" then d else { d with neg = not d.neg }
let abs d = { d with neg = false }

(* Digit-string addition of equal-scale magnitudes. *)
let add_digit_strings a b =
  let la = String.length a and lb = String.length b in
  let n = max la lb in
  let out = Bytes.make (n + 1) '0' in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let da = if i < la then Char.code a.[la - 1 - i] - Char.code '0' else 0 in
    let db = if i < lb then Char.code b.[lb - 1 - i] - Char.code '0' else 0 in
    let s = da + db + !carry in
    Bytes.set out (n - i) (Char.chr (Char.code '0' + (s mod 10)));
    carry := s / 10
  done;
  Bytes.set out 0 (Char.chr (Char.code '0' + !carry));
  strip_leading_zeros (Bytes.to_string out)

(* a - b where a >= b as magnitudes, equal scale. *)
let sub_digit_strings a b =
  let la = String.length a and lb = String.length b in
  let out = Bytes.make la '0' in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let da = Char.code a.[la - 1 - i] - Char.code '0' in
    let db = if i < lb then Char.code b.[lb - 1 - i] - Char.code '0' else 0 in
    let s = da - db - !borrow in
    let s, bw = if s < 0 then (s + 10, 1) else (s, 0) in
    Bytes.set out (la - 1 - i) (Char.chr (Char.code '0' + s));
    borrow := bw
  done;
  strip_leading_zeros (Bytes.to_string out)

let add a b =
  let scale = max a.scale b.scale in
  let da = strip_leading_zeros (pad_right a.digits (scale - a.scale)) in
  let db = strip_leading_zeros (pad_right b.digits (scale - b.scale)) in
  if a.neg = b.neg then normalize ~neg:a.neg ~digits:(add_digit_strings da db) ~scale
  else begin
    match compare_digit_strings da db with
    | 0 -> zero
    | c when c > 0 -> normalize ~neg:a.neg ~digits:(sub_digit_strings da db) ~scale
    | _ -> normalize ~neg:b.neg ~digits:(sub_digit_strings db da) ~scale
  end

let sub a b = add a (negate b)
let is_integer d = d.scale = 0

let total_digits d = String.length (strip_leading_zeros d.digits)
let fraction_digits d = d.scale

let to_int d =
  if d.scale <> 0 then None
  else
    match int_of_string_opt (to_string d) with Some i -> Some i | None -> None

let to_float d = float_of_string (to_string d)

(* Every finite IEEE double m * 2^k is exactly a decimal: for k >= 0
   double the mantissa k times; for k < 0 multiply by 5^(-k) and shift
   the decimal point left by -k (2^k = 5^(-k) * 10^k).  Only digit
   additions are needed, so no precision is lost anywhere. *)
let double d = add d d
let times5 d = add (double (double d)) d

let of_float_exact f =
  if Float.is_nan f || Float.abs f = Float.infinity then None
  else if f = 0.0 then Some zero
  else begin
    let frac, e = Float.frexp (Float.abs f) in
    (* frac in [0.5, 1): frac * 2^53 is a 53-bit integer mantissa *)
    let m = int_of_float (Float.ldexp frac 53) in
    let k = e - 53 in
    let mag = of_int m in
    let mag =
      if k >= 0 then begin
        let d = ref mag in
        for _ = 1 to k do
          d := double !d
        done;
        !d
      end
      else begin
        let d = ref mag in
        for _ = 1 to -k do
          d := times5 !d
        done;
        normalize ~neg:false ~digits:!d.digits ~scale:(!d.scale - k)
      end
    in
    Some (if f < 0.0 then negate mag else mag)
  end
let sign d = if d.digits = "0" then 0 else if d.neg then -1 else 1
let pp ppf d = Format.pp_print_string ppf (to_string d)
