(** Arbitrary-precision decimal numbers — the value space of
    [xs:decimal] and all the integer types derived from it.

    A decimal is an exact value [sign * digits * 10^(-scale)].  The
    representation is normalized: no leading integer zeros, no trailing
    fractional zeros, and zero is unsigned.  This suffices for the
    operations XML Schema needs: lexical mapping, equality, ordering,
    digit-counting facets, and small arithmetic for benchmarks. *)

type t

val zero : t
val one : t
val of_int : int -> t

val of_string : string -> (t, string) result
(** Parse the [xs:decimal] lexical space: optional sign, digits, an
    optional fractional part.  Exponents are not part of the decimal
    lexical space and are rejected. *)

val of_string_exn : string -> t

val to_string : t -> string
(** Canonical form per XML Schema: no plus sign, no leading or trailing
    zeros beyond what is required, a fractional part only when
    non-zero. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val negate : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val is_integer : t -> bool
(** True when the scale is zero after normalization. *)

val total_digits : t -> int
(** Number of significant digits — the [totalDigits] facet measure. *)

val fraction_digits : t -> int
(** Number of digits after the point — the [fractionDigits] measure. *)

val to_int : t -> int option
(** Exact conversion when the value is an integer fitting in [int]. *)

val to_float : t -> float

val of_float_exact : float -> t option
(** The exact decimal value of a finite double ([None] for NaN and the
    infinities).  Every finite IEEE double is a decimal, so this loses
    nothing — the basis for exact decimal/double comparison. *)

val sign : t -> int
val pp : Format.formatter -> t -> unit
