type t =
  | String of string
  | Boolean of bool
  | Decimal of Decimal.t
  | Float of float
  | Double of float
  | Duration of Calendar.duration
  | Date_time of Calendar.date_time
  | Time of Calendar.time
  | Date of Calendar.date
  | G_year_month of Calendar.g_year_month
  | G_year of Calendar.g_year
  | G_month_day of Calendar.g_month_day
  | G_day of Calendar.g_day
  | G_month of Calendar.g_month
  | Hex_binary of string
  | Base64_binary of string
  | Any_uri of string
  | Qname of Xsm_xml.Name.t
  | Notation of Xsm_xml.Name.t
  | Untyped_atomic of string

let equal a b =
  match a, b with
  | String x, String y | Any_uri x, Any_uri y | Untyped_atomic x, Untyped_atomic y ->
    String.equal x y
  | Boolean x, Boolean y -> Bool.equal x y
  | Decimal x, Decimal y -> Decimal.equal x y
  | Duration x, Duration y -> Calendar.equal_duration x y
  | Date_time x, Date_time y
  | Time x, Time y
  | Date x, Date y
  | G_year_month x, G_year_month y
  | G_year x, G_year y
  | G_month_day x, G_month_day y
  | G_day x, G_day y
  | G_month x, G_month y ->
    Calendar.compare_date_time x y = 0
  | Hex_binary x, Hex_binary y | Base64_binary x, Base64_binary y -> String.equal x y
  | Qname x, Qname y | Notation x, Notation y -> Xsm_xml.Name.equal x y
  | Decimal d, (Float f | Double f) | (Float f | Double f), Decimal d -> (
    (* exact: a finite double is a decimal, so compare in decimal space
       rather than rounding the decimal to a double (which collapses
       values that differ beyond 53 bits of precision) *)
    match Decimal.of_float_exact f with
    | Some df -> Decimal.equal d df
    | None -> false (* NaN and infinities never equal a decimal *))
  | (Float x | Double x), (Float y | Double y) -> Float.equal x y
  | ( ( String _ | Boolean _ | Decimal _ | Float _ | Double _ | Duration _ | Date_time _
      | Time _ | Date _ | G_year_month _ | G_year _ | G_month_day _ | G_day _ | G_month _
      | Hex_binary _ | Base64_binary _ | Any_uri _ | Qname _ | Notation _
      | Untyped_atomic _ ),
      _ ) ->
    false

let compare a b =
  match a, b with
  | String x, String y | Untyped_atomic x, Untyped_atomic y | Any_uri x, Any_uri y ->
    Some (String.compare x y)
  | Boolean x, Boolean y -> Some (Bool.compare x y)
  | Decimal x, Decimal y -> Some (Decimal.compare x y)
  | Duration x, Duration y -> Calendar.compare_duration x y
  | Date_time x, Date_time y
  | Time x, Time y
  | Date x, Date y
  | G_year_month x, G_year_month y
  | G_year x, G_year y
  | G_month_day x, G_month_day y
  | G_day x, G_day y
  | G_month x, G_month y ->
    Some (Calendar.compare_date_time x y)
  | Hex_binary x, Hex_binary y | Base64_binary x, Base64_binary y ->
    Some (String.compare x y)
  | Decimal d, (Float f | Double f) -> (
    match Decimal.of_float_exact f with
    | Some df -> Some (Decimal.compare d df)
    | None -> Some (Float.compare (Decimal.to_float d) f))
  | (Float f | Double f), Decimal d -> (
    match Decimal.of_float_exact f with
    | Some df -> Some (Decimal.compare df d)
    | None -> Some (Float.compare f (Decimal.to_float d)))
  | (Float x | Double x), (Float y | Double y) -> Some (Float.compare x y)
  | ( ( String _ | Boolean _ | Decimal _ | Float _ | Double _ | Duration _ | Date_time _
      | Time _ | Date _ | G_year_month _ | G_year _ | G_month_day _ | G_day _ | G_month _
      | Hex_binary _ | Base64_binary _ | Any_uri _ | Qname _ | Notation _
      | Untyped_atomic _ ),
      _ ) ->
    None

let hex_of_bytes s =
  let buf = Buffer.create (String.length s * 2) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02X" (Char.code c))) s;
  Buffer.contents buf

let base64_alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let base64_of_bytes s =
  let buf = Buffer.create ((String.length s + 2) / 3 * 4) in
  let n = String.length s in
  let i = ref 0 in
  while !i + 2 < n do
    let b0 = Char.code s.[!i] and b1 = Char.code s.[!i + 1] and b2 = Char.code s.[!i + 2] in
    Buffer.add_char buf base64_alphabet.[b0 lsr 2];
    Buffer.add_char buf base64_alphabet.[((b0 land 3) lsl 4) lor (b1 lsr 4)];
    Buffer.add_char buf base64_alphabet.[((b1 land 15) lsl 2) lor (b2 lsr 6)];
    Buffer.add_char buf base64_alphabet.[b2 land 63];
    i := !i + 3
  done;
  (match n - !i with
  | 1 ->
    let b0 = Char.code s.[!i] in
    Buffer.add_char buf base64_alphabet.[b0 lsr 2];
    Buffer.add_char buf base64_alphabet.[(b0 land 3) lsl 4];
    Buffer.add_string buf "=="
  | 2 ->
    let b0 = Char.code s.[!i] and b1 = Char.code s.[!i + 1] in
    Buffer.add_char buf base64_alphabet.[b0 lsr 2];
    Buffer.add_char buf base64_alphabet.[((b0 land 3) lsl 4) lor (b1 lsr 4)];
    Buffer.add_char buf base64_alphabet.[(b1 land 15) lsl 2];
    Buffer.add_char buf '='
  | _ -> ());
  Buffer.contents buf

let canonical_float f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "INF"
  else if f = Float.neg_infinity then "-INF"
  else if Float.is_integer f && Float.abs f < 1e15 then
    (* canonical form mantissa.E-exponent; keep it simple and exact *)
    Printf.sprintf "%.1fE0" f |> fun s -> s
  else Printf.sprintf "%.17gE0" f

let canonical_string = function
  | String s | Any_uri s | Untyped_atomic s -> s
  | Boolean b -> if b then "true" else "false"
  | Decimal d -> Decimal.to_string d
  | Float f | Double f -> canonical_float f
  | Duration d -> Calendar.print_duration d
  | Date_time d -> Calendar.print_date_time d
  | Time d -> Calendar.print_time d
  | Date d -> Calendar.print_date d
  | G_year_month d -> Calendar.print_g_year_month d
  | G_year d -> Calendar.print_g_year d
  | G_month_day d -> Calendar.print_g_month_day d
  | G_day d -> Calendar.print_g_day d
  | G_month d -> Calendar.print_g_month d
  | Hex_binary b -> hex_of_bytes b
  | Base64_binary b -> base64_of_bytes b
  | Qname n | Notation n -> Xsm_xml.Name.to_string n

let kind_name = function
  | String _ -> "string"
  | Boolean _ -> "boolean"
  | Decimal _ -> "decimal"
  | Float _ -> "float"
  | Double _ -> "double"
  | Duration _ -> "duration"
  | Date_time _ -> "dateTime"
  | Time _ -> "time"
  | Date _ -> "date"
  | G_year_month _ -> "gYearMonth"
  | G_year _ -> "gYear"
  | G_month_day _ -> "gMonthDay"
  | G_day _ -> "gDay"
  | G_month _ -> "gMonth"
  | Hex_binary _ -> "hexBinary"
  | Base64_binary _ -> "base64Binary"
  | Any_uri _ -> "anyURI"
  | Qname _ -> "QName"
  | Notation _ -> "NOTATION"
  | Untyped_atomic _ -> "untypedAtomic"

let pp ppf v = Format.fprintf ppf "%s(%S)" (kind_name v) (canonical_string v)
