module Counter = Xsm_obs.Metrics.Counter
module Histogram = Xsm_obs.Metrics.Histogram

let m_accesses = Counter.make ~help:"block accesses through the pager" "pager.accesses"
let m_hits = Counter.make ~help:"accesses answered from the pool" "pager.hits"
let m_reads = Counter.make ~help:"block faults served from the page file" "pager.reads"
let m_writes = Counter.make ~help:"block images written to the page file" "pager.writes"
let m_evictions = Counter.make ~help:"blocks evicted from the pool" "pager.evictions"
let m_overflows = Counter.make ~help:"faults admitted past capacity (all frames pinned or WAL-held)" "pager.pin_overflows"
let h_writeback = Histogram.make ~help:"dirty block write-back latency (ns)" "pager.writeback_ns"

type handlers = {
  serialize : int -> string;
  deserialize : int -> string -> unit;
  on_evict : int -> unit;
}

type wal_hook = {
  current_lsn : unit -> int;
  synced_lsn : unit -> int;
  force : int -> unit;
}

type queue_id = Q_none | Q_a1in | Q_am | Q_ghost

type frame = {
  f_id : int;
  mutable q : queue_id;
  mutable f_prev : frame option;
  mutable f_next : frame option;
  mutable pins : int;
  mutable dirty : bool;
  mutable lsn : int;  (* newest WAL LSN covering unflushed changes / last image *)
  mutable head : int;  (* blob head page, 0 = never written *)
}

(* intrusive doubly-linked queue: a frame is in at most one *)
type queue = { mutable qh : frame option; mutable qt : frame option; mutable qsize : int }

let q_create () = { qh = None; qt = None; qsize = 0 }

let q_push_front q f =
  f.f_prev <- None;
  f.f_next <- q.qh;
  (match q.qh with Some h -> h.f_prev <- Some f | None -> q.qt <- Some f);
  q.qh <- Some f;
  q.qsize <- q.qsize + 1

let q_remove q f =
  (match f.f_prev with Some p -> p.f_next <- f.f_next | None -> q.qh <- f.f_next);
  (match f.f_next with Some n -> n.f_prev <- f.f_prev | None -> q.qt <- f.f_prev);
  f.f_prev <- None;
  f.f_next <- None;
  q.qsize <- q.qsize - 1

type t = {
  file : Page_file.t;
  capacity : int;
  handlers : handlers;
  wal : wal_hook option;
  frames : (int, frame) Hashtbl.t;
  a1in : queue;  (* first-touch FIFO: scans live and die here *)
  am : queue;  (* re-referenced working set, LRU *)
  ghost : queue;  (* A1out: ids recently evicted from A1in *)
  lock : Mutex.t;
  mutable dirty_count : int;
  c_accesses : Counter.cell;
  c_hits : Counter.cell;
  c_reads : Counter.cell;
  c_writes : Counter.cell;
  c_evictions : Counter.cell;
  c_overflows : Counter.cell;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let resident_count t = t.a1in.qsize + t.am.qsize
let is_resident f = match f.q with Q_a1in | Q_am -> true | Q_none | Q_ghost -> false

(* checkpoint metadata blob: the block directory (block id -> blob
   head page), then the client's own metadata payload *)
let encode_meta t client_meta =
  let w = Codec.W.create ~initial:(256 + String.length client_meta) () in
  let with_head = Hashtbl.fold (fun _ f acc -> if f.head <> 0 then f :: acc else acc) t.frames [] in
  Codec.W.varint w (List.length with_head);
  List.iter
    (fun f ->
      Codec.W.varint w f.f_id;
      Codec.W.varint w f.head)
    with_head;
  Codec.W.string w client_meta;
  Codec.W.contents w

let decode_meta payload =
  let r = Codec.R.of_string payload in
  let n = Codec.R.varint r in
  let dir =
    List.init n (fun _ ->
        let id = Codec.R.varint r in
        let head = Codec.R.varint r in
        (id, head))
  in
  let meta = Codec.R.string r in
  if not (Codec.R.at_end r) then raise (Codec.Corrupt "trailing bytes in pager metadata");
  (dir, meta)

let read_meta file =
  match Page_file.meta_page file with
  | None -> None
  | Some page ->
    let payload, _lsn = Page_file.read_blob file page in
    Some (decode_meta payload)

let create ~capacity ~handlers ?wal file =
  if capacity < 2 then invalid_arg "Pager.create: capacity < 2";
  let t =
    {
      file;
      capacity;
      handlers;
      wal;
      frames = Hashtbl.create 256;
      a1in = q_create ();
      am = q_create ();
      ghost = q_create ();
      lock = Mutex.create ();
      dirty_count = 0;
      c_accesses = Counter.cell m_accesses;
      c_hits = Counter.cell m_hits;
      c_reads = Counter.cell m_reads;
      c_writes = Counter.cell m_writes;
      c_evictions = Counter.cell m_evictions;
      c_overflows = Counter.cell m_overflows;
    }
  in
  (* a reopened file brings its block directory along: every known
     block starts cold, faultable from its blob *)
  (match read_meta file with
  | None -> ()
  | Some (dir, _meta) ->
    List.iter
      (fun (id, head) ->
        Hashtbl.replace t.frames id
          { f_id = id; q = Q_none; f_prev = None; f_next = None; pins = 0; dirty = false;
            lsn = 0; head })
      dir);
  t

let frame_exn t id =
  match Hashtbl.find_opt t.frames id with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Pager: unknown block %d" id)

(* ------------------------------------------------------------------ *)
(* Write-back, ordered against the WAL *)

let flush_frame t f =
  let payload = t.handlers.serialize f.f_id in
  (* the invariant: a page image reaches disk only after the WAL
     records covering its changes are fsynced *)
  (match t.wal with
  | Some w when f.lsn > w.synced_lsn () -> w.force f.lsn
  | _ -> ());
  let t0 = Xsm_obs.Clock.now_ns () in
  let head = Page_file.write_blob t.file ?head:(if f.head = 0 then None else Some f.head) ~lsn:f.lsn payload in
  Histogram.observe h_writeback (Int64.to_float (Int64.sub (Xsm_obs.Clock.now_ns ()) t0));
  f.head <- head;
  if f.dirty then begin
    f.dirty <- false;
    t.dirty_count <- t.dirty_count - 1
  end;
  Counter.cell_incr t.c_writes

(* a dirty frame whose covering WAL record does not exist yet (bulk
   load logs a subtree only once complete) cannot be stolen: flushing
   it would put unlogged state on disk *)
let wal_held t (f : frame) =
  f.dirty
  && match t.wal with Some w -> f.lsn > w.current_lsn () | None -> false

let ghost_capacity t = max 1 (t.capacity / 2)

let trim_ghost t =
  while t.ghost.qsize > ghost_capacity t do
    match t.ghost.qt with
    | Some f ->
      q_remove t.ghost f;
      f.q <- Q_none
    | None -> ()
  done

let evict_one t ~protect =
  let victim_in q =
    let rec go = function
      | None -> None
      | Some f ->
        if f.pins = 0 && (not (f == protect)) && not (wal_held t f) then Some f
        else go f.f_prev
    in
    go q.qt
  in
  let kin = max 1 (t.capacity / 4) in
  let victim =
    if t.a1in.qsize >= kin then
      match victim_in t.a1in with Some f -> Some f | None -> victim_in t.am
    else
      match victim_in t.am with Some f -> Some f | None -> victim_in t.a1in
  in
  match victim with
  | None -> false
  | Some f ->
    if f.dirty then flush_frame t f;
    t.handlers.on_evict f.f_id;
    q_remove (if f.q = Q_a1in then t.a1in else t.am) f;
    (* only first-touch evictions leave a ghost: an Am eviction already
       had its chance and re-earns residency from scratch *)
    if f.q = Q_a1in then begin
      f.q <- Q_ghost;
      q_push_front t.ghost f;
      trim_ghost t
    end
    else f.q <- Q_none;
    Counter.cell_incr t.c_evictions;
    true

let ensure_room t ~protect =
  let gave_up = ref false in
  while resident_count t >= t.capacity && not !gave_up do
    if not (evict_one t ~protect) then begin
      Counter.cell_incr t.c_overflows;
      gave_up := true
    end
  done

(* ------------------------------------------------------------------ *)
(* The client interface *)

let touch ?(pin = false) ?(scan = false) t id =
  locked t (fun () ->
      Counter.cell_incr t.c_accesses;
      let f = frame_exn t id in
      let result =
        if is_resident f then begin
          Counter.cell_incr t.c_hits;
          if f.q = Q_am then begin
            q_remove t.am f;
            q_push_front t.am f
          end;
          `Hit
        end
        else begin
          ensure_room t ~protect:f;
          if f.head <> 0 then begin
            let payload, _lsn = Page_file.read_blob t.file f.head in
            t.handlers.deserialize id payload;
            Counter.cell_incr t.c_reads
          end;
          let was_ghost = f.q = Q_ghost in
          if was_ghost then q_remove t.ghost f;
          (* 2Q admission: a ghost hit proves re-reference — promote to
             the working set; a first touch (or a hinted scan) only
             earns the FIFO *)
          if was_ghost && not scan then begin
            f.q <- Q_am;
            q_push_front t.am f
          end
          else begin
            f.q <- Q_a1in;
            q_push_front t.a1in f
          end;
          `Miss
        end
      in
      if pin then f.pins <- f.pins + 1;
      result)

let unpin t id =
  locked t (fun () ->
      let f = frame_exn t id in
      if f.pins <= 0 then invalid_arg (Printf.sprintf "Pager.unpin: block %d is not pinned" id);
      f.pins <- f.pins - 1)

let register_new t id =
  locked t (fun () ->
      if Hashtbl.mem t.frames id then
        invalid_arg (Printf.sprintf "Pager.register_new: block %d already registered" id);
      let f =
        { f_id = id; q = Q_none; f_prev = None; f_next = None; pins = 0; dirty = false;
          lsn = 0; head = 0 }
      in
      Hashtbl.replace t.frames id f;
      ensure_room t ~protect:f;
      f.q <- Q_a1in;
      q_push_front t.a1in f)

let mark_dirty t id ~lsn =
  locked t (fun () ->
      let f = frame_exn t id in
      if not (is_resident f) then
        invalid_arg (Printf.sprintf "Pager.mark_dirty: block %d is not resident" id);
      if not f.dirty then begin
        f.dirty <- true;
        t.dirty_count <- t.dirty_count + 1
      end;
      if lsn > f.lsn then f.lsn <- lsn)

let flush_all_locked t =
  Hashtbl.iter (fun _ f -> if is_resident f && f.dirty then flush_frame t f) t.frames

let flush_all t = locked t (fun () -> flush_all_locked t)

let checkpoint t ~lsn ~meta =
  locked t (fun () ->
      flush_all_locked t;
      (* a resident block that never reached disk (created and never
         dirtied) still needs its image for the reopen path *)
      Hashtbl.iter (fun _ f -> if is_resident f && f.head = 0 then flush_frame t f) t.frames;
      let blob = encode_meta t meta in
      let meta_page =
        Page_file.write_blob t.file
          ?head:(Page_file.meta_page t.file)
          ~lsn blob
      in
      Page_file.set_checkpoint t.file ~lsn ~meta_page)

let clear t =
  locked t (fun () ->
      flush_all_locked t;
      Hashtbl.iter
        (fun _ f ->
          if is_resident f then begin
            t.handlers.on_evict f.f_id;
            q_remove (if f.q = Q_a1in then t.a1in else t.am) f;
            f.q <- Q_none
          end
          else if f.q = Q_ghost then begin
            q_remove t.ghost f;
            f.q <- Q_none
          end)
        t.frames)

let blob_head t id =
  locked t (fun () ->
      match Hashtbl.find_opt t.frames id with
      | Some f when f.head <> 0 -> Some f.head
      | _ -> None)

let file t = t.file

(* defined after every [frame]/[t] field access above: the colliding
   labels (dirty, capacity, resident) must not capture inference *)
type stats = {
  accesses : int;
  hits : int;
  reads : int;
  writes : int;
  evictions : int;
  pin_overflows : int;
  resident : int;
  dirty : int;
  capacity : int;
}

let hit_ratio s =
  if s.accesses = 0 then None else Some (float_of_int s.hits /. float_of_int s.accesses)

let stats t =
  locked t (fun () ->
      {
        accesses = Counter.cell_value t.c_accesses;
        hits = Counter.cell_value t.c_hits;
        reads = Counter.cell_value t.c_reads;
        writes = Counter.cell_value t.c_writes;
        evictions = Counter.cell_value t.c_evictions;
        pin_overflows = Counter.cell_value t.c_overflows;
        resident = resident_count t;
        dirty = t.dirty_count;
        capacity = t.capacity;
      })

let stats_json s =
  let module J = Xsm_obs.Json in
  J.Obj
    [
      ("capacity", J.int s.capacity);
      ("resident", J.int s.resident);
      ("dirty", J.int s.dirty);
      ("accesses", J.int s.accesses);
      ("hits", J.int s.hits);
      ("reads", J.int s.reads);
      ("writes", J.int s.writes);
      ("evictions", J.int s.evictions);
      ("pin_overflows", J.int s.pin_overflows);
      ( "hit_ratio",
        match hit_ratio s with None -> J.Null | Some r -> J.Num r );
    ]

let reset_stats t =
  locked t (fun () ->
      Counter.cell_reset t.c_accesses;
      Counter.cell_reset t.c_hits;
      Counter.cell_reset t.c_reads;
      Counter.cell_reset t.c_writes;
      Counter.cell_reset t.c_evictions;
      Counter.cell_reset t.c_overflows)
