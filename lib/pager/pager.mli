(** The buffer pool: a bounded set of resident blocks over a
    {!Page_file}, with 2Q replacement and WAL-ordered write-back.

    The pager does not know what a block {e is}: the client hands it
    {!handlers} that serialize a block to a blob, restore one from a
    blob, and drop one's in-memory payload.  The pager owns the
    residency decisions — which blocks are in memory, when a dirty one
    is written back, which one a fault evicts.

    {b Replacement (2Q).}  A first-touch block enters the [A1in] FIFO;
    evicted from there it leaves a ghost entry in [A1out]; only a
    fault that hits a ghost — proof of re-reference — enters the [Am]
    LRU working set.  A sequential scan therefore streams through
    [A1in] (at most capacity/4 of the pool) and cannot displace the
    navigation working set in [Am]; {!touch}'s [~scan] hint keeps even
    ghost hits out of [Am] for deliberate extent scans.

    {b WAL ordering.}  Dirty frames carry the newest WAL LSN covering
    their changes.  A frame is written back only after [force] has
    made that LSN durable, so no page image with unsynced WAL records
    ever reaches disk (audited by the crash sweep over
    {!Page_file.iter_pages}).  A dirty frame whose covering record is
    not even written yet ([lsn > current_lsn ()], the bulk-load window
    between an append and its subtree's record) is unstealable: the
    pool overflows past capacity rather than flushing unlogged state.

    {b Pinning.}  [touch ~pin:true] + {!unpin} bracket a window where
    the caller reads or mutates the block's payload; pinned frames are
    never evicted.  When every frame is pinned or WAL-held, a fault is
    admitted past capacity and counted in [pin_overflows] — graceful
    overflow, not failure.

    Thread-safe: one mutex per pool; handler callbacks run under it
    and must not re-enter the pager. *)

type t

type handlers = {
  serialize : int -> string;  (** block id -> blob payload *)
  deserialize : int -> string -> unit;  (** restore a faulted block *)
  on_evict : int -> unit;  (** drop the in-memory payload *)
}

type wal_hook = {
  current_lsn : unit -> int;  (** records appended so far *)
  synced_lsn : unit -> int;  (** records durable (at a sync point) *)
  force : int -> unit;  (** make records up to an LSN durable *)
}

val create : capacity:int -> handlers:handlers -> ?wal:wal_hook -> Page_file.t -> t
(** A pool of at most [capacity] resident blocks ([Invalid_argument]
    below 2).  Opening over a checkpointed file loads its block
    directory: every known block starts cold and faultable. *)

val touch : ?pin:bool -> ?scan:bool -> t -> int -> [ `Hit | `Miss ]
(** Access a block, faulting it from the page file if cold (evicting
    under 2Q to make room).  [Invalid_argument] for a block id never
    registered nor present in the reopened directory. *)

val unpin : t -> int -> unit

val register_new : t -> int -> unit
(** Admit a freshly created block: resident, no disk image yet. *)

val mark_dirty : t -> int -> lsn:int -> unit
(** Record that a resident block changed under WAL position [lsn]
    (pass 0 when no WAL governs the store). *)

val flush_all : t -> unit
(** Write back every dirty resident block (WAL-ordered); nothing is
    evicted. *)

val checkpoint : t -> lsn:int -> meta:string -> unit
(** Flush all dirty blocks, persist the block directory plus the
    client's [meta] payload, stamp the file clean at [lsn], fsync.
    After this the file alone reconstructs the store. *)

val read_meta : Page_file.t -> ((int * int) list * string) option
(** The checkpoint metadata of a page file: the block directory
    [(block id, blob head page)] and the client's payload — [None]
    when the file has never been checkpointed. *)

val clear : t -> unit
(** Flush, then evict everything (ghosts included): a cold pool over
    an intact page file — the cold-cache benchmark reset. *)

val blob_head : t -> int -> int option
(** The head page of a block's on-disk image, if it has one. *)

val file : t -> Page_file.t

type stats = {
  accesses : int;
  hits : int;
  reads : int;  (** faults served from the page file *)
  writes : int;  (** block images written (write-back + checkpoint) *)
  evictions : int;
  pin_overflows : int;
  resident : int;
  dirty : int;
  capacity : int;
}

val stats : t -> stats
(** This pool's counters — private {!Xsm_obs} cells; the registry's
    [pager.*] metrics aggregate every pool in the process. *)

val hit_ratio : stats -> float option
(** [hits / accesses], [None] for an untouched pool. *)

val stats_json : stats -> Xsm_obs.Json.t
(** The canonical JSON rendering ([hit_ratio] is [null] for an
    untouched pool) — shared by [xsm stats] and the daemon's stats
    endpoint. *)

val reset_stats : t -> unit
