exception Corrupt of string

let magic = "XSMPAGE1"

(* file header layout (page 0):
   magic (8) ‖ page_size (4 LE) ‖ next_page (4) ‖ free_head (4)
   ‖ clean (1) ‖ checkpoint_lsn (8 LE) ‖ meta_page (4) ‖ crc (4)
   where crc covers bytes [8, 33). *)
let file_header_bytes = 8 + 4 + 4 + 4 + 1 + 8 + 4 + 4

(* page header layout (pages >= 1):
   kind (1: 0 free, 1 data) ‖ payload_len (4 LE) ‖ next_page (4 LE)
   ‖ lsn (8 LE) ‖ payload crc (4 LE) ‖ pad (3) *)
let page_header_bytes = 24

type t = {
  fd : Unix.file_descr;
  path : string;
  page_size : int;
  mutable next_page : int;
  mutable free_head : int;
  mutable clean : bool;
  mutable checkpoint_lsn : int;
  mutable meta_page : int;
}

let page_size t = t.page_size
let payload_capacity t = t.page_size - page_header_bytes
let path t = t.path
let clean t = t.clean
let checkpoint_lsn t = t.checkpoint_lsn
let meta_page t = if t.meta_page = 0 then None else Some t.meta_page
let page_count t = t.next_page - 1

(* ------------------------------------------------------------------ *)
(* Positioned I/O (single-threaded under the pager's lock) *)

let pwrite t ~off bytes =
  ignore (Unix.LargeFile.lseek t.fd (Int64.of_int off) Unix.SEEK_SET);
  let len = Bytes.length bytes in
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write t.fd bytes !written (len - !written)
  done

(* read up to [len] bytes at [off]; short past EOF *)
let pread t ~off len =
  ignore (Unix.LargeFile.lseek t.fd (Int64.of_int off) Unix.SEEK_SET);
  let buf = Bytes.create len in
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    let n = Unix.read t.fd buf !got (len - !got) in
    if n = 0 then eof := true else got := !got + n
  done;
  Bytes.sub buf 0 !got

(* ------------------------------------------------------------------ *)
(* File header *)

let encode_file_header t =
  let b = Bytes.create file_header_bytes in
  Bytes.blit_string magic 0 b 0 8;
  Bytes.set_int32_le b 8 (Int32.of_int t.page_size);
  Bytes.set_int32_le b 12 (Int32.of_int t.next_page);
  Bytes.set_int32_le b 16 (Int32.of_int t.free_head);
  Bytes.set b 20 (if t.clean then '\001' else '\000');
  Bytes.set_int64_le b 21 (Int64.of_int t.checkpoint_lsn);
  Bytes.set_int32_le b 29 (Int32.of_int t.meta_page);
  let crc = Codec.crc32 ~pos:8 ~len:(file_header_bytes - 12) (Bytes.to_string b) in
  Bytes.set_int32_le b (file_header_bytes - 4) crc;
  b

let write_file_header t = pwrite t ~off:0 (encode_file_header t)

(* any page write makes the file unclean until the next checkpoint;
   persist the flag eagerly so a crashed run can never be mistaken for
   a checkpointed one *)
let mark_unclean t =
  if t.clean then begin
    t.clean <- false;
    write_file_header t
  end

let sync t =
  write_file_header t;
  Unix.fsync t.fd

let set_checkpoint t ~lsn ~meta_page =
  t.checkpoint_lsn <- lsn;
  t.meta_page <- meta_page;
  t.clean <- true;
  sync t

let close t =
  (try write_file_header t with Unix.Unix_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let create ?(page_size = 4096) path =
  if page_size < 256 then invalid_arg "Page_file.create: page_size < 256";
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let t =
    { fd; path; page_size; next_page = 1; free_head = 0; clean = false;
      checkpoint_lsn = 0; meta_page = 0 }
  in
  write_file_header t;
  t

let open_existing path =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let t =
    { fd; path; page_size = 0; next_page = 1; free_head = 0; clean = false;
      checkpoint_lsn = 0; meta_page = 0 }
  in
  let hdr = pread t ~off:0 file_header_bytes in
  if Bytes.length hdr < file_header_bytes then begin
    Unix.close fd;
    raise (Corrupt (path ^ ": truncated page-file header"))
  end;
  if Bytes.sub_string hdr 0 8 <> magic then begin
    Unix.close fd;
    raise (Corrupt (path ^ ": not a page file (bad magic)"))
  end;
  let crc = Bytes.get_int32_le hdr (file_header_bytes - 4) in
  if not (Int32.equal crc (Codec.crc32 ~pos:8 ~len:(file_header_bytes - 12) (Bytes.to_string hdr)))
  then begin
    Unix.close fd;
    raise (Corrupt (path ^ ": page-file header CRC mismatch"))
  end;
  {
    t with
    page_size = Int32.to_int (Bytes.get_int32_le hdr 8);
    next_page = Int32.to_int (Bytes.get_int32_le hdr 12);
    free_head = Int32.to_int (Bytes.get_int32_le hdr 16);
    clean = Bytes.get hdr 20 = '\001';
    checkpoint_lsn = Int64.to_int (Bytes.get_int64_le hdr 21);
    meta_page = Int32.to_int (Bytes.get_int32_le hdr 29);
  }

(* ------------------------------------------------------------------ *)
(* Pages *)

type page_header = { kind : int; payload_len : int; next : int; lsn : int; crc : int32 }

let read_page_header t id =
  if id < 1 || id >= t.next_page then
    raise (Corrupt (Printf.sprintf "%s: page %d out of range" t.path id));
  let b = pread t ~off:(id * t.page_size) page_header_bytes in
  if Bytes.length b < page_header_bytes then
    (* allocated but never written (sparse tail): an empty free page *)
    { kind = 0; payload_len = 0; next = 0; lsn = 0; crc = 0l }
  else
    {
      kind = Char.code (Bytes.get b 0);
      payload_len = Int32.to_int (Bytes.get_int32_le b 1);
      next = Int32.to_int (Bytes.get_int32_le b 5);
      lsn = Int64.to_int (Bytes.get_int64_le b 9);
      crc = Bytes.get_int32_le b 17;
    }

let write_page t ~kind ~lsn ~next id payload ~pos ~len =
  if len > payload_capacity t then invalid_arg "Page_file.write_page: payload too large";
  let b = Bytes.make t.page_size '\000' in
  Bytes.set b 0 (Char.chr kind);
  Bytes.set_int32_le b 1 (Int32.of_int len);
  Bytes.set_int32_le b 5 (Int32.of_int next);
  Bytes.set_int64_le b 9 (Int64.of_int lsn);
  Bytes.set_int32_le b 17 (Codec.crc32 ~pos ~len payload);
  Bytes.blit_string payload pos b page_header_bytes len;
  mark_unclean t;
  pwrite t ~off:(id * t.page_size) b

let alloc t =
  if t.free_head <> 0 then begin
    let id = t.free_head in
    let h = read_page_header t id in
    if h.kind <> 0 then raise (Corrupt (Printf.sprintf "%s: free list hits data page %d" t.path id));
    t.free_head <- h.next;
    id
  end
  else begin
    let id = t.next_page in
    t.next_page <- id + 1;
    id
  end

let free_page t id =
  write_page t ~kind:0 ~lsn:0 ~next:t.free_head id "" ~pos:0 ~len:0;
  t.free_head <- id

(* the page ids of a blob's overflow chain, head first *)
let chain_ids t head =
  let rec go acc id steps =
    if id = 0 then List.rev acc
    else if steps > t.next_page then raise (Corrupt (t.path ^ ": cyclic overflow chain"))
    else
      let h = read_page_header t id in
      if h.kind <> 1 then
        raise (Corrupt (Printf.sprintf "%s: overflow chain hits non-data page %d" t.path id))
      else go (id :: acc) h.next (steps + 1)
  in
  go [] head 0

let write_blob t ?head ~lsn payload =
  let cap = payload_capacity t in
  let len = String.length payload in
  let chunks = max 1 ((len + cap - 1) / cap) in
  let old = match head with None -> [] | Some h -> chain_ids t h in
  (* reuse the old chain's pages in order, extend or trim as needed *)
  let rec ids n old acc =
    if n = 0 then (List.rev acc, old)
    else
      match old with
      | id :: rest -> ids (n - 1) rest (id :: acc)
      | [] -> ids (n - 1) [] (alloc t :: acc)
  in
  let pages, surplus = ids chunks old [] in
  List.iteri
    (fun i id ->
      let pos = i * cap in
      let clen = min cap (len - pos) in
      let next = if i = chunks - 1 then 0 else List.nth pages (i + 1) in
      write_page t ~kind:1 ~lsn ~next id payload ~pos ~len:clen)
    pages;
  List.iter (free_page t) surplus;
  List.hd pages

let read_blob t head =
  let buf = Buffer.create (payload_capacity t) in
  let lsn = ref 0 in
  let rec go id steps =
    if id <> 0 then begin
      if steps > t.next_page then raise (Corrupt (t.path ^ ": cyclic overflow chain"));
      let h = read_page_header t id in
      if h.kind <> 1 then
        raise (Corrupt (Printf.sprintf "%s: blob chain hits non-data page %d" t.path id));
      if h.payload_len < 0 || h.payload_len > payload_capacity t then
        raise (Corrupt (Printf.sprintf "%s: page %d payload length %d" t.path id h.payload_len));
      let raw = pread t ~off:((id * t.page_size) + page_header_bytes) h.payload_len in
      if Bytes.length raw < h.payload_len then
        raise (Corrupt (Printf.sprintf "%s: page %d cut short" t.path id));
      let s = Bytes.to_string raw in
      if not (Int32.equal h.crc (Codec.crc32 s)) then
        raise (Corrupt (Printf.sprintf "%s: page %d CRC mismatch" t.path id));
      if steps = 0 then lsn := h.lsn;
      Buffer.add_string buf s;
      go h.next (steps + 1)
    end
  in
  go head 0;
  (Buffer.contents buf, !lsn)

let iter_pages t f =
  for id = 1 to t.next_page - 1 do
    let h = read_page_header t id in
    f id ~kind:h.kind ~lsn:h.lsn
  done
