(** The page file: fixed-size pages as the unit of disk I/O.

    Page 0 is the file header (magic, geometry, free-list head, the
    {e clean} flag and checkpoint LSN, and the page of the checkpoint
    metadata blob).  Every other page carries a 24-byte header — kind,
    payload length, overflow-chain successor, the WAL LSN the page was
    written under, and a CRC-32 of the payload — so torn or foreign
    pages are detected on read, and a crash sweep can audit the LSN of
    everything that reached disk against the WAL's synced prefix.

    Variable-size block images are stored as {e blobs}: a chain of
    pages linked through the header's next pointer.  Rewriting a blob
    reuses its chain's pages in order, extending from the free list /
    file tail and returning surplus pages to the free list.

    The clean flag is the reopen contract: any page write clears it
    (persisted eagerly), only {!set_checkpoint} sets it, so a page
    file is trusted as a complete storage image iff it is clean. *)

type t

exception Corrupt of string
(** Structural damage: bad magic, CRC mismatch, cyclic or dangling
    chains.  Environmental failures surface as [Unix.Unix_error]. *)

val create : ?page_size:int -> string -> t
(** Create (or truncate) a page file.  Default page size 4096 bytes;
    [Invalid_argument] below 256. *)

val open_existing : string -> t
(** Open and verify the header.  Raises {!Corrupt} on a damaged or
    foreign file. *)

val close : t -> unit
val sync : t -> unit
(** Persist the header and fsync the file. *)

val page_size : t -> int
val payload_capacity : t -> int
(** Payload bytes one page holds ([page_size] minus the header). *)

val path : t -> string
val clean : t -> bool
val checkpoint_lsn : t -> int
val meta_page : t -> int option
val page_count : t -> int
(** Pages ever allocated (free-listed ones included). *)

val alloc : t -> int
(** A page id from the free list, or a fresh one past the tail. *)

val free_page : t -> int -> unit

val write_blob : t -> ?head:int -> lsn:int -> string -> int
(** Write a payload as a page chain, stamping every page with [lsn].
    [?head] rewrites an existing blob in place (reusing its pages);
    returns the (possibly new) head page id. *)

val read_blob : t -> int -> string * int
(** The blob at a head page: payload and the LSN it was written under.
    Raises {!Corrupt} on damage. *)

val set_checkpoint : t -> lsn:int -> meta_page:int -> unit
(** Record a completed checkpoint: stores the metadata blob head and
    LSN, sets the clean flag, fsyncs. *)

val iter_pages : t -> (int -> kind:int -> lsn:int -> unit) -> unit
(** Visit every allocated page's header (kind 0 = free, 1 = data) —
    the audit hook for the WAL-ordering crash sweep. *)
