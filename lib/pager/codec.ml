(* Byte-level helpers shared by the page file and by clients that
   serialize their representation into page blobs: LEB128 varints,
   length-prefixed strings, and the CRC-32 that stamps page headers.
   Self-contained so the pager stays at the bottom of the dependency
   graph (it cannot reuse the WAL's wire module without pulling the
   whole persistence layer under the storage layer). *)

exception Corrupt of string

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE, reflected 0xEDB88320) *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xFFl) in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

(* ------------------------------------------------------------------ *)
(* Writer *)

module W = struct
  type t = Buffer.t

  let create ?(initial = 256) () = Buffer.create initial
  let contents = Buffer.contents
  let byte w b = Buffer.add_char w (Char.chr (b land 0xFF))

  let varint w n =
    if n < 0 then invalid_arg "Codec.W.varint: negative";
    let rec go n =
      if n < 0x80 then byte w n
      else begin
        byte w (0x80 lor (n land 0x7F));
        go (n lsr 7)
      end
    in
    go n

  let string w s =
    varint w (String.length s);
    Buffer.add_string w s

  let opt_string w = function
    | None -> byte w 0
    | Some s ->
      byte w 1;
      string w s
end

(* ------------------------------------------------------------------ *)
(* Reader *)

module R = struct
  type t = { s : string; mutable pos : int }

  let of_string ?(pos = 0) s = { s; pos }
  let at_end r = r.pos >= String.length r.s

  let byte r =
    if r.pos >= String.length r.s then raise (Corrupt "unexpected end of input");
    let b = Char.code r.s.[r.pos] in
    r.pos <- r.pos + 1;
    b

  let varint r =
    let rec go shift acc =
      if shift > 62 then raise (Corrupt "varint too long");
      let b = byte r in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let string r =
    let n = varint r in
    if n < 0 || r.pos + n > String.length r.s then raise (Corrupt "string runs past end");
    let s = String.sub r.s r.pos n in
    r.pos <- r.pos + n;
    s

  let opt_string r =
    match byte r with
    | 0 -> None
    | 1 -> Some (string r)
    | b -> raise (Corrupt (Printf.sprintf "bad option tag %d" b))
end
