module Store = Xsm_xdm.Store

type t = {
  labels : (int, Sedna_label.t) Hashtbl.t;  (* node id -> label *)
  reverse : (string, Store.node) Hashtbl.t;  (* raw label -> node *)
}

let set t node l =
  Hashtbl.replace t.labels (Store.node_id node) l;
  Hashtbl.replace t.reverse (Sedna_label.to_raw l) node

let label t node = Hashtbl.find t.labels (Store.node_id node)
let label_opt t node = Hashtbl.find_opt t.labels (Store.node_id node)

let node_of t l = Hashtbl.find_opt t.reverse (Sedna_label.to_raw l)

let label_count t = Hashtbl.length t.labels

let total_label_bytes t =
  Hashtbl.fold (fun _ l acc -> acc + Sedna_label.length l) t.labels 0

let max_label_bytes t =
  Hashtbl.fold (fun _ l acc -> max acc (Sedna_label.length l)) t.labels 0

let label_tree store root =
  let t = { labels = Hashtbl.create 256; reverse = Hashtbl.create 256 } in
  let rec go node l =
    set t node l;
    let ordered = Store.attributes store node @ Store.children store node in
    let child_labels = Sedna_label.assign_children l (List.length ordered) in
    List.iter2 go ordered child_labels
  in
  go root Sedna_label.root;
  t

let append_in_document_order store root =
  let t = { labels = Hashtbl.create 256; reverse = Hashtbl.create 256 } in
  let rec go node l =
    set t node l;
    let i = ref 0 in
    List.iter
      (fun child ->
        go child (Sedna_label.append_child l !i);
        incr i)
      (Store.attributes store node @ Store.children store node)
  in
  go root Sedna_label.root;
  t

let label_new_child t ~parent ~after node =
  let parent_label = label t parent in
  let fresh =
    match after with
    | None ->
      (* before every existing child, or first child of a leaf *)
      let existing =
        Hashtbl.fold
          (fun _ l acc ->
            if Sedna_label.is_parent parent_label l then l :: acc else acc)
          t.labels []
      in
      (match List.sort Sedna_label.compare existing with
      | [] -> Sedna_label.first_child parent_label
      | first :: _ -> Sedna_label.before_sibling first)
    | Some sibling ->
      let sl = label t sibling in
      (* find the next sibling in label order, if any *)
      let next =
        Hashtbl.fold
          (fun _ l acc ->
            if Sedna_label.is_parent parent_label l && Sedna_label.compare l sl > 0 then
              match acc with
              | None -> Some l
              | Some best -> if Sedna_label.compare l best < 0 then Some l else acc
            else acc)
          t.labels None
      in
      (match next with
      | None -> Sedna_label.after_sibling sl
      | Some nl -> Sedna_label.between sl nl)
  in
  set t node fresh;
  fresh

let rec label_descendants t store node =
  let l = label t node in
  let ordered = Store.attributes store node @ Store.children store node in
  let child_labels = Sedna_label.assign_children l (List.length ordered) in
  List.iter2
    (fun child cl ->
      set t child cl;
      label_descendants t store child)
    ordered child_labels

let label_inserted_subtree t store ~parent ~after node =
  ignore (label_new_child t ~parent ~after node);
  label_descendants t store node

let remove t node =
  match Hashtbl.find_opt t.labels (Store.node_id node) with
  | None -> ()
  | Some l ->
    Hashtbl.remove t.labels (Store.node_id node);
    Hashtbl.remove t.reverse (Sedna_label.to_raw l)

let remove_subtree t store node =
  let rec go node =
    remove t node;
    List.iter go (Store.attributes store node);
    List.iter go (Store.children store node)
  in
  go node

let bindings t =
  Hashtbl.fold
    (fun raw node acc ->
      match Sedna_label.of_raw raw with
      | Ok l -> (node, l) :: acc
      | Error _ -> acc)
    t.reverse []
  |> List.sort (fun (a, _) (b, _) -> Store.compare_node a b)

let restore pairs =
  let n = max 16 (List.length pairs) in
  let t = { labels = Hashtbl.create n; reverse = Hashtbl.create n } in
  List.iter (fun (node, l) -> set t node l) pairs;
  t

let check_against_tree store root t =
  let nodes = Store.descendants_or_self store root in
  let module Order = Xsm_xdm.Order in
  List.for_all
    (fun a ->
      List.for_all
        (fun b ->
          match Hashtbl.find_opt t.labels (Store.node_id a),
                Hashtbl.find_opt t.labels (Store.node_id b) with
          | Some la, Some lb ->
            let expected : Sedna_label.relation =
              if Store.equal_node a b then Sedna_label.Self
              else if Order.is_ancestor store a b then
                if Store.parent store b = Some a then Sedna_label.Parent
                else Sedna_label.Ancestor
              else if Order.is_ancestor store b a then
                if Store.parent store a = Some b then Sedna_label.Child
                else Sedna_label.Descendant
              else if Order.precedes store a b then Sedna_label.Before
              else Sedna_label.After
            in
            Sedna_label.relation la lb = expected
          | _ -> false)
        nodes)
    nodes
