(** The Sedna numbering scheme (§9.3).

    A numbering label is a non-empty sequence of symbols over a finite
    linearly-ordered alphabet Ω.  Our alphabet is the bytes
    [0x01..0xFF]: [0x01] is Ω_min and doubles as the level separator,
    components (one per tree level) are non-empty strings over
    [0x02..0xFF].  With the separator smaller than every component
    symbol, plain lexicographic comparison of labels is document
    order, prefix-plus-separator is ancestorship, and parenthood is
    ancestorship with a separator-free extension — the three
    predicates of §9.3, each decided by one scan of the labels with no
    access to the tree.

    Proposition 1 (update stability): {!between} always finds a
    component strictly between two sibling components, because
    component length is unbounded — no insertion ever forces
    relabeling of existing nodes.  The cost is label growth, which
    bench E6 measures against the Dewey/range/prime baselines. *)

type t = private string

val root : t
(** The label of the tree root (a single mid-alphabet component). *)

val of_raw : string -> (t, string) result
(** Validate an arbitrary byte string as a label: non-empty,
    no leading/trailing/double separators, component bytes in
    [0x02..0xFF]. *)

val to_raw : t -> string
val length : t -> int
(** Byte length — the storage cost measure of bench E6. *)

val depth : t -> int
(** Number of components = 1 + number of separators. *)

(** {1 The §9.3 predicates} *)

val compare : t -> t -> int
(** Document order: [compare x y < 0] iff x occurs before y. *)

val equal : t -> t -> bool
val is_ancestor : t -> t -> bool
(** [is_ancestor x y]: strict ancestorship. *)

val is_parent : t -> t -> bool
(** [is_parent x y]: y is exactly one level below x. *)

type relation = Self | Ancestor | Descendant | Parent | Child | Before | After

val relation : t -> t -> relation
(** Full structural classification of a label pair. *)

(** {1 Label generation} *)

val assign_children : t -> int -> t list
(** [assign_children parent n] — labels for [n] children, evenly
    spread through the component space so later insertions find wide
    gaps (the paper's "enhancement serving to prevent the growing of
    numbering labels after updates"). *)

val child : t -> int -> t
(** [child parent i] is [List.nth (assign_children parent (i+1)) i]
    computed directly. *)

val append_child : t -> int -> t
(** [append_child parent i] — the label of the [i]-th child (0-based)
    under a document-order bulk append: a counter component of
    [1 + ceil(log253 (i+1))] bytes, so a streaming ingest assigns
    labels with logarithmic growth and no rebalancing (Proposition 1
    needs no gaps here — later insertions still find room via
    {!between}, whose output these components interoperate with).
    For a fixed parent, [append_child parent i < append_child parent j]
    iff [i < j]. *)

val between : t -> t -> t
(** [between a b] for two labels of sibling nodes ([a < b]): a new
    sibling label strictly between them.  [Invalid_argument] when the
    labels are not siblings or not in order. *)

val first_child : t -> t
(** A label for a new first child of a node with no children yet. *)

val before_sibling : t -> t
(** A label strictly before the given one, same parent. *)

val after_sibling : t -> t
(** A label strictly after the given one, same parent. *)

val pp : Format.formatter -> t -> unit
(** Hex rendering for debugging. *)
