type t = string

let sep = '\x01'
let min_digit = 2 (* byte 0x02 is digit zero *)
let mid_byte = '\x80'

let root = String.make 1 mid_byte

type relation = Self | Ancestor | Descendant | Parent | Child | Before | After

let to_raw l = l
let length = String.length

let depth l =
  1 + String.fold_left (fun acc c -> if c = sep then acc + 1 else acc) 0 l

let of_raw s =
  let n = String.length s in
  if n = 0 then Error "empty label"
  else if s.[0] = sep || s.[n - 1] = sep then Error "label starts or ends with a separator"
  else begin
    let ok = ref true and prev_sep = ref false in
    String.iter
      (fun c ->
        if c = '\x00' then ok := false
        else if c = sep then begin
          if !prev_sep then ok := false;
          prev_sep := true
        end
        else prev_sep := false)
      s;
    (* no component may end with the minimal digit, or no label could
       ever be inserted directly before its extension *)
    let bad_trailing = ref false in
    String.iteri
      (fun i c ->
        if Char.code c = min_digit && (i = n - 1 || s.[i + 1] = sep) then
          bad_trailing := true)
      s;
    if !ok && not !bad_trailing then Ok s
    else Error "malformed label"
  end

let compare = String.compare
let equal = String.equal

(* x is an ancestor of y iff x, followed by a separator, is a proper
   prefix of y *)
let is_ancestor x y =
  let lx = String.length x and ly = String.length y in
  lx + 1 < ly && String.sub y 0 lx = x && y.[lx] = sep

let is_parent x y =
  is_ancestor x y
  &&
  let lx = String.length x in
  not (String.contains_from y (lx + 1) sep)

let relation x y =
  if equal x y then Self
  else if is_ancestor x y then if is_parent x y then Parent else Ancestor
  else if is_ancestor y x then if is_parent y x then Child else Descendant
  else if compare x y < 0 then Before
  else After

(* ------------------------------------------------------------------ *)
(* Component arithmetic                                                *)

(* Split a label into parent part (including trailing separator, or ""
   for a root label) and its last component. *)
let split_last l =
  match String.rindex_opt l sep with
  | None -> ("", l)
  | Some i -> (String.sub l 0 (i + 1), String.sub l (i + 1) (String.length l - i - 1))

(* A component strictly between [a] and [b] (a < b lexicographically
   over bytes >= 2; "" as [a] means "below everything").  Components
   never end with the minimal digit, which this function preserves and
   relies on: see of_raw. *)
let between_components a b =
  let buf = Buffer.create (String.length b + 2) in
  let digit_a i = if i < String.length a then Char.code a.[i] else 1 in
  let digit_b i = if i < String.length b then Char.code b.[i] else 256 in
  (* emit a tail strictly greater than a[j..]; no upper bound *)
  let rec grow_above j =
    let d = digit_a j in
    if d >= 255 then begin
      Buffer.add_char buf '\xFF';
      grow_above (j + 1)
    end
    else Buffer.add_char buf (Char.chr (d + max 1 ((256 - d) / 2)))
  (* emit a tail strictly less than b[j..]; may assume b[j..] nonempty *)
  and shrink_below j =
    let d = digit_b j in
    if d > 3 then Buffer.add_char buf (Char.chr ((min_digit + d) / 2))
    else if d = 3 then begin
      Buffer.add_char buf (Char.chr min_digit);
      Buffer.add_char buf mid_byte
    end
    else begin
      (* d = 2: emit it and keep shrinking below the rest *)
      Buffer.add_char buf (Char.chr min_digit);
      shrink_below (j + 1)
    end
  and go i =
    let da = digit_a i and db = digit_b i in
    if da = db then begin
      Buffer.add_char buf (Char.chr da);
      go (i + 1)
    end
    else if db - da >= 2 then begin
      let mid = (da + db) / 2 in
      if mid > min_digit then Buffer.add_char buf (Char.chr mid)
      else begin
        (* the only available digit is the minimal one *)
        Buffer.add_char buf (Char.chr min_digit);
        Buffer.add_char buf mid_byte
      end
    end
    else if da >= min_digit then begin
      (* adjacent digits: follow a, then exceed its tail *)
      Buffer.add_char buf (Char.chr da);
      grow_above (i + 1)
    end
    else begin
      (* da virtual (a exhausted), db = 2: follow b downward *)
      Buffer.add_char buf (Char.chr min_digit);
      shrink_below (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let between x y =
  if compare x y >= 0 then invalid_arg "Sedna_label.between: labels out of order";
  let px, cx = split_last x and py, cy = split_last y in
  if px <> py then invalid_arg "Sedna_label.between: labels are not siblings";
  px ^ between_components cx cy

let first_child parent = parent ^ String.make 1 sep ^ String.make 1 mid_byte

let after_sibling l =
  let p, c = split_last l in
  let last = Char.code c.[String.length c - 1] in
  if last >= 255 then p ^ c ^ String.make 1 mid_byte
  else begin
    let bumped = last + max 1 ((256 - last) / 2) in
    p ^ String.sub c 0 (String.length c - 1) ^ String.make 1 (Char.chr bumped)
  end

let before_sibling l =
  let p, c = split_last l in
  p ^ between_components "" c

(* Evenly spread labels for n children: fixed-width base-254 numbers
   with stride ~ space/(n+1), so the middle of every gap is free. *)
let assign_children parent n =
  if n <= 0 then []
  else begin
    let base = 254 in
    let rec pick_width w space =
      if space >= 2 * (n + 1) || w >= 7 then (w, space) else pick_width (w + 1) (space * base)
    in
    let width, space = pick_width 1 base in
    let prefix = parent ^ String.make 1 sep in
    List.init n (fun i ->
        let p = (i + 1) * (space / (n + 1)) in
        let bytes = Bytes.make width (Char.chr min_digit) in
        let v = ref p in
        for k = width - 1 downto 0 do
          Bytes.set bytes k (Char.chr (min_digit + (!v mod base)));
          v := !v / base
        done;
        let comp = Bytes.to_string bytes in
        (* avoid a trailing minimal digit *)
        let comp =
          if Char.code comp.[width - 1] = min_digit then comp ^ String.make 1 mid_byte
          else comp
        in
        prefix ^ comp)
  end

(* Document-order bulk appends.  [assign_children] needs the child
   count up front and [after_sibling] halves the headroom to 0xFF on
   every call (one extra byte per ~8 appends — linear label growth
   over a long ingest).  The append encoding is a plain counter: the
   component for child [i] is a length byte [0x02 + ndigits] followed
   by the big-endian base-253 digits of [i] over [0x03..0xFF].  A
   (k+1)-digit counter has a larger length byte than any k-digit one,
   so lexicographic order is counter order; the last byte is always
   >= 0x03, so the no-trailing-minimal-digit invariant of {!of_raw}
   holds and {!between}/{!before_sibling} interoperate.  Label length
   is 1 + ceil(log253(i+1)) bytes — logarithmic, no rebalancing. *)
let append_child parent i =
  if i < 0 then invalid_arg "Sedna_label.append_child: negative index";
  let base = 253 in
  let rec digits acc v = if v = 0 then acc else digits ((v mod base) :: acc) (v / base) in
  let ds = if i = 0 then [ 0 ] else digits [] i in
  let nd = List.length ds in
  if min_digit + nd > 255 then invalid_arg "Sedna_label.append_child: index too large";
  let b = Buffer.create (String.length parent + nd + 2) in
  Buffer.add_string b parent;
  Buffer.add_char b sep;
  Buffer.add_char b (Char.chr (min_digit + nd));
  List.iter (fun d -> Buffer.add_char b (Char.chr (min_digit + 1 + d))) ds;
  Buffer.contents b

let child parent i =
  match List.nth_opt (assign_children parent (i + 1)) i with
  | Some l -> l
  | None -> invalid_arg "Sedna_label.child"

let pp ppf l =
  String.iter (fun c -> Format.fprintf ppf "%02x " (Char.code c)) l
