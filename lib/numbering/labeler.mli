(** Assigning Sedna labels to the nodes of a data-model tree, and
    keeping them assigned across updates (Proposition 1).

    Attribute nodes are labelled like children that precede the
    element children, mirroring the §7 document order. *)

type t

val label_tree : Xsm_xdm.Store.t -> Xsm_xdm.Store.node -> t
(** Label every node of the tree rooted at the given node. *)

val append_in_document_order : Xsm_xdm.Store.t -> Xsm_xdm.Store.node -> t
(** Label the tree in one document-order pass with the
    {!Sedna_label.append_child} counter encoding — the bulk-load fast
    path: no child counts needed up front, logarithmic label growth,
    no rebalancing.  Produces the same label table the streaming
    {!Xsm_stream.Bulk_load} assigns, so a tree-built store and a
    stream-built storage agree on every nid. *)

val label : t -> Xsm_xdm.Store.node -> Sedna_label.t
(** The label of a node; [Not_found] if the node was never labelled. *)

val label_opt : t -> Xsm_xdm.Store.node -> Sedna_label.t option

val node_of : t -> Sedna_label.t -> Xsm_xdm.Store.node option
(** Reverse lookup. *)

val label_count : t -> int
val total_label_bytes : t -> int
(** Sum of label lengths — the storage measure of bench E6/E7. *)

val max_label_bytes : t -> int

val label_new_child :
  t -> parent:Xsm_xdm.Store.node -> after:Xsm_xdm.Store.node option -> Xsm_xdm.Store.node -> Sedna_label.t
(** Label a node freshly inserted under [parent], positioned after
    sibling [after] (or first when [None]).  No existing label
    changes — the Proposition 1 guarantee, asserted in tests. *)

val label_inserted_subtree :
  t ->
  Xsm_xdm.Store.t ->
  parent:Xsm_xdm.Store.node ->
  after:Xsm_xdm.Store.node option ->
  Xsm_xdm.Store.node ->
  unit
(** Label a freshly inserted subtree: the root via
    {!label_new_child}, its attributes and children recursively via
    {!Sedna_label.assign_children}.  Existing labels are untouched
    (Proposition 1), so a labelled tree stays labelled across WAL
    replay. *)

val remove : t -> Xsm_xdm.Store.node -> unit

val remove_subtree : t -> Xsm_xdm.Store.t -> Xsm_xdm.Store.node -> unit
(** Drop the labels of a just-unlinked subtree (root, attributes and
    descendants). *)

(** {1 Persistence support}

    A labelled tree survives a snapshot/restore cycle: [bindings]
    exports every (node, label) pair, [restore] rebuilds the table
    from pairs read back from disk. *)

val bindings : t -> (Xsm_xdm.Store.node * Sedna_label.t) list
val restore : (Xsm_xdm.Store.node * Sedna_label.t) list -> t

val check_against_tree : Xsm_xdm.Store.t -> Xsm_xdm.Store.node -> t -> bool
(** Ground-truth check: for every pair of labelled nodes in the
    subtree, {!Sedna_label.relation} agrees with the tree (document
    order via [Xsm_xdm.Order], parent/ancestor via accessors).
    Quadratic; for tests. *)
