(* Unix.gettimeofday gives wall time as a float of seconds since the
   Unix epoch — at today's epoch values that float has ~1 µs of
   mantissa granularity, too coarse near the epoch of interest.
   Re-basing on a process-local epoch keeps the subtraction exact and
   the int64 nanosecond conversion faithful.

   The wall clock can step backwards (NTP slew, manual adjustment, VM
   migration); a raw read is therefore not usable as an elapsed-time
   source — a span straddling a step would report a negative duration.
   [now_ns] repairs this by never returning a value below the largest
   one it has handed out, via a CAS loop on an [Atomic] so the
   guarantee holds across domains too. *)

let epoch = Unix.gettimeofday ()

let raw_ns () = Int64.of_float ((Unix.gettimeofday () -. epoch) *. 1e9)

let watermark = Atomic.make 0L

let rec now_ns () =
  let t = raw_ns () in
  let seen = Atomic.get watermark in
  if Int64.compare t seen <= 0 then seen
  else if Atomic.compare_and_set watermark seen t then t
  else now_ns ()

let epoch_wall () = epoch

let cpu_ns () = Int64.of_float (Sys.time () *. 1e9)

let ns_to_ms ns = Int64.to_float ns /. 1e6

let ns_to_us ns = Int64.to_float ns /. 1e3

let seconds f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0
