(* Unix.gettimeofday gives wall time as a float of seconds since the
   Unix epoch — at today's epoch values that float has ~1 µs of
   mantissa granularity, too coarse near the epoch of interest.
   Re-basing on a process-local epoch keeps the subtraction exact and
   the int64 nanosecond conversion faithful. *)

let epoch = Unix.gettimeofday ()

let now_ns () = Int64.of_float ((Unix.gettimeofday () -. epoch) *. 1e9)

let cpu_ns () = Int64.of_float (Sys.time () *. 1e9)

let ns_to_ms ns = Int64.to_float ns /. 1e6

let ns_to_us ns = Int64.to_float ns /. 1e3

let seconds f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0
