let enabled = Trace.enabled

let enable ?(detail = false) () =
  Trace.enabled := true;
  Trace.detail := detail

let disable () =
  Trace.enabled := false;
  Trace.detail := false
