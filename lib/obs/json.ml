type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let int i = Num (float_of_int i)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let number f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num f -> Buffer.add_string b (number f)
  | Str s -> escape b s
  | Arr items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        write b x)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape b k;
        Buffer.add_char b ':';
        write b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

let rec pp ppf = function
  | Arr (_ :: _ as items) ->
    Format.fprintf ppf "[@[<v 1>";
    List.iteri
      (fun i x -> Format.fprintf ppf "%s@,%a" (if i > 0 then "," else "") pp x)
      items;
    Format.fprintf ppf "@]@,]"
  | Obj (_ :: _ as fields) ->
    Format.fprintf ppf "{@[<v 1>";
    List.iteri
      (fun i (k, v) ->
        Format.fprintf ppf "%s@," (if i > 0 then "," else "");
        let b = Buffer.create 16 in
        escape b k;
        Format.fprintf ppf "%s: %a" (Buffer.contents b) pp v)
      fields;
    Format.fprintf ppf "@]@,}"
  | v -> Format.pp_print_string ppf (to_string v)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | Null | Bool _ | Num _ | Str _ | Arr _ -> None

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Bad of string

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> fail "at %d: expected %c, found %c" !pos c d
    | None -> fail "at %d: expected %c, found end of input" !pos c
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail "at %d: bad literal" !pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match text.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match text.[!pos] with
             | '"' -> Buffer.add_char b '"'
             | '\\' -> Buffer.add_char b '\\'
             | '/' -> Buffer.add_char b '/'
             | 'n' -> Buffer.add_char b '\n'
             | 'r' -> Buffer.add_char b '\r'
             | 't' -> Buffer.add_char b '\t'
             | 'b' -> Buffer.add_char b '\b'
             | 'f' -> Buffer.add_char b '\012'
             | 'u' ->
               if !pos + 4 >= n then fail "truncated \\u escape";
               let hex = String.sub text (!pos + 1) 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with Failure _ -> fail "bad \\u escape %S" hex
               in
               (* BMP code points only; enough for our own output *)
               if code < 0x80 then Buffer.add_char b (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
               end;
               pos := !pos + 4
             | c -> fail "bad escape \\%c" c);
          advance ();
          go ()
        | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let numeric c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numeric text.[!pos] do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    match float_of_string_opt s with
    | Some f -> f
    | None -> fail "at %d: bad number %S" start s
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "at %d: expected , or } in object" !pos
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "at %d: expected , or ] in array" !pos
        in
        Arr (items [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage at %d" !pos;
    v
  with
  | v -> Ok v
  | exception Bad m -> Error ("json: " ^ m)
