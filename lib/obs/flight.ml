(* The always-on flight recorder: a bounded ring of per-request
   digests, cheap enough to leave enabled in production (one record
   allocation per request, no tracing required), plus a tail-based
   keep policy — when ring pressure evicts a digest, errors and the
   slowest requests survive into side buffers instead of vanishing,
   because those are exactly the requests an operator asks about
   after the fact. *)

type outcome = Done | Failed of string

type digest = {
  seq : int;
  at_ns : int64;
  kind : string;
  detail : string;
  route : string;
  est_lo : int;
  est_hi : int;
  actual_rows : int;
  pager_hits : int;
  pager_evictions : int;
  fsync_ns : int64;
  latency_ns : int64;
  outcome : outcome;
  session : int;
  request : int;
  trace_id : string;
  plan : Json.t option;
}

type t = {
  capacity : int;
  ring : digest option array;
  mutable pos : int;
  mutable count : int;
  mutable seq : int;
  err_capacity : int;
  errors : digest Queue.t;  (* oldest first, bounded FIFO *)
  slow_capacity : int;
  mutable slow : digest list;  (* ascending latency, length <= slow_capacity *)
}

let m_recorded =
  Metrics.Counter.make ~help:"Request digests recorded by the flight recorder"
    "flight.recorded"

let m_evicted =
  Metrics.Counter.make ~help:"Digests pushed out of the flight-recorder ring"
    "flight.evicted"

let m_kept_errors =
  Metrics.Counter.make ~help:"Evicted error digests kept by the tail policy"
    "flight.kept_errors"

let m_kept_slow =
  Metrics.Counter.make ~help:"Evicted slow digests kept by the tail policy"
    "flight.kept_slow"

let side_capacity capacity = max 4 (capacity / 4)

let create ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Flight.create: capacity must be positive";
  {
    capacity;
    ring = Array.make capacity None;
    pos = 0;
    count = 0;
    seq = 0;
    err_capacity = side_capacity capacity;
    errors = Queue.create ();
    slow_capacity = side_capacity capacity;
    slow = [];
  }

let keep_error t d =
  Queue.push d t.errors;
  if Queue.length t.errors > t.err_capacity then ignore (Queue.pop t.errors);
  Metrics.Counter.incr m_kept_errors

(* keep the K slowest evicted digests: insert in ascending latency
   order, shed the fastest when full — the surviving set is the tail
   of the evicted latency distribution *)
let keep_slow t d =
  let rec insert = function
    | [] -> [ d ]
    | x :: rest when Int64.compare x.latency_ns d.latency_ns <= 0 -> x :: insert rest
    | rest -> d :: rest
  in
  let kept = insert t.slow in
  let kept = if List.length kept > t.slow_capacity then List.tl kept else kept in
  t.slow <- kept;
  (* shedding [d] itself means it wasn't slow enough to keep *)
  if List.memq d kept then Metrics.Counter.incr m_kept_slow

let evict t d =
  Metrics.Counter.incr m_evicted;
  match d.outcome with Failed _ -> keep_error t d | Done -> keep_slow t d

let record t d =
  t.seq <- t.seq + 1;
  let d : digest = { d with seq = t.seq } in
  (match t.ring.(t.pos) with None -> () | Some old -> evict t old);
  t.ring.(t.pos) <- Some d;
  t.pos <- (t.pos + 1) mod t.capacity;
  if t.count < t.capacity then t.count <- t.count + 1;
  Metrics.Counter.incr m_recorded

let recent t =
  let out = ref [] in
  for k = 0 to t.count - 1 do
    (* oldest retained first: pos points at the oldest once full *)
    let i = (t.pos - t.count + k + (2 * t.capacity)) mod t.capacity in
    match t.ring.(i) with Some d -> out := d :: !out | None -> ()
  done;
  List.rev !out

let kept_errors t = List.of_seq (Queue.to_seq t.errors)
let kept_slow t = t.slow
let recorded t = t.seq

let outcome_json = function
  | Done -> Json.Str "ok"
  | Failed msg -> Json.Obj [ ("error", Json.Str msg) ]

let digest_to_json (d : digest) =
  Json.Obj
    [
      ("seq", Json.int d.seq);
      ("at_ns", Json.Str (Int64.to_string d.at_ns));
      ("kind", Json.Str d.kind);
      ("detail", Json.Str d.detail);
      ("route", Json.Str d.route);
      ( "est_rows",
        if d.est_lo < 0 then Json.Null
        else Json.Arr [ Json.int d.est_lo; Json.int d.est_hi ] );
      ("actual_rows", Json.int d.actual_rows);
      ("pager_hits", Json.int d.pager_hits);
      ("pager_evictions", Json.int d.pager_evictions);
      ("fsync_ns", Json.int (Int64.to_int d.fsync_ns));
      ("latency_ns", Json.int (Int64.to_int d.latency_ns));
      ("outcome", outcome_json d.outcome);
      ("session", Json.int d.session);
      ("request", Json.int d.request);
      ("trace_id", Json.Str d.trace_id);
      ("plan", match d.plan with Some p -> p | None -> Json.Null);
    ]

let to_json t =
  Json.Obj
    [
      ("capacity", Json.int t.capacity);
      ("recorded", Json.int t.seq);
      ("recent", Json.Arr (List.map digest_to_json (recent t)));
      ("errors", Json.Arr (List.map digest_to_json (kept_errors t)));
      ("slow", Json.Arr (List.map digest_to_json t.slow));
    ]
