(** The metrics registry: named counters, gauges and log2-bucketed
    histograms, registered once and cheap to bump.

    Design constraints, in order:

    - {b hot-path cost}: bumping a counter is one mutable-int add, no
      allocation, no hashing — the handle is resolved at registration
      time (module initialization), not at bump time;
    - {b per-instance views}: a metric owns a set of {e cells}.  A
      subsystem with several live instances (buffer pools, planners)
      gives each instance its own cell; the instance's bespoke stats
      record is a read of its cells, while the registry total is the
      sum over cells ([xsm stats] reports the aggregate);
    - {b one namespace}: registration is get-or-create by name, so a
      module can declare its metrics at top level and re-registration
      (another instance, a test) returns the same handle. *)

type registry

val default : registry
(** The process-wide registry every built-in instrumentation point
    registers into. *)

val create : unit -> registry
(** A private registry (tests). *)

module Counter : sig
  type t

  type cell
  (** One contributor to a counter's total.  {!value} sums the cells. *)

  val make : ?registry:registry -> ?help:string -> string -> t
  (** Get-or-create.  [Invalid_argument] when the name is already
      registered as a different metric kind. *)

  val incr : t -> unit
  (** Bump the counter's built-in cell. *)

  val add : t -> int -> unit
  val value : t -> int

  val cell : t -> cell
  (** A fresh private cell (one per subsystem instance). *)

  val cell_incr : cell -> unit
  val cell_add : cell -> int -> unit
  val cell_value : cell -> int
  val cell_reset : cell -> unit
end

module Gauge : sig
  type t

  val make : ?registry:registry -> ?help:string -> string -> t
  val set : t -> float -> unit
  val value : t -> float
end

(** Log2-bucketed histogram: bucket 0 holds values [<= 1], bucket [i]
    holds values in [(2^(i-1), 2^i]], so 64 buckets cover the full
    range of nanosecond latencies with bounded memory and no
    per-observation allocation.  Quantiles are read from the bucket
    cumulative counts and clamped to the observed min/max, which makes
    them monotone in the requested rank and bounded by the data (the
    qcheck law in the test suite). *)
module Histogram : sig
  type t

  val make : ?registry:registry -> ?help:string -> string -> t
  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  val min_value : t -> float
  (** [nan] when empty. *)

  val max_value : t -> float
  (** [nan] when empty. *)

  val quantile : t -> float -> float
  (** [quantile t q] for [q] in [[0, 1]]: an upper bound on the
      q-quantile, resolved to bucket granularity; [nan] when empty. *)

  val buckets : t -> (float * int) list
  (** Non-empty buckets as [(inclusive upper bound, count)], in
      increasing bound order. *)

  val bucket_index : float -> int
  (** The bucket an observation lands in (exposed for the boundary
      tests). *)

  val bucket_bound : int -> float
  (** Inclusive upper bound of bucket [i], i.e. [2^i]. *)
end

val names : registry -> string list
(** Registered metric names, in registration order. *)

val reset : registry -> unit
(** Zero every metric: counters (all cells), gauges, histograms. *)

val to_json : registry -> Json.t
(** The [xsm stats] report: an object with ["counters"], ["gauges"],
    ["histograms"] and ["help"] sub-objects; each histogram carries
    count, sum, min, max, p50/p90/p99/p999 and its non-empty buckets.
    ["help"] maps every registered name to its help string (possibly
    empty), kept parallel rather than inline so counter and gauge
    values stay scalars for scripted consumers. *)

val samples : registry -> Openmetrics.sample list
(** The registry contents as renderer-agnostic samples, in
    registration order — the bridge to {!Openmetrics.render}. *)

val to_openmetrics : registry -> string
(** OpenMetrics text exposition of the registry: dotted names
    sanitized to the metric-name grammar, counters with [_total],
    histograms with cumulative [le] buckets, terminated by [# EOF]. *)

val pp : Format.formatter -> registry -> unit
(** Human-readable dump (the [--metrics] flag). *)

(** Process-wide runtime gauges ([runtime.heap_words],
    [runtime.major_collections], [runtime.minor_collections],
    [runtime.uptime_s]), registered in {!default} at load time.
    Values are refreshed only by {!Runtime.sample} — the daemon calls
    it per commit batch and per Stats request, keeping [Gc.quick_stat]
    off the per-request path. *)
module Runtime : sig
  val sample : unit -> unit
end
