(** Time sources for telemetry and benchmarking.

    Two clocks, deliberately distinguished: {!now_ns} is {e elapsed
    wall time} (what a user waits for — includes fsync, page faults,
    scheduler preemption), {!cpu_ns} is {e process CPU time} (what the
    code computed).  Benchmarks of I/O-bound paths must use the wall
    clock: timing a per-record-fsync WAL with [Sys.time] reports the
    microseconds the CPU spent submitting the write and misses the
    milliseconds the disk spent syncing it. *)

val now_ns : unit -> int64
(** Wall-clock nanoseconds since an arbitrary process-local epoch
    (module load), made {e non-decreasing}: the underlying source is
    [Unix.gettimeofday], which can step backwards (NTP adjustment, VM
    migration), so reads are clamped to the largest value previously
    returned — a backwards step shows up as a stretch of equal reads,
    never as time running in reverse.  The clamp is atomic, so the
    guarantee holds across domains.  {!Trace} additionally clamps span
    durations at recording time, so exported traces never contain
    negative durations even for spans whose endpoints were read before
    this module's watermark advanced. *)

val raw_ns : unit -> int64
(** The unclamped wall-clock read {!now_ns} is built on.  May go
    backwards; exposed for tests and callers that want the raw source. *)

val epoch_wall : unit -> float
(** The process-local epoch {!now_ns} counts from, as Unix wall-clock
    seconds.  Timestamps from two processes live on different epochs;
    to merge them (the [xsm client --trace] client+server trace), shift
    one side by the difference of the two epochs.  Exchanging the epoch
    costs ~1 µs of [gettimeofday] float granularity — fine for trace
    visualization, not a time-sync protocol. *)

val cpu_ns : unit -> int64
(** Process CPU nanoseconds ([Sys.time]-based), for attributing how
    much of a wall-clock interval was spent computing. *)

val ns_to_ms : int64 -> float

val ns_to_us : int64 -> float

val seconds : (unit -> unit) -> float
(** Wall-clock seconds one call of the thunk takes. *)
