(** OpenMetrics (Prometheus-compatible) text exposition.

    The renderer is a pure function over an abstract {!sample} list so
    that it has no dependency on {!Metrics} (which depends on it to
    implement [Metrics.to_openmetrics]) and can be unit-tested against
    hand-built samples.  Output follows the OpenMetrics text format:
    [# HELP]/[# TYPE] metadata per family, [_total]-suffixed counter
    series, histogram series with {e cumulative} [le]-labelled buckets
    plus the [+Inf] bucket, [_sum] and [_count], terminated by
    [# EOF]. *)

type sample =
  | Counter of { name : string; help : string; value : int }
  | Gauge of { name : string; help : string; value : float }
  | Histogram of {
      name : string;
      help : string;
      count : int;
      sum : float;
      buckets : (float * int) list;
          (** per-bucket (non-cumulative) counts as [(upper bound,
              count)] in increasing bound order; the renderer
              accumulates. *)
    }

val valid_name : string -> bool
(** Whether a name matches the OpenMetrics metric-name grammar
    [[a-zA-Z_:][a-zA-Z0-9_:]*]. *)

val sanitize : string -> string
(** Map a registry name into the grammar: invalid characters become
    [_] (so [wal.fsync_ns] renders as [wal_fsync_ns]); a leading
    invalid character gains a [_] prefix.  Always returns a
    {!valid_name}. *)

val float_str : float -> string
(** Exposition-format float: integral doubles print as integers,
    non-integral with round-trip precision; [NaN], [+Inf], [-Inf]. *)

val render : sample list -> string
(** Render the exposition text.  @raise Invalid_argument when two
    samples sanitize to the same name — a collision would silently
    merge distinct series. *)
