(** Convenience facade over the telemetry core: the one switch and the
    common entry points ({!Clock}, {!Metrics}, {!Trace}, {!Json} are
    the full modules). *)

val enabled : bool ref
(** = {!Trace.enabled}: the master tracing switch, read (one ref
    load) by every instrumentation point before doing any work. *)

val enable : ?detail:bool -> unit -> unit
(** Turn tracing on; [detail] (default [false]) also records per-node
    spans (one per validated element). *)

val disable : unit -> unit
