(* Structured slow-query log: one JSON object per line, append-only,
   flushed per record so a crash loses at most the line being
   written.  The daemon owns one instance and writes under its server
   mutex; the threshold lives here so callers share one definition of
   "slow". *)

type t = {
  path : string;
  oc : out_channel;
  threshold_ns : int64;
  mutable written : int;
  mutable closed : bool;
}

let m_written =
  Metrics.Counter.make ~help:"Entries appended to the slow-query log" "qlog.written"

let create ~threshold_ns path =
  if Int64.compare threshold_ns 0L < 0 then
    invalid_arg "Qlog.create: threshold must be non-negative";
  match open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path with
  | oc -> Ok { path; oc; threshold_ns; written = 0; closed = false }
  | exception Sys_error e -> Error ("slow-query log: " ^ e)

let threshold_ns t = t.threshold_ns
let path t = t.path
let written t = t.written

let slow t ~latency_ns = Int64.compare latency_ns t.threshold_ns >= 0

let log t json =
  if not t.closed then begin
    output_string t.oc (Json.to_string json);
    output_char t.oc '\n';
    flush t.oc;
    t.written <- t.written + 1;
    Metrics.Counter.incr m_written
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_out_noerr t.oc
  end
