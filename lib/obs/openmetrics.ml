(* OpenMetrics text exposition.  This module is deliberately free of
   dependencies on the rest of [lib/obs]: it renders an abstract
   [sample list], and {!Metrics.to_openmetrics} feeds it the registry
   contents — so the registry can depend on the renderer without a
   cycle, and the renderer is testable against hand-built samples. *)

type sample =
  | Counter of { name : string; help : string; value : int }
  | Gauge of { name : string; help : string; value : float }
  | Histogram of {
      name : string;
      help : string;
      count : int;
      sum : float;
      buckets : (float * int) list;
    }

let name_start = function 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false
let name_char = function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false

let valid_name n =
  n <> "" && name_start n.[0] && String.for_all name_char n

(* The registry namespace uses dotted names ([wal.fsync_ns]); the
   OpenMetrics grammar is [[a-zA-Z_:][a-zA-Z0-9_:]*].  Every invalid
   character maps to [_]; a leading digit gains a [_] prefix.  The
   mapping is not injective in general, so {!render} rejects
   post-sanitization collisions rather than silently merging series. *)
let sanitize n =
  if n = "" then "_"
  else begin
    let b = Buffer.create (String.length n + 1) in
    if not (name_start n.[0]) then Buffer.add_char b '_';
    String.iter (fun c -> Buffer.add_char b (if name_char c then c else '_')) n;
    Buffer.contents b
  end

(* Exact decimal rendering: bucket bounds are powers of two and sums
   of integer nanoseconds, so [%g]'s 6 significant digits would both
   collide adjacent [le] labels and corrupt totals.  Integral values
   below 2^53 print as integers; the rest get 17 significant digits
   (round-trip exact for doubles). *)
let float_str v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 9.007199254740992e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render samples =
  let b = Buffer.create 4096 in
  let seen = Hashtbl.create 64 in
  let meta name typ help =
    if Hashtbl.mem seen name then
      invalid_arg
        (Printf.sprintf "Openmetrics.render: %S collides after sanitization" name);
    Hashtbl.add seen name ();
    if help <> "" then
      Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ)
  in
  List.iter
    (fun sample ->
      match sample with
      | Counter { name; help; value } ->
        let name = sanitize name in
        meta name "counter" help;
        Buffer.add_string b (Printf.sprintf "%s_total %d\n" name value)
      | Gauge { name; help; value } ->
        let name = sanitize name in
        meta name "gauge" help;
        Buffer.add_string b (Printf.sprintf "%s %s\n" name (float_str value))
      | Histogram { name; help; count; sum; buckets } ->
        let name = sanitize name in
        meta name "histogram" help;
        let cum = ref 0 in
        List.iter
          (fun (ub, n) ->
            cum := !cum + n;
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name (float_str ub) !cum))
          buckets;
        Buffer.add_string b (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name count);
        Buffer.add_string b (Printf.sprintf "%s_sum %s\n" name (float_str sum));
        Buffer.add_string b (Printf.sprintf "%s_count %d\n" name count))
    samples;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b
