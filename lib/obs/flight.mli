(** The always-on flight recorder: a bounded ring of per-request
    digests with a tail-based keep policy.

    Unlike span tracing (opt-in, per-phase), the flight recorder is
    cheap enough to run unconditionally in the daemon: one digest
    record per request, no clock reads of its own, no export unless
    asked (the [Introspect] protocol request / [xsm client --flight]).
    The ring answers "what were the last N requests"; the keep policy
    answers "what were the {e interesting} ones" — when ring pressure
    evicts a digest, errors survive into a bounded FIFO and the
    slowest requests into a bounded best-of set, so a burst of healthy
    traffic cannot flush the evidence of the failure that preceded
    it. *)

type outcome = Done | Failed of string

type digest = {
  seq : int;  (** assigned by {!record}; monotone per recorder *)
  at_ns : int64;  (** request start, process wall clock *)
  kind : string;  (** ["query"], ["update"], ["validate"], … *)
  detail : string;  (** request text or summary *)
  route : string;  (** planner route ([""] when not a planned query) *)
  est_lo : int;  (** estimated-rows interval; [est_lo < 0] = no estimate *)
  est_hi : int;
  actual_rows : int;
  pager_hits : int;
  pager_evictions : int;
  fsync_ns : int64;  (** fsync wait attributed to this request (0 for reads) *)
  latency_ns : int64;
  outcome : outcome;
  session : int;
  request : int;
  trace_id : string;  (** propagated trace id ([""] when none) *)
  plan : Json.t option;  (** structured plan for slow/error requests *)
}

type t

val create : ?capacity:int -> unit -> t
(** Ring of [capacity] digests (default 256); the error and slow side
    buffers each hold [max 4 (capacity / 4)].  Not thread-safe —
    serialize access (the daemon records under its server mutex). *)

val record : t -> digest -> unit
(** Stamp [seq] and append; on ring overflow the evicted digest runs
    the keep policy.  Bumps [flight.recorded] / [flight.evicted] /
    [flight.kept_errors] / [flight.kept_slow]. *)

val recent : t -> digest list
(** Retained ring contents, oldest first. *)

val kept_errors : t -> digest list
(** Evicted failures that survived, oldest first. *)

val kept_slow : t -> digest list
(** Evicted slowest requests, ascending latency. *)

val recorded : t -> int
(** Total digests ever recorded (= last assigned [seq]). *)

val digest_to_json : digest -> Json.t

val to_json : t -> Json.t
(** [{"capacity", "recorded", "recent": [...], "errors": [...],
    "slow": [...]}] — the [Introspect] reply body. *)
