let enabled = ref false
let detail = ref false

(* ------------------------------------------------------------------ *)
(* Ring-buffer retention.  Slots are preallocated and overwritten in
   place, so recording a span performs no allocation (beyond whatever
   attribute list the caller built). *)

type slot = {
  mutable s_id : int;
  mutable s_parent : int;
  mutable s_name : string;
  mutable s_start : int64;
  mutable s_dur : int64;
  mutable s_depth : int;
  mutable s_attrs : (string * string) list;
}

let fresh_slot () =
  { s_id = 0; s_parent = 0; s_name = ""; s_start = 0L; s_dur = 0L; s_depth = 0; s_attrs = [] }

let capacity = ref 65536
let ring : slot array ref = ref [||]
let ring_pos = ref 0
let ring_count = ref 0
let dropped_count = ref 0

(* ring overflow used to be silent; the counter makes eviction of
   never-exported spans visible in [xsm stats] *)
let m_dropped =
  Metrics.Counter.make ~help:"Spans evicted from the trace ring before export"
    "obs.trace.dropped"

let reset () =
  ring_pos := 0;
  ring_count := 0;
  dropped_count := 0

let set_capacity n =
  if n < 1 then invalid_arg "Trace.set_capacity: capacity must be positive";
  capacity := n;
  ring := [||];
  reset ()

let record ~id ~parent ~name ~start ~stop ~depth ~attrs =
  if Array.length !ring = 0 then ring := Array.init !capacity (fun _ -> fresh_slot ());
  let s = !ring.(!ring_pos) in
  s.s_id <- id;
  s.s_parent <- parent;
  s.s_name <- name;
  s.s_start <- start;
  (* the wall clock can step backwards between the two reads; a span
     can shrink to nothing but never to a negative duration *)
  s.s_dur <- (let d = Int64.sub stop start in if Int64.compare d 0L < 0 then 0L else d);
  s.s_depth <- depth;
  s.s_attrs <- attrs;
  ring_pos := (!ring_pos + 1) mod Array.length !ring;
  if !ring_count < Array.length !ring then incr ring_count
  else begin
    incr dropped_count;
    Metrics.Counter.incr m_dropped
  end

let dropped () = !dropped_count

(* ------------------------------------------------------------------ *)
(* The open-span stack (one thread of parent/child ids) *)

type frame = {
  mutable f_id : int;
  mutable f_name : string;
  mutable f_start : int64;
  mutable f_attrs : (string * string) list;
}

let stack =
  ref (Array.init 64 (fun _ -> { f_id = 0; f_name = ""; f_start = 0L; f_attrs = [] }))

let sp = ref 0
let next_id = ref 0

let push name attrs =
  if !sp >= Array.length !stack then begin
    let bigger =
      Array.init
        (2 * Array.length !stack)
        (fun i ->
          if i < Array.length !stack then !stack.(i)
          else { f_id = 0; f_name = ""; f_start = 0L; f_attrs = [] })
    in
    stack := bigger
  end;
  incr next_id;
  let f = !stack.(!sp) in
  f.f_id <- !next_id;
  f.f_name <- name;
  f.f_attrs <- attrs;
  f.f_start <- Clock.now_ns ();
  incr sp;
  !next_id

let pop id =
  let stop = Clock.now_ns () in
  (* defensive: unwind to the frame carrying [id], so an instrumented
     function that escaped via an uncounted exception cannot poison
     the nesting of every later span *)
  let rec find i = if i < 0 then None else if !stack.(i).f_id = id then Some i else find (i - 1) in
  match find (!sp - 1) with
  | None -> ()
  | Some i ->
    let f = !stack.(i) in
    let parent = if i > 0 then !stack.(i - 1).f_id else 0 in
    record ~id:f.f_id ~parent ~name:f.f_name ~start:f.f_start ~stop ~depth:i
      ~attrs:f.f_attrs;
    sp := i

let add_attr key value =
  if !enabled && !sp > 0 then begin
    let f = !stack.(!sp - 1) in
    f.f_attrs <- (key, value) :: f.f_attrs
  end

let with_span ?(attrs = []) name f =
  if not !enabled then f ()
  else begin
    let id = push name attrs in
    match f () with
    | r ->
      pop id;
      r
    | exception e ->
      add_attr "exception" (Printexc.to_string e);
      pop id;
      raise e
  end

let with_detail_span ?attrs name f =
  if !enabled && !detail then with_span ?attrs name f else f ()

let record_span ?(attrs = []) name ~start_ns ~stop_ns =
  if !enabled then begin
    incr next_id;
    record ~id:!next_id ~parent:0 ~name ~start:start_ns ~stop:stop_ns ~depth:0 ~attrs
  end

let record_linked ?(attrs = []) ?(depth = 0) name ~parent ~start_ns ~stop_ns =
  if not !enabled then 0
  else begin
    incr next_id;
    let id = !next_id in
    record ~id ~parent ~name ~start:start_ns ~stop:stop_ns ~depth ~attrs;
    id
  end

(* ------------------------------------------------------------------ *)
(* Export                                                              *)

type event = {
  id : int;
  parent : int;
  name : string;
  start_ns : int64;
  dur_ns : int64;
  depth : int;
  attrs : (string * string) list;
}

let events () =
  let out = ref [] in
  let len = Array.length !ring in
  for k = !ring_count - 1 downto 0 do
    (* oldest retained slot first: ring_pos points past the newest *)
    let s = !ring.((!ring_pos - 1 - k + (2 * len)) mod len) in
    out :=
      {
        id = s.s_id;
        parent = s.s_parent;
        name = s.s_name;
        start_ns = s.s_start;
        dur_ns = s.s_dur;
        depth = s.s_depth;
        attrs = s.s_attrs;
      }
      :: !out
  done;
  List.stable_sort
    (fun a b ->
      match Int64.compare a.start_ns b.start_ns with 0 -> compare a.id b.id | c -> c)
    (List.rev !out)

(* int64 timestamps cross the wire as decimal strings: [Json.Num] is a
   double, and while nanoseconds-since-process-start fit in 2^53 for
   ~104 days, an exact codec costs nothing *)
let event_to_json e =
  Json.Obj
    [
      ("id", Json.int e.id);
      ("parent", Json.int e.parent);
      ("name", Json.Str e.name);
      ("start_ns", Json.Str (Int64.to_string e.start_ns));
      ("dur_ns", Json.Str (Int64.to_string e.dur_ns));
      ("depth", Json.int e.depth);
      ( "attrs",
        Json.Obj (List.rev_map (fun (k, v) -> (k, Json.Str v)) e.attrs) );
    ]

let event_of_json j =
  let ( let* ) = Result.bind in
  let int_field k =
    match Json.member k j with
    | Some (Json.Num f) when Float.is_integer f -> Ok (int_of_float f)
    | _ -> Error (Printf.sprintf "trace event: expected integer %S" k)
  in
  let str_field k =
    match Json.member k j with
    | Some (Json.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "trace event: expected string %S" k)
  in
  let ns_field k =
    let* s = str_field k in
    match Int64.of_string_opt s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "trace event: %S is not a nanosecond count" k)
  in
  let* id = int_field "id" in
  let* parent = int_field "parent" in
  let* name = str_field "name" in
  let* start_ns = ns_field "start_ns" in
  let* dur_ns = ns_field "dur_ns" in
  let* depth = int_field "depth" in
  let* attrs =
    match Json.member "attrs" j with
    | Some (Json.Obj kvs) ->
      let rec conv acc = function
        | [] -> Ok (List.rev acc)
        | (k, Json.Str v) :: rest -> conv ((k, v) :: acc) rest
        | (k, _) :: _ -> Error (Printf.sprintf "trace event: attr %S is not a string" k)
      in
      conv [] kvs
    | Some Json.Null | None -> Ok []
    | Some _ -> Error "trace event: \"attrs\" is not an object"
  in
  Ok { id; parent; name; start_ns; dur_ns; depth; attrs }

let chrome_event ~pid e =
  let args =
    List.rev_map (fun (k, v) -> (k, Json.Str v)) e.attrs
    @ [ ("span_id", Json.int e.id); ("parent_id", Json.int e.parent) ]
  in
  Json.Obj
    [
      ("name", Json.Str e.name);
      ("cat", Json.Str "xsm");
      ("ph", Json.Str "X");
      ("ts", Json.Num (Int64.to_float e.start_ns /. 1e3));
      ("dur", Json.Num (Int64.to_float e.dur_ns /. 1e3));
      ("pid", Json.int pid);
      ("tid", Json.int 1);
      ("args", Json.Obj args);
    ]

let to_chrome () =
  Json.Obj
    [
      ("traceEvents", Json.Arr (List.map (chrome_event ~pid:1) (events ())));
      ("displayTimeUnit", Json.Str "ms");
    ]

let to_chrome_groups groups =
  (* one Chrome "process" per event group: a metadata event names it,
     then the group's spans carry its pid — how a client renders its
     own spans next to the daemon's on one shared timeline *)
  let meta (pid, pname, _) =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.int pid);
        ("tid", Json.int 1);
        ("args", Json.Obj [ ("name", Json.Str pname) ]);
      ]
  in
  let spans =
    List.concat_map (fun (pid, _, es) -> List.map (chrome_event ~pid) es) groups
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr (List.map meta groups @ spans));
      ("displayTimeUnit", Json.Str "ms");
    ]

let write_chrome_json path json =
  try
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Json.to_string json));
    Ok ()
  with Sys_error e -> Error ("trace: " ^ e)

let write_chrome path = write_chrome_json path (to_chrome ())

let write_chrome_groups path groups = write_chrome_json path (to_chrome_groups groups)

let pp_tree ppf () =
  let pp_dur ppf ns =
    if Int64.compare ns 1_000_000L >= 0 then
      Format.fprintf ppf "%.2f ms" (Clock.ns_to_ms ns)
    else Format.fprintf ppf "%.1f us" (Clock.ns_to_us ns)
  in
  List.iter
    (fun e ->
      Format.fprintf ppf "%s%s  %a" (String.make (2 * e.depth) ' ') e.name pp_dur e.dur_ns;
      List.iter (fun (k, v) -> Format.fprintf ppf "  %s=%s" k v) (List.rev e.attrs);
      Format.fprintf ppf "@.")
    (events ());
  if !dropped_count > 0 then
    Format.fprintf ppf "(… %d older spans evicted from the ring)@." !dropped_count
