let enabled = ref false
let detail = ref false

(* ------------------------------------------------------------------ *)
(* Ring-buffer retention.  Slots are preallocated and overwritten in
   place, so recording a span performs no allocation (beyond whatever
   attribute list the caller built). *)

type slot = {
  mutable s_id : int;
  mutable s_parent : int;
  mutable s_name : string;
  mutable s_start : int64;
  mutable s_dur : int64;
  mutable s_depth : int;
  mutable s_attrs : (string * string) list;
}

let fresh_slot () =
  { s_id = 0; s_parent = 0; s_name = ""; s_start = 0L; s_dur = 0L; s_depth = 0; s_attrs = [] }

let capacity = ref 65536
let ring : slot array ref = ref [||]
let ring_pos = ref 0
let ring_count = ref 0
let dropped_count = ref 0

let reset () =
  ring_pos := 0;
  ring_count := 0;
  dropped_count := 0

let set_capacity n =
  if n < 1 then invalid_arg "Trace.set_capacity: capacity must be positive";
  capacity := n;
  ring := [||];
  reset ()

let record ~id ~parent ~name ~start ~stop ~depth ~attrs =
  if Array.length !ring = 0 then ring := Array.init !capacity (fun _ -> fresh_slot ());
  let s = !ring.(!ring_pos) in
  s.s_id <- id;
  s.s_parent <- parent;
  s.s_name <- name;
  s.s_start <- start;
  (* the wall clock can step backwards between the two reads; a span
     can shrink to nothing but never to a negative duration *)
  s.s_dur <- (let d = Int64.sub stop start in if Int64.compare d 0L < 0 then 0L else d);
  s.s_depth <- depth;
  s.s_attrs <- attrs;
  ring_pos := (!ring_pos + 1) mod Array.length !ring;
  if !ring_count < Array.length !ring then incr ring_count else incr dropped_count

let dropped () = !dropped_count

(* ------------------------------------------------------------------ *)
(* The open-span stack (one thread of parent/child ids) *)

type frame = {
  mutable f_id : int;
  mutable f_name : string;
  mutable f_start : int64;
  mutable f_attrs : (string * string) list;
}

let stack =
  ref (Array.init 64 (fun _ -> { f_id = 0; f_name = ""; f_start = 0L; f_attrs = [] }))

let sp = ref 0
let next_id = ref 0

let push name attrs =
  if !sp >= Array.length !stack then begin
    let bigger =
      Array.init
        (2 * Array.length !stack)
        (fun i ->
          if i < Array.length !stack then !stack.(i)
          else { f_id = 0; f_name = ""; f_start = 0L; f_attrs = [] })
    in
    stack := bigger
  end;
  incr next_id;
  let f = !stack.(!sp) in
  f.f_id <- !next_id;
  f.f_name <- name;
  f.f_attrs <- attrs;
  f.f_start <- Clock.now_ns ();
  incr sp;
  !next_id

let pop id =
  let stop = Clock.now_ns () in
  (* defensive: unwind to the frame carrying [id], so an instrumented
     function that escaped via an uncounted exception cannot poison
     the nesting of every later span *)
  let rec find i = if i < 0 then None else if !stack.(i).f_id = id then Some i else find (i - 1) in
  match find (!sp - 1) with
  | None -> ()
  | Some i ->
    let f = !stack.(i) in
    let parent = if i > 0 then !stack.(i - 1).f_id else 0 in
    record ~id:f.f_id ~parent ~name:f.f_name ~start:f.f_start ~stop ~depth:i
      ~attrs:f.f_attrs;
    sp := i

let add_attr key value =
  if !enabled && !sp > 0 then begin
    let f = !stack.(!sp - 1) in
    f.f_attrs <- (key, value) :: f.f_attrs
  end

let with_span ?(attrs = []) name f =
  if not !enabled then f ()
  else begin
    let id = push name attrs in
    match f () with
    | r ->
      pop id;
      r
    | exception e ->
      add_attr "exception" (Printexc.to_string e);
      pop id;
      raise e
  end

let with_detail_span ?attrs name f =
  if !enabled && !detail then with_span ?attrs name f else f ()

let record_span ?(attrs = []) name ~start_ns ~stop_ns =
  if !enabled then begin
    incr next_id;
    record ~id:!next_id ~parent:0 ~name ~start:start_ns ~stop:stop_ns ~depth:0 ~attrs
  end

(* ------------------------------------------------------------------ *)
(* Export                                                              *)

type event = {
  id : int;
  parent : int;
  name : string;
  start_ns : int64;
  dur_ns : int64;
  depth : int;
  attrs : (string * string) list;
}

let events () =
  let out = ref [] in
  let len = Array.length !ring in
  for k = !ring_count - 1 downto 0 do
    (* oldest retained slot first: ring_pos points past the newest *)
    let s = !ring.((!ring_pos - 1 - k + (2 * len)) mod len) in
    out :=
      {
        id = s.s_id;
        parent = s.s_parent;
        name = s.s_name;
        start_ns = s.s_start;
        dur_ns = s.s_dur;
        depth = s.s_depth;
        attrs = s.s_attrs;
      }
      :: !out
  done;
  List.stable_sort
    (fun a b ->
      match Int64.compare a.start_ns b.start_ns with 0 -> compare a.id b.id | c -> c)
    (List.rev !out)

let to_chrome () =
  let event_json e =
    let args =
      List.rev_map (fun (k, v) -> (k, Json.Str v)) e.attrs
      @ [ ("span_id", Json.int e.id); ("parent_id", Json.int e.parent) ]
    in
    Json.Obj
      [
        ("name", Json.Str e.name);
        ("cat", Json.Str "xsm");
        ("ph", Json.Str "X");
        ("ts", Json.Num (Int64.to_float e.start_ns /. 1e3));
        ("dur", Json.Num (Int64.to_float e.dur_ns /. 1e3));
        ("pid", Json.int 1);
        ("tid", Json.int 1);
        ("args", Json.Obj args);
      ]
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr (List.map event_json (events ())));
      ("displayTimeUnit", Json.Str "ms");
    ]

let write_chrome path =
  try
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Json.to_string (to_chrome ())));
    Ok ()
  with Sys_error e -> Error ("trace: " ^ e)

let pp_tree ppf () =
  let pp_dur ppf ns =
    if Int64.compare ns 1_000_000L >= 0 then
      Format.fprintf ppf "%.2f ms" (Clock.ns_to_ms ns)
    else Format.fprintf ppf "%.1f us" (Clock.ns_to_us ns)
  in
  List.iter
    (fun e ->
      Format.fprintf ppf "%s%s  %a" (String.make (2 * e.depth) ' ') e.name pp_dur e.dur_ns;
      List.iter (fun (k, v) -> Format.fprintf ppf "  %s=%s" k v) (List.rev e.attrs);
      Format.fprintf ppf "@.")
    (events ());
  if !dropped_count > 0 then
    Format.fprintf ppf "(… %d older spans evicted from the ring)@." !dropped_count
