(** A minimal JSON tree: enough to emit the Chrome trace-event format
    and the [xsm stats] metrics report, and to parse them back in
    tests (the exporter round-trip law).  Deliberately tiny — no
    external dependency, no streaming, numbers are floats. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val int : int -> t
(** An integral {!Num} (printed without a decimal point). *)

val to_string : t -> string
(** Compact serialization with full string escaping. *)

val pp : Format.formatter -> t -> unit
(** Pretty serialization: objects and arrays one entry per line. *)

val parse : string -> (t, string) result
(** Parse a complete JSON text; trailing garbage is an error. *)

val member : string -> t -> t option
(** Field lookup in an {!Obj}; [None] otherwise. *)
