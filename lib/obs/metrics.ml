type counter_cell = { mutable n : int }

type counter = {
  c_name : string;
  c_help : string;
  mutable cells : counter_cell list;  (* includes [built_in] *)
  built_in : counter_cell;
}

type gauge = { g_name : string; g_help : string; mutable g : float }

let hist_buckets = 64

type histogram = {
  h_name : string;
  h_help : string;
  counts : int array;  (* bucket i: values in (2^(i-1), 2^i]; bucket 0: <= 1 *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type metric = C of counter | G of gauge | H of histogram

type registry = { mutable metrics : (string * metric) list (* newest first *) }

let default = { metrics = [] }

let create () = { metrics = [] }

let find reg name = List.assoc_opt name reg.metrics

let register reg name metric = reg.metrics <- (name, metric) :: reg.metrics

let kind_clash name =
  invalid_arg
    (Printf.sprintf "Metrics: %S is already registered as a different kind" name)

module Counter = struct
  type t = counter
  type cell = counter_cell

  let make ?(registry = default) ?(help = "") name =
    match find registry name with
    | Some (C c) -> c
    | Some (G _ | H _) -> kind_clash name
    | None ->
      let built_in = { n = 0 } in
      let c = { c_name = name; c_help = help; cells = [ built_in ]; built_in } in
      register registry name (C c);
      c

  let incr t = t.built_in.n <- t.built_in.n + 1
  let add t k = t.built_in.n <- t.built_in.n + k
  let value t = List.fold_left (fun acc cell -> acc + cell.n) 0 t.cells

  let cell t =
    let cell = { n = 0 } in
    t.cells <- cell :: t.cells;
    cell

  let cell_incr cell = cell.n <- cell.n + 1
  let cell_add cell k = cell.n <- cell.n + k
  let cell_value cell = cell.n
  let cell_reset cell = cell.n <- 0
end

module Gauge = struct
  type t = gauge

  let make ?(registry = default) ?(help = "") name =
    match find registry name with
    | Some (G g) -> g
    | Some (C _ | H _) -> kind_clash name
    | None ->
      let g = { g_name = name; g_help = help; g = 0.0 } in
      register registry name (G g);
      g

  let set t v = t.g <- v
  let value t = t.g
end

module Histogram = struct
  type t = histogram

  let make ?(registry = default) ?(help = "") name =
    match find registry name with
    | Some (H h) -> h
    | Some (C _ | G _) -> kind_clash name
    | None ->
      let h =
        {
          h_name = name;
          h_help = help;
          counts = Array.make hist_buckets 0;
          h_count = 0;
          h_sum = 0.0;
          h_min = infinity;
          h_max = neg_infinity;
        }
      in
      register registry name (H h);
      h

  (* exact at powers of two: frexp v = (m, e) with m in [0.5, 1), so
     v = 2^(e-1) exactly iff m = 0.5, which belongs in bucket e-1 *)
  let bucket_index v =
    if not (v > 1.0) then 0
    else
      let m, e = Float.frexp v in
      let i = if m = 0.5 then e - 1 else e in
      if i >= hist_buckets then hist_buckets - 1 else i

  let bucket_bound i = Float.ldexp 1.0 i

  let observe t v =
    let i = bucket_index v in
    t.counts.(i) <- t.counts.(i) + 1;
    t.h_count <- t.h_count + 1;
    t.h_sum <- t.h_sum +. v;
    if v < t.h_min then t.h_min <- v;
    if v > t.h_max then t.h_max <- v

  let count t = t.h_count
  let sum t = t.h_sum
  let min_value t = if t.h_count = 0 then nan else t.h_min
  let max_value t = if t.h_count = 0 then nan else t.h_max

  let quantile t q =
    if t.h_count = 0 then nan
    else begin
      let q = Float.min 1.0 (Float.max 0.0 q) in
      let target = Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int t.h_count))) in
      let result = ref t.h_max in
      (try
         let cum = ref 0 in
         for i = 0 to hist_buckets - 1 do
           cum := !cum + t.counts.(i);
           if !cum >= target then begin
             result := bucket_bound i;
             raise Exit
           end
         done
       with Exit -> ());
      (* clamp to the observed range: bucket bounds over-approximate *)
      Float.min t.h_max (Float.max t.h_min !result)
    end

  let buckets t =
    let acc = ref [] in
    for i = hist_buckets - 1 downto 0 do
      if t.counts.(i) > 0 then acc := (bucket_bound i, t.counts.(i)) :: !acc
    done;
    !acc
end

let names reg = List.rev_map fst reg.metrics

let reset reg =
  List.iter
    (fun (_, m) ->
      match m with
      | C c -> List.iter (fun cell -> cell.n <- 0) c.cells
      | G g -> g.g <- 0.0
      | H h ->
        Array.fill h.counts 0 hist_buckets 0;
        h.h_count <- 0;
        h.h_sum <- 0.0;
        h.h_min <- infinity;
        h.h_max <- neg_infinity)
    reg.metrics

let json_num f = if Float.is_nan f then Json.Null else Json.Num f

let histogram_json h =
  let q p = json_num (Histogram.quantile h p) in
  Json.Obj
    [
      ("count", Json.int h.h_count);
      ("sum", Json.Num h.h_sum);
      ("min", json_num (Histogram.min_value h));
      ("max", json_num (Histogram.max_value h));
      ("p50", q 0.5);
      ("p90", q 0.9);
      ("p99", q 0.99);
      ("p999", q 0.999);
      ( "buckets",
        Json.Arr
          (List.map
             (fun (ub, n) -> Json.Arr [ Json.Num ub; Json.int n ])
             (Histogram.buckets h)) );
    ]

let to_json reg =
  let ordered = List.rev reg.metrics in
  let pick f = List.filter_map f ordered in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (pick (function
            | name, C c -> Some (name, Json.int (Counter.value c))
            | _ -> None)) );
      ( "gauges",
        Json.Obj
          (* json_num: a NaN gauge (e.g. hit ratio of an untouched pool)
             must emit [null], not the invalid JSON token [nan] *)
          (pick (function name, G g -> Some (name, json_num g.g) | _ -> None)) );
      ( "histograms",
        Json.Obj
          (pick (function name, H h -> Some (name, histogram_json h) | _ -> None)) );
      (* help strings live in a parallel object so the counter/gauge
         values above stay scalars (scripts index them directly) *)
      ( "help",
        Json.Obj
          (pick (fun (name, m) ->
             let help = match m with C c -> c.c_help | G g -> g.g_help | H h -> h.h_help in
             Some (name, Json.Str help))) );
    ]

let samples reg =
  List.rev_map
    (fun (name, m) ->
      match m with
      | C c -> Openmetrics.Counter { name; help = c.c_help; value = Counter.value c }
      | G g -> Openmetrics.Gauge { name; help = g.g_help; value = g.g }
      | H h ->
        Openmetrics.Histogram
          {
            name;
            help = h.h_help;
            count = h.h_count;
            sum = h.h_sum;
            buckets = Histogram.buckets h;
          })
    reg.metrics

let to_openmetrics reg = Openmetrics.render (samples reg)

let pp ppf reg =
  let annotate help = if help = "" then "" else "  # " ^ help in
  List.iter
    (fun (_, m) ->
      match m with
      | C c ->
        Format.fprintf ppf "counter   %-32s %d%s@." c.c_name (Counter.value c)
          (annotate c.c_help)
      | G g ->
        (* NaN marks a gauge with nothing to report (e.g. hit ratio of
           an untouched pool) — render that state, not a number *)
        if Float.is_nan g.g then
          Format.fprintf ppf "gauge     %-32s (unset)%s@." g.g_name (annotate g.g_help)
        else Format.fprintf ppf "gauge     %-32s %g%s@." g.g_name g.g (annotate g.g_help)
      | H h ->
        if h.h_count = 0 then
          Format.fprintf ppf "histogram %-32s (empty)%s@." h.h_name (annotate h.h_help)
        else
          Format.fprintf ppf
            "histogram %-32s n=%d sum=%.0f min=%.0f p50=%.0f p90=%.0f p99=%.0f p999=%.0f \
             max=%.0f%s@."
            h.h_name h.h_count h.h_sum h.h_min
            (Histogram.quantile h 0.5)
            (Histogram.quantile h 0.9)
            (Histogram.quantile h 0.99)
            (Histogram.quantile h 0.999)
            h.h_max (annotate h.h_help))
    (List.rev reg.metrics)

(* ------------------------------------------------------------------ *)
(* Process/runtime gauges.  Registered eagerly so every stats report
   carries them; [Runtime.sample] refreshes the values — the daemon
   calls it once per commit batch and on every Stats request, so the
   cost (one [Gc.quick_stat]) never lands on the per-request path. *)

module Runtime = struct
  let g_heap_words =
    Gauge.make ~help:"Major heap size in words (Gc.quick_stat)" "runtime.heap_words"

  let g_major =
    Gauge.make ~help:"Completed major GC cycles" "runtime.major_collections"

  let g_minor =
    Gauge.make ~help:"Completed minor GC cycles" "runtime.minor_collections"

  let g_uptime =
    Gauge.make ~help:"Seconds since process start (monotone wall clock)" "runtime.uptime_s"

  let sample () =
    let s = Gc.quick_stat () in
    Gauge.set g_heap_words (float_of_int s.Gc.heap_words);
    Gauge.set g_major (float_of_int s.Gc.major_collections);
    Gauge.set g_minor (float_of_int s.Gc.minor_collections);
    Gauge.set g_uptime (Int64.to_float (Clock.now_ns ()) /. 1e9)
end
