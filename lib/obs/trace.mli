(** The span tracer: nestable named spans with wall-clock timestamps,
    parent/child ids, key/value attributes and ring-buffer retention.

    Tracing is {e off} by default: {!with_span} on the disabled path
    is one ref read plus the thunk call — no clock read, no
    allocation.  When {!enabled} is set, each completed span is
    written into a preallocated ring of fixed capacity (oldest spans
    are overwritten; {!dropped} counts them), so a traced run has
    bounded memory whatever its length.

    Two granularities: ordinary spans mark request phases (parse,
    plan, execute, replay) and are cheap enough to leave enabled;
    {e detail} spans ({!with_detail_span}) mark per-node work — one
    span per validated element — and additionally require {!detail},
    which only the [--trace] exporters set.  E15 measures the
    enabled-but-unexported configuration at <2% on the hot workloads.

    Exporters: {!to_chrome} emits Chrome [trace_event] JSON (load the
    file in [chrome://tracing] or Perfetto), {!pp_tree} renders the
    retained spans as an indented tree with durations. *)

val enabled : bool ref
(** Master switch; read on every instrumentation point. *)

val detail : bool ref
(** Also record per-node detail spans (implies a span per validated
    element).  Only consulted when {!enabled} is set. *)

val set_capacity : int -> unit
(** Resize the ring (default 65536 spans).  Discards retained spans. *)

val reset : unit -> unit
(** Discard retained spans and the dropped count; open spans keep
    their nesting. *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span.  The span is recorded when the
    thunk returns {e or raises} (the exception is re-raised; the span
    gains an ["exception"] attribute). *)

val with_detail_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** {!with_span} when {!detail} is also set, plain call otherwise. *)

val record_span :
  ?attrs:(string * string) list -> string -> start_ns:int64 -> stop_ns:int64 -> unit
(** Record an already-timed root span directly (no open-span stack
    involvement) — for callers that measured an interval themselves,
    such as the server recording per-request spans whose endpoints
    were read on another thread.  The duration is clamped at zero:
    [stop_ns < start_ns] (a wall-clock step between the reads) records
    an instantaneous span, never a negative one.  Not itself
    thread-safe — concurrent recorders must serialize calls. *)

val record_linked :
  ?attrs:(string * string) list ->
  ?depth:int ->
  string ->
  parent:int ->
  start_ns:int64 ->
  stop_ns:int64 ->
  int
(** {!record_span} with an explicit parent id, returning the new
    span's id so further children can link to it — how the server
    builds a request's span tree (request → latch/plan/fsync phases)
    from intervals measured across threads.  Returns [0] without
    recording when tracing is disabled.  [parent:0] means root.  Same
    thread-safety caveat as {!record_span}. *)

val add_attr : string -> string -> unit
(** Attach a key/value attribute to the innermost open span (no-op
    when tracing is off or no span is open). *)

type event = {
  id : int;
  parent : int;  (** 0 when the span has no parent *)
  name : string;
  start_ns : int64;
  dur_ns : int64;
  depth : int;  (** nesting depth at record time; 0 = root *)
  attrs : (string * string) list;
}

val events : unit -> event list
(** Retained completed spans, sorted by start time (a preorder of the
    span forest, since spans nest properly). *)

val dropped : unit -> int
(** Spans evicted from the ring since the last {!reset}.  Evictions
    also bump the cumulative [obs.trace.dropped] counter (which
    {!reset} does {e not} zero), so silent overflow shows up in
    [xsm stats]. *)

val event_to_json : event -> Json.t
(** Wire codec for one span: integer fields as JSON numbers, the two
    int64 nanosecond fields as decimal strings (exact), attrs as a
    string-valued object.  Inverse of {!event_of_json}. *)

val event_of_json : Json.t -> (event, string) result

val to_chrome : unit -> Json.t
(** The retained spans as a Chrome trace: [{"traceEvents": [...]}],
    one phase-["X"] (complete) event per span, [ts]/[dur] in
    microseconds, non-decreasing [ts] per thread. *)

val to_chrome_groups : (int * string * event list) list -> Json.t
(** A Chrome trace over several span sets, each [(pid, process name,
    events)] group rendered as its own Chrome process (a metadata
    event carries the name).  Timestamps must already be on one
    timeline: {!Clock.now_ns} counts from a process-local epoch, so
    events from another process need rebasing by the epoch difference
    ({!Clock.epoch_wall}, which the daemon ships in its
    [Introspect (Trace_events _)] reply).  Callers must also ensure
    span ids don't collide across groups (offset one side) and rewrite
    wire-parent links before merging. *)

val write_chrome : string -> (unit, string) result
(** Serialize {!to_chrome} to a file. *)

val write_chrome_groups :
  string -> (int * string * event list) list -> (unit, string) result
(** Serialize {!to_chrome_groups} to a file. *)

val pp_tree : Format.formatter -> unit -> unit
(** Indented rendering of the retained spans with durations and
    attributes. *)
