(** The span tracer: nestable named spans with wall-clock timestamps,
    parent/child ids, key/value attributes and ring-buffer retention.

    Tracing is {e off} by default: {!with_span} on the disabled path
    is one ref read plus the thunk call — no clock read, no
    allocation.  When {!enabled} is set, each completed span is
    written into a preallocated ring of fixed capacity (oldest spans
    are overwritten; {!dropped} counts them), so a traced run has
    bounded memory whatever its length.

    Two granularities: ordinary spans mark request phases (parse,
    plan, execute, replay) and are cheap enough to leave enabled;
    {e detail} spans ({!with_detail_span}) mark per-node work — one
    span per validated element — and additionally require {!detail},
    which only the [--trace] exporters set.  E15 measures the
    enabled-but-unexported configuration at <2% on the hot workloads.

    Exporters: {!to_chrome} emits Chrome [trace_event] JSON (load the
    file in [chrome://tracing] or Perfetto), {!pp_tree} renders the
    retained spans as an indented tree with durations. *)

val enabled : bool ref
(** Master switch; read on every instrumentation point. *)

val detail : bool ref
(** Also record per-node detail spans (implies a span per validated
    element).  Only consulted when {!enabled} is set. *)

val set_capacity : int -> unit
(** Resize the ring (default 65536 spans).  Discards retained spans. *)

val reset : unit -> unit
(** Discard retained spans and the dropped count; open spans keep
    their nesting. *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span.  The span is recorded when the
    thunk returns {e or raises} (the exception is re-raised; the span
    gains an ["exception"] attribute). *)

val with_detail_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** {!with_span} when {!detail} is also set, plain call otherwise. *)

val record_span :
  ?attrs:(string * string) list -> string -> start_ns:int64 -> stop_ns:int64 -> unit
(** Record an already-timed root span directly (no open-span stack
    involvement) — for callers that measured an interval themselves,
    such as the server recording per-request spans whose endpoints
    were read on another thread.  The duration is clamped at zero:
    [stop_ns < start_ns] (a wall-clock step between the reads) records
    an instantaneous span, never a negative one.  Not itself
    thread-safe — concurrent recorders must serialize calls. *)

val add_attr : string -> string -> unit
(** Attach a key/value attribute to the innermost open span (no-op
    when tracing is off or no span is open). *)

type event = {
  id : int;
  parent : int;  (** 0 when the span has no parent *)
  name : string;
  start_ns : int64;
  dur_ns : int64;
  depth : int;  (** nesting depth at record time; 0 = root *)
  attrs : (string * string) list;
}

val events : unit -> event list
(** Retained completed spans, sorted by start time (a preorder of the
    span forest, since spans nest properly). *)

val dropped : unit -> int
(** Spans evicted from the ring since the last {!reset}. *)

val to_chrome : unit -> Json.t
(** The retained spans as a Chrome trace: [{"traceEvents": [...]}],
    one phase-["X"] (complete) event per span, [ts]/[dur] in
    microseconds, non-decreasing [ts] per thread. *)

val write_chrome : string -> (unit, string) result
(** Serialize {!to_chrome} to a file. *)

val pp_tree : Format.formatter -> unit -> unit
(** Indented rendering of the retained spans with durations and
    attributes. *)
