(** Structured slow-query log: JSON lines, append-only, flushed per
    entry.

    The daemon opens one at [--slow-log PATH] and appends every
    request whose latency clears [--slow-threshold-ms], attaching the
    request digest and its structured plan — so a slow query arrives
    in the log with the route the planner chose and the estimate it
    chose it on, not just a duration. *)

type t

val create : threshold_ns:int64 -> string -> (t, string) result
(** Open (append, create) the log file. *)

val threshold_ns : t -> int64

val path : t -> string

val slow : t -> latency_ns:int64 -> bool
(** Whether a latency clears the threshold. *)

val log : t -> Json.t -> unit
(** Append one entry as a single line and flush; bumps
    [qlog.written].  No-op after {!close}. *)

val written : t -> int
(** Entries appended since {!create}. *)

val close : t -> unit
