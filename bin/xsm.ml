(* xsm — command-line front end.

   Subcommands:
     validate  SCHEMA.xsd DOC.xml     validate a document against a schema
     check     SCHEMA.xsd             schema well-formedness (§3 + UPA)
     query     DOC.xml PATH           evaluate an XPath-subset query
     update    DOC.xml SCRIPT         run an update script, optionally with live indexes
     dataguide DOC.xml                print the descriptive schema (§9.1)
     labels    DOC.xml                print nodes with Sedna labels (§9.3)
     roundtrip SCHEMA.xsd DOC.xml     check g(f(X)) =_c X (§8)
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_schema path =
  match Xsm_xsd.Reader.schema_of_string (read_file path) with
  | Ok s -> Ok s
  | Error e -> Error (Printf.sprintf "%s: %s" path (Xsm_xsd.Reader.error_to_string e))

let load_document path =
  match Xsm_xml.Parser.parse_document (read_file path) with
  | Ok d -> Ok d
  | Error e -> Error (Printf.sprintf "%s: %s" path (Xsm_xml.Parser.error_to_string e))

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline msg;
    exit 2

(* ------------------------------------------------------------------ *)

let validate_cmd =
  let schema_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCHEMA" ~doc:"XSD schema file")
  in
  let doc_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"DOC" ~doc:"XML document file")
  in
  let run schema_path doc_path =
    let schema_doc = or_die (load_document schema_path) in
    let schema =
      match Xsm_xsd.Reader.schema_of_document schema_doc with
      | Ok s -> s
      | Error e ->
        prerr_endline (Xsm_xsd.Reader.error_to_string e);
        exit 2
    in
    (match Xsm_schema.Schema_check.check schema with
    | Ok () -> ()
    | Error es ->
      List.iter (fun e -> Format.eprintf "schema: %a@." Xsm_schema.Schema_check.pp_error e) es;
      exit 2);
    let constraints =
      match Xsm_xsd.Reader.constraints_of_document schema_doc with
      | Ok cs -> cs
      | Error e ->
        prerr_endline (Xsm_xsd.Reader.error_to_string e);
        exit 2
    in
    let doc = or_die (load_document doc_path) in
    match Xsm_schema.Validator.validate_document doc schema with
    | Ok (store, dnode) -> (
      match Xsm_identity.Constraint_def.check store dnode constraints with
      | Ok () ->
        Printf.printf "valid (%d nodes%s)\n" (Xsm_xdm.Store.node_count store)
          (if constraints = [] then ""
           else Printf.sprintf ", %d identity constraints" (List.length constraints))
      | Error vs ->
        List.iter
          (fun v -> Format.printf "%a@." Xsm_identity.Constraint_def.pp_violation v)
          vs;
        exit 1)
    | Error es ->
      List.iter (fun e -> print_endline (Xsm_schema.Validator.error_to_string e)) es;
      exit 1
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Validate a document against a schema (the \xc2\xa76.2 judgment)")
    Term.(const run $ schema_arg $ doc_arg)

let check_cmd =
  let schema_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCHEMA" ~doc:"XSD schema file")
  in
  let run schema_path =
    let schema = or_die (load_schema schema_path) in
    match Xsm_schema.Schema_check.check schema with
    | Ok () -> print_endline "well-formed"
    | Error es ->
      List.iter (fun e -> Format.printf "%a@." Xsm_schema.Schema_check.pp_error e) es;
      exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Check schema well-formedness (type usage, UPA, repetitions)")
    Term.(const run $ schema_arg)

let query_cmd =
  let doc_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC" ~doc:"XML document file")
  in
  let path_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"PATH" ~doc:"XPath-subset query")
  in
  let storage_flag =
    Arg.(value & flag & info [ "storage" ] ~doc:"Evaluate over the Sedna block storage")
  in
  let index_flag =
    Arg.(
      value & flag
      & info [ "index" ]
          ~doc:
            "Evaluate through the index subsystem (DataGuide path index + typed value \
             indexes); the plan is reported on stderr.  Unsupported queries fall back to \
             navigational evaluation.")
  in
  let run doc_path query use_storage use_index =
    let doc = or_die (load_document doc_path) in
    let store = Xsm_xdm.Store.create () in
    let dnode = Xsm_xdm.Convert.load store doc in
    if use_index then begin
      let explain_and_print eval_str explain values =
        match eval_str query with
        | Ok nodes ->
          Format.eprintf "plan: %s@." (explain query);
          List.iter print_endline (values nodes)
        | Error e ->
          prerr_endline e;
          exit 1
      in
      if use_storage then begin
        let module Pl = Xsm_xpath.Planner.Over_storage in
        let bs = Xsm_storage.Block_storage.of_store store dnode in
        let planner = Pl.create bs (Xsm_storage.Block_storage.root bs) in
        explain_and_print
          (fun q -> Pl.eval_string planner q)
          (fun q ->
            match Xsm_xpath.Path_parser.parse q with
            | Ok p -> Pl.explain planner p
            | Error e -> e)
          (List.map (Xsm_storage.Block_storage.string_value bs))
      end
      else begin
        let module Pl = Xsm_xpath.Planner.Over_store in
        let planner = Pl.create store dnode in
        explain_and_print
          (fun q -> Pl.eval_string planner q)
          (fun q ->
            match Xsm_xpath.Path_parser.parse q with
            | Ok p -> Pl.explain planner p
            | Error e -> e)
          (List.map (Xsm_xdm.Store.string_value store))
      end
    end
    else if use_storage then begin
      let bs = Xsm_storage.Block_storage.of_store store dnode in
      match Xsm_xpath.Schema_driven.eval_string bs query with
      | Ok descs ->
        List.iter (fun d -> print_endline (Xsm_storage.Block_storage.string_value bs d)) descs
      | Error _ -> (
        (* fall back to the navigational evaluator over descriptors *)
        match
          Xsm_xpath.Eval.Over_storage.eval_string bs (Xsm_storage.Block_storage.root bs) query
        with
        | Ok descs ->
          List.iter (fun d -> print_endline (Xsm_storage.Block_storage.string_value bs d)) descs
        | Error e ->
          prerr_endline e;
          exit 1)
    end
    else
      match Xsm_xpath.Eval.Over_store.eval_string store dnode query with
      | Ok nodes ->
        List.iter (fun n -> print_endline (Xsm_xdm.Store.string_value store n)) nodes
      | Error e ->
        prerr_endline e;
        exit 1
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Evaluate an XPath-subset query over a document")
    Term.(const run $ doc_arg $ path_arg $ storage_flag $ index_flag)

let update_cmd =
  let doc_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC" ~doc:"XML document file")
  in
  let script_arg =
    Arg.(
      required & pos 1 (some file) None
      & info [] ~docv:"SCRIPT"
          ~doc:
            "Update script: one command per line.  $(b,insert) PATH XML appends a parsed \
             fragment under the first node matching PATH; $(b,insert-text) PATH TEXT \
             appends a text node; $(b,delete) PATH unlinks the first match; $(b,content) \
             PATH VALUE replaces a text or attribute value; $(b,attr) PATH NAME VALUE \
             sets an attribute; $(b,query) PATH evaluates a query against the current \
             state.  Blank lines and lines starting with # are ignored.")
  in
  let index_flag =
    Arg.(
      value & flag
      & info [ "index" ]
          ~doc:
            "Evaluate queries through the index subsystem and keep the indexes live \
             across updates: the planner subscribes to the update journal and applies \
             each change differentially instead of rebuilding.  Maintenance statistics \
             are reported on stderr.")
  in
  let print_flag =
    Arg.(value & flag & info [ "print" ] ~doc:"Print the resulting document on stdout")
  in
  let split1 s =
    match String.index_opt s ' ' with
    | None -> (s, "")
    | Some i -> (String.sub s 0 i, String.trim (String.sub s (i + 1) (String.length s - i - 1)))
  in
  let run doc_path script_path use_index do_print =
    let module Store = Xsm_xdm.Store in
    let module Update = Xsm_schema.Update in
    let module Pl = Xsm_xpath.Planner.Over_store in
    let doc = or_die (load_document doc_path) in
    let store = Store.create () in
    let dnode = Xsm_xdm.Convert.load store doc in
    let journal = Update.Journal.create () in
    let planner =
      if use_index then begin
        let p = Pl.create store dnode in
        Xsm_xpath.Planner.attach_journal p journal;
        Some p
      end
      else None
    in
    let die fmt =
      Printf.ksprintf
        (fun s ->
          prerr_endline s;
          exit 1)
        fmt
    in
    let target q =
      match Xsm_xpath.Eval.Over_store.eval_string store dnode q with
      | Ok (n :: _) -> n
      | Ok [] -> die "%s: no matching node" q
      | Error e -> die "%s: %s" q e
    in
    let apply op =
      match Update.apply ~journal store op with Ok _ -> () | Error e -> die "update: %s" e
    in
    let fragment src =
      match Xsm_xml.Parser.parse_document src with
      | Ok d -> d.Xsm_xml.Tree.root
      | Error e -> die "fragment: %s" (Xsm_xml.Parser.error_to_string e)
    in
    let lineno = ref 0 in
    String.split_on_char '\n' (read_file script_path)
    |> List.iter (fun line ->
           incr lineno;
           let line = String.trim line in
           if line = "" || line.[0] = '#' then ()
           else
             let cmd, rest = split1 line in
             match cmd with
             | "insert" ->
               let path, xml = split1 rest in
               apply
                 (Update.Insert_element
                    { parent = target path; before = None; tree = fragment xml })
             | "insert-text" ->
               let path, text = split1 rest in
               apply (Update.Insert_text { parent = target path; before = None; text })
             | "delete" -> apply (Update.Delete (target rest))
             | "content" ->
               let path, value = split1 rest in
               apply (Update.Replace_content { node = target path; value })
             | "attr" ->
               let path, rest = split1 rest in
               let name, value = split1 rest in
               apply
                 (Update.Set_attribute
                    { element = target path; name = Xsm_xml.Name.local name; value })
             | "query" -> (
               let print_nodes nodes =
                 List.iter (fun n -> print_endline (Store.string_value store n)) nodes
               in
               match planner with
               | Some p -> (
                 match Pl.eval_string p rest with
                 | Ok nodes ->
                   (match Xsm_xpath.Path_parser.parse rest with
                   | Ok parsed -> Format.eprintf "plan: %s@." (Pl.explain p parsed)
                   | Error _ -> ());
                   print_nodes nodes
                 | Error e -> die "%s: %s" rest e)
               | None -> (
                 match Xsm_xpath.Eval.Over_store.eval_string store dnode rest with
                 | Ok nodes -> print_nodes nodes
                 | Error e -> die "%s: %s" rest e))
             | other -> die "line %d: unknown command %S" !lineno other);
    (match planner with
    | Some p ->
      let s = Pl.maintenance_stats p in
      Format.eprintf "maintenance: epochs=%d applied=%d vi_drops=%d@."
        s.Xsm_xpath.Planner.epochs s.Xsm_xpath.Planner.applied s.Xsm_xpath.Planner.vi_drops
    | None -> ());
    if do_print then
      print_string (Xsm_xml.Printer.to_string (Xsm_xdm.Convert.to_document store dnode))
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:
         "Apply an update script to a document, interleaving queries; with $(b,--index) \
          the indexes are maintained differentially across the updates")
    Term.(const run $ doc_arg $ script_arg $ index_flag $ print_flag)

let dataguide_cmd =
  let doc_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC" ~doc:"XML document file")
  in
  let run doc_path =
    let doc = or_die (load_document doc_path) in
    let store = Xsm_xdm.Store.create () in
    let dnode = Xsm_xdm.Convert.load store doc in
    let ds, _ = Xsm_storage.Descriptive_schema.of_tree store dnode in
    Format.printf "%a" Xsm_storage.Descriptive_schema.pp ds;
    Printf.printf "(%d schema nodes for %d document nodes)\n"
      (Xsm_storage.Descriptive_schema.node_count ds)
      (Xsm_xdm.Store.node_count store)
  in
  Cmd.v
    (Cmd.info "dataguide" ~doc:"Print the descriptive schema (\xc2\xa79.1)")
    Term.(const run $ doc_arg)

let labels_cmd =
  let doc_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC" ~doc:"XML document file")
  in
  let run doc_path =
    let doc = or_die (load_document doc_path) in
    let store = Xsm_xdm.Store.create () in
    let dnode = Xsm_xdm.Convert.load store doc in
    let t = Xsm_numbering.Labeler.label_tree store dnode in
    List.iter
      (fun n ->
        Format.printf "%a  %a@."
          Xsm_numbering.Sedna_label.pp
          (Xsm_numbering.Labeler.label t n)
          (Xsm_xdm.Store.pp_node store) n)
      (Xsm_xdm.Order.nodes_in_order store dnode)
  in
  Cmd.v
    (Cmd.info "labels" ~doc:"Print every node with its Sedna numbering label (\xc2\xa79.3)")
    Term.(const run $ doc_arg)

let canonicalize_cmd =
  let schema_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCHEMA" ~doc:"XSD schema file")
  in
  let run schema_path =
    let schema = or_die (load_schema schema_path) in
    let simplified = Xsm_schema.Canonical.simplify_schema schema in
    print_string (Xsm_xsd.Writer.to_string simplified)
  in
  Cmd.v
    (Cmd.info "canonicalize"
       ~doc:"Print the schema with canonicalized (simplified) content models")
    Term.(const run $ schema_arg)

let flwor_cmd =
  let doc_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC" ~doc:"XML document file")
  in
  let query_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc:"FLWOR query")
  in
  let run doc_path query =
    let doc = or_die (load_document doc_path) in
    let store = Xsm_xdm.Store.create () in
    let dnode = Xsm_xdm.Convert.load store doc in
    match Xsm_xpath.Flwor.Over_store.eval_string store dnode query with
    | Ok items ->
      List.iter print_endline (Xsm_xpath.Flwor.Over_store.strings store items)
    | Error e ->
      prerr_endline e;
      exit 1
  in
  Cmd.v
    (Cmd.info "flwor"
       ~doc:"Evaluate a FLWOR query (for/let/where/order by/return) over a document")
    Term.(const run $ doc_arg $ query_arg)

let roundtrip_cmd =
  let schema_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCHEMA" ~doc:"XSD schema file")
  in
  let doc_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"DOC" ~doc:"XML document file")
  in
  let run schema_path doc_path =
    let schema = or_die (load_schema schema_path) in
    let doc = or_die (load_document doc_path) in
    match Xsm_schema.Roundtrip.holds_for doc schema with
    | Ok true -> print_endline "g(f(X)) =_c X holds"
    | Ok false ->
      print_endline "round-trip produced a different document";
      exit 1
    | Error es ->
      List.iter (fun e -> print_endline (Xsm_schema.Validator.error_to_string e)) es;
      exit 1
  in
  Cmd.v
    (Cmd.info "roundtrip" ~doc:"Check the \xc2\xa78 theorem for one document")
    Term.(const run $ schema_arg $ doc_arg)

let () =
  let info =
    Cmd.info "xsm" ~version:"1.0.0"
      ~doc:"A formal model of XML Schema: validation, storage and numbering tools"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            validate_cmd; check_cmd; canonicalize_cmd; query_cmd; update_cmd; flwor_cmd;
            dataguide_cmd; labels_cmd; roundtrip_cmd;
          ]))
