(* xsm — command-line front end.

   Subcommands:
     validate  SCHEMA.xsd DOC.xml     validate a document against a schema
                                      (--stream: one SAX pass, O(depth) memory)
     load      DOC.xml                bulk-load a document into block storage from
                                      a SAX event stream (WAL, indexes, validation)
     check     SCHEMA.xsd             schema well-formedness (§3 + UPA)
     analyze   SCHEMA.xsd             static analysis: UPA witnesses, reachability,
                                      satisfiability, cardinalities, query pruning
     query     DOC.xml PATH           evaluate an XPath-subset query
     update    DOC.xml SCRIPT         run an update script, optionally with live
                                      indexes and a write-ahead log
     snapshot  DOC.xml OUT            write a binary snapshot of the loaded store
     recover   SNAP                   load a snapshot and replay a WAL tail
     dataguide DOC.xml                print the descriptive schema (§9.1)
     labels    DOC.xml                print nodes with Sedna labels (§9.3)
     roundtrip SCHEMA.xsd DOC.xml     check g(f(X)) =_c X (§8)
     stats     DOC.xml SCRIPT         replay a workload, print the metrics
                                      registry as JSON (DESIGN.md §10)
     serve                            run the concurrent session daemon over a
                                      Unix socket (DESIGN.md §12): parallel
                                      snapshot reads, group-committed writes
     client    --socket PATH          one-shot request against a running daemon
     bench-serve                      closed-loop daemon load generator (E17)

   validate/query/update/recover also take --trace FILE.json (Chrome
   trace_event export, including per-element detail spans) and
   --metrics (registry dump to stderr on exit).

   Exit codes: 0 ok; 1 invalid input (validation failure, bad script
   line, failed query); 2 unusable arguments or unreadable files;
   3 corrupt persistent input (a --wal file that is not a WAL) or an
   injected WAL crash point fired (fault-injection runs only). *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_schema path =
  match Xsm_xsd.Reader.schema_of_string (read_file path) with
  | Ok s -> Ok s
  | Error e -> Error (Printf.sprintf "%s: %s" path (Xsm_xsd.Reader.error_to_string e))

let load_document path =
  match Xsm_xml.Parser.parse_document (read_file path) with
  | Ok d -> Ok d
  | Error e -> Error (Printf.sprintf "%s: %s" path (Xsm_xml.Parser.error_to_string e))

(* '-' denotes standard input for document positionals; Arg.file would
   reject it, so these take plain strings and resolve them here. *)
let read_doc_source path =
  if path = "-" then In_channel.input_all stdin
  else if Sys.file_exists path then read_file path
  else begin
    Printf.eprintf "%s: no such file or directory\n" path;
    exit 2
  end

let with_doc_channel path f =
  if path = "-" then f stdin
  else if Sys.file_exists path then begin
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)
  end
  else begin
    Printf.eprintf "%s: no such file or directory\n" path;
    exit 2
  end

let load_document_source path =
  match Xsm_xml.Parser.parse_document (read_doc_source path) with
  | Ok d -> Ok d
  | Error e -> Error (Printf.sprintf "%s: %s" path (Xsm_xml.Parser.error_to_string e))

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline msg;
    exit 2

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline s;
      exit 2)
    fmt

(* Corrupt persistent input — a WAL that is not a WAL — exits 3, the
   shared corrupt-input code; environmental failures stay at 2. *)
let die_wal_error e =
  prerr_endline (Xsm_persist.Wal.error_message e);
  exit (match e with Xsm_persist.Wal.Not_a_wal _ -> 3 | Xsm_persist.Wal.Io _ -> 2)

let die_recovery_error e =
  prerr_endline (Xsm_persist.Recovery.error_message e);
  exit
    (match e with
    | Xsm_persist.Recovery.Corrupt_wal _ -> 3
    | Xsm_persist.Recovery.Failed _ -> 2)

let report_pager bs =
  match Xsm_storage.Block_storage.pager bs with
  | None -> ()
  | Some p ->
    let s = Xsm_pager.Pager.stats p in
    Printf.eprintf "pager: %d accesses (%d hits), %d reads, %d writes, %d evictions%s%s\n"
      s.Xsm_pager.Pager.accesses s.hits s.reads s.writes s.evictions
      (if s.pin_overflows = 0 then ""
       else Printf.sprintf ", %d pin overflows" s.pin_overflows)
      (match Xsm_pager.Pager.hit_ratio s with
      | Some r -> Printf.sprintf ", hit ratio %.3f" r
      | None -> "")

(* Differential-maintenance stats, as the historical prose line plus a
   bare JSON object on its own stderr line — scripts extract the
   latter with [grep '^{"maintenance"' | jq] instead of pattern-matching
   the prose. *)
let report_maintenance (s : Xsm_xpath.Planner.maintenance_stats) =
  Format.eprintf "maintenance: epochs=%d applied=%d vi_drops=%d@."
    s.Xsm_xpath.Planner.epochs s.Xsm_xpath.Planner.applied
    s.Xsm_xpath.Planner.vi_drops;
  let module J = Xsm_obs.Json in
  Format.eprintf "%s@."
    (J.to_string
       (J.Obj
          [
            ( "maintenance",
              J.Obj
                [
                  ("epochs", J.int s.Xsm_xpath.Planner.epochs);
                  ("applied", J.int s.Xsm_xpath.Planner.applied);
                  ("vi_drops", J.int s.Xsm_xpath.Planner.vi_drops);
                ] );
          ]))

(* ------------------------------------------------------------------ *)
(* Telemetry: --trace/--metrics, shared by the data-touching commands.
   Exporting runs from at_exit so a mid-run [exit] (script errors,
   injected crashes) still flushes what was recorded. *)

module Obs = Xsm_obs.Obs
module Trace = Xsm_obs.Trace
module Metrics = Xsm_obs.Metrics

let setup_obs trace_path metrics =
  if trace_path <> None then Obs.enable ~detail:true ();
  if trace_path <> None || metrics then
    at_exit (fun () ->
        (match trace_path with
        | None -> ()
        | Some p -> (
          match Trace.write_chrome p with
          | Ok () -> ()
          | Error e -> Printf.eprintf "trace: %s\n" e));
        if metrics then Format.eprintf "%a@." Metrics.pp Metrics.default)

let obs_term =
  let trace_arg =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record a span trace of the run (including per-element detail spans) and \
             write it to $(docv) as Chrome trace_event JSON — load the file in \
             chrome://tracing or Perfetto.")
  in
  let metrics_flag =
    Arg.(
      value & flag
      & info [ "metrics" ] ~doc:"Dump the metrics registry on stderr when the command exits.")
  in
  Term.(const setup_obs $ trace_arg $ metrics_flag)

(* ------------------------------------------------------------------ *)

let validate_cmd =
  let schema_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCHEMA" ~doc:"XSD schema file")
  in
  let doc_arg =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"DOC" ~doc:"XML document file ($(b,-) reads standard input)")
  in
  let stream_flag =
    Arg.(
      value & flag
      & info [ "stream" ]
          ~doc:
            "Validate in one streaming pass over SAX events: constant memory in the \
             document (O(depth) state), diagnostics with line and column.  Identity \
             constraints declared in the schema are not checked in this mode.")
  in
  let run () schema_path doc_path stream =
    let schema_doc = or_die (load_document schema_path) in
    let schema =
      match Xsm_xsd.Reader.schema_of_document schema_doc with
      | Ok s -> s
      | Error e ->
        prerr_endline (Xsm_xsd.Reader.error_to_string e);
        exit 2
    in
    (* the analyzer subsumes Schema_check and prints diagnostics in
       the same format as `xsm analyze`; its determinized content
       models are reused below so validation compiles nothing *)
    let report =
      Trace.with_span "validate.analyze" (fun () -> Xsm_analysis.Analyzer.analyze schema)
    in
    let fatal =
      List.filter
        (fun (f : Xsm_analysis.Analyzer.finding) -> f.severity = Xsm_analysis.Analyzer.Error)
        report.Xsm_analysis.Analyzer.findings
    in
    if fatal <> [] then begin
      List.iter (fun f -> Format.eprintf "%a@." Xsm_analysis.Analyzer.pp_finding f) fatal;
      exit 2
    end;
    let constraints =
      match Xsm_xsd.Reader.constraints_of_document schema_doc with
      | Ok cs -> cs
      | Error e ->
        prerr_endline (Xsm_xsd.Reader.error_to_string e);
        exit 2
    in
    if stream then begin
      if constraints <> [] then
        Printf.eprintf
          "warning: %d identity constraint(s) not checked in streaming mode\n"
          (List.length constraints);
      with_doc_channel doc_path (fun ic ->
          let sax = Xsm_stream.Sax.of_channel ic in
          match
            Xsm_stream.Stream_validator.run ~automata:report.Xsm_analysis.Analyzer.tables
              schema sax
          with
          | Ok stats ->
            Printf.printf "valid (%d elements, depth %d%s)\n"
              stats.Xsm_stream.Stream_validator.elements
              stats.Xsm_stream.Stream_validator.max_depth
              (if stats.Xsm_stream.Stream_validator.fallback_steps = 0 then ""
               else
                 Printf.sprintf ", %d non-UPA fallback steps"
                   stats.Xsm_stream.Stream_validator.fallback_steps)
          | Error es ->
            List.iter
              (fun e -> print_endline (Xsm_stream.Stream_validator.error_to_string e))
              es;
            exit 1
          | exception Xsm_xml.Parser.Syntax e ->
            Printf.eprintf "%s: %s\n" doc_path (Xsm_xml.Parser.error_to_string e);
            exit 2)
    end
    else begin
      let doc =
        Trace.with_span "validate.parse" (fun () -> or_die (load_document_source doc_path))
      in
      match
        Xsm_schema.Validator.validate_document
          ~automata:report.Xsm_analysis.Analyzer.tables doc schema
      with
      | Ok (store, dnode) -> (
        match Xsm_identity.Constraint_def.check store dnode constraints with
        | Ok () ->
          Printf.printf "valid (%d nodes%s)\n" (Xsm_xdm.Store.node_count store)
            (if constraints = [] then ""
             else Printf.sprintf ", %d identity constraints" (List.length constraints))
        | Error vs ->
          List.iter
            (fun v -> Format.printf "%a@." Xsm_identity.Constraint_def.pp_violation v)
            vs;
          exit 1)
      | Error es ->
        List.iter (fun e -> print_endline (Xsm_schema.Validator.error_to_string e)) es;
        exit 1
    end
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Validate a document against a schema (the \xc2\xa76.2 judgment)")
    Term.(const run $ obs_term $ schema_arg $ doc_arg $ stream_flag)

let load_cmd =
  let module S = Xsm_stream in
  let module Bs = Xsm_storage.Block_storage in
  let module Wal = Xsm_persist.Wal in
  let module Pl = Xsm_xpath.Planner.Over_storage in
  let doc_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"DOC" ~doc:"XML document file ($(b,-) reads standard input)")
  in
  let schema_arg =
    Arg.(
      value & opt (some file) None
      & info [ "schema" ] ~docv:"SCHEMA"
          ~doc:
            "Validate against $(docv) while loading, in the same streaming pass; \
             validation errors are reported after the load and exit with code 1.")
  in
  let capacity_arg =
    Arg.(
      value & opt int 64
      & info [ "block-capacity" ] ~docv:"N"
          ~doc:"Descriptors per storage block (default 64).")
  in
  let page_file_arg =
    Arg.(
      value & opt (some string) None
      & info [ "page-file" ] ~docv:"FILE"
          ~doc:
            "Page the storage through a bounded buffer pool backed by $(docv): block \
             values spill to disk under 2Q replacement as the load outgrows the pool, \
             and the file is checkpointed when the load completes — so it alone \
             reconstructs the store.")
  in
  let pool_capacity_arg =
    Arg.(
      value & opt int 64
      & info [ "pool-capacity" ] ~docv:"N"
          ~doc:"Buffer-pool capacity in blocks with $(b,--page-file) (default 64).")
  in
  let wal_arg =
    Arg.(
      value & opt (some string) None
      & info [ "wal" ] ~docv:"FILE"
          ~doc:
            "Log the load to $(docv) as one record per completed top-level subtree, so \
             a crash mid-load recovers to the longest fully-loaded prefix.")
  in
  let snapshot_arg =
    Arg.(
      value & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Write the recovery base — the bare root element, captured when its start \
             tag completes — to $(docv) before any WAL record is appended.")
  in
  let sync_every_arg =
    Arg.(
      value & opt int 1
      & info [ "sync-every" ] ~docv:"N"
          ~doc:"Fsync the WAL after every $(docv)-th record (default 1: every record).")
  in
  let crash_after_arg =
    Arg.(
      value & opt (some int) None
      & info [ "crash-after" ] ~docv:"N"
          ~doc:
            "Fault injection: once $(docv) WAL records are fully on disk, abort \
             mid-write of the next record and exit with code 3 (requires $(b,--wal)).")
  in
  let crash_partial_arg =
    Arg.(
      value & opt int 0
      & info [ "crash-partial" ] ~docv:"BYTES"
          ~doc:
            "With $(b,--crash-after): leave $(docv) bytes of the torn record behind \
             (0 = cut cleanly at the record boundary).")
  in
  let index_flag =
    Arg.(
      value & flag
      & info [ "index" ]
          ~doc:
            "Build the index planner over the storage as it loads: each completed \
             top-level subtree is fed to the indexes differentially.  Maintenance \
             statistics are reported on stderr.")
  in
  let query_arg =
    Arg.(
      value & opt (some string) None
      & info [ "query" ] ~docv:"PATH"
          ~doc:"Evaluate a query over the loaded storage (through the planner with \
                $(b,--index)).")
  in
  let stats_flag =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print storage statistics and run the block-level integrity check.")
  in
  let print_flag =
    Arg.(value & flag & info [ "print" ] ~doc:"Print the loaded document on stdout")
  in
  let run () doc_path schema_path capacity page_path pool_capacity wal_path snap_path
      sync_every crash_after crash_partial use_index query with_stats do_print =
    let die fmt =
      Printf.ksprintf
        (fun s ->
          prerr_endline s;
          exit 2)
        fmt
    in
    (* schema gate mirrors `xsm validate`: the analyzer's fatal findings
       refuse the run, its tables seed the streaming validator *)
    let validator =
      Option.map
        (fun sp ->
          let schema_doc = or_die (load_document sp) in
          let schema =
            match Xsm_xsd.Reader.schema_of_document schema_doc with
            | Ok s -> s
            | Error e ->
              prerr_endline (Xsm_xsd.Reader.error_to_string e);
              exit 2
          in
          let report = Xsm_analysis.Analyzer.analyze schema in
          let fatal =
            List.filter
              (fun (f : Xsm_analysis.Analyzer.finding) ->
                f.severity = Xsm_analysis.Analyzer.Error)
              report.Xsm_analysis.Analyzer.findings
          in
          if fatal <> [] then begin
            List.iter
              (fun f -> Format.eprintf "%a@." Xsm_analysis.Analyzer.pp_finding f)
              fatal;
            exit 2
          end;
          (match Xsm_xsd.Reader.constraints_of_document schema_doc with
          | Ok [] | Error _ -> ()
          | Ok cs ->
            Printf.eprintf "warning: %d identity constraint(s) not checked in streaming mode\n"
              (List.length cs));
          S.Stream_validator.create ~automata:report.Xsm_analysis.Analyzer.tables schema)
        schema_path
    in
    let wal =
      match wal_path with
      | None ->
        if crash_after <> None then die "--crash-after requires --wal";
        None
      | Some p -> (
        (* a fresh snapshot is a fresh base: pair it with an empty WAL *)
        if snap_path <> None && Sys.file_exists p then Sys.remove p;
        let crash =
          Option.map
            (fun n -> { Wal.after_records = n; partial_bytes = crash_partial })
            crash_after
        in
        match Wal.Writer.create ?crash ~sync_every p with
        | Ok w -> Some w
        | Error e -> die_wal_error e)
    in
    let on_root =
      Option.map
        (fun sp root_elem ->
          let store = Xsm_xdm.Store.create () in
          let dnode = Xsm_xdm.Convert.load store (Xsm_xml.Tree.document root_elem) in
          match Xsm_persist.Snapshot.save ~path:sp store dnode with
          | Ok _ -> ()
          | Error e -> die "%s" e)
        snap_path
    in
    let bl = S.Bulk_load.create ~block_capacity:capacity ?wal ?on_root () in
    let page =
      Option.map
        (fun pp ->
          let storage = S.Bulk_load.storage bl in
          let pf = Xsm_pager.Page_file.create pp in
          ignore
            (Bs.attach_pager
               ?wal:(Option.map Wal.Writer.pager_hook wal)
               storage ~capacity:pool_capacity pf);
          (* during the streaming build a block's latest changes are
             covered by the subtree record that has not landed yet:
             stamp one past the current record, so unlogged state is
             unstealable until its record is durable *)
          (match wal with
          | Some w -> Bs.set_lsn_source storage (fun () -> Wal.Writer.lsn w + 1)
          | None -> ());
          pf)
        page_path
    in
    let planner =
      if use_index then Some (Pl.create (S.Bulk_load.storage bl) (Bs.root (S.Bulk_load.storage bl)))
      else None
    in
    let feed_planner () =
      match planner with
      | None -> ()
      | Some p -> (
        match S.Bulk_load.drain_completed bl with
        | [] -> ()
        | ds -> Pl.apply_changes p (List.map (fun d -> Pl.Node_added d) ds))
    in
    let guard f =
      try f () with
      | Xsm_xml.Parser.Syntax e ->
        Printf.eprintf "%s: %s\n" doc_path (Xsm_xml.Parser.error_to_string e);
        exit 2
      | Wal.Crashed ->
        (match wal with
        | Some w ->
          Printf.eprintf "wal: injected crash after %d records\n" (Wal.Writer.records_written w)
        | None -> ());
        exit 3
    in
    let storage, lstats =
      guard (fun () ->
          with_doc_channel doc_path (fun ic ->
              let sax = S.Sax.of_channel ic in
              let rec loop () =
                match S.Sax.next sax with
                | None -> ()
                | Some ev ->
                  S.Bulk_load.feed bl ev;
                  (match validator with
                  | Some v -> S.Stream_validator.feed v ev (S.Sax.event_position sax)
                  | None -> ());
                  feed_planner ();
                  loop ()
              in
              loop ();
              S.Bulk_load.finish bl))
    in
    feed_planner ();
    (* checkpoint before closing the WAL: flushing dirty blocks may
       force a final sync of the records covering them *)
    (match page with
    | None -> ()
    | Some _ ->
      guard (fun () ->
          Bs.checkpoint storage
            ~lsn:(match wal with Some w -> Wal.Writer.lsn w | None -> 0));
      report_pager storage);
    (match wal with Some w -> Wal.Writer.close w | None -> ());
    (* summary and stats go to stderr so --print output stays a clean
       document, comparable byte-for-byte with [xsm recover --print] *)
    Printf.eprintf "loaded %d elements, %d attributes, %d texts (depth %d, %d blocks%s)\n"
      lstats.S.Bulk_load.elements lstats.S.Bulk_load.attributes lstats.S.Bulk_load.texts
      lstats.S.Bulk_load.max_depth (Bs.block_count storage)
      (if lstats.S.Bulk_load.wal_records = 0 then ""
       else Printf.sprintf ", %d WAL records" lstats.S.Bulk_load.wal_records);
    if with_stats then begin
      Printf.eprintf "descriptors %d, splits %d, schema nodes %d\n"
        (Bs.descriptor_count storage) (Bs.split_count storage)
        (Xsm_storage.Descriptive_schema.node_count (Bs.schema storage));
      match Bs.check_integrity storage with
      | Ok () -> prerr_endline "integrity ok"
      | Error e ->
        Printf.eprintf "integrity violated: %s\n" e;
        exit 1
    end;
    (match planner with
    | Some p -> report_maintenance (Pl.maintenance_stats p)
    | None -> ());
    (match query with
    | None -> ()
    | Some q -> (
      let print_descs ds =
        List.iter (fun d -> print_endline (Bs.string_value storage d)) ds
      in
      match planner with
      | Some p -> (
        match Pl.eval_string p q with
        | Ok ds ->
          (match Xsm_xpath.Path_parser.parse q with
          | Ok parsed -> Format.eprintf "plan: %s@." (Pl.explain p parsed)
          | Error _ -> ());
          print_descs ds
        | Error e ->
          prerr_endline e;
          exit 1)
      | None -> (
        match Xsm_xpath.Eval.Over_storage.eval_string storage (Bs.root storage) q with
        | Ok ds -> print_descs ds
        | Error e ->
          prerr_endline e;
          exit 1)));
    if do_print then print_string (Xsm_xml.Printer.to_string (Bs.to_document storage));
    (* the page file outlives the checkpoint: --stats, --query and
       --print above all fault pages back in *)
    (match page with Some pf -> Xsm_pager.Page_file.close pf | None -> ());
    match Option.map S.Stream_validator.finish validator with
    | Some (Error es) ->
      List.iter (fun e -> print_endline (S.Stream_validator.error_to_string e)) es;
      exit 1
    | Some (Ok _) | None -> ()
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Bulk-load a document into the Sedna block storage from a stream of SAX \
          events: document-order tail appends, counter-encoded \xc2\xa79.3 labels, \
          optional same-pass validation, WAL durability and differential index \
          maintenance — without ever materializing the tree")
    Term.(
      const run $ obs_term $ doc_arg $ schema_arg $ capacity_arg $ page_file_arg
      $ pool_capacity_arg $ wal_arg $ snapshot_arg $ sync_every_arg $ crash_after_arg
      $ crash_partial_arg $ index_flag $ query_arg $ stats_flag $ print_flag)

let check_cmd =
  let schema_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCHEMA" ~doc:"XSD schema file")
  in
  let run schema_path =
    let schema = or_die (load_schema schema_path) in
    match Xsm_schema.Schema_check.check schema with
    | Ok () -> print_endline "well-formed"
    | Error es ->
      List.iter (fun e -> Format.printf "%a@." Xsm_schema.Schema_check.pp_error e) es;
      exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Check schema well-formedness (type usage, UPA, repetitions)")
    Term.(const run $ schema_arg)

let analyze_cmd =
  let module A = Xsm_analysis.Analyzer in
  let schema_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCHEMA" ~doc:"XSD schema file")
  in
  let query_arg =
    Arg.(
      value & opt (some string) None
      & info [ "query" ] ~docv:"PATH"
          ~doc:
            "Also analyze this XPath-subset query against the schema: report whether \
             it is statically empty (provably selects nothing on any valid document) \
             and warn about value comparisons that can never hold.")
  in
  let cardinalities_flag =
    Arg.(
      value & flag
      & info [ "cardinalities" ]
          ~doc:"Print the min/max occurrence interval of every element path.")
  in
  let cost_flag =
    Arg.(
      value & flag
      & info [ "cost" ]
          ~doc:
            "With $(b,--query): price the query without any data — estimated row \
             interval and navigational cost from occurrence intervals composed along \
             the schema DataGuide.  The report is a single JSON object on stdout; \
             diagnostics move to stderr.")
  in
  let run schema_path query_text with_cardinalities with_cost =
    if with_cost && query_text = None then die "analyze: --cost requires --query";
    let schema = or_die (load_schema schema_path) in
    let query =
      Option.map
        (fun q ->
          match Xsm_xpath.Path_parser.parse q with
          | Ok p -> p
          | Error e ->
            Printf.eprintf "query: %s\n" e;
            exit 2)
        query_text
    in
    let report = A.analyze ?query schema in
    (* with --cost, stdout carries exactly one JSON object *)
    let out fmt = if with_cost then Format.eprintf fmt else Format.printf fmt in
    List.iter (fun f -> out "%a@." A.pp_finding f) report.A.findings;
    if with_cardinalities then
      List.iter
        (fun (path, iv, recursive) ->
          out "cardinality %s %s%s@." path (Xsm_analysis.Cardinality.to_string iv)
            (if recursive then " (recursive)" else ""))
        report.A.cardinalities;
    let statically_empty =
      List.exists
        (fun (f : A.finding) ->
          f.pass = "query"
          && String.length f.message >= 16
          && String.sub f.message 0 16 = "statically empty")
        report.A.findings
    in
    (match query_text with
    | Some text when not statically_empty ->
      out "query %s: no static emptiness proof (may select nodes)@." text
    | _ -> ());
    (match (with_cost, report.A.graph, query) with
    | true, Some g, Some q ->
      print_endline (Xsm_obs.Json.to_string (Xsm_analysis.Estimator.report g q))
    | true, None, _ ->
      () (* schema findings below exit 2 without a costable graph *)
    | _ -> ());
    match A.significant report with
    | [] ->
      out "clean: %d content models determinized, %d element paths@."
        (List.length report.A.tables)
        (List.length report.A.cardinalities)
    | fs ->
      Printf.eprintf "%d finding(s)\n" (List.length fs);
      exit 2
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run the static analyzer over a schema: Unique Particle Attribution with \
          shortest ambiguous witness words, reachability of type definitions, \
          satisfiability of content models, per-path cardinality intervals, and — \
          with $(b,--query) — schema-aware static query analysis ($(b,--cost) prices \
          the query from the schema alone).  Exits 2 when any error or warning is \
          found.")
    Term.(const run $ schema_arg $ query_arg $ cardinalities_flag $ cost_flag)

let query_cmd =
  let doc_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC" ~doc:"XML document file")
  in
  let path_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"PATH" ~doc:"XPath-subset query")
  in
  let storage_flag =
    Arg.(value & flag & info [ "storage" ] ~doc:"Evaluate over the Sedna block storage")
  in
  let page_file_arg =
    Arg.(
      value & opt (some string) None
      & info [ "page-file" ] ~docv:"FILE"
          ~doc:
            "With $(b,--storage): page the block storage through a bounded buffer pool \
             backed by $(docv), so evaluation faults blocks in and out of memory; pool \
             statistics are reported on stderr.")
  in
  let pool_capacity_arg =
    Arg.(
      value & opt int 8
      & info [ "pool-capacity" ] ~docv:"N"
          ~doc:"Buffer-pool capacity in blocks with $(b,--page-file) (default 8).")
  in
  let index_flag =
    Arg.(
      value & flag
      & info [ "index" ]
          ~doc:
            "Evaluate through the index subsystem (DataGuide path index + typed value \
             indexes); the plan is reported on stderr.  Unsupported queries fall back to \
             navigational evaluation.")
  in
  let schema_flag =
    Arg.(
      value & opt (some file) None
      & info [ "schema" ] ~docv:"SCHEMA"
          ~doc:
            "Enable schema-aware pruning and predicate folding: queries the static \
             analyzer proves empty on every $(docv)-valid document are answered \
             without touching the data, and predicates it proves always true are \
             dropped before planning.  The document is assumed valid against the \
             schema.")
  in
  let explain_flag =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "With $(b,--index): print the structured plan as a single JSON object on \
             stdout — chosen route, estimated vs. actual rows with the \
             interval-containment flag, per-predicate strategy decisions with both \
             prices, maintenance statistics — instead of the result nodes.")
  in
  let run () doc_path query use_storage page_path pool_capacity use_index schema_path
      explain_mode =
    if page_path <> None && not use_storage then die "query: --page-file requires --storage";
    if explain_mode && not use_index then die "query: --explain requires --index";
    (* cold-start the pool before evaluating: attach (resident, dirty),
       flush and drop everything, so the query's accesses are real
       faults against the page file, not warm hits *)
    let paged bs =
      Option.iter
        (fun pp ->
          let p =
            Xsm_storage.Block_storage.attach_pager bs ~capacity:pool_capacity
              (Xsm_pager.Page_file.create pp)
          in
          Xsm_pager.Pager.clear p;
          Xsm_pager.Pager.reset_stats p)
        page_path
    in
    Trace.with_span "query" ~attrs:[ ("path", query) ] @@ fun () ->
    let store, dnode =
      Trace.with_span "query.parse" (fun () ->
          let doc = or_die (load_document doc_path) in
          let store = Xsm_xdm.Store.create () in
          (store, Xsm_xdm.Convert.load store doc))
    in
    let schema = Option.map (fun sp -> or_die (load_schema sp)) schema_path in
    let pruner = Option.map Xsm_analysis.Query_static.pruner schema in
    let rewriter = Option.map Xsm_analysis.Query_static.rewriter schema in
    (* without the planner, consult the oracle up front: a provably
       empty query needs no evaluation at all *)
    (match pruner with
    | Some f when not use_index -> (
      match Xsm_xpath.Path_parser.parse query with
      | Ok p -> (
        match f p with
        | Some reason ->
          Format.eprintf "plan: pruned(%s)@." reason;
          exit 0
        | None -> ())
      | Error _ -> () (* the evaluator will report the parse error *))
    | Some _ | None -> ());
    if use_index then begin
      let explain_and_print eval_str explain explain_json values =
        if explain_mode then
          match Xsm_xpath.Path_parser.parse query with
          | Ok p ->
            print_endline (Xsm_obs.Json.to_string (explain_json p));
            Format.eprintf "plan: %s@." (explain query)
          | Error e ->
            prerr_endline e;
            exit 1
        else
          match Trace.with_span "query.execute" (fun () -> eval_str query) with
          | Ok nodes ->
            Format.eprintf "plan: %s@." (explain query);
            List.iter print_endline (values nodes)
          | Error e ->
            prerr_endline e;
            exit 1
      in
      if use_storage then begin
        let module Pl = Xsm_xpath.Planner.Over_storage in
        let bs = Xsm_storage.Block_storage.of_store store dnode in
        paged bs;
        let planner =
          Trace.with_span "query.plan" (fun () ->
              let p = Pl.create bs (Xsm_storage.Block_storage.root bs) in
              Option.iter (Pl.set_pruner p) pruner;
              Option.iter (Pl.set_rewriter p) rewriter;
              p)
        in
        explain_and_print
          (fun q -> Pl.eval_string planner q)
          (fun q ->
            match Xsm_xpath.Path_parser.parse q with
            | Ok p -> Pl.explain planner p
            | Error e -> e)
          (Pl.explain_json planner)
          (List.map (Xsm_storage.Block_storage.string_value bs));
        report_pager bs
      end
      else begin
        let module Pl = Xsm_xpath.Planner.Over_store in
        let planner =
          Trace.with_span "query.plan" (fun () ->
              let p = Pl.create store dnode in
              Option.iter (Pl.set_pruner p) pruner;
              Option.iter (Pl.set_rewriter p) rewriter;
              p)
        in
        explain_and_print
          (fun q -> Pl.eval_string planner q)
          (fun q ->
            match Xsm_xpath.Path_parser.parse q with
            | Ok p -> Pl.explain planner p
            | Error e -> e)
          (Pl.explain_json planner)
          (List.map (Xsm_xdm.Store.string_value store))
      end
    end
    else if use_storage then begin
      let bs = Xsm_storage.Block_storage.of_store store dnode in
      paged bs;
      (match
         Trace.with_span "query.execute" (fun () -> Xsm_xpath.Schema_driven.eval_string bs query)
       with
      | Ok descs ->
        List.iter (fun d -> print_endline (Xsm_storage.Block_storage.string_value bs d)) descs
      | Error _ -> (
        (* fall back to the navigational evaluator over descriptors *)
        match
          Xsm_xpath.Eval.Over_storage.eval_string bs (Xsm_storage.Block_storage.root bs) query
        with
        | Ok descs ->
          List.iter (fun d -> print_endline (Xsm_storage.Block_storage.string_value bs d)) descs
        | Error e ->
          prerr_endline e;
          exit 1));
      report_pager bs
    end
    else
      match
        Trace.with_span "query.execute" (fun () ->
            Xsm_xpath.Eval.Over_store.eval_string store dnode query)
      with
      | Ok nodes ->
        List.iter (fun n -> print_endline (Xsm_xdm.Store.string_value store n)) nodes
      | Error e ->
        prerr_endline e;
        exit 1
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Evaluate an XPath-subset query over a document")
    Term.(
      const run $ obs_term $ doc_arg $ path_arg $ storage_flag $ page_file_arg
      $ pool_capacity_arg $ index_flag $ schema_flag $ explain_flag)

let print_store store root =
  match Xsm_xdm.Store.kind store root with
  | Xsm_xdm.Store.Kind.Document ->
    print_string (Xsm_xml.Printer.to_string (Xsm_xdm.Convert.to_document store root))
  | _ -> print_endline (Xsm_xml.Printer.element_to_string (Xsm_xdm.Convert.to_element store root))

(* The update-script interpreter, shared by `xsm update` and
   `xsm stats`.  A malformed or failing line aborts with its location,
   the offending source text and exit code 1 — never a silent skip,
   never a raw backtrace. *)
let execute_script ~script_path ~store ~dnode ~journal ?planner ?wal () =
  let module Store = Xsm_xdm.Store in
  let module Update = Xsm_schema.Update in
  let module Wal = Xsm_persist.Wal in
  let module Pl = Xsm_xpath.Planner.Over_store in
  let split1 s =
    match String.index_opt s ' ' with
    | None -> (s, "")
    | Some i -> (String.sub s 0 i, String.trim (String.sub s (i + 1) (String.length s - i - 1)))
  in
  let source_lines = String.split_on_char '\n' (read_file script_path) in
  let fail_line lineno fmt =
    Printf.ksprintf
      (fun s ->
        Printf.eprintf "%s:%d: %s\n" script_path lineno s;
        (match List.nth_opt source_lines (lineno - 1) with
        | Some src when String.trim src <> "" ->
          Printf.eprintf "  %d | %s\n" lineno (String.trim src)
        | Some _ | None -> ());
        exit 1)
      fmt
  in
  let target lineno q =
    match Xsm_xpath.Eval.Over_store.eval_string store dnode q with
    | Ok (n :: _) -> n
    | Ok [] -> fail_line lineno "%s: no matching node" q
    | Error e -> fail_line lineno "%s: %s" q e
  in
  let apply lineno op =
    (match wal with
    | None -> ()
    | Some w -> (
      (* log before apply: the WAL addresses describe the pre-state *)
      match Wal.op_of_update store ~root:dnode op with
      | Ok wop -> (
        try Wal.Writer.append w wop
        with Wal.Crashed ->
          Printf.eprintf "wal: injected crash after %d records\n" (Wal.Writer.records_written w);
          exit 3)
      | Error e -> fail_line lineno "%s" e));
    match Update.apply ~journal store op with
    | Ok _ -> ()
    | Error e -> fail_line lineno "update: %s" e
  in
  let fragment lineno src =
    match Xsm_xml.Parser.parse_element src with
    | Ok e -> e
    | Error e -> fail_line lineno "fragment: %s" (Xsm_xml.Parser.error_to_string e)
  in
  let qname lineno s =
    match Xsm_xml.Name.of_string s with
    | Ok n -> n
    | Error e -> fail_line lineno "attribute name %S: %s" s e
  in
  let require lineno what s = if s = "" then fail_line lineno "missing %s" what else s in
  let run_line lineno line =
    let cmd, rest = split1 line in
    match cmd with
    | "insert" ->
      let path, xml = split1 rest in
      let path = require lineno "target path" path in
      let xml = require lineno "XML fragment" xml in
      apply lineno
        (Update.Insert_element
           { parent = target lineno path; before = None; tree = fragment lineno xml })
    | "insert-text" ->
      let path, text = split1 rest in
      let path = require lineno "target path" path in
      apply lineno (Update.Insert_text { parent = target lineno path; before = None; text })
    | "delete" ->
      let path = require lineno "target path" rest in
      apply lineno (Update.Delete (target lineno path))
    | "content" ->
      let path, value = split1 rest in
      let path = require lineno "target path" path in
      apply lineno (Update.Replace_content { node = target lineno path; value })
    | "attr" ->
      let path, rest = split1 rest in
      let name, value = split1 rest in
      let path = require lineno "target path" path in
      let name = require lineno "attribute name" name in
      apply lineno
        (Update.Set_attribute { element = target lineno path; name = qname lineno name; value })
    | "sync" -> (
      match wal with
      | Some w -> (
        try Wal.Writer.sync w
        with Wal.Crashed ->
          Printf.eprintf "wal: injected crash after %d records\n" (Wal.Writer.records_written w);
          exit 3)
      | None -> ())
    | "query" -> (
      let q = require lineno "query" rest in
      let print_nodes nodes =
        List.iter (fun n -> print_endline (Store.string_value store n)) nodes
      in
      match planner with
      | Some p -> (
        match Pl.eval_string p q with
        | Ok nodes ->
          (match Xsm_xpath.Path_parser.parse q with
          | Ok parsed -> Format.eprintf "plan: %s@." (Pl.explain p parsed)
          | Error _ -> ());
          print_nodes nodes
        | Error e -> fail_line lineno "%s: %s" q e)
      | None -> (
        match Xsm_xpath.Eval.Over_store.eval_string store dnode q with
        | Ok nodes -> print_nodes nodes
        | Error e -> fail_line lineno "%s: %s" q e))
    | other -> fail_line lineno "unknown command %S" other
  in
  let lineno = ref 0 in
  List.iter
    (fun line ->
      incr lineno;
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else
        Trace.with_span "update.line" ~attrs:[ ("line", string_of_int !lineno) ] (fun () ->
            try run_line !lineno line with
            | Invalid_argument e | Failure e -> fail_line !lineno "%s" e))
    source_lines

let update_cmd =
  let doc_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC" ~doc:"XML document file")
  in
  let script_arg =
    Arg.(
      required & pos 1 (some file) None
      & info [] ~docv:"SCRIPT"
          ~doc:
            "Update script: one command per line.  $(b,insert) PATH XML appends a parsed \
             fragment under the first node matching PATH; $(b,insert-text) PATH TEXT \
             appends a text node; $(b,delete) PATH unlinks the first match; $(b,content) \
             PATH VALUE replaces a text or attribute value; $(b,attr) PATH NAME VALUE \
             sets an attribute; $(b,query) PATH evaluates a query against the current \
             state; $(b,sync) forces a WAL sync point.  Blank lines and lines starting \
             with # are ignored.  A malformed line aborts the run with its line number \
             and exit code 1.")
  in
  let index_flag =
    Arg.(
      value & flag
      & info [ "index" ]
          ~doc:
            "Evaluate queries through the index subsystem and keep the indexes live \
             across updates: the planner subscribes to the update journal and applies \
             each change differentially instead of rebuilding.  Maintenance statistics \
             are reported on stderr.")
  in
  let print_flag =
    Arg.(value & flag & info [ "print" ] ~doc:"Print the resulting document on stdout")
  in
  let wal_arg =
    Arg.(
      value & opt (some string) None
      & info [ "wal" ] ~docv:"FILE"
          ~doc:
            "Write-ahead log: every update is appended to $(docv) (length-prefixed, \
             CRC-checked records) $(i,before) it is applied, so $(b,xsm recover) can \
             replay the run from a snapshot after a crash.")
  in
  let snapshot_arg =
    Arg.(
      value & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Write a snapshot of the $(i,initial) document state to $(docv) before \
             running the script — the base the WAL replays against.")
  in
  let crash_after_arg =
    Arg.(
      value & opt (some int) None
      & info [ "crash-after" ] ~docv:"N"
          ~doc:
            "Fault injection: once $(docv) WAL records are fully on disk, abort \
             mid-write of the next record and exit with code 3 (requires $(b,--wal)).")
  in
  let crash_partial_arg =
    Arg.(
      value & opt int 0
      & info [ "crash-partial" ] ~docv:"BYTES"
          ~doc:
            "With $(b,--crash-after): leave $(docv) bytes of the torn record behind \
             (0 = cut cleanly at the record boundary).")
  in
  let sync_every_arg =
    Arg.(
      value & opt int 1
      & info [ "sync-every" ] ~docv:"N"
          ~doc:"Fsync the WAL after every $(docv)-th record (default 1: every record).")
  in
  let run () doc_path script_path use_index do_print wal_path snap_path crash_after
      crash_partial sync_every =
    let module Store = Xsm_xdm.Store in
    let module Update = Xsm_schema.Update in
    let module Wal = Xsm_persist.Wal in
    let module Pl = Xsm_xpath.Planner.Over_store in
    let doc = or_die (load_document doc_path) in
    let store = Store.create () in
    let dnode = Xsm_xdm.Convert.load store doc in
    let journal = Update.Journal.create () in
    let planner =
      if use_index then begin
        let p = Pl.create store dnode in
        Xsm_xpath.Planner.attach_journal p journal;
        Some p
      end
      else None
    in
    let die fmt =
      Printf.ksprintf
        (fun s ->
          prerr_endline s;
          exit 2)
        fmt
    in
    (match snap_path with
    | None -> ()
    | Some p -> (
      match Xsm_persist.Snapshot.save ~path:p store dnode with
      | Ok _ -> ()
      | Error e -> die "%s" e));
    let wal =
      match wal_path with
      | None ->
        if crash_after <> None then die "--crash-after requires --wal";
        None
      | Some p -> (
        (* a fresh snapshot is a fresh base: an old log would replay
           against the wrong state, so pair it with an empty WAL *)
        if snap_path <> None && Sys.file_exists p then Sys.remove p;
        let crash =
          Option.map
            (fun n -> { Wal.after_records = n; partial_bytes = crash_partial })
            crash_after
        in
        match Wal.Writer.create ?crash ~sync_every p with
        | Ok w -> Some w
        | Error e -> die_wal_error e)
    in
    Trace.with_span "update.script" ~attrs:[ ("script", script_path) ] (fun () ->
        execute_script ~script_path ~store ~dnode ~journal ?planner ?wal ());
    (match wal with Some w -> Wal.Writer.close w | None -> ());
    (match planner with
    | Some p -> report_maintenance (Pl.maintenance_stats p)
    | None -> ());
    if do_print then print_store store dnode
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:
         "Apply an update script to a document, interleaving queries; with $(b,--index) \
          the indexes are maintained differentially across the updates; with $(b,--wal) \
          every update is logged durably before it is applied")
    Term.(
      const run $ obs_term $ doc_arg $ script_arg $ index_flag $ print_flag $ wal_arg
      $ snapshot_arg $ crash_after_arg $ crash_partial_arg $ sync_every_arg)

let snapshot_cmd =
  let doc_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC" ~doc:"XML document file")
  in
  let out_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT" ~doc:"Snapshot file to write")
  in
  let schema_arg =
    Arg.(
      value & opt (some file) None
      & info [ "schema" ] ~docv:"SCHEMA"
          ~doc:
            "Validate against $(docv) first and snapshot the typed store; the schema \
             path is recorded in the snapshot header as the schema reference.")
  in
  let labels_flag =
    Arg.(
      value & flag
      & info [ "labels" ]
          ~doc:"Assign \xc2\xa79.3 numbering labels and persist them with the tree.")
  in
  let run doc_path out_path schema_path with_labels =
    let doc = or_die (load_document doc_path) in
    let store, dnode =
      match schema_path with
      | None ->
        let store = Xsm_xdm.Store.create () in
        (store, Xsm_xdm.Convert.load store doc)
      | Some sp -> (
        let schema = or_die (load_schema sp) in
        match Xsm_schema.Validator.validate_document doc schema with
        | Ok (store, dnode) -> (store, dnode)
        | Error es ->
          List.iter (fun e -> prerr_endline (Xsm_schema.Validator.error_to_string e)) es;
          exit 1)
    in
    let labels =
      if with_labels then Some (Xsm_numbering.Labeler.label_tree store dnode) else None
    in
    match Xsm_persist.Snapshot.save ?schema_ref:schema_path ?labels ~path:out_path store dnode with
    | Ok meta ->
      Printf.printf "snapshot %s: %d nodes%s%s\n" out_path
        meta.Xsm_persist.Snapshot.node_count
        (match meta.Xsm_persist.Snapshot.schema_ref with
        | Some s -> Printf.sprintf ", schema %s" s
        | None -> "")
        (if meta.Xsm_persist.Snapshot.labelled then ", labelled" else "")
    | Error e ->
      prerr_endline e;
      exit 2
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:
         "Serialize a document's database state to a versioned binary snapshot \
          (CRC-protected; reload with $(b,xsm recover))")
    Term.(const run $ doc_arg $ out_arg $ schema_arg $ labels_flag)

let recover_cmd =
  let snap_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SNAP" ~doc:"Snapshot file")
  in
  let wal_arg =
    Arg.(
      value & opt (some string) None
      & info [ "wal" ] ~docv:"FILE"
          ~doc:
            "Replay this write-ahead log on top of the snapshot, truncating a torn \
             trailing record if the writer crashed mid-append.")
  in
  let print_flag =
    Arg.(value & flag & info [ "print" ] ~doc:"Print the recovered document on stdout")
  in
  let query_arg =
    Arg.(
      value & opt (some string) None
      & info [ "query" ] ~docv:"PATH" ~doc:"Evaluate a query over the recovered state.")
  in
  let index_flag =
    Arg.(
      value & flag
      & info [ "index" ]
          ~doc:
            "Build the index planner over the snapshot state and let it absorb the WAL \
             replay differentially (indexes resume instead of rebuilding); implies the \
             query runs through the planner.")
  in
  let no_truncate_flag =
    Arg.(
      value & flag
      & info [ "no-truncate" ]
          ~doc:"Leave a torn WAL tail on disk instead of repairing the file.")
  in
  let page_file_arg =
    Arg.(
      value & opt (some string) None
      & info [ "page-file" ] ~docv:"FILE"
          ~doc:
            "After recovery, materialize the block-storage representation of the \
             recovered state and checkpoint it to $(docv) — a clean page file that \
             alone reconstructs the store.")
  in
  let pool_capacity_arg =
    Arg.(
      value & opt int 64
      & info [ "pool-capacity" ] ~docv:"N"
          ~doc:"Buffer-pool capacity in blocks with $(b,--page-file) (default 64).")
  in
  let run () snap_path wal_path do_print query use_index no_truncate page_path pool_capacity =
    let module Pl = Xsm_xpath.Planner.Over_store in
    let module R = Xsm_persist.Recovery in
    let die e =
      prerr_endline e;
      exit 2
    in
    let truncate = not no_truncate in
    let store, root, _labels, stats, planner =
      if use_index then begin
        match Xsm_persist.Snapshot.load ~path:snap_path with
        | Error e -> die e
        | Ok (store, root, labels, _meta) ->
          (* the planner sees the snapshot state, then the journal
             feeds it the replay — indexes resume, no rebuild *)
          let planner = Pl.create store root in
          let journal = Xsm_schema.Update.Journal.create () in
          Xsm_xpath.Planner.attach_journal planner journal;
          let stats =
            match wal_path with
            | None ->
              {
                R.snapshot_nodes = Xsm_xdm.Store.subtree_size store root;
                wal_records = 0;
                replayed = 0;
                synced_prefix = 0;
                torn_bytes = 0;
                truncated = false;
              }
            | Some wal -> (
              match R.replay_wal ~journal ?labels ~truncate store ~root wal with
              | Ok s -> s
              | Error e -> die_recovery_error e)
          in
          (store, root, labels, stats, Some planner)
      end
      else
        match R.recover ~truncate ~snapshot:snap_path ?wal:wal_path () with
        | Ok (store, root, labels, stats) -> (store, root, labels, stats, None)
        | Error e -> die_recovery_error e
    in
    Format.eprintf "recovered: %a@." R.pp_stats stats;
    (match page_path with
    | None -> ()
    | Some pp ->
      let module Bs = Xsm_storage.Block_storage in
      let pf = Xsm_pager.Page_file.create pp in
      let bs = Bs.of_store store root in
      ignore (Bs.attach_pager bs ~capacity:pool_capacity pf);
      Bs.checkpoint bs ~lsn:stats.R.synced_prefix;
      Printf.eprintf "page file: checkpointed %d blocks to %s\n" (Bs.block_count bs) pp;
      Xsm_pager.Page_file.close pf);
    (match query with
    | None -> ()
    | Some q -> (
      let print_nodes nodes =
        List.iter (fun n -> print_endline (Xsm_xdm.Store.string_value store n)) nodes
      in
      match planner with
      | Some p -> (
        match Pl.eval_string p q with
        | Ok nodes ->
          (match Xsm_xpath.Path_parser.parse q with
          | Ok parsed -> Format.eprintf "plan: %s@." (Pl.explain p parsed)
          | Error _ -> ());
          report_maintenance (Pl.maintenance_stats p);
          print_nodes nodes
        | Error e ->
          prerr_endline e;
          exit 1)
      | None -> (
        match Xsm_xpath.Eval.Over_store.eval_string store root q with
        | Ok nodes -> print_nodes nodes
        | Error e ->
          prerr_endline e;
          exit 1)));
    if do_print then print_store store root
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Rebuild the database state from a snapshot plus a write-ahead log: load, \
          truncate the torn tail (CRC-detected), replay — the recovered state is \
          content-equal to the longest fully-written prefix of the logged run")
    Term.(
      const run $ obs_term $ snap_arg $ wal_arg $ print_flag $ query_arg $ index_flag
      $ no_truncate_flag $ page_file_arg $ pool_capacity_arg)

let stats_cmd =
  let doc_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC" ~doc:"XML document file")
  in
  let script_arg =
    Arg.(
      required & pos 1 (some file) None
      & info [] ~docv:"SCRIPT"
          ~doc:
            "Workload script in the $(b,xsm update) syntax; its queries run through the \
             index planner and its updates are logged to a throwaway WAL so every \
             subsystem contributes to the report.")
  in
  let schema_arg =
    Arg.(
      value & opt (some file) None
      & info [ "schema" ] ~docv:"SCHEMA"
          ~doc:
            "Validate the document against $(docv) first (populating the validator \
             counters) and give the planner the schema's static emptiness oracle, so \
             provably dead queries show up in the pruned counter.")
  in
  let capacity_arg =
    Arg.(
      value & opt int 8
      & info [ "pool-capacity" ] ~docv:"N"
          ~doc:"Buffer-pool capacity (blocks) for the locality replay (default 8).")
  in
  let openmetrics_flag =
    Arg.(
      value & flag
      & info [ "openmetrics" ]
          ~doc:
            "Print the registry as OpenMetrics text exposition instead of JSON — the \
             same output a scraper gets from a running daemon via \
             $(b,xsm client --openmetrics).")
  in
  let run () doc_path script_path schema_path capacity openmetrics =
    let module Store = Xsm_xdm.Store in
    let module Pl = Xsm_xpath.Planner.Over_store in
    let g_hit_ratio =
      Metrics.Gauge.make ~help:"buffer-pool hit ratio over the workload replay"
        "storage.pool.hit_ratio"
    in
    let doc = or_die (load_document doc_path) in
    let schema = Option.map (fun sp -> or_die (load_schema sp)) schema_path in
    (match schema with
    | None -> ()
    | Some s -> (
      match Xsm_schema.Validator.validate_document doc s with
      | Ok _ -> ()
      | Error es ->
        List.iter (fun e -> prerr_endline (Xsm_schema.Validator.error_to_string e)) es;
        exit 1));
    let store = Store.create () in
    let dnode = Xsm_xdm.Convert.load store doc in
    let journal = Xsm_schema.Update.Journal.create () in
    let planner = Pl.create store dnode in
    Xsm_xpath.Planner.attach_journal planner journal;
    Option.iter
      (fun s ->
        Pl.set_pruner planner (Xsm_analysis.Query_static.pruner s);
        Pl.set_rewriter planner (Xsm_analysis.Query_static.rewriter s))
      schema;
    (* a throwaway WAL with an fsync per record, so append and fsync
       latencies land in the histograms *)
    let wal_path = Filename.temp_file "xsm-stats" ".wal" in
    let wal =
      match Xsm_persist.Wal.Writer.create ~sync_every:1 wal_path with
      | Ok w -> w
      | Error e -> die_wal_error e
    in
    Fun.protect
      ~finally:(fun () ->
        Xsm_persist.Wal.Writer.close wal;
        if Sys.file_exists wal_path then Sys.remove wal_path)
      (fun () ->
        execute_script ~script_path ~store ~dnode ~journal ~planner ~wal ());
    (* replay the final tree's block locality through an LRU pool: a
       schema-driven scan per schema node, then one navigational walk *)
    let bs = Xsm_storage.Block_storage.of_store store dnode in
    let pool = Xsm_storage.Buffer_pool.create ~capacity in
    let rec snodes acc sn =
      List.fold_left snodes (sn :: acc)
        (Xsm_storage.Descriptive_schema.children (Xsm_storage.Block_storage.schema bs) sn)
    in
    List.iter
      (fun sn ->
        List.iter
          (fun b -> ignore (Xsm_storage.Buffer_pool.touch pool b))
          (Xsm_storage.Buffer_pool.scan_trace bs sn))
      (List.rev (snodes [] (Xsm_storage.Descriptive_schema.root (Xsm_storage.Block_storage.schema bs))));
    List.iter
      (fun b -> ignore (Xsm_storage.Buffer_pool.touch pool b))
      (Xsm_storage.Buffer_pool.navigation_trace bs (Xsm_storage.Block_storage.root bs));
    Metrics.Gauge.set g_hit_ratio
      (match Xsm_storage.Buffer_pool.hit_ratio (Xsm_storage.Buffer_pool.stats pool) with
      | Some r -> r
      | None -> Float.nan (* no accesses: JSON null / "(unset)", not 1.0 *));
    (* now the same locality for real: a second storage paged through a
       throwaway page file, cold-started, then walked — the pager.*
       counters below are actual faults, write-backs and evictions *)
    let g_pager_hit =
      Metrics.Gauge.make ~help:"pager hit ratio over the cold workload replay"
        "pager.hit_ratio"
    in
    let pp = Filename.temp_file "xsm-stats" ".pages" in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists pp then Sys.remove pp)
      (fun () ->
        let module Bs = Xsm_storage.Block_storage in
        let module Pager = Xsm_pager.Pager in
        let bs = Xsm_storage.Block_storage.of_store store dnode in
        let pf = Xsm_pager.Page_file.create pp in
        let p = Bs.attach_pager bs ~capacity pf in
        Pager.clear p;
        Pager.reset_stats p;
        (* [snodes] above closed over the other storage's schema —
           rebuild the snode list over this one *)
        let rec paged_snodes acc sn =
          List.fold_left paged_snodes (sn :: acc)
            (Xsm_storage.Descriptive_schema.children (Bs.schema bs) sn)
        in
        List.iter
          (fun sn -> List.iter (fun d -> ignore (Bs.string_value bs d)) (Bs.descendants_by_snode bs sn))
          (List.rev (paged_snodes [] (Xsm_storage.Descriptive_schema.root (Bs.schema bs))));
        let rec walk d =
          ignore (Bs.string_value bs d);
          List.iter walk (Bs.attributes bs d);
          List.iter walk (Bs.children bs d)
        in
        walk (Bs.root bs);
        Metrics.Gauge.set g_pager_hit
          (match Pager.hit_ratio (Pager.stats p) with
          | Some r -> r
          | None -> Float.nan);
        Xsm_pager.Page_file.close pf);
    Metrics.Runtime.sample ();
    if openmetrics then print_string (Metrics.to_openmetrics Metrics.default)
    else print_endline (Xsm_obs.Json.to_string (Metrics.to_json Metrics.default))
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Replay a workload script against a document with every subsystem instrumented \
          — validator, index planner, WAL, buffer pool — and print the full metrics \
          registry as JSON (or OpenMetrics text) on stdout")
    Term.(
      const run $ obs_term $ doc_arg $ script_arg $ schema_arg $ capacity_arg
      $ openmetrics_flag)

let dataguide_cmd =
  let doc_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC" ~doc:"XML document file")
  in
  let run doc_path =
    let doc = or_die (load_document doc_path) in
    let store = Xsm_xdm.Store.create () in
    let dnode = Xsm_xdm.Convert.load store doc in
    let ds, _ = Xsm_storage.Descriptive_schema.of_tree store dnode in
    Format.printf "%a" Xsm_storage.Descriptive_schema.pp ds;
    Printf.printf "(%d schema nodes for %d document nodes)\n"
      (Xsm_storage.Descriptive_schema.node_count ds)
      (Xsm_xdm.Store.node_count store)
  in
  Cmd.v
    (Cmd.info "dataguide" ~doc:"Print the descriptive schema (\xc2\xa79.1)")
    Term.(const run $ doc_arg)

let labels_cmd =
  let doc_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC" ~doc:"XML document file")
  in
  let run doc_path =
    let doc = or_die (load_document doc_path) in
    let store = Xsm_xdm.Store.create () in
    let dnode = Xsm_xdm.Convert.load store doc in
    let t = Xsm_numbering.Labeler.label_tree store dnode in
    List.iter
      (fun n ->
        Format.printf "%a  %a@."
          Xsm_numbering.Sedna_label.pp
          (Xsm_numbering.Labeler.label t n)
          (Xsm_xdm.Store.pp_node store) n)
      (Xsm_xdm.Order.nodes_in_order store dnode)
  in
  Cmd.v
    (Cmd.info "labels" ~doc:"Print every node with its Sedna numbering label (\xc2\xa79.3)")
    Term.(const run $ doc_arg)

let canonicalize_cmd =
  let schema_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCHEMA" ~doc:"XSD schema file")
  in
  let run schema_path =
    let schema = or_die (load_schema schema_path) in
    let simplified = Xsm_schema.Canonical.simplify_schema schema in
    print_string (Xsm_xsd.Writer.to_string simplified)
  in
  Cmd.v
    (Cmd.info "canonicalize"
       ~doc:"Print the schema with canonicalized (simplified) content models")
    Term.(const run $ schema_arg)

let flwor_cmd =
  let doc_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC" ~doc:"XML document file")
  in
  let query_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc:"FLWOR query")
  in
  let run doc_path query =
    let doc = or_die (load_document doc_path) in
    let store = Xsm_xdm.Store.create () in
    let dnode = Xsm_xdm.Convert.load store doc in
    match Xsm_xpath.Flwor.Over_store.eval_string store dnode query with
    | Ok items ->
      List.iter print_endline (Xsm_xpath.Flwor.Over_store.strings store items)
    | Error e ->
      prerr_endline e;
      exit 1
  in
  Cmd.v
    (Cmd.info "flwor"
       ~doc:"Evaluate a FLWOR query (for/let/where/order by/return) over a document")
    Term.(const run $ doc_arg $ query_arg)

let roundtrip_cmd =
  let schema_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCHEMA" ~doc:"XSD schema file")
  in
  let doc_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"DOC" ~doc:"XML document file")
  in
  let run schema_path doc_path =
    let schema = or_die (load_schema schema_path) in
    let doc = or_die (load_document doc_path) in
    match Xsm_schema.Roundtrip.holds_for doc schema with
    | Ok true -> print_endline "g(f(X)) =_c X holds"
    | Ok false ->
      print_endline "round-trip produced a different document";
      exit 1
    | Error es ->
      List.iter (fun e -> print_endline (Xsm_schema.Validator.error_to_string e)) es;
      exit 1
  in
  Cmd.v
    (Cmd.info "roundtrip" ~doc:"Check the \xc2\xa78 theorem for one document")
    Term.(const run $ schema_arg $ doc_arg)

(* ------------------------------------------------------------------ *)
(* serve / client / bench-serve: the session daemon (DESIGN.md §12)   *)

module Server = Xsm_server.Server
module Sclient = Xsm_server.Client
module Sproto = Xsm_server.Protocol

let socket_arg ~required:req =
  let doc = "Unix domain socket path" in
  if req then Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  else
    Arg.(
      value
      & opt string (Filename.concat (Filename.get_temp_dir_name ()) "xsm-serve.sock")
      & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let doc_arg =
    Arg.(
      value & opt (some string) None
      & info [ "doc" ] ~docv:"DOC"
          ~doc:"Boot from this XML document (fresh base; an existing --wal file is discarded).")
  in
  let snapshot_arg =
    Arg.(
      value & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Boot by recovering from this snapshot when it exists (replaying the --wal \
             tail on top), and write the final state back to it at graceful shutdown — \
             at which point the WAL it subsumes is removed (a checkpoint).")
  in
  let wal_arg =
    Arg.(
      value & opt (some string) None
      & info [ "wal" ] ~docv:"FILE" ~doc:"Append every committed update to this write-ahead log.")
  in
  let schema_arg =
    Arg.(
      value & opt (some file) None
      & info [ "schema" ] ~docv:"XSD" ~doc:"Schema for $(b,validate) requests.")
  in
  let domains_arg =
    (* parallel readers beyond the core count only add GC
       synchronization; default to what the machine can actually run *)
    Arg.(
      value
      & opt int (max 1 (min 4 (Domain.recommended_domain_count () - 1)))
      & info [ "domains" ] ~docv:"N" ~doc:"Read-pool size: parallel query evaluators.")
  in
  let no_group_commit_flag =
    Arg.(
      value & flag
      & info [ "no-group-commit" ]
          ~doc:"Fsync the WAL after every record instead of once per batch (the E17 baseline).")
  in
  let index_flag =
    Arg.(
      value & flag
      & info [ "index" ]
          ~doc:
            "Route queries through the journal-maintained index planner (serialized) \
             instead of the parallel pure evaluator.")
  in
  let labels_flag =
    Arg.(value & flag & info [ "labels" ] ~doc:"Maintain \xc2\xa79.3 Sedna labels across updates.")
  in
  let page_file_arg =
    Arg.(
      value & opt (some string) None
      & info [ "page-file" ] ~docv:"FILE"
          ~doc:
            "Maintain a disk-paged block-storage replica of the store under a bounded \
             buffer pool backed by $(docv); non-indexed queries evaluate over it, \
             sharing the pool across all sessions.  Checkpointed at graceful shutdown.")
  in
  let pool_capacity_arg =
    Arg.(
      value & opt int 256
      & info [ "pool-capacity" ] ~docv:"N"
          ~doc:"Buffer-pool capacity in blocks with $(b,--page-file) (default 256).")
  in
  let flight_capacity_arg =
    Arg.(
      value & opt int 256
      & info [ "flight-capacity" ] ~docv:"N"
          ~doc:"Flight-recorder ring size in request digests (default 256).")
  in
  let slow_log_arg =
    Arg.(
      value & opt (some string) None
      & info [ "slow-log" ] ~docv:"FILE"
          ~doc:
            "Append a JSON line (the flight digest, plan attached) for every request at \
             least $(b,--slow-threshold-ms) slow.")
  in
  let slow_threshold_arg =
    Arg.(
      value & opt float 10.0
      & info [ "slow-threshold-ms" ] ~docv:"MS"
          ~doc:
            "Requests at least this slow keep their plan in the flight recorder and go \
             to the slow log (default 10).")
  in
  let run () socket doc_path snap_path wal_path schema_path domains no_group_commit use_index
      with_labels page_path pool_capacity flight_capacity slow_log slow_threshold_ms =
    let schema = Option.map (fun p -> or_die (load_schema p)) schema_path in
    let store, root, labels =
      match snap_path with
      | Some snap when Sys.file_exists snap -> (
        let wal = match wal_path with Some w when Sys.file_exists w -> Some w | _ -> None in
        match Xsm_persist.Recovery.recover ~truncate:true ~snapshot:snap ?wal () with
        | Ok (store, root, labels, stats) ->
          Format.eprintf "xsm serve: recovered: %a@." Xsm_persist.Recovery.pp_stats stats;
          (store, root, labels)
        | Error e -> die_recovery_error e)
      | _ -> (
        match doc_path with
        | None -> die "serve: no snapshot to recover — need --doc for a fresh server"
        | Some p ->
          let doc = or_die (load_document p) in
          let store = Xsm_xdm.Store.create () in
          let dnode = Xsm_xdm.Convert.load store doc in
          let labels =
            if with_labels then Some (Xsm_numbering.Labeler.label_tree store dnode) else None
          in
          (* a fresh base invalidates any log from a previous run: its
             records address the old state *)
          (match wal_path with
          | Some w when Sys.file_exists w -> Sys.remove w
          | _ -> ());
          (store, dnode, labels))
    in
    let config =
      {
        Server.socket_path = socket;
        snapshot_path = snap_path;
        wal_path;
        domains;
        group_commit = not no_group_commit;
        use_index;
        page_file = page_path;
        pool_capacity;
        flight_capacity;
        slow_log;
        slow_threshold_ms;
      }
    in
    match Server.create config ~store ~root ?labels ?schema () with
    | Error e -> die "%s" e
    | Ok srv ->
      List.iter
        (fun s -> Sys.set_signal s (Sys.Signal_handle (fun _ -> Server.request_stop srv)))
        [ Sys.sigterm; Sys.sigint ];
      let on_ready () =
        Printf.eprintf "xsm serve: listening on %s (domains=%d, %s)\n%!" socket domains
          (if no_group_commit then "fsync-per-record" else "group commit")
      in
      (match Server.serve ~on_ready srv with
      | Ok () ->
        Printf.eprintf "xsm serve: stopped after %d sessions\n%!" (Server.sessions_served srv)
      | Error e -> die "%s" e)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the session daemon: one process owning the store, labels, indexes and WAL, \
          serving concurrent sessions over a Unix domain socket — parallel snapshot \
          reads on a domain pool, group-committed writes")
    Term.(
      const run $ obs_term $ socket_arg ~required:false $ doc_arg $ snapshot_arg $ wal_arg
      $ schema_arg $ domains_arg $ no_group_commit_flag $ index_flag $ labels_flag
      $ page_file_arg $ pool_capacity_arg $ flight_capacity_arg $ slow_log_arg
      $ slow_threshold_arg)

let client_cmd =
  let query_arg =
    Arg.(
      value & opt (some string) None
      & info [ "query" ] ~docv:"PATH" ~doc:"Evaluate an XPath on the server.")
  in
  let update_arg =
    Arg.(
      value & opt (some string) None
      & info [ "update" ] ~docv:"CMD"
          ~doc:"Apply one update-script command ($(b,insert), $(b,delete), $(b,content), ...).")
  in
  let validate_arg =
    Arg.(
      value & opt (some string) None
      & info [ "validate" ] ~docv:"DOC"
          ~doc:"Validate this XML file against the server's schema ('-' for stdin).")
  in
  let stats_flag = Arg.(value & flag & info [ "stats" ] ~doc:"Print the server's stats JSON.") in
  let openmetrics_flag =
    Arg.(
      value & flag
      & info [ "openmetrics" ]
          ~doc:"Print the server's metrics registry as OpenMetrics text exposition.")
  in
  let flight_flag =
    Arg.(
      value & flag
      & info [ "flight" ]
          ~doc:
            "Dump the server's flight recorder as JSON: recent request digests plus the \
             kept error and slowest tails.")
  in
  let shutdown_flag =
    Arg.(value & flag & info [ "shutdown" ] ~doc:"Ask the server to stop gracefully.")
  in
  let trace_arg =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Propagate a trace context with the request ($(b,--query), $(b,--update) or \
             $(b,--validate)), fetch the server-side spans it produced, and write both \
             halves — the client request span and the server's request/phase tree, \
             correctly parented — to $(docv) as one Chrome trace.")
  in
  let run socket query update validate stats openmetrics flight shutdown trace_file =
    let c = match Sclient.connect socket with Ok c -> c | Error e -> die "%s" e in
    Fun.protect
      ~finally:(fun () -> Sclient.close c)
      (fun () ->
        let actions =
          List.length (List.filter Option.is_some [ query; update; validate ])
          + (if stats then 1 else 0)
          + (if openmetrics then 1 else 0)
          + (if flight then 1 else 0)
          + if shutdown then 1 else 0
        in
        if actions <> 1 then
          die
            "client: give exactly one of --query, --update, --validate, --stats, \
             --openmetrics, --flight, --shutdown";
        (* [traced kind do_request] runs one request, optionally under a
           propagated trace context: the client side is a single
           deterministic span (id 1) covering the round trip, the server
           side is fetched back via [Introspect] and re-parented under
           it, ids offset so the two processes can't collide. *)
        let traced kind do_request =
          match trace_file with
          | None -> do_request None
          | Some path ->
            Random.self_init ();
            let trace_id = Printf.sprintf "%016Lx" (Random.int64 Int64.max_int) in
            let client_root_id = 1 in
            let ctx = { Sproto.trace_id; parent_span = client_root_id } in
            let t0 = Xsm_obs.Clock.now_ns () in
            do_request (Some ctx);
            let t1 = Xsm_obs.Clock.now_ns () in
            let client_root : Trace.event =
              {
                id = client_root_id;
                parent = 0;
                name = "client." ^ kind;
                start_ns = t0;
                dur_ns = Int64.sub t1 t0;
                depth = 0;
                attrs = [ ("trace", trace_id) ];
              }
            in
            (match Sclient.introspect c (Sproto.Trace_events trace_id) with
            | Error e -> Printf.eprintf "trace: introspect: %s\n" e
            | Ok body -> (
              let server_events =
                match Xsm_obs.Json.member "events" body with
                | Some (Xsm_obs.Json.Arr items) ->
                  List.filter_map
                    (fun j ->
                      match Trace.event_of_json j with Ok e -> Some e | Error _ -> None)
                    items
                | _ -> []
              in
              (* same machine but not the same clock: each process
                 counts from its own epoch, so rebase server
                 timestamps by the epoch difference before merging.
                 Server roots hang off the client request span. *)
              let delta_ns =
                match Xsm_obs.Json.member "clock_epoch_s" body with
                | Some (Xsm_obs.Json.Num server_epoch) ->
                  Int64.of_float
                    ((server_epoch -. Xsm_obs.Clock.epoch_wall ()) *. 1e9)
                | _ -> 0L
              in
              let offset = 1_000_000 in
              let server_events =
                List.map
                  (fun (e : Trace.event) ->
                    {
                      e with
                      id = e.id + offset;
                      parent =
                        (if e.parent = 0 then client_root_id else e.parent + offset);
                      depth = e.depth + 1;
                      start_ns = Int64.add e.start_ns delta_ns;
                    })
                  server_events
              in
              match
                Trace.write_chrome_groups path
                  [ (1, "xsm client", [ client_root ]); (2, "xsm serve", server_events) ]
              with
              | Ok () ->
                Printf.eprintf "trace: %s (%d server spans, trace %s)\n" path
                  (List.length server_events) trace_id
              | Error e -> Printf.eprintf "trace: %s\n" e))
        in
        match (query, update, validate) with
        | Some path, _, _ ->
          traced "query" (fun trace ->
              match Sclient.query ?trace c path with
              | Ok (epoch, values) ->
                Printf.eprintf "epoch %d, %d nodes\n" epoch (List.length values);
                List.iter print_endline values
              | Error e ->
                prerr_endline e;
                exit 1)
        | _, Some command, _ ->
          traced "update" (fun trace ->
              match Sclient.update ?trace c command with
              | Ok epoch -> Printf.printf "applied (epoch %d)\n" epoch
              | Error e ->
                prerr_endline e;
                exit 1)
        | _, _, Some doc_path ->
          traced "validate" (fun trace ->
              match Sclient.validate ?trace c (read_doc_source doc_path) with
              | Ok (true, _) -> print_endline "valid"
              | Ok (false, errors) ->
                List.iter print_endline errors;
                exit 1
              | Error e ->
                prerr_endline e;
                exit 1)
        | None, None, None ->
          if shutdown then (
            match Sclient.shutdown c with
            | Ok () -> print_endline "stopping"
            | Error e ->
              prerr_endline e;
              exit 1)
          else if flight then (
            match Sclient.introspect c Sproto.Flight with
            | Ok body -> print_endline (Xsm_obs.Json.to_string body)
            | Error e ->
              prerr_endline e;
              exit 1)
          else if openmetrics then (
            match Sclient.stats ~openmetrics:true c with
            | Ok body -> (
              match Xsm_obs.Json.member "openmetrics" body with
              | Some (Xsm_obs.Json.Str text) -> print_string text
              | _ ->
                prerr_endline "client: malformed openmetrics reply";
                exit 1)
            | Error e ->
              prerr_endline e;
              exit 1)
          else (
            match Sclient.stats c with
            | Ok body -> print_endline (Xsm_obs.Json.to_string body)
            | Error e ->
              prerr_endline e;
              exit 1))
  in
  Cmd.v
    (Cmd.info "client" ~doc:"One-shot client for a running $(b,xsm serve) daemon")
    Term.(
      const run $ socket_arg ~required:false $ query_arg $ update_arg $ validate_arg
      $ stats_flag $ openmetrics_flag $ flight_flag $ shutdown_flag $ trace_arg)

(* A minimal live view over the daemon's flight recorder: one session,
   [Introspect Flight] + [Stats] per refresh, ANSI repaint. *)
let top_cmd =
  let interval_arg =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh period (default 1).")
  in
  let count_arg =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~docv:"N"
          ~doc:"Stop after $(docv) refreshes (0: run until interrupted).")
  in
  let rows_arg =
    Arg.(
      value & opt int 15
      & info [ "rows" ] ~docv:"N" ~doc:"Digest rows to show per section (default 15).")
  in
  let run socket interval count rows =
    let module J = Xsm_obs.Json in
    let field path body =
      List.fold_left (fun j name -> Option.bind j (J.member name)) (Some body) path
    in
    let jint = function Some (J.Num f) -> int_of_float f | _ -> 0 in
    let clip n s = if String.length s <= n then s else String.sub s 0 (n - 1) ^ "\xe2\x80\xa6" in
    let digest_line b d =
      let s path = match field path d with Some (J.Str s) -> s | _ -> "" in
      let i path = jint (field path d) in
      let est =
        match field [ "est_rows" ] d with
        | Some (J.Arr [ J.Num lo; J.Num hi ]) ->
          if hi < 0.0 then Printf.sprintf "%d+" (int_of_float lo)
          else Printf.sprintf "%d..%d" (int_of_float lo) (int_of_float hi)
        | _ -> "-"
      in
      let outcome =
        match field [ "outcome" ] d with
        | Some (J.Str "ok") -> "ok"
        | Some o -> (
          match J.member "error" o with Some (J.Str e) -> clip 24 ("! " ^ e) | _ -> "!")
        | None -> "?"
      in
      Buffer.add_string b
        (Printf.sprintf "  %6d  %-8s %-8s %8s %6d %6d %9.3f  %-24s %s\n"
           (i [ "seq" ]) (s [ "kind" ])
           (match s [ "route" ] with "" -> "-" | r -> r)
           est (i [ "actual_rows" ]) (i [ "pager_hits" ])
           (float_of_int (i [ "latency_ns" ]) /. 1e6)
           outcome
           (clip 32 (s [ "detail" ])))
    in
    let section b title ds =
      if ds <> [] then begin
        Buffer.add_string b (Printf.sprintf "%s\n" title);
        Buffer.add_string b
          "     seq  kind     route         est    act  pager   lat(ms)  outcome                  detail\n";
        let n = List.length ds in
        List.iteri (fun i d -> if i >= n - rows then digest_line b d) ds
      end
    in
    let c = match Sclient.connect ~client:"xsm-top" socket with Ok c -> c | Error e -> die "%s" e in
    Fun.protect
      ~finally:(fun () -> Sclient.close c)
      (fun () ->
        let refresh () =
          match (Sclient.introspect c Sproto.Flight, Sclient.stats c) with
          | Error e, _ | _, Error e -> die "top: %s" e
          | Ok flight, Ok stats ->
            let b = Buffer.create 4096 in
            Buffer.add_string b
              (Printf.sprintf
                 "xsm top — %s   epoch %d   sessions %d   requests %d   inflight %d   \
                  digests %d/%d\n\n"
                 socket
                 (jint (field [ "server"; "epoch" ] stats))
                 (jint (field [ "server"; "sessions" ] stats))
                 (jint (field [ "metrics"; "counters"; "server.requests" ] stats))
                 (jint (field [ "metrics"; "gauges"; "server.inflight" ] stats))
                 (jint (field [ "recorded" ] flight))
                 (jint (field [ "capacity" ] flight)));
            let arr path =
              match field path flight with Some (J.Arr ds) -> ds | _ -> []
            in
            section b "recent" (arr [ "recent" ]);
            section b "\nkept slow (evicted tail)" (arr [ "slow" ]);
            section b "\nkept errors (evicted tail)" (arr [ "errors" ]);
            print_string "\027[2J\027[H";
            print_string (Buffer.contents b);
            flush stdout
        in
        let rec loop n =
          refresh ();
          if count = 0 || n < count then begin
            Unix.sleepf interval;
            loop (n + 1)
          end
        in
        loop 1)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live view of a running daemon: refresh the flight recorder's request digests \
          (recent, kept-slow, kept-error) and headline server stats in place")
    Term.(const run $ socket_arg ~required:false $ interval_arg $ count_arg $ rows_arg)

(* Closed-loop load generator for the daemon (bench E17): spawn an
   [xsm serve] child, fork N single-threaded client processes that
   each run a read/write mix against it, and aggregate their recorded
   latencies into p50/p99 and overall throughput. *)
let bench_serve_cmd =
  let clients_arg =
    Arg.(value & opt int 8 & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client processes.")
  in
  let requests_arg =
    Arg.(value & opt int 200 & info [ "requests" ] ~docv:"M" ~doc:"Requests per client.")
  in
  let domains_arg =
    Arg.(
      value
      & opt int (max 1 (min 4 (Domain.recommended_domain_count () - 1)))
      & info [ "domains" ] ~docv:"D" ~doc:"Server read-pool size.")
  in
  let entries_arg =
    Arg.(
      value & opt int 200
      & info [ "entries" ] ~docv:"K" ~doc:"Books in the generated library document.")
  in
  let write_ratio_arg =
    Arg.(
      value & opt float 0.1
      & info [ "write-ratio" ] ~docv:"R" ~doc:"Fraction of requests that are updates.")
  in
  let no_group_commit_flag =
    Arg.(
      value & flag
      & info [ "no-group-commit" ] ~doc:"Run the server with fsync-per-record (the baseline).")
  in
  let index_flag =
    Arg.(value & flag & info [ "index" ] ~doc:"Run the server with --index (serialized reads).")
  in
  let pool_capacity_arg =
    Arg.(
      value & opt (some int) None
      & info [ "pool-capacity" ] ~docv:"N"
          ~doc:
            "Run the server with a disk-paged storage replica under an $(docv)-block \
             buffer pool (a page file in the bench directory); pager counters are \
             reported with the results.")
  in
  let smoke_flag =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Tiny deterministic run for CI: 2 clients, 25 requests, 100 entries.")
  in
  let percentile sorted q =
    let n = Array.length sorted in
    if n = 0 then Float.nan else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))
  in
  let generate_library k =
    let buf = Buffer.create (k * 96) in
    Buffer.add_string buf "<library>";
    for i = 1 to k do
      Buffer.add_string buf
        (Printf.sprintf
           "<book id=\"b%d\"><title>Title %d</title><author>Author %d</author><year>%d</year></book>"
           i i (i mod 97) (1950 + (i mod 70)))
    done;
    Buffer.add_string buf "</library>";
    Buffer.contents buf
  in
  let run () clients requests domains entries write_ratio no_group_commit use_index
      pool_capacity smoke =
    let clients, requests, entries =
      if smoke then (2, 25, 100) else (clients, requests, entries)
    in
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "xsm-bench-serve-%d" (Unix.getpid ()))
    in
    (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let sock = Filename.concat dir "serve.sock" in
    let doc_file = Filename.concat dir "library.xml" in
    let wal_file = Filename.concat dir "serve.wal" in
    let log_file = Filename.concat dir "server.log" in
    let out = open_out doc_file in
    output_string out (generate_library entries);
    close_out out;
    (* the server is a separate process: the bench parent stays
       single-threaded, so forking client processes below is safe *)
    let argv =
      [ Sys.executable_name; "serve"; "--socket"; sock; "--doc"; doc_file; "--wal"; wal_file;
        "--domains"; string_of_int domains ]
      @ (if no_group_commit then [ "--no-group-commit" ] else [])
      @ (if use_index then [ "--index" ] else [])
      @
      match pool_capacity with
      | Some n ->
        [ "--page-file"; Filename.concat dir "serve.pages"; "--pool-capacity";
          string_of_int n ]
      | None -> []
    in
    let log_fd = Unix.openfile log_file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    let server_pid =
      Unix.create_process Sys.executable_name (Array.of_list argv) Unix.stdin log_fd log_fd
    in
    Unix.close log_fd;
    let die_with_log fmt =
      Printf.ksprintf
        (fun s ->
          prerr_endline s;
          (try print_string (read_file log_file) with Sys_error _ -> ());
          (try Unix.kill server_pid Sys.sigkill with Unix.Unix_error _ -> ());
          exit 2)
        fmt
    in
    (* wait until the socket accepts a handshake *)
    let rec await tries =
      if tries = 0 then die_with_log "bench-serve: server did not come up";
      (match Unix.waitpid [ Unix.WNOHANG ] server_pid with
      | 0, _ -> ()
      | _ -> die_with_log "bench-serve: server exited during startup");
      match Sclient.connect sock with
      | Ok c -> Sclient.close c
      | Error _ ->
        Unix.sleepf 0.05;
        await (tries - 1)
    in
    await 200;
    let write_every =
      if write_ratio <= 0.0 then 0 else max 1 (int_of_float (1.0 /. write_ratio))
    in
    let read_query = "//book[author=\"Author 13\"]/title" in
    let client_main i =
      let lat = Filename.concat dir (Printf.sprintf "client-%d.lat" i) in
      let out = open_out lat in
      (match Sclient.connect ~client:(Printf.sprintf "bench-%d" i) sock with
      | Error e ->
        Printf.eprintf "bench client %d: %s\n%!" i e;
        close_out out;
        Unix._exit 1
      | Ok c ->
        for j = 0 to requests - 1 do
          let is_write = write_every > 0 && j mod write_every = write_every - 1 in
          let t0 = Xsm_obs.Clock.now_ns () in
          let result =
            if is_write then
              Result.map ignore
                (Sclient.update c (Printf.sprintf "attr /library seq c%d-%d" i j))
            else Result.map ignore (Sclient.query c read_query)
          in
          let t1 = Xsm_obs.Clock.now_ns () in
          match result with
          | Ok () ->
            Printf.fprintf out "%c %Ld\n" (if is_write then 'w' else 'r') (Int64.sub t1 t0)
          | Error e ->
            Printf.eprintf "bench client %d: request %d: %s\n%!" i j e;
            close_out out;
            Unix._exit 1
        done;
        Sclient.close c);
      close_out out;
      Unix._exit 0
    in
    let bench_start = Xsm_obs.Clock.now_ns () in
    let pids =
      List.init clients (fun i ->
          match Unix.fork () with
          | 0 -> client_main i
          | pid -> pid)
    in
    let ok =
      List.for_all
        (fun pid ->
          match Unix.waitpid [] pid with _, Unix.WEXITED 0 -> true | _ -> false)
        pids
    in
    let bench_stop = Xsm_obs.Clock.now_ns () in
    if not ok then die_with_log "bench-serve: a client failed";
    (* pull commit stats before stopping the server *)
    let commit_line =
      match Sclient.connect sock with
      | Error e -> die_with_log "bench-serve: stats connect: %s" e
      | Ok c ->
        Fun.protect
          ~finally:(fun () -> Sclient.close c)
          (fun () ->
            match Sclient.stats c with
            | Error e -> die_with_log "bench-serve: stats: %s" e
            | Ok body -> (
              let module J = Xsm_obs.Json in
              let field path =
                List.fold_left
                  (fun j name -> Option.bind j (J.member name))
                  (Some body) path
              in
              match
                ( field [ "server"; "commit"; "submissions" ],
                  field [ "server"; "commit"; "batches" ],
                  field [ "server"; "commit"; "max_batch" ] )
              with
              | Some (J.Num s), Some (J.Num b), Some (J.Num m) ->
                let pager =
                  match
                    ( field [ "pager"; "accesses" ],
                      field [ "pager"; "reads" ],
                      field [ "pager"; "evictions" ] )
                  with
                  | Some (J.Num a), Some (J.Num r), Some (J.Num e) ->
                    Printf.sprintf "\n  pager: %d accesses, %d faults, %d evictions"
                      (int_of_float a) (int_of_float r) (int_of_float e)
                  | _ -> ""
                in
                Printf.sprintf "commit: %d submissions in %d batches (max batch %d)%s"
                  (int_of_float s) (int_of_float b) (int_of_float m) pager
              | _ -> "commit: (stats unavailable)"))
    in
    (match Sclient.connect sock with
    | Ok c ->
      ignore (Sclient.shutdown c);
      Sclient.close c
    | Error _ -> ());
    ignore (Unix.waitpid [] server_pid);
    (* aggregate the recorded latencies *)
    let reads = ref [] and writes = ref [] in
    for i = 0 to clients - 1 do
      let ic = open_in (Filename.concat dir (Printf.sprintf "client-%d.lat" i)) in
      (try
         while true do
           match String.split_on_char ' ' (input_line ic) with
           | [ "r"; ns ] -> reads := Int64.to_float (Int64.of_string ns) :: !reads
           | [ "w"; ns ] -> writes := Int64.to_float (Int64.of_string ns) :: !writes
           | _ -> ()
         done
       with End_of_file -> ());
      close_in ic
    done;
    let ms ns = ns /. 1e6 in
    let elapsed_s = Int64.to_float (Int64.sub bench_stop bench_start) /. 1e9 in
    let total = List.length !reads + List.length !writes in
    let report kind samples =
      let a = Array.of_list samples in
      Array.sort compare a;
      Printf.printf "  %-7s n=%-6d p50=%.3fms p99=%.3fms p999=%.3fms\n" kind (Array.length a)
        (ms (percentile a 0.50)) (ms (percentile a 0.99)) (ms (percentile a 0.999))
    in
    Printf.printf
      "bench-serve: clients=%d domains=%d group_commit=%b index=%b entries=%d\n" clients
      domains (not no_group_commit) use_index entries;
    Printf.printf "  total   %d requests in %.2fs = %.0f req/s\n" total elapsed_s
      (float_of_int total /. elapsed_s);
    if !reads <> [] then report "reads" !reads;
    if !writes <> [] then report "writes" !writes;
    Printf.printf "  %s\n" commit_line;
    (* best-effort cleanup *)
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (try Sys.readdir dir with Sys_error _ -> [||]);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  in
  Cmd.v
    (Cmd.info "bench-serve"
       ~doc:
         "Drive a spawned $(b,xsm serve) daemon with N concurrent client processes and \
          report latency percentiles and throughput (bench E17)")
    Term.(
      const run $ obs_term $ clients_arg $ requests_arg $ domains_arg $ entries_arg
      $ write_ratio_arg $ no_group_commit_flag $ index_flag $ pool_capacity_arg
      $ smoke_flag)

let () =
  let info =
    Cmd.info "xsm" ~version:"1.0.0"
      ~doc:"A formal model of XML Schema: validation, storage and numbering tools"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            validate_cmd; load_cmd; check_cmd; analyze_cmd; canonicalize_cmd; query_cmd;
            update_cmd;
            flwor_cmd;
            dataguide_cmd; labels_cmd; roundtrip_cmd; snapshot_cmd; recover_cmd; stats_cmd;
            serve_cmd; client_cmd; top_cmd; bench_serve_cmd;
          ]))
