(* xsm — command-line front end.

   Subcommands:
     validate  SCHEMA.xsd DOC.xml     validate a document against a schema
     check     SCHEMA.xsd             schema well-formedness (§3 + UPA)
     query     DOC.xml PATH           evaluate an XPath-subset query
     dataguide DOC.xml                print the descriptive schema (§9.1)
     labels    DOC.xml                print nodes with Sedna labels (§9.3)
     roundtrip SCHEMA.xsd DOC.xml     check g(f(X)) =_c X (§8)
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_schema path =
  match Xsm_xsd.Reader.schema_of_string (read_file path) with
  | Ok s -> Ok s
  | Error e -> Error (Printf.sprintf "%s: %s" path (Xsm_xsd.Reader.error_to_string e))

let load_document path =
  match Xsm_xml.Parser.parse_document (read_file path) with
  | Ok d -> Ok d
  | Error e -> Error (Printf.sprintf "%s: %s" path (Xsm_xml.Parser.error_to_string e))

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline msg;
    exit 2

(* ------------------------------------------------------------------ *)

let validate_cmd =
  let schema_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCHEMA" ~doc:"XSD schema file")
  in
  let doc_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"DOC" ~doc:"XML document file")
  in
  let run schema_path doc_path =
    let schema_doc = or_die (load_document schema_path) in
    let schema =
      match Xsm_xsd.Reader.schema_of_document schema_doc with
      | Ok s -> s
      | Error e ->
        prerr_endline (Xsm_xsd.Reader.error_to_string e);
        exit 2
    in
    (match Xsm_schema.Schema_check.check schema with
    | Ok () -> ()
    | Error es ->
      List.iter (fun e -> Format.eprintf "schema: %a@." Xsm_schema.Schema_check.pp_error e) es;
      exit 2);
    let constraints =
      match Xsm_xsd.Reader.constraints_of_document schema_doc with
      | Ok cs -> cs
      | Error e ->
        prerr_endline (Xsm_xsd.Reader.error_to_string e);
        exit 2
    in
    let doc = or_die (load_document doc_path) in
    match Xsm_schema.Validator.validate_document doc schema with
    | Ok (store, dnode) -> (
      match Xsm_identity.Constraint_def.check store dnode constraints with
      | Ok () ->
        Printf.printf "valid (%d nodes%s)\n" (Xsm_xdm.Store.node_count store)
          (if constraints = [] then ""
           else Printf.sprintf ", %d identity constraints" (List.length constraints))
      | Error vs ->
        List.iter
          (fun v -> Format.printf "%a@." Xsm_identity.Constraint_def.pp_violation v)
          vs;
        exit 1)
    | Error es ->
      List.iter (fun e -> print_endline (Xsm_schema.Validator.error_to_string e)) es;
      exit 1
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Validate a document against a schema (the \xc2\xa76.2 judgment)")
    Term.(const run $ schema_arg $ doc_arg)

let check_cmd =
  let schema_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCHEMA" ~doc:"XSD schema file")
  in
  let run schema_path =
    let schema = or_die (load_schema schema_path) in
    match Xsm_schema.Schema_check.check schema with
    | Ok () -> print_endline "well-formed"
    | Error es ->
      List.iter (fun e -> Format.printf "%a@." Xsm_schema.Schema_check.pp_error e) es;
      exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Check schema well-formedness (type usage, UPA, repetitions)")
    Term.(const run $ schema_arg)

let query_cmd =
  let doc_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC" ~doc:"XML document file")
  in
  let path_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"PATH" ~doc:"XPath-subset query")
  in
  let storage_flag =
    Arg.(value & flag & info [ "storage" ] ~doc:"Evaluate over the Sedna block storage")
  in
  let index_flag =
    Arg.(
      value & flag
      & info [ "index" ]
          ~doc:
            "Evaluate through the index subsystem (DataGuide path index + typed value \
             indexes); the plan is reported on stderr.  Unsupported queries fall back to \
             navigational evaluation.")
  in
  let run doc_path query use_storage use_index =
    let doc = or_die (load_document doc_path) in
    let store = Xsm_xdm.Store.create () in
    let dnode = Xsm_xdm.Convert.load store doc in
    if use_index then begin
      let explain_and_print eval_str explain values =
        match eval_str query with
        | Ok nodes ->
          Format.eprintf "plan: %s@." (explain query);
          List.iter print_endline (values nodes)
        | Error e ->
          prerr_endline e;
          exit 1
      in
      if use_storage then begin
        let module Pl = Xsm_xpath.Planner.Over_storage in
        let bs = Xsm_storage.Block_storage.of_store store dnode in
        let planner = Pl.create bs (Xsm_storage.Block_storage.root bs) in
        explain_and_print
          (fun q -> Pl.eval_string planner q)
          (fun q ->
            match Xsm_xpath.Path_parser.parse q with
            | Ok p -> Pl.explain planner p
            | Error e -> e)
          (List.map (Xsm_storage.Block_storage.string_value bs))
      end
      else begin
        let module Pl = Xsm_xpath.Planner.Over_store in
        let planner = Pl.create store dnode in
        explain_and_print
          (fun q -> Pl.eval_string planner q)
          (fun q ->
            match Xsm_xpath.Path_parser.parse q with
            | Ok p -> Pl.explain planner p
            | Error e -> e)
          (List.map (Xsm_xdm.Store.string_value store))
      end
    end
    else if use_storage then begin
      let bs = Xsm_storage.Block_storage.of_store store dnode in
      match Xsm_xpath.Schema_driven.eval_string bs query with
      | Ok descs ->
        List.iter (fun d -> print_endline (Xsm_storage.Block_storage.string_value bs d)) descs
      | Error _ -> (
        (* fall back to the navigational evaluator over descriptors *)
        match
          Xsm_xpath.Eval.Over_storage.eval_string bs (Xsm_storage.Block_storage.root bs) query
        with
        | Ok descs ->
          List.iter (fun d -> print_endline (Xsm_storage.Block_storage.string_value bs d)) descs
        | Error e ->
          prerr_endline e;
          exit 1)
    end
    else
      match Xsm_xpath.Eval.Over_store.eval_string store dnode query with
      | Ok nodes ->
        List.iter (fun n -> print_endline (Xsm_xdm.Store.string_value store n)) nodes
      | Error e ->
        prerr_endline e;
        exit 1
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Evaluate an XPath-subset query over a document")
    Term.(const run $ doc_arg $ path_arg $ storage_flag $ index_flag)

let dataguide_cmd =
  let doc_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC" ~doc:"XML document file")
  in
  let run doc_path =
    let doc = or_die (load_document doc_path) in
    let store = Xsm_xdm.Store.create () in
    let dnode = Xsm_xdm.Convert.load store doc in
    let ds, _ = Xsm_storage.Descriptive_schema.of_tree store dnode in
    Format.printf "%a" Xsm_storage.Descriptive_schema.pp ds;
    Printf.printf "(%d schema nodes for %d document nodes)\n"
      (Xsm_storage.Descriptive_schema.node_count ds)
      (Xsm_xdm.Store.node_count store)
  in
  Cmd.v
    (Cmd.info "dataguide" ~doc:"Print the descriptive schema (\xc2\xa79.1)")
    Term.(const run $ doc_arg)

let labels_cmd =
  let doc_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC" ~doc:"XML document file")
  in
  let run doc_path =
    let doc = or_die (load_document doc_path) in
    let store = Xsm_xdm.Store.create () in
    let dnode = Xsm_xdm.Convert.load store doc in
    let t = Xsm_numbering.Labeler.label_tree store dnode in
    List.iter
      (fun n ->
        Format.printf "%a  %a@."
          Xsm_numbering.Sedna_label.pp
          (Xsm_numbering.Labeler.label t n)
          (Xsm_xdm.Store.pp_node store) n)
      (Xsm_xdm.Order.nodes_in_order store dnode)
  in
  Cmd.v
    (Cmd.info "labels" ~doc:"Print every node with its Sedna numbering label (\xc2\xa79.3)")
    Term.(const run $ doc_arg)

let canonicalize_cmd =
  let schema_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCHEMA" ~doc:"XSD schema file")
  in
  let run schema_path =
    let schema = or_die (load_schema schema_path) in
    let simplified = Xsm_schema.Canonical.simplify_schema schema in
    print_string (Xsm_xsd.Writer.to_string simplified)
  in
  Cmd.v
    (Cmd.info "canonicalize"
       ~doc:"Print the schema with canonicalized (simplified) content models")
    Term.(const run $ schema_arg)

let flwor_cmd =
  let doc_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC" ~doc:"XML document file")
  in
  let query_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc:"FLWOR query")
  in
  let run doc_path query =
    let doc = or_die (load_document doc_path) in
    let store = Xsm_xdm.Store.create () in
    let dnode = Xsm_xdm.Convert.load store doc in
    match Xsm_xpath.Flwor.Over_store.eval_string store dnode query with
    | Ok items ->
      List.iter print_endline (Xsm_xpath.Flwor.Over_store.strings store items)
    | Error e ->
      prerr_endline e;
      exit 1
  in
  Cmd.v
    (Cmd.info "flwor"
       ~doc:"Evaluate a FLWOR query (for/let/where/order by/return) over a document")
    Term.(const run $ doc_arg $ query_arg)

let roundtrip_cmd =
  let schema_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCHEMA" ~doc:"XSD schema file")
  in
  let doc_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"DOC" ~doc:"XML document file")
  in
  let run schema_path doc_path =
    let schema = or_die (load_schema schema_path) in
    let doc = or_die (load_document doc_path) in
    match Xsm_schema.Roundtrip.holds_for doc schema with
    | Ok true -> print_endline "g(f(X)) =_c X holds"
    | Ok false ->
      print_endline "round-trip produced a different document";
      exit 1
    | Error es ->
      List.iter (fun e -> print_endline (Xsm_schema.Validator.error_to_string e)) es;
      exit 1
  in
  Cmd.v
    (Cmd.info "roundtrip" ~doc:"Check the \xc2\xa78 theorem for one document")
    Term.(const run $ schema_arg $ doc_arg)

let () =
  let info =
    Cmd.info "xsm" ~version:"1.0.0"
      ~doc:"A formal model of XML Schema: validation, storage and numbering tools"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            validate_cmd; check_cmd; canonicalize_cmd; query_cmd; flwor_cmd; dataguide_cmd;
            labels_cmd; roundtrip_cmd;
          ]))
