(* Tests for xsm_xsd: reading the concrete XSD syntax (the paper's
   Examples 1-7 as written) and the writer round-trip. *)

open Xsm_schema
module Name = Xsm_xml.Name
module Tree = Xsm_xml.Tree

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let read s =
  match Xsm_xsd.Reader.schema_of_string s with
  | Ok schema -> schema
  | Error e -> Alcotest.failf "reader: %s" (Xsm_xsd.Reader.error_to_string e)

let read_err s =
  match Xsm_xsd.Reader.schema_of_string s with
  | Ok _ -> Alcotest.fail "expected a reader error"
  | Error _ -> ()

let wrap body =
  Printf.sprintf
    "<xsd:schema xmlns:xsd=\"http://www.w3.org/2001/XMLSchema\">%s</xsd:schema>" body

let example7_text =
  wrap
    {|<xsd:complexType name="BookPublication">
   <xsd:sequence>
    <xsd:element name="Title" type="xsd:string"/>
    <xsd:element name="Author" type="xsd:string"/>
    <xsd:element name="Date" type="xsd:string"/>
    <xsd:element name="ISBN" type="xsd:string"/>
    <xsd:element name="Publisher" type="xsd:string"/>
   </xsd:sequence>
  </xsd:complexType>
  <xsd:element name="BookStore">
   <xsd:complexType>
    <xsd:sequence>
     <xsd:element name="Book" type="BookPublication" maxOccurs="unbounded"/>
    </xsd:sequence>
   </xsd:complexType>
  </xsd:element>|}

let test_example7 () =
  let s = read example7_text in
  check "well-formed" true (Result.is_ok (Schema_check.check s));
  check_int "one named type" 1 (List.length s.Ast.complex_types);
  check "validates bookstore" true
    (Validator.is_valid (Samples.bookstore_document ~books:3 ()) s);
  check "rejects broken" false
    (Validator.is_valid (Samples.bookstore_invalid_document ()) s)

let test_example1_declarations () =
  (* nillable + occurrence bounds + anonymous complex type *)
  let s =
    read
      (wrap
         {|<xsd:element name="Location">
             <xsd:complexType>
               <xsd:sequence>
                 <xsd:element name="Comment" type="xsd:string" nillable="true"/>
                 <xsd:element name="Author" type="xsd:string" minOccurs="0" maxOccurs="2"/>
               </xsd:sequence>
             </xsd:complexType>
           </xsd:element>|})
  in
  match s.Ast.root.Ast.elem_type with
  | Ast.Anonymous (Ast.Complex_content { content = Some g; _ }) -> (
    match g.Ast.particles with
    | [ Ast.Element_particle c; Ast.Element_particle a ] ->
      check "nillable read" true c.Ast.nillable;
      check "occurs read" true
        (a.Ast.repetition = Ast.repeat 0 (Some 2))
    | _ -> Alcotest.fail "expected two element particles")
  | _ -> Alcotest.fail "expected anonymous complex type"

let test_example5_simple_content () =
  let s =
    read
      (wrap
         {|<xsd:complexType name="Price">
             <xsd:simpleContent>
               <xsd:extension base="xsd:decimal">
                 <xsd:attribute name="currency" type="xsd:string"/>
               </xsd:extension>
             </xsd:simpleContent>
           </xsd:complexType>
           <xsd:element name="price" type="Price"/>|})
  in
  let doc v =
    Tree.document (Tree.elem "price" ~attrs:[ Tree.attr "currency" "EUR" ] ~children:[ Tree.text v ])
  in
  check "decimal content" true (Validator.is_valid (doc "12.5") s);
  check "non-decimal rejected" false (Validator.is_valid (doc "x") s)

let test_example6_mixed () =
  let s =
    read
      (wrap
         {|<xsd:element name="BookStore">
            <xsd:complexType mixed="true">
              <xsd:sequence>
                <xsd:element name="Book" type="xsd:string" minOccurs="0" maxOccurs="1000"/>
              </xsd:sequence>
              <xsd:attribute name="InStock" type="xsd:boolean"/>
              <xsd:attribute name="Reviewer" type="xsd:string"/>
            </xsd:complexType>
          </xsd:element>|})
  in
  let doc =
    Tree.document
      (Tree.elem "BookStore"
         ~attrs:[ Tree.attr "InStock" "true"; Tree.attr "Reviewer" "r" ]
         ~children:
           [ Tree.text "pre "; Tree.element (Tree.elem "Book" ~children:[ Tree.text "b" ]); Tree.text " post" ])
  in
  check "mixed accepted" true (Validator.is_valid doc s)

let test_choice_and_nested_groups () =
  let s =
    read
      (wrap
         {|<xsd:element name="r">
            <xsd:complexType>
              <xsd:choice minOccurs="0" maxOccurs="unbounded">
                <xsd:element name="zero" type="xsd:string"/>
                <xsd:element name="one" type="xsd:string"/>
                <xsd:sequence>
                  <xsd:element name="pair" type="xsd:string"/>
                  <xsd:element name="end" type="xsd:string"/>
                </xsd:sequence>
              </xsd:choice>
            </xsd:complexType>
          </xsd:element>|})
  in
  let mk kids =
    Tree.document
      (Tree.elem "r"
         ~children:(List.map (fun k -> Tree.element (Tree.elem k ~children:[ Tree.text "v" ])) kids))
  in
  check "zero one" true (Validator.is_valid (mk [ "zero"; "one" ]) s);
  check "pair end" true (Validator.is_valid (mk [ "pair"; "end"; "zero" ]) s);
  check "pair alone" false (Validator.is_valid (mk [ "pair" ]) s)

let test_simple_type_facets () =
  let s =
    read
      (wrap
         {|<xsd:simpleType name="Grade">
             <xsd:restriction base="xsd:integer">
               <xsd:minInclusive value="1"/>
               <xsd:maxInclusive value="5"/>
             </xsd:restriction>
           </xsd:simpleType>
           <xsd:simpleType name="Color">
             <xsd:restriction base="xsd:string">
               <xsd:enumeration value="red"/>
               <xsd:enumeration value="green"/>
               <xsd:enumeration value="blue"/>
             </xsd:restriction>
           </xsd:simpleType>
           <xsd:element name="e">
             <xsd:complexType>
               <xsd:sequence>
                 <xsd:element name="g" type="Grade"/>
                 <xsd:element name="c" type="Color"/>
               </xsd:sequence>
             </xsd:complexType>
           </xsd:element>|})
  in
  let mk g c =
    Tree.document
      (Tree.elem "e"
         ~children:
           [
             Tree.element (Tree.elem "g" ~children:[ Tree.text g ]);
             Tree.element (Tree.elem "c" ~children:[ Tree.text c ]);
           ])
  in
  check "3/red" true (Validator.is_valid (mk "3" "red") s);
  check "6 out" false (Validator.is_valid (mk "6" "red") s);
  check "mauve out" false (Validator.is_valid (mk "3" "mauve") s)

let test_simple_type_pattern_list_union () =
  let s =
    read
      (wrap
         {|<xsd:simpleType name="Sku">
             <xsd:restriction base="xsd:string">
               <xsd:pattern value="\d{3}-[A-Z]{2}"/>
             </xsd:restriction>
           </xsd:simpleType>
           <xsd:simpleType name="Skus">
             <xsd:list itemType="Sku"/>
           </xsd:simpleType>
           <xsd:simpleType name="IntOrBool">
             <xsd:union memberTypes="xsd:integer xsd:boolean"/>
           </xsd:simpleType>
           <xsd:element name="e">
             <xsd:complexType>
               <xsd:sequence>
                 <xsd:element name="skus" type="Skus"/>
                 <xsd:element name="x" type="IntOrBool"/>
               </xsd:sequence>
             </xsd:complexType>
           </xsd:element>|})
  in
  let mk skus x =
    Tree.document
      (Tree.elem "e"
         ~children:
           [
             Tree.element (Tree.elem "skus" ~children:[ Tree.text skus ]);
             Tree.element (Tree.elem "x" ~children:[ Tree.text x ]);
           ])
  in
  check "list of patterns" true (Validator.is_valid (mk "123-AB 456-CD" "42") s);
  check "bad item" false (Validator.is_valid (mk "123-AB 45-CD" "42") s);
  check "union bool" true (Validator.is_valid (mk "123-AB" "true") s);
  check "union neither" false (Validator.is_valid (mk "123-AB" "maybe") s)

let test_inline_simple_type () =
  let s =
    read
      (wrap
         {|<xsd:element name="age">
             <xsd:simpleType>
               <xsd:restriction base="xsd:integer">
                 <xsd:minInclusive value="0"/>
                 <xsd:maxInclusive value="150"/>
               </xsd:restriction>
             </xsd:simpleType>
           </xsd:element>|})
  in
  let mk v = Tree.document (Tree.elem "age" ~children:[ Tree.text v ]) in
  check "42" true (Validator.is_valid (mk "42") s);
  check "151" false (Validator.is_valid (mk "151") s)

let test_attribute_use_syntax () =
  let s =
    read
      (wrap
         {|<xsd:element name="e">
             <xsd:complexType>
               <xsd:sequence/>
               <xsd:attribute name="req" type="xsd:string" use="required"/>
               <xsd:attribute name="opt" type="xsd:string"/>
               <xsd:attribute name="banned" type="xsd:string" use="prohibited"/>
               <xsd:attribute name="lang" type="xsd:string" default="en"/>
             </xsd:complexType>
           </xsd:element>|})
  in
  let mk attrs = Tree.document (Tree.elem "e" ~attrs) in
  check "all fine" true (Validator.is_valid (mk [ Tree.attr "req" "x" ]) s);
  check "missing required" false (Validator.is_valid (mk []) s);
  check "prohibited rejected" false
    (Validator.is_valid (mk [ Tree.attr "req" "x"; Tree.attr "banned" "b" ]) s);
  (* default materialized by validation *)
  (match Validator.validate_document (mk [ Tree.attr "req" "x" ]) s with
  | Error _ -> Alcotest.fail "should validate"
  | Ok (store, dnode) ->
    let e = List.hd (Xsm_xdm.Store.children store dnode) in
    let langs =
      List.filter
        (fun a -> Xsm_xdm.Store.node_name store a = Some (Name.local "lang"))
        (Xsm_xdm.Store.attributes store e)
    in
    check "lang defaulted" true
      (List.length langs = 1
      && Xsm_xdm.Store.string_value store (List.hd langs) = "en"));
  (* default with use=required rejected at read time *)
  read_err
    (wrap
       {|<xsd:element name="e"><xsd:complexType><xsd:sequence/>
          <xsd:attribute name="a" type="xsd:string" use="required" default="x"/>
         </xsd:complexType></xsd:element>|})

let test_xsd_all_group () =
  let s =
    read
      (wrap
         {|<xsd:element name="r">
             <xsd:complexType>
               <xsd:all>
                 <xsd:element name="x" type="xsd:string"/>
                 <xsd:element name="y" type="xsd:string" minOccurs="0"/>
               </xsd:all>
             </xsd:complexType>
           </xsd:element>|})
  in
  let mk kids =
    Tree.document
      (Tree.elem "r"
         ~children:(List.map (fun k -> Tree.element (Tree.elem k ~children:[ Tree.text "v" ])) kids))
  in
  check "xy" true (Validator.is_valid (mk [ "x"; "y" ]) s);
  check "yx" true (Validator.is_valid (mk [ "y"; "x" ]) s);
  check "x alone" true (Validator.is_valid (mk [ "x" ]) s);
  check "y alone (x required)" false (Validator.is_valid (mk [ "y" ]) s);
  check "xx" false (Validator.is_valid (mk [ "x"; "x" ]) s)

let test_annotations_ignored () =
  let s =
    read
      (wrap
         {|<xsd:element name="e">
             <xsd:complexType>
               <xsd:sequence>
                 <xsd:annotation><xsd:documentation>docs</xsd:documentation></xsd:annotation>
                 <xsd:element name="x" type="xsd:string"/>
               </xsd:sequence>
             </xsd:complexType>
           </xsd:element>|})
  in
  let doc = Tree.document (Tree.elem "e" ~children:[ Tree.element (Tree.elem "x" ~children:[ Tree.text "v" ]) ]) in
  check "annotation skipped" true (Validator.is_valid doc s)

let test_reader_errors () =
  read_err "<notaschema/>";
  read_err (wrap "");  (* no global element *)
  read_err (wrap {|<xsd:element name="e" type="xsd:string" minOccurs="x"/>|});
  read_err (wrap {|<xsd:element name="e"><xsd:complexType><xsd:sequence><xsd:bogus/></xsd:sequence></xsd:complexType></xsd:element>|});
  read_err (wrap {|<xsd:simpleType name="t"><xsd:restriction base="zzz:none"/></xsd:simpleType><xsd:element name="e" type="t"/>|})

let test_writer_roundtrip_schemas () =
  List.iter
    (fun schema ->
      let text = Xsm_xsd.Writer.to_string schema in
      let back = read text in
      check "reread well-formed" true (Result.is_ok (Schema_check.check back));
      (* both schemas validate the same sample documents *)
      let rng = Generator.rng 11 in
      for _ = 1 to 10 do
        let doc = Generator.instance rng schema in
        if not (Validator.is_valid doc back) then
          Alcotest.failf "document valid under original but not reread schema:\n%s"
            (Xsm_xml.Printer.to_string doc)
      done)
    [ Samples.example7_schema; Samples.library_schema ]

let test_writer_roundtrip_random () =
  let rng = Generator.rng 77 in
  for _ = 1 to 10 do
    let schema = Generator.random_schema ~max_depth:3 rng in
    let text = Xsm_xsd.Writer.to_string schema in
    let back = read text in
    let doc = Generator.instance rng schema in
    if not (Validator.is_valid doc back) then
      Alcotest.failf "random schema writer/reader mismatch:\n%s" text
  done

let suite =
  [
    ( "xsd.reader",
      [
        Alcotest.test_case "example 7" `Quick test_example7;
        Alcotest.test_case "example 1 declarations" `Quick test_example1_declarations;
        Alcotest.test_case "example 5 simple content" `Quick test_example5_simple_content;
        Alcotest.test_case "example 6 mixed" `Quick test_example6_mixed;
        Alcotest.test_case "choice and nesting" `Quick test_choice_and_nested_groups;
        Alcotest.test_case "facets" `Quick test_simple_type_facets;
        Alcotest.test_case "pattern/list/union" `Quick test_simple_type_pattern_list_union;
        Alcotest.test_case "inline simpleType" `Quick test_inline_simple_type;
        Alcotest.test_case "attribute use/default" `Quick test_attribute_use_syntax;
        Alcotest.test_case "xsd:all" `Quick test_xsd_all_group;
        Alcotest.test_case "annotations" `Quick test_annotations_ignored;
        Alcotest.test_case "errors" `Quick test_reader_errors;
      ] );
    ( "xsd.writer",
      [
        Alcotest.test_case "paper schemas" `Quick test_writer_roundtrip_schemas;
        Alcotest.test_case "random schemas" `Quick test_writer_roundtrip_random;
      ] );
  ]
