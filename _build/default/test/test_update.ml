(* Tests for the data-manipulation layer (Update): state transitions,
   inverses, and schema-safe application with rollback. *)

open Xsm_schema
module Store = Xsm_xdm.Store
module Tree = Xsm_xml.Tree
module Name = Xsm_xml.Name

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)

let setup () =
  let doc = Samples.bookstore_document ~books:3 () in
  match Validator.validate_document doc Samples.example7_schema with
  | Ok (store, dnode) -> (store, dnode)
  | Error _ -> Alcotest.fail "fixture should validate"

let book_tree i =
  match Samples.bookstore_document ~books:(i + 1) () with
  | { Tree.root = { Tree.children; _ }; _ } -> (
    match List.nth children i with
    | Tree.Element e -> e
    | _ -> Alcotest.fail "expected a book element")

let bookstore store dnode = List.hd (Store.children store dnode)

let serialized store dnode =
  Xsm_xml.Printer.to_string (Xsm_xdm.Convert.to_document store dnode)

(* ---------------- raw apply / undo ---------------- *)

let test_insert_and_undo () =
  let store, dnode = setup () in
  let parent = bookstore store dnode in
  let before_xml = serialized store dnode in
  let n_before = List.length (Store.children store parent) in
  match Update.apply store (Update.Insert_element { parent; before = None; tree = book_tree 0 }) with
  | Error e -> Alcotest.fail e
  | Ok evidence ->
    check_int "one more book" (n_before + 1) (List.length (Store.children store parent));
    Update.undo store evidence;
    check_int "restored count" n_before (List.length (Store.children store parent));
    check_str "identical state" before_xml (serialized store dnode)

let test_insert_positioned () =
  let store, dnode = setup () in
  let parent = bookstore store dnode in
  let second = List.nth (Store.children store parent) 1 in
  match Update.apply store (Update.Insert_element { parent; before = Some second; tree = book_tree 0 }) with
  | Error e -> Alcotest.fail e
  | Ok _ ->
    let kids = Store.children store parent in
    check_int "four books" 4 (List.length kids);
    (* the inserted one is now at index 1 *)
    check "inserted before anchor" true
      (Store.equal_node (List.nth kids 2) second)

let test_delete_and_undo () =
  let store, dnode = setup () in
  let parent = bookstore store dnode in
  let before_xml = serialized store dnode in
  let victim = List.nth (Store.children store parent) 1 in
  (match Update.apply store (Update.Delete victim) with
  | Error e -> Alcotest.fail e
  | Ok evidence ->
    check_int "two books" 2 (List.length (Store.children store parent));
    Update.undo store evidence;
    check_str "restored exactly (position too)" before_xml (serialized store dnode));
  (* deleting the root (no parent) fails cleanly *)
  check "no parent" true (Result.is_error (Update.apply store (Update.Delete dnode)))

let test_replace_content () =
  let store, dnode = setup () in
  let parent = bookstore store dnode in
  let book = List.hd (Store.children store parent) in
  let title = List.hd (Store.children store book) in
  let text = List.hd (Store.children store title) in
  (match Update.apply store (Update.Replace_content { node = text; value = "New Title" }) with
  | Error e -> Alcotest.fail e
  | Ok evidence ->
    check_str "updated" "New Title" (Store.string_value store title);
    Update.undo store evidence;
    check_str "reverted" "Book 0" (Store.string_value store title));
  (* elements reject content replacement *)
  check "element rejected" true
    (Result.is_error (Update.apply store (Update.Replace_content { node = book; value = "x" })))

let test_set_attribute () =
  let store, dnode = setup () in
  let parent = bookstore store dnode in
  let book = List.hd (Store.children store parent) in
  (* create *)
  (match
     Update.apply store
       (Update.Set_attribute { element = book; name = Name.local "lang"; value = "en" })
   with
  | Error e -> Alcotest.fail e
  | Ok evidence ->
    check_int "attribute created" 1 (List.length (Store.attributes store book));
    (* replace *)
    (match
       Update.apply store
         (Update.Set_attribute { element = book; name = Name.local "lang"; value = "ru" })
     with
    | Error e -> Alcotest.fail e
    | Ok ev2 ->
      check_str "replaced" "ru" (Store.string_value store (List.hd (Store.attributes store book)));
      Update.undo store ev2;
      check_str "back to en" "en" (Store.string_value store (List.hd (Store.attributes store book))));
    Update.undo store evidence;
    check_int "attribute removed" 0 (List.length (Store.attributes store book)))

(* ---------------- validated application ---------------- *)

let test_validated_accepts_legal () =
  let store, dnode = setup () in
  let parent = bookstore store dnode in
  match
    Update.apply_validated store dnode Samples.example7_schema
      (Update.Insert_element { parent; before = None; tree = book_tree 1 })
  with
  | Ok () -> check_int "four books stay" 4 (List.length (Store.children store parent))
  | Error es -> Alcotest.failf "rejected: %s" (String.concat "; " es)

let test_validated_rolls_back () =
  let store, dnode = setup () in
  let parent = bookstore store dnode in
  let before_xml = serialized store dnode in
  (* inserting a stray element breaks the content model *)
  (match
     Update.apply_validated store dnode Samples.example7_schema
       (Update.Insert_element
          { parent; before = None; tree = Tree.elem "Pamphlet" ~children:[ Tree.text "x" ] })
   with
  | Ok () -> Alcotest.fail "should have been rejected"
  | Error _ -> ());
  check_str "state rolled back" before_xml (serialized store dnode);
  (* deleting a mandatory child of a Book also rolls back *)
  let book = List.hd (Store.children store parent) in
  let isbn = List.nth (Store.children store book) 3 in
  (match Update.apply_validated store dnode Samples.example7_schema (Update.Delete isbn) with
  | Ok () -> Alcotest.fail "should have been rejected"
  | Error _ -> ());
  check_str "rollback preserves position" before_xml (serialized store dnode);
  (* the document still validates after all the rejected attempts *)
  check "still an S-tree" true (Result.is_ok (Validator.validate store dnode Samples.example7_schema))

let test_validated_text_edit () =
  let store, dnode = setup () in
  let parent = bookstore store dnode in
  let book = List.hd (Store.children store parent) in
  let date = List.nth (Store.children store book) 2 in
  let text = List.hd (Store.children store date) in
  match
    Update.apply_validated store dnode Samples.example7_schema
      (Update.Replace_content { node = text; value = "2005" })
  with
  | Ok () -> check_str "edited" "2005" (Store.string_value store date)
  | Error es -> Alcotest.failf "rejected: %s" (String.concat "; " es)

let test_validated_rejects_bad_simple_value () =
  (* schema with an int leaf: writing a non-int rolls back *)
  let schema =
    Ast.schema
      (Ast.element "r"
         (Ast.Anonymous
            (Ast.complex (Some (Ast.sequence [ Ast.elem_p (Ast.element "n" (Ast.named_type "xs:int")) ])))))
  in
  let doc =
    Tree.document
      (Tree.elem "r" ~children:[ Tree.element (Tree.elem "n" ~children:[ Tree.text "7" ]) ])
  in
  match Validator.validate_document doc schema with
  | Error _ -> Alcotest.fail "fixture"
  | Ok (store, dnode) ->
    let r = List.hd (Store.children store dnode) in
    let n = List.hd (Store.children store r) in
    let text = List.hd (Store.children store n) in
    (match
       Update.apply_validated store dnode schema
         (Update.Replace_content { node = text; value = "not-a-number" })
     with
    | Ok () -> Alcotest.fail "should reject"
    | Error _ -> ());
    check_str "rolled back" "7" (Store.string_value store n);
    match
      Update.apply_validated store dnode schema
        (Update.Replace_content { node = text; value = "42" })
    with
    | Ok () -> check_str "accepted" "42" (Store.string_value store n)
    | Error es -> Alcotest.failf "rejected: %s" (String.concat "; " es)

let suite =
  [
    ( "update.raw",
      [
        Alcotest.test_case "insert/undo" `Quick test_insert_and_undo;
        Alcotest.test_case "insert positioned" `Quick test_insert_positioned;
        Alcotest.test_case "delete/undo" `Quick test_delete_and_undo;
        Alcotest.test_case "replace content" `Quick test_replace_content;
        Alcotest.test_case "set attribute" `Quick test_set_attribute;
      ] );
    ( "update.validated",
      [
        Alcotest.test_case "legal insert" `Quick test_validated_accepts_legal;
        Alcotest.test_case "rollback" `Quick test_validated_rolls_back;
        Alcotest.test_case "text edit" `Quick test_validated_text_edit;
        Alcotest.test_case "simple value guard" `Quick test_validated_rejects_bad_simple_value;
      ] );
  ]
