(* Tests for xsm_datatypes: decimals, calendar values, regex, builtins,
   facets, user simple types. *)

open Xsm_datatypes

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)

let dec s = Decimal.of_string_exn s

(* ---------------- decimal ---------------- *)

let test_decimal_parse_print () =
  List.iter
    (fun (input, canonical) -> check_str input canonical (Decimal.to_string (dec input)))
    [
      ("0", "0"); ("-0", "0"); ("+0", "0"); ("007", "7"); ("-007.200", "-7.2");
      ("3.14159", "3.14159"); (".5", "0.5"); ("5.", "5"); ("-0.0", "0");
      ("123456789012345678901234567890", "123456789012345678901234567890");
      ("0.000000000000000000001", "0.000000000000000000001");
    ]

let test_decimal_invalid () =
  List.iter
    (fun s -> check ("reject " ^ s) true (Result.is_error (Decimal.of_string s)))
    [ ""; "."; "-"; "+"; "1e5"; "1E5"; "1.2.3"; "abc"; "1 2"; "--1" ]

let test_decimal_order () =
  let pairs =
    [
      ("1", "2", -1); ("2", "1", 1); ("1", "1.0", 0); ("-1", "1", -1);
      ("-2", "-1", -1); ("0.1", "0.09", 1); ("10", "9.999999", 1);
      ("-0.5", "0", -1); ("123456789012345678", "123456789012345679", -1);
    ]
  in
  List.iter
    (fun (a, b, expected) ->
      check_int (a ^ " vs " ^ b) expected (compare (Decimal.compare (dec a) (dec b)) 0))
    pairs

let test_decimal_arith () =
  check_str "0.1+0.2" "0.3" (Decimal.to_string (Decimal.add (dec "0.1") (dec "0.2")));
  check_str "1-1" "0" (Decimal.to_string (Decimal.sub (dec "1") (dec "1")));
  check_str "big" "10000000000000000000"
    (Decimal.to_string (Decimal.add (dec "9999999999999999999") (dec "1")));
  check_str "neg" "-1.5" (Decimal.to_string (Decimal.add (dec "-2") (dec "0.5")));
  check_str "cancel" "0.01" (Decimal.to_string (Decimal.sub (dec "1.00") (dec "0.99")))

let test_decimal_digits () =
  check_int "total 123.45" 5 (Decimal.total_digits (dec "123.45"));
  check_int "fraction 123.45" 2 (Decimal.fraction_digits (dec "123.45"));
  check_int "total 0" 1 (Decimal.total_digits (dec "0"));
  check_int "trailing zeros" 3 (Decimal.total_digits (dec "1.230"));
  check "integer" true (Decimal.is_integer (dec "42.0"));
  check "not integer" false (Decimal.is_integer (dec "42.5"))

let test_decimal_to_int () =
  Alcotest.(check (option int)) "42" (Some 42) (Decimal.to_int (dec "42"));
  Alcotest.(check (option int)) "-42" (Some (-42)) (Decimal.to_int (dec "-42"));
  Alcotest.(check (option int)) "fraction" None (Decimal.to_int (dec "1.5"))

(* ---------------- calendar ---------------- *)

let dt s =
  match Calendar.parse_date_time s with Ok d -> d | Error e -> Alcotest.fail e

let test_datetime_roundtrip () =
  List.iter
    (fun s -> check_str s s (Calendar.print_date_time (dt s)))
    [
      "2004-10-28T09:00:00Z"; "1999-12-31T23:59:59"; "2005-01-01T00:00:00.5+02:00";
      "-0044-03-15T12:00:00"; "2000-02-29T00:00:00-14:00";
    ]

let test_datetime_invalid () =
  List.iter
    (fun s -> check ("reject " ^ s) true (Result.is_error (Calendar.parse_date_time s)))
    [
      "2004-13-01T00:00:00"; "2004-02-30T00:00:00"; "2003-02-29T00:00:00";
      "2004-01-01T24:01:00"; "2004-01-01T00:60:00"; "2004-01-01T00:00:60";
      "2004-1-01T00:00:00"; "0000-01-01T00:00:00"; "2004-01-01"; "junk";
      "2004-01-01T00:00:00+15:00";
    ]

let test_datetime_timezone_order () =
  (* 12:00Z = 14:00+02:00; 12:00+00:00 < 12:00-01:00's instant? -01:00 means later *)
  check_int "equal instants" 0
    (Calendar.compare_date_time (dt "2004-07-01T12:00:00Z") (dt "2004-07-01T14:00:00+02:00"));
  check "zone shifts" true
    (Calendar.compare_date_time (dt "2004-07-01T12:00:00Z") (dt "2004-07-01T12:00:00-01:00") < 0)

let test_leap_years () =
  check "2000 leap" true (Calendar.is_leap_year 2000);
  check "1900 not" false (Calendar.is_leap_year 1900);
  check "2004 leap" true (Calendar.is_leap_year 2004);
  check_int "feb 2004" 29 (Calendar.days_in_month ~year:2004 ~month:2);
  check_int "feb 1900" 28 (Calendar.days_in_month ~year:1900 ~month:2)

let test_partial_dates () =
  let ok f p s = match f s with Ok v -> check_str s s (p v) | Error e -> Alcotest.fail e in
  ok Calendar.parse_date Calendar.print_date "2004-10-28";
  ok Calendar.parse_date Calendar.print_date "2004-10-28Z";
  ok Calendar.parse_time Calendar.print_time "09:30:05.25";
  ok Calendar.parse_g_year_month Calendar.print_g_year_month "2004-10";
  ok Calendar.parse_g_year Calendar.print_g_year "2004";
  ok Calendar.parse_g_month_day Calendar.print_g_month_day "--10-28";
  ok Calendar.parse_g_day Calendar.print_g_day "---28";
  ok Calendar.parse_g_month Calendar.print_g_month "--10"

let dur s = match Calendar.parse_duration s with Ok d -> d | Error e -> Alcotest.fail e

let test_duration_roundtrip () =
  List.iter
    (fun s -> check_str s s (Calendar.print_duration (dur s)))
    [ "P1Y"; "P3M"; "P2D"; "PT4H"; "PT5M"; "PT6.7S"; "P1Y2M3DT4H5M6.7S"; "-P2DT1M"; "PT0S" ]

let test_duration_fold () =
  (* 36 hours folds to 1 day 12 hours *)
  check_str "36h" "P1DT12H" (Calendar.print_duration (dur "PT36H"));
  check_str "25m in secs" "PT25M" (Calendar.print_duration (dur "PT1500S"))

let test_duration_invalid () =
  List.iter
    (fun s -> check ("reject " ^ s) true (Result.is_error (Calendar.parse_duration s)))
    [ "P"; "PT"; "1Y"; "P1S"; "PT1D"; "P-1Y"; "P1.5Y"; ""; "P1M2Y" ]

let test_duration_order () =
  let cmp a b = Calendar.compare_duration (dur a) (dur b) in
  Alcotest.(check (option int)) "1M vs 30D incomparable" None (cmp "P1M" "P30D");
  Alcotest.(check (option int)) "1M > 27D" (Some 1) (cmp "P1M" "P27D");
  Alcotest.(check (option int)) "1M < 32D" (Some (-1)) (cmp "P1M" "P32D");
  Alcotest.(check (option int)) "1Y = 12M" (Some 0) (cmp "P1Y" "P12M");
  Alcotest.(check (option int)) "24h = 1D" (Some 0) (cmp "PT24H" "P1D")

let test_add_duration () =
  let d = Calendar.add_duration (dt "2004-01-31T00:00:00Z") (dur "P1M") in
  (* day clamps to February's 29 in 2004 *)
  check_str "clamped" "2004-02-29T00:00:00Z" (Calendar.print_date_time d);
  let d2 = Calendar.add_duration (dt "2004-12-31T23:00:00Z") (dur "PT2H") in
  check_str "rollover" "2005-01-01T01:00:00Z" (Calendar.print_date_time d2)

let test_add_negative_duration () =
  (* subtracting a month from March 31 clamps to February's length *)
  let d = Calendar.add_duration (dt "2004-03-31T12:00:00Z") (dur "-P1M") in
  check_str "clamped back" "2004-02-29T12:00:00Z" (Calendar.print_date_time d);
  let d2 = Calendar.add_duration (dt "2005-03-31T12:00:00Z") (dur "-P1M") in
  check_str "clamped back non-leap" "2005-02-28T12:00:00Z" (Calendar.print_date_time d2);
  (* subtracting seconds across a year boundary *)
  let d3 = Calendar.add_duration (dt "2005-01-01T00:00:30Z") (dur "-PT1M") in
  check_str "year rollback" "2004-12-31T23:59:30Z" (Calendar.print_date_time d3)

let test_timezone_extremes () =
  check "+14:00 accepted" true (Result.is_ok (Calendar.parse_date_time "2004-01-01T00:00:00+14:00"));
  check "-14:00 accepted" true (Result.is_ok (Calendar.parse_date_time "2004-01-01T00:00:00-14:00"));
  check "+14:01 rejected" true (Result.is_error (Calendar.parse_date_time "2004-01-01T00:00:00+14:01"));
  (* the two extremes are 28h apart *)
  check "28h apart" true
    (Calendar.compare_date_time (dt "2004-01-01T00:00:00+14:00") (dt "2004-01-01T00:00:00-14:00") < 0)

(* ---------------- regex ---------------- *)

let re s = match Regex.compile s with Ok r -> r | Error e -> Alcotest.fail e

let test_regex_basics () =
  let r = re "a*b" in
  check "ab" true (Regex.matches r "aaab");
  check "b" true (Regex.matches r "b");
  check "empty" false (Regex.matches r "");
  check "anchored" false (Regex.matches r "xb")

let test_regex_classes () =
  check "digit" true (Regex.matches (re "\\d{4}") "2004");
  check "not digit" false (Regex.matches (re "\\d{4}") "20x4");
  check "class range" true (Regex.matches (re "[A-Fa-f0-9]+") "DeadBeef");
  check "negated" true (Regex.matches (re "[^;]+") "no semicolons");
  check "negated hit" false (Regex.matches (re "[^;]+") "a;b");
  check "subtraction" true (Regex.matches (re "[a-z-[aeiou]]+") "xyz");
  check "subtraction hit" false (Regex.matches (re "[a-z-[aeiou]]+") "xyza")

let test_regex_quantifiers () =
  let r = re "(ab){2,3}" in
  check "2" true (Regex.matches r "abab");
  check "3" true (Regex.matches r "ababab");
  check "1" false (Regex.matches r "ab");
  check "4" false (Regex.matches r "abababab");
  check "n only" true (Regex.matches (re "x{3}") "xxx");
  check "open" true (Regex.matches (re "x{2,}") "xxxxxx")

let test_regex_alternation_nesting () =
  let r = re "((red|green)|blue)( (red|green|blue))*" in
  check "one" true (Regex.matches r "red");
  check "many" true (Regex.matches r "blue green red");
  check "bad sep" false (Regex.matches r "blue,green")

let test_regex_escapes () =
  check "dot escaped" true (Regex.matches (re "1\\.5") "1.5");
  check "dot escaped neg" false (Regex.matches (re "1\\.5") "1x5");
  check "wildcard" true (Regex.matches (re "1.5") "1x5");
  check "name chars" true (Regex.matches (re "\\i\\c*") "simpleName");
  check "whitespace" true (Regex.matches (re "a\\sb") "a b")

let test_regex_categories () =
  check "\\p{L}" true (Regex.matches (re "\\p{L}+") "Letters");
  check "\\p{L} neg" false (Regex.matches (re "\\p{L}+") "abc1");
  check "\\p{Lu}" true (Regex.matches (re "\\p{Lu}\\p{Ll}+") "Word");
  check "\\p{Nd}" true (Regex.matches (re "\\p{Nd}{3}") "123");
  check "\\P{Nd}" true (Regex.matches (re "\\P{Nd}+") "abc!");
  check "\\P{Nd} neg" false (Regex.matches (re "\\P{Nd}+") "ab1");
  check "in class" true (Regex.matches (re "[\\p{Lu}0-9]+") "A1B2");
  check "unknown category" true (Result.is_error (Regex.compile "\\p{Xx}"));
  check "unterminated" true (Result.is_error (Regex.compile "\\p{L"))

let test_regex_errors () =
  List.iter
    (fun s -> check ("reject " ^ s) true (Result.is_error (Regex.compile s)))
    [ "("; "a{2,1}"; "a{99999}"; "[z-a]"; "[abc"; "*a"; "\\q" ]

(* ---------------- builtins ---------------- *)

let v_ok b s =
  match Builtin.validate b s with
  | Ok vs -> vs
  | Error e -> Alcotest.failf "%s on %S: %s" (Builtin.name b) s e

let v_err b s =
  match Builtin.validate b s with
  | Ok _ -> Alcotest.failf "%s unexpectedly accepted %S" (Builtin.name b) s
  | Error _ -> ()

let test_builtin_lookup () =
  check "string" true (Builtin.of_name "string" = Some (Builtin.Primitive Builtin.P_string));
  check "xs:int" true (Builtin.of_name "xs:int" = Some Builtin.Int);
  check "xsd:ID" true (Builtin.of_name "xsd:ID" = Some Builtin.Id);
  check "xdt:untypedAtomic" true (Builtin.of_name "xdt:untypedAtomic" = Some Builtin.Untyped_atomic);
  check "unknown" true (Builtin.of_name "noSuchType" = None);
  check "bad prefix" true (Builtin.of_name "foo:string" = None)

let test_builtin_hierarchy () =
  let d = Builtin.derives_from in
  check "byte<short" true (d Builtin.Byte Builtin.Short);
  check "byte<decimal" true (d Builtin.Byte (Builtin.Primitive Builtin.P_decimal));
  check "byte<anyType" true (d Builtin.Byte Builtin.Any_type);
  check "ID<NCName<Name<token<string" true (d Builtin.Id (Builtin.Primitive Builtin.P_string));
  check "not sideways" false (d Builtin.Byte Builtin.Unsigned_byte);
  check "every builtin under anyType" true
    (List.for_all (fun t -> d t Builtin.Any_type) Builtin.all)

let test_builtin_whitespace () =
  check_str "string preserves" " a  b " (Builtin.normalize_whitespace (Builtin.whitespace (Builtin.Primitive Builtin.P_string)) " a  b ");
  check_str "normalizedString replaces" " a  b "
    (Builtin.normalize_whitespace (Builtin.whitespace Builtin.Normalized_string) "\ta \nb ");
  check_str "token collapses" "a b"
    (Builtin.normalize_whitespace (Builtin.whitespace Builtin.Token) "  a \n b\t")

let test_builtin_boolean () =
  check "true" true (v_ok (Builtin.Primitive Builtin.P_boolean) " true " = [ Value.Boolean true ]);
  check "1" true (v_ok (Builtin.Primitive Builtin.P_boolean) "1" = [ Value.Boolean true ]);
  check "0" true (v_ok (Builtin.Primitive Builtin.P_boolean) "0" = [ Value.Boolean false ]);
  v_err (Builtin.Primitive Builtin.P_boolean) "TRUE";
  v_err (Builtin.Primitive Builtin.P_boolean) "yes"

let test_builtin_integers () =
  ignore (v_ok Builtin.Byte "-128");
  v_err Builtin.Byte "-129";
  ignore (v_ok Builtin.Unsigned_byte "255");
  v_err Builtin.Unsigned_byte "256";
  v_err Builtin.Unsigned_byte "-1";
  ignore (v_ok Builtin.Long "9223372036854775807");
  v_err Builtin.Long "9223372036854775808";
  ignore (v_ok Builtin.Unsigned_long "18446744073709551615");
  v_err Builtin.Unsigned_long "18446744073709551616";
  v_err Builtin.Integer "1.0";
  ignore (v_ok Builtin.Non_positive_integer "0");
  v_err Builtin.Negative_integer "0";
  ignore (v_ok Builtin.Positive_integer "1");
  v_err Builtin.Positive_integer "0"

let test_builtin_floats () =
  check "INF" true (v_ok (Builtin.Primitive Builtin.P_double) "INF" = [ Value.Double Float.infinity ]);
  check "-INF" true
    (v_ok (Builtin.Primitive Builtin.P_float) "-INF" = [ Value.Float Float.neg_infinity ]);
  (match v_ok (Builtin.Primitive Builtin.P_double) "NaN" with
  | [ Value.Double f ] -> check "NaN" true (Float.is_nan f)
  | _ -> Alcotest.fail "NaN");
  ignore (v_ok (Builtin.Primitive Builtin.P_double) "-1.5E2");
  ignore (v_ok (Builtin.Primitive Builtin.P_double) "12e3");
  ignore (v_ok (Builtin.Primitive Builtin.P_double) ".5");
  v_err (Builtin.Primitive Builtin.P_double) "1.5E";
  v_err (Builtin.Primitive Builtin.P_double) "inf";
  (* float is rounded to single precision *)
  match v_ok (Builtin.Primitive Builtin.P_float) "0.1" with
  | [ Value.Float f ] -> check "single rounding" true (f <> 0.1)
  | _ -> Alcotest.fail "float"

let test_builtin_binary () =
  check "hex" true (v_ok (Builtin.Primitive Builtin.P_hex_binary) "DEADbeef" = [ Value.Hex_binary "\xDE\xAD\xBE\xEF" ]);
  v_err (Builtin.Primitive Builtin.P_hex_binary) "ABC";
  v_err (Builtin.Primitive Builtin.P_hex_binary) "GG";
  check "b64" true (v_ok (Builtin.Primitive Builtin.P_base64_binary) "aGVsbG8=" = [ Value.Base64_binary "hello" ]);
  check "b64 empty" true (v_ok (Builtin.Primitive Builtin.P_base64_binary) "" = [ Value.Base64_binary "" ]);
  v_err (Builtin.Primitive Builtin.P_base64_binary) "a===";
  v_err (Builtin.Primitive Builtin.P_base64_binary) "a"

let test_builtin_string_family () =
  ignore (v_ok Builtin.Language "en-US");
  v_err Builtin.Language "waytoolonglanguagesubtag";
  ignore (v_ok Builtin.Nmtoken "a:b-c.d");
  v_err Builtin.Nmtoken "a b";
  ignore (v_ok Builtin.Ncname "local-name");
  v_err Builtin.Ncname "pre:fix";
  ignore (v_ok Builtin.Name "pre:fix")

let test_builtin_lists () =
  check_int "3 nmtokens" 3 (List.length (v_ok Builtin.Nmtokens " a b  c "));
  v_err Builtin.Nmtokens "   ";
  check_int "idrefs" 2 (List.length (v_ok Builtin.Idrefs "r1 r2"))

let test_canonical_values () =
  let canon b s =
    match Builtin.validate_atomic b s with
    | Ok v -> Value.canonical_string v
    | Error e -> Alcotest.fail e
  in
  check_str "decimal canonical" "4.2" (canon (Builtin.Primitive Builtin.P_decimal) "+04.20");
  check_str "bool canonical" "true" (canon (Builtin.Primitive Builtin.P_boolean) "1");
  check_str "hex canonical" "0AFF" (canon (Builtin.Primitive Builtin.P_hex_binary) "0aff");
  check_str "b64 canonical" "aGVsbG8=" (canon (Builtin.Primitive Builtin.P_base64_binary) "aGVs bG8=")

(* ---------------- values ---------------- *)

let test_value_equal_promotion () =
  check "decimal = double" true (Value.equal (Value.Decimal (dec "1.5")) (Value.Double 1.5));
  check "decimal <> string" false (Value.equal (Value.Decimal (dec "1")) (Value.String "1"));
  check "string eq" true (Value.equal (Value.String "x") (Value.String "x"))

let test_value_compare () =
  Alcotest.(check (option int)) "numeric" (Some (-1))
    (Value.compare (Value.Decimal (dec "1")) (Value.Double 2.0));
  Alcotest.(check (option int)) "qname incomparable" None
    (Value.compare (Value.Qname (Xsm_xml.Name.local "a")) (Value.Qname (Xsm_xml.Name.local "b")))

(* ---------------- facets & simple types ---------------- *)

let restrict_exn ?name base facets =
  match Simple_type.restrict ?name base facets with
  | Ok t -> t
  | Error e -> Alcotest.fail e

let test_facet_bounds () =
  let t =
    restrict_exn Simple_type.integer
      [ Facet.Min_inclusive (Value.Decimal (dec "1")); Facet.Max_inclusive (Value.Decimal (dec "5")) ]
  in
  check "3 ok" true (Simple_type.is_valid t "3");
  check "1 ok" true (Simple_type.is_valid t "1");
  check "5 ok" true (Simple_type.is_valid t "5");
  check "0 bad" false (Simple_type.is_valid t "0");
  check "6 bad" false (Simple_type.is_valid t "6")

let test_facet_exclusive_bounds () =
  let t =
    restrict_exn Simple_type.decimal
      [ Facet.Min_exclusive (Value.Decimal (dec "0")); Facet.Max_exclusive (Value.Decimal (dec "1")) ]
  in
  check "0.5" true (Simple_type.is_valid t "0.5");
  check "0" false (Simple_type.is_valid t "0");
  check "1" false (Simple_type.is_valid t "1")

let test_facet_lengths () =
  let t = restrict_exn Simple_type.string_type [ Facet.Min_length 2; Facet.Max_length 4 ] in
  check "ab" true (Simple_type.is_valid t "ab");
  check "abcd" true (Simple_type.is_valid t "abcd");
  check "a" false (Simple_type.is_valid t "a");
  check "abcde" false (Simple_type.is_valid t "abcde");
  let fixed = restrict_exn Simple_type.string_type [ Facet.Length 3 ] in
  check "exact" true (Simple_type.is_valid fixed "abc");
  check "not exact" false (Simple_type.is_valid fixed "ab")

let test_facet_length_is_utf8_aware () =
  let t = restrict_exn Simple_type.string_type [ Facet.Length 2 ] in
  (* two 2-byte characters *)
  check "utf8 chars" true (Simple_type.is_valid t "\xC3\xA9\xC3\xA8")

let test_facet_binary_length () =
  let hex = Simple_type.builtin (Builtin.Primitive Builtin.P_hex_binary) in
  let t = restrict_exn hex [ Facet.Length 2 ] in
  check "2 octets" true (Simple_type.is_valid t "DEAD");
  check "3 octets" false (Simple_type.is_valid t "DEADBE")

let test_facet_pattern () =
  let p = match Facet.pattern "[A-Z]{2}\\d{3}" with Ok f -> f | Error e -> Alcotest.fail e in
  let t = restrict_exn Simple_type.string_type [ p ] in
  check "AB123" true (Simple_type.is_valid t "AB123");
  check "ab123" false (Simple_type.is_valid t "ab123")

let test_facet_enumeration () =
  let t =
    restrict_exn Simple_type.string_type
      [ Facet.Enumeration [ Value.String "red"; Value.String "green"; Value.String "blue" ] ]
  in
  check "red" true (Simple_type.is_valid t "red");
  check "mauve" false (Simple_type.is_valid t "mauve")

let test_facet_digits () =
  let t = restrict_exn Simple_type.decimal [ Facet.Total_digits 4; Facet.Fraction_digits 2 ] in
  check "12.34" true (Simple_type.is_valid t "12.34");
  check "123.45" false (Simple_type.is_valid t "123.45");
  check "1.234" false (Simple_type.is_valid t "1.234")

let test_facet_applicability () =
  check "digits on string rejected" true
    (Result.is_error (Simple_type.restrict Simple_type.string_type [ Facet.Total_digits 3 ]))

let test_derivation_chain () =
  (* a chain: integer -> 1..100 -> even "pattern" *)
  let mid =
    restrict_exn ~name:"Percent" Simple_type.integer
      [ Facet.Min_inclusive (Value.Decimal (dec "0")); Facet.Max_inclusive (Value.Decimal (dec "100")) ]
  in
  let p = match Facet.pattern "\\d*[02468]" with Ok f -> f | Error e -> Alcotest.fail e in
  let top = restrict_exn mid [ p ] in
  check "42" true (Simple_type.is_valid top "42");
  check "43 odd" false (Simple_type.is_valid top "43");
  check "102 out of range" false (Simple_type.is_valid top "102");
  check "derives_from mid" true (Simple_type.derives_from top mid);
  check "derives_from integer" true (Simple_type.derives_from top Simple_type.integer);
  check "derives_from anySimpleType" true
    (Simple_type.derives_from top (Simple_type.builtin Builtin.Any_simple_type))

let test_list_type () =
  let t = match Simple_type.list_of Simple_type.integer with Ok t -> t | Error e -> Alcotest.fail e in
  (match Simple_type.validate t " 1  2 3 " with
  | Ok vs -> check_int "3 items" 3 (List.length vs)
  | Error e -> Alcotest.fail e);
  check "bad item" false (Simple_type.is_valid t "1 x 3");
  check "empty ok" true (Simple_type.is_valid t "");
  (* a length facet on the list counts items *)
  let bounded = restrict_exn t [ Facet.Length 2 ] in
  check "2 items" true (Simple_type.is_valid bounded "1 2");
  check "3 items" false (Simple_type.is_valid bounded "1 2 3");
  check "no list of lists" true (Result.is_error (Simple_type.list_of t))

let test_union_type () =
  let t =
    match Simple_type.union_of [ Simple_type.integer; Simple_type.boolean ] with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  (match Simple_type.validate_atomic t "42" with
  | Ok (Value.Decimal _) -> ()
  | Ok v -> Alcotest.failf "expected decimal, got %s" (Value.kind_name v)
  | Error e -> Alcotest.fail e);
  (match Simple_type.validate_atomic t "true" with
  | Ok (Value.Boolean true) -> ()
  | _ -> Alcotest.fail "expected boolean");
  check "neither" false (Simple_type.is_valid t "maybe");
  check "empty union rejected" true (Result.is_error (Simple_type.union_of []))

let test_whitespace_facet () =
  let t = restrict_exn Simple_type.string_type [ Facet.White_space Builtin.Collapse ] in
  match Simple_type.validate_atomic t "  a   b  " with
  | Ok (Value.String s) -> check_str "collapsed" "a b" s
  | _ -> Alcotest.fail "expected a string"

let suite =
  [
    ( "datatypes.decimal",
      [
        Alcotest.test_case "parse/print" `Quick test_decimal_parse_print;
        Alcotest.test_case "invalid" `Quick test_decimal_invalid;
        Alcotest.test_case "order" `Quick test_decimal_order;
        Alcotest.test_case "arithmetic" `Quick test_decimal_arith;
        Alcotest.test_case "digits" `Quick test_decimal_digits;
        Alcotest.test_case "to_int" `Quick test_decimal_to_int;
      ] );
    ( "datatypes.calendar",
      [
        Alcotest.test_case "dateTime roundtrip" `Quick test_datetime_roundtrip;
        Alcotest.test_case "dateTime invalid" `Quick test_datetime_invalid;
        Alcotest.test_case "timezone order" `Quick test_datetime_timezone_order;
        Alcotest.test_case "leap years" `Quick test_leap_years;
        Alcotest.test_case "partial dates" `Quick test_partial_dates;
        Alcotest.test_case "duration roundtrip" `Quick test_duration_roundtrip;
        Alcotest.test_case "duration folding" `Quick test_duration_fold;
        Alcotest.test_case "duration invalid" `Quick test_duration_invalid;
        Alcotest.test_case "duration order" `Quick test_duration_order;
        Alcotest.test_case "add duration" `Quick test_add_duration;
        Alcotest.test_case "negative duration" `Quick test_add_negative_duration;
        Alcotest.test_case "timezone extremes" `Quick test_timezone_extremes;
      ] );
    ( "datatypes.regex",
      [
        Alcotest.test_case "basics" `Quick test_regex_basics;
        Alcotest.test_case "classes" `Quick test_regex_classes;
        Alcotest.test_case "quantifiers" `Quick test_regex_quantifiers;
        Alcotest.test_case "alternation" `Quick test_regex_alternation_nesting;
        Alcotest.test_case "escapes" `Quick test_regex_escapes;
        Alcotest.test_case "categories" `Quick test_regex_categories;
        Alcotest.test_case "errors" `Quick test_regex_errors;
      ] );
    ( "datatypes.builtin",
      [
        Alcotest.test_case "lookup" `Quick test_builtin_lookup;
        Alcotest.test_case "hierarchy" `Quick test_builtin_hierarchy;
        Alcotest.test_case "whitespace" `Quick test_builtin_whitespace;
        Alcotest.test_case "boolean" `Quick test_builtin_boolean;
        Alcotest.test_case "integers" `Quick test_builtin_integers;
        Alcotest.test_case "floats" `Quick test_builtin_floats;
        Alcotest.test_case "binary" `Quick test_builtin_binary;
        Alcotest.test_case "string family" `Quick test_builtin_string_family;
        Alcotest.test_case "lists" `Quick test_builtin_lists;
        Alcotest.test_case "canonical" `Quick test_canonical_values;
      ] );
    ( "datatypes.value",
      [
        Alcotest.test_case "equality promotion" `Quick test_value_equal_promotion;
        Alcotest.test_case "comparison" `Quick test_value_compare;
      ] );
    ( "datatypes.simple-type",
      [
        Alcotest.test_case "bounds" `Quick test_facet_bounds;
        Alcotest.test_case "exclusive bounds" `Quick test_facet_exclusive_bounds;
        Alcotest.test_case "lengths" `Quick test_facet_lengths;
        Alcotest.test_case "utf8 length" `Quick test_facet_length_is_utf8_aware;
        Alcotest.test_case "binary length" `Quick test_facet_binary_length;
        Alcotest.test_case "pattern" `Quick test_facet_pattern;
        Alcotest.test_case "enumeration" `Quick test_facet_enumeration;
        Alcotest.test_case "digits" `Quick test_facet_digits;
        Alcotest.test_case "applicability" `Quick test_facet_applicability;
        Alcotest.test_case "derivation chain" `Quick test_derivation_chain;
        Alcotest.test_case "list" `Quick test_list_type;
        Alcotest.test_case "union" `Quick test_union_type;
        Alcotest.test_case "whiteSpace facet" `Quick test_whitespace_facet;
      ] );
  ]
