(* Tests for xsm_numbering: the Sedna scheme's three predicates
   (§9.3), Proposition 1 update stability, and the baseline schemes. *)

module Label = Xsm_numbering.Sedna_label
module Labeler = Xsm_numbering.Labeler
module Dewey = Xsm_numbering.Dewey
module Range = Xsm_numbering.Range_label
module Prime = Xsm_numbering.Prime_label
module Store = Xsm_xdm.Store
module Convert = Xsm_xdm.Convert
module Name = Xsm_xml.Name

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- Sedna labels ---------------- *)

let test_label_validation () =
  check "root ok" true (Result.is_ok (Label.of_raw (Label.to_raw Label.root)));
  check "empty" true (Result.is_error (Label.of_raw ""));
  check "leading sep" true (Result.is_error (Label.of_raw "\x01\x80"));
  check "trailing sep" true (Result.is_error (Label.of_raw "\x80\x01"));
  check "double sep" true (Result.is_error (Label.of_raw "\x80\x01\x01\x80"));
  check "trailing min digit" true (Result.is_error (Label.of_raw "\x80\x01\x02"));
  check "good two-level" true (Result.is_ok (Label.of_raw "\x80\x01\x90"))

let test_label_predicates () =
  let l s = match Label.of_raw s with Ok l -> l | Error e -> Alcotest.fail e in
  let root = l "\x80" in
  let child1 = l "\x80\x01\x40" in
  let child2 = l "\x80\x01\x90" in
  let grandchild = l "\x80\x01\x40\x01\x80" in
  check "parent" true (Label.is_parent root child1);
  check "ancestor" true (Label.is_ancestor root grandchild);
  check "not parent of grandchild" false (Label.is_parent root grandchild);
  check "child before sibling" true (Label.compare child1 child2 < 0);
  check "ancestor precedes descendant" true (Label.compare root grandchild < 0);
  check "grandchild before uncle" true (Label.compare grandchild child2 < 0);
  check "relation Before" true (Label.relation child1 child2 = Label.Before);
  check "relation After" true (Label.relation child2 grandchild = Label.After);
  check "relation Self" true (Label.relation root root = Label.Self);
  check "relation Child" true (Label.relation child1 root = Label.Child);
  check "relation Descendant" true (Label.relation grandchild root = Label.Descendant)

let test_label_depth () =
  check_int "root depth" 1 (Label.depth Label.root);
  check_int "child depth" 2 (Label.depth (Label.first_child Label.root))

let test_assign_children_ordered () =
  List.iter
    (fun n ->
      let kids = Label.assign_children Label.root n in
      check_int "count" n (List.length kids);
      let rec strictly_increasing = function
        | a :: (b :: _ as rest) -> Label.compare a b < 0 && strictly_increasing rest
        | [ _ ] | [] -> true
      in
      check "ordered" true (strictly_increasing kids);
      List.iter
        (fun k ->
          check "is child" true (Label.is_parent Label.root k);
          check "valid" true (Result.is_ok (Label.of_raw (Label.to_raw k))))
        kids)
    [ 1; 2; 10; 254; 255; 1000 ]

let test_between_properties () =
  (* repeated bisection always succeeds and stays ordered *)
  let kids = Label.assign_children Label.root 2 in
  let a = List.nth kids 0 and b = List.nth kids 1 in
  let rec bisect a b n =
    if n = 0 then ()
    else begin
      let m = Label.between a b in
      if not (Label.compare a m < 0 && Label.compare m b < 0) then
        Alcotest.failf "between broke ordering at step %d" n;
      (match Label.of_raw (Label.to_raw m) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "between produced invalid label: %s" e);
      check "still a sibling" true (Label.is_parent Label.root m);
      bisect a m (n - 1)
    end
  in
  bisect a b 64;
  (* converging from the right too *)
  let rec bisect_r a b n =
    if n > 0 then begin
      let m = Label.between a b in
      bisect_r m b (n - 1)
    end
  in
  bisect_r a b 64

let test_before_after_siblings () =
  let k = Label.first_child Label.root in
  let prev = Label.before_sibling k in
  let next = Label.after_sibling k in
  check "prev < k" true (Label.compare prev k < 0);
  check "k < next" true (Label.compare k next < 0);
  check "prev sibling" true (Label.is_parent Label.root prev);
  check "next sibling" true (Label.is_parent Label.root next);
  (* iterating after_sibling never breaks order *)
  let rec iterate l n acc =
    if n = 0 then acc
    else begin
      let nl = Label.after_sibling l in
      check "increasing" true (Label.compare l nl < 0);
      iterate nl (n - 1) (nl :: acc)
    end
  in
  ignore (iterate k 300 []);
  let rec iterate_before l n =
    if n > 0 then begin
      let pl = Label.before_sibling l in
      check "decreasing" true (Label.compare pl l < 0);
      iterate_before pl (n - 1)
    end
  in
  iterate_before k 64

let test_between_rejects_non_siblings () =
  let k = Label.first_child Label.root in
  let g = Label.first_child k in
  (match Label.between k g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument (not siblings)");
  match Label.between k k with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument (out of order)"

(* ---------------- labeler vs ground truth ---------------- *)

let load doc =
  let store = Store.create () in
  let dnode = Convert.load store doc in
  (store, dnode)

let test_labeler_ground_truth () =
  let store, dnode = load (Xsm_schema.Samples.library_document ~books:8 ~papers:4 ()) in
  let t = Labeler.label_tree store dnode in
  check_int "every node labelled" (List.length (Store.descendants_or_self store dnode))
    (Labeler.label_count t);
  check "relations agree with tree" true (Labeler.check_against_tree store dnode t)

let test_labeler_reverse_lookup () =
  let store, dnode = load Xsm_schema.Samples.example8_document in
  let t = Labeler.label_tree store dnode in
  List.iter
    (fun n ->
      match Labeler.node_of t (Labeler.label t n) with
      | Some m -> check "roundtrip" true (Store.equal_node n m)
      | None -> Alcotest.fail "reverse lookup failed")
    (Store.descendants_or_self store dnode)

let test_proposition1 () =
  (* heavy insertion at one point: no existing label ever changes *)
  let store, dnode = load Xsm_schema.Samples.example8_document in
  let t = Labeler.label_tree store dnode in
  let lib = List.hd (Store.children store dnode) in
  let snapshot =
    List.map (fun n -> (n, Labeler.label t n)) (Store.descendants_or_self store dnode)
  in
  let anchor = List.hd (Store.children store lib) in
  let last_inserted = ref anchor in
  for i = 1 to 200 do
    let e = Store.new_element store (Name.local (Printf.sprintf "ins%d" i)) in
    (* always insert right after the original anchor: worst case for
       label growth, keeps hitting the same gap *)
    (match Store.children store lib with
    | _ -> ());
    Store.insert_child_before store lib ~before:!last_inserted e
    |> ignore;
    (* position in tree irrelevant for the label test; we label it as
       the sibling after the anchor *)
    ignore (Labeler.label_new_child t ~parent:lib ~after:(Some anchor) e);
    last_inserted := e
  done;
  List.iter
    (fun (n, l) ->
      if not (Label.equal (Labeler.label t n) l) then Alcotest.fail "a label changed")
    snapshot;
  check "200 insertions, zero relabels" true true

let test_label_growth_bounded_for_spread_inserts () =
  (* inserting at random gaps keeps labels short; this guards the
     assign_children spreading enhancement *)
  let kids = Label.assign_children Label.root 1000 in
  let max_len = List.fold_left (fun m k -> max m (Label.length k)) 0 kids in
  check "spread labels short" true (max_len <= 5)

(* ---------------- Dewey baseline ---------------- *)

let test_dewey_predicates () =
  let a = [ 1; 2 ] and b = [ 1; 2; 1 ] and c = [ 1; 3 ] in
  check "parent" true (Dewey.is_parent a b);
  check "ancestor" true (Dewey.is_ancestor [ 1 ] b);
  check "order" true (Dewey.compare a b < 0 && Dewey.compare b c < 0);
  check "not parent" false (Dewey.is_parent [ 1 ] b)

let test_dewey_matches_tree_order () =
  let store, dnode = load (Xsm_schema.Samples.library_document ~books:5 ~papers:3 ()) in
  let f = Dewey.forest_of_tree store dnode in
  let nodes = Store.descendants_or_self store dnode in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let expected = compare (Xsm_xdm.Order.compare store a b) 0 in
          let got = compare (Dewey.compare (Dewey.label f a) (Dewey.label f b)) 0 in
          if expected <> got then Alcotest.fail "dewey order mismatch")
        nodes)
    nodes

let test_dewey_insert_relabels () =
  let store, dnode = load (Xsm_schema.Samples.library_document ~books:10 ~papers:0 ()) in
  let f = Dewey.forest_of_tree store dnode in
  let lib = List.hd (Store.children store dnode) in
  let first = List.hd (Store.children store lib) in
  let e = Store.new_element store (Name.local "ins") in
  let _, changed = Dewey.insert_after f ~parent:lib ~after:(Some first) e in
  (* 9 following book subtrees must be renumbered *)
  check "many relabels" true (changed > 9);
  (* appending at the end renumbers nobody *)
  let last = List.nth (Store.children store lib) (List.length (Store.children store lib) - 1) in
  let e2 = Store.new_element store (Name.local "ins2") in
  let _, changed2 = Dewey.insert_after f ~parent:lib ~after:(Some last) e2 in
  check_int "append free" 0 changed2

(* ---------------- Range baseline ---------------- *)

let test_range_predicates_and_relabel () =
  let store, dnode = load (Xsm_schema.Samples.library_document ~books:6 ~papers:2 ()) in
  let f = Range.forest_of_tree ~gap:8 store dnode in
  let nodes = Store.descendants_or_self store dnode in
  (* containment = ancestorship *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let expected = Xsm_xdm.Order.is_ancestor store a b in
          let got = Range.is_ancestor (Range.label f a) (Range.label f b) in
          if expected <> got then Alcotest.fail "range ancestor mismatch")
        nodes)
    nodes;
  (* hammer one gap until a global relabel happens *)
  let lib = List.hd (Store.children store dnode) in
  let anchor = List.hd (Store.children store lib) in
  let relabels_before = Range.relabel_count f in
  for i = 1 to 40 do
    let e = Store.new_element store (Name.local (Printf.sprintf "r%d" i)) in
    ignore (Range.insert_after f ~parent:lib ~after:(Some anchor) e)
  done;
  check "eventually relabels" true (Range.relabel_count f > relabels_before)

(* ---------------- Prime baseline ---------------- *)

let test_prime_predicates () =
  let store, dnode = load Xsm_schema.Samples.example8_document in
  let f = Prime.forest_of_tree store dnode in
  let nodes = Store.descendants_or_self store dnode in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let expected = Xsm_xdm.Order.is_ancestor store a b in
          let got = Prime.is_ancestor (Prime.label f a) (Prime.label f b) in
          if expected <> got then Alcotest.fail "prime ancestor mismatch";
          let eo = compare (Xsm_xdm.Order.compare store a b) 0 in
          let go = compare (Prime.compare_order f (Prime.label f a) (Prime.label f b)) 0 in
          if eo <> go then Alcotest.fail "prime order mismatch")
        nodes)
    nodes

let test_prime_insert_shifts_sc_table () =
  let store, dnode = load Xsm_schema.Samples.example8_document in
  let f = Prime.forest_of_tree store dnode in
  let lib = List.hd (Store.children store dnode) in
  let first = List.hd (Store.children store lib) in
  let e = Store.new_element store (Name.local "ins") in
  let _, shifted = Prime.insert_after f ~parent:lib ~after:(Some first) e in
  check "sc entries rewritten" true (shifted > 0)

let suite =
  [
    ( "numbering.label",
      [
        Alcotest.test_case "validation" `Quick test_label_validation;
        Alcotest.test_case "§9.3 predicates" `Quick test_label_predicates;
        Alcotest.test_case "depth" `Quick test_label_depth;
        Alcotest.test_case "assign_children" `Quick test_assign_children_ordered;
        Alcotest.test_case "between" `Quick test_between_properties;
        Alcotest.test_case "before/after" `Quick test_before_after_siblings;
        Alcotest.test_case "between guards" `Quick test_between_rejects_non_siblings;
      ] );
    ( "numbering.labeler",
      [
        Alcotest.test_case "ground truth" `Quick test_labeler_ground_truth;
        Alcotest.test_case "reverse lookup" `Quick test_labeler_reverse_lookup;
        Alcotest.test_case "Proposition 1" `Quick test_proposition1;
        Alcotest.test_case "spread labels short" `Quick test_label_growth_bounded_for_spread_inserts;
      ] );
    ( "numbering.dewey",
      [
        Alcotest.test_case "predicates" `Quick test_dewey_predicates;
        Alcotest.test_case "tree order" `Quick test_dewey_matches_tree_order;
        Alcotest.test_case "insert relabels" `Quick test_dewey_insert_relabels;
      ] );
    ( "numbering.range",
      [ Alcotest.test_case "predicates + relabel" `Quick test_range_predicates_and_relabel ] );
    ( "numbering.prime",
      [
        Alcotest.test_case "predicates" `Quick test_prime_predicates;
        Alcotest.test_case "SC shifts" `Quick test_prime_insert_shifts_sc_table;
      ] );
  ]
