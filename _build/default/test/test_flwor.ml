(* Tests for the FLWOR mini-language over both backends. *)

module Store = Xsm_xdm.Store
module Convert = Xsm_xdm.Convert
module B = Xsm_storage.Block_storage
module F = Xsm_xpath.Flwor
module FS = Xsm_xpath.Flwor.Over_store
module FB = Xsm_xpath.Flwor.Over_storage

let check = Alcotest.(check bool)
let check_list = Alcotest.(check (list string))

let fixture () =
  let store = Store.create () in
  let dnode = Convert.load store Xsm_schema.Samples.example8_document in
  (store, dnode)

let run store dnode q =
  match FS.eval_string store dnode q with
  | Ok items -> FS.strings store items
  | Error e -> Alcotest.failf "%s: %s" q e

let test_parse_errors () =
  List.iter
    (fun q -> check q true (Result.is_error (F.parse q)))
    [
      ""; "for $x"; "for $x in"; "for $x in /a"; (* no return *)
      "return"; "for x in /a return $x"; "let $x = /a return $x";
      "for $x in /a return $x extra";
    ]

let test_basic_for () =
  let store, dnode = fixture () in
  check_list "book titles"
    [ "Foundations of Databases"; "An Introduction to Database Systems" ]
    (run store dnode "for $b in /library/book return $b/title")

let test_where_filter () =
  let store, dnode = fixture () in
  check_list "Codd papers"
    [
      "A Relational Model for Large Shared Data Banks";
      "The Complexity of Relational Query Languages";
    ]
    (run store dnode
       {|for $p in /library/paper where $p/author = "Codd" return $p/title|});
  check_list "filtered out" []
    (run store dnode
       {|for $p in /library/paper where $p/author = "Nobody" return $p/title|})

let test_where_conjunction () =
  let store, dnode = fixture () in
  check_list "both conditions"
    [ "An Introduction to Database Systems" ]
    (run store dnode
       {|for $b in /library/book where $b/author = "Date" and $b/issue return $b/title|})

let test_nested_for () =
  let store, dnode = fixture () in
  (* cross product: book x its own authors via variable path *)
  check_list "authors per book"
    [ "Abiteboul"; "Hull"; "Vianu"; "Date" ]
    (run store dnode "for $b in /library/book for $a in $b/author return $a")

let test_let_and_count () =
  let store, dnode = fixture () in
  check_list "count per book" [ "3"; "1" ]
    (run store dnode "for $b in /library/book let $a := $b/author return count($a)");
  check_list "string()" [ "AbiteboulHullVianu"; "Date" ]
    (run store dnode "for $b in /library/book let $a := $b/author return string($a)")

let test_order_by () =
  let store, dnode = fixture () in
  check_list "sorted titles"
    [
      "A Relational Model for Large Shared Data Banks";
      "An Introduction to Database Systems";
      "Foundations of Databases";
      "The Complexity of Relational Query Languages";
    ]
    (run store dnode "for $t in //title order by $t return $t")

let test_not_equals () =
  let store, dnode = fixture () in
  check_list "non-Codd authors"
    [ "Abiteboul"; "Hull"; "Vianu"; "Date" ]
    (run store dnode {|for $a in //author where $a != "Codd" return $a|})

let test_unbound_variable () =
  let store, dnode = fixture () in
  check "unbound" true
    (Result.is_error (FS.eval_string store dnode "for $x in /library return $y"))

let test_backend_agreement () =
  let store, dnode = fixture () in
  let bs = B.of_store store dnode in
  let rootd = B.root bs in
  List.iter
    (fun q ->
      let a = run store dnode q in
      match FB.eval_string bs rootd q with
      | Ok items -> check_list q a (FB.strings bs items)
      | Error e -> Alcotest.failf "%s: %s" q e)
    [
      "for $b in /library/book return $b/title";
      {|for $p in //paper where $p/author = "Codd" return $p/title|};
      "for $b in /library/book let $a := $b/author return count($a)";
      "for $t in //title order by $t return $t";
    ]

let suite =
  [
    ( "flwor",
      [
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "for/return" `Quick test_basic_for;
        Alcotest.test_case "where" `Quick test_where_filter;
        Alcotest.test_case "where and" `Quick test_where_conjunction;
        Alcotest.test_case "nested for" `Quick test_nested_for;
        Alcotest.test_case "let + count/string" `Quick test_let_and_count;
        Alcotest.test_case "order by" `Quick test_order_by;
        Alcotest.test_case "!=" `Quick test_not_equals;
        Alcotest.test_case "unbound variable" `Quick test_unbound_variable;
        Alcotest.test_case "backend agreement" `Quick test_backend_agreement;
      ] );
  ]
